// ADEPT search on the CNN proxy task (the paper's main flow, reduced scale).
//
// Searches an 8x8 PTC on the synthetic-MNIST proxy with a 2-layer CNN, then
// re-trains a fresh classifier on the frozen searched topology and compares
// it against the MZI and FFT baselines at equal training budget.
//
// Scale knobs (environment): ADEPT_EXAMPLE_TRAIN (default 384 samples),
// ADEPT_EXAMPLE_EPOCHS (default 4 search epochs).
#include <cstdio>
#include <memory>

#include "common/env.h"
#include "core/search.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "photonics/builders.h"

namespace core = adept::core;
namespace data = adept::data;
namespace nn = adept::nn;
namespace ph = adept::photonics;

int main() {
  const int train_n = adept::env_int("ADEPT_EXAMPLE_TRAIN", 384);
  const int search_epochs = adept::env_int("ADEPT_EXAMPLE_EPOCHS", 4);

  auto spec = data::DatasetSpec::mnist_like();
  data::SyntheticDataset train(spec, train_n, 1);
  data::SyntheticDataset val(spec, train_n / 2, 2);

  std::printf("ADEPT search: K=8, AMF PDK, footprint target [240, 300] k-um^2\n");
  core::SearchConfig config;
  config.mesh.k = 8;
  config.mesh.super_blocks_per_unitary = 0;  // derive from Eq. 16
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 240;
  config.footprint.f_max = 300;
  config.epochs = search_epochs;
  config.warmup_epochs = 1;
  config.spl_epoch = search_epochs / 2;
  config.steps_per_epoch = 12;
  config.alm.rho0 = 1e-4;
  config.seed = 11;

  nn::OnnProxyTask task(train, val, /*batch=*/24, /*width=*/6, /*seed=*/5);
  core::AdeptSearcher searcher(config, task);
  std::printf("SuperMesh: %d super blocks per unitary (%d always-on)\n",
              searcher.config().mesh.super_blocks_per_unitary,
              searcher.config().mesh.always_on_per_unitary);
  // ADEPT_RANKS > 1 runs the data-parallel search (bit-identical at any
  // rank count); otherwise the single-process loop above.
  const int ranks = adept::comm::resolve_ranks();
  const auto result =
      ranks > 1 ? core::run_search_data_parallel(
                      config,
                      [&] {
                        return std::make_unique<nn::OnnProxyTask>(
                            train, val, /*batch=*/24, /*width=*/6, /*seed=*/5);
                      },
                      ranks)
                : searcher.run();
  if (ranks > 1) std::printf("data-parallel search: %d ranks\n", ranks);
  const auto counts = result.topology.counts();
  std::printf("searched: #CR=%lld #DC=%lld #Blk=%lld footprint=%.0f k-um^2\n",
              static_cast<long long>(counts.cr), static_cast<long long>(counts.dc),
              static_cast<long long>(counts.blocks),
              result.topology.footprint_um2(config.footprint.pdk) / 1000.0);

  // Re-train fresh models: searched vs baselines, same budget.
  nn::TrainConfig tconfig;
  tconfig.epochs = 3;
  tconfig.batch_size = 24;
  auto retrain = [&](std::shared_ptr<const ph::PtcTopology> topo, const char* name) {
    adept::Rng rng(21);
    auto model = nn::make_proxy_cnn(1, 28, 10, nn::PtcBinding::fixed(topo), rng, 6);
    const auto stats = nn::train_classifier(model, train, val, tconfig);
    std::printf("%-10s footprint %7.0f  accuracy %.3f\n", name,
                topo->footprint_um2(config.footprint.pdk) / 1000.0,
                stats.final_accuracy);
  };
  std::printf("\nRe-training comparison (%d epochs each):\n", tconfig.epochs);
  retrain(std::make_shared<ph::PtcTopology>(result.topology), "ADEPT");
  retrain(std::make_shared<ph::PtcTopology>(ph::butterfly(8)), "FFT");
  retrain(std::make_shared<ph::PtcTopology>(ph::clements_mzi(8)), "MZI");
  return 0;
}
