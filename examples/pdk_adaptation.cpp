// PDK-adaptive search (paper Table 2 mechanism).
//
// The same footprint budget is searched under AMF (cheap crossings, 64 um^2)
// and AIM (expensive crossings, 4900 um^2). ADEPT should spend crossings
// freely under AMF but avoid them under AIM.
#include <cstdio>

#include "core/search.h"
#include "photonics/builders.h"

namespace core = adept::core;
namespace ph = adept::photonics;

namespace {

core::SearchResult search_under(const ph::Pdk& pdk, double f_min, double f_max) {
  core::SearchConfig config;
  config.mesh.k = 8;
  config.mesh.super_blocks_per_unitary = 4;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = pdk;
  config.footprint.f_min = f_min;
  config.footprint.f_max = f_max;
  config.epochs = 8;
  config.warmup_epochs = 2;
  config.spl_epoch = 5;
  config.steps_per_epoch = 15;
  config.alm.rho0 = 1e-4;
  config.seed = 17;
  core::MatrixFitTask task(/*tiles=*/2, /*seed=*/9);
  core::AdeptSearcher searcher(config, task);
  return searcher.run();
}

}  // namespace

int main() {
  // Budgets scaled to each PDK's device sizes (same relative tightness).
  struct Case {
    ph::Pdk pdk;
    double f_min, f_max;
  };
  const Case cases[] = {
      {ph::Pdk::amf(), 280, 360},
      {ph::Pdk::aim(), 140, 220},
  };
  std::printf("%-6s %-8s %-6s %-6s %-6s %-10s\n", "PDK", "CR area", "#CR", "#DC",
              "#Blk", "footprint");
  for (const auto& c : cases) {
    const auto result = search_under(c.pdk, c.f_min, c.f_max);
    const auto counts = result.topology.counts();
    std::printf("%-6s %-8.0f %-6lld %-6lld %-6lld %.0f k-um^2 (target [%.0f, %.0f])\n",
                c.pdk.name.c_str(), c.pdk.cr_area_um2,
                static_cast<long long>(counts.cr), static_cast<long long>(counts.dc),
                static_cast<long long>(counts.blocks),
                result.topology.footprint_um2(c.pdk) / 1000.0, c.f_min, c.f_max);
  }
  std::printf("\nExpectation: the AIM run avoids crossings (#CR near 0) because each\n"
              "crossing costs 4900 um^2 there vs 64 um^2 under AMF.\n");
  return 0;
}
