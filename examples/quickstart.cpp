// Quickstart: the 5-minute tour of the ADEPT library.
//
//   1. Build the two hand-designed baselines (MZI mesh, butterfly mesh) and
//      inspect their device census / footprint under two foundry PDKs.
//   2. Simulate a photonic mesh at the circuit level and verify unitarity.
//   3. Run a miniature ADEPT search (matrix-fit proxy) and print the
//      resulting searched topology.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/search.h"
#include "photonics/builders.h"
#include "photonics/noise.h"

namespace ph = adept::photonics;
namespace core = adept::core;

int main() {
  std::printf("=== 1. Baseline PTC topologies ===\n\n");
  adept::Table census({"design", "K", "#CR", "#DC", "#Blk", "AMF [k-um^2]", "AIM [k-um^2]"});
  for (int k : {8, 16, 32}) {
    for (const auto& topo : {ph::clements_mzi(k), ph::butterfly(k)}) {
      const auto counts = topo.counts();
      census.add_row({topo.name, std::to_string(k),
                      adept::Table::fmt_int(counts.cr), adept::Table::fmt_int(counts.dc),
                      adept::Table::fmt_int(counts.blocks),
                      adept::Table::fmt(topo.footprint_um2(ph::Pdk::amf()) / 1000.0, 0),
                      adept::Table::fmt(topo.footprint_um2(ph::Pdk::aim()) / 1000.0, 0)});
    }
  }
  census.print(std::cout);

  std::printf("\n=== 2. Circuit-level simulation ===\n\n");
  const auto fft = ph::butterfly(8);
  adept::Rng rng(1);
  ph::MeshPhases phases;
  for (std::size_t b = 0; b < fft.u_blocks.size(); ++b) {
    std::vector<double> phi(8);
    for (auto& p : phi) p = rng.uniform(-3.14, 3.14);
    phases.per_block.push_back(phi);
  }
  const ph::CMat u = ph::mesh_transfer(fft.u_blocks, 8, phases);
  std::printf("butterfly-8 unitary, unitarity error = %.2e (should be ~0)\n",
              u.unitarity_error());
  const double drift = ph::mean_matrix_error_under_noise(
      fft, phases, phases, std::vector<double>(8, 1.0), 0.05, 10, rng);
  std::printf("relative weight error under sigma=0.05 phase noise: %.3f\n", drift);

  std::printf("\n=== 3. Miniature ADEPT search ===\n\n");
  core::SearchConfig config;
  config.mesh.k = 8;
  config.mesh.super_blocks_per_unitary = 4;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 240;
  config.footprint.f_max = 300;
  config.epochs = 10;
  config.warmup_epochs = 2;
  config.spl_epoch = 6;
  config.steps_per_epoch = 15;
  config.alm.rho0 = 1e-4;
  core::MatrixFitTask task(/*tiles=*/2, /*seed=*/3);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  const auto counts = result.topology.counts();
  std::printf("searched topology: #CR=%lld #DC=%lld #Blk=%lld footprint=%.0f k-um^2 "
              "(target [%.0f, %.0f])\n",
              static_cast<long long>(counts.cr), static_cast<long long>(counts.dc),
              static_cast<long long>(counts.blocks),
              result.topology.footprint_um2(config.footprint.pdk) / 1000.0,
              config.footprint.f_min, config.footprint.f_max);
  std::printf("final task metric (negative MSE): %.4f\n", result.final_metric);
  std::printf("\nSerialized topology (save this to reuse the design):\n%s\n",
              result.topology.serialize().c_str());
  return 0;
}
