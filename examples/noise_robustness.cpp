// Variation-aware training and phase-noise robustness (paper Fig. 4 flow).
//
// Trains the proxy CNN with three 8x8 PTC weight implementations (MZI mesh,
// butterfly mesh, and a randomly sampled compact topology as an ADEPT
// stand-in), all with Gaussian phase-noise injection (sigma = 0.02) during
// training, then sweeps test-time phase noise. The deep MZI mesh degrades
// fastest — the effect Fig. 4 reports.
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/env.h"
#include "common/table.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "nn/variation.h"
#include "photonics/builders.h"

namespace data = adept::data;
namespace nn = adept::nn;
namespace ph = adept::photonics;

int main() {
  const int train_n = adept::env_int("ADEPT_EXAMPLE_TRAIN", 320);
  auto spec = data::DatasetSpec::mnist_like();
  data::SyntheticDataset train(spec, train_n, 1);
  data::SyntheticDataset test(spec, train_n / 2, 2);

  adept::Rng topo_rng(5);
  std::vector<std::pair<std::string, std::shared_ptr<const ph::PtcTopology>>> designs;
  designs.emplace_back("MZI", std::make_shared<ph::PtcTopology>(ph::clements_mzi(8)));
  designs.emplace_back("FFT", std::make_shared<ph::PtcTopology>(ph::butterfly(8)));
  designs.emplace_back("compact",
                       std::make_shared<ph::PtcTopology>(ph::random_topology(8, 5, topo_rng, 0.6)));

  adept::Table table({"design", "sigma=0.00", "0.02", "0.04", "0.06", "0.08", "0.10"});
  for (auto& [name, topo] : designs) {
    adept::Rng rng(33);
    auto model = nn::make_proxy_cnn(1, 28, 10, nn::PtcBinding::fixed(topo), rng, 6);
    nn::TrainConfig config;
    config.epochs = 3;
    config.batch_size = 32;
    config.train_phase_noise = 0.02;  // variation-aware training
    nn::train_classifier(model, train, test, config);
    std::vector<std::string> row = {name};
    for (double sigma : {0.0, 0.02, 0.04, 0.06, 0.08, 0.10}) {
      double acc = 0.0;
      const int runs = 4;
      for (int r = 0; r < runs; ++r) {
        acc += nn::evaluate_accuracy(model, test, 64, sigma,
                                     static_cast<std::uint64_t>(100 + r));
      }
      row.push_back(adept::Table::fmt(acc / runs, 3));
    }
    table.add_row(row);
    std::printf("trained %s\n", name.c_str());
  }
  std::printf("\nAccuracy vs test-time phase noise (variation-aware trained):\n");
  table.print(std::cout);
  return 0;
}
