// End-to-end deployment tour: search a core, train it, checkpoint it,
// freeze it, and serve queries.
//
//   1. Run a miniature ADEPT search (matrix-fit proxy) to get a topology —
//      or load a previously saved checkpoint if a path is given.
//   2. Train the proxy CNN with every matmul mapped onto the searched core.
//   3. Save the trained model to a binary checkpoint and reload it
//      (round-trips are bit-exact; see src/runtime/checkpoint.h).
//   4. CompiledModel::freeze: lower the eval forward pass to tape-free
//      backend kernel calls (bit-exact vs the tape in eval mode).
//   5. Serve a batch of queries through the micro-batching Server and
//      compare its answers to the tape path.
//   6. Re-freeze with int8 quantization (FreezeOptions::quantize_int8, the
//      knob ADEPT_SERVE_QUANT=1 sets for a Server built from env) and show
//      the worst-case output delta vs the fp32 plan.
//   7. Overload the server under OverloadPolicy::reject and absorb the
//      admission refusals with the client-side retry-with-backoff helper
//      (`submit_with_backoff` below — the intended client protocol for
//      the reject policy; see docs/serving.md).
//
// Build & run:  ./build/example_serve_ptc [checkpoint.bin]
//   With an argument, steps 1-3 are replaced by loading that checkpoint.
//   Serving knobs: ADEPT_SERVE_THREADS / ADEPT_SERVE_MAX_BATCH /
//   ADEPT_SERVE_MAX_WAIT_US / ADEPT_SERVE_POLICY / ADEPT_SERVE_DEADLINE_US /
//   ADEPT_SERVE_QUANT (see src/common/env.h).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/search.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "runtime/checkpoint.h"
#include "runtime/compiled_model.h"
#include "runtime/server.h"

namespace ph = adept::photonics;
namespace nn = adept::nn;
namespace rt = adept::runtime;
namespace core = adept::core;
namespace data = adept::data;

namespace {

constexpr int kImage = 12;
constexpr int kClasses = 4;
constexpr int kWidth = 6;

ph::PtcTopology search_core() {
  std::printf("=== 1. Miniature ADEPT search (matrix-fit proxy) ===\n");
  core::SearchConfig config;
  config.mesh.k = 8;
  config.mesh.super_blocks_per_unitary = 4;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 240;
  config.footprint.f_max = 300;
  config.epochs = 8;
  config.warmup_epochs = 2;
  config.spl_epoch = 5;
  config.steps_per_epoch = 12;
  config.alm.rho0 = 1e-4;
  config.seed = 21;
  core::MatrixFitTask task(/*tiles=*/2, /*seed=*/3);
  core::AdeptSearcher searcher(config, task);
  auto result = searcher.run();
  const auto counts = result.topology.counts();
  std::printf("searched core: #CR=%lld #DC=%lld #Blk=%lld, %.0f k-um^2 (AMF)\n\n",
              static_cast<long long>(counts.cr), static_cast<long long>(counts.dc),
              static_cast<long long>(counts.blocks),
              result.topology.footprint_um2(ph::Pdk::amf()) / 1000.0);
  return result.topology;
}

// Client-side retry with exponential backoff: under OverloadPolicy::reject
// the server fails the future with RejectedError instead of blocking, and
// the client owns the waiting. Resubmit with a doubling (capped) pause;
// every other failure — DeadlineExceededError, ShutdownError, a real
// forward error — propagates to the caller.
std::vector<float> submit_with_backoff(rt::Server& server,
                                       const std::vector<float>& input,
                                       int max_attempts = 10) {
  std::int64_t backoff_us = 200;
  for (int attempt = 1;; ++attempt) {
    auto future = server.submit(input);
    try {
      return future.get();
    } catch (const rt::RejectedError&) {
      if (attempt >= max_attempts) throw;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min<std::int64_t>(backoff_us * 2, 20'000);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string ckpt_path =
      argc > 1 ? argv[1] : std::string("serve_ptc_checkpoint.bin");
  nn::OnnModel model;

  if (argc > 1) {
    std::printf("=== 1-3. Loading checkpoint %s ===\n\n", ckpt_path.c_str());
    rt::LoadedCheckpoint loaded = rt::load_checkpoint(ckpt_path);
    model = std::move(loaded.model);
    if (loaded.pdk) std::printf("checkpoint PDK: %s\n\n", loaded.pdk->name.c_str());
  } else {
    auto topo = std::make_shared<ph::PtcTopology>(search_core());

    std::printf("=== 2. Training the deployable proxy CNN on the core ===\n");
    data::DatasetSpec spec = data::DatasetSpec::mnist_like();
    spec.height = spec.width = kImage;
    spec.classes = kClasses;
    data::SyntheticDataset train(spec, 192, 1), test(spec, 96, 2);
    adept::Rng rng(7);
    model = nn::make_proxy_cnn(1, kImage, kClasses, nn::PtcBinding::fixed(topo),
                               rng, kWidth);
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 24;
    const auto stats = nn::train_classifier(model, train, test, tc);
    std::printf("test accuracy after %d epochs: %.3f\n\n", tc.epochs,
                stats.final_accuracy);

    std::printf("=== 3. Checkpoint round trip ===\n");
    const ph::Pdk pdk = ph::Pdk::amf();
    rt::save_checkpoint(model, ckpt_path, &pdk);
    rt::LoadedCheckpoint loaded = rt::load_checkpoint(ckpt_path);
    model = std::move(loaded.model);
    std::printf("saved + reloaded %s (PDK %s, bit-exact parameters)\n\n",
                ckpt_path.c_str(), loaded.pdk ? loaded.pdk->name.c_str() : "-");
  }

  std::printf("=== 4. Freezing to a tape-free compiled plan ===\n");
  rt::CompiledModel compiled = rt::CompiledModel::freeze(model, {1, kImage, kImage});
  std::printf("%zu steps, %lld -> %lld features per sample\n\n",
              compiled.num_steps(), static_cast<long long>(compiled.input_numel()),
              static_cast<long long>(compiled.output_numel()));

  std::printf("=== 5. Serving queries ===\n");
  rt::Server server(compiled);  // knobs from ADEPT_SERVE_* env vars
  std::printf("workers=%d max_batch=%d max_wait_us=%d\n", server.config().threads,
              server.config().max_batch, server.config().max_wait_us);

  adept::Rng qrng(31);
  const int n_queries = 48;
  std::vector<std::vector<float>> queries;
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < n_queries; ++i) {
    std::vector<float> q(kImage * kImage);
    for (auto& v : q) v = static_cast<float>(qrng.uniform(-1.0, 1.0));
    queries.push_back(q);
    futures.push_back(server.submit(std::move(q)));
  }

  // Verify the served rows against the tape-based eval forward.
  int mismatches = 0;
  {
    adept::ag::NoGradGuard guard;
    model.set_training(false);
    for (int i = 0; i < n_queries; ++i) {
      const std::vector<float> served = futures[static_cast<std::size_t>(i)].get();
      adept::ag::Tensor x = adept::ag::make_tensor(
          queries[static_cast<std::size_t>(i)], {1, 1, kImage, kImage}, false);
      const std::vector<float> tape = model.net->forward(x).data();
      if (served != tape) ++mismatches;
    }
  }
  const rt::ServerStats stats = server.stats();
  std::printf("served %llu requests in %llu micro-batches (fill %.2f), "
              "p50 %.0f us, p99 %.0f us\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches), stats.mean_batch_fill,
              stats.latency_p50_us, stats.latency_p99_us);
  std::printf("served vs tape-eval mismatches: %d (should be 0 — bit-exact)\n",
              mismatches);
  server.shutdown();

  std::printf("\n=== 6. Opt-in int8 quantized serving ===\n");
  // ADEPT_SERVE_QUANT=1 makes Server(model_ref) do this automatically; here
  // the example freezes the quantized plan explicitly so both plans can be
  // compared side by side. int8 is an accuracy trade: outputs are close,
  // not bit-exact (the fp32 plan above IS bit-exact).
  rt::FreezeOptions qopt;
  qopt.quantize_int8 = true;
  rt::CompiledModel quantized =
      rt::CompiledModel::freeze(model, {1, kImage, kImage}, qopt);
  rt::CompiledModel::Workspace qws, fws;
  std::vector<float> qout(static_cast<std::size_t>(quantized.output_numel()));
  std::vector<float> fout(static_cast<std::size_t>(compiled.output_numel()));
  double max_delta = 0.0;
  for (int i = 0; i < n_queries; ++i) {
    const auto& q = queries[static_cast<std::size_t>(i)];
    quantized.run(q.data(), 1, qout.data(), qws);
    compiled.run(q.data(), 1, fout.data(), fws);
    for (std::size_t j = 0; j < qout.size(); ++j) {
      max_delta = std::max(max_delta,
                           static_cast<double>(std::fabs(qout[j] - fout[j])));
    }
  }
  std::printf("int8 vs fp32 worst output delta over %d queries: %.4f\n",
              n_queries, max_delta);

  std::printf("\n=== 7. Overload: reject policy + client retry-with-backoff ===\n");
  // A deliberately tiny server (1 worker, 2-slot queue) flooded by 3
  // clients: admission refusals are expected, and the backoff helper turns
  // every one of them into an eventual success.
  rt::ServerConfig ocfg;
  ocfg.threads = 1;
  ocfg.max_batch = 2;
  ocfg.max_wait_us = 0;
  ocfg.queue_capacity = 2;
  ocfg.policy = rt::OverloadPolicy::reject;
  rt::Server overloaded(compiled, ocfg);
  constexpr int kClients = 3, kPerClient = 16;
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&overloaded, &answered, c] {
      adept::Rng crng(static_cast<std::uint64_t>(100 + c));
      std::vector<float> q(kImage * kImage);
      for (int i = 0; i < kPerClient; ++i) {
        for (auto& v : q) v = static_cast<float>(crng.uniform(-1.0, 1.0));
        (void)submit_with_backoff(overloaded, q);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  const rt::ServerStats ostats = overloaded.stats();
  std::printf("%d queries from %d clients: %d answered, %llu admission "
              "rejections absorbed by backoff\n",
              kClients * kPerClient, kClients, answered.load(),
              static_cast<unsigned long long>(ostats.rejected));
  const bool overload_ok = answered.load() == kClients * kPerClient;
  return (mismatches == 0 && overload_ok) ? 0 : 1;
}
