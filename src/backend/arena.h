// Thread-local 64-byte-aligned scratch arena for the kernel layer's packing
// buffers.
//
// Every gemm-family kernel used to materialize its op(B)/op(A) panels into a
// freshly value-initialized std::vector per call, paying an allocation plus a
// zero-fill of memory that the pack loop immediately overwrites. The arena
// keeps one grow-only aligned buffer per thread and hands out uninitialized
// bump allocations from it, so steady-state gemm calls allocate nothing.
//
// Usage:
//   ScratchArena::Scope scope;                 // RAII: frees on scope exit
//   float* bp = scope.alloc<float>(kc * n);    // 64-byte aligned, NOT zeroed
//
// Scopes nest (a kernel that packs inside a parallel_for worker gets the
// worker thread's own arena, independent of the caller's). Pointers stay
// valid until their Scope is destroyed — growth during a scope allocates an
// overflow block instead of moving live data; the outermost scope exit folds
// the peak demand back into one contiguous buffer for the next call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace adept::backend {

class ScratchArena {
 public:
  static constexpr std::size_t kAlign = 64;  // cache line / AVX-512 friendly

  ScratchArena() = default;
  ~ScratchArena() {
    free_block(main_, cap_);
    release_overflow();
  }
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // The calling thread's arena.
  static ScratchArena& local() {
    static thread_local ScratchArena arena;
    return arena;
  }

  class Scope {
   public:
    Scope() : arena_(ScratchArena::local()), saved_off_(arena_.off_) {
      ++arena_.depth_;
    }
    ~Scope() {
      arena_.off_ = saved_off_;
      if (--arena_.depth_ == 0) arena_.consolidate();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    // Uninitialized, 64-byte-aligned storage for `count` Ts, owned by the
    // arena until this Scope (or an enclosing one) is destroyed.
    template <typename T>
    T* alloc(std::int64_t count) {
      return static_cast<T*>(
          arena_.allocate(static_cast<std::size_t>(count) * sizeof(T)));
    }

   private:
    ScratchArena& arena_;
    std::size_t saved_off_;
  };

 private:
  static void* new_block(std::size_t bytes) {
    return ::operator new(bytes, std::align_val_t{kAlign});
  }
  static void free_block(void* p, std::size_t bytes) {
    if (p != nullptr) {
      ::operator delete(p, bytes, std::align_val_t{kAlign});
    }
  }

  void* allocate(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (off_ + bytes <= cap_) {
      void* p = static_cast<std::byte*>(main_) + off_;
      off_ += bytes;
      if (off_ > peak_) peak_ = off_;
      return p;
    }
    // Does not fit: serve from a dedicated overflow block (live pointers into
    // main_ must not move) and remember the shortfall for consolidate().
    overflow_.push_back({new_block(bytes), bytes});
    overflow_bytes_ += bytes;
    return overflow_.back().p;
  }

  // Called when the outermost scope unwinds: no live pointers remain, so the
  // arena can be refit to the epoch's peak demand in one contiguous block.
  void consolidate() {
    const std::size_t need = peak_ + overflow_bytes_;
    if (need > cap_) {
      free_block(main_, cap_);
      main_ = new_block(need);
      cap_ = need;
    }
    release_overflow();
    peak_ = 0;
    overflow_bytes_ = 0;
  }

  void release_overflow() {
    for (const auto& b : overflow_) free_block(b.p, b.bytes);
    overflow_.clear();
  }

  struct Block {
    void* p;
    std::size_t bytes;
  };

  void* main_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t off_ = 0;
  std::size_t peak_ = 0;
  std::size_t overflow_bytes_ = 0;
  int depth_ = 0;
  std::vector<Block> overflow_;
};

}  // namespace adept::backend
