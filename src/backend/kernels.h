// Dense kernel layer shared by the autograd ops and the photonic linear
// algebra: cache-blocked threaded GEMM with logical transpose variants, fused
// elementwise map/zip kernels, deterministic reductions, and im2col/col2im
// for the CNN proxy.
//
// Every kernel partitions work over disjoint output ranges with chunk
// boundaries that depend only on the problem size (see parallel.h), so
// results are bit-exact across thread counts.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "backend/parallel.h"

namespace adept::backend {

// Logical operand layout for gemm: N uses the array as stored, T applies a
// transpose through the index map — the data is never copied into a
// materialized transpose visible to the caller.
enum class Trans { N, T };

// Complex operand layout: N as stored, T logical transpose, H conjugate
// transpose (the variant complex-matmul backward needs: dA = G B^H,
// dB = A^H G).
enum class CTrans { N, T, H };

// C = alpha * op(A) @ op(B) + beta * C, all row-major. op(A) is [m, k],
// op(B) is [k, n], C is [m, n]. `lda`/`ldb`/`ldc` are the physical row
// strides of the stored arrays (for a Trans::T operand the stride of the
// array as laid out in memory, not of its logical view).
void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          float alpha, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float beta, float* c, std::int64_t ldc);
void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          double alpha, const double* a, std::int64_t lda, const double* b,
          std::int64_t ldb, double beta, double* c, std::int64_t ldc);
void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          std::complex<double> alpha, const std::complex<double>* a,
          std::int64_t lda, const std::complex<double>* b, std::int64_t ldb,
          std::complex<double> beta, std::complex<double>* c, std::int64_t ldc);

// Pre-packed right operand for the float gemm — the frozen-weight serving
// path (runtime::CompiledModel). `pack_gemm_b` materializes op(B)'s k-panels
// in the ACTIVE dispatch level's layout once; `gemm_packed` then skips the
// per-call pack. Results are bit-identical to gemm(): the panel contents and
// microkernel call sequence do not change, only when the packing happens.
// When the active level has no packed path (scalar dispatch), or the level
// changed between packing and use (ADEPT_SIMD / SimdScope), gemm_packed
// falls back to the plain gemm using the raw `b` the caller still owns.
struct PackedGemmB {
  std::int64_t k = 0, n = 0;
  int level = -1;              // SimdLevel the panels target (-1 = none)
  std::vector<float> panels;   // [k-panel][tile][kc][16], zero-padded tails
};

PackedGemmB pack_gemm_b(Trans tb, std::int64_t k, std::int64_t n,
                        const float* b, std::int64_t ldb);

// C = alpha * A @ op(B) + beta * C with A [m, k] row-major (Trans::N).
// `b`/`ldb` describe the unpacked operand for the fallback path.
void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t lda, Trans tb, const float* b,
                 std::int64_t ldb, const PackedGemmB& pb, float beta, float* c,
                 std::int64_t ldc);

// ---- int8 quantized serving path ------------------------------------------
//
// The quantized CompiledModel execution mode (runtime/plan.h) runs its gemms
// on int8 operands with exact int32 accumulation and dequantizes on store.
// Because integer addition is associative, every dispatch level, thread
// count, and tiling produces IDENTICAL bits — tests ASSERT_EQ the int32
// output across scalar/avx2/avx512 (no float-style tolerance tiers).

// C = A @ B with A [m, k] row-major int8, B [k, n] row-major int8, C [m, n]
// int32 (overwritten, no beta). Safe against int32 overflow for any
// k <= 2^17 with s8-range operands (|a*b| <= 127*127).
void gemm_s8s8s32(std::int64_t m, std::int64_t n, std::int64_t k,
                  const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                  std::int64_t ldb, std::int32_t* c, std::int64_t ldc);

// Pre-packed right operand for the int8 gemm, the quantized analogue of
// PackedGemmB: freeze-time weights are packed once into the active level's
// interleaved k-pair panel layout (the _mm256_madd_epi16 operand order).
// Scalar dispatch has no packed layout (level -1, empty panels); the packed
// driver then falls back to gemm_s8s8s32 on the raw `b` — identical bits
// either way.
struct PackedGemmBS8 {
  std::int64_t k = 0, n = 0;
  int level = -1;                    // SimdLevel the panels target (-1 = none)
  std::vector<std::int8_t> panels;   // [tile][k-pair][16 cols x 2 ks], zero-padded
};

PackedGemmBS8 pack_gemm_b_s8(std::int64_t k, std::int64_t n,
                             const std::int8_t* b, std::int64_t ldb);

// gemm_s8s8s32 with op(B) pre-packed; `b`/`ldb` describe the unpacked
// operand for the fallback path (scalar level, or level changed since pack).
void gemm_s8_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                    const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb,
                    const PackedGemmBS8& pb, std::int32_t* c, std::int64_t ldc);

// max |x[i]| over n floats (0 for n == 0). Dispatched, but bit-exact at
// every level — max is order-independent — so the quantization *decision*
// never depends on the SIMD level.
float absmax(std::size_t n, const float* x);

// out[i] = clamp(round-to-nearest-even(x[i] * inv_scale), -127, 127).
// Dispatched; exact at every level because the vector float->int32 convert
// rounds to nearest-even exactly like std::lrintf under the default
// rounding mode (asserted across levels in tests/test_plan.cpp).
void quantize_s8(std::size_t n, const float* x, float inv_scale,
                 std::int8_t* out);

// Fused complex float gemm over split re/im planar operands:
//   C = op(A) @ op(B) + beta * C   (both planes)
// op(A) is [m, k], op(B) is [k, n]; `lda`/`ldb`/`ldc` are the physical row
// strides of the stored planes (re and im share one layout). One blocked
// traversal produces both output planes, so memory traffic is ~half of the
// four-real-gemm lowering. Deterministic across thread counts like `gemm`.
void cgemm(CTrans ta, CTrans tb, std::int64_t m, std::int64_t n,
           std::int64_t k, const float* ar, const float* ai, std::int64_t lda,
           const float* br, const float* bi, std::int64_t ldb, float beta,
           float* cr, float* ci, std::int64_t ldc);

// Real-by-complex gemm: C = op(A) @ B + beta * C with A real [m, k] and B a
// planar complex [k, n]; one traversal of A feeds both output planes.
//
// When `col_cos`/`col_sin` are non-null (requires beta == 0), the kernel
// epilogue multiplies column j of the product by exp(-i*phi_j) given
// cos(phi_j)/sin(phi_j) — the fused "block transfer" form P @ T @ R(Phi)
// where the diagonal phase column R never becomes a matmul.
void rcgemm(Trans ta, std::int64_t m, std::int64_t n, std::int64_t k,
            const float* a, std::int64_t lda, const float* br, const float* bi,
            std::int64_t ldb, float beta, float* cr, float* ci,
            std::int64_t ldc, const float* col_cos = nullptr,
            const float* col_sin = nullptr);

// Batched planar complex gemm: C[t] = op(A[t]) @ op(B[t]) + beta * C[t] for
// t in [0, batch). Operand planes are [batch, m, k] / [batch, k, n] stacks
// with physical batch strides `stride_a` / `stride_b` (rows inside one item
// stride by `lda` / `ldb`); a batch stride of 0 shares that operand across
// the whole batch — the shared-operand analogue of `gemm_batched`'s panel
// reuse (a shared transposed/conjugated op(B) is packed once per k-panel
// for all batch items). The row/k chunking spans the whole [batch*m] row
// space so tiny per-tile products still fill whole chunks, and the
// per-element accumulation order (two-step k pairing) is identical to
// `cgemm`, making a batched call bit-exact against per-item cgemm calls at
// any thread count.
void cgemm_batched(CTrans ta, CTrans tb, std::int64_t batch, std::int64_t m,
                   std::int64_t n, std::int64_t k, const float* ar,
                   const float* ai, std::int64_t stride_a, std::int64_t lda,
                   const float* br, const float* bi, std::int64_t stride_b,
                   std::int64_t ldb, float beta, float* cr, float* ci,
                   std::int64_t stride_c, std::int64_t ldc);

// Batched gemm with a shared right operand: C[b] = A[b] @ op(B) + beta*C[b]
// for b in [0, batch). A is [batch, m, k] with physical batch stride
// `stride_a` (rows inside a batch stride by `lda`), C likewise. The row/k
// chunking spans the whole [batch*m] row space, so small per-sample matmuls
// amortize dispatch and pack op(B) panels once for all batches.
void gemm_batched(std::int64_t batch, std::int64_t m, std::int64_t n,
                  std::int64_t k, const float* a, std::int64_t stride_a,
                  std::int64_t lda, Trans tb, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t stride_c,
                  std::int64_t ldc);

// Fused planar complex elementwise product: (or, oi) = (a * b) per element.
void cmul_planar(std::size_t n, const float* ar, const float* ai,
                 const float* br, const float* bi, float* outr, float* outi);

// Simultaneous cos/sin of a phase vector — the exp(-i*phi) table feeding the
// phase-column ops and the rcgemm epilogue. SIMD levels use a Cephes-style
// polynomial (~1-2 ulp vs libm for |x| < 8192, libm fallback per lane
// beyond); the scalar level is a plain std::cos/std::sin loop.
void sincos(std::int64_t n, const float* x, float* cos_out, float* sin_out);

// Row-wise softmax / log-softmax forward over a [rows, cols] matrix
// (max-subtracted, exp vectorized at SIMD levels). The scalar level keeps
// the pre-SIMD double-accumulator loop bit for bit.
void softmax_rows(std::int64_t rows, std::int64_t cols, const float* a,
                  float* out);
void log_softmax_rows(std::int64_t rows, std::int64_t cols, const float* a,
                      float* out);

// Patch extraction for NCHW conv-as-gemm. `out` is [n*oh*ow, c*kh*kw] with
// oh = (h + 2*pad - kh)/stride + 1 (ow analogous); out-of-image taps are 0.
void im2col(const float* x, std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* out);

// im2col over int8 elements, for the quantized serving path: the feature
// map is quantized once per sample (cheap — c*h*w values), then patches are
// gathered as bytes, a quarter of the fp32 scratch traffic. Pure data
// movement, so gathering quantized pixels equals quantizing gathered
// pixels element for element.
void im2col_s8(const std::int8_t* x, std::int64_t n, std::int64_t c,
               std::int64_t h, std::int64_t w, std::int64_t kh,
               std::int64_t kw, std::int64_t stride, std::int64_t pad,
               std::int8_t* out);

// Adjoint of im2col: scatters `cols` (same layout as im2col's output) back
// into the image, *accumulating* into gx (callers pass a gradient buffer).
void col2im(const float* cols, std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* gx);

// Deterministic sum: fixed 8192-element blocks accumulated in double, block
// partials combined in index order — identical bits for any thread count.
double reduce_sum(const float* a, std::size_t n);

namespace detail {
constexpr std::int64_t kElemGrain = 1 << 14;  // elementwise chunk size
}

// Fused elementwise kernels. The functor is applied per element; chunks of
// kElemGrain indices run across threads.

// out[i] = f(a[i])
template <typename F>
inline void map(std::size_t n, const float* a, float* out, F f) {
  parallel_for(static_cast<std::int64_t>(n), detail::kElemGrain,
               [=](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) out[i] = f(a[i]);
               });
}

// out[i] = f(a[i], b[i])
template <typename F>
inline void zip(std::size_t n, const float* a, const float* b, float* out, F f) {
  parallel_for(static_cast<std::int64_t>(n), detail::kElemGrain,
               [=](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i]);
               });
}

// f(i) for i in [0, n); f must only touch state indexed by i (or otherwise
// disjoint per index). `grain` tunes chunking for heavier bodies.
template <typename F>
inline void for_each_index(std::int64_t n, F f,
                           std::int64_t grain = detail::kElemGrain) {
  parallel_for(n, grain, [=](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) f(i);
  });
}

}  // namespace adept::backend
