#include "backend/kernels.h"

#include <algorithm>
#include <vector>

namespace adept::backend {

namespace {

// Panel sizes for the blocked GEMM. Rows of C are the parallel dimension;
// kKBlock-deep panels of op(B) are packed contiguously when B is logically
// transposed so the innermost axpy always streams unit-stride memory.
constexpr std::int64_t kRowBlock = 48;
constexpr std::int64_t kKBlock = 256;

// SkipZero preserves the seed's sparse-operand shortcut for the photonic
// matrices (butterfly/permutation products are mostly zeros); the float NN
// path keeps a branch-free inner loop instead.
template <typename T, bool SkipZero>
void gemm_impl(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
               std::int64_t k, T alpha, const T* a, std::int64_t lda,
               const T* b, std::int64_t ldb, T beta, T* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  auto scale_row = [&](T* crow) {
    if (beta == T{}) {
      std::fill(crow, crow + n, T{});
    } else if (beta != T{1}) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  };
  if (k <= 0) {
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) scale_row(c + i * ldc);
    });
    return;
  }
  // k-panels are the outer loop so a logically transposed B is gathered into
  // the packed scratch exactly once per panel and shared by every row task;
  // scratch stays bounded at kKBlock*n, never a full copy of B. The inner
  // axpy then always streams unit-stride memory. Per-element accumulation
  // order (k0 ascending, kk ascending) is independent of the row chunking,
  // preserving bit-exactness across thread counts.
  std::vector<T> bpack;
  if (tb == Trans::T) bpack.resize(static_cast<std::size_t>(std::min(kKBlock, k) * n));
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t kc = std::min(kKBlock, k - k0);
    const T* bpanel;
    std::int64_t bstride;
    if (tb == Trans::N) {
      bpanel = b + k0 * ldb;
      bstride = ldb;
    } else {
      T* bp = bpack.data();
      parallel_for(kc, kRowBlock, [=](std::int64_t kk0, std::int64_t kk1) {
        for (std::int64_t j = 0; j < n; ++j) {
          const T* bcol = b + j * ldb + k0;
          for (std::int64_t kk = kk0; kk < kk1; ++kk) {
            bp[kk * n + j] = bcol[kk];
          }
        }
      });
      bpanel = bpack.data();
      bstride = n;
    }
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        T* crow = c + i * ldc;
        if (k0 == 0) scale_row(crow);
        for (std::int64_t kk = 0; kk < kc; ++kk) {
          T av = ta == Trans::N ? a[i * lda + k0 + kk]
                                : a[(k0 + kk) * lda + i];
          if constexpr (SkipZero) {
            if (av == T{}) continue;
          }
          av *= alpha;
          const T* brow = bpanel + kk * bstride;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    });
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          float alpha, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  gemm_impl<float, false>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          double alpha, const double* a, std::int64_t lda, const double* b,
          std::int64_t ldb, double beta, double* c, std::int64_t ldc) {
  gemm_impl<double, true>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          std::complex<double> alpha, const std::complex<double>* a,
          std::int64_t lda, const std::complex<double>* b, std::int64_t ldb,
          std::complex<double> beta, std::complex<double>* c,
          std::int64_t ldc) {
  gemm_impl<std::complex<double>, true>(ta, tb, m, n, k, alpha, a, lda, b, ldb,
                                        beta, c, ldc);
}

void im2col(const float* x, std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* out) {
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  const std::int64_t cols = c * kh * kw;
  const std::int64_t rows = n * oh * ow;
  // One output row per patch; rows are independent, so parallelize there.
  // Zero whole chunks up front (one large fill beats a per-row fill by ~3x),
  // then gather only the in-image taps.
  parallel_for(rows, std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(cols, 1)),
               [=](std::int64_t r0, std::int64_t r1) {
                 std::fill(out + r0 * cols, out + r1 * cols, 0.0f);
                 for (std::int64_t row = r0; row < r1; ++row) {
                   float* orow = out + row * cols;
                   const std::int64_t xo = row % ow;
                   const std::int64_t yo = (row / ow) % oh;
                   const std::int64_t ni = row / (ow * oh);
                   // Clip the tap window once per row so the copy loops are
                   // branch-free (out-of-image taps stay at the fill's 0).
                   const std::int64_t x0 = xo * stride - pad;
                   const std::int64_t y0 = yo * stride - pad;
                   const std::int64_t kx_lo = std::max<std::int64_t>(0, -x0);
                   const std::int64_t kx_hi = std::min(kw, w - x0);
                   const std::int64_t ky_lo = std::max<std::int64_t>(0, -y0);
                   const std::int64_t ky_hi = std::min(kh, h - y0);
                   for (std::int64_t ci = 0; ci < c; ++ci) {
                     const float* xplane = x + (ni * c + ci) * h * w;
                     for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
                       const float* xrow = xplane + (y0 + ky) * w + x0;
                       float* opatch = orow + (ci * kh + ky) * kw;
                       for (std::int64_t kx = kx_lo; kx < kx_hi; ++kx) {
                         opatch[kx] = xrow[kx];
                       }
                     }
                   }
                 }
               });
}

void col2im(const float* cols_data, std::int64_t n, std::int64_t c,
            std::int64_t h, std::int64_t w, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* gx) {
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  const std::int64_t cols = c * kh * kw;
  // Overlapping patches within one image write the same gx pixels, so the
  // batch index is the only safe parallel dimension.
  for_each_index(
      n,
      [=](std::int64_t ni) {
        for (std::int64_t yo = 0; yo < oh; ++yo) {
          for (std::int64_t xo = 0; xo < ow; ++xo) {
            const std::int64_t row = (ni * oh + yo) * ow + xo;
            const float* crow = cols_data + row * cols;
            const std::int64_t x0 = xo * stride - pad;
            const std::int64_t y0 = yo * stride - pad;
            const std::int64_t kx_lo = std::max<std::int64_t>(0, -x0);
            const std::int64_t kx_hi = std::min(kw, w - x0);
            const std::int64_t ky_lo = std::max<std::int64_t>(0, -y0);
            const std::int64_t ky_hi = std::min(kh, h - y0);
            for (std::int64_t ci = 0; ci < c; ++ci) {
              float* gplane = gx + (ni * c + ci) * h * w;
              for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
                float* grow = gplane + (y0 + ky) * w + x0;
                const float* cpatch = crow + (ci * kh + ky) * kw;
                for (std::int64_t kx = kx_lo; kx < kx_hi; ++kx) {
                  grow[kx] += cpatch[kx];
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
}

double reduce_sum(const float* a, std::size_t n) {
  constexpr std::int64_t kBlock = 8192;
  const std::int64_t total = static_cast<std::int64_t>(n);
  if (total <= kBlock) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < total; ++i) acc += a[i];
    return acc;
  }
  const std::int64_t blocks = (total + kBlock - 1) / kBlock;
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(blocks, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t bi = b0; bi < b1; ++bi) {
      const std::int64_t lo = bi * kBlock;
      const std::int64_t hi = std::min(lo + kBlock, total);
      double acc = 0.0;
      for (std::int64_t i = lo; i < hi; ++i) acc += a[i];
      partial[static_cast<std::size_t>(bi)] = acc;
    }
  });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

}  // namespace adept::backend
