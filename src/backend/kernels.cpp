#include "backend/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "backend/arena.h"
#include "backend/dispatch.h"

namespace adept::backend {

namespace {

// Panel sizes for the blocked GEMM. Rows of C are the parallel dimension;
// kKBlock-deep panels of op(B) are packed contiguously when B is logically
// transposed so the innermost axpy always streams unit-stride memory.
constexpr std::int64_t kRowBlock = 48;
constexpr std::int64_t kKBlock = 256;

// Beta epilogue shared by every gemm variant: beta == 0 zero-fills the row,
// beta == 1 leaves it untouched, anything else scales in place.
template <typename T>
inline void scale_row_beta(T beta, std::int64_t n, T* row) {
  if (beta == T{}) {
    std::fill(row, row + n, T{});
  } else if (beta != T{1}) {
    for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
  }
}

// Gathers the [kc, n] panel of a logically transposed B (physical [n, ldb],
// panel starting at column k0) into row-major scratch `bp` so the gemm inner
// loops always stream unit-stride memory. Shared by the scalar gemm variants.
template <typename T>
inline void pack_bt_panel(const T* b, std::int64_t ldb, std::int64_t k0,
                          std::int64_t kc, std::int64_t n, T* bp) {
  parallel_for(kc, kRowBlock, [=](std::int64_t kk0, std::int64_t kk1) {
    for (std::int64_t j = 0; j < n; ++j) {
      const T* bcol = b + j * ldb + k0;
      for (std::int64_t kk = kk0; kk < kk1; ++kk) bp[kk * n + j] = bcol[kk];
    }
  });
}

// SkipZero preserves the seed's sparse-operand shortcut for the photonic
// matrices (butterfly/permutation products are mostly zeros); the float NN
// path keeps a branch-free inner loop instead.
template <typename T, bool SkipZero>
void gemm_impl(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
               std::int64_t k, T alpha, const T* a, std::int64_t lda,
               const T* b, std::int64_t ldb, T beta, T* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  auto scale_row = [&](T* crow) { scale_row_beta(beta, n, crow); };
  if (k <= 0) {
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) scale_row(c + i * ldc);
    });
    return;
  }
  // k-panels are the outer loop so a logically transposed B is gathered into
  // the packed scratch exactly once per panel and shared by every row task;
  // scratch stays bounded at kKBlock*n, never a full copy of B. The inner
  // axpy then always streams unit-stride memory. Per-element accumulation
  // order (k0 ascending, kk ascending) is independent of the row chunking,
  // preserving bit-exactness across thread counts. Scratch comes from the
  // thread-local arena: aligned, uninitialized (the pack loop overwrites
  // every element the inner loops read), reused across calls.
  ScratchArena::Scope scratch;
  T* bpack = tb == Trans::T ? scratch.alloc<T>(std::min(kKBlock, k) * n)
                            : nullptr;
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t kc = std::min(kKBlock, k - k0);
    const T* bpanel;
    std::int64_t bstride;
    if (tb == Trans::N) {
      bpanel = b + k0 * ldb;
      bstride = ldb;
    } else {
      pack_bt_panel(b, ldb, k0, kc, n, bpack);
      bpanel = bpack;
      bstride = n;
    }
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        T* crow = c + i * ldc;
        if (k0 == 0) scale_row(crow);
        for (std::int64_t kk = 0; kk < kc; ++kk) {
          T av = ta == Trans::N ? a[i * lda + k0 + kk]
                                : a[(k0 + kk) * lda + i];
          if constexpr (SkipZero) {
            if (av == T{}) continue;
          }
          av *= alpha;
          const T* brow = bpanel + kk * bstride;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    });
  }
}

// Planar complex gemm sharing the blocked structure of gemm_impl: k-panels
// outer so transposed/conjugated op(B) is packed once per panel into planar
// scratch, rows of C parallel inner. Per-element accumulation order is again
// (k0 ascending, kk ascending) regardless of chunking, so results are
// bit-exact across thread counts.
void cgemm_impl(CTrans ta, CTrans tb, std::int64_t m, std::int64_t n,
                std::int64_t k, const float* ar, const float* ai,
                std::int64_t lda, const float* br, const float* bi,
                std::int64_t ldb, float beta, float* cr, float* ci,
                std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  auto scale_row = [&](float* rrow, float* irow) {
    scale_row_beta(beta, n, rrow);
    scale_row_beta(beta, n, irow);
  };
  if (k <= 0) {
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) scale_row(cr + i * ldc, ci + i * ldc);
    });
    return;
  }
  ScratchArena::Scope scratch;
  const bool pack_b = tb != CTrans::N;
  float* bpack =
      pack_b ? scratch.alloc<float>(2 * std::min(kKBlock, k) * n) : nullptr;
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t kc = std::min(kKBlock, k - k0);
    const float *bpr, *bpi;
    std::int64_t bstride;
    if (!pack_b) {
      bpr = br + k0 * ldb;
      bpi = bi + k0 * ldb;
      bstride = ldb;
    } else {
      float* pr = bpack;
      float* pi = bpack + kc * n;
      const float isign = tb == CTrans::H ? -1.0f : 1.0f;
      parallel_for(kc, kRowBlock, [=](std::int64_t kk0, std::int64_t kk1) {
        for (std::int64_t j = 0; j < n; ++j) {
          const float* rcol = br + j * ldb + k0;
          const float* icol = bi + j * ldb + k0;
          for (std::int64_t kk = kk0; kk < kk1; ++kk) {
            pr[kk * n + j] = rcol[kk];
            pi[kk * n + j] = isign * icol[kk];
          }
        }
      });
      bpr = bpack;
      bpi = bpack + kc * n;
      bstride = n;
    }
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = cr + i * ldc;
        float* cirow = ci + i * ldc;
        if (k0 == 0) scale_row(crow, cirow);
        auto opa = [&](std::int64_t kk, float& re, float& im) {
          if (ta == CTrans::N) {
            re = ar[i * lda + k0 + kk];
            im = ai[i * lda + k0 + kk];
          } else {
            re = ar[(k0 + kk) * lda + i];
            im = ai[(k0 + kk) * lda + i];
            if (ta == CTrans::H) im = -im;
          }
        };
        std::int64_t kk = 0;
        // Two k-steps per pass: C's rows are read/written once per 16 flops
        // instead of per 8. Each element still accumulates in ascending kk
        // order (two separate += statements), and the pairing is a pure
        // function of the panel size, so thread-count bit-exactness holds.
        for (; kk + 1 < kc; kk += 2) {
          float a0, a0i, a1, a1i;
          opa(kk, a0, a0i);
          opa(kk + 1, a1, a1i);
          if (a0 == 0.0f && a0i == 0.0f && a1 == 0.0f && a1i == 0.0f) continue;
          const float* b0r = bpr + kk * bstride;
          const float* b0i = bpi + kk * bstride;
          const float* b1r = b0r + bstride;
          const float* b1i = b0i + bstride;
          for (std::int64_t j = 0; j < n; ++j) {
            float re = crow[j], im = cirow[j];
            re += a0 * b0r[j] - a0i * b0i[j];
            im += a0 * b0i[j] + a0i * b0r[j];
            re += a1 * b1r[j] - a1i * b1i[j];
            im += a1 * b1i[j] + a1i * b1r[j];
            crow[j] = re;
            cirow[j] = im;
          }
        }
        for (; kk < kc; ++kk) {
          float av, avi;
          opa(kk, av, avi);
          if (av == 0.0f && avi == 0.0f) continue;
          const float* brow = bpr + kk * bstride;
          const float* birow = bpi + kk * bstride;
          for (std::int64_t j = 0; j < n; ++j) {
            crow[j] += av * brow[j] - avi * birow[j];
            cirow[j] += av * birow[j] + avi * brow[j];
          }
        }
      }
    });
  }
}

// Fraction of zero entries in a stored [rows, cols] block (physical row
// stride ld). The scalar kernels skip zero operand entries — a huge win on
// hard permutation operands — while the SIMD tiles are branch-free; the
// rcgemm and double/complex gemm wrappers probe density and keep sparse
// operands on the scalar path.
template <typename T>
bool mostly_zero(const T* a, std::int64_t rows, std::int64_t cols,
                 std::int64_t ld) {
  // Verdict: >= 7/8 zeros, i.e. nonzeros * 8 <= rows * cols. Dense operands
  // (the common case in the training loop) cross the nonzero budget within
  // the first few rows, so the probe bails out early instead of scanning A.
  const std::int64_t budget = rows * cols;
  std::int64_t nonzero = 0;
  for (std::int64_t i = 0; i < rows; ++i) {
    const T* row = a + i * ld;
    for (std::int64_t j = 0; j < cols; ++j) {
      if (row[j] != T{} && ++nonzero * 8 > budget) return false;
    }
  }
  return true;
}

}  // namespace

void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          float alpha, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  // Degenerate shapes (k <= 0 is a pure beta scale) stay on the scalar path
  // so the semantics are identical at every dispatch level.
  if (const KernelTable* t = active_kernels(); t && m > 0 && n > 0 && k > 0) {
    t->gemm_f32(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  gemm_impl<float, false>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

PackedGemmB pack_gemm_b(Trans tb, std::int64_t k, std::int64_t n,
                        const float* b, std::int64_t ldb) {
  PackedGemmB pb;
  pb.k = k;
  pb.n = n;
  const KernelTable* t = active_kernels();
  if (t == nullptr || k <= 0 || n <= 0) return pb;  // scalar: no packed path
  pb.level = static_cast<int>(simd_level());
  pb.panels.resize(static_cast<std::size_t>(t->gemm_packed_b_floats(k, n)));
  t->gemm_pack_b(tb, k, n, b, ldb, pb.panels.data());
  return pb;
}

void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t lda, Trans tb, const float* b,
                 std::int64_t ldb, const PackedGemmB& pb, float beta, float* c,
                 std::int64_t ldc) {
  const KernelTable* t = active_kernels();
  if (t != nullptr && m > 0 && n > 0 && k > 0 && !pb.panels.empty() &&
      pb.level == static_cast<int>(simd_level()) && pb.k == k && pb.n == n) {
    t->gemm_f32_packed(m, n, k, alpha, a, lda, pb.panels.data(), beta, c, ldc);
    return;
  }
  gemm(Trans::N, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm_s8s8s32(std::int64_t m, std::int64_t n, std::int64_t k,
                  const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                  std::int64_t ldb, std::int32_t* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  // Scalar reference: ikj with int32 accumulation in C. Integer adds are
  // associative, so any tiling/threading of the same products matches this
  // bit for bit — the parity anchor for the SIMD drivers.
  parallel_for(m, kRowBlock, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      std::int32_t* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
      const std::int8_t* arow = a + i * lda;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int32_t av = arow[kk];
        if (av == 0) continue;
        const std::int8_t* brow = b + kk * ldb;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

PackedGemmBS8 pack_gemm_b_s8(std::int64_t k, std::int64_t n,
                             const std::int8_t* b, std::int64_t ldb) {
  PackedGemmBS8 pb;
  pb.k = k;
  pb.n = n;
  const KernelTable* t = active_kernels();
  if (t == nullptr || k <= 0 || n <= 0) return pb;  // scalar: no packed path
  pb.level = static_cast<int>(simd_level());
  pb.panels.resize(static_cast<std::size_t>(t->gemm_s8_packed_b_bytes(k, n)));
  t->gemm_pack_b_s8(k, n, b, ldb, pb.panels.data());
  return pb;
}

void gemm_s8_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                    const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb,
                    const PackedGemmBS8& pb, std::int32_t* c,
                    std::int64_t ldc) {
  const KernelTable* t = active_kernels();
  if (t != nullptr && m > 0 && n > 0 && k > 0 && !pb.panels.empty() &&
      pb.level == static_cast<int>(simd_level()) && pb.k == k && pb.n == n) {
    t->gemm_s8s8s32_packed(m, n, k, a, lda, pb.panels.data(), c, ldc);
    return;
  }
  gemm_s8s8s32(m, n, k, a, lda, b, ldb, c, ldc);
}

float absmax(std::size_t n, const float* x) {
  const KernelTable* t = active_kernels();
  if (t != nullptr) return t->absmax_f32(n, x);
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

void quantize_s8(std::size_t n, const float* x, float inv_scale,
                 std::int8_t* out) {
  const KernelTable* t = active_kernels();
  if (t != nullptr) {
    t->quantize_s8(n, x, inv_scale, out);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const long q = std::lrintf(x[i] * inv_scale);
    out[i] = static_cast<std::int8_t>(std::min<long>(127, std::max<long>(-127, q)));
  }
}

void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          double alpha, const double* a, std::int64_t lda, const double* b,
          std::int64_t ldb, double beta, double* c, std::int64_t ldc) {
  // Dense operands route to the dispatched 4-wide tiles; permutation-like
  // operands (the photonic P/butterfly factors) keep the zero-skipping
  // blocked loops, which beat any dense kernel on >= 7/8-zero inputs.
  // Results agree within double-FMA contraction tolerance (<= 1e-14 on the
  // photonics shapes — pinned by the dispatch-parity tests); the scalar
  // level IS the pre-dispatch path, bit for bit.
  if (const KernelTable* t = active_kernels();
      t && m > 0 && n > 0 && k > 0 &&
      !mostly_zero(a, ta == Trans::N ? m : k, ta == Trans::N ? k : m, lda) &&
      !mostly_zero(b, tb == Trans::N ? k : n, tb == Trans::N ? n : k, ldb)) {
    t->gemm_f64(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  gemm_impl<double, true>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
          std::complex<double> alpha, const std::complex<double>* a,
          std::int64_t lda, const std::complex<double>* b, std::int64_t ldb,
          std::complex<double> beta, std::complex<double>* c,
          std::int64_t ldc) {
  // Dispatched path: deinterleave the dense operands into planar arena
  // scratch and run the 4-wide planar kernel — the deinterleave is
  // O(m*k + k*n + m*n) against O(m*n*k) multiply work, so it amortizes
  // even on the K=8 mesh tiles. Restricted to the photonics hot case
  // (alpha == 1, real beta); anything fancier stays on the scalar loops,
  // as do sparse permutation-like operands.
  const std::int64_t ra = ta == Trans::N ? m : k, ca = ta == Trans::N ? k : m;
  const std::int64_t rb = tb == Trans::N ? k : n, cb = tb == Trans::N ? n : k;
  if (const KernelTable* t = active_kernels();
      t && m > 0 && n > 0 && k > 0 && alpha == std::complex<double>{1.0} &&
      beta.imag() == 0.0 && !mostly_zero(a, ra, ca, lda) &&
      !mostly_zero(b, rb, cb, ldb)) {
    ScratchArena::Scope scratch;
    double* ap = scratch.alloc<double>(2 * ra * ca);
    double* bp = scratch.alloc<double>(2 * rb * cb);
    double* cp = scratch.alloc<double>(2 * m * n);
    auto split = [](const std::complex<double>* src, std::int64_t rows,
                    std::int64_t cols, std::int64_t ld, double* re,
                    double* im) {
      parallel_for(rows, kRowBlock, [=](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const std::complex<double>* srow = src + i * ld;
          double* rrow = re + i * cols;
          double* irow = im + i * cols;
          for (std::int64_t j = 0; j < cols; ++j) {
            rrow[j] = srow[j].real();
            irow[j] = srow[j].imag();
          }
        }
      });
    };
    split(a, ra, ca, lda, ap, ap + ra * ca);
    split(b, rb, cb, ldb, bp, bp + rb * cb);
    const double rbeta = beta.real();
    if (rbeta != 0.0) split(c, m, n, ldc, cp, cp + m * n);
    t->zgemm_planar(ta == Trans::N ? CTrans::N : CTrans::T,
                    tb == Trans::N ? CTrans::N : CTrans::T, m, n, k, ap,
                    ap + ra * ca, ca, bp, bp + rb * cb, cb, rbeta, cp,
                    cp + m * n, n);
    parallel_for(m, kRowBlock, [=](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        std::complex<double>* crow = c + i * ldc;
        const double* rrow = cp + i * n;
        const double* irow = cp + m * n + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] = {rrow[j], irow[j]};
        }
      }
    });
    return;
  }
  gemm_impl<std::complex<double>, true>(ta, tb, m, n, k, alpha, a, lda, b, ldb,
                                        beta, c, ldc);
}

void cgemm(CTrans ta, CTrans tb, std::int64_t m, std::int64_t n,
           std::int64_t k, const float* ar, const float* ai, std::int64_t lda,
           const float* br, const float* bi, std::int64_t ldb, float beta,
           float* cr, float* ci, std::int64_t ldc) {
  if (const KernelTable* t = active_kernels(); t && m > 0 && n > 0 && k > 0) {
    t->cgemm(ta, tb, m, n, k, ar, ai, lda, br, bi, ldb, beta, cr, ci, ldc);
    return;
  }
  cgemm_impl(ta, tb, m, n, k, ar, ai, lda, br, bi, ldb, beta, cr, ci, ldc);
}

void rcgemm(Trans ta, std::int64_t m, std::int64_t n, std::int64_t k,
            const float* a, std::int64_t lda, const float* br, const float* bi,
            std::int64_t ldb, float beta, float* cr, float* ci,
            std::int64_t ldc, const float* col_cos, const float* col_sin) {
  if (m <= 0 || n <= 0) return;
  // The phase epilogue rewrites the product in place, which only composes
  // with a zero-initialized accumulator.
  const bool phased = col_cos != nullptr;
  if (phased != (col_sin != nullptr)) {
    throw std::invalid_argument("rcgemm: col_cos/col_sin must be passed together");
  }
  if (phased && beta != 0.0f) {
    throw std::invalid_argument("rcgemm: phase epilogue requires beta == 0");
  }
  if (const KernelTable* t = active_kernels();
      t && k > 0 &&
      !mostly_zero(a, ta == Trans::N ? m : k, ta == Trans::N ? k : m, lda)) {
    t->rcgemm(ta, m, n, k, a, lda, br, bi, ldb, beta, cr, ci, ldc, col_cos,
              col_sin);
    return;
  }
  const std::int64_t last_k0 = k <= 0 ? 0 : ((k - 1) / kKBlock) * kKBlock;
  auto scale_row = [&](float* rrow, float* irow) {
    scale_row_beta(beta, n, rrow);
    scale_row_beta(beta, n, irow);
  };
  if (k <= 0) {
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) scale_row(cr + i * ldc, ci + i * ldc);
    });
    return;
  }
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t kc = std::min(kKBlock, k - k0);
    parallel_for(m, kRowBlock, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = cr + i * ldc;
        float* cirow = ci + i * ldc;
        if (k0 == 0) scale_row(crow, cirow);
        auto opa = [&](std::int64_t kk) {
          return ta == Trans::N ? a[i * lda + k0 + kk] : a[(k0 + kk) * lda + i];
        };
        std::int64_t kk = 0;
        // Same k-step pairing as cgemm: per-element accumulation stays in
        // ascending kk order, C rows touched half as often.
        for (; kk + 1 < kc; kk += 2) {
          const float a0 = opa(kk), a1 = opa(kk + 1);
          if (a0 == 0.0f && a1 == 0.0f) continue;
          const float* b0r = br + (k0 + kk) * ldb;
          const float* b0i = bi + (k0 + kk) * ldb;
          const float* b1r = b0r + ldb;
          const float* b1i = b0i + ldb;
          for (std::int64_t j = 0; j < n; ++j) {
            float re = crow[j], im = cirow[j];
            re += a0 * b0r[j];
            im += a0 * b0i[j];
            re += a1 * b1r[j];
            im += a1 * b1i[j];
            crow[j] = re;
            cirow[j] = im;
          }
        }
        for (; kk < kc; ++kk) {
          const float av = opa(kk);
          if (av == 0.0f) continue;
          const float* brow = br + (k0 + kk) * ldb;
          const float* birow = bi + (k0 + kk) * ldb;
          for (std::int64_t j = 0; j < n; ++j) {
            crow[j] += av * brow[j];
            cirow[j] += av * birow[j];
          }
        }
        if (phased && k0 == last_k0) {
          // Column phase epilogue: (re, im) <- (re, im) * e^{-i phi_j} once
          // the row's accumulation is complete.
          for (std::int64_t j = 0; j < n; ++j) {
            const float re = crow[j], im = cirow[j];
            crow[j] = re * col_cos[j] + im * col_sin[j];
            cirow[j] = im * col_cos[j] - re * col_sin[j];
          }
        }
      }
    });
  }
}

void cgemm_batched(CTrans ta, CTrans tb, std::int64_t batch, std::int64_t m,
                   std::int64_t n, std::int64_t k, const float* ar,
                   const float* ai, std::int64_t stride_a, std::int64_t lda,
                   const float* br, const float* bi, std::int64_t stride_b,
                   std::int64_t ldb, float beta, float* cr, float* ci,
                   std::int64_t stride_c, std::int64_t ldc) {
  if (batch <= 0 || m <= 0 || n <= 0) return;
  if (const KernelTable* t = active_kernels(); t && k > 0) {
    t->cgemm_batched(ta, tb, batch, m, n, k, ar, ai, stride_a, lda, br, bi,
                     stride_b, ldb, beta, cr, ci, stride_c, ldc);
    return;
  }
  const std::int64_t rows = batch * m;
  auto scale_row = [&](float* rrow, float* irow) {
    scale_row_beta(beta, n, rrow);
    scale_row_beta(beta, n, irow);
  };
  if (k <= 0) {
    parallel_for(rows, kRowBlock, [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t r = r0; r < r1; ++r) {
        const std::int64_t t = r / m, i = r % m;
        scale_row(cr + t * stride_c + i * ldc, ci + t * stride_c + i * ldc);
      }
    });
    return;
  }
  const bool shared_b = stride_b == 0;
  // Transposed/conjugated op(B) panels are packed into planar scratch per
  // k-panel — once for a shared operand, per batch item otherwise — so the
  // inner axpy always streams unit-stride memory, exactly like cgemm's pack
  // (identical packed values, so per-element products match a per-item
  // cgemm call bit for bit). The two-step k pairing below matches cgemm's
  // accumulation order, completing the bit-exactness guarantee.
  ScratchArena::Scope scratch;
  const bool pack_b = tb != CTrans::N;
  const std::int64_t kc_max = std::min(kKBlock, k);
  const std::int64_t pack_items = shared_b ? 1 : batch;
  float* bpack =
      pack_b ? scratch.alloc<float>(pack_items * 2 * kc_max * n) : nullptr;
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t kc = std::min(kKBlock, k - k0);
    if (pack_b) {
      const float isign = tb == CTrans::H ? -1.0f : 1.0f;
      float* pk = bpack;
      parallel_for(pack_items * kc, kRowBlock, [=](std::int64_t q0, std::int64_t q1) {
        for (std::int64_t q = q0; q < q1; ++q) {
          const std::int64_t item = q / kc, kk = q % kc;
          const float* rb = br + item * stride_b;
          const float* ib = bi + item * stride_b;
          float* pr = pk + item * 2 * kc * n;
          float* pi = pr + kc * n;
          for (std::int64_t j = 0; j < n; ++j) {
            pr[kk * n + j] = rb[j * ldb + k0 + kk];
            pi[kk * n + j] = isign * ib[j * ldb + k0 + kk];
          }
        }
      });
    }
    parallel_for(rows, kRowBlock, [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t r = r0; r < r1; ++r) {
        const std::int64_t t = r / m, i = r % m;
        const float* tar = ar + t * stride_a;
        const float* tai = ai + t * stride_a;
        float* crow = cr + t * stride_c + i * ldc;
        float* cirow = ci + t * stride_c + i * ldc;
        if (k0 == 0) scale_row(crow, cirow);
        const float *bpr, *bpi;
        std::int64_t bstride;
        if (pack_b) {
          bpr = bpack + (shared_b ? 0 : t * 2 * kc * n);
          bpi = bpr + kc * n;
          bstride = n;
        } else {
          bpr = br + t * stride_b + k0 * ldb;
          bpi = bi + t * stride_b + k0 * ldb;
          bstride = ldb;
        }
        auto opa = [&](std::int64_t kk, float& re, float& im) {
          if (ta == CTrans::N) {
            re = tar[i * lda + k0 + kk];
            im = tai[i * lda + k0 + kk];
          } else {
            re = tar[(k0 + kk) * lda + i];
            im = tai[(k0 + kk) * lda + i];
            if (ta == CTrans::H) im = -im;
          }
        };
        std::int64_t kk = 0;
        // Same two-k-step pairing as cgemm: per-element accumulation in
        // ascending kk order with two += per pass — required for the
        // bit-exactness guarantee against per-item cgemm calls.
        for (; kk + 1 < kc; kk += 2) {
          float a0, a0i, a1, a1i;
          opa(kk, a0, a0i);
          opa(kk + 1, a1, a1i);
          if (a0 == 0.0f && a0i == 0.0f && a1 == 0.0f && a1i == 0.0f) continue;
          const float* b0r = bpr + kk * bstride;
          const float* b0i = bpi + kk * bstride;
          const float* b1r = b0r + bstride;
          const float* b1i = b0i + bstride;
          for (std::int64_t j = 0; j < n; ++j) {
            float re = crow[j], im = cirow[j];
            re += a0 * b0r[j] - a0i * b0i[j];
            im += a0 * b0i[j] + a0i * b0r[j];
            re += a1 * b1r[j] - a1i * b1i[j];
            im += a1 * b1i[j] + a1i * b1r[j];
            crow[j] = re;
            cirow[j] = im;
          }
        }
        for (; kk < kc; ++kk) {
          float av, avi;
          opa(kk, av, avi);
          if (av == 0.0f && avi == 0.0f) continue;
          const float* brow = bpr + kk * bstride;
          const float* birow = bpi + kk * bstride;
          for (std::int64_t j = 0; j < n; ++j) {
            crow[j] += av * brow[j] - avi * birow[j];
            cirow[j] += av * birow[j] + avi * brow[j];
          }
        }
      }
    });
  }
}

void gemm_batched(std::int64_t batch, std::int64_t m, std::int64_t n,
                  std::int64_t k, const float* a, std::int64_t stride_a,
                  std::int64_t lda, Trans tb, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t stride_c,
                  std::int64_t ldc) {
  if (batch <= 0 || m <= 0 || n <= 0) return;
  if (const KernelTable* t = active_kernels(); t && k > 0) {
    t->gemm_batched(batch, m, n, k, a, stride_a, lda, tb, b, ldb, beta, c,
                    stride_c, ldc);
    return;
  }
  const std::int64_t rows = batch * m;
  if (k <= 0) {
    parallel_for(rows, kRowBlock, [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t r = r0; r < r1; ++r) {
        scale_row_beta(beta, n, c + (r / m) * stride_c + (r % m) * ldc);
      }
    });
    return;
  }
  // Same k-panel/row-chunk structure as gemm_impl, but the row space spans
  // all batches so B's panels are packed once and tiny per-sample products
  // still fill whole chunks.
  ScratchArena::Scope scratch;
  float* bpack = tb == Trans::T
                     ? scratch.alloc<float>(std::min(kKBlock, k) * n)
                     : nullptr;
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t kc = std::min(kKBlock, k - k0);
    const float* bpanel;
    std::int64_t bstride;
    if (tb == Trans::N) {
      bpanel = b + k0 * ldb;
      bstride = ldb;
    } else {
      pack_bt_panel(b, ldb, k0, kc, n, bpack);
      bpanel = bpack;
      bstride = n;
    }
    parallel_for(rows, kRowBlock, [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t r = r0; r < r1; ++r) {
        const std::int64_t bi = r / m, i = r % m;
        const float* arow = a + bi * stride_a + i * lda + k0;
        float* crow = c + bi * stride_c + i * ldc;
        if (k0 == 0) scale_row_beta(beta, n, crow);
        for (std::int64_t kk = 0; kk < kc; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = bpanel + kk * bstride;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    });
  }
}

void cmul_planar(std::size_t n, const float* ar, const float* ai,
                 const float* br, const float* bi, float* outr, float* outi) {
  if (const KernelTable* t = active_kernels()) {
    t->cmul_planar(n, ar, ai, br, bi, outr, outi);
    return;
  }
  parallel_for(static_cast<std::int64_t>(n), detail::kElemGrain,
               [=](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const float re = ar[i] * br[i] - ai[i] * bi[i];
                   outi[i] = ar[i] * bi[i] + ai[i] * br[i];
                   outr[i] = re;
                 }
               });
}

void sincos(std::int64_t n, const float* x, float* cos_out, float* sin_out) {
  if (const KernelTable* t = active_kernels()) {
    t->sincos(n, x, cos_out, sin_out);
    return;
  }
  parallel_for(n, detail::kElemGrain, [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      cos_out[i] = std::cos(x[i]);
      sin_out[i] = std::sin(x[i]);
    }
  });
}

void softmax_rows(std::int64_t rows, std::int64_t cols, const float* a,
                  float* out) {
  if (const KernelTable* t = active_kernels()) {
    t->softmax_rows(rows, cols, a, out);
    return;
  }
  // The pre-SIMD autograd loop, verbatim: per-row max subtraction, exp into
  // the output, double-accumulated normalizer.
  const std::int64_t grain =
      std::max<std::int64_t>(1, 1024 / std::max<std::int64_t>(cols, 1));
  parallel_for(rows, grain, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < cols; ++j) mx = std::max(mx, a[i * cols + j]);
      double z = 0.0;
      for (std::int64_t j = 0; j < cols; ++j) {
        const float e = std::exp(a[i * cols + j] - mx);
        out[i * cols + j] = e;
        z += e;
      }
      const float inv = static_cast<float>(1.0 / z);
      for (std::int64_t j = 0; j < cols; ++j) out[i * cols + j] *= inv;
    }
  });
}

void log_softmax_rows(std::int64_t rows, std::int64_t cols, const float* a,
                      float* out) {
  if (const KernelTable* t = active_kernels()) {
    t->log_softmax_rows(rows, cols, a, out);
    return;
  }
  const std::int64_t grain =
      std::max<std::int64_t>(1, 1024 / std::max<std::int64_t>(cols, 1));
  parallel_for(rows, grain, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < cols; ++j) mx = std::max(mx, a[i * cols + j]);
      double z = 0.0;
      for (std::int64_t j = 0; j < cols; ++j) z += std::exp(a[i * cols + j] - mx);
      const float lz = mx + static_cast<float>(std::log(z));
      for (std::int64_t j = 0; j < cols; ++j) out[i * cols + j] = a[i * cols + j] - lz;
    }
  });
}

// Shared element-type-generic body for im2col / im2col_s8: patch gathering
// is pure data movement, so the int8 serving variant is the same routine
// over 1-byte elements (a quarter of the scratch traffic).
template <typename T>
void im2col_impl(const T* x, std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w, std::int64_t kh, std::int64_t kw,
                 std::int64_t stride, std::int64_t pad, T* out) {
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  const std::int64_t cols = c * kh * kw;
  const std::int64_t rows = n * oh * ow;
  // Fixed-size copy width for the unclipped fast path below. A
  // variable-length memcpy of a handful of elements is a libc call per tap
  // group (tens of thousands per conv); a fixed-size one compiles to one or
  // two plain moves.
  constexpr std::int64_t kFix = sizeof(T) == 1 ? 16 : 32;
  const std::int64_t row_bytes = cols * static_cast<std::int64_t>(sizeof(T));
  const std::int64_t x_bytes =
      n * c * h * w * static_cast<std::int64_t>(sizeof(T));
  // One output row per patch; rows are independent, so parallelize there.
  // Zero whole chunks up front (one large fill beats a per-row fill by ~3x),
  // then gather only the in-image taps.
  parallel_for(rows, std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(cols, 1)),
               [=](std::int64_t r0, std::int64_t r1) {
                 std::fill(out + r0 * cols, out + r1 * cols, T{0});
                 for (std::int64_t row = r0; row < r1; ++row) {
                   T* orow = out + row * cols;
                   const std::int64_t xo = row % ow;
                   const std::int64_t yo = (row / ow) % oh;
                   const std::int64_t ni = row / (ow * oh);
                   // Clip the tap window once per row so the copy loops are
                   // branch-free (out-of-image taps stay at the fill's 0).
                   const std::int64_t x0 = xo * stride - pad;
                   const std::int64_t y0 = yo * stride - pad;
                   const std::int64_t kx_lo = std::max<std::int64_t>(0, -x0);
                   const std::int64_t kx_hi = std::min(kw, w - x0);
                   const std::int64_t ky_lo = std::max<std::int64_t>(0, -y0);
                   const std::int64_t ky_hi = std::min(kh, h - y0);
                   if (kx_hi <= kx_lo) continue;  // window fully clipped
                   // Unclipped rows (always, for pad == 0) take the
                   // fixed-size copy: the extra bytes past kw spill into tap
                   // groups this same row writes LATER in ascending order,
                   // so they are overwritten with their real values — valid
                   // only because no group in the row is clip-skipped. Dst
                   // and src bounds checks keep the spill inside this output
                   // row and inside the input tensor.
                   const bool interior = kx_lo == 0 && kx_hi == kw &&
                                         ky_lo == 0 && ky_hi == kh &&
                                         kw * static_cast<std::int64_t>(
                                                  sizeof(T)) <= kFix;
                   for (std::int64_t ci = 0; ci < c; ++ci) {
                     const T* xplane = x + (ni * c + ci) * h * w;
                     for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
                       const T* xrow = xplane + (y0 + ky) * w + x0;
                       T* opatch = orow + (ci * kh + ky) * kw;
                       if (interior) {
                         const std::int64_t dst_off =
                             ((ci * kh + ky) * kw) *
                             static_cast<std::int64_t>(sizeof(T));
                         const std::int64_t src_off =
                             ((ni * c + ci) * h * w + (y0 + ky) * w + x0) *
                             static_cast<std::int64_t>(sizeof(T));
                         if (dst_off + kFix <= row_bytes &&
                             src_off + kFix <= x_bytes) {
                           std::memcpy(opatch, xrow,
                                       static_cast<std::size_t>(kFix));
                           continue;
                         }
                       }
                       std::memcpy(opatch + kx_lo, xrow + kx_lo,
                                   static_cast<std::size_t>(kx_hi - kx_lo) *
                                       sizeof(T));
                     }
                   }
                 }
               });
}

void im2col(const float* x, std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* out) {
  im2col_impl(x, n, c, h, w, kh, kw, stride, pad, out);
}

void im2col_s8(const std::int8_t* x, std::int64_t n, std::int64_t c,
               std::int64_t h, std::int64_t w, std::int64_t kh,
               std::int64_t kw, std::int64_t stride, std::int64_t pad,
               std::int8_t* out) {
  im2col_impl(x, n, c, h, w, kh, kw, stride, pad, out);
}

void col2im(const float* cols_data, std::int64_t n, std::int64_t c,
            std::int64_t h, std::int64_t w, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* gx) {
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  const std::int64_t cols = c * kh * kw;
  // Overlapping patches within one image write the same gx pixels, so the
  // batch index is the only safe parallel dimension.
  for_each_index(
      n,
      [=](std::int64_t ni) {
        for (std::int64_t yo = 0; yo < oh; ++yo) {
          for (std::int64_t xo = 0; xo < ow; ++xo) {
            const std::int64_t row = (ni * oh + yo) * ow + xo;
            const float* crow = cols_data + row * cols;
            const std::int64_t x0 = xo * stride - pad;
            const std::int64_t y0 = yo * stride - pad;
            const std::int64_t kx_lo = std::max<std::int64_t>(0, -x0);
            const std::int64_t kx_hi = std::min(kw, w - x0);
            const std::int64_t ky_lo = std::max<std::int64_t>(0, -y0);
            const std::int64_t ky_hi = std::min(kh, h - y0);
            for (std::int64_t ci = 0; ci < c; ++ci) {
              float* gplane = gx + (ni * c + ci) * h * w;
              for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
                float* grow = gplane + (y0 + ky) * w + x0;
                const float* cpatch = crow + (ci * kh + ky) * kw;
                for (std::int64_t kx = kx_lo; kx < kx_hi; ++kx) {
                  grow[kx] += cpatch[kx];
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
}

double reduce_sum(const float* a, std::size_t n) {
  constexpr std::int64_t kBlock = 8192;
  const std::int64_t total = static_cast<std::int64_t>(n);
  if (total <= kBlock) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < total; ++i) acc += a[i];
    return acc;
  }
  const std::int64_t blocks = (total + kBlock - 1) / kBlock;
  std::vector<double> partial(static_cast<std::size_t>(blocks), 0.0);
  parallel_for(blocks, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t bi = b0; bi < b1; ++bi) {
      const std::int64_t lo = bi * kBlock;
      const std::int64_t hi = std::min(lo + kBlock, total);
      double acc = 0.0;
      for (std::int64_t i = lo; i < hi; ++i) acc += a[i];
      partial[static_cast<std::size_t>(bi)] = acc;
    }
  });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

}  // namespace adept::backend
