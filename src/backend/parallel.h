// Thread-pool-free data parallelism for the dense kernel layer.
//
// All backend kernels partition their iteration space into contiguous chunks
// whose boundaries depend only on the problem size — never on the thread
// count — and each output element is produced by exactly one chunk. This
// makes every kernel bit-exact across thread counts: ADEPT_NUM_THREADS=8 and
// ADEPT_NUM_THREADS=1 produce identical bits, so tests stay deterministic.
//
// Thread count resolution order:
//   1. LocalThreadScope on the calling thread (per-thread cap, see below),
//   2. set_num_threads(n) with n >= 1 (process-wide runtime override),
//   3. the ADEPT_NUM_THREADS environment variable (see common/env.h),
//   4. std::thread::hardware_concurrency().
// A value of 1 short-circuits to a plain serial loop on the calling thread.
#pragma once

#include <cstdint>
#include <functional>

namespace adept::backend {

// Effective worker count for the kernel layer (always >= 1).
int num_threads();

// Runtime override; n <= 0 restores the env/hardware default.
void set_num_threads(int n);

// RAII scope that forces a thread count (used by tests to compare threaded
// output against the serial fallback).
class ThreadScope {
 public:
  explicit ThreadScope(int n);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int prev_;
};

// RAII scope that caps the thread count for kernels launched from the
// CURRENT thread only. This is the execution-context seam's budget knob
// (backend/context.h): a serial context driving kernels on one server worker
// must not throttle kernels the other workers launch concurrently, which a
// process-wide ThreadScope would. n <= 0 means "no cap" (inherit the global
// resolution order). Takes precedence over set_num_threads()/ThreadScope for
// this thread; worker threads spawned by the kernels themselves only execute
// chunks handed to them, so the cap never needs to propagate.
class LocalThreadScope {
 public:
  explicit LocalThreadScope(int n);
  ~LocalThreadScope();
  LocalThreadScope(const LocalThreadScope&) = delete;
  LocalThreadScope& operator=(const LocalThreadScope&) = delete;

 private:
  int prev_;
};

namespace detail {
// Splits [0, n) into chunks of at most `grain` iterations and runs
// fn(begin, end) over them, distributing chunks across up to num_threads()
// workers. Chunk boundaries are a pure function of (n, grain).
void run_chunked(std::int64_t n, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);
}  // namespace detail

// Parallel loop over the index range [0, n). `fn(begin, end)` is invoked on
// disjoint subranges covering [0, n); it must not write outside state owned
// by its subrange. `grain` caps the chunk size (and bounds scheduling
// overhead for tiny bodies); the loop runs serially when n <= grain or a
// single thread is configured.
template <typename Fn>
inline void parallel_for(std::int64_t n, std::int64_t grain, Fn&& fn) {
  if (n <= 0) return;
  // Serial fast path, mirroring run_chunked's own short-circuit: one chunk
  // on the calling thread, but without materializing a std::function (which
  // otherwise costs an allocation per kernel launch on 1-core hosts — the
  // batch-1 serving latency path cares).
  if (num_threads() <= 1 || n <= grain) {
    fn(static_cast<std::int64_t>(0), n);
    return;
  }
  detail::run_chunked(n, grain, fn);
}

}  // namespace adept::backend
