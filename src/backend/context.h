// Execution-context seam between compiled plans and the kernel layer.
//
// A `Device` names WHERE a plan step runs; an `ExecContext` is HOW — it
// carries the kernel entry points the step executor needs, a workspace
// allocator for buffers the kernels touch, and a `finish()` sync point.
// The design follows caffe2's core/context.h and Hetu's CPUStream: callers
// (runtime/compiled_model.cpp) never invoke `be::` free functions for plan
// steps; they go through the context the step's device tag resolves to, so
// an accelerator backend lands by adding a context, not by rewriting the
// executor.
//
// Two CPU contexts prove the seam today:
//   * cpu_serial   — every kernel launched from this context runs with a
//                    thread budget of 1 (LocalThreadScope in parallel.h).
//                    The cap is per-calling-thread, so one serial worker in
//                    the serving pool never throttles its siblings.
//   * cpu_threaded — kernels inherit the normal thread resolution order
//                    (ADEPT_NUM_THREADS / set_num_threads / hardware).
//
// Determinism contract: every backend kernel partitions work with chunk
// boundaries that are pure functions of the problem size (parallel.h), so
// the serial and threaded contexts produce bit-identical results at every
// SIMD level — tests/test_context.cpp ASSERT_EQs them. Both CPU contexts
// are synchronous: kernels complete before the entry point returns, and
// `finish()` is a no-op. An async device context would enqueue work in the
// entry points and block in `finish()`; the step executor already calls it
// at the spots such a context would need.
//
// Device selection: the `ADEPT_DEVICE` env knob (serial | threaded) picks
// the default device for freeze/serving, following the ADEPT_SIMD pattern —
// unknown names clamp to the threaded default, never error (common/env.h).
// `default_device()` re-reads the environment on every call (no static
// cache) so tests can exercise the clamping with setenv.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "backend/kernels.h"

namespace adept::backend {

enum class Device : std::uint8_t { cpu_serial = 0, cpu_threaded = 1 };
inline constexpr int kDeviceCount = 2;

// Display/env name for a device: "serial", "threaded".
const char* device_name(Device d);

// Parse an ADEPT_DEVICE-style name; unknown names return `def` (clamping,
// never an error — mirrors parse_overload_policy / the ADEPT_SIMD parse).
Device parse_device(const std::string& name, Device def);

// The device the ADEPT_DEVICE environment selects (threaded when unset or
// unrecognized). Deliberately not cached: re-reads the env each call.
Device default_device();

// Chunked range sweep the elementwise plan steps run through: fn(begin,
// end) over disjoint subranges of [0, n), grain-capped chunks, boundaries a
// pure function of (n, grain) — identical element math on every context.
using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

class ExecContext {
 public:
  virtual ~ExecContext() = default;

  virtual Device device() const = 0;
  const char* name() const { return device_name(device()); }

  // ---- kernel entry points (the surface CompiledModel::apply needs) ----
  virtual void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                           float alpha, const float* a, std::int64_t lda,
                           Trans tb, const float* b, std::int64_t ldb,
                           const PackedGemmB& pb, float beta, float* c,
                           std::int64_t ldc) const = 0;
  virtual void gemm_s8_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                              const std::int8_t* a, std::int64_t lda,
                              const std::int8_t* b, std::int64_t ldb,
                              const PackedGemmBS8& pb, std::int32_t* c,
                              std::int64_t ldc) const = 0;
  virtual void im2col(const float* x, std::int64_t n, std::int64_t c,
                      std::int64_t h, std::int64_t w, std::int64_t kh,
                      std::int64_t kw, std::int64_t stride, std::int64_t pad,
                      float* out) const = 0;
  virtual void im2col_s8(const std::int8_t* x, std::int64_t n, std::int64_t c,
                         std::int64_t h, std::int64_t w, std::int64_t kh,
                         std::int64_t kw, std::int64_t stride,
                         std::int64_t pad, std::int8_t* out) const = 0;
  virtual float absmax(std::size_t n, const float* x) const = 0;
  virtual void quantize_s8(std::size_t n, const float* x, float inv_scale,
                           std::int8_t* out) const = 0;
  virtual void for_each(std::int64_t n, std::int64_t grain,
                        const RangeFn& fn) const = 0;

  // ---- workspace allocation seam ----
  // 64-byte-aligned buffer in the context's memory space (host memory for
  // the CPU contexts; an accelerator context returns device memory, which
  // is why kernel-visible scratch must come from here, not plain malloc).
  virtual void* alloc_workspace(std::size_t bytes) const;
  virtual void free_workspace(void* p) const;

  // ---- synchronization point ----
  // Blocks until every kernel launched through this context has completed.
  // No-op for the synchronous CPU contexts.
  virtual void finish() const {}
};

// Shared process-wide instance for a device (always valid; never freed).
const ExecContext& context_for(Device d);

// Owned instance, for holders that want per-worker contexts (the serving
// pool): an async device context would carry per-instance queue/stream
// state, so ownership — unlike the singletons — is already per-worker here.
std::unique_ptr<ExecContext> make_context(Device d);

}  // namespace adept::backend
