// 8-wide float SIMD abstraction for the backend microkernels.
//
// One vector type, `vec8f`, with three implementations selected by the
// *compile flags of the including translation unit*:
//
//   - AVX-512 (requires __AVX512F__ + __AVX512VL__ + __AVX512DQ__): 8-wide
//     ymm arithmetic (identical lane math to AVX2 — no 512-bit frequency
//     cliffs on the small ADEPT matrices) with native mask registers for
//     branch-free tail loads/stores.
//   - AVX2+FMA (__AVX2__ + __FMA__): ymm arithmetic, tails via
//     vmaskmovps emulation masks.
//   - portable scalar: a float[8] struct with plain loops; the reference
//     implementation (tests compile against it) and the fallback for
//     non-x86 targets.
//
// Every definition lives in an ISA-specific *inline namespace*
// (adept::backend::simd::{v_scalar, v_avx2, v_avx512}) so microkernel TUs
// compiled with different flags produce distinct symbols — no ODR merging of
// incompatible code. Call sites just write `simd::load8(...)`.
//
// The transcendental helpers (`exp8`, `sincos8`) are single-precision
// Cephes-style polynomial evaluations (~1-2 ulp inside their reduction
// range); the dispatch layer documents the tolerance contract versus libm.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define ADEPT_SIMD_X86_256 1
#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512DQ__)
#define ADEPT_SIMD_X86_MASK 1
#endif
#endif

#if defined(ADEPT_SIMD_X86_MASK)
#define ADEPT_SIMD_ABI v_avx512
#elif defined(ADEPT_SIMD_X86_256)
#define ADEPT_SIMD_ABI v_avx2
#else
#define ADEPT_SIMD_ABI v_scalar
#endif

namespace adept::backend::simd {
inline namespace ADEPT_SIMD_ABI {

constexpr int kLanes = 8;

#if defined(ADEPT_SIMD_X86_256)

struct vec8f {
  __m256 v;
};
struct vec8i {
  __m256i v;
};

inline vec8f zero8() { return {_mm256_setzero_ps()}; }
inline vec8f broadcast8(float x) { return {_mm256_set1_ps(x)}; }
inline vec8f load8(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void store8(float* p, vec8f a) { _mm256_storeu_ps(p, a.v); }

#if defined(ADEPT_SIMD_X86_MASK)
inline vec8f load8_partial(const float* p, int n) {
  const __mmask8 m = static_cast<__mmask8>((1u << n) - 1u);
  return {_mm256_maskz_loadu_ps(m, p)};
}
inline void store8_partial(float* p, int n, vec8f a) {
  const __mmask8 m = static_cast<__mmask8>((1u << n) - 1u);
  _mm256_mask_storeu_ps(p, m, a.v);
}
#else
inline __m256i tail_mask(int n) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(n), iota);
}
inline vec8f load8_partial(const float* p, int n) {
  return {_mm256_maskload_ps(p, tail_mask(n))};
}
inline void store8_partial(float* p, int n, vec8f a) {
  _mm256_maskstore_ps(p, tail_mask(n), a.v);
}
#endif

inline vec8f add8(vec8f a, vec8f b) { return {_mm256_add_ps(a.v, b.v)}; }
inline vec8f sub8(vec8f a, vec8f b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline vec8f mul8(vec8f a, vec8f b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline vec8f max8(vec8f a, vec8f b) { return {_mm256_max_ps(a.v, b.v)}; }
inline vec8f min8(vec8f a, vec8f b) { return {_mm256_min_ps(a.v, b.v)}; }
// a*b + c
inline vec8f fmadd8(vec8f a, vec8f b, vec8f c) {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
// c - a*b
inline vec8f fnmadd8(vec8f a, vec8f b, vec8f c) {
  return {_mm256_fnmadd_ps(a.v, b.v, c.v)};
}

inline vec8f and8(vec8f a, vec8f b) { return {_mm256_and_ps(a.v, b.v)}; }
inline vec8f andnot8(vec8f a, vec8f b) { return {_mm256_andnot_ps(a.v, b.v)}; }
inline vec8f xor8(vec8f a, vec8f b) { return {_mm256_xor_ps(a.v, b.v)}; }
// mask ? a : b, mask lanes all-ones/all-zeros
inline vec8f select8(vec8f mask, vec8f a, vec8f b) {
  return {_mm256_blendv_ps(b.v, a.v, mask.v)};
}

inline vec8i cvtt8(vec8f a) { return {_mm256_cvttps_epi32(a.v)}; }
inline vec8f cvt8(vec8i a) { return {_mm256_cvtepi32_ps(a.v)}; }
inline vec8i addi8(vec8i a, int b) {
  return {_mm256_add_epi32(a.v, _mm256_set1_epi32(b))};
}
inline vec8i andi8(vec8i a, int b) {
  return {_mm256_and_si256(a.v, _mm256_set1_epi32(b))};
}
inline vec8i andnoti8(vec8i a, int b) {
  return {_mm256_andnot_si256(a.v, _mm256_set1_epi32(b))};
}
inline vec8i slli8(vec8i a, int count) {
  return {_mm256_slli_epi32(a.v, count)};
}
inline vec8f casti8(vec8i a) { return {_mm256_castsi256_ps(a.v)}; }
// all-ones float mask where lane == 0
inline vec8f cmpeq0_8(vec8i a) {
  return {_mm256_castsi256_ps(_mm256_cmpeq_epi32(a.v, _mm256_setzero_si256()))};
}
// lane > b ? all-ones : 0 (float compare)
inline vec8f cmpgt8(vec8f a, vec8f b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
}
inline bool any8(vec8f mask) { return _mm256_movemask_ps(mask.v) != 0; }

inline float hsum8(vec8f a) {
  // Fixed pairwise order: (lo128 + hi128), then horizontal within 128.
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(a.v),
                        _mm256_extractf128_ps(a.v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}
inline float hmax8(vec8f a) {
  __m128 s = _mm_max_ps(_mm256_castps256_ps128(a.v),
                        _mm256_extractf128_ps(a.v, 1));
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

#else  // portable scalar implementation

struct vec8f {
  float l[kLanes];
};
struct vec8i {
  std::int32_t l[kLanes];
};

inline vec8f zero8() { return vec8f{}; }
inline vec8f broadcast8(float x) {
  vec8f r;
  for (int i = 0; i < kLanes; ++i) r.l[i] = x;
  return r;
}
inline vec8f load8(const float* p) {
  vec8f r;
  std::memcpy(r.l, p, sizeof(r.l));
  return r;
}
inline void store8(float* p, vec8f a) { std::memcpy(p, a.l, sizeof(a.l)); }
inline vec8f load8_partial(const float* p, int n) {
  vec8f r{};
  for (int i = 0; i < n; ++i) r.l[i] = p[i];
  return r;
}
inline void store8_partial(float* p, int n, vec8f a) {
  for (int i = 0; i < n; ++i) p[i] = a.l[i];
}

inline vec8f add8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] += b.l[i];
  return a;
}
inline vec8f sub8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] -= b.l[i];
  return a;
}
inline vec8f mul8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] *= b.l[i];
  return a;
}
inline vec8f max8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] = a.l[i] > b.l[i] ? a.l[i] : b.l[i];
  return a;
}
inline vec8f min8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] = a.l[i] < b.l[i] ? a.l[i] : b.l[i];
  return a;
}
inline vec8f fmadd8(vec8f a, vec8f b, vec8f c) {
  for (int i = 0; i < kLanes; ++i) c.l[i] = std::fma(a.l[i], b.l[i], c.l[i]);
  return c;
}
inline vec8f fnmadd8(vec8f a, vec8f b, vec8f c) {
  for (int i = 0; i < kLanes; ++i) c.l[i] = std::fma(-a.l[i], b.l[i], c.l[i]);
  return c;
}

namespace bitdetail {
inline std::uint32_t bits(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}
inline float fbits(std::uint32_t u) {
  float x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}
}  // namespace bitdetail

inline vec8f and8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) {
    a.l[i] = bitdetail::fbits(bitdetail::bits(a.l[i]) & bitdetail::bits(b.l[i]));
  }
  return a;
}
inline vec8f andnot8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) {
    a.l[i] = bitdetail::fbits(~bitdetail::bits(a.l[i]) & bitdetail::bits(b.l[i]));
  }
  return a;
}
inline vec8f xor8(vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) {
    a.l[i] = bitdetail::fbits(bitdetail::bits(a.l[i]) ^ bitdetail::bits(b.l[i]));
  }
  return a;
}
inline vec8f select8(vec8f mask, vec8f a, vec8f b) {
  for (int i = 0; i < kLanes; ++i) {
    if ((bitdetail::bits(mask.l[i]) & 0x80000000u) == 0u) a.l[i] = b.l[i];
  }
  return a;
}

inline vec8i cvtt8(vec8f a) {
  vec8i r;
  for (int i = 0; i < kLanes; ++i) r.l[i] = static_cast<std::int32_t>(a.l[i]);
  return r;
}
inline vec8f cvt8(vec8i a) {
  vec8f r;
  for (int i = 0; i < kLanes; ++i) r.l[i] = static_cast<float>(a.l[i]);
  return r;
}
inline vec8i addi8(vec8i a, int b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] += b;
  return a;
}
inline vec8i andi8(vec8i a, int b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] &= b;
  return a;
}
inline vec8i andnoti8(vec8i a, int b) {
  for (int i = 0; i < kLanes; ++i) a.l[i] = ~a.l[i] & b;
  return a;
}
inline vec8i slli8(vec8i a, int count) {
  for (int i = 0; i < kLanes; ++i) {
    a.l[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.l[i])
                                       << count);
  }
  return a;
}
inline vec8f casti8(vec8i a) {
  vec8f r;
  std::memcpy(r.l, a.l, sizeof(r.l));
  return r;
}
inline vec8f cmpeq0_8(vec8i a) {
  vec8f r;
  for (int i = 0; i < kLanes; ++i) {
    r.l[i] = bitdetail::fbits(a.l[i] == 0 ? 0xffffffffu : 0u);
  }
  return r;
}
inline vec8f cmpgt8(vec8f a, vec8f b) {
  vec8f r;
  for (int i = 0; i < kLanes; ++i) {
    r.l[i] = bitdetail::fbits(a.l[i] > b.l[i] ? 0xffffffffu : 0u);
  }
  return r;
}
inline bool any8(vec8f mask) {
  for (int i = 0; i < kLanes; ++i) {
    if ((bitdetail::bits(mask.l[i]) & 0x80000000u) != 0u) return true;
  }
  return false;
}

inline float hsum8(vec8f a) {
  // Same pairwise order as the AVX variants.
  float p0 = a.l[0] + a.l[4], p1 = a.l[1] + a.l[5];
  float p2 = a.l[2] + a.l[6], p3 = a.l[3] + a.l[7];
  return (p0 + p2) + (p1 + p3);
}
inline float hmax8(vec8f a) {
  float m = a.l[0];
  for (int i = 1; i < kLanes; ++i) m = a.l[i] > m ? a.l[i] : m;
  return m;
}

#endif  // portable scalar

// ---- 4-wide double vectors -------------------------------------------------
// The double-precision companion of vec8f, used by the photonics gemm
// microkernels (f64 and planar complex<double>). Same ISA selection and
// inline-namespace ABI split; only the ops those kernels need are provided.

constexpr int kDLanes = 4;

#if defined(ADEPT_SIMD_X86_256)

struct vec4d {
  __m256d v;
};

inline vec4d zero4d() { return {_mm256_setzero_pd()}; }
inline vec4d broadcast4d(double x) { return {_mm256_set1_pd(x)}; }
inline vec4d load4d(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void store4d(double* p, vec4d a) { _mm256_storeu_pd(p, a.v); }

#if defined(ADEPT_SIMD_X86_MASK)
inline vec4d load4d_partial(const double* p, int n) {
  const __mmask8 m = static_cast<__mmask8>((1u << n) - 1u);
  return {_mm256_maskz_loadu_pd(m, p)};
}
inline void store4d_partial(double* p, int n, vec4d a) {
  const __mmask8 m = static_cast<__mmask8>((1u << n) - 1u);
  _mm256_mask_storeu_pd(p, m, a.v);
}
#else
inline __m256i tail_mask_d(int n) {
  const __m256i iota = _mm256_setr_epi64x(0, 1, 2, 3);
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(n), iota);
}
inline vec4d load4d_partial(const double* p, int n) {
  return {_mm256_maskload_pd(p, tail_mask_d(n))};
}
inline void store4d_partial(double* p, int n, vec4d a) {
  _mm256_maskstore_pd(p, tail_mask_d(n), a.v);
}
#endif

inline vec4d add4d(vec4d a, vec4d b) { return {_mm256_add_pd(a.v, b.v)}; }
inline vec4d mul4d(vec4d a, vec4d b) { return {_mm256_mul_pd(a.v, b.v)}; }
// a*b + c
inline vec4d fmadd4d(vec4d a, vec4d b, vec4d c) {
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
}
// c - a*b
inline vec4d fnmadd4d(vec4d a, vec4d b, vec4d c) {
  return {_mm256_fnmadd_pd(a.v, b.v, c.v)};
}

#else  // portable scalar

struct vec4d {
  double l[kDLanes];
};

inline vec4d zero4d() { return vec4d{}; }
inline vec4d broadcast4d(double x) {
  vec4d r;
  for (int i = 0; i < kDLanes; ++i) r.l[i] = x;
  return r;
}
inline vec4d load4d(const double* p) {
  vec4d r;
  std::memcpy(r.l, p, sizeof(r.l));
  return r;
}
inline void store4d(double* p, vec4d a) { std::memcpy(p, a.l, sizeof(a.l)); }
inline vec4d load4d_partial(const double* p, int n) {
  vec4d r{};
  for (int i = 0; i < n; ++i) r.l[i] = p[i];
  return r;
}
inline void store4d_partial(double* p, int n, vec4d a) {
  for (int i = 0; i < n; ++i) p[i] = a.l[i];
}

inline vec4d add4d(vec4d a, vec4d b) {
  for (int i = 0; i < kDLanes; ++i) a.l[i] += b.l[i];
  return a;
}
inline vec4d mul4d(vec4d a, vec4d b) {
  for (int i = 0; i < kDLanes; ++i) a.l[i] *= b.l[i];
  return a;
}
inline vec4d fmadd4d(vec4d a, vec4d b, vec4d c) {
  for (int i = 0; i < kDLanes; ++i) c.l[i] = std::fma(a.l[i], b.l[i], c.l[i]);
  return c;
}
inline vec4d fnmadd4d(vec4d a, vec4d b, vec4d c) {
  for (int i = 0; i < kDLanes; ++i) c.l[i] = std::fma(-a.l[i], b.l[i], c.l[i]);
  return c;
}

#endif  // vec4d portable scalar

// ---- transcendental helpers ------------------------------------------------

// e^x, Cephes expf polynomial: inputs clamped to the float-representable
// range, 2^n reconstruction through the exponent bits. ~1 ulp inside
// [-87.3, 88.7]; monotone saturation outside.
inline vec8f exp8(vec8f x) {
  const vec8f hi = broadcast8(88.3762626647949f);
  const vec8f lo = broadcast8(-88.3762626647949f);
  x = min8(max8(x, lo), hi);

  // n = round(x / ln2), as floor(x*log2e + 0.5)
  vec8f fx = fmadd8(x, broadcast8(1.44269504088896341f), broadcast8(0.5f));
  vec8f flr = cvt8(cvtt8(fx));  // trunc
  // trunc rounds toward 0: fix lanes where trunc > value (negative inputs)
  vec8f too_big = cmpgt8(flr, fx);
  flr = sub8(flr, and8(too_big, broadcast8(1.0f)));

  // r = x - n*ln2 in two steps (hi/lo split of ln2)
  x = fnmadd8(flr, broadcast8(0.693359375f), x);
  x = fnmadd8(flr, broadcast8(-2.12194440e-4f), x);

  const vec8f z = mul8(x, x);
  vec8f y = broadcast8(1.9875691500e-4f);
  y = fmadd8(y, x, broadcast8(1.3981999507e-3f));
  y = fmadd8(y, x, broadcast8(8.3334519073e-3f));
  y = fmadd8(y, x, broadcast8(4.1665795894e-2f));
  y = fmadd8(y, x, broadcast8(1.6666665459e-1f));
  y = fmadd8(y, x, broadcast8(5.0000001201e-1f));
  y = fmadd8(y, z, add8(x, broadcast8(1.0f)));

  // 2^n via exponent bits
  vec8i n = cvtt8(flr);
  const vec8f pow2n = casti8(slli8(addi8(n, 127), 23));
  return mul8(y, pow2n);
}

// Simultaneous sin/cos, Cephes sincosf with the standard extended-precision
// pi/4 range reduction. Accurate to ~1-2 ulp for |x| < kSincosMaxRange; the
// dispatch-level kernel falls back to libm per lane beyond that.
constexpr float kSincosMaxRange = 8192.0f;

inline void sincos8(vec8f x, vec8f* s_out, vec8f* c_out) {
  const vec8f sign_mask = broadcast8(-0.0f);
  vec8f sign_sin = and8(x, sign_mask);
  x = andnot8(sign_mask, x);  // |x|

  // Octant index j = (trunc(|x| * 4/pi) + 1) & ~1, forced even.
  vec8i j = cvtt8(mul8(x, broadcast8(1.27323954473516f)));  // 4/pi
  j = addi8(j, 1);
  j = andi8(j, -2);
  const vec8f y = cvt8(j);

  // sin sign flips on octants 4..7; polynomial swaps on octants 2,3,6,7.
  const vec8f swap_sign_sin = casti8(slli8(andi8(j, 4), 29));
  const vec8f poly_mask = cmpeq0_8(andi8(j, 2));
  // cos sign: ((~(j - 2)) & 4) << 29
  const vec8f sign_cos = casti8(slli8(andnoti8(addi8(j, -2), 4), 29));
  sign_sin = xor8(sign_sin, swap_sign_sin);

  // Extended-precision reduction: x - y*pi/4 in three parts.
  x = fnmadd8(y, broadcast8(0.78515625f), x);
  x = fnmadd8(y, broadcast8(2.4187564849853515625e-4f), x);
  x = fnmadd8(y, broadcast8(3.77489497744594108e-8f), x);

  const vec8f z = mul8(x, x);
  // cos polynomial on z
  vec8f pc = broadcast8(2.443315711809948e-5f);
  pc = fmadd8(pc, z, broadcast8(-1.388731625493765e-3f));
  pc = fmadd8(pc, z, broadcast8(4.166664568298827e-2f));
  pc = mul8(mul8(pc, z), z);
  pc = fnmadd8(broadcast8(0.5f), z, add8(pc, broadcast8(1.0f)));
  // sin polynomial on z, times x
  vec8f ps = broadcast8(-1.9515295891e-4f);
  ps = fmadd8(ps, z, broadcast8(8.3321608736e-3f));
  ps = fmadd8(ps, z, broadcast8(-1.6666654611e-1f));
  ps = fmadd8(mul8(ps, z), x, x);

  const vec8f ysin = select8(poly_mask, ps, pc);
  const vec8f ycos = select8(poly_mask, pc, ps);
  *s_out = xor8(ysin, sign_sin);
  *c_out = xor8(ycos, sign_cos);
}

}  // inline namespace ADEPT_SIMD_ABI
}  // namespace adept::backend::simd
