// Runtime ISA dispatch for the SIMD microkernel layer.
//
// The microkernels in backend/microkernels.inc are compiled once per ISA
// (scalar fallback lives in kernels.cpp itself; AVX2+FMA and AVX-512 get
// dedicated TUs with the matching -m flags). At first use the dispatcher
// picks the best level that is (a) compiled into this binary, (b) reported
// by CPUID, and (c) not capped by the ADEPT_SIMD environment knob:
//
//   ADEPT_SIMD=scalar | avx2 | avx512
//
// An unknown value, or a level the CPU/binary cannot deliver, clamps down to
// the best available level (never up, never an error) — see common/env.h.
//
// Determinism contract: every level is bit-exact across thread counts, and
// `scalar` reproduces the pre-SIMD blocked kernels bit for bit. Levels
// differ from each other only within float accumulation tolerance (the SIMD
// kernels keep the same ascending-k accumulation order but fuse
// multiply-adds); tests/test_simd.cpp pins the tolerances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "backend/kernels.h"

namespace adept::backend {

enum class SimdLevel : int { scalar = 0, avx2 = 1, avx512 = 2 };

// Display/env name for a level: "scalar", "avx2", "avx512".
const char* simd_level_name(SimdLevel level);

// The level kernels will dispatch to right now (override > env > CPUID).
SimdLevel simd_level();

// Every level this binary+CPU can run, ascending (always includes scalar).
std::vector<SimdLevel> available_simd_levels();

// RAII scope forcing a dispatch level (clamped to the best available), used
// by tests and the per-level bench records. Like ThreadScope, not reentrancy-
// safe across threads — scope on the thread driving the kernels.
class SimdScope {
 public:
  explicit SimdScope(SimdLevel level);
  ~SimdScope();
  SimdScope(const SimdScope&) = delete;
  SimdScope& operator=(const SimdScope&) = delete;

 private:
  int prev_;
};

// Function table one ISA TU exports; kernels.cpp routes the float hot paths
// through the active table (nullptr table = the scalar/legacy blocked path).
struct KernelTable {
  void (*gemm_f32)(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                   std::int64_t k, float alpha, const float* a,
                   std::int64_t lda, const float* b, std::int64_t ldb,
                   float beta, float* c, std::int64_t ldc);
  void (*cgemm)(CTrans ta, CTrans tb, std::int64_t m, std::int64_t n,
                std::int64_t k, const float* ar, const float* ai,
                std::int64_t lda, const float* br, const float* bi,
                std::int64_t ldb, float beta, float* cr, float* ci,
                std::int64_t ldc);
  void (*cgemm_batched)(CTrans ta, CTrans tb, std::int64_t batch,
                        std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* ar, const float* ai, std::int64_t stride_a,
                        std::int64_t lda, const float* br, const float* bi,
                        std::int64_t stride_b, std::int64_t ldb, float beta,
                        float* cr, float* ci, std::int64_t stride_c,
                        std::int64_t ldc);
  void (*rcgemm)(Trans ta, std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, const float* br,
                 const float* bi, std::int64_t ldb, float beta, float* cr,
                 float* ci, std::int64_t ldc, const float* col_cos,
                 const float* col_sin);
  void (*gemm_batched)(std::int64_t batch, std::int64_t m, std::int64_t n,
                       std::int64_t k, const float* a, std::int64_t stride_a,
                       std::int64_t lda, Trans tb, const float* b,
                       std::int64_t ldb, float beta, float* c,
                       std::int64_t stride_c, std::int64_t ldc);
  void (*cmul_planar)(std::size_t n, const float* ar, const float* ai,
                      const float* br, const float* bi, float* outr,
                      float* outi);
  void (*sincos)(std::int64_t n, const float* x, float* c, float* s);
  void (*softmax_rows)(std::int64_t rows, std::int64_t cols, const float* a,
                       float* out);
  void (*log_softmax_rows)(std::int64_t rows, std::int64_t cols,
                           const float* a, float* out);
  // Frozen-weight serving path: pack op(B) [k, n] once into this level's
  // k-panel layout, then run the gemm driver against the pre-packed panels
  // (A is Trans::N). Bit-identical to gemm_f32 — the per-call pack is the
  // only thing skipped. The buffer for gemm_pack_b must hold
  // gemm_packed_b_floats(k, n) floats: the footprint is a property of the
  // level's tile width, so it lives in the table, not in callers.
  std::int64_t (*gemm_packed_b_floats)(std::int64_t k, std::int64_t n);
  void (*gemm_pack_b)(Trans tb, std::int64_t k, std::int64_t n, const float* b,
                      std::int64_t ldb, float* out);
  void (*gemm_f32_packed)(std::int64_t m, std::int64_t n, std::int64_t k,
                          float alpha, const float* a, std::int64_t lda,
                          const float* packed_b, float beta, float* c,
                          std::int64_t ldc);
  // int8 quantized serving path (runtime/plan.h): B packed into interleaved
  // k-pair panels, A streamed row-major, exact int32 accumulation — results
  // are bit-identical to the scalar reference at every level (integer math
  // has no contraction drift). Buffer for gemm_pack_b_s8 must hold
  // gemm_s8_packed_b_bytes(k, n) bytes.
  std::int64_t (*gemm_s8_packed_b_bytes)(std::int64_t k, std::int64_t n);
  void (*gemm_pack_b_s8)(std::int64_t k, std::int64_t n, const std::int8_t* b,
                         std::int64_t ldb, std::int8_t* out);
  void (*gemm_s8s8s32_packed)(std::int64_t m, std::int64_t n, std::int64_t k,
                              const std::int8_t* a, std::int64_t lda,
                              const std::int8_t* packed_b, std::int32_t* c,
                              std::int64_t ldc);
  // Activation quantization helpers, the per-request hot path of quantized
  // serving. Exact at every level: max is order-independent, and the vector
  // float->int32 convert rounds to nearest-even exactly like std::lrintf
  // under the default rounding mode — so the quantized image (and therefore
  // the quantization *decision*) never depends on the dispatch level.
  float (*absmax_f32)(std::size_t n, const float* x);
  void (*quantize_s8)(std::size_t n, const float* x, float inv_scale,
                      std::int8_t* out);
  // Double-precision photonics gemms (mesh-transfer chains, SVD
  // legalization). kernels.cpp probes operand density before routing here:
  // permutation-like operands stay on the zero-skipping scalar loops, dense
  // ones take these 4-wide register-tiled drivers. zgemm_planar consumes
  // split re/im planes; the complex<double> wrapper deinterleaves into
  // arena scratch (alpha == 1, real beta — anything else stays scalar).
  void (*gemm_f64)(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                   std::int64_t k, double alpha, const double* a,
                   std::int64_t lda, const double* b, std::int64_t ldb,
                   double beta, double* c, std::int64_t ldc);
  void (*zgemm_planar)(CTrans ta, CTrans tb, std::int64_t m, std::int64_t n,
                       std::int64_t k, const double* ar, const double* ai,
                       std::int64_t lda, const double* br, const double* bi,
                       std::int64_t ldb, double beta, double* cr, double* ci,
                       std::int64_t ldc);
};

// Active table for the current dispatch level; nullptr means scalar.
const KernelTable* active_kernels();

}  // namespace adept::backend
