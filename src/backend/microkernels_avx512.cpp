// AVX-512 instantiation of the SIMD microkernels. Compiled with
// -mavx512f -mavx512vl -mavx512dq -mavx512bw (plus the AVX2 baseline): float
// arithmetic stays 8-wide ymm — identical lane math to the AVX2 level, no
// 512-bit frequency penalty on ADEPT's small matrices — while tail
// loads/stores use native mask registers instead of vmaskmov emulation. The
// int8 serving gemm is the exception: integer madd has no contraction drift,
// so it runs an 8x16 full-zmm tile (avx512bw) and stays bit-identical to
// the narrower levels anyway.
#define ADEPT_SIMD_NS avx512
#include "backend/microkernels.inc"
