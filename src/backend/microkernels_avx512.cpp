// AVX-512 instantiation of the SIMD microkernels. Compiled with
// -mavx512f -mavx512vl -mavx512dq (plus the AVX2 baseline): arithmetic stays
// 8-wide ymm — identical lane math to the AVX2 level, no 512-bit frequency
// penalty on ADEPT's small matrices — while tail loads/stores use native
// mask registers instead of vmaskmov emulation.
#define ADEPT_SIMD_NS avx512
#include "backend/microkernels.inc"
