#include "backend/context.h"

#include <new>

#include "backend/parallel.h"
#include "common/env.h"

namespace adept::backend {

const char* device_name(Device d) {
  switch (d) {
    case Device::cpu_serial:
      return "serial";
    case Device::cpu_threaded:
      return "threaded";
  }
  return "?";
}

Device parse_device(const std::string& name, Device def) {
  if (name == "serial") return Device::cpu_serial;
  if (name == "threaded") return Device::cpu_threaded;
  return def;
}

Device default_device() {
  // No static cache (unlike the ADEPT_SIMD resolver): freeze/server config
  // construction is far off any hot path, and the re-read keeps the clamping
  // testable with setenv.
  return parse_device(adept::env_string("ADEPT_DEVICE", ""),
                      Device::cpu_threaded);
}

void* ExecContext::alloc_workspace(std::size_t bytes) const {
  if (bytes == 0) bytes = 1;
  return ::operator new(bytes, std::align_val_t{64});
}

void ExecContext::free_workspace(void* p) const {
  if (p != nullptr) ::operator delete(p, std::align_val_t{64});
}

namespace {

// Both CPU contexts share one implementation: every entry point installs
// this context's thread budget for the calling thread (LocalThreadScope)
// and forwards to the kernel layer. budget 1 = serial, 0 = inherit the
// normal resolution order. Chunk boundaries in the kernels depend only on
// problem sizes, so the two budgets produce bit-identical results.
class CpuContext final : public ExecContext {
 public:
  explicit CpuContext(Device d)
      : device_(d), budget_(d == Device::cpu_serial ? 1 : 0) {}

  Device device() const override { return device_; }

  void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                   const float* a, std::int64_t lda, Trans tb, const float* b,
                   std::int64_t ldb, const PackedGemmB& pb, float beta,
                   float* c, std::int64_t ldc) const override {
    LocalThreadScope scope(budget_);
    backend::gemm_packed(m, n, k, alpha, a, lda, tb, b, ldb, pb, beta, c, ldc);
  }

  void gemm_s8_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::int8_t* a, std::int64_t lda,
                      const std::int8_t* b, std::int64_t ldb,
                      const PackedGemmBS8& pb, std::int32_t* c,
                      std::int64_t ldc) const override {
    LocalThreadScope scope(budget_);
    backend::gemm_s8_packed(m, n, k, a, lda, b, ldb, pb, c, ldc);
  }

  void im2col(const float* x, std::int64_t n, std::int64_t c, std::int64_t h,
              std::int64_t w, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad,
              float* out) const override {
    LocalThreadScope scope(budget_);
    backend::im2col(x, n, c, h, w, kh, kw, stride, pad, out);
  }

  void im2col_s8(const std::int8_t* x, std::int64_t n, std::int64_t c,
                 std::int64_t h, std::int64_t w, std::int64_t kh,
                 std::int64_t kw, std::int64_t stride, std::int64_t pad,
                 std::int8_t* out) const override {
    LocalThreadScope scope(budget_);
    backend::im2col_s8(x, n, c, h, w, kh, kw, stride, pad, out);
  }

  float absmax(std::size_t n, const float* x) const override {
    LocalThreadScope scope(budget_);
    return backend::absmax(n, x);
  }

  void quantize_s8(std::size_t n, const float* x, float inv_scale,
                   std::int8_t* out) const override {
    LocalThreadScope scope(budget_);
    backend::quantize_s8(n, x, inv_scale, out);
  }

  void for_each(std::int64_t n, std::int64_t grain,
                const RangeFn& fn) const override {
    LocalThreadScope scope(budget_);
    parallel_for(n, grain, fn);
  }

 private:
  Device device_;
  int budget_;
};

}  // namespace

const ExecContext& context_for(Device d) {
  static const CpuContext serial{Device::cpu_serial};
  static const CpuContext threaded{Device::cpu_threaded};
  return d == Device::cpu_serial ? serial : threaded;
}

std::unique_ptr<ExecContext> make_context(Device d) {
  return std::make_unique<CpuContext>(d);
}

}  // namespace adept::backend
