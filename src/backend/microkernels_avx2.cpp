// AVX2+FMA instantiation of the SIMD microkernels. CMake compiles exactly
// this TU with -mavx2 -mfma (the rest of the build stays at the base ISA);
// backend/dispatch.cpp links adept::backend::avx2::kKernels when CPUID
// reports avx2+fma support.
#define ADEPT_SIMD_NS avx2
#include "backend/microkernels.inc"
