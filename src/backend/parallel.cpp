#include "backend/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/env.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace adept::backend {

namespace {
std::atomic<int> g_override{0};
// Per-thread cap installed by LocalThreadScope (execution contexts). Plain
// (non-atomic) is fine: only the owning thread reads or writes it.
thread_local int t_override = 0;
}  // namespace

int num_threads() {
  if (t_override > 0) return t_override;
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  // The env/hardware default cannot change mid-process; resolve it once so
  // per-kernel launches don't pay getenv + string construction.
  static const int resolved = [] {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 1;
    const int env = adept::env_int("ADEPT_NUM_THREADS", hw);
    return env > 0 ? env : hw;
  }();
  return resolved;
}

void set_num_threads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ThreadScope::ThreadScope(int n) : prev_(g_override.load()) { set_num_threads(n); }
ThreadScope::~ThreadScope() { g_override.store(prev_); }

LocalThreadScope::LocalThreadScope(int n) : prev_(t_override) {
  t_override = n > 0 ? n : 0;
}
LocalThreadScope::~LocalThreadScope() { t_override = prev_; }

namespace detail {

void run_chunked(std::int64_t n, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int nt = num_threads();
  if (nt <= 1 || n <= grain) {
    fn(0, n);
    return;
  }
#ifndef _OPENMP
  // The fallback spawns fresh threads per launch (no pool to amortize into),
  // so demand enough work per launch to bury the ~10-100us spawn/join cost.
  if (n <= grain * 8) {
    fn(0, n);
    return;
  }
#endif
  // Chunk boundaries depend only on (n, grain): bit-exact for any nt.
  const std::int64_t chunks = (n + grain - 1) / grain;
  const int workers = static_cast<int>(std::min<std::int64_t>(nt, chunks));
#ifdef _OPENMP
#pragma omp parallel for num_threads(workers) schedule(static)
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t begin = c * grain;
    fn(begin, std::min(begin + grain, n));
  }
#else
  std::atomic<std::int64_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::int64_t begin = c * grain;
      fn(begin, std::min(begin + grain, n));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
#endif
}

}  // namespace detail

}  // namespace adept::backend
