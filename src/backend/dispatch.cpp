#include "backend/dispatch.h"

#include <atomic>
#include <string>

#include "common/env.h"

// Set per-source-file by CMake when the matching microkernel TU is compiled
// into the binary (the TUs need -mavx2/-mavx512* flags the base build does
// not use, so their presence is a build-system decision).
#ifdef ADEPT_HAVE_AVX2_TU
namespace adept::backend::avx2 {
extern const KernelTable kKernels;
}
#endif
#ifdef ADEPT_HAVE_AVX512_TU
namespace adept::backend::avx512 {
extern const KernelTable kKernels;
}
#endif

namespace adept::backend {

namespace {

// -1 = no override; otherwise a SimdLevel already clamped to availability.
std::atomic<int> g_override{-1};

bool cpu_supports(SimdLevel level) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (level) {
    case SimdLevel::scalar:
      return true;
    case SimdLevel::avx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdLevel::avx512:
      // bw: the int8 serving microkernel widens/madds on full zmm vectors.
      // vnni is required only when the TU was compiled to emit it (the
      // CPUID requirement must match the instructions actually present).
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw")
#ifdef ADEPT_AVX512_TU_VNNI
             && __builtin_cpu_supports("avx512vnni")
#endif
          ;
  }
  return false;
#else
  return level == SimdLevel::scalar;
#endif
}

bool compiled(SimdLevel level) {
  switch (level) {
    case SimdLevel::scalar:
      return true;
    case SimdLevel::avx2:
#ifdef ADEPT_HAVE_AVX2_TU
      return true;
#else
      return false;
#endif
    case SimdLevel::avx512:
#ifdef ADEPT_HAVE_AVX512_TU
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdLevel best_available() {
  static const SimdLevel resolved = [] {
    for (SimdLevel l : {SimdLevel::avx512, SimdLevel::avx2}) {
      if (compiled(l) && cpu_supports(l)) return l;
    }
    return SimdLevel::scalar;
  }();
  return resolved;
}

SimdLevel parse_level_name(const std::string& name, SimdLevel def) {
  if (name == "scalar") return SimdLevel::scalar;
  if (name == "avx2") return SimdLevel::avx2;
  if (name == "avx512") return SimdLevel::avx512;
  return def;  // unknown values keep the default (documented as non-fatal)
}

SimdLevel clamp_available(SimdLevel want) {
  const SimdLevel best = best_available();
  return static_cast<int>(want) < static_cast<int>(best) ? want : best;
}

SimdLevel env_level() {
  // Env/CPU state cannot change mid-process; resolve once.
  static const SimdLevel resolved = [] {
    const SimdLevel best = best_available();
    return clamp_available(
        parse_level_name(env_string("ADEPT_SIMD", simd_level_name(best)), best));
  }();
  return resolved;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::avx512:
      return "avx512";
    case SimdLevel::avx2:
      return "avx2";
    case SimdLevel::scalar:
    default:
      return "scalar";
  }
}

SimdLevel simd_level() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return env_level();
}

std::vector<SimdLevel> available_simd_levels() {
  std::vector<SimdLevel> levels{SimdLevel::scalar};
  for (SimdLevel l : {SimdLevel::avx2, SimdLevel::avx512}) {
    if (compiled(l) && cpu_supports(l)) levels.push_back(l);
  }
  return levels;
}

SimdScope::SimdScope(SimdLevel level) : prev_(g_override.load()) {
  g_override.store(static_cast<int>(clamp_available(level)));
}

SimdScope::~SimdScope() { g_override.store(prev_); }

const KernelTable* active_kernels() {
  switch (simd_level()) {
#ifdef ADEPT_HAVE_AVX512_TU
    case SimdLevel::avx512:
      return &avx512::kKernels;
#endif
#ifdef ADEPT_HAVE_AVX2_TU
    case SimdLevel::avx2:
      return &avx2::kKernels;
#endif
    default:
      return nullptr;
  }
}

}  // namespace adept::backend
