// Augmented Lagrangian method for permutation learning (paper Eq. 8-12).
//
// A doubly stochastic matrix is a permutation iff every row/column has equal
// l1 and l2 norms. The ALM adds per-row and per-column multipliers on the
// difference Delta = ||.||_1 - ||.||_2 plus a lambda-scaled quadratic term
// (non-standard: the quadratic is also multiplied by lambda so the task loss
// dominates early and the constraint tightens as lambda grows).
#pragma once

#include <vector>

#include "autograd/ops.h"
#include "autograd/tensor.h"

namespace adept::core {

struct AlmConfig {
  double rho0 = 1e-7;          // initial quadratic coefficient (paper: 1e-7*K/8)
  double rho_growth = 1.0046;  // per-step gamma; chosen so rho_T ~ 1e4 * rho0
  double rho_max_ratio = 1e4;  // cap: rho <= rho0 * ratio
};

// Multiplier state for a set of relaxed permutation matrices.
class AlmState {
 public:
  AlmState(std::size_t num_blocks, std::int64_t k, const AlmConfig& config);

  // Penalty term L_P (Eq. 10) as an autograd expression over the
  // reparametrized permutations (multipliers enter as constants).
  ag::Tensor penalty(const std::vector<ag::Tensor>& p_tilde) const;

  // Update multipliers (Eq. 12) and advance the rho schedule:
  //   lambda += rho * (Delta + Delta^2 / 2), evaluated without grad.
  void update(const std::vector<ag::Tensor>& p_tilde);

  // Mean of ||row||_1 - ||row||_2 over all rows and columns; the
  // "permutation error" curve of Fig. 5(a). Zero iff all P are permutations.
  double permutation_error(const std::vector<ag::Tensor>& p_tilde) const;

  double rho() const { return rho_; }
  double mean_lambda() const;
  // Schedule gamma so that rho reaches rho0*1e4 after `total_steps` updates.
  void set_horizon(std::int64_t total_steps);

 private:
  std::size_t num_blocks_;
  std::int64_t k_;
  AlmConfig config_;
  double rho_;
  std::vector<std::vector<double>> lambda_row_;  // [block][row]
  std::vector<std::vector<double>> lambda_col_;  // [block][col]
};

// Row/column l1-l2 gaps of one matrix (helpers shared with tests).
std::vector<double> row_norm_gaps(const ag::Tensor& p);
std::vector<double> col_norm_gaps(const ag::Tensor& p);

}  // namespace adept::core
