// Binarization-aware directional-coupler learning (paper Eq. 14).
//
// Each DC slot carries a continuous latent t; the physical transmission is
//   Q(t) = (sign(t) + 1) * (2 - sqrt(2)) / 4 + sqrt(2)/2
// i.e. t < 0  ->  sqrt(2)/2  (a 50:50 coupler is placed)
//      t >= 0 ->  1          (bar state: plain waveguide, no coupler)
// The backward pass is a clipped straight-through estimator:
//   dL/dt = clamp(dL/dQ * (2 - sqrt(2)) / 4, -1, 1).
#pragma once

#include "autograd/ops.h"
#include "autograd/tensor.h"

namespace adept::core {

// Physical transmission values.
float dc_present_t();  // sqrt(2)/2
float dc_absent_t();   // 1.0

// Quantize latent couplers to {sqrt(2)/2, 1} with the clipped STE backward.
ag::Tensor dc_quantize(const ag::Tensor& t_latent);

// Differentiable coupler count of a quantized column (Eq. 15):
//   #DC = sum_i ( 2 Q(t_i) / (sqrt(2) - 2) + 2 / (2 - sqrt(2)) )
// Evaluates to exactly the number of slots with Q == sqrt(2)/2; gradients
// flow through Q via the STE.
ag::Tensor dc_count_expr(const ag::Tensor& t_quantized);

// Plain (non-autograd) count of placed couplers from the latent values.
std::int64_t dc_count_hard(const ag::Tensor& t_latent);

}  // namespace adept::core
