#include "core/search.h"

#include <cmath>
#include <numbers>

#include "optim/optimizer.h"
#include "optim/schedule.h"

namespace adept::core {

using ag::CxTensor;
using ag::Tensor;

AdeptSearcher::AdeptSearcher(const SearchConfig& config, ProxyTask& task)
    : config_(config), task_(task), rng_(config.seed) {
  SuperMeshConfig mesh_config = config_.mesh;
  if (mesh_config.super_blocks_per_unitary == 0) {
    // Depth bounds not given explicitly: derive B_max/B_min from the
    // footprint constraint (Eq. 16).
    mesh_config = SuperMeshConfig::from_bounds(config_.mesh.k, config_.footprint,
                                               config_.max_super_blocks_per_unitary);
  }
  mesh_ = std::make_unique<SuperMesh>(mesh_config, rng_);
  config_.mesh = mesh_config;
  task_.bind(*mesh_);
}

SearchResult AdeptSearcher::run() {
  SearchResult result;
  const int total_steps = config_.epochs * config_.steps_per_epoch;
  const int spl_step = config_.spl_epoch * config_.steps_per_epoch;

  AlmState alm(static_cast<std::size_t>(mesh_->total_blocks()), config_.mesh.k,
               config_.alm);
  alm.set_horizon(spl_step);

  auto weight_params = [&]() {
    std::vector<Tensor> params = mesh_->topology_weights();
    for (auto& w : task_.weights()) params.push_back(w);
    return params;
  };
  auto weight_opt = std::make_unique<optim::Adam>(
      weight_params(), config_.lr_weights, 0.9, 0.999, 1e-8,
      config_.weight_decay_weights);
  optim::Adam arch_opt(mesh_->arch_params(), config_.lr_arch, 0.9, 0.999, 1e-8,
                       config_.weight_decay_arch);

  optim::CosineLr lr_schedule(config_.lr_weights, total_steps);
  optim::ExponentialDecay tau_schedule(config_.tau_start, config_.tau_end, total_steps);

  int cycle = 0;
  for (int step = 0; step < total_steps; ++step) {
    const int epoch = step / config_.steps_per_epoch;
    const double tau = tau_schedule.at(step);
    weight_opt->set_lr(lr_schedule.at(step));

    // SPL: legalize and freeze permutations, rebuild the weight optimizer
    // without them (paper: epoch 50 of 90).
    if (step == spl_step && !mesh_->permutations_frozen()) {
      mesh_->legalize_permutations(rng_, config_.spl);
      weight_opt = std::make_unique<optim::Adam>(
          weight_params(), lr_schedule.at(step), 0.9, 0.999, 1e-8,
          config_.weight_decay_weights);
    }

    const bool warmup = epoch < config_.warmup_epochs;
    const bool arch_step =
        !warmup && (cycle++ % (config_.weight_steps_per_arch_step + 1) ==
                    config_.weight_steps_per_arch_step);

    mesh_->begin_step(tau, rng_, /*stochastic=*/true);
    Tensor task_loss = task_.loss(*mesh_, /*validation=*/arch_step);
    Tensor loss = task_loss;
    std::vector<Tensor> perms;
    if (!mesh_->permutations_frozen()) {
      perms = mesh_->all_relaxed_perms();
      loss = ag::add(loss, alm.penalty(perms));
    }
    Tensor penalty = mesh_->footprint_penalty_expr(config_.footprint);
    if (!warmup) loss = ag::add(loss, penalty);
    // Record E[F] before the optimizer mutates parameters: the value then
    // describes the same parameters as task_loss/penalty above (and reads
    // the block-count cache footprint_penalty_expr just filled, instead of
    // re-running SPL legalization per query).
    result.trace.expected_footprint.push_back(
        mesh_->expected_footprint(config_.footprint.pdk));

    if (arch_step) {
      arch_opt.zero_grad();
      loss.backward();
      arch_opt.step();
    } else {
      weight_opt->zero_grad();
      loss.backward();
      weight_opt->step();
      if (!mesh_->permutations_frozen()) alm.update(perms);
    }

    result.trace.task_loss.push_back(task_loss.item());
    result.trace.alm_lambda.push_back(alm.mean_lambda());
    result.trace.alm_rho.push_back(alm.rho());
    result.trace.permutation_error.push_back(
        perms.empty() ? 0.0 : alm.permutation_error(perms));
    result.trace.footprint_penalty.push_back(penalty.item());
  }

  if (!mesh_->permutations_frozen()) {
    mesh_->legalize_permutations(rng_, config_.spl);
  }
  result.topology = mesh_->sample_topology(rng_, config_.footprint.pdk,
                                           config_.footprint.f_min,
                                           config_.footprint.f_max);
  result.final_metric = task_.metric(*mesh_);
  return result;
}

MatrixFitTask::MatrixFitTask(int tiles, std::uint64_t seed)
    : tiles_(tiles), rng_(seed) {}

void MatrixFitTask::bind(SuperMesh& mesh) {
  const std::int64_t k = mesh.k();
  const int nb = mesh.blocks_per_unitary();
  targets_.clear();
  phi_u_.clear();
  phi_v_.clear();
  sigma_.clear();
  for (int t = 0; t < tiles_; ++t) {
    std::vector<float> target(static_cast<std::size_t>(k * k));
    // Orthogonal-ish random targets keep the fit well-scaled.
    for (auto& x : target) {
      x = static_cast<float>(rng_.normal(0.0, 1.0 / std::sqrt(static_cast<double>(k))));
    }
    targets_.push_back(ag::make_tensor(std::move(target), {k, k}, false));
    auto make_phases = [&]() {
      std::vector<Tensor> phases;
      for (int b = 0; b < nb; ++b) {
        std::vector<float> phi(static_cast<std::size_t>(k));
        for (auto& p : phi) {
          p = static_cast<float>(
              rng_.uniform(-std::numbers::pi, std::numbers::pi));
        }
        phases.push_back(ag::make_tensor(std::move(phi), {k}, true));
      }
      return phases;
    };
    phi_u_.push_back(make_phases());
    phi_v_.push_back(make_phases());
    std::vector<float> sig(static_cast<std::size_t>(k), 1.0f);
    sigma_.push_back(ag::make_tensor(std::move(sig), {k}, true));
  }
}

Tensor MatrixFitTask::loss(SuperMesh& mesh, bool validation) {
  (void)validation;  // same targets for both splits in the synthetic proxy
  Tensor total = Tensor::scalar(0.0f);
  for (int t = 0; t < tiles_; ++t) {
    CxTensor u = mesh.tile_unitary(Side::u, phi_u_[static_cast<std::size_t>(t)]);
    CxTensor v = mesh.tile_unitary(Side::v, phi_v_[static_cast<std::size_t>(t)]);
    // U * diag(sigma) is a column scaling — no materialized diagonal/gemm.
    const std::int64_t k = mesh.k();
    CxTensor us = ag::cscale(
        u, ag::reshape(sigma_[static_cast<std::size_t>(t)], {1, k}));
    CxTensor w = ag::cmatmul(us, v);
    Tensor err = ag::sub(w.re, targets_[static_cast<std::size_t>(t)]);
    total = ag::add(total, ag::mean(ag::square(err)));
  }
  return ag::mul_scalar(total, 1.0f / static_cast<float>(tiles_));
}

std::vector<Tensor> MatrixFitTask::weights() {
  std::vector<Tensor> out;
  for (auto& tile : phi_u_) {
    for (auto& p : tile) out.push_back(p);
  }
  for (auto& tile : phi_v_) {
    for (auto& p : tile) out.push_back(p);
  }
  for (auto& s : sigma_) out.push_back(s);
  return out;
}

double MatrixFitTask::metric(SuperMesh& mesh) {
  ag::NoGradGuard guard;
  adept::Rng eval_rng(7);
  mesh.begin_step(/*tau=*/0.5, eval_rng, /*stochastic=*/false);
  return -static_cast<double>(loss(mesh, true).item());
}

}  // namespace adept::core
