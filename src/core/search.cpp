#include "core/search.h"

#include <cmath>
#include <numbers>

#include "comm/sharded.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "optim/schedule.h"

namespace adept::core {

using ag::CxTensor;
using ag::Tensor;

AdeptSearcher::AdeptSearcher(const SearchConfig& config, ProxyTask& task)
    : config_(config), task_(task), rng_(config.seed) {
  SuperMeshConfig mesh_config = config_.mesh;
  if (mesh_config.super_blocks_per_unitary == 0) {
    // Depth bounds not given explicitly: derive B_max/B_min from the
    // footprint constraint (Eq. 16).
    mesh_config = SuperMeshConfig::from_bounds(config_.mesh.k, config_.footprint,
                                               config_.max_super_blocks_per_unitary);
  }
  mesh_ = std::make_unique<SuperMesh>(mesh_config, rng_);
  config_.mesh = mesh_config;
  task_.bind(*mesh_);
}

SearchResult AdeptSearcher::run(comm::Communicator* comm) {
  const bool sharded = comm != nullptr;
  if (sharded && !task_.supports_sharding()) {
    throw std::invalid_argument(
        "AdeptSearcher: task does not support sharded (data-parallel) "
        "execution; run() without a communicator instead");
  }
  SearchResult result;
  const int total_steps = config_.epochs * config_.steps_per_epoch;
  const int spl_step = config_.spl_epoch * config_.steps_per_epoch;

  // Search telemetry (docs/observability.md): per-step wall time + span on
  // every rank (per-rank skew shows in the trace), loss/penalty gauges
  // tracking the latest step, and a counter for SPL legalization events.
  // Under data parallelism the traced values are rank-identical by the
  // bit-exactness contract, so rank 0's gauge writes equal every rank's.
  obs::Histogram& step_us = obs::histogram("search.step_us");
  obs::Gauge& g_task_loss = obs::gauge("search.task_loss");
  obs::Gauge& g_footprint_penalty = obs::gauge("search.footprint_penalty");
  obs::Counter& legalizations = obs::counter("search.legalize_count");
  static const obs::TraceId t_step = obs::intern_name("search.step");
  const bool telemetry_rank = !sharded || comm->rank() == 0;

  AlmState alm(static_cast<std::size_t>(mesh_->total_blocks()), config_.mesh.k,
               config_.alm);
  alm.set_horizon(spl_step);

  auto weight_params = [&]() {
    std::vector<Tensor> params = mesh_->topology_weights();
    for (auto& w : task_.weights()) params.push_back(w);
    return params;
  };
  // Every differentiable leaf a loss graph can touch. The sharded path runs
  // several backward passes per step (one per owned shard + one for the
  // replicated penalties), so grads must be wiped between passes on ALL
  // leaves, not just the stepped optimizer's.
  auto all_params = [&]() {
    std::vector<Tensor> params = weight_params();
    for (auto& a : mesh_->arch_params()) params.push_back(a);
    return params;
  };
  auto weight_opt = std::make_unique<optim::Adam>(
      weight_params(), config_.lr_weights, 0.9, 0.999, 1e-8,
      config_.weight_decay_weights);
  optim::Adam arch_opt(mesh_->arch_params(), config_.lr_arch, 0.9, 0.999, 1e-8,
                       config_.weight_decay_arch);

  // The cross-rank gradient reduction rides Optimizer::step's pre-step hook:
  // the step body points these slots at the current step's reducer/penalty
  // stash, and step() reduces right before apply_step reads the grads.
  comm::ShardedGradReducer* cur_reducer = nullptr;
  std::vector<std::vector<float>>* cur_penalty = nullptr;
  std::vector<double> reduced_scalars;
  auto attach_hook = [&](optim::Optimizer& opt) {
    if (!sharded) return;
    opt.set_pre_step_hook([&, comm] {
      reduced_scalars = cur_reducer->finish(*comm, cur_penalty);
    });
  };
  attach_hook(*weight_opt);
  attach_hook(arch_opt);

  optim::CosineLr lr_schedule(config_.lr_weights, total_steps);
  optim::ExponentialDecay tau_schedule(config_.tau_start, config_.tau_end, total_steps);

  int cycle = 0;
  for (int step = 0; step < total_steps; ++step) {
    // RAII covers both branch exits of the step body (the unsharded branch
    // leaves via `continue`). Histogram entries on rank 0 only, so count
    // == steps regardless of world size; spans on every rank.
    obs::TraceSpan step_span(t_step);
    obs::ScopedTimerUs step_timer(telemetry_rank ? &step_us : nullptr);
    const int epoch = step / config_.steps_per_epoch;
    const double tau = tau_schedule.at(step);
    weight_opt->set_lr(lr_schedule.at(step));

    // SPL: legalize and freeze permutations, rebuild the weight optimizer
    // without them (paper: epoch 50 of 90).
    if (step == spl_step && !mesh_->permutations_frozen()) {
      if (telemetry_rank) legalizations.inc();
      mesh_->legalize_permutations(rng_, config_.spl);
      weight_opt = std::make_unique<optim::Adam>(
          weight_params(), lr_schedule.at(step), 0.9, 0.999, 1e-8,
          config_.weight_decay_weights);
      attach_hook(*weight_opt);
    }

    const bool warmup = epoch < config_.warmup_epochs;
    const bool arch_step =
        !warmup && (cycle++ % (config_.weight_steps_per_arch_step + 1) ==
                    config_.weight_steps_per_arch_step);

    mesh_->begin_step(tau, rng_, /*stochastic=*/true);

    if (!sharded) {
      Tensor task_loss = task_.loss(*mesh_, /*validation=*/arch_step);
      Tensor loss = task_loss;
      std::vector<Tensor> perms;
      if (!mesh_->permutations_frozen()) {
        perms = mesh_->all_relaxed_perms();
        loss = ag::add(loss, alm.penalty(perms));
      }
      Tensor penalty = mesh_->footprint_penalty_expr(config_.footprint);
      if (!warmup) loss = ag::add(loss, penalty);
      // Record E[F] before the optimizer mutates parameters: the value then
      // describes the same parameters as task_loss/penalty above (and reads
      // the block-count cache footprint_penalty_expr just filled, instead of
      // re-running SPL legalization per query).
      result.trace.expected_footprint.push_back(
          mesh_->expected_footprint(config_.footprint.pdk));

      if (arch_step) {
        arch_opt.zero_grad();
        loss.backward();
        arch_opt.step();
      } else {
        weight_opt->zero_grad();
        loss.backward();
        weight_opt->step();
        if (!mesh_->permutations_frozen()) alm.update(perms);
      }

      result.trace.task_loss.push_back(task_loss.item());
      result.trace.alm_lambda.push_back(alm.mean_lambda());
      result.trace.alm_rho.push_back(alm.rho());
      result.trace.permutation_error.push_back(
          perms.empty() ? 0.0 : alm.permutation_error(perms));
      result.trace.footprint_penalty.push_back(penalty.item());
      g_task_loss.set(result.trace.task_loss.back());
      g_footprint_penalty.set(result.trace.footprint_penalty.back());
      continue;
    }

    // ---- sharded (data-parallel) step ----------------------------------
    // Task gradients come from one backward per owned micro-shard, combined
    // across shards and ranks in the fixed tree order of comm/sharded.h.
    // The ALM + footprint penalty gradients are replicated (identical on
    // every rank), computed in a separate pass, and added exactly once
    // after the cross-rank reduce.
    const std::int64_t items = task_.begin_step_items(arch_step);
    const int shards = comm::shard_count(items);
    optim::Optimizer& opt =
        arch_step ? static_cast<optim::Optimizer&>(arch_opt) : *weight_opt;
    comm::ShardedGradReducer reducer(opt.params(), /*scalar_slots=*/1);
    const std::int64_t stat_cols = task_.stat_slots();
    std::vector<float> stat_rows(
        static_cast<std::size_t>(shards) * static_cast<std::size_t>(stat_cols),
        0.0f);
    std::vector<Tensor> leaves = all_params();
    for (int s = 0; s < shards; ++s) {
      if (comm::shard_owner(s, shards, comm->world_size()) != comm->rank()) {
        continue;
      }
      for (auto& p : leaves) p.zero_grad();
      const auto range = comm::shard_range(items, s, shards);
      Tensor shard_loss =
          task_.loss_shard(*mesh_, arch_step, range.lo, range.hi, items);
      shard_loss.backward();
      reducer.add_shard({static_cast<double>(shard_loss.item())});
      if (stat_cols > 0) {
        task_.capture_shard_stats(stat_rows.data() +
                                  static_cast<std::size_t>(s) *
                                      static_cast<std::size_t>(stat_cols));
      }
    }
    for (auto& p : leaves) p.zero_grad();
    std::vector<Tensor> perms;
    Tensor penalty = mesh_->footprint_penalty_expr(config_.footprint);
    Tensor extra = Tensor::scalar(0.0f);
    bool have_extra = false;
    if (!mesh_->permutations_frozen()) {
      perms = mesh_->all_relaxed_perms();
      extra = ag::add(extra, alm.penalty(perms));
      have_extra = true;
    }
    if (!warmup) {
      extra = ag::add(extra, penalty);
      have_extra = true;
    }
    if (have_extra) extra.backward();
    std::vector<Tensor> opt_params = opt.params();
    std::vector<std::vector<float>> penalty_grads =
        comm::ShardedGradReducer::harvest_grads(opt_params);
    result.trace.expected_footprint.push_back(
        mesh_->expected_footprint(config_.footprint.pdk));

    cur_reducer = &reducer;
    cur_penalty = &penalty_grads;
    opt.step();  // pre-step hook: allreduce task grads, add penalty grads
    cur_reducer = nullptr;
    cur_penalty = nullptr;
    if (!arch_step && !mesh_->permutations_frozen()) alm.update(perms);

    if (stat_cols > 0) {
      // Zero-filled except each owner's rows, so the sum IS the gather;
      // every rank then replays the same bits in shard order.
      comm->allreduce_sum(stat_rows.data(),
                          static_cast<std::int64_t>(stat_rows.size()));
      task_.apply_step_stats(stat_rows.data(), shards);
    }

    result.trace.task_loss.push_back(
        reduced_scalars.empty() ? 0.0 : reduced_scalars[0]);
    result.trace.alm_lambda.push_back(alm.mean_lambda());
    result.trace.alm_rho.push_back(alm.rho());
    result.trace.permutation_error.push_back(
        perms.empty() ? 0.0 : alm.permutation_error(perms));
    result.trace.footprint_penalty.push_back(penalty.item());
    if (telemetry_rank) {
      g_task_loss.set(result.trace.task_loss.back());
      g_footprint_penalty.set(result.trace.footprint_penalty.back());
    }
  }

  if (!mesh_->permutations_frozen()) {
    if (telemetry_rank) legalizations.inc();
    mesh_->legalize_permutations(rng_, config_.spl);
  }
  result.topology = mesh_->sample_topology(rng_, config_.footprint.pdk,
                                           config_.footprint.f_min,
                                           config_.footprint.f_max);
  result.final_metric = task_.metric(*mesh_);
  return result;
}

MatrixFitTask::MatrixFitTask(int tiles, std::uint64_t seed)
    : tiles_(tiles), rng_(seed) {}

void MatrixFitTask::bind(SuperMesh& mesh) {
  const std::int64_t k = mesh.k();
  const int nb = mesh.blocks_per_unitary();
  targets_.clear();
  phi_u_.clear();
  phi_v_.clear();
  sigma_.clear();
  for (int t = 0; t < tiles_; ++t) {
    std::vector<float> target(static_cast<std::size_t>(k * k));
    // Orthogonal-ish random targets keep the fit well-scaled.
    for (auto& x : target) {
      x = static_cast<float>(rng_.normal(0.0, 1.0 / std::sqrt(static_cast<double>(k))));
    }
    targets_.push_back(ag::make_tensor(std::move(target), {k, k}, false));
    auto make_phases = [&]() {
      std::vector<Tensor> phases;
      for (int b = 0; b < nb; ++b) {
        std::vector<float> phi(static_cast<std::size_t>(k));
        for (auto& p : phi) {
          p = static_cast<float>(
              rng_.uniform(-std::numbers::pi, std::numbers::pi));
        }
        phases.push_back(ag::make_tensor(std::move(phi), {k}, true));
      }
      return phases;
    };
    phi_u_.push_back(make_phases());
    phi_v_.push_back(make_phases());
    std::vector<float> sig(static_cast<std::size_t>(k), 1.0f);
    sigma_.push_back(ag::make_tensor(std::move(sig), {k}, true));
  }
}

Tensor MatrixFitTask::loss(SuperMesh& mesh, bool validation) {
  (void)validation;  // same targets for both splits in the synthetic proxy
  Tensor total = Tensor::scalar(0.0f);
  for (int t = 0; t < tiles_; ++t) {
    CxTensor u = mesh.tile_unitary(Side::u, phi_u_[static_cast<std::size_t>(t)]);
    CxTensor v = mesh.tile_unitary(Side::v, phi_v_[static_cast<std::size_t>(t)]);
    // U * diag(sigma) is a column scaling — no materialized diagonal/gemm.
    const std::int64_t k = mesh.k();
    CxTensor us = ag::cscale(
        u, ag::reshape(sigma_[static_cast<std::size_t>(t)], {1, k}));
    CxTensor w = ag::cmatmul(us, v);
    Tensor err = ag::sub(w.re, targets_[static_cast<std::size_t>(t)]);
    total = ag::add(total, ag::mean(ag::square(err)));
  }
  return ag::mul_scalar(total, 1.0f / static_cast<float>(tiles_));
}

Tensor MatrixFitTask::loss_shard(SuperMesh& mesh, bool validation,
                                 std::int64_t lo, std::int64_t hi,
                                 std::int64_t items) {
  (void)validation;
  Tensor total = Tensor::scalar(0.0f);
  for (std::int64_t t = lo; t < hi; ++t) {
    CxTensor u = mesh.tile_unitary(Side::u, phi_u_[static_cast<std::size_t>(t)]);
    CxTensor v = mesh.tile_unitary(Side::v, phi_v_[static_cast<std::size_t>(t)]);
    const std::int64_t k = mesh.k();
    CxTensor us = ag::cscale(
        u, ag::reshape(sigma_[static_cast<std::size_t>(t)], {1, k}));
    CxTensor w = ag::cmatmul(us, v);
    Tensor err = ag::sub(w.re, targets_[static_cast<std::size_t>(t)]);
    total = ag::add(total, ag::mean(ag::square(err)));
  }
  return ag::mul_scalar(total, 1.0f / static_cast<float>(items));
}

std::vector<Tensor> MatrixFitTask::weights() {
  std::vector<Tensor> out;
  for (auto& tile : phi_u_) {
    for (auto& p : tile) out.push_back(p);
  }
  for (auto& tile : phi_v_) {
    for (auto& p : tile) out.push_back(p);
  }
  for (auto& s : sigma_) out.push_back(s);
  return out;
}

double MatrixFitTask::metric(SuperMesh& mesh) {
  ag::NoGradGuard guard;
  adept::Rng eval_rng(7);
  mesh.begin_step(/*tau=*/0.5, eval_rng, /*stochastic=*/false);
  return -static_cast<double>(loss(mesh, true).item());
}

SearchResult run_search_data_parallel(
    const SearchConfig& config,
    const std::function<std::unique_ptr<ProxyTask>()>& make_task, int ranks) {
  const int world = comm::resolve_ranks(ranks);
  SearchResult out;
  comm::run_ranks(world, [&](comm::Communicator& c) {
    // Each rank replays the identical deterministic construction; only the
    // shard ownership inside run() differs across ranks.
    std::unique_ptr<ProxyTask> task = make_task();
    AdeptSearcher searcher(config, *task);
    SearchResult r = searcher.run(&c);
    if (c.rank() == 0) out = std::move(r);
  });
  return out;
}

}  // namespace adept::core
