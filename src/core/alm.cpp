#include "core/alm.h"

#include <cmath>

namespace adept::core {

using ag::Tensor;

AlmState::AlmState(std::size_t num_blocks, std::int64_t k, const AlmConfig& config)
    : num_blocks_(num_blocks),
      k_(k),
      config_(config),
      rho_(config.rho0),
      lambda_row_(num_blocks, std::vector<double>(static_cast<std::size_t>(k), 0.0)),
      lambda_col_(num_blocks, std::vector<double>(static_cast<std::size_t>(k), 0.0)) {}

void AlmState::set_horizon(std::int64_t total_steps) {
  if (total_steps <= 0) return;
  config_.rho_growth =
      std::pow(config_.rho_max_ratio, 1.0 / static_cast<double>(total_steps));
}

namespace {

// Delta vector expression: l1 - l2 per row (entries are non-negative after
// reparametrization, so l1 reduces to a plain row sum).
Tensor row_gap_expr(const Tensor& p) {
  return ag::sub(ag::row_sum(p), ag::row_l2_norm(p));
}

Tensor col_gap_expr(const Tensor& p) {
  return ag::sub(ag::col_sum(p), ag::col_l2_norm(p));
}

Tensor as_const_vec(const std::vector<double>& v, std::int64_t rows, std::int64_t cols) {
  std::vector<float> data(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) data[i] = static_cast<float>(v[i]);
  return ag::make_tensor(std::move(data), {rows, cols}, false);
}

}  // namespace

Tensor AlmState::penalty(const std::vector<Tensor>& p_tilde) const {
  ag::check(p_tilde.size() == num_blocks_, "AlmState::penalty: block count mismatch");
  Tensor total = Tensor::scalar(0.0f);
  const float half_rho = static_cast<float>(rho_ / 2.0);
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const Tensor& p = p_tilde[b];
    Tensor dr = row_gap_expr(p);                      // [K,1]
    Tensor dc = col_gap_expr(p);                      // [1,K]
    Tensor lr = as_const_vec(lambda_row_[b], k_, 1);  // [K,1]
    Tensor lc = as_const_vec(lambda_col_[b], 1, k_);  // [1,K]
    // linear terms: sum_i lambda * Delta
    total = ag::add(total, ag::sum(ag::mul(lr, dr)));
    total = ag::add(total, ag::sum(ag::mul(lc, dc)));
    // lambda-scaled quadratic terms: (rho/2) * sum_i lambda * Delta^2
    total = ag::add(total, ag::mul_scalar(ag::sum(ag::mul(lr, ag::square(dr))), half_rho));
    total = ag::add(total, ag::mul_scalar(ag::sum(ag::mul(lc, ag::square(dc))), half_rho));
  }
  return total;
}

std::vector<double> row_norm_gaps(const Tensor& p) {
  const std::int64_t k = p.dim(0), m = p.dim(1);
  const auto& pd = p.data();
  std::vector<double> gaps(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    double l1 = 0.0, l2 = 0.0;
    for (std::int64_t j = 0; j < m; ++j) {
      const double v = pd[static_cast<std::size_t>(i * m + j)];
      l1 += std::fabs(v);
      l2 += v * v;
    }
    gaps[static_cast<std::size_t>(i)] = l1 - std::sqrt(l2);
  }
  return gaps;
}

std::vector<double> col_norm_gaps(const Tensor& p) {
  const std::int64_t k = p.dim(0), m = p.dim(1);
  const auto& pd = p.data();
  std::vector<double> gaps(static_cast<std::size_t>(m));
  for (std::int64_t j = 0; j < m; ++j) {
    double l1 = 0.0, l2 = 0.0;
    for (std::int64_t i = 0; i < k; ++i) {
      const double v = pd[static_cast<std::size_t>(i * m + j)];
      l1 += std::fabs(v);
      l2 += v * v;
    }
    gaps[static_cast<std::size_t>(j)] = l1 - std::sqrt(l2);
  }
  return gaps;
}

void AlmState::update(const std::vector<Tensor>& p_tilde) {
  ag::check(p_tilde.size() == num_blocks_, "AlmState::update: block count mismatch");
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const auto row_gaps = row_norm_gaps(p_tilde[b]);
    const auto col_gaps = col_norm_gaps(p_tilde[b]);
    // Eq. 12 with the whole increment scaled by rho: lambda stays tiny while
    // rho is tiny, so the task loss dominates early and the constraint
    // tightens as the rho schedule ramps (paper Sec. 3.3.2, Fig. 5a).
    for (std::size_t i = 0; i < row_gaps.size(); ++i) {
      lambda_row_[b][i] += rho_ * (row_gaps[i] + 0.5 * row_gaps[i] * row_gaps[i]);
    }
    for (std::size_t j = 0; j < col_gaps.size(); ++j) {
      lambda_col_[b][j] += rho_ * (col_gaps[j] + 0.5 * col_gaps[j] * col_gaps[j]);
    }
  }
  rho_ = std::min(rho_ * config_.rho_growth, config_.rho0 * config_.rho_max_ratio);
}

double AlmState::permutation_error(const std::vector<Tensor>& p_tilde) const {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& p : p_tilde) {
    for (double g : row_norm_gaps(p)) {
      acc += g;
      ++count;
    }
    for (double g : col_norm_gaps(p)) {
      acc += g;
      ++count;
    }
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

double AlmState::mean_lambda() const {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& v : lambda_row_) {
    for (double x : v) {
      acc += x;
      ++count;
    }
  }
  for (const auto& v : lambda_col_) {
    for (double x : v) {
      acc += x;
      ++count;
    }
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

}  // namespace adept::core
