#include "core/spl.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adept::core {

using photonics::Permutation;
using photonics::RMat;

namespace {

RMat row_softmax(const RMat& m, double tau) {
  RMat out(m.rows(), m.cols());
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    double mx = -std::numeric_limits<double>::infinity();
    for (std::int64_t j = 0; j < m.cols(); ++j) mx = std::max(mx, m.at(i, j));
    double z = 0.0;
    for (std::int64_t j = 0; j < m.cols(); ++j) {
      out.at(i, j) = std::exp((m.at(i, j) - mx) / tau);
      z += out.at(i, j);
    }
    for (std::int64_t j = 0; j < m.cols(); ++j) out.at(i, j) /= z;
  }
  return out;
}

bool try_argmax_rounding(const RMat& score, Permutation* out) {
  const std::int64_t k = score.rows();
  std::vector<int> map(static_cast<std::size_t>(k), -1);
  std::vector<bool> used(static_cast<std::size_t>(k), false);
  for (std::int64_t i = 0; i < k; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (score.at(i, j) > score.at(i, best)) best = j;
    }
    if (used[static_cast<std::size_t>(best)]) return false;
    used[static_cast<std::size_t>(best)] = true;
    map[static_cast<std::size_t>(i)] = static_cast<int>(best);
  }
  *out = Permutation(std::move(map));
  return true;
}

}  // namespace

Permutation hungarian_assignment(const RMat& score) {
  // Standard O(K^3) Hungarian on costs = -score (we maximize total score).
  const std::int64_t n = score.rows();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<std::size_t>(n + 1), 0.0);
  std::vector<double> v(static_cast<std::size_t>(n + 1), 0.0);
  std::vector<int> match(static_cast<std::size_t>(n + 1), 0);  // col -> row
  std::vector<int> way(static_cast<std::size_t>(n + 1), 0);
  auto cost = [&](std::int64_t i, std::int64_t j) { return -score.at(i - 1, j - 1); };
  for (std::int64_t i = 1; i <= n; ++i) {
    match[0] = static_cast<int>(i);
    std::int64_t j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(n + 1), inf);
    std::vector<bool> used(static_cast<std::size_t>(n + 1), false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const std::int64_t i0 = match[static_cast<std::size_t>(j0)];
      double delta = inf;
      std::int64_t j1 = 0;
      for (std::int64_t j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double cur = cost(i0, j) - u[static_cast<std::size_t>(i0)] -
                           v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = static_cast<int>(j0);
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (std::int64_t j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(match[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<std::size_t>(j0)] != 0);
    do {
      const std::int64_t j1 = way[static_cast<std::size_t>(j0)];
      match[static_cast<std::size_t>(j0)] = match[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> map(static_cast<std::size_t>(n), -1);
  for (std::int64_t j = 1; j <= n; ++j) {
    map[static_cast<std::size_t>(match[static_cast<std::size_t>(j)] - 1)] =
        static_cast<int>(j - 1);
  }
  return Permutation(std::move(map));
}

Permutation stochastic_permutation_legalization(const RMat& relaxed, adept::Rng& rng,
                                                const SplConfig& config) {
  // Step 1: binarize by low-temperature row softmax.
  const RMat sharp = row_softmax(relaxed, config.tau);
  // Step 2: SVD (Procrustes) projection pushes away from saddle points.
  const RMat q = photonics::procrustes_orthogonalize(sharp);
  RMat base(q.rows(), q.cols());
  for (std::int64_t i = 0; i < q.rows(); ++i) {
    for (std::int64_t j = 0; j < q.cols(); ++j) base.at(i, j) = std::fabs(q.at(i, j));
  }
  // Steps 3-4: perturb + hard rounding; keep the legal candidate with the
  // fewest crossings.
  Permutation best;
  bool have_best = false;
  std::int64_t best_crossings = 0;
  int found = 0;
  for (int attempt = 0; attempt < config.max_attempts; ++attempt) {
    RMat noisy = base;
    if (attempt > 0) {  // first attempt is the unperturbed rounding
      for (auto& x : noisy.data()) x += rng.normal(0.0, config.noise_sigma);
    }
    Permutation candidate;
    if (!try_argmax_rounding(noisy, &candidate)) continue;
    const std::int64_t crossings = photonics::crossing_count(candidate);
    if (!have_best || crossings < best_crossings) {
      best = candidate;
      best_crossings = crossings;
      have_best = true;
    }
    if (++found >= config.keep_best_of) break;
  }
  if (have_best) return best;
  // Guaranteed-legal fallback: maximum-weight assignment on the scores.
  return hungarian_assignment(base);
}

Permutation stochastic_permutation_legalization(const ag::Tensor& relaxed,
                                                adept::Rng& rng,
                                                const SplConfig& config) {
  ag::check(relaxed.ndim() == 2 && relaxed.dim(0) == relaxed.dim(1),
            "SPL: square matrix expected");
  const std::int64_t k = relaxed.dim(0);
  RMat m(k, k);
  const auto& d = relaxed.data();
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      m.at(i, j) = d[static_cast<std::size_t>(i * k + j)];
    }
  }
  return stochastic_permutation_legalization(m, rng, config);
}

}  // namespace adept::core
