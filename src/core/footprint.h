// PDK-adaptive footprint accounting (paper Eq. 15-16).
//
// Footprints are tracked in units of 1000 um^2 ("k-um^2"), matching the
// paper's tables. The probabilistic penalty steers the *expected* SuperMesh
// footprint E[F] into [F_min, F_max]: outside the (5% margin-tightened)
// range, a beta-weighted ratio of the differentiable proxy footprint is
// added to (or subtracted from) the loss. The proxy replaces the
// non-differentiable crossing count with beta_CR * ||P~ - I||_F^2.
#pragma once

#include <cstdint>

#include "autograd/ops.h"
#include "autograd/tensor.h"
#include "photonics/pdk.h"

namespace adept::core {

// Areas in k-um^2 (1/1000 um^2), the unit used throughout search and tables.
double ps_area_k(const photonics::Pdk& pdk);
double dc_area_k(const photonics::Pdk& pdk);
double cr_area_k(const photonics::Pdk& pdk);

struct FootprintConfig {
  photonics::Pdk pdk;
  double f_min = 0.0;     // k-um^2
  double f_max = 0.0;     // k-um^2
  double beta = 10.0;     // penalty weight (paper: 10)
  double beta_cr = 100.0; // crossing-proxy weight (paper: 100)
  double margin = 0.05;   // constraint margin: branch at 0.95*f_max / 1.05*f_min

  double f_max_hat() const { return (1.0 - margin) * f_max; }
  double f_min_hat() const { return (1.0 + margin) * f_min; }
};

// Differentiable proxy footprint of one block (Eq. 15), in k-um^2:
//   F_b,prox = K*F_PS + #DC(t_q)*F_DC + beta_cr * ||P~ - I||_F^2 * F_CR
ag::Tensor block_footprint_proxy(std::int64_t k, const ag::Tensor& t_quantized,
                                 const ag::Tensor& p_tilde,
                                 const FootprintConfig& config);

// Piecewise penalty L_F given the proxy expectation expression and the
// (non-differentiable) true expectation value.
ag::Tensor footprint_penalty(const ag::Tensor& expected_proxy, double expected_true,
                             const FootprintConfig& config);

// Analytical SuperMesh depth bounds (Eq. 16). Block counts are totals over
// U and V together, as in the paper's #Blk.
struct BlockBounds {
  int b_min = 0;  // floor(F_min / F_b,max)
  int b_max = 0;  // ceil(F_max / F_b,min)
};
BlockBounds analytical_block_bounds(std::int64_t k, const FootprintConfig& config);

}  // namespace adept::core
