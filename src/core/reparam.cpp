#include "core/reparam.h"

#include <cmath>

namespace adept::core {

using ag::Tensor;

Tensor smoothed_identity_init(std::int64_t k, bool requires_grad) {
  const float off = 1.0f / static_cast<float>(2 * k - 2);
  const float diag_extra = 0.5f - off;
  std::vector<float> data(static_cast<std::size_t>(k * k), off);
  for (std::int64_t i = 0; i < k; ++i) {
    data[static_cast<std::size_t>(i * k + i)] += diag_extra;
  }
  return ag::make_tensor(std::move(data), {k, k}, requires_grad);
}

Tensor birkhoff_reparam(const Tensor& p_raw) {
  Tensor p_abs = ag::abs(p_raw);
  // Column normalization: P' = |P| / (1^T |P|).
  Tensor col_norm = ag::div(p_abs, ag::add_scalar(ag::col_sum(p_abs), 1e-12f));
  // Row normalization: P'' = P' / (P' 1).
  Tensor row_norm = ag::div(col_norm, ag::add_scalar(ag::row_sum(col_norm), 1e-12f));
  return row_norm;
}

Tensor soft_permutation_project(const Tensor& p, float eps) {
  ag::check(p.ndim() == 2 && p.dim(0) == p.dim(1),
            "soft_permutation_project: square matrix expected");
  const std::int64_t k = p.dim(0);
  const auto& pd = p.data();
  std::vector<float> out(pd.size());
  auto frozen_rows = std::make_shared<std::vector<bool>>(static_cast<std::size_t>(k), false);
  for (std::int64_t i = 0; i < k; ++i) {
    float mx = 0.0f;
    for (std::int64_t j = 0; j < k; ++j) {
      mx = std::max(mx, pd[static_cast<std::size_t>(i * k + j)]);
    }
    const bool freeze = mx >= 1.0f - eps;
    (*frozen_rows)[static_cast<std::size_t>(i)] = freeze;
    for (std::int64_t j = 0; j < k; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i * k + j);
      out[idx] = freeze ? std::round(pd[idx]) : pd[idx];
    }
  }
  return ag::make_op(std::move(out), p.shape(), {p}, [p, k, frozen_rows](ag::TensorImpl& o) {
    if (!p.requires_grad()) return;
    auto& gp = const_cast<Tensor&>(p).grad();
    for (std::int64_t i = 0; i < k; ++i) {
      if ((*frozen_rows)[static_cast<std::size_t>(i)]) continue;  // gradient stopped
      for (std::int64_t j = 0; j < k; ++j) {
        const std::size_t idx = static_cast<std::size_t>(i * k + j);
        gp[idx] += o.grad[idx];
      }
    }
  });
}

Tensor reparametrize_permutation(const Tensor& p_raw, float eps) {
  return soft_permutation_project(birkhoff_reparam(p_raw), eps);
}

}  // namespace adept::core
