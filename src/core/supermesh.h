// Probabilistic photonic SuperMesh (paper Sec. 3.3, Fig. 1).
//
// One SuperMesh models the searchable unitary pair (U, V). Each unitary has
// B_max/2 super blocks; super block b is either executed or skipped as an
// identity, with selection probability parametrized by logits theta_b and
// sampled through Gumbel-Softmax (Eq. 5-7). The last B_min/2 blocks per
// unitary are always on, lower-bounding the depth.
//
// Per-block searchable state:
//   theta_b   [2]      architecture logits (skip vs select)
//   t_b       [slots]  latent coupler coefficients, binarized via STE
//   P_b       [K,K]    relaxed permutation, reparametrized into Birkhoff
// Per-tile weights (phases Phi, diagonal Sigma) are owned by the caller
// (ONN layers / proxy tasks); the SuperMesh provides the per-step topology
// expressions shared by every tile.
//
// Usage per training step:
//   sm.begin_step(tau, rng, stochastic);     // sample + rebuild topology exprs
//   ag::CxTensor u = sm.tile_unitary(Side::u, phases);  // per tile
//   loss = task + alm.penalty(sm.all_relaxed_perms()) + sm.footprint_penalty(cfg)
#pragma once

#include <vector>

#include "autograd/complex.h"
#include "autograd/tensor.h"
#include "common/rng.h"
#include "core/footprint.h"
#include "core/spl.h"
#include "photonics/topology.h"

namespace adept::core {

enum class Side { u, v };

struct SuperMeshConfig {
  int k = 8;
  int super_blocks_per_unitary = 8;  // B_max / 2
  int always_on_per_unitary = 2;     // B_min / 2
  float proj_eps = 0.05f;            // soft-projection threshold (Eq. 11)
  bool normalize_unitaries = true;   // row/col l2 normalization (Sec. 3.3.2)
  double theta_init = 0.0;
  double t_init_range = 0.5;         // latent couplers ~ U(-r, r)

  // Derive a config from footprint bounds (Eq. 16), capped for tractability.
  static SuperMeshConfig from_bounds(int k, const FootprintConfig& footprint,
                                     int max_super_blocks_per_unitary = 16);
};

class SuperMesh {
 public:
  SuperMesh(const SuperMeshConfig& config, adept::Rng& rng);

  const SuperMeshConfig& config() const { return config_; }
  int k() const { return config_.k; }
  int blocks_per_unitary() const { return config_.super_blocks_per_unitary; }
  // Total super blocks across U and V (size of the ALM multiplier state).
  int total_blocks() const { return 2 * config_.super_blocks_per_unitary; }
  // DC start parity of block b (interleaved, Sec. 3.2).
  int block_parity(int b) const { return b % 2 == 0 ? 0 : 1; }
  bool block_always_on(int b) const {
    return b >= config_.super_blocks_per_unitary - config_.always_on_per_unitary;
  }

  // ---- parameter groups (for optimizers) ------------------------------
  std::vector<ag::Tensor> arch_params();         // theta logits
  std::vector<ag::Tensor> topology_weights();    // t latents + raw perms

  // ---- per-step topology expressions -----------------------------------
  // Rebuild Gumbel samples, reparametrized permutations, and quantized
  // coupler columns. `stochastic` enables Gumbel noise (training); without
  // it the sample is the plain softmax of theta (evaluation).
  void begin_step(double tau, adept::Rng& rng, bool stochastic = true);

  // Mixed-block unitary for one tile given per-block phases ([K] each,
  // caller-owned). Builds on the expressions cached by begin_step.
  ag::CxTensor tile_unitary(Side side, const std::vector<ag::Tensor>& phases) const;

  // Stacked unitaries [T,K,K] for all T tiles of a layer at once:
  // `phase_stacks[b]` is a [T,K] phase stack for block b (caller-owned).
  // Every block advances ALL tiles through one batched tape node
  // (bblock_transfer / bcmix_identity / bcmatmul) instead of T scalar
  // chains; bit-exact against T tile_unitary calls, values and gradients.
  ag::CxTensor tile_unitary_batched(
      Side side, const std::vector<ag::Tensor>& phase_stacks) const;

  // All reparametrized permutations of the current step (U blocks then V),
  // for the ALM penalty.
  std::vector<ag::Tensor> all_relaxed_perms() const;

  // Probabilistic footprint penalty L_F for the current step (Eq. 15).
  ag::Tensor footprint_penalty_expr(const FootprintConfig& config) const;
  // True expected footprint E[F] in k-um^2 (hard counts, noise-free probs).
  double expected_footprint(const photonics::Pdk& pdk) const;
  // Noise-free selection probability of block b.
  double select_probability(Side side, int b) const;

  // ---- legalization and freezing ---------------------------------------
  // Replace every relaxed permutation by an SPL-legalized hard permutation
  // and stop optimizing it (paper: SPL at epoch 50, then continue training).
  void legalize_permutations(adept::Rng& rng, const SplConfig& spl = {});
  bool permutations_frozen() const { return perms_frozen_; }
  // Currently legalized / rounded permutation of a block (valid after
  // legalize_permutations, or best-effort rounding before).
  photonics::Permutation block_permutation(Side side, int b, adept::Rng& rng) const;

  // Sample a SubMesh honoring [f_min, f_max] (k-um^2) from the learned
  // selection distribution (paper Sec. 4.1 re-training step). Falls back to
  // the footprint-closest sample after max_tries.
  photonics::PtcTopology sample_topology(adept::Rng& rng, const photonics::Pdk& pdk,
                                         double f_min, double f_max,
                                         int max_tries = 256,
                                         const std::string& name = "ADEPT") const;

 private:
  struct UnitaryParams {
    std::vector<ag::Tensor> theta;     // [2] logits per block
    std::vector<ag::Tensor> t_latent;  // latent couplers per block
    std::vector<ag::Tensor> p_raw;     // raw relaxed perms per block
  };
  struct StepState {
    // m_{b,1} (skip) and m_{b,2} (select) as [1] scalars per block.
    std::vector<ag::Tensor> skip, select;
    std::vector<ag::Tensor> p_tilde;        // reparametrized perms
    std::vector<ag::Tensor> t_quantized;    // STE-binarized couplers
    std::vector<ag::CxTensor> coupler_mat;  // T_b matrices
  };

  const UnitaryParams& params(Side side) const {
    return side == Side::u ? u_ : v_;
  }
  UnitaryParams& params(Side side) { return side == Side::u ? u_ : v_; }
  const StepState& step(Side side) const {
    return side == Side::u ? step_u_ : step_v_;
  }

  UnitaryParams make_unitary(adept::Rng& rng) const;
  StepState make_step(const UnitaryParams& p, double tau, adept::Rng& rng,
                      bool stochastic) const;
  double hard_block_footprint(Side side, int b, const photonics::Pdk& pdk,
                              adept::Rng& rng) const;

  // Hard device counts of one block (DC count from t_latent, crossings from
  // the SPL-legalized permutation). PDK-independent, so one cache entry
  // serves every footprint query between parameter steps; begin_step and
  // legalize_permutations invalidate it.
  struct BlockCounts {
    bool valid = false;
    double dc = 0.0;
    double cr = 0.0;
  };
  const BlockCounts& cached_block_counts(Side side, int b, adept::Rng& rng) const;
  void invalidate_footprint_cache() const;

  SuperMeshConfig config_;
  UnitaryParams u_, v_;
  StepState step_u_, step_v_;
  bool step_ready_ = false;
  bool perms_frozen_ = false;
  mutable std::vector<BlockCounts> block_counts_[2];  // indexed by Side
};

}  // namespace adept::core
