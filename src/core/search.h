// Two-stage ADEPT SuperMesh search driver (paper Fig. 2, Sec. 3.3 / 4.1).
//
// Stage 1 (warmup): only SuperMesh weights (Sigma, Phi, T, P) train, with the
// ALM permutation penalty. Stage 2 (search): weight steps and architecture
// steps alternate at a 3:1 ratio; architecture steps update the block
// logits theta against the validation loss plus the footprint penalty. At
// the SPL epoch all relaxed permutations are legalized and frozen; training
// continues on the remaining parameters. Finally a SubMesh honoring the
// footprint constraint is sampled from the learned selection distribution.
//
// The task being optimized is abstracted behind ProxyTask so the same driver
// serves the built-in matrix-fitting proxy (tests, Fig. 5 ablations) and the
// CNN proxy in src/nn (paper main results).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "autograd/tensor.h"
#include "comm/communicator.h"
#include "common/rng.h"
#include "core/alm.h"
#include "core/footprint.h"
#include "core/spl.h"
#include "core/supermesh.h"
#include "photonics/topology.h"

namespace adept::core {

// A differentiable training task driving the search. Implementations own the
// per-tile weights (phases Phi, diagonals Sigma, plus any classifier
// parameters) and build their loss through SuperMesh::tile_unitary.
class ProxyTask {
 public:
  virtual ~ProxyTask() = default;
  // Called once before training so the task can size its weights.
  virtual void bind(SuperMesh& mesh) = 0;
  // Build the loss for the current step (begin_step was already called).
  // `validation` distinguishes the bilevel split (weights vs architecture).
  virtual ag::Tensor loss(SuperMesh& mesh, bool validation) = 0;
  // Task-owned trainable parameters.
  virtual std::vector<ag::Tensor> weights() = 0;
  // Optional scalar quality metric for traces (higher is better).
  virtual double metric(SuperMesh& mesh) { (void)mesh; return 0.0; }

  // ---- optional micro-shard support (data-parallel search, src/comm) ----
  // A sharding task splits each step's loss into per-item-range shard
  // losses whose sum equals the step loss; AdeptSearcher::run(comm) then
  // distributes the shards over ranks with the fixed reduction order of
  // comm/sharded.h (results are bit-identical at any rank count).
  virtual bool supports_sharding() const { return false; }
  // Draw/pin this step's items — called exactly once per step on EVERY rank
  // (so any task-internal rng advances identically) — and return the item
  // count to shard over.
  virtual std::int64_t begin_step_items(bool validation) {
    (void)validation;
    return 0;
  }
  // Loss over items [lo, hi) of the pinned step data, scaled by 1/items so
  // the shard losses of one step sum to the step's full (mean) loss.
  virtual ag::Tensor loss_shard(SuperMesh& mesh, bool validation,
                                std::int64_t lo, std::int64_t hi,
                                std::int64_t items) {
    (void)mesh, (void)validation, (void)lo, (void)hi, (void)items;
    throw std::logic_error("ProxyTask: loss_shard not implemented");
  }
  // Width of the per-shard auxiliary stat row (order-dependent state the
  // task must replay in shard order — BatchNorm running stats); 0 = none.
  virtual std::int64_t stat_slots() const { return 0; }
  // Write the stats captured by the latest loss_shard backward into `row`
  // (stat_slots() floats).
  virtual void capture_shard_stats(float* row) { (void)row; }
  // Replay `shards` gathered rows (stat_slots() floats each, shard-major,
  // identical bits on every rank) in ascending shard order.
  virtual void apply_step_stats(const float* rows, int shards) {
    (void)rows, (void)shards;
  }
};

struct SearchConfig {
  SuperMeshConfig mesh;          // if mesh.k == 0, derived from footprint bounds
  FootprintConfig footprint;
  AlmConfig alm;
  SplConfig spl;
  int epochs = 90;
  int warmup_epochs = 10;
  int spl_epoch = 50;
  int steps_per_epoch = 20;
  int weight_steps_per_arch_step = 3;  // paper: 3:1
  double lr_weights = 1e-3;
  double lr_arch = 1e-3;
  double weight_decay_weights = 1e-4;  // on Phi and Sigma
  double weight_decay_arch = 5e-4;     // on theta
  double tau_start = 5.0;              // Gumbel temperature schedule
  double tau_end = 0.5;
  int max_super_blocks_per_unitary = 16;  // tractability cap on B_max/2
  std::uint64_t seed = 42;
};

// Per-step observability (drives Fig. 5 and EXPERIMENTS.md).
struct SearchTrace {
  std::vector<double> task_loss;
  std::vector<double> alm_lambda;         // mean multiplier
  std::vector<double> alm_rho;
  std::vector<double> permutation_error;  // mean l1-l2 gap
  std::vector<double> expected_footprint; // E[F] in k-um^2
  std::vector<double> footprint_penalty;  // L_F value
};

struct SearchResult {
  photonics::PtcTopology topology;
  SearchTrace trace;
  double final_metric = 0.0;
};

class AdeptSearcher {
 public:
  AdeptSearcher(const SearchConfig& config, ProxyTask& task);

  // comm == nullptr: the single-process path (unchanged numerics).
  // comm != nullptr: the micro-shard data-parallel path — each rank must own
  // its own AdeptSearcher + task replica built from the same config/seed
  // (see run_search_data_parallel); gradients are allreduced through the
  // stepped optimizer's pre-step hook. Bit-identical results at any world
  // size in {1, 2, 4, 8} — note world 1 still runs the sharded numerics,
  // which differ from the nullptr path (a different but equally
  // deterministic summation order).
  SearchResult run(comm::Communicator* comm = nullptr);
  SuperMesh& mesh() { return *mesh_; }
  const SearchConfig& config() const { return config_; }

 private:
  SearchConfig config_;
  ProxyTask& task_;
  std::unique_ptr<SuperMesh> mesh_;
  adept::Rng rng_;
};

// Data-parallel search entry point: spawns `ranks` in-process rank threads
// (0 = resolve the ADEPT_RANKS knob), builds one task replica per rank with
// `make_task` (replicas must be deterministic functions of their
// construction — same datasets, same seeds), runs the sharded search on
// each, and returns rank 0's result. With ranks resolving to 1 this still
// runs the sharded path so results are comparable across rank counts.
SearchResult run_search_data_parallel(
    const SearchConfig& config,
    const std::function<std::unique_ptr<ProxyTask>()>& make_task,
    int ranks = 0);

// Built-in proxy: fit a bank of random target matrices with W = U Sigma V
// (real part), loss = mean squared error. Exercises the full search stack
// without the NN substrate; used by unit tests and the Fig. 5 ablations.
class MatrixFitTask : public ProxyTask {
 public:
  MatrixFitTask(int tiles, std::uint64_t seed);
  void bind(SuperMesh& mesh) override;
  ag::Tensor loss(SuperMesh& mesh, bool validation) override;
  std::vector<ag::Tensor> weights() override;
  double metric(SuperMesh& mesh) override;  // negative MSE

  // Micro-shard support: tiles are the shard items.
  bool supports_sharding() const override { return true; }
  std::int64_t begin_step_items(bool validation) override {
    (void)validation;
    return tiles_;
  }
  ag::Tensor loss_shard(SuperMesh& mesh, bool validation, std::int64_t lo,
                        std::int64_t hi, std::int64_t items) override;

 private:
  int tiles_;
  adept::Rng rng_;
  std::vector<ag::Tensor> targets_;            // [K,K] constants per tile
  std::vector<std::vector<ag::Tensor>> phi_u_; // [tile][block] -> [K]
  std::vector<std::vector<ag::Tensor>> phi_v_;
  std::vector<ag::Tensor> sigma_;              // [K] per tile
};

}  // namespace adept::core
