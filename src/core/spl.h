// Stochastic permutation legalization (paper Eq. 13, Fig. 3).
//
// ALM optimization of relaxed permutations can stall at saddle points (e.g.
// two rows sharing mass on the same column). SPL forces a legal permutation:
//   1. row-softmax with temperature tau -> near-binary matrix
//   2. SVD-based orthogonal (Procrustes) projection pushes away from saddles
//   3. Gaussian perturbation delta breaks row ties
//   4. hard row-argmax; retry until the result is a legal permutation
// Among legal candidates we keep the one with the fewest crossings. A
// Hungarian assignment on the projected scores guarantees termination.
#pragma once

#include "autograd/tensor.h"
#include "common/rng.h"
#include "photonics/linalg.h"
#include "photonics/permutation.h"

namespace adept::core {

struct SplConfig {
  double tau = 0.05;          // softmax temperature (tau -> 0+ in the paper)
  double noise_sigma = 0.05;  // std-dev of the tie-breaking perturbation
  int max_attempts = 64;      // stochastic rounding attempts
  int keep_best_of = 8;       // legal candidates to compare by crossing count
};

// Legalize one relaxed permutation matrix ([K,K], non-negative rows summing
// to ~1). Always returns a legal permutation.
photonics::Permutation stochastic_permutation_legalization(
    const photonics::RMat& relaxed, adept::Rng& rng, const SplConfig& config = {});

// Convenience overload for autograd tensors.
photonics::Permutation stochastic_permutation_legalization(
    const ag::Tensor& relaxed, adept::Rng& rng, const SplConfig& config = {});

// Maximum-weight perfect matching on a dense score matrix (Hungarian
// algorithm, O(K^3)). Exposed for tests and used as the SPL fallback.
photonics::Permutation hungarian_assignment(const photonics::RMat& score);

}  // namespace adept::core
