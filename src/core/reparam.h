// Permutation reparametrization (paper Eq. 9-11).
//
// The discrete permutation constraint is relaxed to the Birkhoff polytope
// (doubly stochastic matrices). A raw trainable matrix is mapped into the
// polytope by |.| followed by column- then row-normalization, then a soft
// row projection binarizes rows that are already near-one-hot while stopping
// their gradients (avoids instability from the growing ALM linear term).
#pragma once

#include "autograd/ops.h"
#include "autograd/tensor.h"

namespace adept::core {

// Smoothed-identity initialization (paper Sec. 3.3.2):
//   P0 = I * (1/2 - 1/(2K-2)) + 1/(2K-2)
// Doubly stochastic with a dominant diagonal; random permutation init would
// start with zero entries through which no gradient flows.
ag::Tensor smoothed_identity_init(std::int64_t k, bool requires_grad = true);

// |P| followed by column then row normalization (approximate Birkhoff
// projection; rows sum to exactly 1, columns approximately).
ag::Tensor birkhoff_reparam(const ag::Tensor& p_raw);

// Soft projection Omega_P (Eq. 11): rows whose max entry >= 1 - eps are
// rounded to one-hot with gradients stopped; other rows pass through.
ag::Tensor soft_permutation_project(const ag::Tensor& p, float eps = 0.05f);

// Full reparametrization chain: soft_project(row_norm(col_norm(|P|))).
ag::Tensor reparametrize_permutation(const ag::Tensor& p_raw, float eps = 0.05f);

}  // namespace adept::core
