#include "core/footprint.h"

#include <cmath>

#include "core/dc_binarize.h"

namespace adept::core {

using ag::Tensor;

double ps_area_k(const photonics::Pdk& pdk) { return pdk.ps_area_um2 / 1000.0; }
double dc_area_k(const photonics::Pdk& pdk) { return pdk.dc_area_um2 / 1000.0; }
double cr_area_k(const photonics::Pdk& pdk) { return pdk.cr_area_um2 / 1000.0; }

Tensor block_footprint_proxy(std::int64_t k, const Tensor& t_quantized,
                             const Tensor& p_tilde, const FootprintConfig& config) {
  const float ps_term =
      static_cast<float>(static_cast<double>(k) * ps_area_k(config.pdk));
  Tensor dc_term = ag::mul_scalar(dc_count_expr(t_quantized),
                                  static_cast<float>(dc_area_k(config.pdk)));
  // ||P~ - I||_F^2 as a differentiable crossing-count proxy.
  Tensor diff = ag::sub(p_tilde, Tensor::eye(p_tilde.dim(0)));
  Tensor cr_proxy = ag::mul_scalar(
      ag::sum(ag::square(diff)),
      static_cast<float>(config.beta_cr * cr_area_k(config.pdk)));
  return ag::add_scalar(ag::add(dc_term, cr_proxy), ps_term);
}

Tensor footprint_penalty(const Tensor& expected_proxy, double expected_true,
                         const FootprintConfig& config) {
  if (expected_true > config.f_max_hat()) {
    return ag::mul_scalar(expected_proxy,
                          static_cast<float>(config.beta / config.f_max_hat()));
  }
  if (expected_true < config.f_min_hat()) {
    return ag::mul_scalar(expected_proxy,
                          static_cast<float>(-config.beta / config.f_min_hat()));
  }
  return Tensor::scalar(0.0f);
}

BlockBounds analytical_block_bounds(std::int64_t k, const FootprintConfig& config) {
  const double kf = static_cast<double>(k);
  const double f_block_min = kf * ps_area_k(config.pdk) + dc_area_k(config.pdk);
  const double f_block_max = f_block_min + kf * dc_area_k(config.pdk) / 2.0 +
                             kf * (kf - 1.0) * cr_area_k(config.pdk) / 2.0;
  BlockBounds bounds;
  bounds.b_max = static_cast<int>(std::ceil(config.f_max / f_block_min));
  bounds.b_min = static_cast<int>(std::floor(config.f_min / f_block_max));
  return bounds;
}

}  // namespace adept::core
