#include "core/dc_binarize.h"

#include <algorithm>
#include <cmath>

namespace adept::core {

using ag::Tensor;

namespace {
const float kSqrt2Over2 = static_cast<float>(std::sqrt(2.0) / 2.0);
const float kSteScale = static_cast<float>((2.0 - std::sqrt(2.0)) / 4.0);
}  // namespace

float dc_present_t() { return kSqrt2Over2; }
float dc_absent_t() { return 1.0f; }

Tensor dc_quantize(const Tensor& t_latent) {
  const auto& td = t_latent.data();
  std::vector<float> out(td.size());
  for (std::size_t i = 0; i < td.size(); ++i) {
    out[i] = td[i] < 0.0f ? kSqrt2Over2 : 1.0f;
  }
  return ag::make_op(std::move(out), t_latent.shape(), {t_latent},
                     [t_latent](ag::TensorImpl& o) {
                       if (!t_latent.requires_grad()) return;
                       auto& gt = const_cast<Tensor&>(t_latent).grad();
                       for (std::size_t i = 0; i < o.grad.size(); ++i) {
                         const float g = o.grad[i] * kSteScale;
                         gt[i] += std::clamp(g, -1.0f, 1.0f);
                       }
                     });
}

Tensor dc_count_expr(const Tensor& t_quantized) {
  const float a = static_cast<float>(2.0 / (std::sqrt(2.0) - 2.0));
  const float b = static_cast<float>(2.0 / (2.0 - std::sqrt(2.0)));
  // per-slot: a * Q + b  (1 when Q = sqrt2/2, 0 when Q = 1)
  return ag::sum(ag::add_scalar(ag::mul_scalar(t_quantized, a), b));
}

std::int64_t dc_count_hard(const Tensor& t_latent) {
  std::int64_t n = 0;
  for (float v : t_latent.data()) n += v < 0.0f ? 1 : 0;
  return n;
}

}  // namespace adept::core
