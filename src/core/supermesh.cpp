#include "core/supermesh.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/version.h"
#include "core/dc_binarize.h"
#include "core/reparam.h"

namespace adept::core {

using ag::CxTensor;
using ag::Tensor;
using photonics::BlockSpec;
using photonics::Permutation;
using photonics::PtcTopology;

SuperMeshConfig SuperMeshConfig::from_bounds(int k, const FootprintConfig& footprint,
                                             int max_super_blocks_per_unitary) {
  const BlockBounds bounds = analytical_block_bounds(k, footprint);
  SuperMeshConfig config;
  config.k = k;
  config.super_blocks_per_unitary =
      std::clamp(bounds.b_max / 2, 1, max_super_blocks_per_unitary);
  config.always_on_per_unitary =
      std::clamp(bounds.b_min / 2, 0, config.super_blocks_per_unitary);
  return config;
}

SuperMesh::SuperMesh(const SuperMeshConfig& config, adept::Rng& rng)
    : config_(config) {
  if (config_.k <= 0 || config_.k % 2 != 0) {
    throw std::invalid_argument("SuperMesh: K must be positive and even");
  }
  if (config_.super_blocks_per_unitary <= 0) {
    throw std::invalid_argument("SuperMesh: need at least one super block");
  }
  u_ = make_unitary(rng);
  v_ = make_unitary(rng);
}

SuperMesh::UnitaryParams SuperMesh::make_unitary(adept::Rng& rng) const {
  UnitaryParams p;
  for (int b = 0; b < config_.super_blocks_per_unitary; ++b) {
    p.theta.push_back(Tensor::full({2}, static_cast<float>(config_.theta_init),
                                   /*requires_grad=*/true));
    const std::int64_t slots = photonics::dc_slots(config_.k, block_parity(b));
    std::vector<float> t_init(static_cast<std::size_t>(slots));
    for (auto& t : t_init) {
      t = static_cast<float>(rng.uniform(-config_.t_init_range, config_.t_init_range));
    }
    p.t_latent.push_back(ag::make_tensor(std::move(t_init), {slots}, true));
    p.p_raw.push_back(smoothed_identity_init(config_.k, /*requires_grad=*/true));
  }
  return p;
}

std::vector<Tensor> SuperMesh::arch_params() {
  std::vector<Tensor> out;
  for (auto* p : {&u_, &v_}) {
    for (auto& t : p->theta) out.push_back(t);
  }
  return out;
}

std::vector<Tensor> SuperMesh::topology_weights() {
  std::vector<Tensor> out;
  for (auto* p : {&u_, &v_}) {
    for (auto& t : p->t_latent) out.push_back(t);
    if (!perms_frozen_) {
      for (auto& t : p->p_raw) out.push_back(t);
    }
  }
  return out;
}

SuperMesh::StepState SuperMesh::make_step(const UnitaryParams& p, double tau,
                                          adept::Rng& rng, bool stochastic) const {
  StepState s;
  for (int b = 0; b < config_.super_blocks_per_unitary; ++b) {
    if (block_always_on(b)) {
      s.skip.push_back(Tensor::scalar(0.0f));
      s.select.push_back(Tensor::scalar(1.0f));
    } else {
      // Gumbel-Softmax over {skip, select} (Eq. 7).
      Tensor logits = ag::reshape(p.theta[static_cast<std::size_t>(b)], {1, 2});
      if (stochastic) {
        std::vector<float> g = {static_cast<float>(rng.gumbel()),
                                static_cast<float>(rng.gumbel())};
        logits = ag::add(logits, ag::make_tensor(std::move(g), {1, 2}, false));
      }
      Tensor m = ag::softmax_rows(ag::mul_scalar(logits, static_cast<float>(1.0 / tau)));
      s.skip.push_back(ag::index(m, 0));
      s.select.push_back(ag::index(m, 1));
    }
    // Reparametrized permutation (constant pass-through once frozen).
    const Tensor& raw = p.p_raw[static_cast<std::size_t>(b)];
    s.p_tilde.push_back(perms_frozen_ ? raw
                                      : reparametrize_permutation(raw, config_.proj_eps));
    // Quantized coupler column.
    Tensor tq = dc_quantize(p.t_latent[static_cast<std::size_t>(b)]);
    s.t_quantized.push_back(tq);
    s.coupler_mat.push_back(ag::coupler_column(tq, config_.k, block_parity(b)));
  }
  return s;
}

void SuperMesh::begin_step(double tau, adept::Rng& rng, bool stochastic) {
  step_u_ = make_step(u_, tau, rng, stochastic);
  step_v_ = make_step(v_, tau, rng, stochastic);
  step_ready_ = true;
  // Parameters move once per optimization step (between begin_step calls),
  // so the hard footprint counts cached for the previous step are stale now,
  // and so is any materialized weight built from the old step expressions.
  invalidate_footprint_cache();
  adept::bump_param_version();
}

CxTensor SuperMesh::tile_unitary(Side side, const std::vector<Tensor>& phases) const {
  ag::check(step_ready_, "tile_unitary: call begin_step first");
  const StepState& s = step(side);
  const int nb = config_.super_blocks_per_unitary;
  ag::check(static_cast<int>(phases.size()) == nb,
            "tile_unitary: need one phase vector per block");
  const std::int64_t k = config_.k;
  CxTensor acc = CxTensor::eye(k);
  for (int b = 0; b < nb; ++b) {
    // Fused block transfer P~ * T * R(Phi) (Eq. 2/6): one tape node, phase
    // column applied in the gemm epilogue.
    CxTensor block = ag::block_transfer(s.p_tilde[static_cast<std::size_t>(b)],
                                        s.coupler_mat[static_cast<std::size_t>(b)],
                                        phases[static_cast<std::size_t>(b)]);
    // m_{b,1} * I + m_{b,2} * block (Eq. 6), fused — no materialized
    // identity or scaled re/im intermediates.
    CxTensor mixed =
        block_always_on(b)
            ? block
            : ag::cmix_identity(s.skip[static_cast<std::size_t>(b)],
                                s.select[static_cast<std::size_t>(b)], block);
    acc = ag::cmatmul(mixed, acc);
  }
  if (config_.normalize_unitaries && !perms_frozen_) {
    // Approximate-unitary statistics stabilization (Sec. 3.3.2).
    acc = side == Side::u ? ag::row_normalize(acc) : ag::col_normalize(acc);
  }
  return acc;
}

CxTensor SuperMesh::tile_unitary_batched(
    Side side, const std::vector<Tensor>& phase_stacks) const {
  ag::check(step_ready_, "tile_unitary_batched: call begin_step first");
  const StepState& s = step(side);
  const int nb = config_.super_blocks_per_unitary;
  ag::check(static_cast<int>(phase_stacks.size()) == nb,
            "tile_unitary_batched: need one [T,K] phase stack per block");
  const std::int64_t k = config_.k;
  ag::check(!phase_stacks.empty() && phase_stacks[0].ndim() == 2 &&
                phase_stacks[0].dim(1) == k,
            "tile_unitary_batched: phase stacks must be [T,K]");
  const std::int64_t tiles = phase_stacks[0].dim(0);
  // The chain seeds from ONE shared identity (bcmatmul broadcasts a 2-D
  // right operand), so even the first product runs the same accumulation as
  // the per-tile cmatmul-with-eye and stays bit-exact against it.
  CxTensor acc = CxTensor::eye(k);
  for (int b = 0; b < nb; ++b) {
    CxTensor block =
        ag::bblock_transfer(s.p_tilde[static_cast<std::size_t>(b)],
                            s.coupler_mat[static_cast<std::size_t>(b)],
                            phase_stacks[static_cast<std::size_t>(b)]);
    ag::check(block.dim(0) == tiles,
              "tile_unitary_batched: phase stacks disagree on tile count");
    CxTensor mixed =
        block_always_on(b)
            ? block
            : ag::bcmix_identity(s.skip[static_cast<std::size_t>(b)],
                                 s.select[static_cast<std::size_t>(b)], block);
    acc = ag::bcmatmul(mixed, acc);
  }
  if (config_.normalize_unitaries && !perms_frozen_) {
    acc = side == Side::u ? ag::brow_normalize(acc) : ag::bcol_normalize(acc);
  }
  return acc;
}

std::vector<Tensor> SuperMesh::all_relaxed_perms() const {
  ag::check(step_ready_, "all_relaxed_perms: call begin_step first");
  std::vector<Tensor> out;
  for (const auto* s : {&step_u_, &step_v_}) {
    for (const auto& p : s->p_tilde) out.push_back(p);
  }
  return out;
}

double SuperMesh::select_probability(Side side, int b) const {
  if (block_always_on(b)) return 1.0;
  const auto& theta = params(side).theta[static_cast<std::size_t>(b)].data();
  const double e0 = std::exp(static_cast<double>(theta[0]));
  const double e1 = std::exp(static_cast<double>(theta[1]));
  return e1 / (e0 + e1);
}

Tensor SuperMesh::footprint_penalty_expr(const FootprintConfig& config) const {
  ag::check(step_ready_, "footprint_penalty_expr: call begin_step first");
  Tensor expected_proxy = Tensor::scalar(0.0f);
  for (Side side : {Side::u, Side::v}) {
    const StepState& s = step(side);
    for (int b = 0; b < config_.super_blocks_per_unitary; ++b) {
      Tensor f_block =
          block_footprint_proxy(config_.k, s.t_quantized[static_cast<std::size_t>(b)],
                                s.p_tilde[static_cast<std::size_t>(b)], config);
      expected_proxy = ag::add(
          expected_proxy, ag::mul(s.select[static_cast<std::size_t>(b)], f_block));
    }
  }
  return footprint_penalty(expected_proxy, expected_footprint(config.pdk), config);
}

void SuperMesh::invalidate_footprint_cache() const {
  for (auto& side : block_counts_) {
    for (auto& c : side) c.valid = false;
  }
}

const SuperMesh::BlockCounts& SuperMesh::cached_block_counts(Side side, int b,
                                                             adept::Rng& rng) const {
  auto& cache = block_counts_[side == Side::u ? 0 : 1];
  if (cache.empty()) {
    cache.resize(static_cast<std::size_t>(config_.super_blocks_per_unitary));
  }
  BlockCounts& entry = cache[static_cast<std::size_t>(b)];
  if (!entry.valid) {
    const auto& p = params(side);
    entry.dc = static_cast<double>(
        dc_count_hard(p.t_latent[static_cast<std::size_t>(b)]));
    // The expensive part: reconstructing + SPL-legalizing the permutation to
    // count crossings. Cached until the next parameter step.
    const Permutation perm = block_permutation(side, b, rng);
    entry.cr = static_cast<double>(photonics::crossing_count(perm));
    entry.valid = true;
  }
  return entry;
}

double SuperMesh::hard_block_footprint(Side side, int b, const photonics::Pdk& pdk,
                                       adept::Rng& rng) const {
  const BlockCounts& counts = cached_block_counts(side, b, rng);
  return static_cast<double>(config_.k) * ps_area_k(pdk) +
         counts.dc * dc_area_k(pdk) + counts.cr * cr_area_k(pdk);
}

double SuperMesh::expected_footprint(const photonics::Pdk& pdk) const {
  // Noise-free expectation over block selection; hard device counts.
  adept::Rng rng(0x5eed);  // only consulted when a perm needs legalization
  double total = 0.0;
  for (Side side : {Side::u, Side::v}) {
    for (int b = 0; b < config_.super_blocks_per_unitary; ++b) {
      total += select_probability(side, b) * hard_block_footprint(side, b, pdk, rng);
    }
  }
  return total;
}

Permutation SuperMesh::block_permutation(Side side, int b, adept::Rng& rng) const {
  const Tensor& raw = params(side).p_raw[static_cast<std::size_t>(b)];
  const std::int64_t k = config_.k;
  photonics::RMat m(k, k);
  const auto& d = raw.data();
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      m.at(i, j) = d[static_cast<std::size_t>(i * k + j)];
    }
  }
  Permutation perm;
  if (perms_frozen_ && photonics::permutation_from_matrix(m, 1e-3, &perm)) {
    return perm;
  }
  // Pre-legalization estimate: reparametrize (without grad) then SPL.
  ag::NoGradGuard guard;
  Tensor p_tilde = reparametrize_permutation(raw, config_.proj_eps);
  return stochastic_permutation_legalization(p_tilde, rng);
}

void SuperMesh::legalize_permutations(adept::Rng& rng, const SplConfig& spl) {
  for (auto* p : {&u_, &v_}) {
    for (auto& raw : p->p_raw) {
      ag::NoGradGuard guard;
      Tensor p_tilde = reparametrize_permutation(raw, config_.proj_eps);
      const Permutation legal = stochastic_permutation_legalization(p_tilde, rng, spl);
      const std::int64_t k = config_.k;
      std::vector<float> hard(static_cast<std::size_t>(k * k), 0.0f);
      for (int i = 0; i < k; ++i) {
        hard[static_cast<std::size_t>(i * k + legal(i))] = 1.0f;
      }
      raw = ag::make_tensor(std::move(hard), {k, k}, /*requires_grad=*/false);
    }
  }
  perms_frozen_ = true;
  step_ready_ = false;  // cached expressions refer to the old parameters
  invalidate_footprint_cache();
  adept::bump_param_version();
}

PtcTopology SuperMesh::sample_topology(adept::Rng& rng, const photonics::Pdk& pdk,
                                       double f_min, double f_max, int max_tries,
                                       const std::string& name) const {
  auto build = [&](const std::vector<std::vector<bool>>& selected) {
    PtcTopology topo;
    topo.k = config_.k;
    topo.name = name;
    int side_idx = 0;
    for (Side side : {Side::u, Side::v}) {
      auto& blocks = side_idx == 0 ? topo.u_blocks : topo.v_blocks;
      for (int b = 0; b < config_.super_blocks_per_unitary; ++b) {
        if (!selected[static_cast<std::size_t>(side_idx)][static_cast<std::size_t>(b)]) {
          continue;
        }
        BlockSpec spec;
        spec.start = block_parity(b);
        const auto& t = params(side).t_latent[static_cast<std::size_t>(b)].data();
        spec.dc_mask.resize(t.size());
        for (std::size_t s = 0; s < t.size(); ++s) spec.dc_mask[s] = t[s] < 0.0f;
        spec.perm = block_permutation(side, b, rng);
        blocks.push_back(std::move(spec));
      }
      ++side_idx;
    }
    return topo;
  };

  PtcTopology best;
  double best_distance = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    std::vector<std::vector<bool>> selected(2);
    int side_idx = 0;
    for (Side side : {Side::u, Side::v}) {
      auto& sel = selected[static_cast<std::size_t>(side_idx)];
      sel.resize(static_cast<std::size_t>(config_.super_blocks_per_unitary));
      for (int b = 0; b < config_.super_blocks_per_unitary; ++b) {
        sel[static_cast<std::size_t>(b)] =
            block_always_on(b) || rng.bernoulli(select_probability(side, b));
      }
      ++side_idx;
    }
    PtcTopology topo = build(selected);
    if (topo.u_blocks.empty() || topo.v_blocks.empty()) continue;
    const double f = topo.footprint_um2(pdk) / 1000.0;
    if (f >= f_min && f <= f_max) return topo;
    const double distance = f < f_min ? f_min - f : f - f_max;
    if (distance < best_distance) {
      best_distance = distance;
      best = topo;
    }
  }
  if (best.u_blocks.empty()) {
    // Deterministic fallback: everything selected.
    std::vector<std::vector<bool>> all(
        2, std::vector<bool>(static_cast<std::size_t>(config_.super_blocks_per_unitary),
                             true));
    best = build(all);
  }
  return best;
}

}  // namespace adept::core
