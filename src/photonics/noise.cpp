#include "photonics/noise.h"

namespace adept::photonics {

MeshPhases NoiseModel::perturb(const MeshPhases& phases, adept::Rng& rng) const {
  MeshPhases out = phases;
  if (phase_sigma <= 0.0) return out;
  for (auto& block : out.per_block) {
    for (auto& phi : block) phi += rng.normal(0.0, phase_sigma);
  }
  return out;
}

double mean_matrix_error_under_noise(const PtcTopology& topo,
                                     const MeshPhases& u_phases,
                                     const MeshPhases& v_phases,
                                     const std::vector<double>& sigma_diag,
                                     double phase_sigma, int trials,
                                     adept::Rng& rng) {
  const CMat nominal = weight_transfer(topo, u_phases, v_phases, sigma_diag);
  const double base_norm = std::max(nominal.frobenius(), 1e-12);
  NoiseModel noise{phase_sigma};
  double acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    const MeshPhases u_noisy = noise.perturb(u_phases, rng);
    const MeshPhases v_noisy = noise.perturb(v_phases, rng);
    const CMat noisy = weight_transfer(topo, u_noisy, v_noisy, sigma_diag);
    double err = 0.0;
    for (std::size_t i = 0; i < noisy.data().size(); ++i) {
      err += std::norm(noisy.data()[i] - nominal.data()[i]);
    }
    acc += std::sqrt(err) / base_norm;
  }
  return acc / static_cast<double>(trials);
}

}  // namespace adept::photonics
