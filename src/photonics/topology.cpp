#include "photonics/topology.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "photonics/devices.h"

namespace adept::photonics {

std::int64_t BlockSpec::num_dc() const {
  std::int64_t n = 0;
  for (bool b : dc_mask) n += b ? 1 : 0;
  return n;
}

std::int64_t BlockSpec::num_cr() const { return crossing_count(perm); }

DeviceCounts PtcTopology::counts() const {
  DeviceCounts c;
  for (const auto* blocks : {&u_blocks, &v_blocks}) {
    for (const auto& b : *blocks) {
      c.ps += k;  // full PS column per block (paper Sec. 3.4)
      c.dc += b.num_dc();
      c.cr += b.num_cr();
      ++c.blocks;
    }
  }
  return c;
}

double PtcTopology::footprint_um2(const Pdk& pdk) const {
  const DeviceCounts c = counts();
  return static_cast<double>(c.ps) * pdk.ps_area_um2 +
         static_cast<double>(c.dc) * pdk.dc_area_um2 +
         static_cast<double>(c.cr) * pdk.cr_area_um2;
}

void PtcTopology::validate() const {
  if (k <= 0 || k % 2 != 0) {
    throw std::invalid_argument("PtcTopology: K must be positive and even");
  }
  for (const auto* blocks : {&u_blocks, &v_blocks}) {
    for (const auto& b : *blocks) {
      if (b.start != 0 && b.start != 1) {
        throw std::invalid_argument("PtcTopology: bad parity");
      }
      if (static_cast<std::int64_t>(b.dc_mask.size()) != dc_slots(k, b.start)) {
        throw std::invalid_argument("PtcTopology: bad dc_mask size");
      }
      if (b.perm.size() != k) {
        throw std::invalid_argument("PtcTopology: bad perm size");
      }
    }
  }
}

namespace {

void serialize_blocks(std::ostringstream& os, const std::vector<BlockSpec>& blocks) {
  os << blocks.size() << "\n";
  for (const auto& b : blocks) {
    os << b.start << " " << b.dc_mask.size() << " ";
    for (bool m : b.dc_mask) os << (m ? 1 : 0);
    os << " ";
    for (int i = 0; i < b.perm.size(); ++i) {
      if (i > 0) os << ",";
      os << b.perm(i);
    }
    os << "\n";
  }
}

// Stream offset usable in error messages even after a failed extraction.
std::string offset_str(std::istringstream& is) {
  const auto pos = is.tellg();
  return pos < 0 ? std::string("end of input") : "offset " + std::to_string(pos);
}

[[noreturn]] void fail_at(std::istringstream& is, const std::string& what) {
  throw std::invalid_argument("PtcTopology::deserialize: " + what + " (" +
                              offset_str(is) + ")");
}

// Extract one whitespace-delimited value or fail with side/block/field info.
template <typename T>
void read_field(std::istringstream& is, T& out, const std::string& what) {
  if (!(is >> out)) fail_at(is, "truncated input reading " + what);
}

std::vector<BlockSpec> deserialize_blocks(std::istringstream& is, int k,
                                          const char* side) {
  std::size_t n = 0;
  read_field(is, n, std::string(side) + " block count");
  // Bound the count against the characters actually left in the stream
  // before sizing the vector: a negative count wraps to SIZE_MAX on
  // unsigned extraction and must fail through the contextualized path, not
  // as std::length_error/bad_alloc. Every block needs several characters;
  // one-per-char is a safely generous ceiling.
  const auto pos = is.tellg();
  const std::size_t remaining =
      pos < 0 ? 0 : is.view().size() - static_cast<std::size_t>(pos);
  if (n > remaining) {
    fail_at(is, "implausible " + std::string(side) + " block count " +
                    std::to_string(n) + " (only " + std::to_string(remaining) +
                    " characters remain)");
  }
  std::vector<BlockSpec> blocks(n);
  for (std::size_t bi = 0; bi < n; ++bi) {
    auto& b = blocks[bi];
    const std::string where = std::string(side) + " block " + std::to_string(bi);
    std::size_t mask_size = 0;
    std::string mask_str, perm_str;
    read_field(is, b.start, where + " parity");
    read_field(is, mask_size, where + " mask size");
    read_field(is, mask_str, where + " dc mask");
    read_field(is, perm_str, where + " permutation");
    if (b.start != 0 && b.start != 1) {
      fail_at(is, "bad parity in " + where + ": " + std::to_string(b.start) +
                      " (must be 0 or 1)");
    }
    if (static_cast<std::int64_t>(mask_size) != dc_slots(k, b.start)) {
      fail_at(is, "K mismatch in " + where + ": mask has " +
                      std::to_string(mask_size) + " slots, K=" + std::to_string(k) +
                      " parity " + std::to_string(b.start) + " expects " +
                      std::to_string(dc_slots(k, b.start)));
    }
    if (mask_str.size() != mask_size) {
      fail_at(is, "bad mask in " + where + ": token \"" + mask_str + "\" has " +
                      std::to_string(mask_str.size()) + " slots, header says " +
                      std::to_string(mask_size));
    }
    b.dc_mask.resize(mask_size);
    for (std::size_t i = 0; i < mask_size; ++i) {
      if (mask_str[i] != '0' && mask_str[i] != '1') {
        fail_at(is, "bad mask in " + where + ": slot " + std::to_string(i) +
                        " of token \"" + mask_str + "\" is not 0/1");
      }
      b.dc_mask[i] = mask_str[i] == '1';
    }
    std::vector<int> map;
    std::stringstream ps(perm_str);
    std::string tok;
    while (std::getline(ps, tok, ',')) {
      try {
        std::size_t used = 0;
        const int v = std::stoi(tok, &used);
        if (used != tok.size()) throw std::invalid_argument(tok);
        map.push_back(v);
      } catch (const std::exception&) {
        fail_at(is, "bad perm in " + where + ": token \"" + tok +
                        "\" is not an integer");
      }
    }
    if (static_cast<int>(map.size()) != k) {
      fail_at(is, "bad perm in " + where + ": \"" + perm_str + "\" has " +
                      std::to_string(map.size()) + " entries, topology K is " +
                      std::to_string(k));
    }
    try {
      b.perm = Permutation(std::move(map));
    } catch (const std::exception& e) {
      fail_at(is, "bad perm in " + where + ": \"" + perm_str + "\": " + e.what());
    }
  }
  return blocks;
}

}  // namespace

std::string PtcTopology::serialize() const {
  std::ostringstream os;
  os << "ptc " << k << " " << (name.empty() ? "-" : name) << "\n";
  serialize_blocks(os, u_blocks);
  serialize_blocks(os, v_blocks);
  return os.str();
}

PtcTopology PtcTopology::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  PtcTopology topo;
  read_field(is, magic, "header magic");
  if (magic != "ptc") {
    fail_at(is, "bad magic: expected \"ptc\", got \"" + magic + "\"");
  }
  read_field(is, topo.k, "header K");
  read_field(is, topo.name, "header name");
  if (topo.name == "-") topo.name.clear();
  if (topo.k <= 0 || topo.k % 2 != 0) {
    fail_at(is, "bad header K " + std::to_string(topo.k) +
                    " (must be positive and even)");
  }
  topo.u_blocks = deserialize_blocks(is, topo.k, "U");
  topo.v_blocks = deserialize_blocks(is, topo.k, "V");
  topo.validate();
  return topo;
}

namespace {

constexpr std::uint32_t kTopologyBinaryTag = 0x31435450;  // "PTC1"

void serialize_blocks_binary(std::string& out, const std::vector<BlockSpec>& blocks) {
  binio::put_u32(out, static_cast<std::uint32_t>(blocks.size()));
  for (const auto& b : blocks) {
    binio::put_u8(out, static_cast<std::uint8_t>(b.start));
    binio::put_u32(out, static_cast<std::uint32_t>(b.dc_mask.size()));
    for (bool m : b.dc_mask) binio::put_u8(out, m ? 1 : 0);
    binio::put_u32(out, static_cast<std::uint32_t>(b.perm.size()));
    for (int i = 0; i < b.perm.size(); ++i) {
      binio::put_u32(out, static_cast<std::uint32_t>(b.perm(i)));
    }
  }
}

std::vector<BlockSpec> deserialize_blocks_binary(binio::Reader& r, const char* side) {
  const std::uint32_t n = r.u32("block count");
  // Plausibility bounds before sizing allocations from on-disk counts: a
  // corrupt count field must fail through the contextualized Reader path,
  // not as an uncontextualized bad_alloc. Every block needs >= 9 payload
  // bytes, every mask slot 1 byte, every perm entry 4 bytes.
  if (n > r.remaining() / 9) {
    r.fail("implausible " + std::string(side) + " block count " + std::to_string(n) +
           " (only " + std::to_string(r.remaining()) + " bytes remain)");
  }
  std::vector<BlockSpec> blocks(n);
  for (std::uint32_t bi = 0; bi < n; ++bi) {
    auto& b = blocks[bi];
    const std::string where = std::string(side) + " block " + std::to_string(bi);
    b.start = r.u8((where + " parity").c_str());
    const std::uint32_t mask_size = r.u32((where + " mask size").c_str());
    r.need(mask_size, (where + " dc mask").c_str());
    b.dc_mask.resize(mask_size);
    for (std::uint32_t i = 0; i < mask_size; ++i) {
      const std::uint8_t m = r.u8((where + " mask slot").c_str());
      if (m > 1) r.fail("bad mask slot in " + where + ": byte " + std::to_string(m));
      b.dc_mask[i] = m == 1;
    }
    const std::uint32_t perm_size = r.u32((where + " perm size").c_str());
    r.need(static_cast<std::size_t>(perm_size) * 4, (where + " permutation").c_str());
    std::vector<int> map(perm_size);
    for (auto& v : map) v = static_cast<int>(r.u32((where + " perm entry").c_str()));
    try {
      b.perm = Permutation(std::move(map));
    } catch (const std::exception& e) {
      r.fail("bad perm in " + where + ": " + e.what());
    }
  }
  return blocks;
}

}  // namespace

void PtcTopology::serialize_binary(std::string& out) const {
  binio::put_u32(out, kTopologyBinaryTag);
  binio::put_u32(out, static_cast<std::uint32_t>(k));
  binio::put_str(out, name);
  serialize_blocks_binary(out, u_blocks);
  serialize_blocks_binary(out, v_blocks);
}

PtcTopology PtcTopology::deserialize_binary(binio::Reader& r) {
  const std::uint32_t tag = r.u32("topology tag");
  if (tag != kTopologyBinaryTag) {
    r.fail("bad topology tag 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", tag);
      return std::string(buf);
    }());
  }
  PtcTopology topo;
  topo.k = static_cast<int>(r.u32("topology K"));
  topo.name = r.str("topology name");
  topo.u_blocks = deserialize_blocks_binary(r, "U");
  topo.v_blocks = deserialize_blocks_binary(r, "V");
  try {
    topo.validate();
  } catch (const std::exception& e) {
    r.fail(std::string("invalid topology: ") + e.what());
  }
  return topo;
}

int interleaved_parity(int block_index) { return block_index % 2 == 0 ? 0 : 1; }

std::int64_t dc_slots(int k, int start) { return (k - start) / 2; }

namespace {

// In-place u <- P * T * R(phi) * u without materializing any of the three
// factors: R is diagonal (row scaling), T is a column of 2x2 coupler cells
// (sparse row pairs), and P is a hard permutation (row gather through
// `scratch`). O(K^2) per block instead of two dense O(K^3) products.
void apply_block_inplace(const BlockSpec& block, int k,
                         const std::vector<double>& phases, CMat& u,
                         CMat& scratch) {
  if (static_cast<int>(phases.size()) != k) {
    throw std::invalid_argument("block_transfer: need K phases");
  }
  // Same operand validation the dense coupler_column_matrix used to enforce
  // before the sparse rewrite: invalid specs must throw, not write OOB.
  if (block.start != 0 && block.start != 1) {
    throw std::invalid_argument("block_transfer: start must be 0/1");
  }
  if (block.start + 2 * static_cast<std::int64_t>(block.dc_mask.size()) > k) {
    throw std::invalid_argument("block_transfer: too many coupler slots");
  }
  const std::int64_t cols = u.cols();
  auto* ud = u.data().data();
  // R(phi): row i scales by exp(-i*phi_i).
  for (int i = 0; i < k; ++i) {
    const cplx e = phase_shifter(phases[static_cast<std::size_t>(i)]);
    cplx* row = ud + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) row[j] *= e;
  }
  // T: each active slot mixes row pair (a, a+1); bar slots and uncovered
  // rows pass through.
  const double t = balanced_coupler_t();
  const cplx jcross(0.0, std::sqrt(std::max(0.0, 1.0 - t * t)));
  for (std::size_t s = 0; s < block.dc_mask.size(); ++s) {
    if (!block.dc_mask[s]) continue;
    const std::int64_t a = block.start + 2 * static_cast<std::int64_t>(s);
    cplx* ra = ud + a * cols;
    cplx* rb = ud + (a + 1) * cols;
    for (std::int64_t j = 0; j < cols; ++j) {
      const cplx va = ra[j], vb = rb[j];
      ra[j] = t * va + jcross * vb;
      rb[j] = jcross * va + t * vb;
    }
  }
  // P: row i of the result is row perm(i) of the input.
  auto* sd = scratch.data().data();
  for (int i = 0; i < k; ++i) {
    const cplx* src = ud + block.perm(i) * cols;
    cplx* dst = sd + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) dst[j] = src[j];
  }
  std::swap(u, scratch);
}

}  // namespace

CMat block_transfer(const BlockSpec& block, int k, const std::vector<double>& phases) {
  CMat u = CMat::identity(k);
  CMat scratch(k, k);
  apply_block_inplace(block, k, phases, u, scratch);
  return u;
}

CMat mesh_transfer(const std::vector<BlockSpec>& blocks, int k, const MeshPhases& phases) {
  if (phases.per_block.size() != blocks.size()) {
    throw std::invalid_argument("mesh_transfer: phase/block count mismatch");
  }
  CMat u = CMat::identity(k);
  CMat scratch(k, k);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    apply_block_inplace(blocks[b], k, phases.per_block[b], u, scratch);
  }
  return u;
}

CMat weight_transfer(const PtcTopology& topo, const MeshPhases& u_phases,
                     const MeshPhases& v_phases, const std::vector<double>& sigma) {
  if (static_cast<int>(sigma.size()) != topo.k) {
    throw std::invalid_argument("weight_transfer: sigma size");
  }
  const CMat u = mesh_transfer(topo.u_blocks, topo.k, u_phases);
  const CMat v = mesh_transfer(topo.v_blocks, topo.k, v_phases);
  CMat s(topo.k, topo.k);
  for (int i = 0; i < topo.k; ++i) s.at(i, i) = sigma[static_cast<std::size_t>(i)];
  return u * s * v;
}

}  // namespace adept::photonics
