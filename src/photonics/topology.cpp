#include "photonics/topology.h"

#include <sstream>
#include <stdexcept>

#include "photonics/devices.h"

namespace adept::photonics {

std::int64_t BlockSpec::num_dc() const {
  std::int64_t n = 0;
  for (bool b : dc_mask) n += b ? 1 : 0;
  return n;
}

std::int64_t BlockSpec::num_cr() const { return crossing_count(perm); }

DeviceCounts PtcTopology::counts() const {
  DeviceCounts c;
  for (const auto* blocks : {&u_blocks, &v_blocks}) {
    for (const auto& b : *blocks) {
      c.ps += k;  // full PS column per block (paper Sec. 3.4)
      c.dc += b.num_dc();
      c.cr += b.num_cr();
      ++c.blocks;
    }
  }
  return c;
}

double PtcTopology::footprint_um2(const Pdk& pdk) const {
  const DeviceCounts c = counts();
  return static_cast<double>(c.ps) * pdk.ps_area_um2 +
         static_cast<double>(c.dc) * pdk.dc_area_um2 +
         static_cast<double>(c.cr) * pdk.cr_area_um2;
}

void PtcTopology::validate() const {
  if (k <= 0 || k % 2 != 0) {
    throw std::invalid_argument("PtcTopology: K must be positive and even");
  }
  for (const auto* blocks : {&u_blocks, &v_blocks}) {
    for (const auto& b : *blocks) {
      if (b.start != 0 && b.start != 1) {
        throw std::invalid_argument("PtcTopology: bad parity");
      }
      if (static_cast<std::int64_t>(b.dc_mask.size()) != dc_slots(k, b.start)) {
        throw std::invalid_argument("PtcTopology: bad dc_mask size");
      }
      if (b.perm.size() != k) {
        throw std::invalid_argument("PtcTopology: bad perm size");
      }
    }
  }
}

namespace {

void serialize_blocks(std::ostringstream& os, const std::vector<BlockSpec>& blocks) {
  os << blocks.size() << "\n";
  for (const auto& b : blocks) {
    os << b.start << " " << b.dc_mask.size() << " ";
    for (bool m : b.dc_mask) os << (m ? 1 : 0);
    os << " ";
    for (int i = 0; i < b.perm.size(); ++i) {
      if (i > 0) os << ",";
      os << b.perm(i);
    }
    os << "\n";
  }
}

std::vector<BlockSpec> deserialize_blocks(std::istringstream& is, int k) {
  std::size_t n = 0;
  is >> n;
  std::vector<BlockSpec> blocks(n);
  for (auto& b : blocks) {
    std::size_t mask_size = 0;
    std::string mask_str, perm_str;
    is >> b.start >> mask_size >> mask_str >> perm_str;
    if (mask_str.size() != mask_size) {
      throw std::invalid_argument("PtcTopology::deserialize: bad mask");
    }
    b.dc_mask.resize(mask_size);
    for (std::size_t i = 0; i < mask_size; ++i) b.dc_mask[i] = mask_str[i] == '1';
    std::vector<int> map;
    std::stringstream ps(perm_str);
    std::string tok;
    while (std::getline(ps, tok, ',')) map.push_back(std::stoi(tok));
    if (static_cast<int>(map.size()) != k) {
      throw std::invalid_argument("PtcTopology::deserialize: bad perm");
    }
    b.perm = Permutation(std::move(map));
  }
  return blocks;
}

}  // namespace

std::string PtcTopology::serialize() const {
  std::ostringstream os;
  os << "ptc " << k << " " << (name.empty() ? "-" : name) << "\n";
  serialize_blocks(os, u_blocks);
  serialize_blocks(os, v_blocks);
  return os.str();
}

PtcTopology PtcTopology::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  PtcTopology topo;
  is >> magic >> topo.k >> topo.name;
  if (magic != "ptc") throw std::invalid_argument("PtcTopology::deserialize: bad magic");
  if (topo.name == "-") topo.name.clear();
  topo.u_blocks = deserialize_blocks(is, topo.k);
  topo.v_blocks = deserialize_blocks(is, topo.k);
  topo.validate();
  return topo;
}

int interleaved_parity(int block_index) { return block_index % 2 == 0 ? 0 : 1; }

std::int64_t dc_slots(int k, int start) { return (k - start) / 2; }

CMat block_transfer(const BlockSpec& block, int k, const std::vector<double>& phases) {
  if (static_cast<int>(phases.size()) != k) {
    throw std::invalid_argument("block_transfer: need K phases");
  }
  const CMat r = phase_column_matrix(phases);
  const std::vector<double> t(block.dc_mask.size(), balanced_coupler_t());
  const CMat tmat = coupler_column_matrix(k, block.start, block.dc_mask, t);
  const CMat p = block.perm.to_cmatrix();
  return p * tmat * r;
}

CMat mesh_transfer(const std::vector<BlockSpec>& blocks, int k, const MeshPhases& phases) {
  if (phases.per_block.size() != blocks.size()) {
    throw std::invalid_argument("mesh_transfer: phase/block count mismatch");
  }
  CMat u = CMat::identity(k);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    u = block_transfer(blocks[b], k, phases.per_block[b]) * u;
  }
  return u;
}

CMat weight_transfer(const PtcTopology& topo, const MeshPhases& u_phases,
                     const MeshPhases& v_phases, const std::vector<double>& sigma) {
  if (static_cast<int>(sigma.size()) != topo.k) {
    throw std::invalid_argument("weight_transfer: sigma size");
  }
  const CMat u = mesh_transfer(topo.u_blocks, topo.k, u_phases);
  const CMat v = mesh_transfer(topo.v_blocks, topo.k, v_phases);
  CMat s(topo.k, topo.k);
  for (int i = 0; i < topo.k; ++i) s.at(i, i) = sigma[static_cast<std::size_t>(i)];
  return u * s * v;
}

}  // namespace adept::photonics
