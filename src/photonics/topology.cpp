#include "photonics/topology.h"

#include <sstream>
#include <stdexcept>

#include "photonics/devices.h"

namespace adept::photonics {

std::int64_t BlockSpec::num_dc() const {
  std::int64_t n = 0;
  for (bool b : dc_mask) n += b ? 1 : 0;
  return n;
}

std::int64_t BlockSpec::num_cr() const { return crossing_count(perm); }

DeviceCounts PtcTopology::counts() const {
  DeviceCounts c;
  for (const auto* blocks : {&u_blocks, &v_blocks}) {
    for (const auto& b : *blocks) {
      c.ps += k;  // full PS column per block (paper Sec. 3.4)
      c.dc += b.num_dc();
      c.cr += b.num_cr();
      ++c.blocks;
    }
  }
  return c;
}

double PtcTopology::footprint_um2(const Pdk& pdk) const {
  const DeviceCounts c = counts();
  return static_cast<double>(c.ps) * pdk.ps_area_um2 +
         static_cast<double>(c.dc) * pdk.dc_area_um2 +
         static_cast<double>(c.cr) * pdk.cr_area_um2;
}

void PtcTopology::validate() const {
  if (k <= 0 || k % 2 != 0) {
    throw std::invalid_argument("PtcTopology: K must be positive and even");
  }
  for (const auto* blocks : {&u_blocks, &v_blocks}) {
    for (const auto& b : *blocks) {
      if (b.start != 0 && b.start != 1) {
        throw std::invalid_argument("PtcTopology: bad parity");
      }
      if (static_cast<std::int64_t>(b.dc_mask.size()) != dc_slots(k, b.start)) {
        throw std::invalid_argument("PtcTopology: bad dc_mask size");
      }
      if (b.perm.size() != k) {
        throw std::invalid_argument("PtcTopology: bad perm size");
      }
    }
  }
}

namespace {

void serialize_blocks(std::ostringstream& os, const std::vector<BlockSpec>& blocks) {
  os << blocks.size() << "\n";
  for (const auto& b : blocks) {
    os << b.start << " " << b.dc_mask.size() << " ";
    for (bool m : b.dc_mask) os << (m ? 1 : 0);
    os << " ";
    for (int i = 0; i < b.perm.size(); ++i) {
      if (i > 0) os << ",";
      os << b.perm(i);
    }
    os << "\n";
  }
}

std::vector<BlockSpec> deserialize_blocks(std::istringstream& is, int k) {
  std::size_t n = 0;
  is >> n;
  std::vector<BlockSpec> blocks(n);
  for (auto& b : blocks) {
    std::size_t mask_size = 0;
    std::string mask_str, perm_str;
    is >> b.start >> mask_size >> mask_str >> perm_str;
    if (mask_str.size() != mask_size) {
      throw std::invalid_argument("PtcTopology::deserialize: bad mask");
    }
    b.dc_mask.resize(mask_size);
    for (std::size_t i = 0; i < mask_size; ++i) b.dc_mask[i] = mask_str[i] == '1';
    std::vector<int> map;
    std::stringstream ps(perm_str);
    std::string tok;
    while (std::getline(ps, tok, ',')) map.push_back(std::stoi(tok));
    if (static_cast<int>(map.size()) != k) {
      throw std::invalid_argument("PtcTopology::deserialize: bad perm");
    }
    b.perm = Permutation(std::move(map));
  }
  return blocks;
}

}  // namespace

std::string PtcTopology::serialize() const {
  std::ostringstream os;
  os << "ptc " << k << " " << (name.empty() ? "-" : name) << "\n";
  serialize_blocks(os, u_blocks);
  serialize_blocks(os, v_blocks);
  return os.str();
}

PtcTopology PtcTopology::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  PtcTopology topo;
  is >> magic >> topo.k >> topo.name;
  if (magic != "ptc") throw std::invalid_argument("PtcTopology::deserialize: bad magic");
  if (topo.name == "-") topo.name.clear();
  topo.u_blocks = deserialize_blocks(is, topo.k);
  topo.v_blocks = deserialize_blocks(is, topo.k);
  topo.validate();
  return topo;
}

int interleaved_parity(int block_index) { return block_index % 2 == 0 ? 0 : 1; }

std::int64_t dc_slots(int k, int start) { return (k - start) / 2; }

namespace {

// In-place u <- P * T * R(phi) * u without materializing any of the three
// factors: R is diagonal (row scaling), T is a column of 2x2 coupler cells
// (sparse row pairs), and P is a hard permutation (row gather through
// `scratch`). O(K^2) per block instead of two dense O(K^3) products.
void apply_block_inplace(const BlockSpec& block, int k,
                         const std::vector<double>& phases, CMat& u,
                         CMat& scratch) {
  if (static_cast<int>(phases.size()) != k) {
    throw std::invalid_argument("block_transfer: need K phases");
  }
  // Same operand validation the dense coupler_column_matrix used to enforce
  // before the sparse rewrite: invalid specs must throw, not write OOB.
  if (block.start != 0 && block.start != 1) {
    throw std::invalid_argument("block_transfer: start must be 0/1");
  }
  if (block.start + 2 * static_cast<std::int64_t>(block.dc_mask.size()) > k) {
    throw std::invalid_argument("block_transfer: too many coupler slots");
  }
  const std::int64_t cols = u.cols();
  auto* ud = u.data().data();
  // R(phi): row i scales by exp(-i*phi_i).
  for (int i = 0; i < k; ++i) {
    const cplx e = phase_shifter(phases[static_cast<std::size_t>(i)]);
    cplx* row = ud + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) row[j] *= e;
  }
  // T: each active slot mixes row pair (a, a+1); bar slots and uncovered
  // rows pass through.
  const double t = balanced_coupler_t();
  const cplx jcross(0.0, std::sqrt(std::max(0.0, 1.0 - t * t)));
  for (std::size_t s = 0; s < block.dc_mask.size(); ++s) {
    if (!block.dc_mask[s]) continue;
    const std::int64_t a = block.start + 2 * static_cast<std::int64_t>(s);
    cplx* ra = ud + a * cols;
    cplx* rb = ud + (a + 1) * cols;
    for (std::int64_t j = 0; j < cols; ++j) {
      const cplx va = ra[j], vb = rb[j];
      ra[j] = t * va + jcross * vb;
      rb[j] = jcross * va + t * vb;
    }
  }
  // P: row i of the result is row perm(i) of the input.
  auto* sd = scratch.data().data();
  for (int i = 0; i < k; ++i) {
    const cplx* src = ud + block.perm(i) * cols;
    cplx* dst = sd + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) dst[j] = src[j];
  }
  std::swap(u, scratch);
}

}  // namespace

CMat block_transfer(const BlockSpec& block, int k, const std::vector<double>& phases) {
  CMat u = CMat::identity(k);
  CMat scratch(k, k);
  apply_block_inplace(block, k, phases, u, scratch);
  return u;
}

CMat mesh_transfer(const std::vector<BlockSpec>& blocks, int k, const MeshPhases& phases) {
  if (phases.per_block.size() != blocks.size()) {
    throw std::invalid_argument("mesh_transfer: phase/block count mismatch");
  }
  CMat u = CMat::identity(k);
  CMat scratch(k, k);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    apply_block_inplace(blocks[b], k, phases.per_block[b], u, scratch);
  }
  return u;
}

CMat weight_transfer(const PtcTopology& topo, const MeshPhases& u_phases,
                     const MeshPhases& v_phases, const std::vector<double>& sigma) {
  if (static_cast<int>(sigma.size()) != topo.k) {
    throw std::invalid_argument("weight_transfer: sigma size");
  }
  const CMat u = mesh_transfer(topo.u_blocks, topo.k, u_phases);
  const CMat v = mesh_transfer(topo.v_blocks, topo.k, v_phases);
  CMat s(topo.k, topo.k);
  for (int i = 0; i < topo.k; ++i) s.at(i, i) = sigma[static_cast<std::size_t>(i)];
  return u * s * v;
}

}  // namespace adept::photonics
