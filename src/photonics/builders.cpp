#include "photonics/builders.h"

#include <stdexcept>

namespace adept::photonics {

namespace {

bool is_power_of_two(int k) { return k > 0 && (k & (k - 1)) == 0; }

std::vector<BlockSpec> clements_unitary(int k) {
  std::vector<BlockSpec> blocks;
  blocks.reserve(static_cast<std::size_t>(2 * k));
  for (int col = 0; col < k; ++col) {
    const int parity = col % 2;
    const std::int64_t slots = dc_slots(k, parity);
    // One MZI = PS + DC + PS + DC; expressed as two PS/DC blocks.
    for (int half = 0; half < 2; ++half) {
      BlockSpec b;
      b.start = parity;
      b.dc_mask.assign(static_cast<std::size_t>(slots), true);
      b.perm = Permutation::identity(k);
      blocks.push_back(std::move(b));
    }
  }
  return blocks;
}

// Riffle permutation within groups of size 2s: positions (2m, 2m+1) in each
// group pull from sources (m, m+s). Realizes the inter-stage butterfly
// routing at the minimum crossing cost s(s-1)/2 per group.
Permutation riffle(int k, int s) {
  std::vector<int> map(static_cast<std::size_t>(k));
  const int group = 2 * s;
  for (int g = 0; g < k; g += group) {
    for (int m = 0; m < s; ++m) {
      map[static_cast<std::size_t>(g + 2 * m)] = g + m;
      map[static_cast<std::size_t>(g + 2 * m + 1)] = g + m + s;
    }
  }
  return Permutation(std::move(map));
}

std::vector<BlockSpec> butterfly_unitary(int k) {
  int stages = 0;
  for (int s = 1; s < k; s *= 2) ++stages;
  std::vector<BlockSpec> blocks;
  blocks.reserve(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    BlockSpec b;
    b.start = 0;
    b.dc_mask.assign(static_cast<std::size_t>(k / 2), true);
    // Route the next stage's stride-2^(i+1) partners adjacent; the final
    // stage needs no routing (outputs stay in permuted order).
    b.perm = (i + 1 < stages) ? riffle(k, 1 << (i + 1)) : Permutation::identity(k);
    blocks.push_back(std::move(b));
  }
  return blocks;
}

}  // namespace

PtcTopology clements_mzi(int k) {
  if (k <= 0 || k % 2 != 0) throw std::invalid_argument("clements_mzi: even K > 0");
  PtcTopology topo;
  topo.k = k;
  topo.name = "MZI";
  topo.u_blocks = clements_unitary(k);
  topo.v_blocks = clements_unitary(k);
  topo.validate();
  return topo;
}

PtcTopology butterfly(int k) {
  if (!is_power_of_two(k) || k < 2) {
    throw std::invalid_argument("butterfly: K must be a power of two >= 2");
  }
  PtcTopology topo;
  topo.k = k;
  topo.name = "FFT";
  topo.u_blocks = butterfly_unitary(k);
  topo.v_blocks = butterfly_unitary(k);
  topo.validate();
  return topo;
}

PtcTopology random_topology(int k, int blocks_per_unitary, adept::Rng& rng,
                            double dc_density) {
  if (k <= 0 || k % 2 != 0) throw std::invalid_argument("random_topology: even K > 0");
  auto make_blocks = [&]() {
    std::vector<BlockSpec> blocks;
    for (int b = 0; b < blocks_per_unitary; ++b) {
      BlockSpec spec;
      spec.start = interleaved_parity(b);
      const std::int64_t slots = dc_slots(k, spec.start);
      spec.dc_mask.resize(static_cast<std::size_t>(slots));
      for (std::int64_t s = 0; s < slots; ++s) {
        spec.dc_mask[static_cast<std::size_t>(s)] = rng.bernoulli(dc_density);
      }
      spec.perm = Permutation::random(k, rng);
      blocks.push_back(std::move(spec));
    }
    return blocks;
  };
  PtcTopology topo;
  topo.k = k;
  topo.name = "random";
  topo.u_blocks = make_blocks();
  topo.v_blocks = make_blocks();
  topo.validate();
  return topo;
}

std::int64_t butterfly_crossings_per_unitary(int k) {
  // Sum over inter-stage riffles: groups of size 2s cost s(s-1)/2 each.
  std::int64_t total = 0;
  for (int s = 2; s < k; s *= 2) {
    const std::int64_t groups = k / (2 * s);
    total += groups * (static_cast<std::int64_t>(s) * (s - 1) / 2);
  }
  return total;
}

}  // namespace adept::photonics
