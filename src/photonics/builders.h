// Constructors for hand-designed baseline PTC topologies, expressed in the
// same block IR as searched designs so all downstream accounting is shared.
//
// Device-count identities (verified against the paper's Tables 1/2):
//   Clements MZI mesh, K x K, U and V together:
//     #Blk = 4K,  #DC = 2K(K-1),  #CR = 0,  #PS = K * #Blk
//   Butterfly (FFT) mesh, K x K, U and V together (K a power of two):
//     #Blk = 2*log2(K), #DC = K*log2(K),
//     #CR  = 2 * sum_{i=0}^{log2(K)-2} (K / 2^{i+2}) * 2^i (2^i+1 ... )
//     (per-stage riffle cost; 8/44/208 per unitary for K = 8/16/32).
#pragma once

#include "common/rng.h"
#include "photonics/topology.h"

namespace adept::photonics {

// Rectangular Clements MZI mesh: K columns of MZIs per unitary, each MZI
// decomposed as two blocks (PS column + full DC column), no crossings.
PtcTopology clements_mzi(int k);

// Butterfly (FFT-style) mesh: log2(K) stages per unitary; stage i couples
// stride-2^i partners. Inter-stage routing uses per-group riffle
// permutations; the final stage leaves outputs in permuted order (absorbed
// by the trainable Sigma/V), matching the paper's crossing accounting.
PtcTopology butterfly(int k);

// Random topology with `blocks` blocks per unitary: interleaved parities,
// couplers present with probability dc_density, uniform random permutations.
// Used for search-space exploration baselines and tests.
PtcTopology random_topology(int k, int blocks_per_unitary, adept::Rng& rng,
                            double dc_density = 0.5);

// Crossing count of one butterfly unitary (closed form used in tests).
std::int64_t butterfly_crossings_per_unitary(int k);

}  // namespace adept::photonics
