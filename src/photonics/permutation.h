// Permutation algebra and waveguide-crossing accounting.
//
// A CR layer in a PTC block is a permutation of the K waveguides (paper
// Eq. 4). Its hardware cost is the minimum number of pairwise waveguide
// crossings needed to realize it with a planar routing network, which equals
// the permutation's inversion count (the minimum number of adjacent
// transpositions that sorts it) — exactly the counting rule the paper uses
// for #CR(P_b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "photonics/linalg.h"

namespace adept::photonics {

// Permutation pi over {0..k-1}. Convention: applying the permutation to a
// signal vector x yields y with y[i] = x[pi(i)]; the matrix form has
// M[i, pi(i)] = 1 so that y = M x.
class Permutation {
 public:
  Permutation() = default;
  explicit Permutation(std::vector<int> map);

  static Permutation identity(int k);
  static Permutation reversal(int k);
  static Permutation random(int k, adept::Rng& rng);
  // Perfect shuffle / stride permutations used by butterfly meshes.
  static Permutation from_positions(const std::vector<int>& target_of_source);

  int size() const { return static_cast<int>(map_.size()); }
  int operator()(int i) const { return map_[static_cast<std::size_t>(i)]; }
  const std::vector<int>& map() const { return map_; }

  bool is_identity() const;
  bool operator==(const Permutation& other) const { return map_ == other.map_; }

  // this ∘ other: (this∘other)(i) = other(this(i)); matrix form
  // M(this∘other) = M(this) * M(other) under the y = Mx convention.
  Permutation compose(const Permutation& other) const;
  Permutation inverse() const;

  // Apply to a vector: out[i] = in[pi(i)].
  template <typename T>
  std::vector<T> apply(const std::vector<T>& in) const {
    std::vector<T> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = in[static_cast<std::size_t>(map_[i])];
    }
    return out;
  }

  RMat to_matrix() const;
  CMat to_cmatrix() const;

  std::string to_string() const;

 private:
  std::vector<int> map_;
};

// True if `map` is a bijection over {0..k-1}.
bool is_valid_permutation(const std::vector<int>& map);

// Inversion count of the permutation = minimum number of adjacent swaps =
// number of waveguide crossings needed to realize it (O(k log k) merge sort).
std::int64_t crossing_count(const Permutation& p);

// Brute-force O(k^2) inversion count; used to cross-check in tests.
std::int64_t crossing_count_naive(const Permutation& p);

// A realizable routing: layers of non-overlapping adjacent swaps
// (odd-even transposition schedule). The total number of swaps equals
// crossing_count(p); the layer structure gives the routing depth.
struct SwapSchedule {
  // Each layer lists positions i meaning "swap lanes (i, i+1)".
  std::vector<std::vector<int>> layers;
  std::int64_t total_swaps() const;
};
SwapSchedule route_permutation(const Permutation& p);

// Parse a (possibly relaxed) doubly-stochastic matrix as a permutation when
// every row/col has a single dominant entry >= 1 - tol; returns false
// otherwise.
bool permutation_from_matrix(const RMat& m, double tol, Permutation* out);

}  // namespace adept::photonics
