// PTC topology intermediate representation (IR).
//
// A photonic tensor core unitary is a cascade of blocks (paper Eq. 2):
//     U = prod_b  P_b * T_b * R(Phi_b)
// where R is a phase-shifter column (always K shifters — active devices kept
// for programmability), T_b a directional-coupler column (passive; each slot
// either carries a 50:50 coupler or a bar-through), and P_b a waveguide-
// crossing permutation. A weight tile is W = U * Sigma * V with both U and V
// described by block lists.
//
// The same IR expresses the searched ADEPT designs and the hand-crafted
// baselines (Clements MZI mesh, butterfly/FFT mesh; see builders.h), so
// footprint accounting, ONN execution, and noise injection are shared code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.h"
#include "photonics/pdk.h"
#include "photonics/permutation.h"

namespace adept::photonics {

// One PS + DC + CR block.
struct BlockSpec {
  int start = 0;                 // DC column start parity s_b (0 or 1)
  std::vector<bool> dc_mask;     // coupler present per slot; size (K-start)/2
  Permutation perm;              // CR layer permutation

  std::int64_t num_dc() const;
  std::int64_t num_cr() const;
};

// Device census for one unitary or a full U/V pair.
struct DeviceCounts {
  std::int64_t ps = 0;
  std::int64_t dc = 0;
  std::int64_t cr = 0;
  std::int64_t blocks = 0;
};

struct PtcTopology {
  int k = 0;                        // waveguide count (tile size K)
  std::vector<BlockSpec> u_blocks;  // blocks of U (B_U entries)
  std::vector<BlockSpec> v_blocks;  // blocks of V (B_V entries)
  std::string name;                 // e.g. "ADEPT-a2", "MZI", "FFT"

  DeviceCounts counts() const;
  // Total footprint in um^2 under a PDK: #PS*F_PS + #DC*F_DC + #CR*F_CR.
  double footprint_um2(const Pdk& pdk) const;

  // Structural validation (parities, mask sizes, perm sizes). Throws on
  // malformed topologies.
  void validate() const;

  // Round-trippable text serialization (one topology per string). Error
  // messages from deserialize name the offending side/block/field, quote the
  // bad token, and give the stream offset.
  std::string serialize() const;
  static PtcTopology deserialize(const std::string& text);

  // Endian-explicit binary encoding (appended to `out`) used by the runtime
  // checkpoint format; round-trips are bit-exact across host endianness.
  // deserialize_binary advances the reader past one topology and validates
  // the result; failures throw std::runtime_error with the reader's context
  // plus field name and byte offset.
  void serialize_binary(std::string& out) const;
  static PtcTopology deserialize_binary(binio::Reader& r);
};

// Expected parity for block index b (paper Sec. 3.2: s_b = 0 for even block
// index, 1 for odd, so cascaded DC layers interleave).
int interleaved_parity(int block_index);

// Number of DC slots for a given K and parity.
std::int64_t dc_slots(int k, int start);

// ---- circuit-level simulation (complex<double>) -------------------------

// Programmable state of one unitary mesh: one phase per shifter per block.
struct MeshPhases {
  // per_block[b] has K entries.
  std::vector<std::vector<double>> per_block;
};

// Transfer matrix of one block given its phases.
CMat block_transfer(const BlockSpec& block, int k, const std::vector<double>& phases);

// Transfer matrix of a full unitary mesh: prod_b P_b T_b R(Phi_b), with
// block 0 applied first (rightmost factor).
CMat mesh_transfer(const std::vector<BlockSpec>& blocks, int k, const MeshPhases& phases);

// W = U * diag(sigma) * V for a full topology.
CMat weight_transfer(const PtcTopology& topo, const MeshPhases& u_phases,
                     const MeshPhases& v_phases, const std::vector<double>& sigma);

}  // namespace adept::photonics
