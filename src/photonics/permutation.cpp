#include "photonics/permutation.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace adept::photonics {

Permutation::Permutation(std::vector<int> map) : map_(std::move(map)) {
  if (!is_valid_permutation(map_)) {
    throw std::invalid_argument("Permutation: map is not a bijection");
  }
}

Permutation Permutation::identity(int k) {
  std::vector<int> m(static_cast<std::size_t>(k));
  std::iota(m.begin(), m.end(), 0);
  return Permutation(std::move(m));
}

Permutation Permutation::reversal(int k) {
  std::vector<int> m(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) m[static_cast<std::size_t>(i)] = k - 1 - i;
  return Permutation(std::move(m));
}

Permutation Permutation::random(int k, adept::Rng& rng) {
  std::vector<int> m(static_cast<std::size_t>(k));
  std::iota(m.begin(), m.end(), 0);
  rng.shuffle(m);
  return Permutation(std::move(m));
}

Permutation Permutation::from_positions(const std::vector<int>& target_of_source) {
  // target_of_source[s] = position where source lane s ends up; convert to
  // our convention map[i] = source lane feeding position i.
  std::vector<int> m(target_of_source.size(), -1);
  for (std::size_t s = 0; s < target_of_source.size(); ++s) {
    const int tgt = target_of_source[s];
    if (tgt < 0 || tgt >= static_cast<int>(target_of_source.size()) ||
        m[static_cast<std::size_t>(tgt)] != -1) {
      throw std::invalid_argument("from_positions: not a bijection");
    }
    m[static_cast<std::size_t>(tgt)] = static_cast<int>(s);
  }
  return Permutation(std::move(m));
}

bool Permutation::is_identity() const {
  for (std::size_t i = 0; i < map_.size(); ++i) {
    if (map_[i] != static_cast<int>(i)) return false;
  }
  return true;
}

Permutation Permutation::compose(const Permutation& other) const {
  if (size() != other.size()) throw std::invalid_argument("compose: size mismatch");
  std::vector<int> m(map_.size());
  for (std::size_t i = 0; i < map_.size(); ++i) {
    m[i] = other.map_[static_cast<std::size_t>(map_[i])];
  }
  return Permutation(std::move(m));
}

Permutation Permutation::inverse() const {
  std::vector<int> m(map_.size());
  for (std::size_t i = 0; i < map_.size(); ++i) {
    m[static_cast<std::size_t>(map_[i])] = static_cast<int>(i);
  }
  return Permutation(std::move(m));
}

RMat Permutation::to_matrix() const {
  const int k = size();
  RMat m(k, k);
  for (int i = 0; i < k; ++i) m.at(i, map_[static_cast<std::size_t>(i)]) = 1.0;
  return m;
}

CMat Permutation::to_cmatrix() const {
  const int k = size();
  CMat m(k, k);
  for (int i = 0; i < k; ++i) m.at(i, map_[static_cast<std::size_t>(i)]) = 1.0;
  return m;
}

std::string Permutation::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < map_.size(); ++i) {
    if (i > 0) s += " ";
    s += std::to_string(map_[i]);
  }
  return s + "]";
}

bool is_valid_permutation(const std::vector<int>& map) {
  std::vector<bool> seen(map.size(), false);
  for (int v : map) {
    if (v < 0 || v >= static_cast<int>(map.size()) || seen[static_cast<std::size_t>(v)]) {
      return false;
    }
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

namespace {

std::int64_t merge_count(std::vector<int>& a, std::vector<int>& tmp, std::size_t lo,
                         std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::int64_t inv = merge_count(a, tmp, lo, mid) + merge_count(a, tmp, mid, hi);
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (a[i] <= a[j]) {
      tmp[k++] = a[i++];
    } else {
      inv += static_cast<std::int64_t>(mid - i);
      tmp[k++] = a[j++];
    }
  }
  while (i < mid) tmp[k++] = a[i++];
  while (j < hi) tmp[k++] = a[j++];
  std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
            tmp.begin() + static_cast<std::ptrdiff_t>(hi),
            a.begin() + static_cast<std::ptrdiff_t>(lo));
  return inv;
}

}  // namespace

std::int64_t crossing_count(const Permutation& p) {
  std::vector<int> a = p.map();
  std::vector<int> tmp(a.size());
  return merge_count(a, tmp, 0, a.size());
}

std::int64_t crossing_count_naive(const Permutation& p) {
  const auto& m = p.map();
  std::int64_t inv = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = i + 1; j < m.size(); ++j) {
      if (m[i] > m[j]) ++inv;
    }
  }
  return inv;
}

std::int64_t SwapSchedule::total_swaps() const {
  std::int64_t n = 0;
  for (const auto& layer : layers) n += static_cast<std::int64_t>(layer.size());
  return n;
}

SwapSchedule route_permutation(const Permutation& p) {
  // Odd-even transposition sort of the target arrangement back to identity,
  // then reverse the schedule so it maps identity -> target. Each comparator
  // swaps only out-of-order pairs, so total swaps == inversion count.
  std::vector<int> arr = p.map();
  const int k = static_cast<int>(arr.size());
  std::vector<std::vector<int>> layers;
  bool changed = true;
  int parity = 0;
  int idle_rounds = 0;
  while (idle_rounds < 2) {
    changed = false;
    std::vector<int> layer;
    for (int i = parity; i + 1 < k; i += 2) {
      if (arr[static_cast<std::size_t>(i)] > arr[static_cast<std::size_t>(i + 1)]) {
        std::swap(arr[static_cast<std::size_t>(i)], arr[static_cast<std::size_t>(i + 1)]);
        layer.push_back(i);
        changed = true;
      }
    }
    if (!layer.empty()) layers.push_back(std::move(layer));
    idle_rounds = changed ? 0 : idle_rounds + 1;
    parity ^= 1;
  }
  std::reverse(layers.begin(), layers.end());
  SwapSchedule schedule;
  schedule.layers = std::move(layers);
  return schedule;
}

bool permutation_from_matrix(const RMat& m, double tol, Permutation* out) {
  if (m.rows() != m.cols()) return false;
  const std::int64_t k = m.rows();
  std::vector<int> map(static_cast<std::size_t>(k), -1);
  std::vector<bool> used(static_cast<std::size_t>(k), false);
  for (std::int64_t i = 0; i < k; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (m.at(i, j) > m.at(i, best)) best = j;
    }
    if (m.at(i, best) < 1.0 - tol) return false;
    if (used[static_cast<std::size_t>(best)]) return false;
    used[static_cast<std::size_t>(best)] = true;
    map[static_cast<std::size_t>(i)] = static_cast<int>(best);
  }
  if (out != nullptr) *out = Permutation(std::move(map));
  return true;
}

}  // namespace adept::photonics
