// Phase-variation noise model (paper Sec. 4.1 / Fig. 4).
//
// Thermal crosstalk and fabrication variation perturb programmed phase
// shifts; the paper models this as i.i.d. Gaussian drift added to every
// phase, evaluates robustness at sigma in [0.02, 0.10] rad, and counters it
// with variation-aware training (noise injected during training forward
// passes).
#pragma once

#include "common/rng.h"
#include "photonics/topology.h"

namespace adept::photonics {

struct NoiseModel {
  double phase_sigma = 0.0;  // std-dev of Gaussian phase drift (radians)

  // Perturb one mesh's phases.
  MeshPhases perturb(const MeshPhases& phases, adept::Rng& rng) const;
};

// Monte-Carlo matrix fidelity under phase noise: mean Frobenius-norm error
// between the nominal transfer matrix and noisy realizations, normalized by
// the nominal norm. Deeper meshes accumulate more drift (MZI vs FFT in
// Fig. 4).
double mean_matrix_error_under_noise(const PtcTopology& topo,
                                     const MeshPhases& u_phases,
                                     const MeshPhases& v_phases,
                                     const std::vector<double>& sigma_diag,
                                     double phase_sigma, int trials,
                                     adept::Rng& rng);

}  // namespace adept::photonics
