#include "photonics/pdk.h"

namespace adept::photonics {

Pdk Pdk::amf() { return Pdk{"AMF", 6800.0, 1500.0, 64.0}; }

Pdk Pdk::aim() { return Pdk{"AIM", 2500.0, 4000.0, 4900.0}; }

void Pdk::serialize_binary(std::string& out) const {
  binio::put_str(out, name);
  binio::put_f64(out, ps_area_um2);
  binio::put_f64(out, dc_area_um2);
  binio::put_f64(out, cr_area_um2);
}

Pdk Pdk::deserialize_binary(binio::Reader& r) {
  Pdk pdk;
  pdk.name = r.str("pdk name");
  pdk.ps_area_um2 = r.f64("pdk ps_area_um2");
  pdk.dc_area_um2 = r.f64("pdk dc_area_um2");
  pdk.cr_area_um2 = r.f64("pdk cr_area_um2");
  return pdk;
}

}  // namespace adept::photonics
