#include "photonics/pdk.h"

namespace adept::photonics {

Pdk Pdk::amf() { return Pdk{"AMF", 6800.0, 1500.0, 64.0}; }

Pdk Pdk::aim() { return Pdk{"AIM", 2500.0, 4000.0, 4900.0}; }

}  // namespace adept::photonics
