// Transfer-matrix models of the basic optical devices (paper Sec. 2.1).
//
//   phase shifter   y = exp(-j*phi) * x                (active, programmable)
//   directional     [[t, j*sqrt(1-t^2)],               (passive, fixed)
//   coupler          [j*sqrt(1-t^2), t]]
//   crossing        2x2 swap                           (passive, fixed)
//   MZI             2 couplers + 2 phase shifters      (hand-designed cell)
//
// These build the circuit-level (complex<double>) simulation used by tests,
// noise evaluation, and baseline constructions. The differentiable versions
// used during SuperMesh training live in autograd/complex.h.
#pragma once

#include <vector>

#include "photonics/linalg.h"

namespace adept::photonics {

// 50:50 coupler transmission coefficient, t = sqrt(2)/2.
double balanced_coupler_t();

// 1x1 phase shifter response exp(-j*phi).
cplx phase_shifter(double phi);

// 2x2 directional coupler with transmission t in [0, 1].
CMat coupler(double t);

// 2x2 waveguide crossing (swap).
CMat crossing();

// 2x2 MZI: external phase phi on the top arm, internal phase theta between
// two 50:50 couplers. Universal 2-D unitary up to output phases.
CMat mzi(double theta, double phi);

// K x K diagonal phase-shifter column diag(exp(-j*phi_k)).
CMat phase_column_matrix(const std::vector<double>& phis);

// K x K coupler column: couplers (with per-slot transmission t) on waveguide
// pairs (start + 2i, start + 2i + 1); uncovered waveguides pass through.
// mask[i] == false means slot i carries no coupler (bar state, identity).
CMat coupler_column_matrix(std::int64_t k, std::int64_t start,
                           const std::vector<bool>& mask,
                           const std::vector<double>& t);

// Convenience: all-coupler balanced column.
CMat balanced_coupler_column(std::int64_t k, std::int64_t start);

}  // namespace adept::photonics
