// Foundry process-design-kit (PDK) device footprints.
//
// The paper evaluates against two real PDKs whose per-device areas it quotes:
//   AMF  (Advanced Micro Foundry):  PS 6800, DC 1500, CR   64  um^2
//   AIM  (AIM Photonics):           PS 2500, DC 4000, CR 4900  um^2
// AIM's large crossings are what drive ADEPT to search crossing-free
// topologies in Table 2.
#pragma once

#include <string>

#include "common/binio.h"

namespace adept::photonics {

struct Pdk {
  std::string name;
  double ps_area_um2 = 0.0;  // phase shifter
  double dc_area_um2 = 0.0;  // directional coupler
  double cr_area_um2 = 0.0;  // waveguide crossing

  static Pdk amf();
  static Pdk aim();

  // Endian-explicit binary encoding (appended to `out`) used by the runtime
  // checkpoint format; doubles travel as IEEE-754 bit patterns.
  void serialize_binary(std::string& out) const;
  static Pdk deserialize_binary(binio::Reader& r);
};

}  // namespace adept::photonics
