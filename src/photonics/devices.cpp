#include "photonics/devices.h"

#include <cmath>
#include <stdexcept>

namespace adept::photonics {

double balanced_coupler_t() { return std::sqrt(2.0) / 2.0; }

cplx phase_shifter(double phi) { return std::exp(cplx(0.0, -phi)); }

CMat coupler(double t) {
  if (t < 0.0 || t > 1.0) throw std::invalid_argument("coupler: t out of [0,1]");
  const double cross = std::sqrt(1.0 - t * t);
  CMat m(2, 2);
  m.at(0, 0) = t;
  m.at(1, 1) = t;
  m.at(0, 1) = cplx(0.0, cross);
  m.at(1, 0) = cplx(0.0, cross);
  return m;
}

CMat crossing() {
  CMat m(2, 2);
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  return m;
}

CMat mzi(double theta, double phi) {
  // DC * PS(theta on arm 0) * DC * PS(phi on arm 0)
  CMat dc = coupler(balanced_coupler_t());
  CMat ps_theta = CMat::identity(2);
  ps_theta.at(0, 0) = phase_shifter(theta);
  CMat ps_phi = CMat::identity(2);
  ps_phi.at(0, 0) = phase_shifter(phi);
  return dc * ps_theta * dc * ps_phi;
}

CMat phase_column_matrix(const std::vector<double>& phis) {
  const std::int64_t k = static_cast<std::int64_t>(phis.size());
  CMat m(k, k);
  for (std::int64_t i = 0; i < k; ++i) {
    m.at(i, i) = phase_shifter(phis[static_cast<std::size_t>(i)]);
  }
  return m;
}

CMat coupler_column_matrix(std::int64_t k, std::int64_t start,
                           const std::vector<bool>& mask,
                           const std::vector<double>& t) {
  if (start != 0 && start != 1) {
    throw std::invalid_argument("coupler_column_matrix: start must be 0/1");
  }
  const std::int64_t slots = static_cast<std::int64_t>(mask.size());
  if (start + 2 * slots > k) {
    throw std::invalid_argument("coupler_column_matrix: too many slots");
  }
  if (t.size() != mask.size()) {
    throw std::invalid_argument("coupler_column_matrix: t/mask size mismatch");
  }
  CMat m = CMat::identity(k);
  for (std::int64_t s = 0; s < slots; ++s) {
    if (!mask[static_cast<std::size_t>(s)]) continue;
    const std::int64_t a = start + 2 * s;
    const double tv = t[static_cast<std::size_t>(s)];
    const double cross = std::sqrt(std::max(0.0, 1.0 - tv * tv));
    m.at(a, a) = tv;
    m.at(a + 1, a + 1) = tv;
    m.at(a, a + 1) = cplx(0.0, cross);
    m.at(a + 1, a) = cplx(0.0, cross);
  }
  return m;
}

CMat balanced_coupler_column(std::int64_t k, std::int64_t start) {
  const std::int64_t slots = (k - start) / 2;
  return coupler_column_matrix(
      k, start, std::vector<bool>(static_cast<std::size_t>(slots), true),
      std::vector<double>(static_cast<std::size_t>(slots), balanced_coupler_t()));
}

}  // namespace adept::photonics
