// Dense complex / real matrix algebra for photonic circuit simulation.
//
// Circuit-level (non-autograd) simulation runs in double precision complex
// arithmetic: unitarity checks, noise-injection evaluation, and the SVD
// projection inside stochastic permutation legalization all live here.
// Matrices are small (K <= 64 waveguides), so simple dense algorithms are the
// right tool (CppCoreGuidelines P.9: don't pay for generality we don't use).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace adept::photonics {

using cplx = std::complex<double>;

// Dense row-major complex matrix.
class CMat {
 public:
  CMat() = default;
  CMat(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols)) {}

  static CMat identity(std::int64_t n);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  cplx& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const cplx& at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  std::vector<cplx>& data() { return data_; }
  const std::vector<cplx>& data() const { return data_; }

  CMat operator*(const CMat& rhs) const;
  std::vector<cplx> operator*(const std::vector<cplx>& v) const;
  CMat adjoint() const;

  // max_ij |a_ij - b_ij|
  double max_abs_diff(const CMat& other) const;
  // max_ij |(A A^H - I)_ij|; zero for unitary matrices.
  double unitarity_error() const;
  // Frobenius norm.
  double frobenius() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<cplx> data_;
};

// Dense row-major real matrix (used by the SPL SVD projection).
class RMat {
 public:
  RMat() = default;
  RMat(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), 0.0) {}

  static RMat identity(std::int64_t n);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  double& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const double& at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  RMat operator*(const RMat& rhs) const;
  RMat transposed() const;
  double max_abs_diff(const RMat& other) const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<double> data_;
};

// Thin SVD of a square real matrix A = U * diag(s) * V^T via one-sided
// Jacobi rotations. Singular values are non-negative, in no guaranteed
// order. Accurate to ~1e-12 for the K <= 64 sizes used here.
struct SvdResult {
  RMat u;
  std::vector<double> s;
  RMat v;
};
SvdResult jacobi_svd(const RMat& a, int max_sweeps = 60, double tol = 1e-13);

// Orthogonal Procrustes projection: the orthogonal matrix U V^T closest (in
// Frobenius norm) to A. Used by stochastic permutation legalization (Eq. 13).
RMat procrustes_orthogonalize(const RMat& a);

}  // namespace adept::photonics
