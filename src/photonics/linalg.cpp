#include "photonics/linalg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "backend/kernels.h"

namespace adept::photonics {

namespace be = ::adept::backend;

CMat CMat::identity(std::int64_t n) {
  CMat m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

CMat CMat::operator*(const CMat& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("CMat multiply: dim mismatch");
  CMat out(rows_, rhs.cols_);
  be::gemm(be::Trans::N, be::Trans::N, rows_, rhs.cols_, cols_, cplx(1.0, 0.0),
           data_.data(), cols_, rhs.data_.data(), rhs.cols_, cplx(0.0, 0.0),
           out.data_.data(), rhs.cols_);
  return out;
}

std::vector<cplx> CMat::operator*(const std::vector<cplx>& v) const {
  if (static_cast<std::int64_t>(v.size()) != cols_) {
    throw std::invalid_argument("CMat vec multiply: dim mismatch");
  }
  std::vector<cplx> out(static_cast<std::size_t>(rows_), cplx(0.0, 0.0));
  for (std::int64_t i = 0; i < rows_; ++i) {
    cplx acc(0.0, 0.0);
    for (std::int64_t j = 0; j < cols_; ++j) acc += at(i, j) * v[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

CMat CMat::adjoint() const {
  CMat out(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) out.at(j, i) = std::conj(at(i, j));
  }
  return out;
}

double CMat::max_abs_diff(const CMat& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("CMat max_abs_diff: shape mismatch");
  }
  double mx = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::abs(data_[i] - other.data_[i]));
  }
  return mx;
}

double CMat::unitarity_error() const {
  CMat prod = (*this) * adjoint();
  return prod.max_abs_diff(CMat::identity(rows_));
}

double CMat::frobenius() const {
  double acc = 0.0;
  for (const auto& z : data_) acc += std::norm(z);
  return std::sqrt(acc);
}

RMat RMat::identity(std::int64_t n) {
  RMat m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

RMat RMat::operator*(const RMat& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("RMat multiply: dim mismatch");
  RMat out(rows_, rhs.cols_);
  be::gemm(be::Trans::N, be::Trans::N, rows_, rhs.cols_, cols_, 1.0,
           data_.data(), cols_, rhs.data_.data(), rhs.cols_, 0.0,
           out.data_.data(), rhs.cols_);
  return out;
}

RMat RMat::transposed() const {
  RMat out(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

double RMat::max_abs_diff(const RMat& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("RMat max_abs_diff: shape mismatch");
  }
  double mx = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
  }
  return mx;
}

SvdResult jacobi_svd(const RMat& a, int max_sweeps, double tol) {
  if (a.rows() != a.cols()) throw std::invalid_argument("jacobi_svd: square only");
  const std::int64_t n = a.rows();
  // One-sided Jacobi: rotate columns of W = A * V until pairwise orthogonal.
  RMat w = a;
  RMat v = RMat::identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::int64_t p = 0; p < n - 1; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
          app += w.at(i, p) * w.at(i, p);
          aqq += w.at(i, q) * w.at(i, q);
          apq += w.at(i, p) * w.at(i, q);
        }
        off = std::max(off, std::fabs(apq));
        if (std::fabs(apq) < tol * std::sqrt(std::max(app * aqq, 1e-300))) continue;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::int64_t i = 0; i < n; ++i) {
          const double wp = w.at(i, p), wq = w.at(i, q);
          w.at(i, p) = c * wp - s * wq;
          w.at(i, q) = s * wp + c * wq;
          const double vp = v.at(i, p), vq = v.at(i, q);
          v.at(i, p) = c * vp - s * vq;
          v.at(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off < tol) break;
  }
  SvdResult result;
  result.s.assign(static_cast<std::size_t>(n), 0.0);
  result.u = RMat(n, n);
  result.v = v;
  for (std::int64_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::int64_t i = 0; i < n; ++i) norm += w.at(i, j) * w.at(i, j);
    norm = std::sqrt(norm);
    result.s[static_cast<std::size_t>(j)] = norm;
    if (norm > 1e-300) {
      for (std::int64_t i = 0; i < n; ++i) result.u.at(i, j) = w.at(i, j) / norm;
    } else {
      // Degenerate column: use a unit vector to keep U well-formed.
      result.u.at(j, j) = 1.0;
    }
  }
  return result;
}

RMat procrustes_orthogonalize(const RMat& a) {
  SvdResult svd = jacobi_svd(a);
  return svd.u * svd.v.transposed();
}

}  // namespace adept::photonics
