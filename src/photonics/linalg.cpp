#include "photonics/linalg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "backend/kernels.h"

namespace adept::photonics {

namespace be = ::adept::backend;

CMat CMat::identity(std::int64_t n) {
  CMat m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

CMat CMat::operator*(const CMat& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("CMat multiply: dim mismatch");
  CMat out(rows_, rhs.cols_);
  be::gemm(be::Trans::N, be::Trans::N, rows_, rhs.cols_, cols_, cplx(1.0, 0.0),
           data_.data(), cols_, rhs.data_.data(), rhs.cols_, cplx(0.0, 0.0),
           out.data_.data(), rhs.cols_);
  return out;
}

std::vector<cplx> CMat::operator*(const std::vector<cplx>& v) const {
  if (static_cast<std::int64_t>(v.size()) != cols_) {
    throw std::invalid_argument("CMat vec multiply: dim mismatch");
  }
  std::vector<cplx> out(static_cast<std::size_t>(rows_), cplx(0.0, 0.0));
  for (std::int64_t i = 0; i < rows_; ++i) {
    cplx acc(0.0, 0.0);
    for (std::int64_t j = 0; j < cols_; ++j) acc += at(i, j) * v[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

CMat CMat::adjoint() const {
  CMat out(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) out.at(j, i) = std::conj(at(i, j));
  }
  return out;
}

double CMat::max_abs_diff(const CMat& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("CMat max_abs_diff: shape mismatch");
  }
  double mx = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::abs(data_[i] - other.data_[i]));
  }
  return mx;
}

double CMat::unitarity_error() const {
  CMat prod = (*this) * adjoint();
  return prod.max_abs_diff(CMat::identity(rows_));
}

double CMat::frobenius() const {
  double acc = 0.0;
  for (const auto& z : data_) acc += std::norm(z);
  return std::sqrt(acc);
}

RMat RMat::identity(std::int64_t n) {
  RMat m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

RMat RMat::operator*(const RMat& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("RMat multiply: dim mismatch");
  RMat out(rows_, rhs.cols_);
  be::gemm(be::Trans::N, be::Trans::N, rows_, rhs.cols_, cols_, 1.0,
           data_.data(), cols_, rhs.data_.data(), rhs.cols_, 0.0,
           out.data_.data(), rhs.cols_);
  return out;
}

RMat RMat::transposed() const {
  RMat out(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

double RMat::max_abs_diff(const RMat& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("RMat max_abs_diff: shape mismatch");
  }
  double mx = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
  }
  return mx;
}

SvdResult jacobi_svd(const RMat& a, int max_sweeps, double tol) {
  if (a.rows() != a.cols()) throw std::invalid_argument("jacobi_svd: square only");
  const std::int64_t n = a.rows();
  // One-sided Jacobi: rotate columns of W = A * V until pairwise orthogonal.
  RMat w = a;
  RMat v = RMat::identity(n);
  // Column squared norms are the diagonal of the implicit Gram matrix W^T W.
  // Refreshing them once per sweep with a row-major streaming pass — and
  // updating them exactly after each rotation (the annihilating rotation
  // maps G_pp -> G_pp - t*G_pq, G_qq -> G_qq + t*G_pq) — cuts each pair
  // check from three strided column dots to one.
  std::vector<double> colsq(static_cast<std::size_t>(n), 0.0);
  // A pair is re-checked only when one of its columns rotated since the last
  // visit; untouched pairs were below threshold then and still are.
  std::vector<char> changed_prev(static_cast<std::size_t>(n), 1);
  std::vector<char> changed_cur(static_cast<std::size_t>(n), 0);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    std::fill(colsq.begin(), colsq.end(), 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
      const double* wrow = &w.at(i, 0);
      for (std::int64_t j = 0; j < n; ++j) {
        colsq[static_cast<std::size_t>(j)] += wrow[j] * wrow[j];
      }
    }
    std::fill(changed_cur.begin(), changed_cur.end(), 0);
    double off = 0.0;
    for (std::int64_t p = 0; p < n - 1; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        const std::size_t ps = static_cast<std::size_t>(p);
        const std::size_t qs = static_cast<std::size_t>(q);
        if (!changed_prev[ps] && !changed_prev[qs] && !changed_cur[ps] &&
            !changed_cur[qs]) {
          continue;
        }
        double apq = 0.0;
        for (std::int64_t i = 0; i < n; ++i) apq += w.at(i, p) * w.at(i, q);
        const double app = colsq[ps], aqq = colsq[qs];
        off = std::max(off, std::fabs(apq));
        if (std::fabs(apq) < tol * std::sqrt(std::max(app * aqq, 1e-300))) continue;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::int64_t i = 0; i < n; ++i) {
          const double wp = w.at(i, p), wq = w.at(i, q);
          w.at(i, p) = c * wp - s * wq;
          w.at(i, q) = s * wp + c * wq;
          const double vp = v.at(i, p), vq = v.at(i, q);
          v.at(i, p) = c * vp - s * vq;
          v.at(i, q) = s * vp + c * vq;
        }
        colsq[ps] = app - t * apq;
        colsq[qs] = aqq + t * apq;
        changed_cur[ps] = changed_cur[qs] = 1;
      }
    }
    // off == 0 with every pair skipped means the previous sweep left all
    // columns untouched: already converged (or stuck below the relative
    // threshold — the old code would spin the remaining sweeps re-deriving
    // the same decision).
    if (off < tol) break;
    changed_prev.swap(changed_cur);
  }
  SvdResult result;
  result.s.assign(static_cast<std::size_t>(n), 0.0);
  result.u = RMat(n, n);
  result.v = v;
  // Final norms from the data (not the incrementally tracked diagonal), one
  // streaming pass.
  std::fill(colsq.begin(), colsq.end(), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    const double* wrow = &w.at(i, 0);
    for (std::int64_t j = 0; j < n; ++j) {
      colsq[static_cast<std::size_t>(j)] += wrow[j] * wrow[j];
    }
  }
  for (std::int64_t j = 0; j < n; ++j) {
    const double norm = std::sqrt(colsq[static_cast<std::size_t>(j)]);
    result.s[static_cast<std::size_t>(j)] = norm;
    if (norm > 1e-300) {
      for (std::int64_t i = 0; i < n; ++i) result.u.at(i, j) = w.at(i, j) / norm;
    } else {
      // Degenerate column: use a unit vector to keep U well-formed.
      result.u.at(j, j) = 1.0;
    }
  }
  return result;
}

RMat procrustes_orthogonalize(const RMat& a) {
  SvdResult svd = jacobi_svd(a);
  return svd.u * svd.v.transposed();
}

}  // namespace adept::photonics
