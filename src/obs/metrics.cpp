#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "common/env.h"

namespace adept::obs {

namespace {

// Leaked singleton (same discipline as common/failpoint.cpp): instruments
// and the maps naming them outlive every static destructor, so the atexit
// dump and still-running detached threads can always record safely.
struct Registry {
  std::mutex mu;
  std::map<std::string, Counter*, std::less<>> counters;
  std::map<std::string, Gauge*, std::less<>> gauges;
  std::map<std::string, Histogram*, std::less<>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

template <typename T>
T& get_or_create(std::map<std::string, T*, std::less<>>& m,
                 std::string_view name) {
  auto it = m.find(name);
  if (it == m.end()) {
    it = m.emplace(std::string(name), new T()).first;
  }
  return *it->second;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void fill_hist(HistogramSnap& s, const Histogram& h) {
  s.count = h.count();
  s.p50 = h.quantile(0.5);
  s.p90 = h.quantile(0.9);
  s.p99 = h.quantile(0.99);
  s.mean = h.approx_mean();
  s.max = h.approx_max();
}

}  // namespace

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::bucket_lo(int idx) {
  if (idx < kSub) return idx;
  const int e = idx / kSub + kSubBits - 1;
  return std::ldexp(static_cast<double>(kSub + idx % kSub), e - kSubBits);
}

double Histogram::bucket_hi(int idx) {
  if (idx < kSub) return idx + 1;
  const int e = idx / kSub + kSubBits - 1;
  return std::ldexp(static_cast<double>(kSub + idx % kSub + 1), e - kSubBits);
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // Nearest-rank index of the old sort-based path, walked over cumulative
  // bucket counts. The sample at this rank lies inside the matched bucket,
  // so interpolating within it keeps the estimate within one bucket width.
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (rank < static_cast<double>(cum + counts[i])) {
      const double lo = bucket_lo(i);
      const double hi = bucket_hi(i);
      const double within =
          (rank - static_cast<double>(cum) + 0.5) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(within, 1.0);
    }
    cum += counts[i];
  }
  return bucket_hi(kBuckets - 1);  // unreachable: rank < total by construction
}

double Histogram::approx_mean() const {
  double sum = 0;
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    sum += static_cast<double>(c) * 0.5 * (bucket_lo(i) + bucket_hi(i));
    total += c;
  }
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double Histogram::approx_max() const {
  for (int i = kBuckets - 1; i >= 0; --i) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) return bucket_hi(i);
  }
  return 0.0;
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  return get_or_create(r.counters, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  return get_or_create(r.gauges, name);
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  return get_or_create(r.histograms, name);
}

const CounterSnap* MetricsSnapshot::find_counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnap* MetricsSnapshot::find_gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnap* MetricsSnapshot::find_histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const auto& c : counters) {
    out += "counter " + c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    out += "gauge " + g.name + " " + fmt_double(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    out += "histogram " + h.name + " count=" + std::to_string(h.count) +
           " p50=" + fmt_double(h.p50) + " p90=" + fmt_double(h.p90) +
           " p99=" + fmt_double(h.p99) + " mean=" + fmt_double(h.mean) +
           " max=" + fmt_double(h.max) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += (i ? ", " : "") + ("\"" + counters[i].name + "\": ") +
           std::to_string(counters[i].value);
  }
  out += "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += (i ? ", " : "") + ("\"" + gauges[i].name + "\": ") +
           fmt_double(gauges[i].value);
  }
  out += "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += (i ? ",\n    " : "\n    ") + ("\"" + h.name + "\": ") +
           "{\"count\": " + std::to_string(h.count) +
           ", \"p50\": " + fmt_double(h.p50) + ", \"p90\": " + fmt_double(h.p90) +
           ", \"p99\": " + fmt_double(h.p99) + ", \"mean\": " + fmt_double(h.mean) +
           ", \"max\": " + fmt_double(h.max) + "}";
  }
  out += histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

MetricsSnapshot snapshot() {
  MetricsSnapshot s;
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  s.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) {
    s.gauges.push_back({name, g->value()});
  }
  s.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    HistogramSnap hs;
    hs.name = name;
    fill_hist(hs, *h);
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

bool dump_metrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << snapshot().to_json();
  out.flush();
  return static_cast<bool>(out);
}

namespace {

// ADEPT_METRICS_FILE activation: registered from a namespace-scope static
// in this TU (kept by the linker because every instrumented module
// references the registry). The path is leaked so the atexit handler never
// races static destruction.
struct MetricsEnvInit {
  MetricsEnvInit() {
    std::string p = env_string("ADEPT_METRICS_FILE", "");
    if (p.empty()) return;
    static const std::string* path = new std::string(std::move(p));
    std::atexit([] {
      if (!dump_metrics(*path)) {
        std::fprintf(stderr, "adept::obs: cannot write ADEPT_METRICS_FILE=%s\n",
                     path->c_str());
      }
    });
  }
} g_metrics_env_init;

}  // namespace

}  // namespace adept::obs
