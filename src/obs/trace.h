// Low-overhead tracing: per-thread grow-only ring buffers of binary trace
// events (name-id, tid, start/duration in ns), exported as Chrome
// trace_event-format JSON that chrome://tracing and Perfetto load directly.
//
// Discipline (same as common/failpoint.h): the DISARMED fast path is one
// relaxed atomic load — a TraceSpan constructed while tracing is off reads
// one flag and touches nothing else (no clock, no allocation, no lock, no
// thread-local ring creation; tests/test_obs.cpp asserts this). Sites stay
// compiled into release builds and cost nothing until armed.
//
// Armed path: trace_event() appends a 24-byte record to the calling
// thread's ring under that ring's own mutex — uncontended in steady state
// (only the owner writes; write_trace takes it briefly at export). Rings
// grow to ADEPT_TRACE_BUF events (default 65536, clamped to
// [4096, 4194304]) and then wrap, keeping the newest events.
//
// Span names are interned once to a TraceId (mutex-guarded; resolve at
// setup time — constructor member, function-local static, or freeze-time
// field like PlanStep::trace_id) so the hot path never hashes a string.
//
// Timebase: events carry absolute steady_clock nanoseconds; write_trace
// subtracts the earliest timestamp, so spans measured from timestamps
// taken on other threads (a server request's enqueue time) line up with
// TraceSpan sections on the same clock.
//
// Activation: ADEPT_TRACE=out.json arms tracing at process start and
// writes the JSON at exit; trace_start()/trace_stop()/write_trace() do the
// same programmatically (docs/observability.md walks a real trace).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace adept::obs {

using TraceId = std::uint32_t;

// Intern `name` -> id (idempotent; takes the registry mutex). Id 0 is the
// reserved "(unnamed)" entry, so a zero-initialized id is still printable.
TraceId intern_name(std::string_view name);

// The armed flag (one relaxed load) — the whole disarmed cost of a site.
bool tracing_enabled();
void trace_start();
void trace_stop();

// Absolute steady_clock nanoseconds (the event timebase).
std::uint64_t trace_now_ns();

// Record a completed span on the calling thread's ring; no-op when
// tracing is off.
void trace_event(TraceId id, std::uint64_t start_ns, std::uint64_t dur_ns);

// Export every thread's events as Chrome trace_event JSON ("X" complete
// events, microsecond ts/dur, displayTimeUnit ns); false on I/O failure.
// Safe while other threads keep recording: each ring is copied under its
// own mutex.
bool write_trace(const std::string& path);

// RAII span: arms itself from one relaxed load; when tracing is on, stamps
// start at construction and records at destruction.
class TraceSpan {
 public:
  explicit TraceSpan(TraceId id) {
    if (!tracing_enabled()) return;
    id_ = id;
    start_ = trace_now_ns();
    armed_ = true;
  }
  ~TraceSpan() {
    if (armed_) trace_event(id_, start_, trace_now_ns() - start_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::uint64_t start_ = 0;
  TraceId id_ = 0;
  bool armed_ = false;
};

// ADEPT_TRACE_BUF clamped to [4096, 4194304] (read per call; rings capture
// it at first event).
int trace_buffer_capacity();

// Test hooks.
std::size_t trace_event_count();   // events currently buffered, all rings
std::size_t trace_thread_count();  // rings created so far
void trace_clear_for_testing();    // empty every ring (rings stay registered)

}  // namespace adept::obs
