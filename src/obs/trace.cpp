#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/env.h"

namespace adept::obs {

namespace {

struct Event {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  TraceId id = 0;
};

// One ring per recording thread. Only the owner appends, so the mutex is
// uncontended on the hot path; write_trace and the test hooks take it
// briefly to copy/clear. The ring grows to `cap` and then wraps (newest
// events win).
struct ThreadRing {
  std::mutex mu;
  std::vector<Event> events;
  std::size_t cap = 0;
  std::size_t next = 0;  // overwrite cursor once full
  std::uint32_t tid = 0;
};

// Leaked singleton (failpoint.cpp discipline): rings and the name table
// outlive static destruction so the atexit exporter and late threads are
// always safe.
struct TraceState {
  std::mutex mu;
  std::vector<std::string> names{"(unnamed)"};  // id -> name; 0 reserved
  std::map<std::string, TraceId, std::less<>> ids;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

std::atomic<bool> g_enabled{false};

ThreadRing& local_ring() {
  // The shared_ptr keeps the ring alive in the global list after the
  // owning thread exits, so write_trace at process end still sees every
  // thread's events.
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    r->cap = static_cast<std::size_t>(trace_buffer_capacity());
    TraceState& s = state();
    std::lock_guard lock(s.mu);
    r->tid = s.next_tid++;
    s.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

TraceId intern_name(std::string_view name) {
  TraceState& s = state();
  std::lock_guard lock(s.mu);
  auto it = s.ids.find(name);
  if (it != s.ids.end()) return it->second;
  const auto id = static_cast<TraceId>(s.names.size());
  s.names.emplace_back(name);
  s.ids.emplace(std::string(name), id);
  return id;
}

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }
void trace_start() { g_enabled.store(true, std::memory_order_relaxed); }
void trace_stop() { g_enabled.store(false, std::memory_order_relaxed); }

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void trace_event(TraceId id, std::uint64_t start_ns, std::uint64_t dur_ns) {
  if (!tracing_enabled()) return;
  ThreadRing& r = local_ring();
  std::lock_guard lock(r.mu);
  if (r.events.size() < r.cap) {
    r.events.push_back({start_ns, dur_ns, id});
  } else if (r.cap > 0) {
    r.events[r.next] = {start_ns, dur_ns, id};
    r.next = (r.next + 1) % r.cap;
  }
}

int trace_buffer_capacity() {
  return std::clamp(env_int("ADEPT_TRACE_BUF", 65536), 4096, 4194304);
}

bool write_trace(const std::string& path) {
  struct TaggedEvent {
    Event e;
    std::uint32_t tid;
  };
  std::vector<TaggedEvent> all;
  std::vector<std::string> names;
  {
    TraceState& s = state();
    std::vector<std::shared_ptr<ThreadRing>> rings;
    {
      std::lock_guard lock(s.mu);
      rings = s.rings;
      names = s.names;
    }
    for (const auto& r : rings) {
      std::lock_guard lock(r->mu);
      for (const Event& e : r->events) all.push_back({e, r->tid});
    }
  }
  // Earliest-first within each thread makes the file deterministic for a
  // given event set; viewers sort on load anyway.
  std::sort(all.begin(), all.end(), [](const TaggedEvent& a, const TaggedEvent& b) {
    if (a.e.start_ns != b.e.start_ns) return a.e.start_ns < b.e.start_ns;
    return a.tid < b.tid;
  });
  std::uint64_t t0 = all.empty() ? 0 : all.front().e.start_ns;

  std::ofstream out(path);
  if (!out) return false;
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  char buf[160];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const TaggedEvent& te = all[i];
    const std::string& name =
        te.e.id < names.size() ? names[te.e.id] : names[0];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"adept\", \"ph\": \"X\", "
                  "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                  i ? "," : "", escape_json(name).c_str(), te.tid,
                  static_cast<double>(te.e.start_ns - t0) / 1e3,
                  static_cast<double>(te.e.dur_ns) / 1e3);
    out << buf;
  }
  out << "\n]}\n";
  out.flush();
  return static_cast<bool>(out);
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(s.mu);
    rings = s.rings;
  }
  std::size_t n = 0;
  for (const auto& r : rings) {
    std::lock_guard lock(r->mu);
    n += r->events.size();
  }
  return n;
}

std::size_t trace_thread_count() {
  TraceState& s = state();
  std::lock_guard lock(s.mu);
  return s.rings.size();
}

void trace_clear_for_testing() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(s.mu);
    rings = s.rings;
  }
  for (const auto& r : rings) {
    std::lock_guard lock(r->mu);
    r->events.clear();
    r->next = 0;
  }
}

namespace {

// ADEPT_TRACE activation: arm at process start, export at exit. The path
// is leaked so the atexit handler never races static destruction.
struct TraceEnvInit {
  TraceEnvInit() {
    std::string p = env_string("ADEPT_TRACE", "");
    if (p.empty()) return;
    static const std::string* path = new std::string(std::move(p));
    trace_start();
    std::atexit([] {
      if (!write_trace(*path)) {
        std::fprintf(stderr, "adept::obs: cannot write ADEPT_TRACE=%s\n",
                     path->c_str());
      }
    });
  }
} g_trace_env_init;

}  // namespace

}  // namespace adept::obs
