// Process-wide metrics registry: typed instruments created once by name,
// recorded on hot paths with a single relaxed atomic op, snapshotted on
// demand.
//
// Instruments (all process-lifetime, returned by reference and never
// destroyed, so atexit dumpers and detached threads can touch them safely):
//
//   Counter    monotonic uint64; inc() is one relaxed fetch_add.
//   Gauge      last-write-wins double; set() is one relaxed store.
//   Histogram  fixed-bucket log-scale (HDR-style) distribution of
//              non-negative int64 samples. record() is one relaxed
//              fetch_add on the owning bucket — no lock, no allocation,
//              no sort. Quantiles interpolate within the matched bucket:
//              values < 16 are exact, larger values land in buckets of
//              relative width 2^-4, so p50/p99/mean/max are within 6.25%
//              of the exact-sort answer (tests/test_obs.cpp asserts the
//              bound against a sorted reference).
//
// Naming scheme (docs/observability.md): dot-separated lowercase paths,
// subsystem first — "serve.s0.latency_ns", "comm.allreduce.calls",
// "train.loss". Units are spelled in the name (_ns, _us, _bytes) because
// the registry stores numbers, not unit metadata.
//
// Lookup (obs::counter/gauge/histogram) takes a mutex; call sites resolve
// their instruments once (constructor member, function-local static) and
// record through the reference. snapshot() renders every instrument to a
// stable text format and JSON; ADEPT_METRICS_FILE=path dumps the JSON at
// process exit (the activation static lives in metrics.cpp).
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adept::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  // Bucket geometry: values below 2^kSubBits get unit-width buckets; above,
  // each power-of-two range splits into 2^kSubBits sub-buckets, bounding
  // relative error by 2^-kSubBits. 960 buckets cover all of int64.
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = (64 - kSubBits) * kSub;

  // One relaxed fetch_add; negative samples clamp to 0.
  void record(std::int64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  // Nearest-rank quantile with linear interpolation inside the matched
  // bucket; q clamps to [0, 1]. 0 when empty.
  double quantile(double q) const;
  // Bucket-midpoint mean / top-bucket-edge max: within one bucket width
  // (<= 6.25%) of the exact values.
  double approx_mean() const;
  double approx_max() const;

  static int bucket_index(std::int64_t v) {
    if (v < 0) v = 0;
    const auto u = static_cast<std::uint64_t>(v);
    if (u < static_cast<std::uint64_t>(kSub)) return static_cast<int>(u);
    const int e = 63 - std::countl_zero(u);
    const int sub = static_cast<int>((u >> (e - kSubBits)) - kSub);
    return (e - kSubBits + 1) * kSub + sub;
  }
  // Bucket bounds as doubles (the top bucket's edge exceeds int64).
  static double bucket_lo(int idx);
  static double bucket_hi(int idx);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// Get-or-create by name. The first caller fixes the instrument type for
// that name; reuse the exact name only with the same accessor.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

struct CounterSnap {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnap {
  std::string name;
  double value = 0;
};
struct HistogramSnap {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0, p90 = 0, p99 = 0, mean = 0, max = 0;
};

// Point-in-time copy of every instrument, sorted by name (the stable order
// both renderings rely on).
struct MetricsSnapshot {
  std::vector<CounterSnap> counters;
  std::vector<GaugeSnap> gauges;
  std::vector<HistogramSnap> histograms;

  const CounterSnap* find_counter(std::string_view name) const;
  const GaugeSnap* find_gauge(std::string_view name) const;
  const HistogramSnap* find_histogram(std::string_view name) const;

  // One instrument per line: "counter <name> <value>", "gauge <name> <v>",
  // "histogram <name> count=N p50=... p90=... p99=... mean=... max=...".
  std::string to_text() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
  std::string to_json() const;
};

MetricsSnapshot snapshot();

// Write snapshot().to_json() to `path`; false on I/O failure.
bool dump_metrics(const std::string& path);

// Records the microseconds between construction and destruction into a
// histogram. For ms-scale sections (train epochs, search steps) where two
// clock reads are negligible; hot paths derive durations from timestamps
// they already take. Pass nullptr to disable (e.g. non-root ranks).
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& h) : ScopedTimerUs(&h) {}
  explicit ScopedTimerUs(Histogram* h) : h_(h) {
    if (h_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerUs() {
    if (h_ != nullptr) {
      h_->record(std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0_)
                     .count());
    }
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace adept::obs
