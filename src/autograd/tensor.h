// Tape-based reverse-mode automatic differentiation over dense float tensors.
//
// This is the numerical engine underneath every trainable component in the
// repository: NN layers, the ADEPT SuperMesh, the ALM permutation search, and
// the footprint penalty. The design is a classic define-by-run tape:
//
//   * A Tensor is a shared handle to a TensorImpl holding contiguous float
//     data, an optional gradient buffer, the parent tensors it was computed
//     from, and a backward closure that scatters the output gradient into the
//     parents' gradient buffers.
//   * Operators (see ops.h) build the graph eagerly. Tensor::backward() runs
//     a topological sort from the root and invokes each backward closure once.
//   * GradMode/NoGradGuard disable graph construction during evaluation.
//
// Gradients accumulate (+=) so shared subexpressions are handled naturally;
// call zero_grad() (or Optimizer::zero_grad) between steps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace adept::ag {

struct TensorImpl;

// Per-thread switch for graph construction (mirrors torch.no_grad()). Each
// thread starts with tracking enabled; NoGradGuard only affects its own
// thread, so concurrent no-grad readers never disable tracking elsewhere.
struct GradMode {
  static bool enabled();
  static void set_enabled(bool on);
};

// RAII guard that disables gradient tracking in its scope.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

// Shared-ownership handle to a node in the autodiff graph.
class Tensor {
 public:
  Tensor() = default;  // empty handle; defined() is false

  // ---- factories -------------------------------------------------------
  static Tensor zeros(std::vector<std::int64_t> shape, bool requires_grad = false);
  static Tensor full(std::vector<std::int64_t> shape, float value,
                     bool requires_grad = false);
  static Tensor from_data(std::vector<std::int64_t> shape, std::vector<float> data,
                          bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  // Identity matrix [n, n].
  static Tensor eye(std::int64_t n, bool requires_grad = false);

  // ---- structure -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const std::vector<std::int64_t>& shape() const;
  std::int64_t numel() const;
  std::int64_t dim(std::size_t i) const;
  std::size_t ndim() const;
  bool requires_grad() const;
  void set_requires_grad(bool rg);

  // ---- data access -----------------------------------------------------
  std::vector<float>& data();
  const std::vector<float>& data() const;
  // Gradient buffer; allocated (zero-filled) on first access.
  std::vector<float>& grad();
  bool has_grad() const;
  void zero_grad();
  // Value of a single-element tensor.
  float item() const;
  // 2-D element accessors (row-major).
  float at(std::int64_t r, std::int64_t c) const;
  void set_at(std::int64_t r, std::int64_t c, float v);

  // ---- autodiff --------------------------------------------------------
  // Backpropagate from this tensor. If it is not a scalar, seed_grad must be
  // supplied with numel() entries.
  void backward(const std::vector<float>* seed_grad = nullptr) const;
  // Drop graph edges (parents + backward fn), keeping data. Used by
  // optimizers to make parameters leaves again after in-place updates.
  void detach_();

  TensorImpl* impl() const { return impl_.get(); }
  std::shared_ptr<TensorImpl> impl_ptr() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// The node payload. Public because ops.h / custom ops construct these.
struct TensorImpl {
  std::vector<float> data;
  std::vector<float> grad;           // empty until touched
  std::vector<std::int64_t> shape;
  bool requires_grad = false;
  std::vector<Tensor> parents;       // graph edges (empty for leaves)
  // Scatters this->grad into the parents' grads. May be empty for leaves.
  std::function<void(TensorImpl&)> backward_fn;

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (auto d : shape) n *= d;
    return n;
  }
  void ensure_grad() {
    if (grad.empty()) grad.assign(data.size(), 0.0f);
  }
};

// Construct a leaf tensor.
Tensor make_tensor(std::vector<float> data, std::vector<std::int64_t> shape,
                   bool requires_grad);

// Construct an op-result node. `backward` receives the result impl (whose
// .grad is populated) and must accumulate into the parents' grads; it is only
// attached when gradients are being tracked and some parent requires grad.
Tensor make_op(std::vector<float> data, std::vector<std::int64_t> shape,
               std::vector<Tensor> parents,
               std::function<void(TensorImpl&)> backward);

// Throws std::invalid_argument with `msg` when `cond` is false. Used by ops
// for shape validation (catch errors early per CppCoreGuidelines P.7).
void check(bool cond, const std::string& msg);

namespace debug {
// Monotonic count of op nodes constructed by make_op since process start.
// Tests diff it across a call to assert how many tape nodes an operator
// creates (e.g. fused cmatmul: 1 compute node + 2 plane views).
std::size_t op_nodes_created();
}  // namespace debug

}  // namespace adept::ag
