// Numerical gradient checking for tests.
//
// Compares analytic gradients from the tape against central finite
// differences. Header-only; used by the gtest suites.
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "autograd/tensor.h"

namespace adept::ag {

struct GradcheckResult {
  bool ok = true;
  double max_abs_err = 0.0;
  std::string detail;
};

// `fn` maps the given inputs to a scalar tensor. Each input that requires
// grad is perturbed elementwise; analytic grads must match central
// differences within atol + rtol * |numeric|.
inline GradcheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double eps = 1e-3, double atol = 5e-3,
    double rtol = 5e-2) {
  GradcheckResult result;
  // Analytic pass.
  for (auto& t : inputs) t.zero_grad();
  Tensor out = fn(inputs);
  out.backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (auto& t : inputs) {
    analytic.push_back(t.requires_grad() ? t.grad() : std::vector<float>());
  }
  // Numeric pass.
  for (std::size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    if (!t.requires_grad()) continue;
    for (std::size_t i = 0; i < t.data().size(); ++i) {
      const float orig = t.data()[i];
      t.data()[i] = orig + static_cast<float>(eps);
      const double fp = fn(inputs).item();
      t.data()[i] = orig - static_cast<float>(eps);
      const double fm = fn(inputs).item();
      t.data()[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      const double diff = std::fabs(numeric - analytic[ti][i]);
      result.max_abs_err = std::max(result.max_abs_err, diff);
      if (diff > atol + rtol * std::fabs(numeric)) {
        result.ok = false;
        result.detail = "input " + std::to_string(ti) + " elem " +
                        std::to_string(i) + ": analytic " +
                        std::to_string(analytic[ti][i]) + " vs numeric " +
                        std::to_string(numeric);
        return result;
      }
    }
  }
  return result;
}

}  // namespace adept::ag
