#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "backend/kernels.h"

namespace adept::ag {

namespace be = ::adept::backend;

namespace {

// Supported broadcast layouts for binary elementwise ops.
enum class Bcast { same, a_scalar, b_scalar, b_row, b_col, a_row, a_col };

Bcast classify(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) return Bcast::same;
  if (b.numel() == 1) return Bcast::b_scalar;
  if (a.numel() == 1) return Bcast::a_scalar;
  // Row broadcast treats any >= 2-D tensor as [numel/m, m] over its last
  // dim (covers the [B,N,M] + [1,M] bias add of batched matmul); column
  // broadcast stays strictly 2-D.
  if (a.ndim() >= 2 && (b.ndim() == 1 || b.ndim() == 2)) {
    const std::int64_t m = a.dim(a.ndim() - 1);
    const std::int64_t bn = b.ndim() == 2 ? b.dim(0) : 1;
    const std::int64_t bm = b.ndim() == 2 ? b.dim(1) : b.dim(0);
    if (bn == 1 && bm == m) return Bcast::b_row;
    if (a.ndim() == 2 && bn == a.dim(0) && bm == 1) return Bcast::b_col;
  }
  if (b.ndim() >= 2 && (a.ndim() == 1 || a.ndim() == 2)) {
    const std::int64_t m = b.dim(b.ndim() - 1);
    const std::int64_t an = a.ndim() == 2 ? a.dim(0) : 1;
    const std::int64_t am = a.ndim() == 2 ? a.dim(1) : a.dim(0);
    if (an == 1 && am == m) return Bcast::a_row;
    if (b.ndim() == 2 && an == b.dim(0) && am == 1) return Bcast::a_col;
  }
  check(false, "binary op: unsupported broadcast");
  return Bcast::same;  // unreachable
}

// Index of the broadcast operand's element feeding output element i.
inline std::size_t bidx(Bcast k, std::size_t i, std::int64_t m) {
  switch (k) {
    case Bcast::b_scalar:
    case Bcast::a_scalar:
      return 0;
    case Bcast::b_row:
    case Bcast::a_row:
      return i % static_cast<std::size_t>(m);
    case Bcast::b_col:
    case Bcast::a_col:
      return i / static_cast<std::size_t>(m);
    default:
      return i;
  }
}

// Generic binary elementwise with broadcast; fwd(a_i, b_i) and partials.
template <typename Fwd, typename DfA, typename DfB>
Tensor binary_op(const Tensor& a, const Tensor& b, Fwd fwd, DfA dfa, DfB dfb) {
  const Bcast kind = classify(a, b);
  const bool b_is_bcast =
      kind == Bcast::b_scalar || kind == Bcast::b_row || kind == Bcast::b_col;
  const bool a_is_bcast =
      kind == Bcast::a_scalar || kind == Bcast::a_row || kind == Bcast::a_col;
  const Tensor& big = a_is_bcast ? b : a;
  const std::int64_t m =
      big.ndim() >= 2 ? big.dim(big.ndim() - 1) : big.numel();

  const auto& ad = a.data();
  const auto& bd = b.data();
  const std::size_t n = static_cast<std::size_t>(big.numel());
  std::vector<float> out(n);
  if (kind == Bcast::same) {
    be::zip(n, ad.data(), bd.data(), out.data(), fwd);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t ia = a_is_bcast ? bidx(kind, i, m) : i;
      const std::size_t ib = b_is_bcast ? bidx(kind, i, m) : i;
      out[i] = fwd(ad[ia], bd[ib]);
    }
  }
  auto shape = big.shape();
  return make_op(std::move(out), shape, {a, b},
                 [a, b, kind, a_is_bcast, b_is_bcast, m, dfa, dfb](TensorImpl& o) {
                   const auto& ad = a.data();
                   const auto& bd = b.data();
                   if (kind == Bcast::same) {
                     // Same-shape grads touch disjoint indices: fused+threaded.
                     const float* gp = o.grad.data();
                     if (a.requires_grad()) {
                       auto& ga = const_cast<Tensor&>(a).grad();
                       float* gap = ga.data();
                       const float* ap = ad.data();
                       const float* bp = bd.data();
                       be::for_each_index(
                           static_cast<std::int64_t>(o.grad.size()),
                           [=](std::int64_t i) { gap[i] += gp[i] * dfa(ap[i], bp[i]); });
                     }
                     if (b.requires_grad()) {
                       auto& gb = const_cast<Tensor&>(b).grad();
                       float* gbp = gb.data();
                       const float* ap = ad.data();
                       const float* bp = bd.data();
                       be::for_each_index(
                           static_cast<std::int64_t>(o.grad.size()),
                           [=](std::int64_t i) { gbp[i] += gp[i] * dfb(ap[i], bp[i]); });
                     }
                     return;
                   }
                   // Broadcast grads reduce many outputs into one slot; keep
                   // the serial accumulation order.
                   if (a.requires_grad()) {
                     auto& ga = const_cast<Tensor&>(a).grad();
                     for (std::size_t i = 0; i < o.grad.size(); ++i) {
                       const std::size_t ia = a_is_bcast ? bidx(kind, i, m) : i;
                       const std::size_t ib = b_is_bcast ? bidx(kind, i, m) : i;
                       ga[ia] += o.grad[i] * dfa(ad[ia], bd[ib]);
                     }
                   }
                   if (b.requires_grad()) {
                     auto& gb = const_cast<Tensor&>(b).grad();
                     for (std::size_t i = 0; i < o.grad.size(); ++i) {
                       const std::size_t ia = a_is_bcast ? bidx(kind, i, m) : i;
                       const std::size_t ib = b_is_bcast ? bidx(kind, i, m) : i;
                       gb[ib] += o.grad[i] * dfb(ad[ia], bd[ib]);
                     }
                   }
                 });
}

// Generic unary elementwise: fwd(x) with local derivative df(x, y).
template <typename Fwd, typename Df>
Tensor unary_op(const Tensor& a, Fwd fwd, Df df) {
  const auto& ad = a.data();
  std::vector<float> out(ad.size());
  be::map(ad.size(), ad.data(), out.data(), fwd);
  return make_op(std::move(out), a.shape(), {a}, [a, df](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    float* gap = ga.data();
    const float* ap = a.data().data();
    const float* gp = o.grad.data();
    const float* yp = o.data.data();
    be::for_each_index(static_cast<std::int64_t>(o.grad.size()),
                       [=](std::int64_t i) { gap[i] += gp[i] * df(ap[i], yp[i]); });
  });
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b,
      [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor neg(const Tensor& a) {
  return unary_op(a, [](float x) { return -x; },
                  [](float, float) { return -1.0f; });
}

Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); },
                  [](float, float y) { return y; });
}

Tensor log(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float x, float) { return 1.0f / std::max(x, 1e-12f); });
}

Tensor sin(const Tensor& a) {
  return unary_op(a, [](float x) { return std::sin(x); },
                  [](float x, float) { return std::cos(x); });
}

Tensor cos(const Tensor& a) {
  return unary_op(a, [](float x) { return std::cos(x); },
                  [](float x, float) { return -std::sin(x); });
}

Tensor sqrt(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float, float y) { return y > 0.0f ? 0.5f / y : 0.0f; });
}

Tensor abs(const Tensor& a) {
  return unary_op(a, [](float x) { return std::fabs(x); },
                  [](float x, float) {
                    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
                  });
}

Tensor square(const Tensor& a) {
  return unary_op(a, [](float x) { return x * x; },
                  [](float x, float) { return 2.0f * x; });
}

Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? x : 0.0f; },
                  [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor tanh_t(const Tensor& a) {
  return unary_op(a, [](float x) { return std::tanh(x); },
                  [](float, float y) { return 1.0f - y * y; });
}

Tensor reciprocal(const Tensor& a) {
  auto safe = [](float x) {
    const float ax = std::fabs(x);
    if (ax < 1e-12f) return x < 0.0f ? -1e-12f : 1e-12f;
    return x;
  };
  return unary_op(
      a, [safe](float x) { return 1.0f / safe(x); },
      [safe](float x, float) {
        const float s = safe(x);
        return -1.0f / (s * s);
      });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x + s; },
                  [](float, float) { return 1.0f; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x * s; },
                  [s](float, float) { return s; });
}

Tensor pow_scalar(const Tensor& a, float p) {
  return unary_op(
      a, [p](float x) { return std::pow(x, p); },
      [p](float x, float) {
        return p * std::pow(std::max(x, 1e-12f), p - 1.0f);
      });
}

Tensor round_ste(const Tensor& a) {
  return unary_op(a, [](float x) { return std::round(x); },
                  [](float, float) { return 1.0f; });
}

Tensor ste_replace(const Tensor& a, std::vector<float> forward_values) {
  check(forward_values.size() == a.data().size(), "ste_replace: size mismatch");
  return make_op(std::move(forward_values), a.shape(), {a}, [a](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    for (std::size_t i = 0; i < o.grad.size(); ++i) ga[i] += o.grad[i];
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.ndim() == 2 && b.ndim() == 2, "matmul: expects 2-D tensors");
  const std::int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  check(b.dim(0) == k, "matmul: inner dims mismatch");
  std::vector<float> out(static_cast<std::size_t>(n * m));
  be::gemm(be::Trans::N, be::Trans::N, n, m, k, 1.0f, a.data().data(), k,
           b.data().data(), m, 0.0f, out.data(), m);
  return make_op(std::move(out), {n, m}, {a, b}, [a, b, n, k, m](TensorImpl& o) {
    // Both grads are gemms against the logically transposed operand; no
    // transposed Tensor is built on the tape — the kernel gathers blocked
    // panels internally (bounded scratch, see backend gemm).
    if (a.requires_grad()) {
      // dA += dO @ B^T : [n,m] x [m,k]
      auto& ga = const_cast<Tensor&>(a).grad();
      be::gemm(be::Trans::N, be::Trans::T, n, k, m, 1.0f, o.grad.data(), m,
               b.data().data(), m, 1.0f, ga.data(), k);
    }
    if (b.requires_grad()) {
      // dB += A^T @ dO : [k,n] x [n,m]
      auto& gb = const_cast<Tensor&>(b).grad();
      be::gemm(be::Trans::T, be::Trans::N, k, m, n, 1.0f, a.data().data(), k,
               o.grad.data(), m, 1.0f, gb.data(), m);
    }
  });
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  check(a.ndim() == 3 && b.ndim() == 2, "bmm: expects [B,N,K] x [K,M]");
  const std::int64_t bt = a.dim(0), n = a.dim(1), k = a.dim(2), m = b.dim(1);
  check(b.dim(0) == k, "bmm: inner dims mismatch");
  std::vector<float> out(static_cast<std::size_t>(bt * n * m));
  be::gemm_batched(bt, n, m, k, a.data().data(), n * k, k, be::Trans::N,
                   b.data().data(), m, 0.0f, out.data(), n * m, m);
  return make_op(std::move(out), {bt, n, m}, {a, b},
                 [a, b, bt, n, k, m](TensorImpl& o) {
                   if (a.requires_grad()) {
                     // dA[i] += dO[i] @ B^T, all batches through one call.
                     auto& ga = const_cast<Tensor&>(a).grad();
                     be::gemm_batched(bt, n, k, m, o.grad.data(), n * m, m,
                                      be::Trans::T, b.data().data(), m, 1.0f,
                                      ga.data(), n * k, k);
                   }
                   if (b.requires_grad()) {
                     // dB += sum_i A[i]^T dO[i] == flatten(A)^T @ flatten(dO):
                     // contiguous batches collapse into one [B*N,K]^T gemm.
                     auto& gb = const_cast<Tensor&>(b).grad();
                     be::gemm(be::Trans::T, be::Trans::N, k, m, bt * n, 1.0f,
                              a.data().data(), k, o.grad.data(), m, 1.0f,
                              gb.data(), m);
                   }
                 });
}

Tensor transpose(const Tensor& a) {
  check(a.ndim() == 2, "transpose: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n * m));
  const float* ad = a.data().data();
  float* op = out.data();
  be::for_each_index(
      m, [=](std::int64_t j) {
        for (std::int64_t i = 0; i < n; ++i) op[j * n + i] = ad[i * m + j];
      },
      /*grain=*/std::max<std::int64_t>(1, 2048 / std::max<std::int64_t>(n, 1)));
  return make_op(std::move(out), {m, n}, {a}, [a, n, m](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    float* gap = ga.data();
    const float* gp = o.grad.data();
    be::for_each_index(
        n, [=](std::int64_t i) {
          for (std::int64_t j = 0; j < m; ++j) gap[i * m + j] += gp[j * n + i];
        },
        /*grain=*/std::max<std::int64_t>(1, 2048 / std::max<std::int64_t>(m, 1)));
  });
}

Tensor reshape(const Tensor& a, std::vector<std::int64_t> shape) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  check(n == a.numel(), "reshape: numel mismatch");
  return make_op(a.data(), std::move(shape), {a}, [a](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    for (std::size_t i = 0; i < o.grad.size(); ++i) ga[i] += o.grad[i];
  });
}

Tensor diag(const Tensor& v) {
  const std::int64_t k = v.numel();
  std::vector<float> out(static_cast<std::size_t>(k * k), 0.0f);
  const auto& vd = v.data();
  for (std::int64_t i = 0; i < k; ++i) out[static_cast<std::size_t>(i * k + i)] = vd[static_cast<std::size_t>(i)];
  return make_op(std::move(out), {k, k}, {v}, [v, k](TensorImpl& o) {
    if (!v.requires_grad()) return;
    auto& gv = const_cast<Tensor&>(v).grad();
    for (std::int64_t i = 0; i < k; ++i) {
      gv[static_cast<std::size_t>(i)] += o.grad[static_cast<std::size_t>(i * k + i)];
    }
  });
}

Tensor diag_part(const Tensor& m) {
  check(m.ndim() == 2 && m.dim(0) == m.dim(1), "diag_part: expects square");
  const std::int64_t k = m.dim(0);
  std::vector<float> out(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) out[static_cast<std::size_t>(i)] = m.at(i, i);
  return make_op(std::move(out), {k}, {m}, [m, k](TensorImpl& o) {
    if (!m.requires_grad()) return;
    auto& gm = const_cast<Tensor&>(m).grad();
    for (std::int64_t i = 0; i < k; ++i) {
      gm[static_cast<std::size_t>(i * k + i)] += o.grad[static_cast<std::size_t>(i)];
    }
  });
}

Tensor sum(const Tensor& a) {
  const double acc = be::reduce_sum(a.data().data(), a.data().size());
  return make_op({static_cast<float>(acc)}, {1}, {a}, [a](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    float* gap = ga.data();
    const float g = o.grad[0];
    be::for_each_index(static_cast<std::int64_t>(ga.size()),
                       [=](std::int64_t i) { gap[i] += g; });
  });
}

Tensor mean(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return mul_scalar(sum(a), inv);
}

Tensor row_sum(const Tensor& a) {
  check(a.ndim() == 2, "row_sum: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n), 0.0f);
  const float* ad = a.data().data();
  float* op = out.data();
  const std::int64_t row_grain = std::max<std::int64_t>(1, 2048 / std::max<std::int64_t>(m, 1));
  be::for_each_index(
      n,
      [=](std::int64_t i) {
        double acc = 0.0;
        for (std::int64_t j = 0; j < m; ++j) acc += ad[i * m + j];
        op[i] = static_cast<float>(acc);
      },
      row_grain);
  return make_op(std::move(out), {n, 1}, {a}, [a, n, m, row_grain](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    float* gap = ga.data();
    const float* gp = o.grad.data();
    be::for_each_index(
        n,
        [=](std::int64_t i) {
          const float g = gp[i];
          for (std::int64_t j = 0; j < m; ++j) gap[i * m + j] += g;
        },
        row_grain);
  });
}

Tensor col_sum(const Tensor& a) {
  check(a.ndim() == 2, "col_sum: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  std::vector<float> out(static_cast<std::size_t>(m), 0.0f);
  const auto& ad = a.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) {
      out[static_cast<std::size_t>(j)] += ad[static_cast<std::size_t>(i * m + j)];
    }
  }
  return make_op(std::move(out), {1, m}, {a}, [a, n, m](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < m; ++j) {
        ga[static_cast<std::size_t>(i * m + j)] += o.grad[static_cast<std::size_t>(j)];
      }
    }
  });
}

Tensor tile_col_sum(const Tensor& a) {
  check(a.ndim() == 3, "tile_col_sum: expects [T,N,M]");
  const std::int64_t t = a.dim(0), n = a.dim(1), m = a.dim(2);
  std::vector<float> out(static_cast<std::size_t>(t * m), 0.0f);
  {
    const float* ad = a.data().data();
    float* op = out.data();
    be::for_each_index(
        t,
        [=](std::int64_t ti) {
          const float* tile = ad + ti * n * m;
          float* orow = op + ti * m;
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < m; ++j) orow[j] += tile[i * m + j];
          }
        },
        /*grain=*/1);
  }
  return make_op(std::move(out), {t, m}, {a}, [a, t, n, m](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    float* gap = ga.data();
    const float* gp = o.grad.data();
    be::for_each_index(
        t,
        [=](std::int64_t ti) {
          float* gtile = gap + ti * n * m;
          const float* grow = gp + ti * m;
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < m; ++j) gtile[i * m + j] += grow[j];
          }
        },
        /*grain=*/1);
  });
}

Tensor bscale_cols(const Tensor& a, const Tensor& s) {
  check(a.ndim() == 3, "bscale_cols: expects [T,N,M]");
  const std::int64_t t = a.dim(0), n = a.dim(1), m = a.dim(2);
  check(s.numel() == t * m && s.dim(0) == t, "bscale_cols: s must be [T,M]");
  const auto& ad = a.data();
  std::vector<float> out(ad.size());
  {
    const float* ap = ad.data();
    const float* sp = s.data().data();
    float* op = out.data();
    be::for_each_index(static_cast<std::int64_t>(ad.size()),
                       [=](std::int64_t idx) {
                         const std::int64_t ti = idx / (n * m);
                         op[idx] = ap[idx] * sp[ti * m + idx % m];
                       });
  }
  return make_op(std::move(out), a.shape(), {a, s}, [a, s, t, n, m](TensorImpl& o) {
    const float* g = o.grad.data();
    if (a.requires_grad()) {
      auto& ga = const_cast<Tensor&>(a).grad();
      float* gap = ga.data();
      const float* sp = s.data().data();
      be::for_each_index(static_cast<std::int64_t>(o.grad.size()),
                         [=](std::int64_t idx) {
                           const std::int64_t ti = idx / (n * m);
                           gap[idx] += g[idx] * sp[ti * m + idx % m];
                         });
    }
    if (s.requires_grad()) {
      // Each (t,j) slot owns its reduction; rows accumulate in ascending
      // order, matching mul's [N,M] x [1,M] broadcast backward per slot.
      auto& gs = const_cast<Tensor&>(s).grad();
      float* gsp = gs.data();
      const float* ap = a.data().data();
      be::for_each_index(
          t * m,
          [=](std::int64_t slot) {
            const std::int64_t ti = slot / m, j = slot % m;
            const float* atile = ap + ti * n * m;
            const float* gtile = g + ti * n * m;
            float* dst = gsp + slot;
            for (std::int64_t i = 0; i < n; ++i) {
              *dst += gtile[i * m + j] * atile[i * m + j];
            }
          },
          /*grain=*/1);
    }
  });
}

Tensor row_l2_norm(const Tensor& a, float eps) {
  Tensor sq = square(a);
  Tensor s = row_sum(sq);
  return sqrt(add_scalar(s, eps));
}

Tensor col_l2_norm(const Tensor& a, float eps) {
  Tensor sq = square(a);
  Tensor s = col_sum(sq);
  return sqrt(add_scalar(s, eps));
}

Tensor softmax_rows(const Tensor& a) {
  check(a.ndim() == 2, "softmax_rows: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n * m));
  const std::int64_t row_grain = std::max<std::int64_t>(1, 1024 / std::max<std::int64_t>(m, 1));
  // Dispatched row-softmax: SIMD levels vectorize the max/exp/normalize
  // passes, the scalar level keeps the historical double-accumulator loop.
  be::softmax_rows(n, m, a.data().data(), out.data());
  return make_op(std::move(out), {n, m}, {a}, [a, n, m, row_grain](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    float* gap = ga.data();
    const float* gp = o.grad.data();
    const float* yp = o.data.data();
    // dx = y * (dy - sum_j dy_j y_j) per row
    be::for_each_index(
        n,
        [=](std::int64_t i) {
          double dot = 0.0;
          for (std::int64_t j = 0; j < m; ++j) {
            dot += static_cast<double>(gp[i * m + j]) * yp[i * m + j];
          }
          for (std::int64_t j = 0; j < m; ++j) {
            gap[i * m + j] += yp[i * m + j] * (gp[i * m + j] - static_cast<float>(dot));
          }
        },
        row_grain);
  });
}

Tensor log_softmax_rows(const Tensor& a) {
  check(a.ndim() == 2, "log_softmax_rows: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n * m));
  const std::int64_t row_grain = std::max<std::int64_t>(1, 1024 / std::max<std::int64_t>(m, 1));
  be::log_softmax_rows(n, m, a.data().data(), out.data());
  return make_op(std::move(out), {n, m}, {a}, [a, n, m, row_grain](TensorImpl& o) {
    if (!a.requires_grad()) return;
    auto& ga = const_cast<Tensor&>(a).grad();
    float* gap = ga.data();
    const float* gp = o.grad.data();
    const float* yp = o.data.data();
    be::for_each_index(
        n,
        [=](std::int64_t i) {
          double gsum = 0.0;
          for (std::int64_t j = 0; j < m; ++j) gsum += gp[i * m + j];
          for (std::int64_t j = 0; j < m; ++j) {
            gap[i * m + j] += gp[i * m + j] - std::exp(yp[i * m + j]) * static_cast<float>(gsum);
          }
        },
        row_grain);
  });
}

Tensor cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  check(logits.ndim() == 2, "cross_entropy: expects 2-D logits");
  const std::int64_t n = logits.dim(0), m = logits.dim(1);
  check(static_cast<std::int64_t>(labels.size()) == n, "cross_entropy: label count");
  Tensor lsm = log_softmax_rows(logits);
  // Mean negative log-likelihood via a custom gather op.
  const auto& ld = lsm.data();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc -= ld[static_cast<std::size_t>(i * m + labels[static_cast<std::size_t>(i)])];
  }
  const float loss = static_cast<float>(acc / static_cast<double>(n));
  return make_op({loss}, {1}, {lsm}, [lsm, labels, n, m](TensorImpl& o) {
    if (!lsm.requires_grad()) return;
    auto& g = const_cast<Tensor&>(lsm).grad();
    const float scale = o.grad[0] / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      g[static_cast<std::size_t>(i * m + labels[static_cast<std::size_t>(i)])] -= scale;
    }
  });
}

Tensor index(const Tensor& a, std::int64_t i) {
  check(i >= 0 && i < a.numel(), "index: out of range");
  return make_op({a.data()[static_cast<std::size_t>(i)]}, {1}, {a},
                 [a, i](TensorImpl& o) {
                   if (!a.requires_grad()) return;
                   const_cast<Tensor&>(a).grad()[static_cast<std::size_t>(i)] += o.grad[0];
                 });
}

Tensor slice2d(const Tensor& a, std::int64_t r0, std::int64_t rows,
               std::int64_t c0, std::int64_t cols) {
  check(a.ndim() == 2, "slice2d: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  check(r0 >= 0 && c0 >= 0 && r0 + rows <= n && c0 + cols <= m, "slice2d: bounds");
  std::vector<float> out(static_cast<std::size_t>(rows * cols));
  const auto& ad = a.data();
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      out[static_cast<std::size_t>(i * cols + j)] =
          ad[static_cast<std::size_t>((r0 + i) * m + (c0 + j))];
    }
  }
  return make_op(std::move(out), {rows, cols}, {a},
                 [a, r0, c0, rows, cols, m](TensorImpl& o) {
                   if (!a.requires_grad()) return;
                   auto& ga = const_cast<Tensor&>(a).grad();
                   for (std::int64_t i = 0; i < rows; ++i) {
                     for (std::int64_t j = 0; j < cols; ++j) {
                       ga[static_cast<std::size_t>((r0 + i) * m + (c0 + j))] +=
                           o.grad[static_cast<std::size_t>(i * cols + j)];
                     }
                   }
                 });
}

Tensor block_matrix(const std::vector<Tensor>& tiles, std::int64_t p, std::int64_t q) {
  check(!tiles.empty() && static_cast<std::int64_t>(tiles.size()) == p * q,
        "block_matrix: tile count mismatch");
  const std::int64_t k = tiles[0].dim(0);
  for (const auto& t : tiles) {
    check(t.ndim() == 2 && t.dim(0) == k && t.dim(1) == k,
          "block_matrix: tiles must be square and uniform");
  }
  const std::int64_t rows = p * k, cols = q * k;
  std::vector<float> out(static_cast<std::size_t>(rows * cols));
  for (std::int64_t bp = 0; bp < p; ++bp) {
    for (std::int64_t bq = 0; bq < q; ++bq) {
      const auto& td = tiles[static_cast<std::size_t>(bp * q + bq)].data();
      for (std::int64_t i = 0; i < k; ++i) {
        for (std::int64_t j = 0; j < k; ++j) {
          out[static_cast<std::size_t>((bp * k + i) * cols + bq * k + j)] =
              td[static_cast<std::size_t>(i * k + j)];
        }
      }
    }
  }
  std::vector<Tensor> parents = tiles;
  return make_op(std::move(out), {rows, cols}, parents,
                 [tiles, p, q, k, cols](TensorImpl& o) {
                   for (std::int64_t bp = 0; bp < p; ++bp) {
                     for (std::int64_t bq = 0; bq < q; ++bq) {
                       const Tensor& t = tiles[static_cast<std::size_t>(bp * q + bq)];
                       if (!t.requires_grad()) continue;
                       auto& gt = const_cast<Tensor&>(t).grad();
                       for (std::int64_t i = 0; i < k; ++i) {
                         for (std::int64_t j = 0; j < k; ++j) {
                           gt[static_cast<std::size_t>(i * k + j)] += o.grad[static_cast<std::size_t>(
                               (bp * k + i) * cols + bq * k + j)];
                         }
                       }
                     }
                   }
                 });
}

Tensor block_matrix(const Tensor& stacked, std::int64_t p, std::int64_t q) {
  check(stacked.ndim() == 3 && stacked.dim(0) == p * q,
        "block_matrix: stacked must be [P*Q,K,K]");
  const std::int64_t k = stacked.dim(1);
  check(stacked.dim(2) == k, "block_matrix: tiles must be square");
  const std::int64_t rows = p * k, cols = q * k;
  std::vector<float> out(static_cast<std::size_t>(rows * cols));
  {
    const float* sd = stacked.data().data();
    float* op = out.data();
    be::for_each_index(
        p * q,
        [=](std::int64_t t) {
          const std::int64_t bp = t / q, bq = t % q;
          const float* tile = sd + t * k * k;
          for (std::int64_t i = 0; i < k; ++i) {
            for (std::int64_t j = 0; j < k; ++j) {
              op[(bp * k + i) * cols + bq * k + j] = tile[i * k + j];
            }
          }
        },
        /*grain=*/1);
  }
  return make_op(std::move(out), {rows, cols}, {stacked},
                 [stacked, p, q, k, cols](TensorImpl& o) {
                   if (!stacked.requires_grad()) return;
                   auto& gs = const_cast<Tensor&>(stacked).grad();
                   float* gsp = gs.data();
                   const float* gp = o.grad.data();
                   be::for_each_index(
                       p * q,
                       [=](std::int64_t t) {
                         const std::int64_t bp = t / q, bq = t % q;
                         float* gtile = gsp + t * k * k;
                         for (std::int64_t i = 0; i < k; ++i) {
                           for (std::int64_t j = 0; j < k; ++j) {
                             gtile[i * k + j] +=
                                 gp[(bp * k + i) * cols + bq * k + j];
                           }
                         }
                       },
                       /*grain=*/1);
                 });
}

Tensor concat_vec(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_vec: empty input");
  std::vector<float> out;
  std::vector<std::int64_t> offsets;
  for (const auto& p : parts) {
    offsets.push_back(static_cast<std::int64_t>(out.size()));
    out.insert(out.end(), p.data().begin(), p.data().end());
  }
  const std::int64_t total = static_cast<std::int64_t>(out.size());
  return make_op(std::move(out), {total}, parts, [parts, offsets](TensorImpl& o) {
    for (std::size_t pi = 0; pi < parts.size(); ++pi) {
      const Tensor& p = parts[pi];
      if (!p.requires_grad()) continue;
      auto& gp = const_cast<Tensor&>(p).grad();
      const std::size_t off = static_cast<std::size_t>(offsets[pi]);
      for (std::size_t i = 0; i < gp.size(); ++i) gp[i] += o.grad[off + i];
    }
  });
}

Tensor im2col(const Tensor& x, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad) {
  check(x.ndim() == 4, "im2col: expects [N,C,H,W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  check(oh > 0 && ow > 0, "im2col: output is empty");
  const std::int64_t cols = c * kh * kw;
  std::vector<float> out(static_cast<std::size_t>(n * oh * ow * cols));
  be::im2col(x.data().data(), n, c, h, w, kh, kw, stride, pad, out.data());
  return make_op(std::move(out), {n * oh * ow, cols}, {x},
                 [x, n, c, h, w, kh, kw, stride, pad](TensorImpl& o) {
                   if (!x.requires_grad()) return;
                   auto& gx = const_cast<Tensor&>(x).grad();
                   be::col2im(o.grad.data(), n, c, h, w, kh, kw, stride, pad,
                              gx.data());
                 });
}

Tensor rows_to_nchw(const Tensor& x, std::int64_t n, std::int64_t oh, std::int64_t ow) {
  check(x.ndim() == 2 && x.dim(0) == n * oh * ow, "rows_to_nchw: shape mismatch");
  const std::int64_t c = x.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n * c * oh * ow));
  const auto& xd = x.data();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t yo = 0; yo < oh; ++yo) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        const std::int64_t row = (ni * oh + yo) * ow + xo;
        for (std::int64_t ci = 0; ci < c; ++ci) {
          out[static_cast<std::size_t>(((ni * c + ci) * oh + yo) * ow + xo)] =
              xd[static_cast<std::size_t>(row * c + ci)];
        }
      }
    }
  }
  return make_op(std::move(out), {n, c, oh, ow}, {x},
                 [x, n, oh, ow, c](TensorImpl& o) {
                   if (!x.requires_grad()) return;
                   auto& gx = const_cast<Tensor&>(x).grad();
                   for (std::int64_t ni = 0; ni < n; ++ni) {
                     for (std::int64_t yo = 0; yo < oh; ++yo) {
                       for (std::int64_t xo = 0; xo < ow; ++xo) {
                         const std::int64_t row = (ni * oh + yo) * ow + xo;
                         for (std::int64_t ci = 0; ci < c; ++ci) {
                           gx[static_cast<std::size_t>(row * c + ci)] += o.grad[static_cast<std::size_t>(
                               ((ni * c + ci) * oh + yo) * ow + xo)];
                         }
                       }
                     }
                   }
                 });
}

Tensor adaptive_avgpool2d(const Tensor& x, std::int64_t out_h, std::int64_t out_w) {
  check(x.ndim() == 4, "adaptive_avgpool2d: expects [N,C,H,W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto bin_start = pool_bin_start;  // shared with the compiled runtime
  const auto bin_end = pool_bin_end;
  std::vector<float> out(static_cast<std::size_t>(n * c * out_h * out_w), 0.0f);
  // Each (n, c) slice owns disjoint input/output planes, so the slice index
  // is the parallel dimension for both directions.
  {
    const float* xp = x.data().data();
    float* op = out.data();
    be::for_each_index(
        n * c,
        [=](std::int64_t slice) {
          const float* xplane = xp + slice * h * w;
          float* oplane = op + slice * out_h * out_w;
          for (std::int64_t yo = 0; yo < out_h; ++yo) {
            const std::int64_t y0 = bin_start(yo, h, out_h), y1 = bin_end(yo, h, out_h);
            for (std::int64_t xo = 0; xo < out_w; ++xo) {
              const std::int64_t x0 = bin_start(xo, w, out_w), x1 = bin_end(xo, w, out_w);
              double acc = 0.0;
              for (std::int64_t yi = y0; yi < y1; ++yi) {
                for (std::int64_t xi = x0; xi < x1; ++xi) {
                  acc += xplane[yi * w + xi];
                }
              }
              oplane[yo * out_w + xo] =
                  static_cast<float>(acc / static_cast<double>((y1 - y0) * (x1 - x0)));
            }
          }
        },
        /*grain=*/1);
  }
  return make_op(std::move(out), {n, c, out_h, out_w}, {x},
                 [x, n, c, h, w, out_h, out_w, bin_start, bin_end](TensorImpl& o) {
                   if (!x.requires_grad()) return;
                   float* gxp = const_cast<Tensor&>(x).grad().data();
                   const float* gp = o.grad.data();
                   be::for_each_index(
                       n * c,
                       [=](std::int64_t slice) {
                         float* gplane = gxp + slice * h * w;
                         const float* goplane = gp + slice * out_h * out_w;
                         for (std::int64_t yo = 0; yo < out_h; ++yo) {
                           const std::int64_t y0 = bin_start(yo, h, out_h), y1 = bin_end(yo, h, out_h);
                           for (std::int64_t xo = 0; xo < out_w; ++xo) {
                             const std::int64_t x0 = bin_start(xo, w, out_w), x1 = bin_end(xo, w, out_w);
                             const float g = goplane[yo * out_w + xo] /
                                             static_cast<float>((y1 - y0) * (x1 - x0));
                             for (std::int64_t yi = y0; yi < y1; ++yi) {
                               for (std::int64_t xi = x0; xi < x1; ++xi) {
                                 gplane[yi * w + xi] += g;
                               }
                             }
                           }
                         }
                       },
                       /*grain=*/1);
                 });
}

Tensor maxpool2d(const Tensor& x, std::int64_t k, std::int64_t stride) {
  check(x.ndim() == 4, "maxpool2d: expects [N,C,H,W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h - k) / stride + 1, ow = (w - k) / stride + 1;
  check(oh > 0 && ow > 0, "maxpool2d: output empty");
  std::vector<float> out(static_cast<std::size_t>(n * c * oh * ow));
  // Winner indices cached for the backward scatter (no re-scan of windows).
  auto argmax = std::make_shared<std::vector<std::int64_t>>(out.size());
  {
    const float* xp = x.data().data();
    float* op = out.data();
    std::int64_t* amp = argmax->data();
    be::for_each_index(
        n * c,
        [=](std::int64_t slice) {
          const float* xplane = xp + slice * h * w;
          for (std::int64_t yo = 0; yo < oh; ++yo) {
            for (std::int64_t xo = 0; xo < ow; ++xo) {
              float best = -std::numeric_limits<float>::infinity();
              std::int64_t best_idx = 0;
              for (std::int64_t ky = 0; ky < k; ++ky) {
                for (std::int64_t kx = 0; kx < k; ++kx) {
                  const std::int64_t yi = yo * stride + ky, xi = xo * stride + kx;
                  const std::int64_t idx = yi * w + xi;
                  if (xplane[idx] > best) {
                    best = xplane[idx];
                    best_idx = idx;
                  }
                }
              }
              const std::int64_t oidx = (slice * oh + yo) * ow + xo;
              op[oidx] = best;
              amp[oidx] = slice * h * w + best_idx;
            }
          }
        },
        /*grain=*/1);
  }
  return make_op(std::move(out), {n, c, oh, ow}, {x},
                 [x, argmax, oh, ow](TensorImpl& o) {
                   if (!x.requires_grad()) return;
                   // Overlapping windows can pick the same input pixel, but
                   // only within one (n, c) plane: slices stay the parallel
                   // dimension, scatter order within a slice is serial.
                   float* gxp = const_cast<Tensor&>(x).grad().data();
                   const float* gp = o.grad.data();
                   const std::int64_t* amp = argmax->data();
                   const std::int64_t plane = oh * ow;
                   be::for_each_index(
                       static_cast<std::int64_t>(o.grad.size()) / plane,
                       [=](std::int64_t slice) {
                         for (std::int64_t i = slice * plane; i < (slice + 1) * plane; ++i) {
                           gxp[amp[i]] += gp[i];
                         }
                       },
                       /*grain=*/1);
                 });
}

Tensor batchnorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   std::vector<float>& running_mean, std::vector<float>& running_var,
                   bool training, float momentum, float eps) {
  check(x.ndim() == 4, "batchnorm2d: expects [N,C,H,W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  check(gamma.numel() == c && beta.numel() == c, "batchnorm2d: affine size");
  check(static_cast<std::int64_t>(running_mean.size()) == c, "batchnorm2d: stats size");
  const std::int64_t cnt = n * h * w;
  auto mean_v = std::make_shared<std::vector<float>>(static_cast<std::size_t>(c));
  auto invstd_v = std::make_shared<std::vector<float>>(static_cast<std::size_t>(c));
  const auto& xd = x.data();
  if (training) {
    float* rm = running_mean.data();
    float* rv = running_var.data();
    float* mv = mean_v->data();
    float* iv = invstd_v->data();
    const float* xp = xd.data();
    // Channels own disjoint stats slots; accumulation within a channel stays
    // in ni-major order, so this is bit-exact vs. the serial loop.
    be::for_each_index(
        c,
        [=](std::int64_t ci) {
          double s = 0.0, s2 = 0.0;
          for (std::int64_t ni = 0; ni < n; ++ni) {
            const float* base = xp + ((ni * c + ci) * h) * w;
            for (std::int64_t i = 0; i < h * w; ++i) {
              const double v = base[i];
              s += v;
              s2 += v * v;
            }
          }
          const double mu = s / static_cast<double>(cnt);
          const double var = std::max(s2 / static_cast<double>(cnt) - mu * mu, 0.0);
          mv[ci] = static_cast<float>(mu);
          iv[ci] = static_cast<float>(1.0 / std::sqrt(var + eps));
          rm[ci] = (1.0f - momentum) * rm[ci] + momentum * static_cast<float>(mu);
          rv[ci] = (1.0f - momentum) * rv[ci] + momentum * static_cast<float>(var);
        },
        /*grain=*/1);
  } else {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      (*mean_v)[static_cast<std::size_t>(ci)] = running_mean[static_cast<std::size_t>(ci)];
      (*invstd_v)[static_cast<std::size_t>(ci)] = static_cast<float>(
          1.0 / std::sqrt(running_var[static_cast<std::size_t>(ci)] + eps));
    }
  }
  std::vector<float> out(xd.size());
  {
    const float* gd = gamma.data().data();
    const float* bd = beta.data().data();
    const float* mv = mean_v->data();
    const float* iv = invstd_v->data();
    const float* xp = xd.data();
    float* op = out.data();
    const std::int64_t plane = h * w;
    be::for_each_index(
        n * c,
        [=](std::int64_t slice) {
          const std::int64_t ci = slice % c;
          const float mu = mv[ci], is = iv[ci], g = gd[ci], b = bd[ci];
          const float* xb = xp + slice * plane;
          float* ob = op + slice * plane;
          for (std::int64_t i = 0; i < plane; ++i) ob[i] = (xb[i] - mu) * is * g + b;
        },
        /*grain=*/std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(plane, 1)));
  }
  return make_op(
      std::move(out), x.shape(), {x, gamma, beta},
      [x, gamma, beta, mean_v, invstd_v, n, c, h, w, cnt, training](TensorImpl& o) {
        const auto& xd = x.data();
        const auto& gd = gamma.data();
        // Pre-compute per-channel reductions of the output gradient. Each
        // channel accumulates in ni-major order into its own slot, so the
        // channel loop is the parallel dimension.
        std::vector<double> sum_dy(static_cast<std::size_t>(c), 0.0);
        std::vector<double> sum_dy_xhat(static_cast<std::size_t>(c), 0.0);
        {
          double* sdp = sum_dy.data();
          double* sxp = sum_dy_xhat.data();
          const float* xp = xd.data();
          const float* gp = o.grad.data();
          const float* mv = mean_v->data();
          const float* iv = invstd_v->data();
          const std::int64_t plane = h * w;
          be::for_each_index(
              c,
              [=](std::int64_t ci) {
                const float mu = mv[ci], is = iv[ci];
                double sd = 0.0, sx = 0.0;
                for (std::int64_t ni = 0; ni < n; ++ni) {
                  const float* xb = xp + ((ni * c + ci) * plane);
                  const float* gb = gp + ((ni * c + ci) * plane);
                  for (std::int64_t i = 0; i < plane; ++i) {
                    const float dy = gb[i];
                    sd += dy;
                    sx += static_cast<double>(dy) * ((xb[i] - mu) * is);
                  }
                }
                sdp[ci] = sd;
                sxp[ci] = sx;
              },
              /*grain=*/1);
        }
        if (gamma.requires_grad()) {
          auto& gg = const_cast<Tensor&>(gamma).grad();
          for (std::int64_t ci = 0; ci < c; ++ci) {
            gg[static_cast<std::size_t>(ci)] +=
                static_cast<float>(sum_dy_xhat[static_cast<std::size_t>(ci)]);
          }
        }
        if (beta.requires_grad()) {
          auto& gb = const_cast<Tensor&>(beta).grad();
          for (std::int64_t ci = 0; ci < c; ++ci) {
            gb[static_cast<std::size_t>(ci)] +=
                static_cast<float>(sum_dy[static_cast<std::size_t>(ci)]);
          }
        }
        if (x.requires_grad()) {
          auto& gx = const_cast<Tensor&>(x).grad();
          const float inv_cnt = 1.0f / static_cast<float>(cnt);
          float* gxp = gx.data();
          const float* xp = xd.data();
          const float* gp = o.grad.data();
          const float* gdp = gd.data();
          const float* mv = mean_v->data();
          const float* iv = invstd_v->data();
          const double* sdp = sum_dy.data();
          const double* sxp = sum_dy_xhat.data();
          const std::int64_t plane = h * w;
          be::for_each_index(
              n * c,
              [=](std::int64_t slice) {
                const std::int64_t ci = slice % c;
                const float mu = mv[ci], is = iv[ci], g = gdp[ci];
                const float sdy = static_cast<float>(sdp[ci]);
                const float sdyx = static_cast<float>(sxp[ci]);
                const float* xb = xp + slice * plane;
                const float* gb = gp + slice * plane;
                float* gxb = gxp + slice * plane;
                for (std::int64_t i = 0; i < plane; ++i) {
                  const float dy = gb[i];
                  if (training) {
                    const float xh = (xb[i] - mu) * is;
                    gxb[i] += g * is * (dy - inv_cnt * sdy - xh * inv_cnt * sdyx);
                  } else {
                    gxb[i] += g * is * dy;
                  }
                }
              },
              /*grain=*/std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(plane, 1)));
        }
      });
}

std::vector<int> argmax_rows(const Tensor& a) {
  check(a.ndim() == 2, "argmax_rows: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  const auto& ad = a.data();
  for (std::int64_t i = 0; i < n; ++i) {
    int best = 0;
    float bv = ad[static_cast<std::size_t>(i * m)];
    for (std::int64_t j = 1; j < m; ++j) {
      const float v = ad[static_cast<std::size_t>(i * m + j)];
      if (v > bv) {
        bv = v;
        best = static_cast<int>(j);
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace adept::ag
