// Complex tensors as (re, im) pairs of real autograd tensors.
//
// Photonic transfer matrices are complex-valued; representing them as two
// real tensors lets a single real-valued tape differentiate through complex
// matrix chains (a complex matmul lowers to four real matmuls). Gradients are
// the standard real-pair gradients, i.e. dL/d(re) and dL/d(im) independently,
// which is exactly what training a real-valued loss requires.
#pragma once

#include "autograd/ops.h"
#include "autograd/tensor.h"

namespace adept::ag {

struct CxTensor {
  Tensor re;
  Tensor im;

  bool defined() const { return re.defined() && im.defined(); }
  const std::vector<std::int64_t>& shape() const { return re.shape(); }
  std::int64_t dim(std::size_t i) const { return re.dim(i); }

  // Complex tensor with zero imaginary part.
  static CxTensor from_real(const Tensor& r);
  static CxTensor zeros(std::vector<std::int64_t> shape);
  static CxTensor eye(std::int64_t n);
};

// (a+bi)(c+di) = (ac-bd) + (ad+bc)i, elementwise with broadcasting.
CxTensor cmul(const CxTensor& a, const CxTensor& b);
CxTensor cadd(const CxTensor& a, const CxTensor& b);
CxTensor csub(const CxTensor& a, const CxTensor& b);
// Complex matrix product via four real matmuls.
CxTensor cmatmul(const CxTensor& a, const CxTensor& b);
// Multiply by a real tensor (broadcasting follows ops.h rules).
CxTensor cscale(const CxTensor& a, const Tensor& s);
CxTensor cscale(const CxTensor& a, float s);
CxTensor conj(const CxTensor& a);
// Conjugate transpose of a 2-D complex tensor.
CxTensor adjoint(const CxTensor& a);
// |z|^2 elementwise (real result).
Tensor cabs2(const CxTensor& a);

// exp(-i*phi) as a complex tensor: (cos phi, -sin phi). The photonic
// phase-shifter response (paper Sec. 2.1).
CxTensor cexp_neg_i(const Tensor& phi);

// Diagonal phase-shifter column R(Phi) = diag(exp(-i*phi_k)) as [K,K].
CxTensor phase_column(const Tensor& phi);

// Directional-coupler column transfer matrix T_b as [K,K] (paper Sec. 3.2).
//
// `t` holds one transmission coefficient per coupler slot. Slot i couples
// waveguides (s + 2i, s + 2i + 1) where s is the start parity. The 2x2 cell
// is [[t, j*sqrt(1-t^2)], [j*sqrt(1-t^2), t]]; t == 1 degenerates to a bar
// (identity) connection. Rows not covered by a slot pass through unchanged.
// Both the real diagonal entries (t) and the imaginary cross terms
// (sqrt(1-t^2)) carry gradients back into `t`.
CxTensor coupler_column(const Tensor& t, std::int64_t k, std::int64_t start);

// Row-wise l2 normalization of a complex matrix (norm over re^2 + im^2).
// Stabilizes relaxed SuperMesh unitaries during search (paper Sec. 3.3.2).
CxTensor row_normalize(const CxTensor& a, float eps = 1e-12f);
CxTensor col_normalize(const CxTensor& a, float eps = 1e-12f);

}  // namespace adept::ag
