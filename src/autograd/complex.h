// Complex tensors as (re, im) pairs of real autograd tensors.
//
// Photonic transfer matrices are complex-valued; representing them as two
// real tensors lets a single real-valued tape differentiate through complex
// matrix chains. Gradients are the standard real-pair gradients, i.e.
// dL/d(re) and dL/d(im) independently, which is exactly what training a
// real-valued loss requires.
//
// The matrix/chain ops are *fused*: `cmatmul` lowers to one backend `cgemm`
// tape node (a packed [2,N,M] grad-routing node plus two plane views, not
// four real matmuls and two combines), and its backward is two
// conjugate-transpose cgemms (dA = G B^H, dB = A^H G). `block_transfer`
// folds a whole photonic block P~ @ T @ R(Phi) into one node whose forward
// is a single real-by-complex gemm with the diagonal phase column applied as
// a column scaling in the kernel epilogue.
#pragma once

#include "autograd/ops.h"
#include "autograd/tensor.h"

namespace adept::ag {

struct CxTensor {
  Tensor re;
  Tensor im;

  bool defined() const { return re.defined() && im.defined(); }
  const std::vector<std::int64_t>& shape() const { return re.shape(); }
  std::int64_t dim(std::size_t i) const { return re.dim(i); }

  // Complex tensor with zero imaginary part.
  static CxTensor from_real(const Tensor& r);
  static CxTensor zeros(std::vector<std::int64_t> shape);
  static CxTensor eye(std::int64_t n);
};

// (a+bi)(c+di) = (ac-bd) + (ad+bc)i, elementwise with broadcasting.
// Same-shape operands run through the fused planar kernel (2 tape nodes);
// broadcast shapes fall back to the real-op composition.
CxTensor cmul(const CxTensor& a, const CxTensor& b);
CxTensor cadd(const CxTensor& a, const CxTensor& b);
CxTensor csub(const CxTensor& a, const CxTensor& b);
// Fused complex matrix product: one cgemm forward, two conjugate-transpose
// cgemms backward. Creates exactly one compute node on the tape (shared by
// the re/im plane views).
CxTensor cmatmul(const CxTensor& a, const CxTensor& b);
// The pre-fusion lowering (four real matmuls + two combines, 6 tape nodes).
// Kept as the reference/baseline for tests and the perf-trajectory bench.
CxTensor cmatmul_unfused(const CxTensor& a, const CxTensor& b);
// Multiply by a real tensor (broadcasting follows ops.h rules).
CxTensor cscale(const CxTensor& a, const Tensor& s);
CxTensor cscale(const CxTensor& a, float s);
CxTensor conj(const CxTensor& a);
// Conjugate transpose of a 2-D complex tensor.
CxTensor adjoint(const CxTensor& a);
// |z|^2 elementwise (real result).
Tensor cabs2(const CxTensor& a);

// exp(-i*phi) as a complex tensor: (cos phi, -sin phi). The photonic
// phase-shifter response (paper Sec. 2.1).
CxTensor cexp_neg_i(const Tensor& phi);

// Diagonal phase-shifter column R(Phi) = diag(exp(-i*phi_k)) as [K,K].
CxTensor phase_column(const Tensor& phi);

// Column phase scaling: out[:, j] = a[:, j] * exp(-i*phi_j), i.e. A @ R(Phi)
// without materializing the diagonal or running a matmul. `phi` holds one
// phase per column ([M] or [1,M]).
CxTensor colphase_scale(const CxTensor& a, const Tensor& phi);

// Fused photonic block transfer P~ @ T @ R(Phi) (paper Eq. 2/6): `p` is the
// real [K,K] (relaxed) permutation, `t` the complex coupler column, `phi`
// the K phases. Forward is one real-by-complex gemm with the phase column
// applied in the kernel epilogue; backward is two real gemm pairs plus the
// analytic phase gradient — one compute node instead of the
// phase_column + cmatmul + 2 real matmuls composition.
CxTensor block_transfer(const Tensor& p, const CxTensor& t, const Tensor& phi);

// Gumbel-mix against the identity (paper Eq. 6): skip * I + select * block,
// with `skip`/`select` scalar [1] tensors. Two tape nodes; no materialized
// identity or scaled intermediates.
CxTensor cmix_identity(const Tensor& skip, const Tensor& select,
                       const CxTensor& block);

// Directional-coupler column transfer matrix T_b as [K,K] (paper Sec. 3.2).
//
// `t` holds one transmission coefficient per coupler slot. Slot i couples
// waveguides (s + 2i, s + 2i + 1) where s is the start parity. The 2x2 cell
// is [[t, j*sqrt(1-t^2)], [j*sqrt(1-t^2), t]]; t == 1 degenerates to a bar
// (identity) connection. Rows not covered by a slot pass through unchanged.
// Both the real diagonal entries (t) and the imaginary cross terms
// (sqrt(1-t^2)) carry gradients back into `t`.
CxTensor coupler_column(const Tensor& t, std::int64_t k, std::int64_t start);

// Row-wise l2 normalization of a complex matrix (norm over re^2 + im^2).
// Stabilizes relaxed SuperMesh unitaries during search (paper Sec. 3.3.2).
CxTensor row_normalize(const CxTensor& a, float eps = 1e-12f);
CxTensor col_normalize(const CxTensor& a, float eps = 1e-12f);

// ---- batched ([T,K,K]) chain ops --------------------------------------
// All tiles of a layer advance through each stage of the U/V block chain as
// ONE tape node (PtcWeight::weight_expr / SuperMesh::tile_unitary_batched).
// Every batched op is bit-exact against the per-tile composition it
// replaces — identical per-element accumulation order in the forward AND in
// every gradient, including the reverse-tile-order accumulation into
// operands shared across tiles — so the batched and per-tile weight paths
// agree to the bit at any thread count (asserted in tests).

// Batched complex matmul: a [T,N,P] x b [T,P,M] -> [T,N,M]. A 2-D b [P,M]
// is shared across the batch (e.g. the identity seeding a chain). One
// packed compute node; backward is two batched conjugate-transpose cgemms.
CxTensor bcmatmul(const CxTensor& a, const CxTensor& b);

// Batched column phase scaling of one shared matrix: out[t] = a @ R(phi[t])
// with a [N,M] shared and phi a [T,M] phase stack -> [T,N,M].
CxTensor bcolphase_scale(const CxTensor& a, const Tensor& phi);

// Batched fused block transfer over a [T,K] phase stack: out[t] =
// P~ @ T @ R(phi[t]). The tile-shared product P~ @ T runs as ONE
// real-by-complex gemm and the per-tile phase columns are applied as an
// epilogue — T tiles cost one K^3 gemm plus T*K^2 phase scalings instead of
// T K^3 gemms.
CxTensor bblock_transfer(const Tensor& p, const CxTensor& t, const Tensor& phi);

// Batched Gumbel identity mix: out[t] = skip * I + select * block[t] over a
// [T,K,K] block stack (skip/select scalar [1] tensors shared by all tiles).
CxTensor bcmix_identity(const Tensor& skip, const Tensor& select,
                        const CxTensor& block);

// Batched per-tile column scaling by a real [T,M] stack (U diag(Sigma)).
CxTensor bcscale_cols(const CxTensor& a, const Tensor& s);

// Per-tile row/column l2 normalization of a stacked [T,K,K] tensor.
CxTensor brow_normalize(const CxTensor& a, float eps = 1e-12f);
CxTensor bcol_normalize(const CxTensor& a, float eps = 1e-12f);

}  // namespace adept::ag
