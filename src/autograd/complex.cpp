#include "autograd/complex.h"

#include <cmath>

namespace adept::ag {

CxTensor CxTensor::from_real(const Tensor& r) {
  return {r, Tensor::zeros(r.shape())};
}

CxTensor CxTensor::zeros(std::vector<std::int64_t> shape) {
  return {Tensor::zeros(shape), Tensor::zeros(shape)};
}

CxTensor CxTensor::eye(std::int64_t n) {
  return {Tensor::eye(n), Tensor::zeros({n, n})};
}

CxTensor cmul(const CxTensor& a, const CxTensor& b) {
  Tensor re = sub(mul(a.re, b.re), mul(a.im, b.im));
  Tensor im = add(mul(a.re, b.im), mul(a.im, b.re));
  return {re, im};
}

CxTensor cadd(const CxTensor& a, const CxTensor& b) {
  return {add(a.re, b.re), add(a.im, b.im)};
}

CxTensor csub(const CxTensor& a, const CxTensor& b) {
  return {sub(a.re, b.re), sub(a.im, b.im)};
}

CxTensor cmatmul(const CxTensor& a, const CxTensor& b) {
  Tensor re = sub(matmul(a.re, b.re), matmul(a.im, b.im));
  Tensor im = add(matmul(a.re, b.im), matmul(a.im, b.re));
  return {re, im};
}

CxTensor cscale(const CxTensor& a, const Tensor& s) {
  return {mul(a.re, s), mul(a.im, s)};
}

CxTensor cscale(const CxTensor& a, float s) {
  return {mul_scalar(a.re, s), mul_scalar(a.im, s)};
}

CxTensor conj(const CxTensor& a) { return {a.re, neg(a.im)}; }

CxTensor adjoint(const CxTensor& a) {
  return {transpose(a.re), neg(transpose(a.im))};
}

Tensor cabs2(const CxTensor& a) { return add(square(a.re), square(a.im)); }

CxTensor cexp_neg_i(const Tensor& phi) { return {cos(phi), neg(sin(phi))}; }

CxTensor phase_column(const Tensor& phi) {
  CxTensor e = cexp_neg_i(phi);
  return {diag(e.re), diag(e.im)};
}

CxTensor coupler_column(const Tensor& t, std::int64_t k, std::int64_t start) {
  check(t.ndim() == 1, "coupler_column: t must be 1-D");
  const std::int64_t slots = t.numel();
  check(start == 0 || start == 1, "coupler_column: start parity must be 0/1");
  check(start + 2 * slots <= k, "coupler_column: too many slots for K");
  const auto& td = t.data();

  // Forward: assemble the dense [K,K] matrix.
  std::vector<float> re(static_cast<std::size_t>(k * k), 0.0f);
  std::vector<float> im(static_cast<std::size_t>(k * k), 0.0f);
  for (std::int64_t i = 0; i < k; ++i) re[static_cast<std::size_t>(i * k + i)] = 1.0f;
  for (std::int64_t s = 0; s < slots; ++s) {
    const std::int64_t a = start + 2 * s;
    const float tv = td[static_cast<std::size_t>(s)];
    const float cross = std::sqrt(std::max(0.0f, 1.0f - tv * tv));
    re[static_cast<std::size_t>(a * k + a)] = tv;
    re[static_cast<std::size_t>((a + 1) * k + a + 1)] = tv;
    im[static_cast<std::size_t>(a * k + a + 1)] = cross;
    im[static_cast<std::size_t>((a + 1) * k + a)] = cross;
  }

  // Backward: gather gradients from the four cells of each slot.
  //   d re[a,a]/dt = d re[a+1,a+1]/dt = 1
  //   d im[a,a+1]/dt = d im[a+1,a]/dt = -t / sqrt(1 - t^2)
  auto grad_into_t = [t, k, start, slots](TensorImpl& o, bool is_im) {
    if (!t.requires_grad()) return;
    auto& gt = const_cast<Tensor&>(t).grad();
    const auto& td = t.data();
    for (std::int64_t s = 0; s < slots; ++s) {
      const std::int64_t a = start + 2 * s;
      const float tv = td[static_cast<std::size_t>(s)];
      if (!is_im) {
        gt[static_cast<std::size_t>(s)] +=
            o.grad[static_cast<std::size_t>(a * k + a)] +
            o.grad[static_cast<std::size_t>((a + 1) * k + a + 1)];
      } else {
        const float denom = std::sqrt(std::max(1e-12f, 1.0f - tv * tv));
        const float dcross = -tv / denom;
        gt[static_cast<std::size_t>(s)] +=
            dcross * (o.grad[static_cast<std::size_t>(a * k + a + 1)] +
                      o.grad[static_cast<std::size_t>((a + 1) * k + a)]);
      }
    }
  };
  Tensor re_t = make_op(std::move(re), {k, k}, {t},
                        [grad_into_t](TensorImpl& o) { grad_into_t(o, false); });
  Tensor im_t = make_op(std::move(im), {k, k}, {t},
                        [grad_into_t](TensorImpl& o) { grad_into_t(o, true); });
  return {re_t, im_t};
}

CxTensor row_normalize(const CxTensor& a, float eps) {
  Tensor norm2 = add(row_sum(square(a.re)), row_sum(square(a.im)));
  Tensor inv = reciprocal(sqrt(add_scalar(norm2, eps)));
  return {mul(a.re, inv), mul(a.im, inv)};
}

CxTensor col_normalize(const CxTensor& a, float eps) {
  Tensor norm2 = add(col_sum(square(a.re)), col_sum(square(a.im)));
  Tensor inv = reciprocal(sqrt(add_scalar(norm2, eps)));
  return {mul(a.re, inv), mul(a.im, inv)};
}

}  // namespace adept::ag
