#include "autograd/complex.h"

#include <cmath>
#include <memory>

#include "backend/kernels.h"

namespace adept::ag {

namespace be = ::adept::backend;

CxTensor CxTensor::from_real(const Tensor& r) {
  return {r, Tensor::zeros(r.shape())};
}

CxTensor CxTensor::zeros(std::vector<std::int64_t> shape) {
  return {Tensor::zeros(shape), Tensor::zeros(shape)};
}

CxTensor CxTensor::eye(std::int64_t n) {
  return {Tensor::eye(n), Tensor::zeros({n, n})};
}

namespace {

bool tracking(std::initializer_list<const Tensor*> ts) {
  if (!GradMode::enabled()) return false;
  for (const Tensor* t : ts) {
    if (t->requires_grad()) return true;
  }
  return false;
}

// One plane of a packed [2,N,M] compute node. The view owns a copy of the
// plane's data; its backward just routes the gradient into the packed node's
// grad buffer, where the fused backward picks up both planes at once.
Tensor plane_view(const Tensor& packed, std::vector<float> plane,
                  std::vector<std::int64_t> shape, std::size_t offset) {
  return make_op(
      std::move(plane), std::move(shape), {packed},
      [packed, offset](TensorImpl& o) {
        if (!packed.requires_grad()) return;
        auto& g = const_cast<Tensor&>(packed).grad();
        float* gp = g.data() + offset;
        const float* op = o.grad.data();
        be::for_each_index(static_cast<std::int64_t>(o.grad.size()),
                           [=](std::int64_t i) { gp[i] += op[i]; });
      });
}

// cos/sin of a phase vector, shared between forward and the 2-node
// backwards of the column-phase ops.
struct PhaseTables {
  std::vector<float> c, s;
};

std::shared_ptr<PhaseTables> phase_tables(const Tensor& phi) {
  auto t = std::make_shared<PhaseTables>();
  const auto& pd = phi.data();
  t->c.resize(pd.size());
  t->s.resize(pd.size());
  // Dispatched: SIMD levels vectorize the sincos pair (backend/simd.h); the
  // scalar level is the libm loop this code always ran. Every consumer of a
  // phase column shares these tables, so fused and batched paths stay
  // bit-identical to each other at any level.
  be::sincos(static_cast<std::int64_t>(pd.size()), pd.data(), t->c.data(),
             t->s.data());
  return t;
}

}  // namespace

CxTensor cmul(const CxTensor& a, const CxTensor& b) {
  if (a.re.shape() != b.re.shape()) {
    // Broadcast shapes keep the real-op composition (ops.h broadcast rules).
    Tensor re = sub(mul(a.re, b.re), mul(a.im, b.im));
    Tensor im = add(mul(a.re, b.im), mul(a.im, b.re));
    return {re, im};
  }
  const std::size_t n = a.re.data().size();
  std::vector<float> outr(n), outi(n);
  be::cmul_planar(n, a.re.data().data(), a.im.data().data(),
                  b.re.data().data(), b.im.data().data(), outr.data(),
                  outi.data());
  Tensor re = make_op(
      std::move(outr), a.re.shape(), {a.re, a.im, b.re, b.im},
      [ar = a.re, ai = a.im, br = b.re, bi = b.im](TensorImpl& o) {
        const float* g = o.grad.data();
        const std::int64_t n = static_cast<std::int64_t>(o.grad.size());
        // out_re = ar*br - ai*bi
        if (ar.requires_grad()) {
          float* d = const_cast<Tensor&>(ar).grad().data();
          const float* x = br.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] += g[i] * x[i]; });
        }
        if (ai.requires_grad()) {
          float* d = const_cast<Tensor&>(ai).grad().data();
          const float* x = bi.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] -= g[i] * x[i]; });
        }
        if (br.requires_grad()) {
          float* d = const_cast<Tensor&>(br).grad().data();
          const float* x = ar.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] += g[i] * x[i]; });
        }
        if (bi.requires_grad()) {
          float* d = const_cast<Tensor&>(bi).grad().data();
          const float* x = ai.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] -= g[i] * x[i]; });
        }
      });
  Tensor im = make_op(
      std::move(outi), a.re.shape(), {a.re, a.im, b.re, b.im},
      [ar = a.re, ai = a.im, br = b.re, bi = b.im](TensorImpl& o) {
        const float* g = o.grad.data();
        const std::int64_t n = static_cast<std::int64_t>(o.grad.size());
        // out_im = ar*bi + ai*br
        if (ar.requires_grad()) {
          float* d = const_cast<Tensor&>(ar).grad().data();
          const float* x = bi.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] += g[i] * x[i]; });
        }
        if (ai.requires_grad()) {
          float* d = const_cast<Tensor&>(ai).grad().data();
          const float* x = br.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] += g[i] * x[i]; });
        }
        if (br.requires_grad()) {
          float* d = const_cast<Tensor&>(br).grad().data();
          const float* x = ai.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] += g[i] * x[i]; });
        }
        if (bi.requires_grad()) {
          float* d = const_cast<Tensor&>(bi).grad().data();
          const float* x = ar.data().data();
          be::for_each_index(n, [=](std::int64_t i) { d[i] += g[i] * x[i]; });
        }
      });
  return {re, im};
}

CxTensor cadd(const CxTensor& a, const CxTensor& b) {
  return {add(a.re, b.re), add(a.im, b.im)};
}

CxTensor csub(const CxTensor& a, const CxTensor& b) {
  return {sub(a.re, b.re), sub(a.im, b.im)};
}

CxTensor cmatmul(const CxTensor& a, const CxTensor& b) {
  check(a.re.ndim() == 2 && b.re.ndim() == 2, "cmatmul: expects 2-D tensors");
  const std::int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  check(b.dim(0) == k, "cmatmul: inner dims mismatch");
  const std::size_t nm = static_cast<std::size_t>(n * m);
  if (!tracking({&a.re, &a.im, &b.re, &b.im})) {
    std::vector<float> re(nm), im(nm);
    be::cgemm(be::CTrans::N, be::CTrans::N, n, m, k, a.re.data().data(),
              a.im.data().data(), k, b.re.data().data(), b.im.data().data(), m,
              0.0f, re.data(), im.data(), m);
    return {make_tensor(std::move(re), {n, m}, false),
            make_tensor(std::move(im), {n, m}, false)};
  }
  std::vector<float> re(nm), im(nm);
  be::cgemm(be::CTrans::N, be::CTrans::N, n, m, k, a.re.data().data(),
            a.im.data().data(), k, b.re.data().data(), b.im.data().data(), m,
            0.0f, re.data(), im.data(), m);
  // Single compute node: backward reads both plane grads at once and runs
  // the two conjugate-transpose cgemms dA = G B^H, dB = A^H G. Its data
  // buffer only exists to size the packed grad the plane views route into —
  // the product itself lives in the views, no extra copies.
  Tensor node = make_op(
      std::vector<float>(2 * nm, 0.0f), {2, n, m}, {a.re, a.im, b.re, b.im},
      [ar = a.re, ai = a.im, br = b.re, bi = b.im, n, k, m, nm](TensorImpl& o) {
        const float* gre = o.grad.data();
        const float* gim = o.grad.data() + nm;
        if (ar.requires_grad() || ai.requires_grad()) {
          auto& gar = const_cast<Tensor&>(ar).grad();
          auto& gai = const_cast<Tensor&>(ai).grad();
          be::cgemm(be::CTrans::N, be::CTrans::H, n, k, m, gre, gim, m,
                    br.data().data(), bi.data().data(), m, 1.0f, gar.data(),
                    gai.data(), k);
        }
        if (br.requires_grad() || bi.requires_grad()) {
          auto& gbr = const_cast<Tensor&>(br).grad();
          auto& gbi = const_cast<Tensor&>(bi).grad();
          be::cgemm(be::CTrans::H, be::CTrans::N, k, m, n, ar.data().data(),
                    ai.data().data(), k, gre, gim, m, 1.0f, gbr.data(),
                    gbi.data(), m);
        }
      });
  return {plane_view(node, std::move(re), {n, m}, 0),
          plane_view(node, std::move(im), {n, m}, nm)};
}

CxTensor cmatmul_unfused(const CxTensor& a, const CxTensor& b) {
  Tensor re = sub(matmul(a.re, b.re), matmul(a.im, b.im));
  Tensor im = add(matmul(a.re, b.im), matmul(a.im, b.re));
  return {re, im};
}

CxTensor cscale(const CxTensor& a, const Tensor& s) {
  return {mul(a.re, s), mul(a.im, s)};
}

CxTensor cscale(const CxTensor& a, float s) {
  return {mul_scalar(a.re, s), mul_scalar(a.im, s)};
}

CxTensor conj(const CxTensor& a) { return {a.re, neg(a.im)}; }

CxTensor adjoint(const CxTensor& a) {
  return {transpose(a.re), neg(transpose(a.im))};
}

Tensor cabs2(const CxTensor& a) { return add(square(a.re), square(a.im)); }

CxTensor cexp_neg_i(const Tensor& phi) { return {cos(phi), neg(sin(phi))}; }

CxTensor phase_column(const Tensor& phi) {
  CxTensor e = cexp_neg_i(phi);
  return {diag(e.re), diag(e.im)};
}

CxTensor colphase_scale(const CxTensor& a, const Tensor& phi) {
  check(a.re.ndim() == 2, "colphase_scale: expects 2-D");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  check(phi.numel() == m, "colphase_scale: need one phase per column");
  auto tab = phase_tables(phi);
  const std::size_t nm = static_cast<std::size_t>(n * m);
  std::vector<float> outr(nm), outi(nm);
  {
    const float* arp = a.re.data().data();
    const float* aip = a.im.data().data();
    const float* c = tab->c.data();
    const float* s = tab->s.data();
    float* orp = outr.data();
    float* oip = outi.data();
    be::for_each_index(n, [=](std::int64_t i) {
      for (std::int64_t j = 0; j < m; ++j) {
        const float re = arp[i * m + j], im = aip[i * m + j];
        orp[i * m + j] = re * c[j] + im * s[j];
        oip[i * m + j] = im * c[j] - re * s[j];
      }
    });
  }
  // dphi accumulates per column: column j owns its slot, so j is the
  // parallel dimension in both backwards.
  Tensor re = make_op(
      std::move(outr), a.re.shape(), {a.re, a.im, phi},
      [ar = a.re, ai = a.im, phi, tab, n, m](TensorImpl& o) {
        const float* g = o.grad.data();
        const float* c = tab->c.data();
        const float* s = tab->s.data();
        if (ar.requires_grad()) {
          float* d = const_cast<Tensor&>(ar).grad().data();
          be::for_each_index(n * m, [=](std::int64_t i) { d[i] += g[i] * c[i % m]; });
        }
        if (ai.requires_grad()) {
          float* d = const_cast<Tensor&>(ai).grad().data();
          be::for_each_index(n * m, [=](std::int64_t i) { d[i] += g[i] * s[i % m]; });
        }
        if (phi.requires_grad()) {
          float* d = const_cast<Tensor&>(phi).grad().data();
          const float* arp = ar.data().data();
          const float* aip = ai.data().data();
          be::for_each_index(
              m,
              [=](std::int64_t j) {
                double acc = 0.0;
                for (std::int64_t i = 0; i < n; ++i) {
                  acc += static_cast<double>(g[i * m + j]) *
                         (aip[i * m + j] * c[j] - arp[i * m + j] * s[j]);
                }
                d[j] += static_cast<float>(acc);
              },
              /*grain=*/1);
        }
      });
  Tensor im = make_op(
      std::move(outi), a.re.shape(), {a.re, a.im, phi},
      [ar = a.re, ai = a.im, phi, tab, n, m](TensorImpl& o) {
        const float* g = o.grad.data();
        const float* c = tab->c.data();
        const float* s = tab->s.data();
        if (ai.requires_grad()) {
          float* d = const_cast<Tensor&>(ai).grad().data();
          be::for_each_index(n * m, [=](std::int64_t i) { d[i] += g[i] * c[i % m]; });
        }
        if (ar.requires_grad()) {
          float* d = const_cast<Tensor&>(ar).grad().data();
          be::for_each_index(n * m, [=](std::int64_t i) { d[i] -= g[i] * s[i % m]; });
        }
        if (phi.requires_grad()) {
          float* d = const_cast<Tensor&>(phi).grad().data();
          const float* arp = ar.data().data();
          const float* aip = ai.data().data();
          be::for_each_index(
              m,
              [=](std::int64_t j) {
                double acc = 0.0;
                for (std::int64_t i = 0; i < n; ++i) {
                  acc -= static_cast<double>(g[i * m + j]) *
                         (aip[i * m + j] * s[j] + arp[i * m + j] * c[j]);
                }
                d[j] += static_cast<float>(acc);
              },
              /*grain=*/1);
        }
      });
  return {re, im};
}

CxTensor block_transfer(const Tensor& p, const CxTensor& t, const Tensor& phi) {
  check(p.ndim() == 2 && p.dim(0) == p.dim(1), "block_transfer: P must be square");
  const std::int64_t k = p.dim(0);
  check(t.re.ndim() == 2 && t.dim(0) == k && t.dim(1) == k,
        "block_transfer: T must be [K,K]");
  check(phi.numel() == k, "block_transfer: need K phases");
  auto tab = phase_tables(phi);
  const std::size_t kk = static_cast<std::size_t>(k * k);
  if (!tracking({&p, &t.re, &t.im, &phi})) {
    std::vector<float> re(kk), im(kk);
    be::rcgemm(be::Trans::N, k, k, k, p.data().data(), k, t.re.data().data(),
               t.im.data().data(), k, 0.0f, re.data(), im.data(), k,
               tab->c.data(), tab->s.data());
    return {make_tensor(std::move(re), {k, k}, false),
            make_tensor(std::move(im), {k, k}, false)};
  }
  std::vector<float> packed(2 * kk);
  be::rcgemm(be::Trans::N, k, k, k, p.data().data(), k, t.re.data().data(),
             t.im.data().data(), k, 0.0f, packed.data(), packed.data() + kk, k,
             tab->c.data(), tab->s.data());
  Tensor node = make_op(
      std::move(packed), {2, k, k}, {p, t.re, t.im, phi},
      [p, tr = t.re, ti = t.im, phi, tab, k, kk](TensorImpl& o) {
        const float* gre = o.grad.data();
        const float* gim = o.grad.data() + kk;
        const float* c = tab->c.data();
        const float* s = tab->s.data();
        if (phi.requires_grad()) {
          // out = PT * e^{-i phi_j} columnwise => d out / d phi_j = -i out,
          // so dphi_j = sum_i (G_re * out_im - G_im * out_re) over column j.
          const float* ore = o.data.data();
          const float* oim = o.data.data() + kk;
          float* d = const_cast<Tensor&>(phi).grad().data();
          be::for_each_index(
              k,
              [=](std::int64_t j) {
                double acc = 0.0;
                for (std::int64_t i = 0; i < k; ++i) {
                  acc += static_cast<double>(gre[i * k + j]) * oim[i * k + j] -
                         static_cast<double>(gim[i * k + j]) * ore[i * k + j];
                }
                d[j] += static_cast<float>(acc);
              },
              /*grain=*/1);
        }
        if (!p.requires_grad() && !tr.requires_grad() && !ti.requires_grad()) {
          return;
        }
        // Chain through the column phase: G_PT = G * e^{+i phi_j}.
        std::vector<float> gpt(2 * kk);
        {
          float* gptr = gpt.data();
          float* gpti = gpt.data() + kk;
          be::for_each_index(static_cast<std::int64_t>(kk), [=](std::int64_t i) {
            const std::int64_t j = i % k;
            gptr[i] = gre[i] * c[j] - gim[i] * s[j];
            gpti[i] = gim[i] * c[j] + gre[i] * s[j];
          });
        }
        if (p.requires_grad()) {
          auto& gp = const_cast<Tensor&>(p).grad();
          be::gemm(be::Trans::N, be::Trans::T, k, k, k, 1.0f, gpt.data(), k,
                   tr.data().data(), k, 1.0f, gp.data(), k);
          be::gemm(be::Trans::N, be::Trans::T, k, k, k, 1.0f, gpt.data() + kk,
                   k, ti.data().data(), k, 1.0f, gp.data(), k);
        }
        if (tr.requires_grad() || ti.requires_grad()) {
          auto& gtr = const_cast<Tensor&>(tr).grad();
          auto& gti = const_cast<Tensor&>(ti).grad();
          be::rcgemm(be::Trans::T, k, k, k, p.data().data(), k, gpt.data(),
                     gpt.data() + kk, k, 1.0f, gtr.data(), gti.data(), k);
        }
      });
  const auto& nd = node.data();
  return {plane_view(node, {nd.begin(), nd.begin() + static_cast<std::ptrdiff_t>(kk)}, {k, k}, 0),
          plane_view(node, {nd.begin() + static_cast<std::ptrdiff_t>(kk), nd.end()}, {k, k}, kk)};
}

CxTensor cmix_identity(const Tensor& skip, const Tensor& select,
                       const CxTensor& block) {
  check(skip.numel() == 1 && select.numel() == 1,
        "cmix_identity: skip/select must be scalars");
  check(block.re.ndim() == 2 && block.dim(0) == block.dim(1),
        "cmix_identity: block must be square");
  const std::int64_t k = block.dim(0);
  const float sk = skip.data()[0];
  const float se = select.data()[0];
  const std::size_t kk = static_cast<std::size_t>(k * k);
  std::vector<float> outr(kk), outi(kk);
  {
    const float* brp = block.re.data().data();
    const float* bip = block.im.data().data();
    float* orp = outr.data();
    float* oip = outi.data();
    be::for_each_index(static_cast<std::int64_t>(kk), [=](std::int64_t i) {
      orp[i] = se * brp[i];
      oip[i] = se * bip[i];
    });
    for (std::int64_t i = 0; i < k; ++i) orp[i * k + i] += sk;
  }
  Tensor re = make_op(
      std::move(outr), block.re.shape(), {skip, select, block.re},
      [skip, select, br = block.re, k](TensorImpl& o) {
        const float* g = o.grad.data();
        if (skip.requires_grad()) {
          double acc = 0.0;
          for (std::int64_t i = 0; i < k; ++i) acc += g[i * k + i];
          const_cast<Tensor&>(skip).grad()[0] += static_cast<float>(acc);
        }
        if (select.requires_grad()) {
          const auto& bd = br.data();
          double acc = 0.0;
          for (std::size_t i = 0; i < o.grad.size(); ++i) acc += static_cast<double>(g[i]) * bd[i];
          const_cast<Tensor&>(select).grad()[0] += static_cast<float>(acc);
        }
        if (br.requires_grad()) {
          const float se = select.data()[0];
          float* d = const_cast<Tensor&>(br).grad().data();
          be::for_each_index(static_cast<std::int64_t>(o.grad.size()),
                             [=](std::int64_t i) { d[i] += se * g[i]; });
        }
      });
  Tensor im = make_op(
      std::move(outi), block.re.shape(), {select, block.im},
      [select, bi = block.im](TensorImpl& o) {
        const float* g = o.grad.data();
        if (select.requires_grad()) {
          const auto& bd = bi.data();
          double acc = 0.0;
          for (std::size_t i = 0; i < o.grad.size(); ++i) acc += static_cast<double>(g[i]) * bd[i];
          const_cast<Tensor&>(select).grad()[0] += static_cast<float>(acc);
        }
        if (bi.requires_grad()) {
          const float se = select.data()[0];
          float* d = const_cast<Tensor&>(bi).grad().data();
          be::for_each_index(static_cast<std::int64_t>(o.grad.size()),
                             [=](std::int64_t i) { d[i] += se * g[i]; });
        }
      });
  return {re, im};
}

CxTensor coupler_column(const Tensor& t, std::int64_t k, std::int64_t start) {
  check(t.ndim() == 1, "coupler_column: t must be 1-D");
  const std::int64_t slots = t.numel();
  check(start == 0 || start == 1, "coupler_column: start parity must be 0/1");
  check(start + 2 * slots <= k, "coupler_column: too many slots for K");
  const auto& td = t.data();

  // Forward: assemble the dense [K,K] matrix.
  std::vector<float> re(static_cast<std::size_t>(k * k), 0.0f);
  std::vector<float> im(static_cast<std::size_t>(k * k), 0.0f);
  for (std::int64_t i = 0; i < k; ++i) re[static_cast<std::size_t>(i * k + i)] = 1.0f;
  for (std::int64_t s = 0; s < slots; ++s) {
    const std::int64_t a = start + 2 * s;
    const float tv = td[static_cast<std::size_t>(s)];
    const float cross = std::sqrt(std::max(0.0f, 1.0f - tv * tv));
    re[static_cast<std::size_t>(a * k + a)] = tv;
    re[static_cast<std::size_t>((a + 1) * k + a + 1)] = tv;
    im[static_cast<std::size_t>(a * k + a + 1)] = cross;
    im[static_cast<std::size_t>((a + 1) * k + a)] = cross;
  }

  // Backward: gather gradients from the four cells of each slot.
  //   d re[a,a]/dt = d re[a+1,a+1]/dt = 1
  //   d im[a,a+1]/dt = d im[a+1,a]/dt = -t / sqrt(1 - t^2)
  auto grad_into_t = [t, k, start, slots](TensorImpl& o, bool is_im) {
    if (!t.requires_grad()) return;
    auto& gt = const_cast<Tensor&>(t).grad();
    const auto& td = t.data();
    for (std::int64_t s = 0; s < slots; ++s) {
      const std::int64_t a = start + 2 * s;
      const float tv = td[static_cast<std::size_t>(s)];
      if (!is_im) {
        gt[static_cast<std::size_t>(s)] +=
            o.grad[static_cast<std::size_t>(a * k + a)] +
            o.grad[static_cast<std::size_t>((a + 1) * k + a + 1)];
      } else {
        const float denom = std::sqrt(std::max(1e-12f, 1.0f - tv * tv));
        const float dcross = -tv / denom;
        gt[static_cast<std::size_t>(s)] +=
            dcross * (o.grad[static_cast<std::size_t>(a * k + a + 1)] +
                      o.grad[static_cast<std::size_t>((a + 1) * k + a)]);
      }
    }
  };
  Tensor re_t = make_op(std::move(re), {k, k}, {t},
                        [grad_into_t](TensorImpl& o) { grad_into_t(o, false); });
  Tensor im_t = make_op(std::move(im), {k, k}, {t},
                        [grad_into_t](TensorImpl& o) { grad_into_t(o, true); });
  return {re_t, im_t};
}

CxTensor row_normalize(const CxTensor& a, float eps) {
  Tensor norm2 = add(row_sum(square(a.re)), row_sum(square(a.im)));
  Tensor inv = reciprocal(sqrt(add_scalar(norm2, eps)));
  return {mul(a.re, inv), mul(a.im, inv)};
}

CxTensor col_normalize(const CxTensor& a, float eps) {
  Tensor norm2 = add(col_sum(square(a.re)), col_sum(square(a.im)));
  Tensor inv = reciprocal(sqrt(add_scalar(norm2, eps)));
  return {mul(a.re, inv), mul(a.im, inv)};
}

// ---- batched ([T,K,K]) chain ops ------------------------------------------
//
// Bit-exactness contract: each batched op performs, per output element and
// per gradient slot, the identical sequence of float operations as the
// per-tile composition it replaces. Gradients into operands shared across
// tiles accumulate per tile in REVERSE tile order — the order the per-tile
// tape fires its nodes in (block_matrix lists tiles ascending, so reverse
// post-order processes them descending) — and within one tile the IM-plane
// node fires before the RE-plane node (plane views are pushed re-first onto
// parent lists, so post-order reversal flips them).

CxTensor bcmatmul(const CxTensor& a, const CxTensor& b) {
  check(a.re.ndim() == 3, "bcmatmul: a must be [T,N,P]");
  const std::int64_t t = a.dim(0), n = a.dim(1), p = a.dim(2);
  const bool shared_b = b.re.ndim() == 2;
  check(shared_b || b.re.ndim() == 3, "bcmatmul: b must be 2-D or [T,P,M]");
  const std::int64_t m = shared_b ? b.dim(1) : b.dim(2);
  check(shared_b ? b.dim(0) == p : (b.dim(0) == t && b.dim(1) == p),
        "bcmatmul: inner dims mismatch");
  const std::int64_t sa = n * p, sb = shared_b ? 0 : p * m, sc = n * m;
  const std::size_t tnm = static_cast<std::size_t>(t * n * m);
  std::vector<float> re(tnm), im(tnm);
  be::cgemm_batched(be::CTrans::N, be::CTrans::N, t, n, m, p,
                    a.re.data().data(), a.im.data().data(), sa, p,
                    b.re.data().data(), b.im.data().data(), sb, m, 0.0f,
                    re.data(), im.data(), sc, m);
  if (!tracking({&a.re, &a.im, &b.re, &b.im})) {
    return {make_tensor(std::move(re), {t, n, m}, false),
            make_tensor(std::move(im), {t, n, m}, false)};
  }
  Tensor node = make_op(
      std::vector<float>(2 * tnm, 0.0f), {2, t, n, m},
      {a.re, a.im, b.re, b.im},
      [ar = a.re, ai = a.im, br = b.re, bi = b.im, t, n, p, m, sa, sb, sc,
       tnm, shared_b](TensorImpl& o) {
        const float* gre = o.grad.data();
        const float* gim = o.grad.data() + tnm;
        if (ar.requires_grad() || ai.requires_grad()) {
          auto& gar = const_cast<Tensor&>(ar).grad();
          auto& gai = const_cast<Tensor&>(ai).grad();
          // dA[t] = G[t] B[t]^H for every tile in one batched call.
          be::cgemm_batched(be::CTrans::N, be::CTrans::H, t, n, p, m, gre, gim,
                            sc, m, br.data().data(), bi.data().data(), sb, m,
                            1.0f, gar.data(), gai.data(), sa, p);
        }
        if (br.requires_grad() || bi.requires_grad()) {
          auto& gbr = const_cast<Tensor&>(br).grad();
          auto& gbi = const_cast<Tensor&>(bi).grad();
          if (!shared_b) {
            be::cgemm_batched(be::CTrans::H, be::CTrans::N, t, p, m, n,
                              ar.data().data(), ai.data().data(), sa, p, gre,
                              gim, sc, m, 1.0f, gbr.data(), gbi.data(), sb, m);
          } else {
            // Shared b: one accumulating cgemm per tile, reverse tile order.
            for (std::int64_t ti = t - 1; ti >= 0; --ti) {
              be::cgemm(be::CTrans::H, be::CTrans::N, p, m, n,
                        ar.data().data() + ti * sa,
                        ai.data().data() + ti * sa, p, gre + ti * sc,
                        gim + ti * sc, m, 1.0f, gbr.data(), gbi.data(), m);
            }
          }
        }
      });
  return {plane_view(node, std::move(re), {t, n, m}, 0),
          plane_view(node, std::move(im), {t, n, m}, tnm)};
}

CxTensor bcolphase_scale(const CxTensor& a, const Tensor& phi) {
  check(a.re.ndim() == 2, "bcolphase_scale: a must be [N,M]");
  const std::int64_t n = a.dim(0), m = a.dim(1);
  check(phi.ndim() == 2 && phi.dim(1) == m, "bcolphase_scale: phi must be [T,M]");
  const std::int64_t t = phi.dim(0);
  auto tab = phase_tables(phi);
  const std::int64_t nm = n * m;
  const std::size_t tnm = static_cast<std::size_t>(t * nm);
  std::vector<float> outr(tnm), outi(tnm);
  {
    const float* arp = a.re.data().data();
    const float* aip = a.im.data().data();
    const float* c = tab->c.data();
    const float* s = tab->s.data();
    float* orp = outr.data();
    float* oip = outi.data();
    be::for_each_index(t * n, [=](std::int64_t row) {
      const std::int64_t ti = row / n, i = row % n;
      const float* ar_row = arp + i * m;
      const float* ai_row = aip + i * m;
      const float* ct = c + ti * m;
      const float* st = s + ti * m;
      float* our = orp + row * m;
      float* oui = oip + row * m;
      for (std::int64_t j = 0; j < m; ++j) {
        const float re = ar_row[j], im = ai_row[j];
        our[j] = re * ct[j] + im * st[j];
        oui[j] = im * ct[j] - re * st[j];
      }
    });
  }
  if (!tracking({&a.re, &a.im, &phi})) {
    return {make_tensor(std::move(outr), {t, n, m}, false),
            make_tensor(std::move(outi), {t, n, m}, false)};
  }
  Tensor node = make_op(
      std::vector<float>(2 * tnm, 0.0f), {2, t, n, m}, {a.re, a.im, phi},
      [ar = a.re, ai = a.im, phi, tab, t, n, m, nm, tnm](TensorImpl& o) {
        const float* gre = o.grad.data();
        const float* gim = o.grad.data() + tnm;
        const float* c = tab->c.data();
        const float* s = tab->s.data();
        const float* arp = ar.data().data();
        const float* aip = ai.data().data();
        float* dar = ar.requires_grad() ? const_cast<Tensor&>(ar).grad().data()
                                        : nullptr;
        float* dai = ai.requires_grad() ? const_cast<Tensor&>(ai).grad().data()
                                        : nullptr;
        float* dphi = phi.requires_grad()
                          ? const_cast<Tensor&>(phi).grad().data()
                          : nullptr;
        for (std::int64_t ti = t - 1; ti >= 0; --ti) {
          const float* gr_t = gre + ti * nm;
          const float* gi_t = gim + ti * nm;
          const float* ct = c + ti * m;
          const float* st = s + ti * m;
          // IM-plane contributions first (per-tile node firing order).
          if (dai != nullptr) {
            be::for_each_index(nm, [=](std::int64_t i) {
              dai[i] += gi_t[i] * ct[i % m];
            });
          }
          if (dar != nullptr) {
            be::for_each_index(nm, [=](std::int64_t i) {
              dar[i] -= gi_t[i] * st[i % m];
            });
          }
          if (dphi != nullptr) {
            be::for_each_index(
                m,
                [=](std::int64_t j) {
                  double acc = 0.0;
                  for (std::int64_t i = 0; i < n; ++i) {
                    acc -= static_cast<double>(gi_t[i * m + j]) *
                           (aip[i * m + j] * st[j] + arp[i * m + j] * ct[j]);
                  }
                  dphi[ti * m + j] += static_cast<float>(acc);
                },
                /*grain=*/1);
          }
          // RE-plane contributions.
          if (dar != nullptr) {
            be::for_each_index(nm, [=](std::int64_t i) {
              dar[i] += gr_t[i] * ct[i % m];
            });
          }
          if (dai != nullptr) {
            be::for_each_index(nm, [=](std::int64_t i) {
              dai[i] += gr_t[i] * st[i % m];
            });
          }
          if (dphi != nullptr) {
            be::for_each_index(
                m,
                [=](std::int64_t j) {
                  double acc = 0.0;
                  for (std::int64_t i = 0; i < n; ++i) {
                    acc += static_cast<double>(gr_t[i * m + j]) *
                           (aip[i * m + j] * ct[j] - arp[i * m + j] * st[j]);
                  }
                  dphi[ti * m + j] += static_cast<float>(acc);
                },
                /*grain=*/1);
          }
        }
      });
  return {plane_view(node, std::move(outr), {t, n, m}, 0),
          plane_view(node, std::move(outi), {t, n, m}, tnm)};
}

CxTensor bblock_transfer(const Tensor& p, const CxTensor& t, const Tensor& phi) {
  check(p.ndim() == 2 && p.dim(0) == p.dim(1), "bblock_transfer: P must be square");
  const std::int64_t k = p.dim(0);
  check(t.re.ndim() == 2 && t.dim(0) == k && t.dim(1) == k,
        "bblock_transfer: T must be [K,K]");
  check(phi.ndim() == 2 && phi.dim(1) == k, "bblock_transfer: phi must be [T,K]");
  const std::int64_t nt = phi.dim(0);
  auto tab = phase_tables(phi);
  const std::int64_t kk = k * k;
  const std::size_t tkk = static_cast<std::size_t>(nt * kk);
  // The passive product P~ @ T is shared by every tile: ONE gemm, then each
  // tile applies its own phase column — the same epilogue arithmetic the
  // fused per-tile rcgemm runs, so values match it bit for bit.
  auto pt = std::make_shared<std::vector<float>>(static_cast<std::size_t>(2 * kk));
  be::rcgemm(be::Trans::N, k, k, k, p.data().data(), k, t.re.data().data(),
             t.im.data().data(), k, 0.0f, pt->data(), pt->data() + kk, k);
  std::vector<float> outr(tkk), outi(tkk);
  {
    const float* ptr_ = pt->data();
    const float* pti_ = pt->data() + kk;
    const float* c = tab->c.data();
    const float* s = tab->s.data();
    float* orp = outr.data();
    float* oip = outi.data();
    be::for_each_index(nt * k, [=](std::int64_t row) {
      const std::int64_t ti = row / k, i = row % k;
      const float* ct = c + ti * k;
      const float* st = s + ti * k;
      const float* pr = ptr_ + i * k;
      const float* pi = pti_ + i * k;
      float* our = orp + row * k;
      float* oui = oip + row * k;
      for (std::int64_t j = 0; j < k; ++j) {
        const float re = pr[j], im = pi[j];
        our[j] = re * ct[j] + im * st[j];
        oui[j] = im * ct[j] - re * st[j];
      }
    });
  }
  if (!tracking({&p, &t.re, &t.im, &phi})) {
    return {make_tensor(std::move(outr), {nt, k, k}, false),
            make_tensor(std::move(outi), {nt, k, k}, false)};
  }
  Tensor node = make_op(
      std::vector<float>(2 * tkk, 0.0f), {2, nt, k, k},
      {p, t.re, t.im, phi},
      [p, tr = t.re, ti_ = t.im, phi, tab, pt, k, nt, kk, tkk](TensorImpl& o) {
        const float* gre = o.grad.data();
        const float* gim = o.grad.data() + tkk;
        const float* c = tab->c.data();
        const float* s = tab->s.data();
        const float* ptr_ = pt->data();
        const float* pti_ = pt->data() + kk;
        const bool pt_grad =
            p.requires_grad() || tr.requires_grad() || ti_.requires_grad();
        float* dphi = phi.requires_grad()
                          ? const_cast<Tensor&>(phi).grad().data()
                          : nullptr;
        std::vector<float> gpt(pt_grad ? static_cast<std::size_t>(2 * kk) : 0);
        // Reverse tile order: dP/dT accumulate through the same kernel calls,
        // in the same order, as the per-tile block_transfer backwards.
        for (std::int64_t t2 = nt - 1; t2 >= 0; --t2) {
          const float* gr_t = gre + t2 * kk;
          const float* gi_t = gim + t2 * kk;
          const float* ct = c + t2 * k;
          const float* st = s + t2 * k;
          if (dphi != nullptr) {
            // dphi_j = sum_i (G_re * out_im - G_im * out_re); the output is
            // recomputed from the shared P~T product — same floats as the
            // per-tile node's stored forward.
            be::for_each_index(
                k,
                [=](std::int64_t j) {
                  double acc = 0.0;
                  for (std::int64_t i = 0; i < k; ++i) {
                    const float re =
                        ptr_[i * k + j] * ct[j] + pti_[i * k + j] * st[j];
                    const float im =
                        pti_[i * k + j] * ct[j] - ptr_[i * k + j] * st[j];
                    acc += static_cast<double>(gr_t[i * k + j]) * im -
                           static_cast<double>(gi_t[i * k + j]) * re;
                  }
                  dphi[t2 * k + j] += static_cast<float>(acc);
                },
                /*grain=*/1);
          }
          if (!pt_grad) continue;
          // Chain through this tile's column phase: G_PT = G * e^{+i phi_j}.
          {
            float* gptr = gpt.data();
            float* gpti = gpt.data() + kk;
            be::for_each_index(kk, [=](std::int64_t i) {
              const std::int64_t j = i % k;
              gptr[i] = gr_t[i] * ct[j] - gi_t[i] * st[j];
              gpti[i] = gi_t[i] * ct[j] + gr_t[i] * st[j];
            });
          }
          if (p.requires_grad()) {
            auto& gp = const_cast<Tensor&>(p).grad();
            be::gemm(be::Trans::N, be::Trans::T, k, k, k, 1.0f, gpt.data(), k,
                     tr.data().data(), k, 1.0f, gp.data(), k);
            be::gemm(be::Trans::N, be::Trans::T, k, k, k, 1.0f,
                     gpt.data() + kk, k, ti_.data().data(), k, 1.0f,
                     gp.data(), k);
          }
          if (tr.requires_grad() || ti_.requires_grad()) {
            auto& gtr = const_cast<Tensor&>(tr).grad();
            auto& gti = const_cast<Tensor&>(ti_).grad();
            be::rcgemm(be::Trans::T, k, k, k, p.data().data(), k, gpt.data(),
                       gpt.data() + kk, k, 1.0f, gtr.data(), gti.data(), k);
          }
        }
      });
  return {plane_view(node, std::move(outr), {nt, k, k}, 0),
          plane_view(node, std::move(outi), {nt, k, k}, tkk)};
}

CxTensor bcmix_identity(const Tensor& skip, const Tensor& select,
                        const CxTensor& block) {
  check(skip.numel() == 1 && select.numel() == 1,
        "bcmix_identity: skip/select must be scalars");
  check(block.re.ndim() == 3 && block.dim(1) == block.dim(2),
        "bcmix_identity: block must be [T,K,K]");
  const std::int64_t nt = block.dim(0), k = block.dim(1);
  const float sk = skip.data()[0];
  const float se = select.data()[0];
  const std::int64_t kk = k * k;
  const std::size_t tkk = static_cast<std::size_t>(nt * kk);
  std::vector<float> outr(tkk), outi(tkk);
  {
    const float* brp = block.re.data().data();
    const float* bip = block.im.data().data();
    float* orp = outr.data();
    float* oip = outi.data();
    be::for_each_index(static_cast<std::int64_t>(tkk), [=](std::int64_t i) {
      orp[i] = se * brp[i];
      oip[i] = se * bip[i];
    });
    be::for_each_index(nt * k, [=](std::int64_t row) {
      const std::int64_t ti = row / k, d = row % k;
      orp[ti * kk + d * k + d] += sk;
    });
  }
  if (!tracking({&skip, &select, &block.re, &block.im})) {
    return {make_tensor(std::move(outr), {nt, k, k}, false),
            make_tensor(std::move(outi), {nt, k, k}, false)};
  }
  Tensor node = make_op(
      std::vector<float>(2 * tkk, 0.0f), {2, nt, k, k},
      {skip, select, block.re, block.im},
      [skip, select, br = block.re, bi = block.im, nt, k, kk,
       tkk](TensorImpl& o) {
        const float* gre = o.grad.data();
        const float* gim = o.grad.data() + tkk;
        if (br.requires_grad()) {
          const float se = select.data()[0];
          float* d = const_cast<Tensor&>(br).grad().data();
          be::for_each_index(static_cast<std::int64_t>(tkk),
                             [=](std::int64_t i) { d[i] += se * gre[i]; });
        }
        if (bi.requires_grad()) {
          const float se = select.data()[0];
          float* d = const_cast<Tensor&>(bi).grad().data();
          be::for_each_index(static_cast<std::int64_t>(tkk),
                             [=](std::int64_t i) { d[i] += se * gim[i]; });
        }
        const bool skg = skip.requires_grad();
        const bool seg = select.requires_grad();
        if (!skg && !seg) return;
        const float* brd = br.data().data();
        const float* bid = bi.data().data();
        // Reverse tile order; within a tile the IM-plane select term lands
        // first, then the RE-plane skip/select terms (per-tile node order).
        for (std::int64_t t2 = nt - 1; t2 >= 0; --t2) {
          if (seg) {
            double acc = 0.0;
            for (std::int64_t i = 0; i < kk; ++i) {
              acc += static_cast<double>(gim[t2 * kk + i]) * bid[t2 * kk + i];
            }
            const_cast<Tensor&>(select).grad()[0] += static_cast<float>(acc);
          }
          if (skg) {
            double acc = 0.0;
            for (std::int64_t d = 0; d < k; ++d) {
              acc += gre[t2 * kk + d * k + d];
            }
            const_cast<Tensor&>(skip).grad()[0] += static_cast<float>(acc);
          }
          if (seg) {
            double acc = 0.0;
            for (std::int64_t i = 0; i < kk; ++i) {
              acc += static_cast<double>(gre[t2 * kk + i]) * brd[t2 * kk + i];
            }
            const_cast<Tensor&>(select).grad()[0] += static_cast<float>(acc);
          }
        }
      });
  return {plane_view(node, std::move(outr), {nt, k, k}, 0),
          plane_view(node, std::move(outi), {nt, k, k}, tkk)};
}

CxTensor bcscale_cols(const CxTensor& a, const Tensor& s) {
  return {bscale_cols(a.re, s), bscale_cols(a.im, s)};
}

CxTensor brow_normalize(const CxTensor& a, float eps) {
  check(a.re.ndim() == 3, "brow_normalize: expects [T,K,K]");
  const std::int64_t t = a.dim(0), n = a.dim(1), m = a.dim(2);
  // Row norms don't cross tile boundaries, so the stacked rows normalize as
  // one [T*K, K] matrix through the 2-D path (reshape is a pure pass-through
  // for both values and gradients).
  CxTensor flat = {reshape(a.re, {t * n, m}), reshape(a.im, {t * n, m})};
  CxTensor out = row_normalize(flat, eps);
  return {reshape(out.re, {t, n, m}), reshape(out.im, {t, n, m})};
}

CxTensor bcol_normalize(const CxTensor& a, float eps) {
  check(a.re.ndim() == 3, "bcol_normalize: expects [T,K,K]");
  Tensor norm2 = add(tile_col_sum(square(a.re)), tile_col_sum(square(a.im)));
  Tensor inv = reciprocal(sqrt(add_scalar(norm2, eps)));
  return {bscale_cols(a.re, inv), bscale_cols(a.im, inv)};
}

}  // namespace adept::ag
