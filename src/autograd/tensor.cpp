#include "autograd/tensor.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

namespace adept::ag {

namespace {
// Grad mode is per-thread so concurrent no-grad evaluation (the serving
// worker pool, multi-threaded weight_expr readers) neither races on the flag
// nor accidentally disables tracking on another thread mid-training.
thread_local bool g_grad_enabled = true;
std::atomic<std::size_t> g_op_nodes{0};
}  // namespace

namespace debug {
std::size_t op_nodes_created() {
  return g_op_nodes.load(std::memory_order_relaxed);
}
}  // namespace debug

bool GradMode::enabled() { return g_grad_enabled; }
void GradMode::set_enabled(bool on) { g_grad_enabled = on; }

NoGradGuard::NoGradGuard() : prev_(GradMode::enabled()) {
  GradMode::set_enabled(false);
}
NoGradGuard::~NoGradGuard() { GradMode::set_enabled(prev_); }

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape, bool requires_grad) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  return make_tensor(std::vector<float>(static_cast<std::size_t>(n), 0.0f),
                     std::move(shape), requires_grad);
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value, bool requires_grad) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  return make_tensor(std::vector<float>(static_cast<std::size_t>(n), value),
                     std::move(shape), requires_grad);
}

Tensor Tensor::from_data(std::vector<std::int64_t> shape, std::vector<float> data,
                         bool requires_grad) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  check(static_cast<std::size_t>(n) == data.size(), "from_data: size mismatch");
  return make_tensor(std::move(data), std::move(shape), requires_grad);
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return make_tensor({value}, {1}, requires_grad);
}

Tensor Tensor::eye(std::int64_t n, bool requires_grad) {
  std::vector<float> d(static_cast<std::size_t>(n * n), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i * n + i)] = 1.0f;
  return make_tensor(std::move(d), {n, n}, requires_grad);
}

const std::vector<std::int64_t>& Tensor::shape() const { return impl_->shape; }
std::int64_t Tensor::numel() const { return impl_->numel(); }
std::int64_t Tensor::dim(std::size_t i) const { return impl_->shape.at(i); }
std::size_t Tensor::ndim() const { return impl_->shape.size(); }
bool Tensor::requires_grad() const { return impl_ && impl_->requires_grad; }
void Tensor::set_requires_grad(bool rg) { impl_->requires_grad = rg; }

std::vector<float>& Tensor::data() { return impl_->data; }
const std::vector<float>& Tensor::data() const { return impl_->data; }

std::vector<float>& Tensor::grad() {
  impl_->ensure_grad();
  return impl_->grad;
}
bool Tensor::has_grad() const { return impl_ && !impl_->grad.empty(); }
void Tensor::zero_grad() {
  if (impl_) std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

float Tensor::item() const {
  check(impl_->numel() == 1, "item: tensor is not a scalar");
  return impl_->data[0];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  check(impl_->shape.size() == 2, "at: tensor is not 2-D");
  return impl_->data[static_cast<std::size_t>(r * impl_->shape[1] + c)];
}

void Tensor::set_at(std::int64_t r, std::int64_t c, float v) {
  check(impl_->shape.size() == 2, "set_at: tensor is not 2-D");
  impl_->data[static_cast<std::size_t>(r * impl_->shape[1] + c)] = v;
}

namespace {

// Iterative post-order topological sort (avoids recursion depth limits on
// long SuperMesh chains).
void topo_sort(TensorImpl* root, std::vector<TensorImpl*>& order) {
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorImpl* child = node->parents[next_child].impl();
      ++next_child;
      if (child != nullptr && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::backward(const std::vector<float>* seed_grad) const {
  check(impl_ != nullptr, "backward: empty tensor");
  impl_->ensure_grad();
  if (seed_grad != nullptr) {
    check(seed_grad->size() == impl_->data.size(), "backward: bad seed size");
    impl_->grad = *seed_grad;
  } else {
    check(impl_->numel() == 1, "backward: non-scalar root needs a seed grad");
    impl_->grad[0] = 1.0f;
  }
  std::vector<TensorImpl*> order;
  topo_sort(impl_.get(), order);
  // Op nodes keep no gradient state across backward calls: when several
  // losses share subexpressions (the SuperMesh step state is reused by every
  // micro-shard forward within a step), a stale intermediate grad from an
  // earlier backward would be re-propagated into the leaves. Leaves are NOT
  // cleared — they accumulate until the caller zeroes them.
  for (TensorImpl* node : order) {
    if (node->backward_fn && !node->grad.empty() && node != impl_.get()) {
      node->grad.assign(node->grad.size(), 0.0f);
    }
  }
  // Post-order puts the root last; walk in reverse (root first).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

void Tensor::detach_() {
  impl_->parents.clear();
  impl_->backward_fn = nullptr;
}

Tensor make_tensor(std::vector<float> data, std::vector<std::int64_t> shape,
                   bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->data = std::move(data);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor make_op(std::vector<float> data, std::vector<std::int64_t> shape,
               std::vector<Tensor> parents,
               std::function<void(TensorImpl&)> backward) {
  g_op_nodes.fetch_add(1, std::memory_order_relaxed);
  auto impl = std::make_shared<TensorImpl>();
  impl->data = std::move(data);
  impl->shape = std::move(shape);
  bool any_grad = false;
  for (const auto& p : parents) any_grad = any_grad || p.requires_grad();
  if (any_grad && GradMode::enabled()) {
    impl->requires_grad = true;
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward);
  }
  return Tensor(std::move(impl));
}

}  // namespace adept::ag
