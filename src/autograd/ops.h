// Differentiable operator library on ag::Tensor.
//
// Broadcasting for binary elementwise ops supports the cases this project
// needs (kept deliberately small per CppCoreGuidelines P.9):
//   * identical shapes
//   * either operand a 1-element scalar
//   * [N,M] op [1,M] (row-vector broadcast) and [N,M] op [N,1] (column)
// Gradients for broadcast operands are reduced over the broadcast dims.
#pragma once

#include <vector>

#include "autograd/tensor.h"

namespace adept::ag {

// ---- elementwise binary (broadcasting) -----------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- elementwise unary ----------------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);          // clamps input at 1e-12 for stability
Tensor sin(const Tensor& a);
Tensor cos(const Tensor& a);
Tensor sqrt(const Tensor& a);         // clamps input at 0
Tensor abs(const Tensor& a);          // d|x|/dx = sign(x), 0 at x == 0
Tensor square(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor reciprocal(const Tensor& a);   // 1/x with 1e-12 magnitude clamp

// ---- scalar arithmetic ------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor pow_scalar(const Tensor& a, float p);  // x >= 0 expected for p<1

// Straight-through estimators ------------------------------------------
// Forward: round(x). Backward: identity (gradient passes through).
Tensor round_ste(const Tensor& a);
// Forward: value from `forward_values`; backward: identity into a.
// Generic STE building block used by DC binarization and soft projection.
Tensor ste_replace(const Tensor& a, std::vector<float> forward_values);

// ---- matrix ops -------------------------------------------------------
Tensor matmul(const Tensor& a, const Tensor& b);      // [N,K]x[K,M] -> [N,M]
// Batched matmul with a shared right operand: [B,N,K]x[K,M] -> [B,N,M].
// One tape node for the whole stack; dB reduces over the batch in a single
// flattened gemm, dA runs through the batched kernel.
Tensor bmm(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);                    // 2-D only
Tensor reshape(const Tensor& a, std::vector<std::int64_t> shape);
// Embed a vector [K] (or [K,1]) as a diagonal matrix [K,K].
Tensor diag(const Tensor& v);
// Extract the diagonal of [K,K] as [K].
Tensor diag_part(const Tensor& m);

// ---- reductions -------------------------------------------------------
Tensor sum(const Tensor& a);                          // -> [1]
Tensor mean(const Tensor& a);                         // -> [1]
Tensor row_sum(const Tensor& a);                      // [N,M] -> [N,1]
Tensor col_sum(const Tensor& a);                      // [N,M] -> [1,M]
// l2 norm of each row: [N,M] -> [N,1] (adds eps inside sqrt for stability).
Tensor row_l2_norm(const Tensor& a, float eps = 1e-12f);
Tensor col_l2_norm(const Tensor& a, float eps = 1e-12f);
// Per-tile column sums of a stacked [T,N,M]: out[t,j] = sum_i a[t,i,j],
// as [T,M]. The batched analogue of col_sum (same per-column accumulation
// order, so tile t's slice is bit-exact against col_sum of that tile).
Tensor tile_col_sum(const Tensor& a);

// ---- softmax family ---------------------------------------------------
Tensor softmax_rows(const Tensor& a);                 // [N,M] row-wise
Tensor log_softmax_rows(const Tensor& a);
// Cross entropy with integer labels; returns scalar mean loss.
Tensor cross_entropy(const Tensor& logits, const std::vector<int>& labels);

// ---- indexing / assembly ---------------------------------------------
// Single element of a flat tensor as a [1] tensor (gradient scatters back).
Tensor index(const Tensor& a, std::int64_t i);
// Sub-matrix copy: rows [r0, r0+rows), cols [c0, c0+cols).
Tensor slice2d(const Tensor& a, std::int64_t r0, std::int64_t rows,
               std::int64_t c0, std::int64_t cols);
// Assemble a [P*K, Q*K] matrix from P*Q tiles of shape [K,K], row-major grid.
Tensor block_matrix(const std::vector<Tensor>& tiles, std::int64_t p,
                    std::int64_t q);
// Same assembly from one stacked [P*Q,K,K] tensor (tile t = grid cell
// (t/Q, t%Q)): one tape node instead of P*Q slice parents.
Tensor block_matrix(const Tensor& stacked, std::int64_t p, std::int64_t q);
// Per-tile column scaling of a stacked [T,N,M] by s [T,M] (or [T,1,M]):
// out[t,i,j] = a[t,i,j] * s[t,j]. The batched analogue of the [N,M] x [1,M]
// row-vector broadcast of mul(); per-slot gradient accumulation follows the
// same ascending-row order.
Tensor bscale_cols(const Tensor& a, const Tensor& s);
// Concatenate 1-D tensors (or [1] scalars) into one vector.
Tensor concat_vec(const std::vector<Tensor>& parts);

// ---- convolution / pooling support ------------------------------------
// x: [N,C,H,W] -> columns [N*OH*OW, C*KH*KW]; backward is col2im.
Tensor im2col(const Tensor& x, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad);
// Rearrange matmul output [N*OH*OW, C] into [N,C,OH,OW].
Tensor rows_to_nchw(const Tensor& x, std::int64_t n, std::int64_t oh,
                    std::int64_t ow);
// Adaptive average pooling to (out_h, out_w); bins follow PyTorch semantics.
Tensor adaptive_avgpool2d(const Tensor& x, std::int64_t out_h, std::int64_t out_w);
// Its bin boundaries, shared with the compiled runtime (runtime/
// compiled_model.cpp) so the two implementations cannot drift: output bin o
// of an `in`-wide axis pooled to `out` covers [pool_bin_start, pool_bin_end).
inline std::int64_t pool_bin_start(std::int64_t o, std::int64_t in, std::int64_t out) {
  return (o * in) / out;
}
inline std::int64_t pool_bin_end(std::int64_t o, std::int64_t in, std::int64_t out) {
  return ((o + 1) * in + out - 1) / out;
}
Tensor maxpool2d(const Tensor& x, std::int64_t k, std::int64_t stride);
// Batch norm over N,H,W per channel. gamma/beta: [C]. In training mode the
// batch statistics are used and running stats are updated in-place.
Tensor batchnorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   std::vector<float>& running_mean, std::vector<float>& running_var,
                   bool training, float momentum = 0.1f, float eps = 1e-5f);

// ---- utilities ---------------------------------------------------------
// argmax over each row of [N,M].
std::vector<int> argmax_rows(const Tensor& a);

}  // namespace adept::ag
