// Model builders for the paper's evaluation networks.
//
//   proxy CNN  C(w)K5 - BN - ReLU - C(w)K5 - BN - ReLU - AvgPool5 - FC10
//              (paper: w = 32; the search proxy on synthetic-MNIST)
//   LeNet-5    C6K5 - ReLU - MaxPool2 - C16K5 - ReLU - MaxPool2 -
//              FC120 - ReLU - FC84 - ReLU - FC10
//   VGG-8      [C64 C64 M C128 C128 M C256 C256 M] - FC - FC10 (3x3 convs)
//
// All matmul-bearing layers (conv + linear) are ONN layers bound to a PTC
// weight implementation (dense reference, fixed topology, or live
// SuperMesh); BN/ReLU/pool stay electronic, as in the paper. `width_scale`
// shrinks channel counts for CPU-sized benchmark runs.
#pragma once

#include <memory>

#include "nn/module.h"
#include "nn/onn_layers.h"

namespace adept::nn {

struct OnnModel {
  std::shared_ptr<Sequential> net;
  // Non-owning views of the ONN layers for phase-noise control.
  std::vector<OnnLayer*> onn_layers;

  std::vector<ag::Tensor> parameters() { return net->parameters(); }
  void set_training(bool training) { net->set_training(training); }
  bool training() const { return net->training(); }
  // Variation-aware noise on every photonic layer (0 disables); re-arms
  // every layer's drift stream from `seed`.
  void set_phase_noise(double sigma, std::uint64_t seed);
  // Change sigma only, keeping each layer's drift stream position (nominal
  // evaluations toggle noise off/on without replaying the stream).
  void set_phase_noise_sigma(double sigma);
  // Push/pop of the full per-layer noise state (sigma + stream).
  std::vector<PhaseNoiseState> save_phase_noise() const;
  void restore_phase_noise(const std::vector<PhaseNoiseState>& states);
};

OnnModel make_proxy_cnn(int in_channels, int image_hw, int classes,
                        const PtcBinding& binding, adept::Rng& rng, int width = 32);

OnnModel make_lenet5(int in_channels, int image_hw, int classes,
                     const PtcBinding& binding, adept::Rng& rng,
                     double width_scale = 1.0);

OnnModel make_vgg8(int in_channels, int image_hw, int classes,
                   const PtcBinding& binding, adept::Rng& rng,
                   double width_scale = 1.0);

}  // namespace adept::nn
