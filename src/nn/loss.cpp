#include "nn/loss.h"

namespace adept::nn {

ag::Tensor cross_entropy_loss(const ag::Tensor& logits, const std::vector<int>& labels) {
  return ag::cross_entropy(logits, labels);
}

double accuracy(const ag::Tensor& logits, const std::vector<int>& labels) {
  const std::vector<int> pred = ag::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace adept::nn
