#include "nn/models.h"

#include <algorithm>
#include <cmath>

#include "nn/layers.h"

namespace adept::nn {

void OnnModel::set_phase_noise(double sigma, std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto* layer : onn_layers) layer->set_phase_noise(sigma, s++);
}

void OnnModel::set_phase_noise_sigma(double sigma) {
  for (auto* layer : onn_layers) layer->set_phase_noise_sigma(sigma);
}

std::vector<PhaseNoiseState> OnnModel::save_phase_noise() const {
  std::vector<PhaseNoiseState> states;
  states.reserve(onn_layers.size());
  for (const auto* layer : onn_layers) states.push_back(layer->phase_noise_state());
  return states;
}

void OnnModel::restore_phase_noise(const std::vector<PhaseNoiseState>& states) {
  for (std::size_t i = 0; i < onn_layers.size() && i < states.size(); ++i) {
    onn_layers[i]->restore_phase_noise(states[i]);
  }
}

namespace {

// Track spatial size through valid convs / pools.
struct Shape {
  int c, hw;
};

std::shared_ptr<ONNConv2d> add_conv(OnnModel& model, Shape& s, int out_c, int k,
                                    int stride, int pad, const PtcBinding& binding,
                                    adept::Rng& rng) {
  auto conv = std::make_shared<ONNConv2d>(s.c, out_c, k, binding, rng, stride, pad);
  model.net->add(conv);
  model.onn_layers.push_back(conv.get());
  s.c = out_c;
  s.hw = (s.hw + 2 * pad - k) / stride + 1;
  return conv;
}

void add_linear(OnnModel& model, int in, int out, const PtcBinding& binding,
                adept::Rng& rng) {
  auto fc = std::make_shared<ONNLinear>(in, out, binding, rng);
  model.net->add(fc);
  model.onn_layers.push_back(fc.get());
}

}  // namespace

OnnModel make_proxy_cnn(int in_channels, int image_hw, int classes,
                        const PtcBinding& binding, adept::Rng& rng, int width) {
  OnnModel model;
  model.net = std::make_shared<Sequential>();
  Shape s{in_channels, image_hw};
  add_conv(model, s, width, 5, /*stride=*/1, /*pad=*/0, binding, rng);
  model.net->add(std::make_shared<BatchNorm2d>(width));
  model.net->add(std::make_shared<ReLU>());
  add_conv(model, s, width, 5, 1, 0, binding, rng);
  model.net->add(std::make_shared<BatchNorm2d>(width));
  model.net->add(std::make_shared<ReLU>());
  model.net->add(std::make_shared<AdaptiveAvgPool2d>(5, 5));
  model.net->add(std::make_shared<Flatten>());
  add_linear(model, width * 5 * 5, classes, binding, rng);
  return model;
}

OnnModel make_lenet5(int in_channels, int image_hw, int classes,
                     const PtcBinding& binding, adept::Rng& rng, double width_scale) {
  auto scaled = [&](int w) { return std::max(2, static_cast<int>(std::lround(w * width_scale))); };
  const int c1 = scaled(6), c2 = scaled(16), f1 = scaled(120), f2 = scaled(84);
  OnnModel model;
  model.net = std::make_shared<Sequential>();
  Shape s{in_channels, image_hw};
  add_conv(model, s, c1, 5, 1, 0, binding, rng);
  model.net->add(std::make_shared<ReLU>());
  model.net->add(std::make_shared<MaxPool2d>(2, 2));
  s.hw /= 2;
  add_conv(model, s, c2, 5, 1, 0, binding, rng);
  model.net->add(std::make_shared<ReLU>());
  model.net->add(std::make_shared<MaxPool2d>(2, 2));
  s.hw /= 2;
  model.net->add(std::make_shared<Flatten>());
  add_linear(model, c2 * s.hw * s.hw, f1, binding, rng);
  model.net->add(std::make_shared<ReLU>());
  add_linear(model, f1, f2, binding, rng);
  model.net->add(std::make_shared<ReLU>());
  add_linear(model, f2, classes, binding, rng);
  return model;
}

OnnModel make_vgg8(int in_channels, int image_hw, int classes,
                   const PtcBinding& binding, adept::Rng& rng, double width_scale) {
  auto scaled = [&](int w) { return std::max(4, static_cast<int>(std::lround(w * width_scale))); };
  OnnModel model;
  model.net = std::make_shared<Sequential>();
  Shape s{in_channels, image_hw};
  const int stage_width[3] = {scaled(64), scaled(128), scaled(256)};
  for (int stage = 0; stage < 3; ++stage) {
    for (int rep = 0; rep < 2; ++rep) {
      add_conv(model, s, stage_width[stage], 3, 1, 1, binding, rng);
      model.net->add(std::make_shared<BatchNorm2d>(stage_width[stage]));
      model.net->add(std::make_shared<ReLU>());
    }
    model.net->add(std::make_shared<MaxPool2d>(2, 2));
    s.hw /= 2;
  }
  model.net->add(std::make_shared<Flatten>());
  const int fc_width = scaled(256);
  add_linear(model, stage_width[2] * s.hw * s.hw, fc_width, binding, rng);
  model.net->add(std::make_shared<ReLU>());
  add_linear(model, fc_width, classes, binding, rng);
  return model;
}

}  // namespace adept::nn
