// Variation-aware training and robustness evaluation (paper Sec. 4.1/4.2,
// Fig. 4): train with Gaussian phase noise injected into every photonic
// phase shifter on each forward pass, then evaluate accuracy under test-time
// phase drift of increasing intensity.
#pragma once

#include <cstdint>

#include "nn/models.h"

namespace adept::nn {

struct VariationConfig {
  double train_noise_sigma = 0.02;  // paper: N(0, 0.02^2) during training
  std::uint64_t noise_seed = 1234;
};

// Enable training-time phase noise on all photonic layers of the model.
void enable_variation_aware_training(OnnModel& model, const VariationConfig& config);

// Disable noise (nominal inference).
void disable_phase_noise(OnnModel& model);

// Set test-time drift of the given sigma (robustness sweeps).
void set_test_noise(OnnModel& model, double sigma, std::uint64_t seed);

}  // namespace adept::nn
