#include "nn/variation.h"

namespace adept::nn {

void enable_variation_aware_training(OnnModel& model, const VariationConfig& config) {
  model.set_phase_noise(config.train_noise_sigma, config.noise_seed);
}

void disable_phase_noise(OnnModel& model) { model.set_phase_noise(0.0, 0); }

void set_test_noise(OnnModel& model, double sigma, std::uint64_t seed) {
  model.set_phase_noise(sigma, seed);
}

}  // namespace adept::nn
