// Classification loss and metrics.
#pragma once

#include <vector>

#include "autograd/ops.h"

namespace adept::nn {

// Mean cross-entropy over integer labels (thin wrapper over ag::cross_entropy).
ag::Tensor cross_entropy_loss(const ag::Tensor& logits, const std::vector<int>& labels);

// Fraction of rows whose argmax matches the label.
double accuracy(const ag::Tensor& logits, const std::vector<int>& labels);

}  // namespace adept::nn
