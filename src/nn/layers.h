// Standard (electronic) NN layers used around the photonic tensor cores:
// the paper's models keep BatchNorm / ReLU / pooling / flatten in
// electronics and map the matmul-heavy Linear/Conv onto PTCs (onn_layers.h).
#pragma once

#include "common/rng.h"
#include "nn/module.h"

namespace adept::nn {

class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, adept::Rng& rng,
         bool bias = true);
  ag::Tensor forward(const ag::Tensor& x) override;  // [N, in] -> [N, out]
  std::vector<ag::Tensor> parameters() override;

  ag::Tensor& weight() { return weight_; }
  ag::Tensor& bias() { return bias_; }
  bool has_bias() const { return bias_.defined(); }
  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  ag::Tensor weight_;  // [in, out]
  ag::Tensor bias_;    // [1, out] (undefined when bias=false)
};

class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         adept::Rng& rng, std::int64_t stride = 1, std::int64_t pad = 0,
         bool bias = true);
  ag::Tensor forward(const ag::Tensor& x) override;  // [N,C,H,W]
  std::vector<ag::Tensor> parameters() override;

  ag::Tensor& weight() { return weight_; }
  ag::Tensor& bias() { return bias_; }
  bool has_bias() const { return bias_.defined(); }
  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return k_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 private:
  std::int64_t in_c_, out_c_, k_, stride_, pad_;
  ag::Tensor weight_;  // [C*k*k, out_c]
  ag::Tensor bias_;    // [1, out_c]
};

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);
  ag::Tensor forward(const ag::Tensor& x) override;
  std::vector<ag::Tensor> parameters() override;

  std::int64_t channels() const { return channels_; }
  float momentum() const { return momentum_; }
  float eps() const { return eps_; }
  ag::Tensor& gamma() { return gamma_; }
  ag::Tensor& beta() { return beta_; }
  std::vector<float>& running_mean() { return running_mean_; }
  std::vector<float>& running_var() { return running_var_; }

  // Deferred-stat mode for the data-parallel micro-shard paths (src/comm):
  // the running-stat EMA chain is order-dependent, so a training forward
  // must not fold its batch statistics in on the spot. With capture enabled,
  // a training forward still normalizes with the batch statistics (ghost
  // batch norm over the shard) but leaves the exact float mean/var in
  // captured_mean()/captured_var() instead of touching the running stats.
  // The caller gathers every shard's captured stats across ranks and replays
  // them in shard order via update_running_stats, giving identical running
  // stats at any rank count. Eval forwards ignore the flag.
  void set_stat_capture(bool on) { capture_ = on; }
  bool stat_capture() const { return capture_; }
  const std::vector<float>& captured_mean() const { return captured_mean_; }
  const std::vector<float>& captured_var() const { return captured_var_; }
  // One EMA replay step: rs = (1 - momentum) * rs + momentum * stat.
  void update_running_stats(const float* mean, const float* var);

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  ag::Tensor gamma_, beta_;
  std::vector<float> running_mean_, running_var_;
  bool capture_ = false;
  std::vector<float> captured_mean_, captured_var_;
};

class ReLU : public Module {
 public:
  ag::Tensor forward(const ag::Tensor& x) override;
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride);
  ag::Tensor forward(const ag::Tensor& x) override;

  std::int64_t kernel() const { return k_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t k_, stride_;
};

class AdaptiveAvgPool2d : public Module {
 public:
  AdaptiveAvgPool2d(std::int64_t out_h, std::int64_t out_w);
  ag::Tensor forward(const ag::Tensor& x) override;

  std::int64_t out_h() const { return out_h_; }
  std::int64_t out_w() const { return out_w_; }

 private:
  std::int64_t out_h_, out_w_;
};

// [N,C,H,W] -> [N, C*H*W]
class Flatten : public Module {
 public:
  ag::Tensor forward(const ag::Tensor& x) override;
};

// Kaiming-uniform weight init helper shared by layers.
ag::Tensor kaiming_uniform(std::vector<std::int64_t> shape, std::int64_t fan_in,
                           adept::Rng& rng);

}  // namespace adept::nn
