#include "nn/module.h"

namespace adept::nn {

ag::Tensor Sequential::forward(const ag::Tensor& x) {
  ag::Tensor h = x;
  for (auto& m : modules_) h = m->forward(h);
  return h;
}

std::vector<ag::Tensor> Sequential::parameters() {
  std::vector<ag::Tensor> out;
  for (auto& m : modules_) {
    for (auto& p : m->parameters()) out.push_back(p);
  }
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) m->set_training(training);
}

}  // namespace adept::nn
