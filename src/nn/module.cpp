#include "nn/module.h"

namespace adept::nn {

ag::Tensor Sequential::forward(const ag::Tensor& x) {
  ag::Tensor h = x;
  for (auto& m : modules_) h = m->forward(h);
  return h;
}

std::vector<ag::Tensor> Sequential::parameters() {
  std::vector<ag::Tensor> out;
  for (auto& m : modules_) {
    for (auto& p : m->parameters()) out.push_back(p);
  }
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) m->set_training(training);
}

std::vector<std::shared_ptr<Module>> flatten_modules(
    const std::shared_ptr<Module>& root) {
  std::vector<std::shared_ptr<Module>> out;
  if (auto seq = std::dynamic_pointer_cast<Sequential>(root)) {
    for (const auto& child : seq->modules()) {
      for (auto& m : flatten_modules(child)) out.push_back(std::move(m));
    }
    return out;
  }
  if (root) out.push_back(root);
  return out;
}

}  // namespace adept::nn
