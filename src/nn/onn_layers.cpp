#include "nn/onn_layers.h"

#include <cmath>

#include "nn/layers.h"
#include "photonics/devices.h"

namespace adept::nn {

using ag::CxTensor;
using ag::Tensor;
using photonics::BlockSpec;

PtcBinding PtcBinding::dense() { return PtcBinding{}; }

PtcBinding PtcBinding::fixed(std::shared_ptr<const photonics::PtcTopology> topo) {
  PtcBinding b;
  b.kind = Kind::ptc;
  b.k = topo->k;
  b.topology = std::move(topo);
  return b;
}

PtcBinding PtcBinding::searched(core::SuperMesh* mesh) {
  PtcBinding b;
  b.kind = Kind::supermesh;
  b.k = mesh->k();
  b.supermesh = mesh;
  return b;
}

namespace {

// Constant complex tensor P * T of one fixed block (the passive, fabricated
// part of the block transfer). The phase column R varies per tile/step, so
// the block transfer is (P*T) * R, and with R diagonal the product reduces
// to a column scaling of the P*T constant.
CxTensor block_pt_constant(const BlockSpec& block, int k) {
  const std::vector<double> t(block.dc_mask.size(), photonics::balanced_coupler_t());
  const photonics::CMat tm =
      photonics::coupler_column_matrix(k, block.start, block.dc_mask, t);
  const photonics::CMat pt = block.perm.to_cmatrix() * tm;
  std::vector<float> re(static_cast<std::size_t>(k * k)), im(re.size());
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      re[static_cast<std::size_t>(i * k + j)] = static_cast<float>(pt.at(i, j).real());
      im[static_cast<std::size_t>(i * k + j)] = static_cast<float>(pt.at(i, j).imag());
    }
  }
  return {ag::make_tensor(std::move(re), {k, k}, false),
          ag::make_tensor(std::move(im), {k, k}, false)};
}

Tensor random_phases(std::int64_t k, adept::Rng& rng) {
  std::vector<float> phi(static_cast<std::size_t>(k));
  for (auto& p : phi) p = static_cast<float>(rng.uniform(-3.14159265, 3.14159265));
  return ag::make_tensor(std::move(phi), {k}, /*requires_grad=*/true);
}

}  // namespace

PtcWeight::PtcWeight(std::int64_t out_features, std::int64_t in_features,
                     const PtcBinding& binding, adept::Rng& rng)
    : out_(out_features), in_(in_features), binding_(binding), noise_rng_(rng.split()) {
  if (binding_.kind == PtcBinding::Kind::dense) {
    p_ = 1;
    q_ = 1;
    dense_weight_ = kaiming_uniform({out_, in_}, in_, rng);
    return;
  }
  const std::int64_t k = binding_.k;
  p_ = (out_ + k - 1) / k;
  q_ = (in_ + k - 1) / k;
  std::size_t blocks_u = 0, blocks_v = 0;
  if (binding_.kind == PtcBinding::Kind::ptc) {
    const auto& topo = *binding_.topology;
    blocks_u = topo.u_blocks.size();
    blocks_v = topo.v_blocks.size();
    for (const auto& b : topo.u_blocks) pt_u_.push_back(block_pt_constant(b, topo.k));
    for (const auto& b : topo.v_blocks) pt_v_.push_back(block_pt_constant(b, topo.k));
  } else {
    blocks_u = static_cast<std::size_t>(binding_.supermesh->blocks_per_unitary());
    blocks_v = blocks_u;
  }
  // Sigma init keeps Re(U Sigma V) near kaiming scale: entries of a random
  // unitary have magnitude ~1/sqrt(K), so var(W) ~ sigma^2 / (2K).
  const float sigma_init = static_cast<float>(
      std::sqrt(2.0 * static_cast<double>(k) / static_cast<double>(std::max<std::int64_t>(in_, 1))));
  const std::int64_t tiles = p_ * q_;
  for (std::int64_t t = 0; t < tiles; ++t) {
    std::vector<Tensor> pu, pv;
    for (std::size_t b = 0; b < blocks_u; ++b) pu.push_back(random_phases(k, rng));
    for (std::size_t b = 0; b < blocks_v; ++b) pv.push_back(random_phases(k, rng));
    phi_u_.push_back(std::move(pu));
    phi_v_.push_back(std::move(pv));
    std::vector<float> sig(static_cast<std::size_t>(k));
    for (auto& s : sig) {
      s = sigma_init * static_cast<float>(rng.uniform(0.5, 1.5)) *
          (rng.bernoulli(0.5) ? 1.0f : -1.0f);
    }
    sigma_.push_back(ag::make_tensor(std::move(sig), {1, k}, true));
  }
}

void PtcWeight::set_phase_noise(double sigma, std::uint64_t seed) {
  noise_sigma_ = sigma;
  noise_rng_ = adept::Rng(seed);
}

CxTensor PtcWeight::fixed_tile_unitary(const std::vector<BlockSpec>& blocks,
                                       const std::vector<CxTensor>& pt_consts,
                                       const std::vector<Tensor>& phases) {
  const std::int64_t k = binding_.k;
  CxTensor acc = CxTensor::eye(k);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    Tensor phi = phases[b];
    if (noise_sigma_ > 0.0) {
      std::vector<float> drift(static_cast<std::size_t>(k));
      for (auto& d : drift) d = static_cast<float>(noise_rng_.normal(0.0, noise_sigma_));
      phi = ag::add(phi, ag::make_tensor(std::move(drift), {k}, false));
    }
    // Block transfer (P*T) * R(phi); R diagonal => fused column scaling.
    CxTensor scaled = ag::colphase_scale(pt_consts[b], phi);
    acc = ag::cmatmul(scaled, acc);
  }
  return acc;
}

Tensor PtcWeight::weight_expr() {
  if (binding_.kind == PtcBinding::Kind::dense) return dense_weight_;
  const std::int64_t k = binding_.k;
  std::vector<Tensor> tiles;
  tiles.reserve(static_cast<std::size_t>(p_ * q_));
  for (std::int64_t t = 0; t < p_ * q_; ++t) {
    CxTensor u, v;
    if (binding_.kind == PtcBinding::Kind::ptc) {
      u = fixed_tile_unitary(binding_.topology->u_blocks, pt_u_,
                             phi_u_[static_cast<std::size_t>(t)]);
      v = fixed_tile_unitary(binding_.topology->v_blocks, pt_v_,
                             phi_v_[static_cast<std::size_t>(t)]);
    } else {
      u = binding_.supermesh->tile_unitary(core::Side::u,
                                           phi_u_[static_cast<std::size_t>(t)]);
      v = binding_.supermesh->tile_unitary(core::Side::v,
                                           phi_v_[static_cast<std::size_t>(t)]);
    }
    // W = U * diag(sigma) * V; diag => column scaling of U.
    CxTensor us = ag::cscale(u, sigma_[static_cast<std::size_t>(t)]);
    CxTensor w = ag::cmatmul(us, v);
    tiles.push_back(w.re);  // coherent detection keeps the real part
  }
  Tensor blocked = ag::block_matrix(tiles, p_, q_);  // [p*K, q*K]
  if (p_ * k == out_ && q_ * k == in_) return blocked;
  return ag::slice2d(blocked, 0, out_, 0, in_);
}

std::vector<Tensor> PtcWeight::parameters() {
  if (binding_.kind == PtcBinding::Kind::dense) return {dense_weight_};
  std::vector<Tensor> out;
  for (auto& tile : phi_u_) {
    for (auto& p : tile) out.push_back(p);
  }
  for (auto& tile : phi_v_) {
    for (auto& p : tile) out.push_back(p);
  }
  for (auto& s : sigma_) out.push_back(s);
  return out;
}

ONNLinear::ONNLinear(std::int64_t in_features, std::int64_t out_features,
                     const PtcBinding& binding, adept::Rng& rng, bool bias)
    : in_(in_features), out_(out_features), weight_(out_features, in_features, binding, rng) {
  if (bias) bias_ = Tensor::zeros({1, out_}, /*requires_grad=*/true);
}

Tensor ONNLinear::forward(const Tensor& x) {
  Tensor w = weight_.weight_expr();  // [out, in]
  // A stacked [G,N,in] group of mini-batches runs through the batched gemm
  // as one tape node; the weight expression is built once for the whole
  // group either way.
  Tensor y = x.ndim() == 3 ? ag::bmm(x, ag::transpose(w))
                           : ag::matmul(x, ag::transpose(w));
  if (bias_.defined()) y = ag::add(y, bias_);
  return y;
}

std::vector<Tensor> ONNLinear::parameters() {
  auto out = weight_.parameters();
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

void ONNLinear::set_phase_noise(double sigma, std::uint64_t seed) {
  weight_.set_phase_noise(sigma, seed);
}

ONNConv2d::ONNConv2d(std::int64_t in_channels, std::int64_t out_channels,
                     std::int64_t kernel, const PtcBinding& binding, adept::Rng& rng,
                     std::int64_t stride, std::int64_t pad, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(out_channels, in_channels * kernel * kernel, binding, rng) {
  if (bias) bias_ = Tensor::zeros({1, out_c_}, /*requires_grad=*/true);
}

Tensor ONNConv2d::forward(const Tensor& x) {
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad_ - k_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * pad_ - k_) / stride_ + 1;
  Tensor cols = ag::im2col(x, k_, k_, stride_, pad_);      // [N*OH*OW, fan_in]
  Tensor wt = ag::transpose(weight_.weight_expr());        // [fan_in, out_c]
  Tensor y = ag::matmul(cols, wt);
  if (bias_.defined()) y = ag::add(y, bias_);
  return ag::rows_to_nchw(y, n, oh, ow);
}

std::vector<Tensor> ONNConv2d::parameters() {
  auto out = weight_.parameters();
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

void ONNConv2d::set_phase_noise(double sigma, std::uint64_t seed) {
  weight_.set_phase_noise(sigma, seed);
}

}  // namespace adept::nn
