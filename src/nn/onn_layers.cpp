#include "nn/onn_layers.h"

#include <cmath>
#include <mutex>
#include <numbers>

#include "common/version.h"
#include "nn/layers.h"
#include "photonics/devices.h"

namespace adept::nn {

using ag::CxTensor;
using ag::Tensor;
using photonics::BlockSpec;

PtcBinding PtcBinding::dense() { return PtcBinding{}; }

PtcBinding PtcBinding::fixed(std::shared_ptr<const photonics::PtcTopology> topo) {
  PtcBinding b;
  b.kind = Kind::ptc;
  b.k = topo->k;
  b.topology = std::move(topo);
  return b;
}

PtcBinding PtcBinding::searched(core::SuperMesh* mesh) {
  PtcBinding b;
  b.kind = Kind::supermesh;
  b.k = mesh->k();
  b.supermesh = mesh;
  return b;
}

namespace {

// Constant complex tensor P * T of one fixed block (the passive, fabricated
// part of the block transfer). The phase column R varies per tile/step, so
// the block transfer is (P*T) * R, and with R diagonal the product reduces
// to a column scaling of the P*T constant.
CxTensor block_pt_constant(const BlockSpec& block, int k) {
  const std::vector<double> t(block.dc_mask.size(), photonics::balanced_coupler_t());
  const photonics::CMat tm =
      photonics::coupler_column_matrix(k, block.start, block.dc_mask, t);
  const photonics::CMat pt = block.perm.to_cmatrix() * tm;
  std::vector<float> re(static_cast<std::size_t>(k * k)), im(re.size());
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      re[static_cast<std::size_t>(i * k + j)] = static_cast<float>(pt.at(i, j).real());
      im[static_cast<std::size_t>(i * k + j)] = static_cast<float>(pt.at(i, j).imag());
    }
  }
  return {ag::make_tensor(std::move(re), {k, k}, false),
          ag::make_tensor(std::move(im), {k, k}, false)};
}

float random_phase(adept::Rng& rng) {
  return static_cast<float>(rng.uniform(-std::numbers::pi, std::numbers::pi));
}

// Stacked identity [T,K,K] (empty block chains degenerate to it).
CxTensor stacked_eye(std::int64_t tiles, std::int64_t k) {
  std::vector<float> re(static_cast<std::size_t>(tiles * k * k), 0.0f);
  for (std::int64_t t = 0; t < tiles; ++t) {
    for (std::int64_t i = 0; i < k; ++i) {
      re[static_cast<std::size_t>((t * k + i) * k + i)] = 1.0f;
    }
  }
  return {ag::make_tensor(std::move(re), {tiles, k, k}, false),
          Tensor::zeros({tiles, k, k})};
}

}  // namespace

PtcWeight::PtcWeight(std::int64_t out_features, std::int64_t in_features,
                     const PtcBinding& binding, adept::Rng& rng)
    : out_(out_features), in_(in_features), binding_(binding), noise_rng_(rng.split()) {
  if (binding_.kind == PtcBinding::Kind::dense) {
    p_ = 1;
    q_ = 1;
    dense_weight_ = kaiming_uniform({out_, in_}, in_, rng);
    return;
  }
  const std::int64_t k = binding_.k;
  p_ = (out_ + k - 1) / k;
  q_ = (in_ + k - 1) / k;
  std::size_t blocks_u = 0, blocks_v = 0;
  if (binding_.kind == PtcBinding::Kind::ptc) {
    const auto& topo = *binding_.topology;
    blocks_u = topo.u_blocks.size();
    blocks_v = topo.v_blocks.size();
    for (const auto& b : topo.u_blocks) pt_u_.push_back(block_pt_constant(b, topo.k));
    for (const auto& b : topo.v_blocks) pt_v_.push_back(block_pt_constant(b, topo.k));
  } else {
    blocks_u = static_cast<std::size_t>(binding_.supermesh->blocks_per_unitary());
    blocks_v = blocks_u;
  }
  // Sigma init keeps Re(U Sigma V) near kaiming scale: entries of a random
  // unitary have magnitude ~1/sqrt(K), so var(W) ~ sigma^2 / (2K).
  const float sigma_init = static_cast<float>(
      std::sqrt(2.0 * static_cast<double>(k) / static_cast<double>(std::max<std::int64_t>(in_, 1))));
  const std::int64_t tiles = p_ * q_;
  // Parameters live as per-block [T,K] stacks; the RNG is still consumed in
  // the historical tile-major order (all of tile 0's phases and sigma, then
  // tile 1's, ...) so initialization matches the per-tile-storage layout.
  const std::size_t kz = static_cast<std::size_t>(k);
  std::vector<std::vector<float>> pu(blocks_u), pv(blocks_v);
  for (auto& s : pu) s.resize(static_cast<std::size_t>(tiles) * kz);
  for (auto& s : pv) s.resize(static_cast<std::size_t>(tiles) * kz);
  std::vector<float> sig(static_cast<std::size_t>(tiles) * kz);
  for (std::int64_t t = 0; t < tiles; ++t) {
    for (std::size_t b = 0; b < blocks_u; ++b) {
      for (std::size_t i = 0; i < kz; ++i) {
        pu[b][static_cast<std::size_t>(t) * kz + i] = random_phase(rng);
      }
    }
    for (std::size_t b = 0; b < blocks_v; ++b) {
      for (std::size_t i = 0; i < kz; ++i) {
        pv[b][static_cast<std::size_t>(t) * kz + i] = random_phase(rng);
      }
    }
    for (std::size_t i = 0; i < kz; ++i) {
      sig[static_cast<std::size_t>(t) * kz + i] =
          sigma_init * static_cast<float>(rng.uniform(0.5, 1.5)) *
          (rng.bernoulli(0.5) ? 1.0f : -1.0f);
    }
  }
  for (auto& s : pu) phi_u_.push_back(ag::make_tensor(std::move(s), {tiles, k}, true));
  for (auto& s : pv) phi_v_.push_back(ag::make_tensor(std::move(s), {tiles, k}, true));
  sigma_ = ag::make_tensor(std::move(sig), {tiles, k}, true);
}

void PtcWeight::set_phase_noise(double sigma, std::uint64_t seed) {
  noise_sigma_ = sigma;
  noise_rng_ = adept::Rng(seed);
  adept::bump_param_version();
}

void PtcWeight::set_phase_noise_sigma(double sigma) {
  if (sigma == noise_sigma_) return;
  noise_sigma_ = sigma;
  adept::bump_param_version();
}

void PtcWeight::restore_phase_noise(const PhaseNoiseState& state) {
  // The stream position only affects outputs while noise is active, so a
  // 0 -> 0 restore keeps the eval-weight cache valid.
  const bool observable = state.sigma != noise_sigma_ || state.sigma > 0.0;
  noise_sigma_ = state.sigma;
  noise_rng_ = state.rng;
  if (observable) adept::bump_param_version();
}

CxTensor PtcWeight::batched_fixed_unitary(const std::vector<CxTensor>& pt_consts,
                                          const std::vector<Tensor>& phase_stacks) {
  const std::int64_t k = binding_.k;
  if (pt_consts.empty()) return stacked_eye(p_ * q_, k);
  CxTensor acc = CxTensor::eye(k);  // shared seed, broadcast by bcmatmul
  for (std::size_t b = 0; b < pt_consts.size(); ++b) {
    Tensor phi = phase_stacks[b];
    if (noise_sigma_ > 0.0) {
      std::vector<float> drift(static_cast<std::size_t>(phi.numel()));
      for (auto& d : drift) d = static_cast<float>(noise_rng_.normal(0.0, noise_sigma_));
      phi = ag::add(phi, ag::make_tensor(std::move(drift), phi.shape(), false));
    }
    // Block transfer (P*T) * R(phi_t) for all tiles: one batched column
    // scaling of the shared P*T constant.
    CxTensor scaled = ag::bcolphase_scale(pt_consts[b], phi);
    acc = ag::bcmatmul(scaled, acc);
  }
  return acc;
}

CxTensor PtcWeight::fixed_tile_unitary(const std::vector<CxTensor>& pt_consts,
                                       const std::vector<Tensor>& phases) {
  const std::int64_t k = binding_.k;
  CxTensor acc = CxTensor::eye(k);
  for (std::size_t b = 0; b < pt_consts.size(); ++b) {
    Tensor phi = phases[b];
    if (noise_sigma_ > 0.0) {
      std::vector<float> drift(static_cast<std::size_t>(k));
      for (auto& d : drift) d = static_cast<float>(noise_rng_.normal(0.0, noise_sigma_));
      phi = ag::add(phi, ag::make_tensor(std::move(drift), phi.shape(), false));
    }
    // Block transfer (P*T) * R(phi); R diagonal => fused column scaling.
    CxTensor scaled = ag::colphase_scale(pt_consts[b], phi);
    acc = ag::cmatmul(scaled, acc);
  }
  return acc;
}

Tensor PtcWeight::build_weight() {
  const std::int64_t k = binding_.k;
  CxTensor u, v;
  if (binding_.kind == PtcBinding::Kind::ptc) {
    u = batched_fixed_unitary(pt_u_, phi_u_);
    v = batched_fixed_unitary(pt_v_, phi_v_);
  } else {
    u = binding_.supermesh->tile_unitary_batched(core::Side::u, phi_u_);
    v = binding_.supermesh->tile_unitary_batched(core::Side::v, phi_v_);
  }
  // W[t] = U[t] * diag(sigma[t]) * V[t]; diag => column scaling of U.
  CxTensor us = ag::bcscale_cols(u, sigma_);
  CxTensor w = ag::bcmatmul(us, v);
  Tensor blocked = ag::block_matrix(w.re, p_, q_);  // [p*K, q*K]
  if (p_ * k == out_ && q_ * k == in_) return blocked;
  return ag::slice2d(blocked, 0, out_, 0, in_);
}

Tensor PtcWeight::weight_expr() {
  if (binding_.kind == PtcBinding::Kind::dense) return dense_weight_;
  // Under NoGradGuard with noise off the materialized weight is a pure
  // function of the parameter/noise version: reuse it until something bumps
  // adept::param_version() (optimizer step, begin_step, noise setters).
  // Concurrent no-grad readers (the serving worker pool) share the cache
  // through a shared_mutex: the check-then-assign is no longer a race — the
  // first builder of a version publishes under the exclusive lock and every
  // later reader of that version takes the shared lock.
  const bool cacheable = !ag::GradMode::enabled() && noise_sigma_ == 0.0;
  if (!cacheable) return build_weight();
  const std::uint64_t version = adept::param_version();
  {
    std::shared_lock lock(cache_mutex_);
    if (cached_weight_.defined() && cached_version_ == version) {
      return cached_weight_;
    }
  }
  Tensor w = build_weight();
  std::unique_lock lock(cache_mutex_);
  // Publish only if the cache is empty or strictly older: a builder that
  // raced past a version bump must not clobber a newer published weight.
  if (!cached_weight_.defined() || cached_version_ < version) {
    cached_weight_ = w;
    cached_version_ = version;
  }
  return w;
}

Tensor PtcWeight::weight_expr_per_tile() {
  if (binding_.kind == PtcBinding::Kind::dense) return dense_weight_;
  const std::int64_t k = binding_.k;
  std::vector<Tensor> tiles;
  tiles.reserve(static_cast<std::size_t>(p_ * q_));
  for (std::int64_t t = 0; t < p_ * q_; ++t) {
    // Row t of each [T,K] stack as this tile's [1,K] phase vectors.
    auto tile_rows_of = [&](const std::vector<Tensor>& stacks) {
      std::vector<Tensor> rows;
      rows.reserve(stacks.size());
      for (const auto& s : stacks) rows.push_back(ag::slice2d(s, t, 1, 0, k));
      return rows;
    };
    CxTensor u, v;
    if (binding_.kind == PtcBinding::Kind::ptc) {
      u = fixed_tile_unitary(pt_u_, tile_rows_of(phi_u_));
      v = fixed_tile_unitary(pt_v_, tile_rows_of(phi_v_));
    } else {
      u = binding_.supermesh->tile_unitary(core::Side::u, tile_rows_of(phi_u_));
      v = binding_.supermesh->tile_unitary(core::Side::v, tile_rows_of(phi_v_));
    }
    // W = U * diag(sigma) * V; diag => column scaling of U.
    CxTensor us = ag::cscale(u, ag::slice2d(sigma_, t, 1, 0, k));
    CxTensor w = ag::cmatmul(us, v);
    tiles.push_back(w.re);  // coherent detection keeps the real part
  }
  Tensor blocked = ag::block_matrix(tiles, p_, q_);  // [p*K, q*K]
  if (p_ * k == out_ && q_ * k == in_) return blocked;
  return ag::slice2d(blocked, 0, out_, 0, in_);
}

std::vector<Tensor> PtcWeight::parameters() {
  if (binding_.kind == PtcBinding::Kind::dense) return {dense_weight_};
  std::vector<Tensor> out;
  for (auto& p : phi_u_) out.push_back(p);
  for (auto& p : phi_v_) out.push_back(p);
  out.push_back(sigma_);
  return out;
}

ONNLinear::ONNLinear(std::int64_t in_features, std::int64_t out_features,
                     const PtcBinding& binding, adept::Rng& rng, bool bias)
    : in_(in_features), out_(out_features), weight_(out_features, in_features, binding, rng) {
  if (bias) bias_ = Tensor::zeros({1, out_}, /*requires_grad=*/true);
}

Tensor ONNLinear::forward(const Tensor& x) {
  Tensor w = weight_.weight_expr();  // [out, in]
  // A stacked [G,N,in] group of mini-batches runs through the batched gemm
  // as one tape node; the weight expression is built once for the whole
  // group either way.
  Tensor y = x.ndim() == 3 ? ag::bmm(x, ag::transpose(w))
                           : ag::matmul(x, ag::transpose(w));
  if (bias_.defined()) y = ag::add(y, bias_);
  return y;
}

std::vector<Tensor> ONNLinear::parameters() {
  auto out = weight_.parameters();
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

void ONNLinear::set_phase_noise(double sigma, std::uint64_t seed) {
  weight_.set_phase_noise(sigma, seed);
}

void ONNLinear::set_phase_noise_sigma(double sigma) {
  weight_.set_phase_noise_sigma(sigma);
}

PhaseNoiseState ONNLinear::phase_noise_state() const {
  return weight_.phase_noise_state();
}

void ONNLinear::restore_phase_noise(const PhaseNoiseState& state) {
  weight_.restore_phase_noise(state);
}

ONNConv2d::ONNConv2d(std::int64_t in_channels, std::int64_t out_channels,
                     std::int64_t kernel, const PtcBinding& binding, adept::Rng& rng,
                     std::int64_t stride, std::int64_t pad, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(out_channels, in_channels * kernel * kernel, binding, rng) {
  if (bias) bias_ = Tensor::zeros({1, out_c_}, /*requires_grad=*/true);
}

Tensor ONNConv2d::forward(const Tensor& x) {
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad_ - k_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * pad_ - k_) / stride_ + 1;
  Tensor cols = ag::im2col(x, k_, k_, stride_, pad_);      // [N*OH*OW, fan_in]
  Tensor wt = ag::transpose(weight_.weight_expr());        // [fan_in, out_c]
  Tensor y = ag::matmul(cols, wt);
  if (bias_.defined()) y = ag::add(y, bias_);
  return ag::rows_to_nchw(y, n, oh, ow);
}

std::vector<Tensor> ONNConv2d::parameters() {
  auto out = weight_.parameters();
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

void ONNConv2d::set_phase_noise(double sigma, std::uint64_t seed) {
  weight_.set_phase_noise(sigma, seed);
}

void ONNConv2d::set_phase_noise_sigma(double sigma) {
  weight_.set_phase_noise_sigma(sigma);
}

PhaseNoiseState ONNConv2d::phase_noise_state() const {
  return weight_.phase_noise_state();
}

void ONNConv2d::restore_phase_noise(const PhaseNoiseState& state) {
  weight_.restore_phase_noise(state);
}

}  // namespace adept::nn
