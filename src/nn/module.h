// Minimal module system for composing trainable layers.
#pragma once

#include <memory>
#include <vector>

#include "autograd/tensor.h"

namespace adept::nn {

class Module {
 public:
  virtual ~Module() = default;
  virtual ag::Tensor forward(const ag::Tensor& x) = 0;
  virtual std::vector<ag::Tensor> parameters() { return {}; }
  // Training/eval mode (batch norm statistics, noise injection).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

 protected:
  bool training_ = true;
};

class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::shared_ptr<Module>> modules)
      : modules_(std::move(modules)) {}

  void add(std::shared_ptr<Module> module) { modules_.push_back(std::move(module)); }

  ag::Tensor forward(const ag::Tensor& x) override;
  std::vector<ag::Tensor> parameters() override;
  void set_training(bool training) override;

  const std::vector<std::shared_ptr<Module>>& modules() const { return modules_; }

 private:
  std::vector<std::shared_ptr<Module>> modules_;
};

// Flattened view of a module tree: nested Sequentials contribute their
// children in forward order (forward semantics are identical). Shared by
// the checkpoint serializer and the compiled-model lowering so the two
// walks cannot drift.
std::vector<std::shared_ptr<Module>> flatten_modules(
    const std::shared_ptr<Module>& root);

}  // namespace adept::nn
