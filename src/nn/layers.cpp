#include "nn/layers.h"

#include <cmath>

#include "autograd/ops.h"

namespace adept::nn {

using ag::Tensor;

Tensor kaiming_uniform(std::vector<std::int64_t> shape, std::int64_t fan_in,
                       adept::Rng& rng) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  const double bound = std::sqrt(6.0 / static_cast<double>(std::max<std::int64_t>(fan_in, 1)));
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-bound, bound));
  return ag::make_tensor(std::move(data), std::move(shape), /*requires_grad=*/true);
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, adept::Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features) {
  weight_ = kaiming_uniform({in_, out_}, in_, rng);
  if (bias) bias_ = Tensor::zeros({1, out_}, /*requires_grad=*/true);
}

Tensor Linear::forward(const Tensor& x) {
  // 2-D mini-batches use the plain gemm; stacked [G,N,in] groups go through
  // the batched kernel as a single tape node.
  Tensor y = x.ndim() == 3 ? ag::bmm(x, weight_) : ag::matmul(x, weight_);
  if (bias_.defined()) y = ag::add(y, bias_);
  return y;
}

std::vector<Tensor> Linear::parameters() {
  std::vector<Tensor> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               adept::Rng& rng, std::int64_t stride, std::int64_t pad, bool bias)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), stride_(stride), pad_(pad) {
  const std::int64_t fan_in = in_c_ * k_ * k_;
  weight_ = kaiming_uniform({fan_in, out_c_}, fan_in, rng);
  if (bias) bias_ = Tensor::zeros({1, out_c_}, /*requires_grad=*/true);
}

Tensor Conv2d::forward(const Tensor& x) {
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad_ - k_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * pad_ - k_) / stride_ + 1;
  Tensor cols = ag::im2col(x, k_, k_, stride_, pad_);  // [N*OH*OW, C*k*k]
  Tensor y = ag::matmul(cols, weight_);                // [N*OH*OW, out_c]
  if (bias_.defined()) y = ag::add(y, bias_);
  return ag::rows_to_nchw(y, n, oh, ow);
}

std::vector<Tensor> Conv2d::parameters() {
  std::vector<Tensor> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  gamma_ = Tensor::full({channels_}, 1.0f, /*requires_grad=*/true);
  beta_ = Tensor::zeros({channels_}, /*requires_grad=*/true);
  running_mean_.assign(static_cast<std::size_t>(channels_), 0.0f);
  running_var_.assign(static_cast<std::size_t>(channels_), 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  if (training() && capture_) {
    // momentum = 1 turns the in-place running-stat update into a pure
    // write: (1-1)*scratch + 1*stat == stat, so the zeroed scratch buffers
    // come back holding the exact float batch statistics while the real
    // running stats stay untouched (replayed later in fixed shard order —
    // see the header comment).
    captured_mean_.assign(static_cast<std::size_t>(channels_), 0.0f);
    captured_var_.assign(static_cast<std::size_t>(channels_), 0.0f);
    return ag::batchnorm2d(x, gamma_, beta_, captured_mean_, captured_var_,
                           /*training=*/true, /*momentum=*/1.0f, eps_);
  }
  return ag::batchnorm2d(x, gamma_, beta_, running_mean_, running_var_, training(),
                         momentum_, eps_);
}

void BatchNorm2d::update_running_stats(const float* mean, const float* var) {
  for (std::int64_t ci = 0; ci < channels_; ++ci) {
    const auto i = static_cast<std::size_t>(ci);
    running_mean_[i] = (1.0f - momentum_) * running_mean_[i] + momentum_ * mean[i];
    running_var_[i] = (1.0f - momentum_) * running_var_[i] + momentum_ * var[i];
  }
}

std::vector<Tensor> BatchNorm2d::parameters() { return {gamma_, beta_}; }

Tensor ReLU::forward(const Tensor& x) { return ag::relu(x); }

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : k_(kernel), stride_(stride) {}

Tensor MaxPool2d::forward(const Tensor& x) { return ag::maxpool2d(x, k_, stride_); }

AdaptiveAvgPool2d::AdaptiveAvgPool2d(std::int64_t out_h, std::int64_t out_w)
    : out_h_(out_h), out_w_(out_w) {}

Tensor AdaptiveAvgPool2d::forward(const Tensor& x) {
  return ag::adaptive_avgpool2d(x, out_h_, out_w_);
}

Tensor Flatten::forward(const Tensor& x) {
  const std::int64_t n = x.dim(0);
  return ag::reshape(x, {n, x.numel() / n});
}

}  // namespace adept::nn
