// Training loops and the CNN-based search proxy task.
//
//   train_classifier    supervised training of an OnnModel (used for
//                       re-training searched topologies, baselines, and
//                       variation-aware training)
//   evaluate_accuracy   test-set accuracy (optionally under phase noise)
//   OnnProxyTask        core::ProxyTask implementation that embeds a live
//                       SuperMesh into the proxy CNN and trains it on the
//                       synthetic-MNIST proxy (the paper's search setup)
#pragma once

#include <cstdint>

#include "core/search.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "nn/models.h"

namespace adept::nn {

class BatchNorm2d;  // layers.h

struct TrainConfig {
  int epochs = 5;
  int batch_size = 64;
  double lr = 1e-3;
  double weight_decay = 1e-4;
  bool cosine_lr = true;
  std::uint64_t seed = 7;
  // Variation-aware training noise (0 disables).
  double train_phase_noise = 0.0;
  bool verbose = false;
  // Data-parallel rank count: 0 resolves the ADEPT_RANKS knob (default 1),
  // explicit values are clamped by comm::resolve_ranks. With a resolved
  // world of 1 the legacy single-process loop runs unless data_parallel
  // forces the sharded numerics (sharded results are bit-identical across
  // rank counts, but are a different deterministic summation order than the
  // legacy loop).
  int ranks = 0;
  bool data_parallel = false;
};

struct TrainStats {
  std::vector<double> train_loss_per_epoch;
  std::vector<double> test_accuracy_per_epoch;
  double final_accuracy = 0.0;
};

TrainStats train_classifier(OnnModel& model, const data::SyntheticDataset& train_set,
                            const data::SyntheticDataset& test_set,
                            const TrainConfig& config);

// Accuracy over the full dataset. If noise_sigma > 0 the photonic layers see
// fresh Gaussian phase drift on every batch (Fig. 4 protocol).
double evaluate_accuracy(OnnModel& model, const data::SyntheticDataset& dataset,
                         int batch_size = 128, double noise_sigma = 0.0,
                         std::uint64_t noise_seed = 99);

// CNN proxy task for the ADEPT search (paper: 2-layer CNN on MNIST).
class OnnProxyTask : public core::ProxyTask {
 public:
  OnnProxyTask(const data::SyntheticDataset& train_set,
               const data::SyntheticDataset& val_set, int batch_size, int cnn_width,
               std::uint64_t seed);

  void bind(core::SuperMesh& mesh) override;
  ag::Tensor loss(core::SuperMesh& mesh, bool validation) override;
  std::vector<ag::Tensor> weights() override;
  double metric(core::SuperMesh& mesh) override;  // validation accuracy

  // Micro-shard support (data-parallel search): the shard items are the
  // samples of the step's batch; BatchNorm running stats go through the
  // capture/gather/replay protocol (stat row = [mean C | var C] per BN
  // layer in module order).
  bool supports_sharding() const override { return true; }
  std::int64_t begin_step_items(bool validation) override;
  ag::Tensor loss_shard(core::SuperMesh& mesh, bool validation,
                        std::int64_t lo, std::int64_t hi,
                        std::int64_t items) override;
  std::int64_t stat_slots() const override;
  void capture_shard_stats(float* row) override;
  void apply_step_stats(const float* rows, int shards) override;

 private:
  data::Batch next_batch(bool validation);

  const data::SyntheticDataset& train_set_;
  const data::SyntheticDataset& val_set_;
  data::DataLoader train_loader_;
  data::DataLoader val_loader_;
  int batch_size_;
  int cnn_width_;
  adept::Rng rng_;
  int train_cursor_ = 0;
  int val_cursor_ = 0;
  OnnModel model_;
  bool bound_ = false;
  data::Batch step_batch_;               // pinned by begin_step_items
  std::vector<BatchNorm2d*> bn_layers_;  // collected at bind
};

}  // namespace adept::nn
