#include "nn/train.h"

#include <cstdio>

#include "nn/loss.h"
#include "optim/optimizer.h"
#include "optim/schedule.h"

namespace adept::nn {

using ag::Tensor;

TrainStats train_classifier(OnnModel& model, const data::SyntheticDataset& train_set,
                            const data::SyntheticDataset& test_set,
                            const TrainConfig& config) {
  adept::Rng rng(config.seed);
  data::DataLoader loader(train_set, config.batch_size);
  optim::Adam opt(model.parameters(), config.lr, 0.9, 0.999, 1e-8, config.weight_decay);
  const int total_steps = config.epochs * loader.batches_per_epoch();
  optim::CosineLr schedule(config.lr, total_steps);
  if (config.train_phase_noise > 0.0) {
    model.set_phase_noise(config.train_phase_noise, config.seed ^ 0xbeef);
  }

  TrainStats stats;
  int step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    model.set_training(true);
    loader.shuffle(rng);
    double epoch_loss = 0.0;
    const int nb = loader.batches_per_epoch();
    for (int b = 0; b < nb; ++b) {
      if (config.cosine_lr) opt.set_lr(schedule.at(step));
      data::Batch batch = loader.batch(b);
      Tensor logits = model.net->forward(batch.images);
      Tensor loss = cross_entropy_loss(logits, batch.labels);
      opt.zero_grad();
      loss.backward();
      opt.step();
      epoch_loss += loss.item();
      ++step;
    }
    stats.train_loss_per_epoch.push_back(epoch_loss / std::max(1, nb));
    // evaluate_accuracy runs nominally (it pushes sigma to 0 and pops the
    // full noise state afterwards), so the variation-aware drift stream
    // armed before the epoch loop keeps advancing across epochs instead of
    // replaying the same seed every epoch.
    stats.test_accuracy_per_epoch.push_back(evaluate_accuracy(model, test_set));
    if (config.verbose) {
      std::printf("  epoch %d: loss %.4f acc %.4f\n", epoch,
                  stats.train_loss_per_epoch.back(),
                  stats.test_accuracy_per_epoch.back());
    }
  }
  stats.final_accuracy = stats.test_accuracy_per_epoch.empty()
                             ? 0.0
                             : stats.test_accuracy_per_epoch.back();
  return stats;
}

double evaluate_accuracy(OnnModel& model, const data::SyntheticDataset& dataset,
                         int batch_size, double noise_sigma, std::uint64_t noise_seed) {
  ag::NoGradGuard guard;
  // Evaluation must leave the model exactly as it found it: restore the
  // caller's training mode (not unconditionally `true`) and pop the full
  // phase-noise state (sigma AND drift stream) so a nominal eval in the
  // middle of variation-aware training neither resets nor advances the
  // training noise stream.
  const bool was_training = model.training();
  model.set_training(false);
  const auto saved_noise = model.save_phase_noise();
  if (noise_sigma > 0.0) {
    model.set_phase_noise(noise_sigma, noise_seed);
  } else {
    model.set_phase_noise_sigma(0.0);  // nominal eval, streams untouched
  }
  data::DataLoader loader(dataset, batch_size);
  double correct_weighted = 0.0;
  int total = 0;
  for (int b = 0; b < loader.batches_per_epoch(); ++b) {
    data::Batch batch = loader.batch(b);
    Tensor logits = model.net->forward(batch.images);
    correct_weighted +=
        accuracy(logits, batch.labels) * static_cast<double>(batch.labels.size());
    total += static_cast<int>(batch.labels.size());
  }
  model.restore_phase_noise(saved_noise);
  model.set_training(was_training);
  return total == 0 ? 0.0 : correct_weighted / total;
}

OnnProxyTask::OnnProxyTask(const data::SyntheticDataset& train_set,
                           const data::SyntheticDataset& val_set, int batch_size,
                           int cnn_width, std::uint64_t seed)
    : train_set_(train_set),
      val_set_(val_set),
      train_loader_(train_set, batch_size),
      val_loader_(val_set, batch_size),
      batch_size_(batch_size),
      cnn_width_(cnn_width),
      rng_(seed) {}

void OnnProxyTask::bind(core::SuperMesh& mesh) {
  PtcBinding binding = PtcBinding::searched(&mesh);
  model_ = make_proxy_cnn(train_set_.spec().channels, train_set_.spec().height,
                          train_set_.spec().classes, binding, rng_, cnn_width_);
  train_loader_.shuffle(rng_);
  val_loader_.shuffle(rng_);
  bound_ = true;
}

data::Batch OnnProxyTask::next_batch(bool validation) {
  data::DataLoader& loader = validation ? val_loader_ : train_loader_;
  int& cursor = validation ? val_cursor_ : train_cursor_;
  if (cursor >= loader.batches_per_epoch()) {
    cursor = 0;
    loader.shuffle(rng_);
  }
  return loader.batch(cursor++);
}

Tensor OnnProxyTask::loss(core::SuperMesh& mesh, bool validation) {
  (void)mesh;  // topology expressions already cached by begin_step
  ag::check(bound_, "OnnProxyTask: bind() not called");
  data::Batch batch = next_batch(validation);
  Tensor logits = model_.net->forward(batch.images);
  return cross_entropy_loss(logits, batch.labels);
}

std::vector<Tensor> OnnProxyTask::weights() { return model_.parameters(); }

double OnnProxyTask::metric(core::SuperMesh& mesh) {
  ag::NoGradGuard guard;
  adept::Rng eval_rng(11);
  mesh.begin_step(/*tau=*/0.5, eval_rng, /*stochastic=*/false);
  return evaluate_accuracy(model_, val_set_, batch_size_);
}

}  // namespace adept::nn
