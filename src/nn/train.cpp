#include "nn/train.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

#include "comm/sharded.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "optim/schedule.h"
#include "runtime/checkpoint.h"

namespace adept::nn {

using ag::Tensor;

namespace {

// The cosine schedule must span the GLOBAL step count, derived from the
// dataset itself, so every rank of a data-parallel run (and the legacy loop)
// anneals identically no matter how its local loader is shaped.
int global_steps_per_epoch(const data::SyntheticDataset& train_set,
                           const TrainConfig& config) {
  return (train_set.size() + config.batch_size - 1) / config.batch_size;
}

std::vector<BatchNorm2d*> collect_bn_layers(OnnModel& model) {
  std::vector<BatchNorm2d*> out;
  for (const auto& m : flatten_modules(model.net)) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(m.get())) out.push_back(bn);
  }
  return out;
}

// Stat-row layout shared by capture and replay: [mean C | var C] per
// BatchNorm layer, in module order.
std::int64_t bn_stat_cols(const std::vector<BatchNorm2d*>& bns) {
  std::int64_t cols = 0;
  for (auto* bn : bns) cols += 2 * bn->channels();
  return cols;
}

void capture_bn_row(const std::vector<BatchNorm2d*>& bns, float* row) {
  for (auto* bn : bns) {
    const auto c = static_cast<std::ptrdiff_t>(bn->channels());
    std::copy(bn->captured_mean().begin(), bn->captured_mean().end(), row);
    row += c;
    std::copy(bn->captured_var().begin(), bn->captured_var().end(), row);
    row += c;
  }
}

void replay_bn_rows(const std::vector<BatchNorm2d*>& bns, const float* rows,
                    int shards, std::int64_t cols) {
  for (int s = 0; s < shards; ++s) {
    const float* row = rows + static_cast<std::ptrdiff_t>(s) * cols;
    for (auto* bn : bns) {
      bn->update_running_stats(row, row + bn->channels());
      row += 2 * bn->channels();
    }
  }
}

// Variation-aware noise in the sharded path is a pure function of
// (step, shard): each shard forward re-arms the drift streams, so the noise
// a sample sees never depends on how many forwards this rank ran before.
std::uint64_t shard_noise_seed(std::uint64_t seed, int step, int shard) {
  const std::uint64_t tag =
      static_cast<std::uint64_t>(step) * (comm::kMaxShards + 1) +
      static_cast<std::uint64_t>(shard) + 1;
  return (seed ^ 0xbeefULL) + 0x9e3779b97f4a7c15ULL * tag;
}

TrainStats train_classifier_ranked(OnnModel& model,
                                   const data::SyntheticDataset& train_set,
                                   const data::SyntheticDataset& test_set,
                                   const TrainConfig& config, int world) {
  std::string bytes;
  if (world > 1) {
    try {
      bytes = runtime::encode_checkpoint(model);
    } catch (const std::exception& e) {
      throw std::runtime_error(
          std::string("train_classifier: multi-rank training replicates the "
                      "model via checkpoints, which this model does not "
                      "support (") +
          e.what() +
          "); freeze searched layers to a fixed PtcTopology first");
    }
  }
  const int steps_per_epoch = global_steps_per_epoch(train_set, config);
  const int total_steps = config.epochs * steps_per_epoch;

  TrainStats stats;
  comm::run_ranks(world, [&](comm::Communicator& c) {
    // Rank 0 trains the caller's model in place; the others train
    // checkpoint clones (bit-identical parameters by the round-trip
    // guarantee). Updates stay in lockstep, so the clones are discarded.
    std::optional<runtime::LoadedCheckpoint> clone;
    OnnModel* m = &model;
    if (c.rank() != 0) {
      clone = runtime::decode_checkpoint(bytes);
      m = &clone->model;
    }
    std::vector<BatchNorm2d*> bns = collect_bn_layers(*m);
    const std::int64_t stat_cols = bn_stat_cols(bns);
    for (auto* bn : bns) bn->set_stat_capture(true);

    adept::Rng rng(config.seed);  // shared seed -> identical shuffles
    data::DataLoader loader(train_set, config.batch_size);
    optim::Adam opt(m->parameters(), config.lr, 0.9, 0.999, 1e-8,
                    config.weight_decay);
    optim::CosineLr schedule(config.lr, total_steps);

    comm::ShardedGradReducer* cur_reducer = nullptr;
    std::vector<double> step_scalars;
    opt.set_pre_step_hook(
        [&] { step_scalars = cur_reducer->finish(c); });

    // Per-epoch telemetry: histogram/counter/gauges on rank 0 only so the
    // recorded counts match the single-rank path regardless of world size;
    // spans on every rank so per-rank skew shows up in the trace.
    obs::Histogram& h_epoch_us = obs::histogram("train.epoch_us");
    obs::Gauge& g_loss = obs::gauge("train.loss");
    obs::Gauge& g_acc = obs::gauge("train.accuracy");
    obs::Counter& epochs_total = obs::counter("train.epochs");
    static const obs::TraceId t_epoch = obs::intern_name("train.epoch");

    TrainStats local;
    int step = 0;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      obs::TraceSpan epoch_span(t_epoch);
      obs::ScopedTimerUs epoch_timer(c.rank() == 0 ? &h_epoch_us : nullptr);
      m->set_training(true);
      loader.shuffle(rng);
      double epoch_loss = 0.0;
      const int nb = loader.batches_per_epoch();
      for (int b = 0; b < nb; ++b) {
        if (config.cosine_lr) opt.set_lr(schedule.at(step));
        // Every rank assembles the full step batch (cheap, keeps the rng
        // streams identical) and computes only its owned micro-shards.
        data::Batch batch = loader.batch(b);
        const auto n = static_cast<std::int64_t>(batch.labels.size());
        const int shards = comm::shard_count(n);
        comm::ShardedGradReducer reducer(opt.params(), /*scalar_slots=*/1);
        std::vector<float> stat_rows(
            static_cast<std::size_t>(shards) *
                static_cast<std::size_t>(stat_cols),
            0.0f);
        for (int s = 0; s < shards; ++s) {
          if (comm::shard_owner(s, shards, c.world_size()) != c.rank()) {
            continue;
          }
          opt.zero_grad();
          if (config.train_phase_noise > 0.0) {
            m->set_phase_noise(config.train_phase_noise,
                               shard_noise_seed(config.seed, step, s));
          }
          const auto r = comm::shard_range(n, s, shards);
          data::Batch sb = data::slice_batch(batch, r.lo, r.hi);
          Tensor logits = m->net->forward(sb.images);
          // Scale the shard mean so the shard losses of the step sum to the
          // full-batch mean loss.
          Tensor loss = ag::mul_scalar(
              cross_entropy_loss(logits, sb.labels),
              static_cast<float>(r.hi - r.lo) / static_cast<float>(n));
          loss.backward();
          reducer.add_shard({static_cast<double>(loss.item())});
          if (stat_cols > 0) {
            capture_bn_row(bns, stat_rows.data() +
                                    static_cast<std::size_t>(s) *
                                        static_cast<std::size_t>(stat_cols));
          }
        }
        cur_reducer = &reducer;
        opt.step();  // pre-step hook allreduces grads + loss across ranks
        cur_reducer = nullptr;
        if (stat_cols > 0) {
          // Rows are zero except at their owner, so the sum IS the gather;
          // every rank replays the identical bits in shard order.
          c.allreduce_sum(stat_rows.data(),
                          static_cast<std::int64_t>(stat_rows.size()));
          replay_bn_rows(bns, stat_rows.data(), shards, stat_cols);
        }
        epoch_loss += step_scalars.empty() ? 0.0 : step_scalars[0];
        ++step;
      }
      local.train_loss_per_epoch.push_back(epoch_loss / std::max(1, nb));
      if (c.rank() == 0) {
        local.test_accuracy_per_epoch.push_back(
            evaluate_accuracy(*m, test_set));
        epochs_total.inc();
        g_loss.set(local.train_loss_per_epoch.back());
        g_acc.set(local.test_accuracy_per_epoch.back());
        if (config.verbose) {
          std::printf("  epoch %d: loss %.4f acc %.4f\n", epoch,
                      local.train_loss_per_epoch.back(),
                      local.test_accuracy_per_epoch.back());
        }
      }
    }
    for (auto* bn : bns) bn->set_stat_capture(false);
    if (c.rank() == 0) {
      local.final_accuracy = local.test_accuracy_per_epoch.empty()
                                 ? 0.0
                                 : local.test_accuracy_per_epoch.back();
      stats = std::move(local);
    }
  });
  return stats;
}

}  // namespace

TrainStats train_classifier(OnnModel& model, const data::SyntheticDataset& train_set,
                            const data::SyntheticDataset& test_set,
                            const TrainConfig& config) {
  const int world = comm::resolve_ranks(config.ranks);
  if (world > 1 || config.data_parallel) {
    return train_classifier_ranked(model, train_set, test_set, config, world);
  }
  adept::Rng rng(config.seed);
  data::DataLoader loader(train_set, config.batch_size);
  optim::Adam opt(model.parameters(), config.lr, 0.9, 0.999, 1e-8, config.weight_decay);
  const int total_steps = config.epochs * global_steps_per_epoch(train_set, config);
  optim::CosineLr schedule(config.lr, total_steps);
  if (config.train_phase_noise > 0.0) {
    model.set_phase_noise(config.train_phase_noise, config.seed ^ 0xbeef);
  }

  obs::Histogram& h_epoch_us = obs::histogram("train.epoch_us");
  obs::Gauge& g_loss = obs::gauge("train.loss");
  obs::Gauge& g_acc = obs::gauge("train.accuracy");
  obs::Counter& epochs_total = obs::counter("train.epochs");
  static const obs::TraceId t_epoch = obs::intern_name("train.epoch");

  TrainStats stats;
  int step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    obs::TraceSpan epoch_span(t_epoch);
    obs::ScopedTimerUs epoch_timer(h_epoch_us);
    model.set_training(true);
    loader.shuffle(rng);
    double epoch_loss = 0.0;
    const int nb = loader.batches_per_epoch();
    for (int b = 0; b < nb; ++b) {
      if (config.cosine_lr) opt.set_lr(schedule.at(step));
      data::Batch batch = loader.batch(b);
      Tensor logits = model.net->forward(batch.images);
      Tensor loss = cross_entropy_loss(logits, batch.labels);
      opt.zero_grad();
      loss.backward();
      opt.step();
      epoch_loss += loss.item();
      ++step;
    }
    stats.train_loss_per_epoch.push_back(epoch_loss / std::max(1, nb));
    // evaluate_accuracy runs nominally (it pushes sigma to 0 and pops the
    // full noise state afterwards), so the variation-aware drift stream
    // armed before the epoch loop keeps advancing across epochs instead of
    // replaying the same seed every epoch.
    stats.test_accuracy_per_epoch.push_back(evaluate_accuracy(model, test_set));
    epochs_total.inc();
    g_loss.set(stats.train_loss_per_epoch.back());
    g_acc.set(stats.test_accuracy_per_epoch.back());
    if (config.verbose) {
      std::printf("  epoch %d: loss %.4f acc %.4f\n", epoch,
                  stats.train_loss_per_epoch.back(),
                  stats.test_accuracy_per_epoch.back());
    }
  }
  stats.final_accuracy = stats.test_accuracy_per_epoch.empty()
                             ? 0.0
                             : stats.test_accuracy_per_epoch.back();
  return stats;
}

double evaluate_accuracy(OnnModel& model, const data::SyntheticDataset& dataset,
                         int batch_size, double noise_sigma, std::uint64_t noise_seed) {
  ag::NoGradGuard guard;
  // Evaluation must leave the model exactly as it found it: restore the
  // caller's training mode (not unconditionally `true`) and pop the full
  // phase-noise state (sigma AND drift stream) so a nominal eval in the
  // middle of variation-aware training neither resets nor advances the
  // training noise stream.
  const bool was_training = model.training();
  model.set_training(false);
  const auto saved_noise = model.save_phase_noise();
  if (noise_sigma > 0.0) {
    model.set_phase_noise(noise_sigma, noise_seed);
  } else {
    model.set_phase_noise_sigma(0.0);  // nominal eval, streams untouched
  }
  data::DataLoader loader(dataset, batch_size);
  double correct_weighted = 0.0;
  int total = 0;
  for (int b = 0; b < loader.batches_per_epoch(); ++b) {
    data::Batch batch = loader.batch(b);
    Tensor logits = model.net->forward(batch.images);
    correct_weighted +=
        accuracy(logits, batch.labels) * static_cast<double>(batch.labels.size());
    total += static_cast<int>(batch.labels.size());
  }
  model.restore_phase_noise(saved_noise);
  model.set_training(was_training);
  return total == 0 ? 0.0 : correct_weighted / total;
}

OnnProxyTask::OnnProxyTask(const data::SyntheticDataset& train_set,
                           const data::SyntheticDataset& val_set, int batch_size,
                           int cnn_width, std::uint64_t seed)
    : train_set_(train_set),
      val_set_(val_set),
      train_loader_(train_set, batch_size),
      val_loader_(val_set, batch_size),
      batch_size_(batch_size),
      cnn_width_(cnn_width),
      rng_(seed) {}

void OnnProxyTask::bind(core::SuperMesh& mesh) {
  PtcBinding binding = PtcBinding::searched(&mesh);
  model_ = make_proxy_cnn(train_set_.spec().channels, train_set_.spec().height,
                          train_set_.spec().classes, binding, rng_, cnn_width_);
  bn_layers_ = collect_bn_layers(model_);
  train_loader_.shuffle(rng_);
  val_loader_.shuffle(rng_);
  bound_ = true;
}

data::Batch OnnProxyTask::next_batch(bool validation) {
  data::DataLoader& loader = validation ? val_loader_ : train_loader_;
  int& cursor = validation ? val_cursor_ : train_cursor_;
  if (cursor >= loader.batches_per_epoch()) {
    cursor = 0;
    loader.shuffle(rng_);
  }
  return loader.batch(cursor++);
}

Tensor OnnProxyTask::loss(core::SuperMesh& mesh, bool validation) {
  (void)mesh;  // topology expressions already cached by begin_step
  ag::check(bound_, "OnnProxyTask: bind() not called");
  data::Batch batch = next_batch(validation);
  Tensor logits = model_.net->forward(batch.images);
  return cross_entropy_loss(logits, batch.labels);
}

std::int64_t OnnProxyTask::begin_step_items(bool validation) {
  ag::check(bound_, "OnnProxyTask: bind() not called");
  // Sharded training forwards must not fold batch statistics into the
  // running stats on the spot — capture them for the gather/replay protocol.
  for (auto* bn : bn_layers_) bn->set_stat_capture(true);
  step_batch_ = next_batch(validation);
  return static_cast<std::int64_t>(step_batch_.labels.size());
}

Tensor OnnProxyTask::loss_shard(core::SuperMesh& mesh, bool validation,
                                std::int64_t lo, std::int64_t hi,
                                std::int64_t items) {
  (void)mesh, (void)validation;  // batch pinned by begin_step_items
  data::Batch sb = data::slice_batch(step_batch_, lo, hi);
  Tensor logits = model_.net->forward(sb.images);
  return ag::mul_scalar(cross_entropy_loss(logits, sb.labels),
                        static_cast<float>(hi - lo) /
                            static_cast<float>(items));
}

std::int64_t OnnProxyTask::stat_slots() const {
  return bn_stat_cols(bn_layers_);
}

void OnnProxyTask::capture_shard_stats(float* row) {
  capture_bn_row(bn_layers_, row);
}

void OnnProxyTask::apply_step_stats(const float* rows, int shards) {
  replay_bn_rows(bn_layers_, rows, shards, bn_stat_cols(bn_layers_));
}

std::vector<Tensor> OnnProxyTask::weights() { return model_.parameters(); }

double OnnProxyTask::metric(core::SuperMesh& mesh) {
  ag::NoGradGuard guard;
  adept::Rng eval_rng(11);
  mesh.begin_step(/*tau=*/0.5, eval_rng, /*stochastic=*/false);
  return evaluate_accuracy(model_, val_set_, batch_size_);
}

}  // namespace adept::nn
