// Optical neural-network layers: Linear / Conv2d whose weight matrix is
// physically realized by photonic tensor cores.
//
// A logical weight W [out, in] is partitioned into ceil(out/K) x ceil(in/K)
// tiles of K x K (paper Eq. 1). Every tile is W_pq = U_pq Sigma_pq V_pq
// where U/V share one circuit *topology* across all tiles but carry
// tile-private phase programs Phi and diagonal Sigma. The realized weight is
// the real part of the complex transfer (coherent detection).
//
// Three interchangeable weight implementations:
//   dense      plain trainable matrix (electronic reference)
//   ptc        a frozen PtcTopology (searched design or MZI/FFT baseline);
//              supports Gaussian phase-noise injection for variation-aware
//              training and robustness evaluation (Fig. 4)
//   supermesh  a live core::SuperMesh being searched (ADEPT training); the
//              caller drives SuperMesh::begin_step once per optimization step
//
// Phases are stored as per-block [T,K] stacks (T = tile count), so all
// tiles advance through each block of the U/V chains as ONE batched tape
// node (bblock_transfer / bcolphase_scale / bcmatmul) instead of T scalar
// chains. Under NoGradGuard with noise disabled, the materialized [out,in]
// weight is cached and keyed on adept::param_version() — evaluation loops
// rebuild the mesh once per parameter change instead of once per batch.
#pragma once

#include <memory>
#include <shared_mutex>

#include "autograd/complex.h"
#include "common/rng.h"
#include "core/supermesh.h"
#include "nn/module.h"
#include "photonics/topology.h"

namespace adept::nn {

struct PtcBinding {
  enum class Kind { dense, ptc, supermesh };
  Kind kind = Kind::dense;
  int k = 8;  // tile size (ignored for dense)
  std::shared_ptr<const photonics::PtcTopology> topology;  // for Kind::ptc
  core::SuperMesh* supermesh = nullptr;                    // for Kind::supermesh

  static PtcBinding dense();
  static PtcBinding fixed(std::shared_ptr<const photonics::PtcTopology> topo);
  static PtcBinding searched(core::SuperMesh* mesh);
};

// Snapshot of a layer's phase-noise configuration INCLUDING the drift
// stream position. Evaluation helpers push/pop this so a nominal eval in
// the middle of variation-aware training neither resets nor advances the
// training noise stream.
struct PhaseNoiseState {
  double sigma = 0.0;
  adept::Rng rng;
};

// Builds the blocked weight expression for one logical weight matrix.
class PtcWeight {
 public:
  PtcWeight(std::int64_t out_features, std::int64_t in_features,
            const PtcBinding& binding, adept::Rng& rng);

  // Weight expression [out, in] for the current step: the batched path (one
  // tape node per chain stage for all tiles). Rebuilt per forward while
  // gradients are tracked; cached per parameter/noise version under
  // NoGradGuard with noise off.
  ag::Tensor weight_expr();
  // Reference implementation building each tile's chain separately (the
  // pre-batching tape). With phase noise off it is bit-exact against
  // weight_expr — values and gradients — at any thread count; kept for
  // tests and the perf benches. Under noise the two paths consume the
  // drift stream in different orders (per-tile vs per-block) and produce
  // different, equally-distributed drift.
  ag::Tensor weight_expr_per_tile();
  std::vector<ag::Tensor> parameters();

  // Gaussian phase drift injected into every phase shifter on each forward
  // (0 disables). Re-arms the drift stream from `seed`. Applies to
  // Kind::ptc only.
  void set_phase_noise(double sigma, std::uint64_t seed);
  // Change sigma WITHOUT touching the stored drift stream (push/pop
  // support for nominal evaluations).
  void set_phase_noise_sigma(double sigma);
  PhaseNoiseState phase_noise_state() const { return {noise_sigma_, noise_rng_}; }
  void restore_phase_noise(const PhaseNoiseState& state);
  double phase_noise() const { return noise_sigma_; }

  std::int64_t tile_rows() const { return p_; }
  std::int64_t tile_cols() const { return q_; }

  // ---- export hooks (checkpointing / compiled runtime) -------------------
  // Direct access to the stored parameter stacks. Writers that mutate the
  // returned tensors' data() buffers must call adept::bump_param_version().
  const PtcBinding& binding() const { return binding_; }
  std::vector<ag::Tensor>& phi_u() { return phi_u_; }
  std::vector<ag::Tensor>& phi_v() { return phi_v_; }
  ag::Tensor& sigma_stack() { return sigma_; }
  ag::Tensor& dense_weight() { return dense_weight_; }
  std::int64_t out_features() const { return out_; }
  std::int64_t in_features() const { return in_; }

 private:
  ag::Tensor build_weight();  // batched chain, no cache logic
  ag::CxTensor batched_fixed_unitary(const std::vector<ag::CxTensor>& pt_consts,
                                     const std::vector<ag::Tensor>& phase_stacks);
  ag::CxTensor fixed_tile_unitary(const std::vector<ag::CxTensor>& pt_consts,
                                  const std::vector<ag::Tensor>& phases);

  std::int64_t out_, in_, p_, q_;
  PtcBinding binding_;
  double noise_sigma_ = 0.0;
  adept::Rng noise_rng_;

  // dense
  ag::Tensor dense_weight_;
  // ptc / supermesh: per-block [T,K] phase stacks (T = p_*q_ tiles) for U
  // and V, and the [T,K] Sigma stack.
  std::vector<ag::Tensor> phi_u_, phi_v_;  // [block] -> [T,K]
  ag::Tensor sigma_;                       // [T,K]
  // ptc: precomputed constant P*T complex matrices per block
  std::vector<ag::CxTensor> pt_u_, pt_v_;

  // Materialized eval-weight cache (see header comment). Concurrent no-grad
  // readers (the serving worker pool) share the cache: reads take the shared
  // lock, the first builder of a new version publishes under the exclusive
  // lock, and later builders of the same version discard their copy.
  mutable std::shared_mutex cache_mutex_;
  ag::Tensor cached_weight_;
  std::uint64_t cached_version_ = 0;
};

// Base for ONN layers exposing noise control (used by variation-aware
// training, see variation.h).
class OnnLayer : public Module {
 public:
  virtual void set_phase_noise(double sigma, std::uint64_t seed) = 0;
  virtual void set_phase_noise_sigma(double sigma) = 0;
  virtual PhaseNoiseState phase_noise_state() const = 0;
  virtual void restore_phase_noise(const PhaseNoiseState& state) = 0;
};

class ONNLinear : public OnnLayer {
 public:
  ONNLinear(std::int64_t in_features, std::int64_t out_features,
            const PtcBinding& binding, adept::Rng& rng, bool bias = true);
  ag::Tensor forward(const ag::Tensor& x) override;  // [N,in] -> [N,out]
  std::vector<ag::Tensor> parameters() override;
  void set_phase_noise(double sigma, std::uint64_t seed) override;
  void set_phase_noise_sigma(double sigma) override;
  PhaseNoiseState phase_noise_state() const override;
  void restore_phase_noise(const PhaseNoiseState& state) override;
  PtcWeight& weight() { return weight_; }
  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  bool has_bias() const { return bias_.defined(); }
  ag::Tensor& bias() { return bias_; }

 private:
  std::int64_t in_, out_;
  PtcWeight weight_;
  ag::Tensor bias_;
};

class ONNConv2d : public OnnLayer {
 public:
  ONNConv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
            const PtcBinding& binding, adept::Rng& rng, std::int64_t stride = 1,
            std::int64_t pad = 0, bool bias = true);
  ag::Tensor forward(const ag::Tensor& x) override;  // [N,C,H,W]
  std::vector<ag::Tensor> parameters() override;
  void set_phase_noise(double sigma, std::uint64_t seed) override;
  void set_phase_noise_sigma(double sigma) override;
  PhaseNoiseState phase_noise_state() const override;
  void restore_phase_noise(const PhaseNoiseState& state) override;
  PtcWeight& weight() { return weight_; }
  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return k_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }
  bool has_bias() const { return bias_.defined(); }
  ag::Tensor& bias() { return bias_; }

 private:
  std::int64_t in_c_, out_c_, k_, stride_, pad_;
  PtcWeight weight_;  // logical [out_c, in_c*k*k]
  ag::Tensor bias_;
};

}  // namespace adept::nn
