// Minibatch assembly over SyntheticDataset.
#pragma once

#include <vector>

#include "autograd/tensor.h"
#include "common/rng.h"
#include "data/synthetic.h"

namespace adept::data {

struct Batch {
  ag::Tensor images;        // [N, C, H, W]
  std::vector<int> labels;  // N entries
};

class DataLoader {
 public:
  DataLoader(const SyntheticDataset& dataset, int batch_size);

  int batches_per_epoch() const;
  // Batch of the given epoch-local index over the current ordering.
  Batch batch(int index) const;
  // Reshuffle the sample ordering (call once per epoch for training).
  void shuffle(adept::Rng& rng);
  // Assemble an arbitrary index set into a batch.
  Batch gather(const std::vector<int>& indices) const;

 private:
  const SyntheticDataset& dataset_;
  int batch_size_;
  std::vector<int> order_;
};

// Samples [lo, hi) of an assembled batch as a new batch (copies the image
// rows). Used by the data-parallel micro-shard paths (src/comm) to hand each
// shard its slice of the step's full batch.
Batch slice_batch(const Batch& batch, std::int64_t lo, std::int64_t hi);

}  // namespace adept::data
