// Procedural image-classification datasets.
//
// The paper evaluates on MNIST / FashionMNIST / SVHN / CIFAR-10, none of
// which are available in this offline environment. These generators produce
// multi-class image tasks with the same tensor shapes and a graded
// difficulty ladder in the same order (MNIST easiest ... CIFAR-10 hardest),
// so every training/search code path the paper exercises runs unchanged.
// Each class has a fixed procedural prototype (a sum of randomly placed
// Gaussian blobs and sinusoidal gratings); samples are affine-jittered,
// cross-class-mixed (difficulty), and pixel-noised versions of it. See
// DESIGN.md "Substitutions" for the fidelity argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace adept::data {

struct DatasetSpec {
  std::string name;
  int classes = 10;
  int channels = 1;
  int height = 28;
  int width = 28;
  double pixel_noise = 0.15;   // additive Gaussian std-dev
  double jitter_px = 2.0;      // max |translation| in pixels
  double class_mix = 0.0;      // blend weight of a random other class
  std::uint64_t seed = 1;      // prototype seed (fixed per dataset)

  static DatasetSpec mnist_like();
  static DatasetSpec fmnist_like();
  static DatasetSpec svhn_like();
  static DatasetSpec cifar10_like();
};

// A fully materialized, deterministic dataset split.
class SyntheticDataset {
 public:
  // `split_seed` decorrelates train/val/test splits of the same spec.
  SyntheticDataset(const DatasetSpec& spec, int num_samples,
                   std::uint64_t split_seed);

  const DatasetSpec& spec() const { return spec_; }
  int size() const { return static_cast<int>(labels_.size()); }
  int image_elems() const { return spec_.channels * spec_.height * spec_.width; }
  // Flat CHW pixels of sample i (normalized to roughly zero mean, unit std).
  const std::vector<float>& image(int i) const {
    return images_[static_cast<std::size_t>(i)];
  }
  int label(int i) const { return labels_[static_cast<std::size_t>(i)]; }

 private:
  std::vector<float> render_prototype(int cls, adept::Rng& proto_rng) const;

  DatasetSpec spec_;
  std::vector<std::vector<float>> prototypes_;  // one per class, flat CHW
  std::vector<std::vector<float>> images_;
  std::vector<int> labels_;
};

}  // namespace adept::data
