#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace adept::data {

DatasetSpec DatasetSpec::mnist_like() {
  DatasetSpec s;
  s.name = "synthetic-mnist";
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.pixel_noise = 0.12;
  s.jitter_px = 2.0;
  s.class_mix = 0.0;
  s.seed = 101;
  return s;
}

DatasetSpec DatasetSpec::fmnist_like() {
  DatasetSpec s;
  s.name = "synthetic-fmnist";
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.pixel_noise = 0.22;
  s.jitter_px = 2.5;
  s.class_mix = 0.12;
  s.seed = 202;
  return s;
}

DatasetSpec DatasetSpec::svhn_like() {
  DatasetSpec s;
  s.name = "synthetic-svhn";
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.pixel_noise = 0.30;
  s.jitter_px = 3.0;
  s.class_mix = 0.22;
  s.seed = 303;
  return s;
}

DatasetSpec DatasetSpec::cifar10_like() {
  DatasetSpec s;
  s.name = "synthetic-cifar10";
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.pixel_noise = 0.35;
  s.jitter_px = 3.0;
  s.class_mix = 0.30;
  s.seed = 404;
  return s;
}

std::vector<float> SyntheticDataset::render_prototype(int cls,
                                                      adept::Rng& proto_rng) const {
  (void)cls;
  const int c = spec_.channels, h = spec_.height, w = spec_.width;
  std::vector<float> img(static_cast<std::size_t>(c * h * w), 0.0f);
  // 4-7 Gaussian blobs + 1-2 sinusoidal gratings per channel.
  for (int ch = 0; ch < c; ++ch) {
    const int blobs = proto_rng.uniform_int(4, 7);
    for (int b = 0; b < blobs; ++b) {
      const double cx = proto_rng.uniform(0.15, 0.85) * w;
      const double cy = proto_rng.uniform(0.15, 0.85) * h;
      const double sx = proto_rng.uniform(0.06, 0.22) * w;
      const double sy = proto_rng.uniform(0.06, 0.22) * h;
      const double amp = proto_rng.uniform(0.4, 1.0) * (proto_rng.bernoulli(0.5) ? 1 : -1);
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          const double dx = (x - cx) / sx, dy = (y - cy) / sy;
          img[static_cast<std::size_t>((ch * h + y) * w + x)] +=
              static_cast<float>(amp * std::exp(-0.5 * (dx * dx + dy * dy)));
        }
      }
    }
    const int gratings = proto_rng.uniform_int(1, 2);
    for (int g = 0; g < gratings; ++g) {
      const double fx = proto_rng.uniform(0.5, 3.0) * 2.0 * 3.14159265 / w;
      const double fy = proto_rng.uniform(0.5, 3.0) * 2.0 * 3.14159265 / h;
      const double phase = proto_rng.uniform(0.0, 6.28318);
      const double amp = proto_rng.uniform(0.15, 0.45);
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          img[static_cast<std::size_t>((ch * h + y) * w + x)] +=
              static_cast<float>(amp * std::sin(fx * x + fy * y + phase));
        }
      }
    }
  }
  return img;
}

namespace {

// Bilinear sample with zero padding outside the frame.
float sample_shifted(const std::vector<float>& img, int c, int h, int w, int ch,
                     double y, double x) {
  const int x0 = static_cast<int>(std::floor(x)), y0 = static_cast<int>(std::floor(y));
  const double fx = x - x0, fy = y - y0;
  auto px = [&](int yy, int xx) -> float {
    if (yy < 0 || yy >= h || xx < 0 || xx >= w) return 0.0f;
    (void)c;
    return img[static_cast<std::size_t>((ch * h + yy) * w + xx)];
  };
  return static_cast<float>((1 - fy) * ((1 - fx) * px(y0, x0) + fx * px(y0, x0 + 1)) +
                            fy * ((1 - fx) * px(y0 + 1, x0) + fx * px(y0 + 1, x0 + 1)));
}

}  // namespace

SyntheticDataset::SyntheticDataset(const DatasetSpec& spec, int num_samples,
                                   std::uint64_t split_seed)
    : spec_(spec) {
  adept::Rng proto_rng(spec_.seed);  // prototypes fixed per dataset spec
  prototypes_.reserve(static_cast<std::size_t>(spec_.classes));
  for (int cls = 0; cls < spec_.classes; ++cls) {
    prototypes_.push_back(render_prototype(cls, proto_rng));
  }
  adept::Rng rng(spec_.seed * 0x9e3779b97f4a7c15ull + split_seed + 1);
  const int c = spec_.channels, h = spec_.height, w = spec_.width;
  images_.reserve(static_cast<std::size_t>(num_samples));
  labels_.reserve(static_cast<std::size_t>(num_samples));
  for (int i = 0; i < num_samples; ++i) {
    const int cls = rng.uniform_int(0, spec_.classes - 1);
    const auto& proto = prototypes_[static_cast<std::size_t>(cls)];
    const double dx = rng.uniform(-spec_.jitter_px, spec_.jitter_px);
    const double dy = rng.uniform(-spec_.jitter_px, spec_.jitter_px);
    int mix_cls = cls;
    double mix = 0.0;
    if (spec_.class_mix > 0.0) {
      mix_cls = rng.uniform_int(0, spec_.classes - 1);
      mix = rng.uniform(0.0, spec_.class_mix);
    }
    const auto& mix_proto = prototypes_[static_cast<std::size_t>(mix_cls)];
    std::vector<float> img(static_cast<std::size_t>(c * h * w));
    double sum = 0.0, sum2 = 0.0;
    for (int ch = 0; ch < c; ++ch) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          float v = sample_shifted(proto, c, h, w, ch, y + dy, x + dx);
          v = static_cast<float>((1.0 - mix) * v +
                                 mix * mix_proto[static_cast<std::size_t>((ch * h + y) * w + x)]);
          v += static_cast<float>(rng.normal(0.0, spec_.pixel_noise));
          img[static_cast<std::size_t>((ch * h + y) * w + x)] = v;
          sum += v;
          sum2 += static_cast<double>(v) * v;
        }
      }
    }
    // Per-image standardization.
    const double n = static_cast<double>(img.size());
    const double mu = sum / n;
    const double sd = std::sqrt(std::max(sum2 / n - mu * mu, 1e-6));
    for (auto& v : img) v = static_cast<float>((v - mu) / sd);
    images_.push_back(std::move(img));
    labels_.push_back(cls);
  }
}

}  // namespace adept::data
