#include "data/loader.h"

#include <numeric>

namespace adept::data {

DataLoader::DataLoader(const SyntheticDataset& dataset, int batch_size)
    : dataset_(dataset), batch_size_(batch_size) {
  order_.resize(static_cast<std::size_t>(dataset_.size()));
  std::iota(order_.begin(), order_.end(), 0);
}

int DataLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::shuffle(adept::Rng& rng) { rng.shuffle(order_); }

Batch DataLoader::batch(int index) const {
  std::vector<int> indices;
  const int begin = index * batch_size_;
  const int end = std::min(begin + batch_size_, dataset_.size());
  for (int i = begin; i < end; ++i) {
    indices.push_back(order_[static_cast<std::size_t>(i)]);
  }
  return gather(indices);
}

Batch DataLoader::gather(const std::vector<int>& indices) const {
  const auto& spec = dataset_.spec();
  const int elems = dataset_.image_elems();
  std::vector<float> data;
  data.reserve(indices.size() * static_cast<std::size_t>(elems));
  Batch out;
  for (int idx : indices) {
    const auto& img = dataset_.image(idx);
    data.insert(data.end(), img.begin(), img.end());
    out.labels.push_back(dataset_.label(idx));
  }
  out.images = ag::make_tensor(
      std::move(data),
      {static_cast<std::int64_t>(indices.size()), spec.channels, spec.height, spec.width},
      false);
  return out;
}

Batch slice_batch(const Batch& batch, std::int64_t lo, std::int64_t hi) {
  const std::int64_t n = batch.images.dim(0);
  const std::int64_t elems = n == 0 ? 0 : batch.images.numel() / n;
  const auto& src = batch.images.data();
  std::vector<float> data(src.begin() + static_cast<std::ptrdiff_t>(lo * elems),
                          src.begin() + static_cast<std::ptrdiff_t>(hi * elems));
  Batch out;
  out.images = ag::make_tensor(
      std::move(data),
      {hi - lo, batch.images.dim(1), batch.images.dim(2), batch.images.dim(3)},
      false);
  out.labels.assign(batch.labels.begin() + static_cast<std::ptrdiff_t>(lo),
                    batch.labels.begin() + static_cast<std::ptrdiff_t>(hi));
  return out;
}

}  // namespace adept::data
