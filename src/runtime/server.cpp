#include "runtime/server.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "backend/context.h"
#include "common/env.h"
#include "common/failpoint.h"
#include "runtime/checkpoint.h"

namespace adept::runtime {

namespace {

int clamp_int(int v, int lo, int hi) { return std::min(std::max(v, lo), hi); }

std::int64_t clamp_i64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return std::min(std::max(v, lo), hi);
}

const CompiledModel& deref_model(const std::shared_ptr<const CompiledModel>& m) {
  if (!m) throw std::invalid_argument("Server: model must not be null");
  return *m;
}

using Clock = std::chrono::steady_clock;

// Each Server instance gets its own instrument prefix so concurrent or
// sequential servers in one process (bench warm-up vs measured run) never
// mix numbers in the shared registry.
std::string next_metrics_prefix() {
  static std::atomic<int> counter{0};
  return "serve.s" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) + ".";
}

std::int64_t to_ns(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

// Steady time points share obs::trace_now_ns's timebase, so spans measured
// from a request's enqueue timestamp line up with TraceSpan sections.
std::uint64_t to_trace_ns(Clock::time_point tp) {
  return static_cast<std::uint64_t>(to_ns(tp.time_since_epoch()));
}

}  // namespace

std::string to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::block: return "block";
    case OverloadPolicy::reject: return "reject";
    case OverloadPolicy::shed_oldest: return "shed_oldest";
  }
  return "block";
}

OverloadPolicy parse_overload_policy(const std::string& name, OverloadPolicy def) {
  if (name == "block") return OverloadPolicy::block;
  if (name == "reject") return OverloadPolicy::reject;
  if (name == "shed_oldest") return OverloadPolicy::shed_oldest;
  return def;
}

ServerConfig ServerConfig::clamped() const {
  ServerConfig c = *this;
  c.threads = clamp_int(c.threads, 1, 256);
  c.max_batch = clamp_int(c.max_batch, 1, 4096);
  c.max_wait_us = clamp_int(c.max_wait_us, 0, 1'000'000);
  c.deadline_us = clamp_i64(c.deadline_us, 0, 600'000'000);
  if (c.queue_capacity == 0) c.queue_capacity = 1;
  return c;
}

ServerConfig ServerConfig::from_env() {
  ServerConfig c;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  c.threads = env_int("ADEPT_SERVE_THREADS", hw > 0 ? hw : 1);
  c.max_batch = env_int("ADEPT_SERVE_MAX_BATCH", 16);
  c.max_wait_us = env_int("ADEPT_SERVE_MAX_WAIT_US", 100);
  c.policy = parse_overload_policy(env_string("ADEPT_SERVE_POLICY", "block"));
  c.deadline_us = env_int("ADEPT_SERVE_DEADLINE_US", 0);
  c.quantize = env_int("ADEPT_SERVE_QUANT", 0) != 0;
  c.device = backend::default_device();  // ADEPT_DEVICE, clamped like policy
  return c.clamped();
}

Server::Server(const CompiledModel& model, ServerConfig config)
    : Server(std::shared_ptr<const CompiledModel>(&model, [](const CompiledModel*) {}),
             config) {}

Server::Server(std::shared_ptr<const CompiledModel> model, ServerConfig config)
    : input_numel_(deref_model(model).input_numel()),
      output_numel_(model->output_numel()),
      config_(config.clamped()),
      metrics_prefix_(next_metrics_prefix()),
      requests_total_(obs::counter(metrics_prefix_ + "requests")),
      batches_total_(obs::counter(metrics_prefix_ + "batches")),
      rejected_total_(obs::counter(metrics_prefix_ + "rejected")),
      shed_total_(obs::counter(metrics_prefix_ + "shed")),
      deadline_misses_total_(obs::counter(metrics_prefix_ + "deadline_misses")),
      reloads_total_(obs::counter(metrics_prefix_ + "reloads")),
      latency_ns_(obs::histogram(metrics_prefix_ + "latency_ns")),
      queue_wait_ns_(obs::histogram(metrics_prefix_ + "queue_wait_ns")),
      trace_request_(obs::intern_name("serve.request")),
      trace_queue_wait_(obs::intern_name("serve.queue_wait")),
      trace_batch_form_(obs::intern_name("serve.batch_form")),
      trace_execute_(obs::intern_name("serve.execute")),
      trace_respond_(obs::intern_name("serve.respond")),
      trace_reload_(obs::intern_name("serve.reload")),
      model_(std::move(model)) {
  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::future<std::vector<float>> Server::submit(std::vector<float> input) {
  const auto now = Clock::now();
  return submit_impl(std::move(input),
                     config_.deadline_us > 0
                         ? now + std::chrono::microseconds(config_.deadline_us)
                         : Clock::time_point::max());
}

std::future<std::vector<float>> Server::submit(std::vector<float> input,
                                               std::int64_t deadline_us) {
  const auto now = Clock::now();
  deadline_us = clamp_i64(deadline_us, 0, 600'000'000);
  return submit_impl(std::move(input),
                     deadline_us > 0 ? now + std::chrono::microseconds(deadline_us)
                                     : Clock::time_point::max());
}

std::future<std::vector<float>> Server::submit_impl(std::vector<float> input,
                                                    Clock::time_point deadline) {
  if (input.size() != static_cast<std::size_t>(input_numel_)) {
    throw std::invalid_argument(
        "Server::submit: input has " + std::to_string(input.size()) +
        " values, model expects " + std::to_string(input_numel_));
  }
  Request req;
  req.input = std::move(input);
  req.enqueued = Clock::now();
  req.deadline = deadline;
  std::future<std::vector<float>> future = req.promise.get_future();
  std::optional<Request> victim;  // shed_oldest: failed outside the lock
  {
    std::unique_lock lock(mu_);
    if (!stopping_ && queue_.size() >= config_.queue_capacity) {
      switch (config_.policy) {
        case OverloadPolicy::block:
          not_full_.wait(lock, [this] {
            return stopping_ || queue_.size() < config_.queue_capacity;
          });
          break;
        case OverloadPolicy::reject: {
          lock.unlock();
          rejected_total_.inc();
          req.promise.set_exception(std::make_exception_ptr(RejectedError(
              "Server::submit: queue full (" + std::to_string(config_.queue_capacity) +
              " requests, policy reject) — retry with backoff")));
          return future;
        }
        case OverloadPolicy::shed_oldest:
          victim = std::move(queue_.front());
          queue_.pop_front();
          break;
      }
    }
    if (stopping_) {
      req.promise.set_exception(std::make_exception_ptr(
          ShutdownError("Server::submit: server is shut down")));
      return future;
    }
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  if (victim) {
    shed_total_.inc();
    victim->promise.set_exception(std::make_exception_ptr(RejectedError(
        "Server::submit: request shed to admit a newer arrival (queue full, "
        "policy shed_oldest)")));
  }
  return future;
}

void Server::fail_expired(std::vector<Request>& expired) {
  if (expired.empty()) return;
  deadline_misses_total_.inc(expired.size());
  for (auto& req : expired) {
    const double waited =
        std::chrono::duration<double, std::micro>(Clock::now() - req.enqueued).count();
    req.promise.set_exception(std::make_exception_ptr(DeadlineExceededError(
        "Server: request deadline exceeded after " +
        std::to_string(static_cast<long long>(waited)) +
        " us in queue (never executed)")));
  }
  expired.clear();
}

void Server::worker_loop() {
  CompiledModel::Workspace ws;
  // Per-worker execution contexts, one per device, installed into this
  // worker's workspace: CompiledModel::run routes each step to the context
  // its device tag names. Today's CPU contexts are stateless, but owning
  // them per worker is the seam's contract — a future context with a
  // stream or a scratch pool must never be shared across workers. Hot
  // reload needs no coordination here: contexts belong to the worker, not
  // the plan being swapped.
  std::unique_ptr<backend::ExecContext> ctxs[backend::kDeviceCount];
  for (int d = 0; d < backend::kDeviceCount; ++d) {
    ctxs[d] = backend::make_context(static_cast<backend::Device>(d));
    ws.contexts[d] = ctxs[d].get();
  }
  std::vector<Request> batch;
  std::vector<Request> expired;
  std::vector<float> inputs, outputs;
  for (;;) {
    batch.clear();
    bool exiting = false;
    Clock::time_point batch_start{};
    {
      std::unique_lock lock(mu_);
      // Pop the oldest LIVE request; expired ones are collected and failed
      // outside the lock without ever executing.
      while (batch.empty()) {
        not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          exiting = true;  // stopping and fully drained
          break;
        }
        const auto now = Clock::now();
        while (!queue_.empty() && batch.empty()) {
          if (queue_.front().deadline < now) {
            expired.push_back(std::move(queue_.front()));
          } else {
            batch.push_back(std::move(queue_.front()));
          }
          queue_.pop_front();
        }
        if (!expired.empty() && batch.empty()) break;  // go fail them, retry
      }
      if (!batch.empty()) {
        // Micro-batching: drain what is already queued, then (unless
        // stopping or full) linger up to max_wait_us past the first pop for
        // stragglers. Deadline checks ride along on every pop.
        batch_start = Clock::now();
        const auto linger_until =
            batch_start + std::chrono::microseconds(config_.max_wait_us);
        while (static_cast<int>(batch.size()) < config_.max_batch) {
          if (!queue_.empty()) {
            if (queue_.front().deadline < Clock::now()) {
              expired.push_back(std::move(queue_.front()));
            } else {
              batch.push_back(std::move(queue_.front()));
            }
            queue_.pop_front();
            continue;
          }
          if (stopping_ || config_.max_wait_us == 0) break;
          if (not_empty_.wait_until(lock, linger_until, [this] {
                return stopping_ || !queue_.empty();
              })) {
            if (queue_.empty()) break;  // woke for shutdown
            continue;
          }
          break;  // window elapsed
        }
      }
    }
    not_full_.notify_all();

    // Second deadline check at batch-formation time: the straggler window
    // may have outlived some members' deadlines.
    {
      const auto now = Clock::now();
      auto live_end = std::stable_partition(
          batch.begin(), batch.end(),
          [&](const Request& r) { return r.deadline >= now; });
      for (auto it = live_end; it != batch.end(); ++it) {
        expired.push_back(std::move(*it));
      }
      batch.erase(live_end, batch.end());
    }
    fail_expired(expired);
    if (exiting) return;
    if (batch.empty()) continue;

    // Queue-wait telemetry at batch formation: the submit -> formation gap
    // per admitted request (histogram always — one relaxed op each — and,
    // when tracing, a span anchored at the request's enqueue timestamp),
    // plus the batch-form span covering first-pop through linger.
    const auto formed = Clock::now();
    const bool tracing = obs::tracing_enabled();
    for (const auto& req : batch) {
      const std::int64_t waited = to_ns(formed - req.enqueued);
      queue_wait_ns_.record(waited);
      if (tracing) {
        obs::trace_event(trace_queue_wait_, to_trace_ns(req.enqueued),
                         static_cast<std::uint64_t>(waited));
      }
    }
    if (tracing) {
      obs::trace_event(trace_batch_form_, to_trace_ns(batch_start),
                       static_cast<std::uint64_t>(to_ns(formed - batch_start)));
    }

    // Snapshot the model slot once per batch: a concurrent reload() swaps
    // the slot for the NEXT batch; this one is answered wholly by the
    // version snapshotted here.
    std::shared_ptr<const CompiledModel> model;
    {
      std::lock_guard model_lock(model_mu_);
      model = model_;
    }

    const std::int64_t in_n = model->input_numel();
    const std::int64_t out_n = model->output_numel();
    const std::int64_t b = static_cast<std::int64_t>(batch.size());
    inputs.resize(static_cast<std::size_t>(b * in_n));
    outputs.resize(static_cast<std::size_t>(b * out_n));
    for (std::int64_t i = 0; i < b; ++i) {
      std::copy(batch[static_cast<std::size_t>(i)].input.begin(),
                batch[static_cast<std::size_t>(i)].input.end(),
                inputs.begin() + i * in_n);
    }
    std::exception_ptr err;
    {
      obs::TraceSpan execute_span(trace_execute_);
      try {
        if (failpoint::maybe_fail("server.worker.batch")) {
          throw std::runtime_error(
              "Server: worker forward failed (injected via failpoint "
              "server.worker.batch)");
        }
        model->run(inputs.data(), b, outputs.data(), ws);
      } catch (...) {
        err = std::current_exception();
      }
    }

    // Record stats BEFORE fulfilling the promises: a caller that observed a
    // resolved future must see its request already counted in stats() — the
    // relaxed instrument writes precede the promise's release store, so any
    // thread that sees the future ready sees them too.
    record_completed(batch, Clock::now());

    {
      obs::TraceSpan respond_span(trace_respond_);
      if (err != nullptr) {
        for (auto& req : batch) req.promise.set_exception(err);
      } else {
        for (std::int64_t i = 0; i < b; ++i) {
          batch[static_cast<std::size_t>(i)].promise.set_value(std::vector<float>(
              outputs.begin() + i * out_n, outputs.begin() + (i + 1) * out_n));
        }
      }
    }
  }
}

void Server::record_completed(const std::vector<Request>& batch,
                              Clock::time_point now) {
  requests_total_.inc(batch.size());
  batches_total_.inc();
  const bool tracing = obs::tracing_enabled();
  for (const auto& req : batch) {
    const std::int64_t lat = to_ns(now - req.enqueued);
    latency_ns_.record(lat);
    if (tracing) {
      // The request span covers submit -> result, anchored at the enqueue
      // timestamp (taken on the submitter's thread; same steady timebase).
      obs::trace_event(trace_request_, to_trace_ns(req.enqueued),
                       static_cast<std::uint64_t>(lat));
    }
  }
}

void Server::reload(const std::string& checkpoint_path) {
  // Load + freeze on THIS thread while the workers keep serving the old
  // model; only the pointer swap at the end synchronizes with them.
  obs::TraceSpan reload_span(trace_reload_);
  const std::shared_ptr<const CompiledModel> live = model();
  LoadedCheckpoint loaded = load_checkpoint(checkpoint_path);
  auto next = std::make_shared<CompiledModel>(
      CompiledModel::freeze(loaded.model, live->input_dims(), live->options()));
  swap_model(std::move(next));
}

void Server::swap_model(std::shared_ptr<const CompiledModel> next) {
  if (!next) throw std::invalid_argument("Server::swap_model: model must not be null");
  if (next->input_numel() != input_numel_ || next->output_numel() != output_numel_) {
    throw std::invalid_argument(
        "Server::swap_model: replacement model maps " +
        std::to_string(next->input_numel()) + " -> " +
        std::to_string(next->output_numel()) + " features, live server maps " +
        std::to_string(input_numel_) + " -> " + std::to_string(output_numel_) +
        " (checkpoint from a different architecture?)");
  }
  {
    std::lock_guard model_lock(model_mu_);
    model_ = std::move(next);
  }
  reloads_total_.inc();
}

std::shared_ptr<const CompiledModel> Server::model() const {
  std::lock_guard model_lock(model_mu_);
  return model_;
}

void Server::shutdown() {
  // Claim the worker handles under the lock so concurrent shutdown callers
  // (explicit call racing the destructor) never join the same thread twice:
  // the second caller swaps out an empty vector and joins nothing.
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    workers.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

ServerStats Server::stats() const {
  // A thin view over the registry instruments: counter loads plus three
  // bucket walks — no lock shared with the serving path, no ring copy, no
  // sort, the same cost whether the server has answered 1e3 or 1e9
  // requests.
  ServerStats s;
  s.requests = requests_total_.value();
  s.batches = batches_total_.value();
  s.rejected = rejected_total_.value();
  s.shed = shed_total_.value();
  s.deadline_misses = deadline_misses_total_.value();
  s.reloads = reloads_total_.value();
  s.model_version = model()->frozen_param_version();
  if (s.batches > 0) {
    s.mean_batch_fill = static_cast<double>(s.requests) / static_cast<double>(s.batches);
  }
  if (latency_ns_.count() > 0) {
    s.latency_p50_us = latency_ns_.quantile(0.5) / 1e3;
    s.latency_p99_us = latency_ns_.quantile(0.99) / 1e3;
    s.latency_max_us = latency_ns_.approx_max() / 1e3;
  }
  return s;
}

}  // namespace adept::runtime
