#include "runtime/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/env.h"

namespace adept::runtime {

namespace {

int clamp_int(int v, int lo, int hi) { return std::min(std::max(v, lo), hi); }

}  // namespace

ServerConfig ServerConfig::clamped() const {
  ServerConfig c = *this;
  c.threads = clamp_int(c.threads, 1, 256);
  c.max_batch = clamp_int(c.max_batch, 1, 4096);
  c.max_wait_us = clamp_int(c.max_wait_us, 0, 1'000'000);
  if (c.queue_capacity == 0) c.queue_capacity = 1;
  return c;
}

ServerConfig ServerConfig::from_env() {
  ServerConfig c;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  c.threads = env_int("ADEPT_SERVE_THREADS", hw > 0 ? hw : 1);
  c.max_batch = env_int("ADEPT_SERVE_MAX_BATCH", 16);
  c.max_wait_us = env_int("ADEPT_SERVE_MAX_WAIT_US", 100);
  c.quantize = env_int("ADEPT_SERVE_QUANT", 0) != 0;
  return c.clamped();
}

Server::Server(const CompiledModel& model, ServerConfig config)
    : model_(model), config_(config.clamped()) {
  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::future<std::vector<float>> Server::submit(std::vector<float> input) {
  if (input.size() != static_cast<std::size_t>(model_.input_numel())) {
    throw std::invalid_argument(
        "Server::submit: input has " + std::to_string(input.size()) +
        " values, model expects " + std::to_string(model_.input_numel()));
  }
  Request req;
  req.input = std::move(input);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<std::vector<float>> future = req.promise.get_future();
  {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < config_.queue_capacity; });
    if (stopping_) {
      req.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("Server::submit: server is shut down")));
      return future;
    }
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  return future;
}

void Server::worker_loop() {
  CompiledModel::Workspace ws;
  std::vector<Request> batch;
  std::vector<float> inputs, outputs;
  const std::int64_t in_n = model_.input_numel();
  const std::int64_t out_n = model_.output_numel();
  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Micro-batching: drain what is already queued, then (unless stopping
      // or full) linger up to max_wait_us past the first pop for stragglers.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(config_.max_wait_us);
      while (static_cast<int>(batch.size()) < config_.max_batch) {
        if (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          continue;
        }
        if (stopping_ || config_.max_wait_us == 0) break;
        if (not_empty_.wait_until(lock, deadline, [this] {
              return stopping_ || !queue_.empty();
            })) {
          if (queue_.empty()) break;  // woke for shutdown
          continue;
        }
        break;  // window elapsed
      }
    }
    not_full_.notify_all();

    const std::int64_t b = static_cast<std::int64_t>(batch.size());
    inputs.resize(static_cast<std::size_t>(b * in_n));
    outputs.resize(static_cast<std::size_t>(b * out_n));
    for (std::int64_t i = 0; i < b; ++i) {
      std::copy(batch[static_cast<std::size_t>(i)].input.begin(),
                batch[static_cast<std::size_t>(i)].input.end(),
                inputs.begin() + i * in_n);
    }
    std::exception_ptr err;
    try {
      model_.run(inputs.data(), b, outputs.data(), ws);
    } catch (...) {
      err = std::current_exception();
    }

    // Record stats BEFORE fulfilling the promises: a caller that observed a
    // resolved future must see its request already counted in stats().
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard stats_lock(stats_mu_);
      done_requests_ += static_cast<std::uint64_t>(b);
      done_batches_ += 1;
      for (const auto& req : batch) {
        const double lat =
            std::chrono::duration<double, std::micro>(now - req.enqueued).count();
        if (latencies_us_.size() < kLatencyWindow) {
          latencies_us_.push_back(lat);
        } else {
          latencies_us_[latency_cursor_] = lat;
          latency_cursor_ = (latency_cursor_ + 1) % kLatencyWindow;
        }
      }
    }

    if (err != nullptr) {
      for (auto& req : batch) req.promise.set_exception(err);
    } else {
      for (std::int64_t i = 0; i < b; ++i) {
        batch[static_cast<std::size_t>(i)].promise.set_value(std::vector<float>(
            outputs.begin() + i * out_n, outputs.begin() + (i + 1) * out_n));
      }
    }
  }
}

void Server::shutdown() {
  // Claim the worker handles under the lock so concurrent shutdown callers
  // (explicit call racing the destructor) never join the same thread twice:
  // the second caller swaps out an empty vector and joins nothing.
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    workers.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  std::vector<double> lat;
  {
    std::lock_guard lock(stats_mu_);
    s.requests = done_requests_;
    s.batches = done_batches_;
    lat = latencies_us_;
  }
  if (s.batches > 0) {
    s.mean_batch_fill = static_cast<double>(s.requests) / static_cast<double>(s.batches);
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    auto at = [&](double q) {
      const std::size_t idx = static_cast<std::size_t>(q * (lat.size() - 1));
      return lat[idx];
    };
    s.latency_p50_us = at(0.5);
    s.latency_p99_us = at(0.99);
    s.latency_max_us = lat.back();
  }
  return s;
}

}  // namespace adept::runtime
