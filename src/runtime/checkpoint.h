// Versioned binary model checkpoints.
//
// A checkpoint freezes everything needed to re-instantiate a trained ONN
// model as a deployable artifact, with no reference to the Rng streams or
// search state that produced it:
//   * the optional foundry PDK the design was costed against,
//   * every distinct PtcTopology (legalized permutations, coupler masks)
//     referenced by the model's photonic layers, stored once and shared,
//   * the module graph (layer types + constructor configs) so load rebuilds
//     the architecture without user code,
//   * all trainable parameters: per-block [T,K] phase stacks, [T,K] sigma
//     stacks, dense weights, biases, and BatchNorm affine + running stats.
//
// Layout (all integers little-endian, floats as IEEE-754 bit patterns; see
// common/binio.h):
//
//   [0..7]   magic "ADEPTCKP"
//   [8..11]  format version (u32, currently 1)
//   [12..19] payload byte count (u64)
//   payload  sections: pdk? | topologies | modules
//   trailer  CRC-32 of the payload (u32, polynomial 0xEDB88320)
//
// Errors are actionable: bad magic, version skew, truncation (with the byte
// offset and field name), CRC mismatch (stored vs computed), and
// architecture mismatches all throw std::runtime_error explaining what was
// being read.
//
// Round-trip guarantee: save -> load yields bit-identical parameter buffers,
// hence bit-identical eval predictions (asserted in tests/test_runtime.cpp).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "nn/models.h"
#include "photonics/pdk.h"

namespace adept::runtime {

inline constexpr std::uint32_t kCheckpointVersion = 1;

// A reconstructed model plus the PDK it was saved with (if any).
struct LoadedCheckpoint {
  nn::OnnModel model;
  std::optional<photonics::Pdk> pdk;
};

// Serialize `model` to `path`. Supermesh-bound layers cannot be checkpointed
// (they reference live search state); freeze the searched design to a
// PtcTopology first (core::SearchResult::topology) and rebuild the model
// with PtcBinding::fixed. Throws std::runtime_error on I/O failure (message
// includes the path and errno/strerror) or unsupported modules.
//
// Crash-safe: bytes go to `path + ".tmp"`, are fsync'd, and atomically
// rename(2)'d over `path` — a crash at any point leaves either the previous
// good checkpoint or a stray .tmp, never a torn `path` (proven with
// failpoint-injected crashes in tests/test_server_robustness.cpp).
void save_checkpoint(nn::OnnModel& model, const std::string& path,
                     const photonics::Pdk* pdk = nullptr);

// Rebuild a model (architecture + parameters) from `path`. Decode failures
// that look like a transiently-torn read (truncation, CRC mismatch — e.g. a
// non-atomic remote writer racing this read) are retried up to 2 more times
// with a short backoff before the error propagates; durable corruption
// (bad magic, version skew, implausible counts) fails immediately.
LoadedCheckpoint load_checkpoint(const std::string& path);

// In-memory variants backing the file API (used by tests to exercise
// corrupt-checkpoint handling without touching disk).
std::string encode_checkpoint(nn::OnnModel& model,
                              const photonics::Pdk* pdk = nullptr);
LoadedCheckpoint decode_checkpoint(const std::string& bytes);

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`; exposed for tests.
std::uint32_t crc32(std::string_view data);

}  // namespace adept::runtime
