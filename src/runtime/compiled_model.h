// Tape-free compiled inference over a frozen model.
//
// `CompiledModel::freeze` walks the module graph once, materializes every
// ONN layer's eval-time weight through the existing batched `weight_expr`
// path (phase noise suspended, stream untouched), and lowers the forward
// pass into a flat list of steps that call the backend kernels
// (`gemm`/`im2col`/pool/activation) directly on raw float buffers — no
// ag::Tensor nodes, no tape, no gradient plumbing, no per-op allocations
// beyond a reusable workspace.
//
// Guarantees:
//   * Bit-exact against `model.net->forward` in eval mode with phase noise
//     off: every step reproduces the corresponding ag op's forward
//     arithmetic (same kernels, same accumulation order), so outputs match
//     bit for bit at any batch size and thread count.
//   * `run` is const and takes the scratch workspace by reference, so one
//     CompiledModel is safely shared by many threads (the serving pool in
//     runtime/server.h) as long as each thread owns its Workspace.
//   * Frozen weights are copies: later training steps or noise injection on
//     the source model do not disturb a compiled instance.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/kernels.h"
#include "nn/models.h"

namespace adept::runtime {

class CompiledModel {
 public:
  // Reusable per-thread scratch. Buffers grow to the high-water mark of the
  // plan and stay allocated, so steady-state runs are allocation-free.
  struct Workspace {
    std::vector<float> a, b, cols, rows;
  };

  // Lower `model` for inputs of per-sample shape `input_dims` (no batch
  // dim): {C,H,W} for CNNs, {features} for MLPs. The model's training flag
  // is irrelevant — the plan always encodes eval semantics (BatchNorm
  // running stats, no noise). Throws std::runtime_error for module types
  // the lowering does not know or shape mismatches along the walk.
  static CompiledModel freeze(nn::OnnModel& model,
                              std::vector<std::int64_t> input_dims);

  // Batched inference: `input` is [batch, input_numel()] row-major,
  // `output` receives [batch, output_numel()].
  void run(const float* input, std::int64_t batch, float* output,
           Workspace& ws) const;
  // Convenience wrapper owning a transient workspace.
  std::vector<float> run(const std::vector<float>& input,
                         std::int64_t batch) const;

  std::int64_t input_numel() const { return input_numel_; }
  std::int64_t output_numel() const { return output_numel_; }
  const std::vector<std::int64_t>& input_dims() const { return input_dims_; }
  std::size_t num_steps() const { return steps_.size(); }

 private:
  struct Step {
    enum class Kind : std::uint8_t { linear, conv, batchnorm, relu, maxpool, avgpool };
    Kind kind = Kind::relu;
    std::int64_t in_numel = 0, out_numel = 0;  // per sample
    // linear: weight [in,out]; conv: weight [C*k*k, out_c] (gemm-ready)
    std::int64_t in_feat = 0, out_feat = 0;
    std::int64_t c = 0, h = 0, w = 0, k = 0, stride = 0, pad = 0;
    std::int64_t oh = 0, ow = 0, out_c = 0;
    std::vector<float> weight;
    // Weight panels pre-packed for the active SIMD level at freeze time, so
    // steady-state gemms skip per-call packing (bit-identical either way;
    // gemm_packed falls back to `weight` if the dispatch level changes).
    backend::PackedGemmB packed;
    std::vector<float> bias;  // empty = no bias
    // A following ReLU folded into this step's store (max(v, 0) of the same
    // value is bit-identical to a separate relu pass, one buffer sweep
    // cheaper). Set by the freeze-time peephole for linear/conv/batchnorm.
    bool relu_after = false;
    // batchnorm (eval): y = ((x - mu) * invstd) * gamma + beta per channel
    std::vector<float> mu, invstd, gamma, beta;
  };

  void apply(const Step& s, const float* src, std::int64_t batch, float* dst,
             Workspace& ws) const;

  std::vector<Step> steps_;
  std::vector<std::int64_t> input_dims_;
  std::int64_t input_numel_ = 0;
  std::int64_t output_numel_ = 0;
  std::int64_t max_interm_numel_ = 0;  // workspace high-water mark per sample
};

}  // namespace adept::runtime
