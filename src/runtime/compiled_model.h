// Tape-free compiled inference over a frozen model.
//
// `CompiledModel::freeze` walks the module graph once, materializes every
// ONN layer's eval-time weight through the existing batched `weight_expr`
// path (phase noise suspended, stream untouched), and lowers the forward
// pass into a flat list of steps that call the backend kernels
// (`gemm`/`im2col`/pool/activation) directly on raw float buffers — no
// ag::Tensor nodes, no tape, no gradient plumbing, no per-op allocations
// beyond a reusable workspace. The planning passes in runtime/plan.h then
// fuse BatchNorm epilogues, tile conv im2col+gemm into sample blocks, map
// step outputs into a shared slot pool (liveness analysis), optionally
// quantize gemm/conv weights to int8, and pack weights for the active SIMD
// level.
//
// Guarantees:
//   * fp32 plans are bit-exact against `model.net->forward` in eval mode
//     with phase noise off — planned or not, every transformation preserves
//     the per-element float operation sequence (tests/test_plan.cpp proves
//     planned == unplanned == tape with ASSERT_EQ). The opt-in int8 mode
//     trades that for speed; its integer kernels are still bit-identical
//     across SIMD levels, thread counts, and micro-batch compositions.
//   * `run` is const and takes the scratch workspace by reference, so one
//     CompiledModel is safely shared by many threads (the serving pool in
//     runtime/server.h) as long as each thread owns its Workspace.
//   * Frozen weights are copies: later training steps or noise injection on
//     the source model do not disturb a compiled instance. `refresh`
//     re-freezes only when the global param_version moved, so periodic
//     refresh loops skip the (expensive) weight re-pack when nothing
//     changed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "backend/context.h"
#include "nn/models.h"
#include "runtime/plan.h"

namespace adept::runtime {

class CompiledModel {
 public:
  // Reusable per-thread scratch. Buffers grow to the high-water mark of the
  // plan and stay allocated, so steady-state runs are allocation-free.
  struct Workspace {
    std::vector<std::vector<float>> slots;  // the plan's shared buffer pool
    std::vector<float> cols, rows;          // conv im2col / gemm-out scratch
    std::vector<std::int8_t> qsrc;          // quantized conv feature map
    std::vector<std::int8_t> qa;            // quantized gemm activation rows
    std::vector<std::int32_t> qacc;         // int32 gemm accumulators
    std::vector<float> ascale;              // per-sample activation scales
    // Debug hook for the aliasing test: when set, run() fills every slot
    // that is NOT live for the step about to execute with NaN, so a plan
    // that reads a freed slot poisons its output.
    bool poison_free_slots = false;
    // Execution contexts, indexed by the step's device tag. A null entry
    // falls back to the process-wide backend::context_for singleton, so a
    // default-constructed Workspace just works; the Server installs its
    // per-worker owned contexts here. Pointees must outlive every run()
    // using this workspace.
    const backend::ExecContext* contexts[backend::kDeviceCount] = {};
  };

  // Lower `model` for inputs of per-sample shape `input_dims` (no batch
  // dim): {C,H,W} for CNNs, {features} for MLPs. The model's training flag
  // is irrelevant — the plan always encodes eval semantics (BatchNorm
  // running stats, no noise). Throws std::runtime_error for module types
  // the lowering does not know or shape mismatches along the walk.
  static CompiledModel freeze(nn::OnnModel& model,
                              std::vector<std::int64_t> input_dims,
                              FreezeOptions options = {});

  // Re-freeze against `model` if any parameter may have changed since this
  // instance was frozen (global param_version moved); returns whether work
  // was done. A no-op refresh performs zero weight packs — the fix for the
  // redundant re-pack on unchanged weights (regression-tested via
  // weight_pack_count()).
  bool refresh(nn::OnnModel& model);

  // Batched inference: `input` is [batch, input_numel()] row-major,
  // `output` receives [batch, output_numel()].
  void run(const float* input, std::int64_t batch, float* output,
           Workspace& ws) const;
  // Convenience wrapper owning a transient workspace.
  std::vector<float> run(const std::vector<float>& input,
                         std::int64_t batch) const;

  std::int64_t input_numel() const { return input_numel_; }
  std::int64_t output_numel() const { return output_numel_; }
  const std::vector<std::int64_t>& input_dims() const { return input_dims_; }
  std::size_t num_steps() const { return steps_.size(); }
  std::size_t num_slots() const { return slot_sizes_.size(); }
  bool quantized() const { return options_.quantize_int8; }
  const FreezeOptions& options() const { return options_; }
  std::uint64_t frozen_param_version() const { return frozen_param_version_; }

  // Deterministic workspace footprint of run() at `batch`: the slot pool
  // plus conv/quantization scratch, in bytes. The planned-vs-unplanned
  // delta is the memory the planner saves (reported by bench_serve).
  std::int64_t workspace_bytes(std::int64_t batch) const;

  // Human-readable plan listing (step kinds, shapes, fused epilogues, slot
  // assignment) — the worked example in docs/compiled_model.md is this
  // printer's output for LeNet-5.
  void dump_plan(std::ostream& os) const;

 private:
  void apply(const PlanStep& s, const backend::ExecContext& ctx,
             const float* src, std::int64_t batch, float* dst,
             Workspace& ws) const;

  std::vector<PlanStep> steps_;
  std::vector<std::int64_t> slot_sizes_;  // per-sample floats per slot
  std::vector<std::int64_t> input_dims_;
  std::int64_t input_numel_ = 0;
  std::int64_t output_numel_ = 0;
  std::int64_t max_interm_numel_ = 0;  // workspace high-water mark per sample
  FreezeOptions options_;
  std::uint64_t frozen_param_version_ = 0;
};

}  // namespace adept::runtime
