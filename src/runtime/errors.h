// Typed failures surfaced through the serving futures.
//
// Every class derives from std::runtime_error (via ServingError), so code
// written against the PR-5 API — which only knew std::runtime_error — keeps
// compiling and catching. New callers catch the precise type to pick a
// recovery strategy:
//
//   RejectedError           transient overload: the queue was full under the
//                           `reject` policy, or this request was the oldest
//                           queued one when `shed_oldest` made room. Safe to
//                           retry after a backoff (see retry helper in
//                           examples/serve_ptc.cpp).
//   DeadlineExceededError   the request expired before a worker ran it. The
//                           work was never executed; retrying only helps if
//                           the client also relaxes its deadline.
//   ShutdownError           the server is stopping (or already stopped).
//                           Not retryable against this instance.
#pragma once

#include <stdexcept>
#include <string>

namespace adept::runtime {

struct ServingError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct RejectedError final : ServingError {
  using ServingError::ServingError;
};

struct DeadlineExceededError final : ServingError {
  using ServingError::ServingError;
};

struct ShutdownError final : ServingError {
  using ServingError::ServingError;
};

}  // namespace adept::runtime
