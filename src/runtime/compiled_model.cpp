#include "runtime/compiled_model.h"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "autograd/ops.h"
#include "autograd/tensor.h"
#include "backend/kernels.h"
#include "nn/layers.h"
#include "nn/onn_layers.h"

namespace adept::runtime {

namespace be = ::adept::backend;

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("CompiledModel: " + msg);
}

std::string dims_str(const std::vector<std::int64_t>& dims) {
  std::string s = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(dims[i]);
  }
  return s + "]";
}

std::int64_t numel_of(const std::vector<std::int64_t>& dims) {
  std::int64_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

// Eval-time [out,in] weight of an ONN layer through the cached batched
// weight_expr path, with phase noise suspended (sigma pushed to 0 and
// popped, drift stream untouched) so the frozen plan is the nominal design.
ag::Tensor frozen_onn_weight(nn::PtcWeight& w) {
  ag::NoGradGuard guard;
  const double sigma = w.phase_noise();
  w.set_phase_noise_sigma(0.0);
  ag::Tensor weight = w.weight_expr();
  w.set_phase_noise_sigma(sigma);
  return weight;
}

// [out,in] -> [in,out] copy (the materialized transpose ONNLinear/ONNConv2d
// forward feeds to the N/N gemm; transposition moves values untouched).
std::vector<float> transposed(const std::vector<float>& w, std::int64_t out,
                              std::int64_t in) {
  std::vector<float> wt(w.size());
  for (std::int64_t i = 0; i < out; ++i) {
    for (std::int64_t j = 0; j < in; ++j) {
      wt[static_cast<std::size_t>(j * out + i)] = w[static_cast<std::size_t>(i * in + j)];
    }
  }
  return wt;
}

}  // namespace

CompiledModel CompiledModel::freeze(nn::OnnModel& model,
                                    std::vector<std::int64_t> input_dims) {
  if (!model.net) fail("model has no module graph");
  if (input_dims.empty()) fail("input_dims must not be empty");
  const std::vector<std::shared_ptr<nn::Module>> modules =
      nn::flatten_modules(model.net);

  CompiledModel cm;
  cm.input_dims_ = input_dims;
  cm.input_numel_ = numel_of(input_dims);
  cm.max_interm_numel_ = cm.input_numel_;

  std::vector<std::int64_t> cur = input_dims;  // per-sample dims, no batch
  auto expect_chw = [&](const char* what) {
    if (cur.size() != 3) {
      fail(std::string(what) + " expects a [C,H,W] input, got " + dims_str(cur));
    }
  };
  auto expect_features = [&](const char* what, std::int64_t want) {
    const std::int64_t have = numel_of(cur);
    if (have != want) {
      fail(std::string(what) + " expects " + std::to_string(want) +
           " input features, the plan carries " + dims_str(cur) + " = " +
           std::to_string(have));
    }
  };

  for (std::size_t mi = 0; mi < modules.size(); ++mi) {
    nn::Module& m = *modules[mi];
    Step s;
    s.in_numel = numel_of(cur);
    if (auto* l = dynamic_cast<nn::ONNLinear*>(&m)) {
      expect_features("ONNLinear", l->in_features());
      s.kind = Step::Kind::linear;
      s.in_feat = l->in_features();
      s.out_feat = l->out_features();
      ag::Tensor w = frozen_onn_weight(l->weight());  // [out, in]
      s.weight = transposed(w.data(), s.out_feat, s.in_feat);
      s.packed = be::pack_gemm_b(be::Trans::N, s.in_feat, s.out_feat,
                                 s.weight.data(), s.out_feat);
      if (l->has_bias()) s.bias = l->bias().data();
      cur = {s.out_feat};
    } else if (auto* c = dynamic_cast<nn::ONNConv2d*>(&m)) {
      expect_chw("ONNConv2d");
      if (cur[0] != c->in_channels()) {
        fail("ONNConv2d expects " + std::to_string(c->in_channels()) +
             " input channels, the plan carries " + dims_str(cur));
      }
      s.kind = Step::Kind::conv;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.k = c->kernel();
      s.stride = c->stride();
      s.pad = c->pad();
      s.out_c = c->out_channels();
      s.oh = (s.h + 2 * s.pad - s.k) / s.stride + 1;
      s.ow = (s.w + 2 * s.pad - s.k) / s.stride + 1;
      if (s.oh <= 0 || s.ow <= 0) {
        fail("ONNConv2d output is empty for input " + dims_str(cur));
      }
      ag::Tensor w = frozen_onn_weight(c->weight());  // [out_c, fan_in]
      s.weight = transposed(w.data(), s.out_c, s.c * s.k * s.k);
      s.packed = be::pack_gemm_b(be::Trans::N, s.c * s.k * s.k, s.out_c,
                                 s.weight.data(), s.out_c);
      if (c->has_bias()) s.bias = c->bias().data();
      cur = {s.out_c, s.oh, s.ow};
    } else if (auto* l = dynamic_cast<nn::Linear*>(&m)) {
      expect_features("Linear", l->in_features());
      s.kind = Step::Kind::linear;
      s.in_feat = l->in_features();
      s.out_feat = l->out_features();
      s.weight = l->weight().data();  // already [in, out]
      s.packed = be::pack_gemm_b(be::Trans::N, s.in_feat, s.out_feat,
                                 s.weight.data(), s.out_feat);
      if (l->has_bias()) s.bias = l->bias().data();
      cur = {s.out_feat};
    } else if (auto* c = dynamic_cast<nn::Conv2d*>(&m)) {
      expect_chw("Conv2d");
      if (cur[0] != c->in_channels()) {
        fail("Conv2d expects " + std::to_string(c->in_channels()) +
             " input channels, the plan carries " + dims_str(cur));
      }
      s.kind = Step::Kind::conv;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.k = c->kernel();
      s.stride = c->stride();
      s.pad = c->pad();
      s.out_c = c->out_channels();
      s.oh = (s.h + 2 * s.pad - s.k) / s.stride + 1;
      s.ow = (s.w + 2 * s.pad - s.k) / s.stride + 1;
      if (s.oh <= 0 || s.ow <= 0) {
        fail("Conv2d output is empty for input " + dims_str(cur));
      }
      s.weight = c->weight().data();  // already [fan_in, out_c]
      s.packed = be::pack_gemm_b(be::Trans::N, s.c * s.k * s.k, s.out_c,
                                 s.weight.data(), s.out_c);
      if (c->has_bias()) s.bias = c->bias().data();
      cur = {s.out_c, s.oh, s.ow};
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
      expect_chw("BatchNorm2d");
      if (cur[0] != bn->channels()) {
        fail("BatchNorm2d expects " + std::to_string(bn->channels()) +
             " channels, the plan carries " + dims_str(cur));
      }
      s.kind = Step::Kind::batchnorm;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.mu = bn->running_mean();
      s.gamma = bn->gamma().data();
      s.beta = bn->beta().data();
      // Same expression ops.cpp's eval branch evaluates (float var + float
      // eps, double reciprocal sqrt, cast to float) — bit-identical invstd.
      const std::vector<float>& var = bn->running_var();
      s.invstd.resize(var.size());
      for (std::size_t ci = 0; ci < var.size(); ++ci) {
        s.invstd[ci] = static_cast<float>(1.0 / std::sqrt(var[ci] + bn->eps()));
      }
    } else if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
      // Peephole: fold into the producing step's store when it can clamp
      // inline (identical bits, one fewer full-buffer pass).
      if (!cm.steps_.empty() && !cm.steps_.back().relu_after &&
          (cm.steps_.back().kind == Step::Kind::linear ||
           cm.steps_.back().kind == Step::Kind::conv ||
           cm.steps_.back().kind == Step::Kind::batchnorm)) {
        cm.steps_.back().relu_after = true;
        continue;
      }
      s.kind = Step::Kind::relu;
    } else if (auto* mp = dynamic_cast<nn::MaxPool2d*>(&m)) {
      expect_chw("MaxPool2d");
      s.kind = Step::Kind::maxpool;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.k = mp->kernel();
      s.stride = mp->stride();
      s.oh = (s.h - s.k) / s.stride + 1;
      s.ow = (s.w - s.k) / s.stride + 1;
      if (s.oh <= 0 || s.ow <= 0) {
        fail("MaxPool2d output is empty for input " + dims_str(cur));
      }
      cur = {s.c, s.oh, s.ow};
    } else if (auto* ap = dynamic_cast<nn::AdaptiveAvgPool2d*>(&m)) {
      expect_chw("AdaptiveAvgPool2d");
      s.kind = Step::Kind::avgpool;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.oh = ap->out_h();
      s.ow = ap->out_w();
      cur = {s.c, s.oh, s.ow};
    } else if (dynamic_cast<nn::Flatten*>(&m) != nullptr) {
      // Pure shape bookkeeping: [C,H,W] and [C*H*W] share one row-major
      // buffer, so no step is emitted.
      cur = {numel_of(cur)};
      continue;
    } else {
      fail("module " + std::to_string(mi) +
           ": unsupported module type (the lowering knows the nn/ layer set)");
    }
    s.out_numel = numel_of(cur);
    cm.max_interm_numel_ = std::max(cm.max_interm_numel_, s.out_numel);
    cm.steps_.push_back(std::move(s));
  }
  if (cm.steps_.empty()) fail("model lowered to an empty plan");
  cm.output_numel_ = numel_of(cur);
  return cm;
}

void CompiledModel::apply(const Step& s, const float* src, std::int64_t batch,
                          float* dst, Workspace& ws) const {
  switch (s.kind) {
    case Step::Kind::linear: {
      // ag::matmul forward: one N/N gemm, alpha=1 beta=0 (weight panels
      // pre-packed at freeze; bit-identical either way).
      be::gemm_packed(batch, s.out_feat, s.in_feat, 1.0f, src, s.in_feat,
                      be::Trans::N, s.weight.data(), s.out_feat, s.packed,
                      0.0f, dst, s.out_feat);
      const std::size_t n = static_cast<std::size_t>(batch * s.out_feat);
      const std::size_t m = static_cast<std::size_t>(s.out_feat);
      if (!s.bias.empty()) {
        const float* b = s.bias.data();
        for (std::size_t i = 0; i < n; ++i) {
          const float v = dst[i] + b[i % m];
          dst[i] = !s.relu_after || v > 0.0f ? v : 0.0f;
        }
      } else if (s.relu_after) {
        for (std::size_t i = 0; i < n; ++i) dst[i] = dst[i] > 0.0f ? dst[i] : 0.0f;
      }
      break;
    }
    case Step::Kind::conv: {
      const std::int64_t rows = batch * s.oh * s.ow;
      const std::int64_t fan_in = s.c * s.k * s.k;
      ws.cols.resize(static_cast<std::size_t>(rows * fan_in));
      ws.rows.resize(static_cast<std::size_t>(rows * s.out_c));
      be::im2col(src, batch, s.c, s.h, s.w, s.k, s.k, s.stride, s.pad,
                 ws.cols.data());
      be::gemm_packed(rows, s.out_c, fan_in, 1.0f, ws.cols.data(), fan_in,
                      be::Trans::N, s.weight.data(), s.out_c, s.packed, 0.0f,
                      ws.rows.data(), s.out_c);
      // Fused bias + optional ReLU + rows_to_nchw store: same per-element
      // arithmetic as the separate bias/relu/rearrange passes of the tape.
      const float* bias = s.bias.empty() ? nullptr : s.bias.data();
      const float* rp = ws.rows.data();
      for (std::int64_t ni = 0; ni < batch; ++ni) {
        for (std::int64_t yo = 0; yo < s.oh; ++yo) {
          for (std::int64_t xo = 0; xo < s.ow; ++xo) {
            const std::int64_t row = (ni * s.oh + yo) * s.ow + xo;
            for (std::int64_t ci = 0; ci < s.out_c; ++ci) {
              float v = rp[row * s.out_c + ci];
              if (bias != nullptr) v += bias[ci];
              if (s.relu_after) v = v > 0.0f ? v : 0.0f;
              dst[((ni * s.out_c + ci) * s.oh + yo) * s.ow + xo] = v;
            }
          }
        }
      }
      break;
    }
    case Step::Kind::batchnorm: {
      // ops.cpp eval path: y = ((x - mu) * invstd) * gamma + beta.
      const std::int64_t plane = s.h * s.w;
      be::for_each_index(
          batch * s.c,
          [&, plane](std::int64_t slice) {
            const std::int64_t ci = slice % s.c;
            const float mu = s.mu[static_cast<std::size_t>(ci)];
            const float is = s.invstd[static_cast<std::size_t>(ci)];
            const float g = s.gamma[static_cast<std::size_t>(ci)];
            const float b = s.beta[static_cast<std::size_t>(ci)];
            const float* xb = src + slice * plane;
            float* ob = dst + slice * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
              const float v = (xb[i] - mu) * is * g + b;
              ob[i] = !s.relu_after || v > 0.0f ? v : 0.0f;
            }
          },
          std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(plane, 1)));
      break;
    }
    case Step::Kind::relu: {
      be::map(static_cast<std::size_t>(batch * s.in_numel), src, dst,
              [](float x) { return x > 0.0f ? x : 0.0f; });
      break;
    }
    case Step::Kind::maxpool: {
      be::for_each_index(
          batch * s.c,
          [&](std::int64_t slice) {
            const float* xplane = src + slice * s.h * s.w;
            for (std::int64_t yo = 0; yo < s.oh; ++yo) {
              for (std::int64_t xo = 0; xo < s.ow; ++xo) {
                float best = -std::numeric_limits<float>::infinity();
                for (std::int64_t ky = 0; ky < s.k; ++ky) {
                  for (std::int64_t kx = 0; kx < s.k; ++kx) {
                    const std::int64_t yi = yo * s.stride + ky;
                    const std::int64_t xi = xo * s.stride + kx;
                    const float v = xplane[yi * s.w + xi];
                    if (v > best) best = v;
                  }
                }
                dst[(slice * s.oh + yo) * s.ow + xo] = best;
              }
            }
          },
          /*grain=*/1);
      break;
    }
    case Step::Kind::avgpool: {
      be::for_each_index(
          batch * s.c,
          [&](std::int64_t slice) {
            const float* xplane = src + slice * s.h * s.w;
            float* oplane = dst + slice * s.oh * s.ow;
            for (std::int64_t yo = 0; yo < s.oh; ++yo) {
              const std::int64_t y0 = ag::pool_bin_start(yo, s.h, s.oh);
              const std::int64_t y1 = ag::pool_bin_end(yo, s.h, s.oh);
              for (std::int64_t xo = 0; xo < s.ow; ++xo) {
                const std::int64_t x0 = ag::pool_bin_start(xo, s.w, s.ow);
                const std::int64_t x1 = ag::pool_bin_end(xo, s.w, s.ow);
                double acc = 0.0;
                for (std::int64_t yi = y0; yi < y1; ++yi) {
                  for (std::int64_t xi = x0; xi < x1; ++xi) {
                    acc += xplane[yi * s.w + xi];
                  }
                }
                oplane[yo * s.ow + xo] = static_cast<float>(
                    acc / static_cast<double>((y1 - y0) * (x1 - x0)));
              }
            }
          },
          /*grain=*/1);
      break;
    }
  }
}

void CompiledModel::run(const float* input, std::int64_t batch, float* output,
                        Workspace& ws) const {
  if (batch <= 0) fail("run: batch must be positive");
  const std::size_t cap = static_cast<std::size_t>(batch * max_interm_numel_);
  ws.a.resize(cap);
  ws.b.resize(cap);
  const float* src = input;
  bool use_a = true;
  for (std::size_t si = 0; si < steps_.size(); ++si) {
    float* dst;
    if (si + 1 == steps_.size()) {
      dst = output;
    } else {
      dst = use_a ? ws.a.data() : ws.b.data();
      use_a = !use_a;
    }
    apply(steps_[si], src, batch, dst, ws);
    src = dst;
  }
}

std::vector<float> CompiledModel::run(const std::vector<float>& input,
                                      std::int64_t batch) const {
  if (batch <= 0 || input.size() != static_cast<std::size_t>(batch * input_numel_)) {
    fail("run: input has " + std::to_string(input.size()) + " values, expected batch " +
         std::to_string(batch) + " x " + std::to_string(input_numel_));
  }
  Workspace ws;
  std::vector<float> out(static_cast<std::size_t>(batch * output_numel_));
  run(input.data(), batch, out.data(), ws);
  return out;
}

}  // namespace adept::runtime
