#include "runtime/compiled_model.h"

#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>

#include "autograd/ops.h"
#include "autograd/tensor.h"
#include "backend/kernels.h"
#include "common/version.h"
#include "nn/layers.h"
#include "nn/onn_layers.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adept::runtime {

namespace be = ::adept::backend;

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("CompiledModel: " + msg);
}

std::string dims_str(const std::vector<std::int64_t>& dims) {
  std::string s = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(dims[i]);
  }
  return s + "]";
}

std::int64_t numel_of(const std::vector<std::int64_t>& dims) {
  std::int64_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

// Eval-time [out,in] weight of an ONN layer through the cached batched
// weight_expr path, with phase noise suspended (sigma pushed to 0 and
// popped, drift stream untouched) so the frozen plan is the nominal design.
ag::Tensor frozen_onn_weight(nn::PtcWeight& w) {
  ag::NoGradGuard guard;
  const double sigma = w.phase_noise();
  w.set_phase_noise_sigma(0.0);
  ag::Tensor weight = w.weight_expr();
  w.set_phase_noise_sigma(sigma);
  return weight;
}

// [out,in] -> [in,out] copy (the materialized transpose ONNLinear/ONNConv2d
// forward feeds to the N/N gemm; transposition moves values untouched).
std::vector<float> transposed(const std::vector<float>& w, std::int64_t out,
                              std::int64_t in) {
  std::vector<float> wt(w.size());
  for (std::int64_t i = 0; i < out; ++i) {
    for (std::int64_t j = 0; j < in; ++j) {
      wt[static_cast<std::size_t>(j * out + i)] = w[static_cast<std::size_t>(i * in + j)];
    }
  }
  return wt;
}

// Per-row int8 quantization of `rows` rows of `k` floats: scale[i] =
// absmax(row i) / 127 (0 for an all-zero row). Per-SAMPLE scales are what
// keeps quantized results independent of micro-batch composition — the
// Server guarantee in runtime/server.h (a per-batch scale would make a
// request's answer depend on its batch mates).
void quantize_rows(const be::ExecContext& ctx, std::int64_t rows,
                   std::int64_t k, const float* x, float* scale,
                   std::int8_t* out) {
  // The row sweep parallelizes through the step's context; the per-row
  // absmax/quantize kernels stay below their own parallel grain at these
  // row widths, so no nested fan-out. Both kernels are exact (max is
  // order-independent, the convert rounds like lrintf), so the quantized
  // image is identical on every context.
  ctx.for_each(
      rows, std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(k, 1)),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* row = x + i * k;
          const float amax = be::absmax(static_cast<std::size_t>(k), row);
          scale[i] = amax / 127.0f;
          be::quantize_s8(static_cast<std::size_t>(k), row,
                          amax > 0.0f ? 127.0f / amax : 0.0f, out + i * k);
        }
      });
}

}  // namespace

CompiledModel CompiledModel::freeze(nn::OnnModel& model,
                                    std::vector<std::int64_t> input_dims,
                                    FreezeOptions options) {
  if (!model.net) fail("model has no module graph");
  if (input_dims.empty()) fail("input_dims must not be empty");
  static const obs::TraceId t_freeze = obs::intern_name("runtime.freeze");
  obs::TraceSpan freeze_span(t_freeze);
  static obs::Counter& freezes = obs::counter("runtime.freezes");
  freezes.inc();
  // Robustness seam: reload paths (Server::reload) freeze through here, so
  // tests inject freeze failures at this site to prove a failed reload
  // leaves the old model serving.
  if (failpoint::maybe_fail("runtime.freeze")) {
    fail("freeze failed (injected via failpoint runtime.freeze)");
  }
  const std::vector<std::shared_ptr<nn::Module>> modules =
      nn::flatten_modules(model.net);

  CompiledModel cm;
  cm.input_dims_ = input_dims;
  cm.input_numel_ = numel_of(input_dims);
  cm.max_interm_numel_ = cm.input_numel_;

  std::vector<std::int64_t> cur = input_dims;  // per-sample dims, no batch
  auto expect_chw = [&](const char* what) {
    if (cur.size() != 3) {
      fail(std::string(what) + " expects a [C,H,W] input, got " + dims_str(cur));
    }
  };
  auto expect_features = [&](const char* what, std::int64_t want) {
    const std::int64_t have = numel_of(cur);
    if (have != want) {
      fail(std::string(what) + " expects " + std::to_string(want) +
           " input features, the plan carries " + dims_str(cur) + " = " +
           std::to_string(have));
    }
  };

  for (std::size_t mi = 0; mi < modules.size(); ++mi) {
    nn::Module& m = *modules[mi];
    PlanStep s;
    s.in_numel = numel_of(cur);
    if (auto* l = dynamic_cast<nn::ONNLinear*>(&m)) {
      expect_features("ONNLinear", l->in_features());
      s.kind = PlanStep::Kind::linear;
      s.in_feat = l->in_features();
      s.out_feat = l->out_features();
      ag::Tensor w = frozen_onn_weight(l->weight());  // [out, in]
      s.weight = transposed(w.data(), s.out_feat, s.in_feat);
      if (l->has_bias()) s.bias = l->bias().data();
      cur = {s.out_feat};
    } else if (auto* c = dynamic_cast<nn::ONNConv2d*>(&m)) {
      expect_chw("ONNConv2d");
      if (cur[0] != c->in_channels()) {
        fail("ONNConv2d expects " + std::to_string(c->in_channels()) +
             " input channels, the plan carries " + dims_str(cur));
      }
      s.kind = PlanStep::Kind::conv;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.k = c->kernel();
      s.stride = c->stride();
      s.pad = c->pad();
      s.out_c = c->out_channels();
      s.oh = (s.h + 2 * s.pad - s.k) / s.stride + 1;
      s.ow = (s.w + 2 * s.pad - s.k) / s.stride + 1;
      if (s.oh <= 0 || s.ow <= 0) {
        fail("ONNConv2d output is empty for input " + dims_str(cur));
      }
      ag::Tensor w = frozen_onn_weight(c->weight());  // [out_c, fan_in]
      s.weight = transposed(w.data(), s.out_c, s.c * s.k * s.k);
      if (c->has_bias()) s.bias = c->bias().data();
      cur = {s.out_c, s.oh, s.ow};
    } else if (auto* l = dynamic_cast<nn::Linear*>(&m)) {
      expect_features("Linear", l->in_features());
      s.kind = PlanStep::Kind::linear;
      s.in_feat = l->in_features();
      s.out_feat = l->out_features();
      s.weight = l->weight().data();  // already [in, out]
      if (l->has_bias()) s.bias = l->bias().data();
      cur = {s.out_feat};
    } else if (auto* c = dynamic_cast<nn::Conv2d*>(&m)) {
      expect_chw("Conv2d");
      if (cur[0] != c->in_channels()) {
        fail("Conv2d expects " + std::to_string(c->in_channels()) +
             " input channels, the plan carries " + dims_str(cur));
      }
      s.kind = PlanStep::Kind::conv;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.k = c->kernel();
      s.stride = c->stride();
      s.pad = c->pad();
      s.out_c = c->out_channels();
      s.oh = (s.h + 2 * s.pad - s.k) / s.stride + 1;
      s.ow = (s.w + 2 * s.pad - s.k) / s.stride + 1;
      if (s.oh <= 0 || s.ow <= 0) {
        fail("Conv2d output is empty for input " + dims_str(cur));
      }
      s.weight = c->weight().data();  // already [fan_in, out_c]
      if (c->has_bias()) s.bias = c->bias().data();
      cur = {s.out_c, s.oh, s.ow};
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
      expect_chw("BatchNorm2d");
      if (cur[0] != bn->channels()) {
        fail("BatchNorm2d expects " + std::to_string(bn->channels()) +
             " channels, the plan carries " + dims_str(cur));
      }
      s.kind = PlanStep::Kind::batchnorm;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.mu = bn->running_mean();
      s.gamma = bn->gamma().data();
      s.beta = bn->beta().data();
      // Same expression ops.cpp's eval branch evaluates (float var + float
      // eps, double reciprocal sqrt, cast to float) — bit-identical invstd.
      const std::vector<float>& var = bn->running_var();
      s.invstd.resize(var.size());
      for (std::size_t ci = 0; ci < var.size(); ++ci) {
        s.invstd[ci] = static_cast<float>(1.0 / std::sqrt(var[ci] + bn->eps()));
      }
    } else if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
      // Peephole: fold into the producing step's store when it can clamp
      // inline (identical bits, one fewer full-buffer pass).
      if (!cm.steps_.empty() && !cm.steps_.back().relu_after &&
          (cm.steps_.back().kind == PlanStep::Kind::linear ||
           cm.steps_.back().kind == PlanStep::Kind::conv ||
           cm.steps_.back().kind == PlanStep::Kind::batchnorm)) {
        cm.steps_.back().relu_after = true;
        continue;
      }
      s.kind = PlanStep::Kind::relu;
    } else if (auto* mp = dynamic_cast<nn::MaxPool2d*>(&m)) {
      expect_chw("MaxPool2d");
      s.kind = PlanStep::Kind::maxpool;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.k = mp->kernel();
      s.stride = mp->stride();
      s.oh = (s.h - s.k) / s.stride + 1;
      s.ow = (s.w - s.k) / s.stride + 1;
      if (s.oh <= 0 || s.ow <= 0) {
        fail("MaxPool2d output is empty for input " + dims_str(cur));
      }
      cur = {s.c, s.oh, s.ow};
    } else if (auto* ap = dynamic_cast<nn::AdaptiveAvgPool2d*>(&m)) {
      expect_chw("AdaptiveAvgPool2d");
      s.kind = PlanStep::Kind::avgpool;
      s.c = cur[0];
      s.h = cur[1];
      s.w = cur[2];
      s.oh = ap->out_h();
      s.ow = ap->out_w();
      cur = {s.c, s.oh, s.ow};
    } else if (dynamic_cast<nn::Flatten*>(&m) != nullptr) {
      // Pure shape bookkeeping: [C,H,W] and [C*H*W] share one row-major
      // buffer, so no step is emitted.
      cur = {numel_of(cur)};
      continue;
    } else {
      fail("module " + std::to_string(mi) +
           ": unsupported module type (the lowering knows the nn/ layer set)");
    }
    s.out_numel = numel_of(cur);
    cm.max_interm_numel_ = std::max(cm.max_interm_numel_, s.out_numel);
    cm.steps_.push_back(std::move(s));
  }
  if (cm.steps_.empty()) fail("model lowered to an empty plan");
  cm.output_numel_ = numel_of(cur);

  // Planning passes (runtime/plan.h), then a single weight-pack pass — the
  // lowering above deliberately does not pack, so fusion/quantization never
  // pack a weight twice.
  if (options.optimize) fuse_plan(cm.steps_);
  if (options.quantize_int8) quantize_plan(cm.steps_);
  cm.slot_sizes_ =
      assign_slots(cm.steps_, options.optimize, cm.max_interm_numel_);
  assign_devices(cm.steps_, options.device);
  pack_plan(cm.steps_);
  // Intern the per-step trace-span names now that kind/device are final:
  // run() records spans by id only, so plan hotspots show up per step in
  // ADEPT_TRACE output with zero string work on the hot path.
  for (std::size_t i = 0; i < cm.steps_.size(); ++i) {
    PlanStep& s = cm.steps_[i];
    s.trace_id = obs::intern_name("plan.s" + std::to_string(i) + "." +
                                  plan_kind_name(s.kind) + "@" +
                                  be::device_name(s.device));
  }
  cm.options_ = options;
  cm.frozen_param_version_ = param_version();
  return cm;
}

bool CompiledModel::refresh(nn::OnnModel& model) {
  // The whole point of this entry: a refresh loop (serving alongside
  // training) must not re-materialize and re-pack every weight when no
  // parameter changed since the last freeze.
  if (frozen_param_version_ == param_version()) return false;
  *this = freeze(model, input_dims_, options_);
  return true;
}

void CompiledModel::apply(const PlanStep& s, const be::ExecContext& ctx,
                          const float* src, std::int64_t batch, float* dst,
                          Workspace& ws) const {
  switch (s.kind) {
    case PlanStep::Kind::linear: {
      if (s.quantized) {
        ws.ascale.resize(static_cast<std::size_t>(batch));
        ws.qa.resize(static_cast<std::size_t>(batch * s.in_feat));
        ws.qacc.resize(static_cast<std::size_t>(batch * s.out_feat));
        quantize_rows(ctx, batch, s.in_feat, src, ws.ascale.data(),
                      ws.qa.data());
        ctx.gemm_s8_packed(batch, s.out_feat, s.in_feat, ws.qa.data(),
                           s.in_feat, s.weight_s8.data(), s.out_feat,
                           s.packed_s8, ws.qacc.data(), s.out_feat);
        // Dequantize with the freeze-time folded constants (bias and any
        // fused BN already inside qscale/qbias).
        for (std::int64_t i = 0; i < batch; ++i) {
          const std::int32_t* arow = ws.qacc.data() + i * s.out_feat;
          float* drow = dst + i * s.out_feat;
          const float as = ws.ascale[static_cast<std::size_t>(i)];
          for (std::int64_t j = 0; j < s.out_feat; ++j) {
            const std::size_t sj = static_cast<std::size_t>(j);
            float v = static_cast<float>(arow[j]) * (as * s.qscale[sj]) +
                      s.qbias[sj];
            if (s.relu_after && v < 0.0f) v = 0.0f;
            drow[j] = v;
          }
        }
        break;
      }
      // ag::matmul forward: one N/N gemm, alpha=1 beta=0 (weight panels
      // pre-packed at freeze; bit-identical either way).
      ctx.gemm_packed(batch, s.out_feat, s.in_feat, 1.0f, src, s.in_feat,
                      be::Trans::N, s.weight.data(), s.out_feat, s.packed,
                      0.0f, dst, s.out_feat);
      const std::size_t n = static_cast<std::size_t>(batch * s.out_feat);
      const std::size_t m = static_cast<std::size_t>(s.out_feat);
      if (!s.bias.empty()) {
        const float* b = s.bias.data();
        for (std::size_t i = 0; i < n; ++i) {
          const float v = dst[i] + b[i % m];
          dst[i] = !s.relu_after || v > 0.0f ? v : 0.0f;
        }
      } else if (s.relu_after) {
        for (std::size_t i = 0; i < n; ++i) dst[i] = dst[i] > 0.0f ? dst[i] : 0.0f;
      }
      break;
    }
    case PlanStep::Kind::conv: {
      const std::int64_t ohow = s.oh * s.ow;
      const std::int64_t fan_in = s.c * s.k * s.k;
      // Sample-block tiling (fuse_plan): im2col + gemm + store run per
      // block of samples, so the cols/rows scratch holds one block instead
      // of the whole batch. Rows are sample-independent, so any blocking is
      // bit-exact vs the single full-batch pass (conv_row_block == 0).
      std::int64_t nb = batch;
      if (s.conv_row_block > 0) {
        nb = std::clamp(s.conv_row_block / ohow, std::int64_t{1}, batch);
      }
      if (s.quantized) {
        // The int8 pipeline quantizes the feature map once per SAMPLE
        // (c*h*w values — an order of magnitude fewer than the
        // rows*fan_in cols matrix), then gathers patches as bytes:
        // im2col is pure data movement, so gathering quantized pixels
        // equals quantizing gathered pixels, and every row of a sample
        // shares that sample's activation scale.
        ws.ascale.resize(static_cast<std::size_t>(nb));
        ws.qsrc.resize(static_cast<std::size_t>(nb * s.in_numel));
        ws.qa.resize(static_cast<std::size_t>(nb * ohow * fan_in));
        ws.qacc.resize(static_cast<std::size_t>(nb * ohow * s.out_c));
      } else {
        ws.cols.resize(static_cast<std::size_t>(nb * ohow * fan_in));
        ws.rows.resize(static_cast<std::size_t>(nb * ohow * s.out_c));
      }
      const float* bias = s.bias.empty() ? nullptr : s.bias.data();
      for (std::int64_t n0 = 0; n0 < batch; n0 += nb) {
        const std::int64_t nblk = std::min(nb, batch - n0);
        const std::int64_t rows = nblk * ohow;
        if (s.quantized) {
          quantize_rows(ctx, nblk, s.in_numel, src + n0 * s.in_numel,
                        ws.ascale.data(), ws.qsrc.data());
          ctx.im2col_s8(ws.qsrc.data(), nblk, s.c, s.h, s.w, s.k, s.k,
                        s.stride, s.pad, ws.qa.data());
          ctx.gemm_s8_packed(rows, s.out_c, fan_in, ws.qa.data(), fan_in,
                             s.weight_s8.data(), s.out_c, s.packed_s8,
                             ws.qacc.data(), s.out_c);
        } else {
          ctx.im2col(src + n0 * s.in_numel, nblk, s.c, s.h, s.w, s.k, s.k,
                     s.stride, s.pad, ws.cols.data());
          ctx.gemm_packed(rows, s.out_c, fan_in, 1.0f, ws.cols.data(), fan_in,
                          be::Trans::N, s.weight.data(), s.out_c, s.packed,
                          0.0f, ws.rows.data(), s.out_c);
        }
        // Fused epilogue + rows_to_nchw store, one output CHANNEL at a time:
        // writes are contiguous along the dst plane (the gemm-row-major
        // orientation would scatter them a plane apart), the gemm output
        // column walks a fixed stride, and the per-channel constants hoist
        // out of the pixel loop. For fp32 the per-element float expression
        // sequence — bias, then the BN affine when fuse_plan folded one in,
        // then ReLU — is exactly what the separate steps evaluate; only the
        // iteration order changes, which no element depends on. For int8
        // the constants were pre-folded into qscale/qbias at freeze.
        for (std::int64_t ni = 0; ni < nblk; ++ni) {
          for (std::int64_t ci = 0; ci < s.out_c; ++ci) {
            const std::size_t sc = static_cast<std::size_t>(ci);
            float* dplane =
                dst + (((n0 + ni) * s.out_c + ci) * s.oh) * s.ow;
            if (s.quantized) {
              const std::int32_t* qcol =
                  ws.qacc.data() + ni * ohow * s.out_c + ci;
              const float scale =
                  ws.ascale[static_cast<std::size_t>(ni)] * s.qscale[sc];
              const float qb = s.qbias[sc];
              for (std::int64_t p = 0; p < ohow; ++p) {
                float v = static_cast<float>(qcol[p * s.out_c]) * scale + qb;
                if (s.relu_after && v < 0.0f) v = 0.0f;
                dplane[p] = v;
              }
            } else {
              const float* rcol = ws.rows.data() + ni * ohow * s.out_c + ci;
              const float bc = bias != nullptr ? bias[ci] : 0.0f;
              const float mu = s.bn_after ? s.mu[sc] : 0.0f;
              const float is = s.bn_after ? s.invstd[sc] : 0.0f;
              const float ga = s.bn_after ? s.gamma[sc] : 0.0f;
              const float be_ = s.bn_after ? s.beta[sc] : 0.0f;
              for (std::int64_t p = 0; p < ohow; ++p) {
                float v = rcol[p * s.out_c];
                if (bias != nullptr) v += bc;
                if (s.bn_after) v = (v - mu) * is * ga + be_;
                if (s.relu_after) v = v > 0.0f ? v : 0.0f;
                dplane[p] = v;
              }
            }
          }
        }
      }
      break;
    }
    case PlanStep::Kind::batchnorm: {
      // ops.cpp eval path: y = ((x - mu) * invstd) * gamma + beta. Pure
      // elementwise, so in-place execution (src == dst) is safe.
      const std::int64_t plane = s.h * s.w;
      ctx.for_each(
          batch * s.c,
          std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(plane, 1)),
          [&, plane](std::int64_t s0, std::int64_t s1) {
            for (std::int64_t slice = s0; slice < s1; ++slice) {
              const std::int64_t ci = slice % s.c;
              const float mu = s.mu[static_cast<std::size_t>(ci)];
              const float is = s.invstd[static_cast<std::size_t>(ci)];
              const float g = s.gamma[static_cast<std::size_t>(ci)];
              const float b = s.beta[static_cast<std::size_t>(ci)];
              const float* xb = src + slice * plane;
              float* ob = dst + slice * plane;
              for (std::int64_t i = 0; i < plane; ++i) {
                const float v = (xb[i] - mu) * is * g + b;
                ob[i] = !s.relu_after || v > 0.0f ? v : 0.0f;
              }
            }
          });
      break;
    }
    case PlanStep::Kind::relu: {
      const std::int64_t n = batch * s.in_numel;
      ctx.for_each(n, be::detail::kElemGrain,
                   [&](std::int64_t i0, std::int64_t i1) {
                     for (std::int64_t i = i0; i < i1; ++i) {
                       dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
                     }
                   });
      break;
    }
    case PlanStep::Kind::maxpool: {
      ctx.for_each(
          batch * s.c, /*grain=*/1,
          [&](std::int64_t s0, std::int64_t s1) {
            for (std::int64_t slice = s0; slice < s1; ++slice) {
              const float* xplane = src + slice * s.h * s.w;
              for (std::int64_t yo = 0; yo < s.oh; ++yo) {
                for (std::int64_t xo = 0; xo < s.ow; ++xo) {
                  float best = -std::numeric_limits<float>::infinity();
                  for (std::int64_t ky = 0; ky < s.k; ++ky) {
                    for (std::int64_t kx = 0; kx < s.k; ++kx) {
                      const std::int64_t yi = yo * s.stride + ky;
                      const std::int64_t xi = xo * s.stride + kx;
                      const float v = xplane[yi * s.w + xi];
                      if (v > best) best = v;
                    }
                  }
                  dst[(slice * s.oh + yo) * s.ow + xo] = best;
                }
              }
            }
          });
      break;
    }
    case PlanStep::Kind::avgpool: {
      ctx.for_each(
          batch * s.c, /*grain=*/1,
          [&](std::int64_t s0, std::int64_t s1) {
            for (std::int64_t slice = s0; slice < s1; ++slice) {
              const float* xplane = src + slice * s.h * s.w;
              float* oplane = dst + slice * s.oh * s.ow;
              for (std::int64_t yo = 0; yo < s.oh; ++yo) {
                const std::int64_t y0 = ag::pool_bin_start(yo, s.h, s.oh);
                const std::int64_t y1 = ag::pool_bin_end(yo, s.h, s.oh);
                for (std::int64_t xo = 0; xo < s.ow; ++xo) {
                  const std::int64_t x0 = ag::pool_bin_start(xo, s.w, s.ow);
                  const std::int64_t x1 = ag::pool_bin_end(xo, s.w, s.ow);
                  double acc = 0.0;
                  for (std::int64_t yi = y0; yi < y1; ++yi) {
                    for (std::int64_t xi = x0; xi < x1; ++xi) {
                      acc += xplane[yi * s.w + xi];
                    }
                  }
                  oplane[yo * s.ow + xo] = static_cast<float>(
                      acc / static_cast<double>((y1 - y0) * (x1 - x0)));
                }
              }
            }
          });
      break;
    }
  }
}

void CompiledModel::run(const float* input, std::int64_t batch, float* output,
                        Workspace& ws) const {
  if (batch <= 0) fail("run: batch must be positive");
  static const obs::TraceId t_run = obs::intern_name("plan.run");
  obs::TraceSpan run_span(t_run);
  ws.slots.resize(slot_sizes_.size());
  for (std::size_t i = 0; i < slot_sizes_.size(); ++i) {
    ws.slots[i].resize(static_cast<std::size_t>(batch * slot_sizes_[i]));
  }
  const float* src = input;
  for (std::size_t si = 0; si < steps_.size(); ++si) {
    const PlanStep& s = steps_[si];
    // Device-plan routing: each step executes through the context its tag
    // names — a worker-owned context installed in the workspace, or the
    // process-wide singleton. The seam the dispatch loop guards is the one
    // failure-injection covers: a context that cannot launch a step must
    // surface as an exception here, not as silent garbage downstream.
    const be::ExecContext* ctx =
        ws.contexts[static_cast<std::size_t>(s.device)];
    if (ctx == nullptr) ctx = &be::context_for(s.device);
    if (failpoint::maybe_fail("runtime.context.step")) {
      fail("step " + std::to_string(si) + " (" + ctx->name() +
           " context) failed (injected via failpoint runtime.context.step)");
    }
    float* dst = s.out_slot < 0
                     ? output
                     : ws.slots[static_cast<std::size_t>(s.out_slot)].data();
    if (ws.poison_free_slots) {
      // Aliasing check: the only live value entering this step is its
      // input; every other slot must be dead. NaN-fill them so a plan that
      // reads a freed slot visibly poisons its output.
      for (std::size_t bi = 0; bi < ws.slots.size(); ++bi) {
        const int b = static_cast<int>(bi);
        if (b == s.in_slot || b == s.out_slot) continue;
        std::fill(ws.slots[bi].begin(), ws.slots[bi].end(),
                  std::numeric_limits<float>::quiet_NaN());
      }
    }
    // Per-step span (ids interned at freeze, tagged kind@device): the
    // disarmed cost is one relaxed load, so the production hot loop stays
    // as branch-free as before.
    obs::TraceSpan step_span(s.trace_id);
#ifdef ADEPT_STEP_PROF
    // Build-time profiling aid (docs/compiled_model.md): per-step best-case
    // latency, printed every 200 runs. Off by default — the flag is never
    // set by CMake — so the hot loop below stays branch-free in production.
    {
      static thread_local std::vector<double> best;
      if (best.size() < steps_.size()) best.resize(steps_.size(), 1e300);
      const auto t0 = std::chrono::steady_clock::now();
      apply(s, *ctx, src, batch, dst, ws);
      ctx->finish();
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (us < best[si]) best[si] = us;
      if (si + 1 == steps_.size()) {
        static thread_local int calls = 0;
        if (++calls % 200 == 0) {
          for (std::size_t j = 0; j < best.size(); ++j)
            std::fprintf(stderr, "step %2zu kind %d : %8.1f us\n", j,
                         static_cast<int>(steps_[j].kind), best[j]);
          std::fprintf(stderr, "---\n");
        }
      }
    }
#else
    apply(s, *ctx, src, batch, dst, ws);
    // Synchronization point: the next step (or the caller) reads this
    // step's output, so the context must have retired it. Free for the CPU
    // contexts (kernels are synchronous); an async device context would
    // drain its stream here.
    ctx->finish();
#endif
    src = dst;
  }
}

std::vector<float> CompiledModel::run(const std::vector<float>& input,
                                      std::int64_t batch) const {
  if (batch <= 0 || input.size() != static_cast<std::size_t>(batch * input_numel_)) {
    fail("run: input has " + std::to_string(input.size()) + " values, expected batch " +
         std::to_string(batch) + " x " + std::to_string(input_numel_));
  }
  Workspace ws;
  std::vector<float> out(static_cast<std::size_t>(batch * output_numel_));
  run(input.data(), batch, out.data(), ws);
  return out;
}

std::int64_t CompiledModel::workspace_bytes(std::int64_t batch) const {
  std::int64_t total = 0;
  for (auto sz : slot_sizes_) total += sz * batch * 4;
  // The conv/quant scratch vectors are shared across steps and never
  // shrink, so each contributes its per-plan maximum.
  std::int64_t cols = 0, rows = 0, qsrc = 0, qa = 0, qacc = 0, ascale = 0;
  for (const PlanStep& s : steps_) {
    if (s.kind == PlanStep::Kind::conv) {
      const std::int64_t ohow = s.oh * s.ow;
      const std::int64_t fan_in = s.c * s.k * s.k;
      std::int64_t nb = batch;
      if (s.conv_row_block > 0) {
        nb = std::clamp(s.conv_row_block / ohow, std::int64_t{1}, batch);
      }
      const std::int64_t r = nb * ohow;
      if (s.quantized) {
        qsrc = std::max(qsrc, nb * s.in_numel);
        qa = std::max(qa, r * fan_in);
        qacc = std::max(qacc, r * s.out_c);
        ascale = std::max(ascale, nb);
      } else {
        cols = std::max(cols, r * fan_in);
        rows = std::max(rows, r * s.out_c);
      }
    } else if (s.kind == PlanStep::Kind::linear && s.quantized) {
      qa = std::max(qa, batch * s.in_feat);
      qacc = std::max(qacc, batch * s.out_feat);
      ascale = std::max(ascale, batch);
    }
  }
  return total + (cols + rows + ascale) * 4 + qsrc + qa + qacc * 4;
}

void CompiledModel::dump_plan(std::ostream& os) const {
  os << "CompiledModel: input " << dims_str(input_dims_) << " -> "
     << output_numel_ << " outputs, " << steps_.size() << " steps"
     << (options_.optimize ? "" : " (unplanned)")
     << (options_.quantize_int8 ? ", int8" : "") << "\n";
  dump_plan_steps(steps_, slot_sizes_, os);
  os << "workspace: " << workspace_bytes(1) << " bytes at batch 1\n";
}

}  // namespace adept::runtime
