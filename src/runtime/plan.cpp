#include "runtime/plan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <ostream>

#include "common/env.h"

namespace adept::runtime {

namespace be = ::adept::backend;

namespace {

std::atomic<std::uint64_t> g_weight_pack_count{0};

// Target im2col rows per conv block: enough rows to keep the gemm's row
// parallelism fed while bounding scratch to block * fan_in. Blocks split on
// sample boundaries (im2col rows of one sample are independent), so every
// per-element operation sequence is identical to the unblocked pass.
constexpr std::int64_t kConvRowBlockTarget = 256;

bool elementwise(const PlanStep& s) {
  return s.kind == PlanStep::Kind::relu || s.kind == PlanStep::Kind::batchnorm;
}

}  // namespace

const char* plan_kind_name(PlanStep::Kind k) {
  switch (k) {
    case PlanStep::Kind::linear: return "linear";
    case PlanStep::Kind::conv: return "conv";
    case PlanStep::Kind::batchnorm: return "batchnorm";
    case PlanStep::Kind::relu: return "relu";
    case PlanStep::Kind::maxpool: return "maxpool";
    case PlanStep::Kind::avgpool: return "avgpool";
  }
  return "?";
}

FreezeOptions FreezeOptions::from_env() {
  FreezeOptions o;
  o.quantize_int8 = env_int("ADEPT_SERVE_QUANT", 0) != 0;
  return o;
}

void fuse_plan(std::vector<PlanStep>& steps) {
  // BatchNorm epilogue fusion: a standalone BN step directly after a conv
  // folds into the conv's store loop. The fused store evaluates exactly
  //   v = gemm + bias;  v = (v - mu)*invstd*gamma + beta;  relu?
  // — the same float expressions, in the same order, the two separate steps
  // evaluate — so it is bit-exact (NOT algebraic weight folding, which is
  // not). A conv that already clamps (relu_after) cannot absorb a BN: the
  // order would become conv-relu-BN vs the fused bias-BN-relu.
  std::vector<PlanStep> fused;
  fused.reserve(steps.size());
  for (PlanStep& s : steps) {
    if (s.kind == PlanStep::Kind::batchnorm && !fused.empty()) {
      PlanStep& p = fused.back();
      if (p.kind == PlanStep::Kind::conv && !p.relu_after && !p.bn_after) {
        p.bn_after = true;
        p.mu = std::move(s.mu);
        p.invstd = std::move(s.invstd);
        p.gamma = std::move(s.gamma);
        p.beta = std::move(s.beta);
        p.relu_after = s.relu_after;  // BN's folded ReLU rides along
        continue;
      }
    }
    fused.push_back(std::move(s));
  }
  steps = std::move(fused);
  for (PlanStep& s : steps) {
    if (s.kind == PlanStep::Kind::conv) s.conv_row_block = kConvRowBlockTarget;
  }
}

void quantize_plan(std::vector<PlanStep>& steps) {
  for (PlanStep& s : steps) {
    const std::int64_t k = s.gemm_k();
    const std::int64_t n = s.gemm_n();
    if (k <= 0 || n <= 0 || s.quantized) continue;
    s.wscale.assign(static_cast<std::size_t>(n), 0.0f);
    s.weight_s8.assign(static_cast<std::size_t>(k * n), 0);
    // Per-output-channel scale: wscale[j] = absmax(col j) / 127, so the
    // int8 image spans the full [-127, 127] range per channel regardless of
    // inter-channel magnitude spread. An all-zero column keeps scale 0 and
    // quantizes (and dequantizes) to exact zeros.
    for (std::int64_t j = 0; j < n; ++j) {
      float amax = 0.0f;
      for (std::int64_t i = 0; i < k; ++i) {
        amax = std::max(amax, std::fabs(s.weight[static_cast<std::size_t>(i * n + j)]));
      }
      s.wscale[static_cast<std::size_t>(j)] = amax / 127.0f;
      const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
      for (std::int64_t i = 0; i < k; ++i) {
        const long q = std::lrintf(s.weight[static_cast<std::size_t>(i * n + j)] * inv);
        s.weight_s8[static_cast<std::size_t>(i * n + j)] = static_cast<std::int8_t>(
            std::min<long>(127, std::max<long>(-127, q)));
      }
    }
    // Fold the fp32 bias and any BN epilogue fuse_plan attached into the
    // dequantize constants (see PlanStep::qscale). fuse_plan runs first, so
    // bn_after is already settled here.
    s.qscale.assign(static_cast<std::size_t>(n), 0.0f);
    s.qbias.assign(static_cast<std::size_t>(n), 0.0f);
    for (std::int64_t j = 0; j < n; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      const float b0 = s.bias.empty() ? 0.0f : s.bias[sj];
      if (s.bn_after) {
        const float aff = s.invstd[sj] * s.gamma[sj];
        s.qscale[sj] = s.wscale[sj] * aff;
        s.qbias[sj] = (b0 - s.mu[sj]) * aff + s.beta[sj];
      } else {
        s.qscale[sj] = s.wscale[sj];
        s.qbias[sj] = b0;
      }
    }
    s.quantized = true;
  }
}

std::vector<std::int64_t> assign_slots(std::vector<PlanStep>& steps,
                                       bool optimize,
                                       std::int64_t max_interm) {
  if (!optimize) {
    // Reference chain: two ping-pong buffers at the whole-plan high-water
    // mark (the shape PR 5 executed) — the baseline planned execution is
    // proven bit-identical against.
    std::vector<std::int64_t> sizes(steps.size() > 1 ? 2 : 0, max_interm);
    int prev = -1;
    bool use_a = true;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      steps[i].in_slot = prev;
      steps[i].in_place = false;
      if (i + 1 == steps.size()) {
        steps[i].out_slot = -1;
      } else {
        steps[i].out_slot = use_a ? 0 : 1;
        use_a = !use_a;
      }
      prev = steps[i].out_slot;
    }
    return sizes;
  }

  // Liveness over a linear chain: the only live value entering step i is
  // step i-1's output, so a slot is free the moment its consumer picks a
  // different destination. Greedy reuse from a free list, per-slot sizes at
  // the max of their assigned steps; elementwise steps run in place (never
  // inside the caller's const input buffer). The non-aliasing invariant —
  // no step writes a slot another live value still occupies — is exercised
  // by the freed-slot poisoning test in tests/test_plan.cpp.
  std::vector<std::int64_t> sizes;
  std::vector<int> free_slots;
  int prev = -1;  // slot holding the live input of the next step
  for (std::size_t i = 0; i < steps.size(); ++i) {
    PlanStep& s = steps[i];
    s.in_slot = prev;
    s.in_place = false;
    if (i + 1 == steps.size()) {
      s.out_slot = -1;  // the caller's output buffer
    } else if (elementwise(s) && prev >= 0) {
      s.in_place = true;
      s.out_slot = prev;
    } else {
      int slot;
      if (!free_slots.empty()) {
        slot = free_slots.back();
        free_slots.pop_back();
      } else {
        slot = static_cast<int>(sizes.size());
        sizes.push_back(0);
      }
      sizes[static_cast<std::size_t>(slot)] =
          std::max(sizes[static_cast<std::size_t>(slot)], s.out_numel);
      s.out_slot = slot;
      if (prev >= 0) free_slots.push_back(prev);  // input dies here
    }
    prev = s.out_slot;
  }
  return sizes;
}

void assign_devices(std::vector<PlanStep>& steps, be::Device device) {
  for (PlanStep& s : steps) s.device = device;
}

void pack_plan(std::vector<PlanStep>& steps) {
  for (PlanStep& s : steps) {
    const std::int64_t k = s.gemm_k();
    const std::int64_t n = s.gemm_n();
    if (k <= 0 || n <= 0) continue;
    if (s.quantized) {
      s.packed_s8 = be::pack_gemm_b_s8(k, n, s.weight_s8.data(), n);
    } else {
      s.packed = be::pack_gemm_b(be::Trans::N, k, n, s.weight.data(), n);
    }
    g_weight_pack_count.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t weight_pack_count() {
  return g_weight_pack_count.load(std::memory_order_relaxed);
}

void dump_plan_steps(const std::vector<PlanStep>& steps,
                     const std::vector<std::int64_t>& slot_sizes,
                     std::ostream& os) {
  auto slot_name = [](int slot) {
    return slot < 0 ? std::string("ext") : "s" + std::to_string(slot);
  };
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    os << "#" << i << " " << plan_kind_name(s.kind);
    if (s.kind == PlanStep::Kind::linear) {
      os << " [" << s.in_feat << " -> " << s.out_feat << "]";
    } else if (s.kind == PlanStep::Kind::conv) {
      os << " [" << s.c << "x" << s.h << "x" << s.w << " -> " << s.out_c << "x"
         << s.oh << "x" << s.ow << " k" << s.k << " s" << s.stride << " p"
         << s.pad << "]";
      if (s.conv_row_block > 0) os << " block=" << s.conv_row_block;
    } else if (s.kind == PlanStep::Kind::maxpool ||
               s.kind == PlanStep::Kind::avgpool) {
      os << " [" << s.c << "x" << s.h << "x" << s.w << " -> " << s.c << "x"
         << s.oh << "x" << s.ow << "]";
    } else {
      os << " [" << s.in_numel << "]";
    }
    if (!s.bias.empty()) os << " +bias";
    if (s.bn_after) os << " +bn";
    if (s.relu_after) os << " +relu";
    if (s.quantized) os << " int8";
    os << "  " << slot_name(s.in_slot) << " -> " << slot_name(s.out_slot);
    if (s.in_place) os << " (in place)";
    os << " @" << be::device_name(s.device);
    os << "\n";
  }
  // A slot belongs to the device of the step writing it (the first writer
  // under slot reuse — all writers share a device under today's uniform
  // assign_devices policy).
  std::vector<const char*> slot_dev(slot_sizes.size(), nullptr);
  for (const PlanStep& s : steps) {
    if (s.out_slot >= 0 && static_cast<std::size_t>(s.out_slot) < slot_dev.size() &&
        slot_dev[static_cast<std::size_t>(s.out_slot)] == nullptr) {
      slot_dev[static_cast<std::size_t>(s.out_slot)] = be::device_name(s.device);
    }
  }
  os << "slots:";
  if (slot_sizes.empty()) os << " none";
  for (std::size_t i = 0; i < slot_sizes.size(); ++i) {
    os << " s" << i << "=" << slot_sizes[i];
    if (slot_dev[i] != nullptr) os << "@" << slot_dev[i];
  }
  os << " floats/sample\n";
}

}  // namespace adept::runtime
