// Concurrent micro-batching inference server over one CompiledModel.
//
// Architecture: producers call `submit()` with one sample and get a
// std::future for its output row. Requests land in a bounded MPMC queue
// (submit blocks while the queue is full — natural backpressure). Each
// worker pops the oldest request, then coalesces whatever else is queued —
// up to `max_batch` requests, waiting at most `max_wait_us` for stragglers —
// into one [B, in] buffer and runs a single batched forward through the
// compiled plan. Every step of the plan is per-sample bit-exact and the
// backend kernels are bit-exact across thread counts, so a request's result
// is identical whether it was served alone or inside any batch, by 1 or N
// workers (asserted in tests/test_runtime.cpp).
//
// Knobs come from ServerConfig, defaulting to the ADEPT_SERVE_* environment
// variables (see common/env.h): worker count, micro-batch ceiling, and the
// batching window. Shutdown is graceful: queued requests are drained and
// answered, then workers exit; submit() after shutdown fails the returned
// future with std::runtime_error.
//
// Parallelism note: worker-pool parallelism composes with the backend
// kernels' own parallel_for. For throughput serving with several workers,
// set ADEPT_NUM_THREADS=1 (or keep threads low) so the inter-request pool
// saturates the cores instead of each worker's kernels spawning their own
// teams — results are bit-identical either way.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/compiled_model.h"

namespace adept::runtime {

struct ServerConfig {
  int threads = 1;        // worker count
  int max_batch = 16;     // micro-batch ceiling per forward
  int max_wait_us = 100;  // stragglers window after the first pop
  std::size_t queue_capacity = 1024;
  // Freeze-time knob surfaced in the serving config so deployment entry
  // points (examples/serve_ptc, bench_serve) pick it up alongside the other
  // ADEPT_SERVE_* variables: serve the int8-quantized plan instead of fp32
  // (pass FreezeOptions{.quantize_int8 = config.quantize} to freeze). The
  // Server itself is plan-agnostic — quantization is baked into the
  // CompiledModel it borrows. Per-sample activation scales keep the
  // batch-composition-independence guarantee above intact for quantized
  // plans too (asserted in tests/test_plan.cpp).
  bool quantize = false;

  // Reads ADEPT_SERVE_THREADS / ADEPT_SERVE_MAX_BATCH /
  // ADEPT_SERVE_MAX_WAIT_US / ADEPT_SERVE_QUANT, clamping out-of-range
  // values into the supported envelope (documented in common/env.h, tested
  // in tests/test_runtime.cpp): threads [1, 256] (default: hardware
  // concurrency), max_batch [1, 4096], max_wait_us [0, 1000000], quantize
  // any nonzero integer.
  static ServerConfig from_env();

  // The clamp from_env applies, exposed for callers building configs by
  // hand from untrusted values.
  ServerConfig clamped() const;
};

struct ServerStats {
  std::uint64_t requests = 0;   // completed requests
  std::uint64_t batches = 0;    // forward passes executed
  double mean_batch_fill = 0;   // requests / batches (micro-batch fill rate)
  // Percentiles over the most recent ~64k completed requests (bounded
  // ring, so a long-running server neither grows without bound nor pays
  // an ever-larger sort in stats()).
  double latency_p50_us = 0;    // submit -> result
  double latency_p99_us = 0;
  double latency_max_us = 0;    // max within the same window
};

class Server {
 public:
  // The server borrows `model`; it must outlive the Server.
  Server(const CompiledModel& model, ServerConfig config = ServerConfig::from_env());
  ~Server();  // graceful shutdown
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueue one sample of input_numel() floats; the future resolves to its
  // output_numel() result row. Blocks while the queue is at capacity.
  // Throws std::invalid_argument on a size mismatch; a submit raced with
  // shutdown resolves the future with std::runtime_error.
  std::future<std::vector<float>> submit(std::vector<float> input);

  // Drain queued requests, answer them, stop the workers. Idempotent; the
  // destructor calls it.
  void shutdown();

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }

 private:
  struct Request {
    std::vector<float> input;
    std::promise<std::vector<float>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  const CompiledModel& model_;
  ServerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  static constexpr std::size_t kLatencyWindow = 1 << 16;

  mutable std::mutex stats_mu_;
  std::uint64_t done_requests_ = 0;
  std::uint64_t done_batches_ = 0;
  std::vector<double> latencies_us_;  // bounded ring of recent samples
  std::size_t latency_cursor_ = 0;    // overwrite position once full

  std::vector<std::thread> workers_;
};

}  // namespace adept::runtime
