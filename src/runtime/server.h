// Concurrent micro-batching inference server with admission control,
// per-request deadlines, and hot checkpoint reload.
//
// Architecture: producers call `submit()` with one sample and get a
// std::future for its output row. Requests land in a bounded MPMC queue;
// what happens when that queue is full is the configured OverloadPolicy:
//
//   block        submit blocks until space frees (natural backpressure; the
//                pre-admission-control behavior). Queueing delay is
//                unbounded under sustained overload.
//   reject       submit fails the returned future immediately with
//                RejectedError. Accepted requests keep a bounded queue
//                delay; the client retries with backoff (see the helper in
//                examples/serve_ptc.cpp).
//   shed_oldest  the oldest queued request is failed with RejectedError and
//                the new one takes its place — freshest-work-wins, for
//                clients that would have abandoned the oldest answer anyway.
//
// Deadlines: a request carries an absolute deadline (config default or the
// per-submit override). Workers check it when dequeuing and again after
// batch formation; an expired request fails with DeadlineExceededError and
// its slot in the batch is never executed — overload sheds work instead of
// computing answers nobody is waiting for. Requests already inside a
// running forward are not aborted.
//
// Hot reload: the Server owns a swappable CompiledModel slot keyed on the
// model's frozen param_version. `reload(path)` loads + freezes a checkpoint
// on the calling thread while workers keep serving the old model, then
// swaps the slot. Workers snapshot the slot once per micro-batch, so every
// response is computed wholly by one model version and zero requests are
// dropped across a swap (hammered in tests/test_server_robustness.cpp).
// Worker workspaces are plan-agnostic — CompiledModel::run re-sizes the
// slot pool per call — so a swap needs no workspace coordination.
//
// Micro-batching: each worker pops the oldest live request, then coalesces
// whatever else is queued — up to `max_batch` requests, waiting at most
// `max_wait_us` for stragglers — into one [B, in] buffer and runs a single
// batched forward. Every step of the plan is per-sample bit-exact and the
// backend kernels are bit-exact across thread counts, so a request's result
// is identical whether it was served alone or inside any batch, by 1 or N
// workers (asserted in tests/test_runtime.cpp).
//
// Knobs come from ServerConfig, defaulting to the ADEPT_SERVE_* environment
// variables (see common/env.h): worker count, micro-batch ceiling, batching
// window, overload policy, and default deadline. Shutdown is graceful:
// queued requests are drained and answered, then workers exit; submitters
// still blocked on a full queue (and any submit() after shutdown) fail
// their futures with ShutdownError — no future is ever left unresolved.
//
// Parallelism note: worker-pool parallelism composes with the backend
// kernels' own parallel_for. For throughput serving with several workers,
// set ADEPT_NUM_THREADS=1 (or keep threads low) so the inter-request pool
// saturates the cores instead of each worker's kernels spawning their own
// teams — results are bit-identical either way.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/compiled_model.h"
#include "runtime/errors.h"

namespace adept::runtime {

// What submit() does when the bounded queue is at capacity.
enum class OverloadPolicy : std::uint8_t { block, reject, shed_oldest };

// "block" | "reject" | "shed_oldest" <-> enum; parse returns `def` for
// unknown names (env knobs never error).
std::string to_string(OverloadPolicy policy);
OverloadPolicy parse_overload_policy(const std::string& name,
                                     OverloadPolicy def = OverloadPolicy::block);

struct ServerConfig {
  int threads = 1;        // worker count
  int max_batch = 16;     // micro-batch ceiling per forward
  int max_wait_us = 100;  // stragglers window after the first pop
  std::size_t queue_capacity = 1024;
  OverloadPolicy policy = OverloadPolicy::block;
  // Default request deadline, measured from submit; 0 = none. Expired
  // requests fail with DeadlineExceededError instead of executing.
  std::int64_t deadline_us = 0;
  // Freeze-time knob surfaced in the serving config so deployment entry
  // points (examples/serve_ptc, bench_serve) pick it up alongside the other
  // ADEPT_SERVE_* variables: serve the int8-quantized plan instead of fp32
  // (pass FreezeOptions{.quantize_int8 = config.quantize} to freeze). The
  // Server itself is plan-agnostic — quantization is baked into the
  // CompiledModel it borrows. Per-sample activation scales keep the
  // batch-composition-independence guarantee above intact for quantized
  // plans too (asserted in tests/test_plan.cpp).
  bool quantize = false;
  // Like `quantize`, a freeze-time knob surfaced in the serving config:
  // deployment entry points pass it to FreezeOptions so the plan's steps
  // route to this execution context (ADEPT_DEVICE; threaded when unset).
  // The Server itself executes whatever device tags the plan carries —
  // each worker owns context instances for every device and installs them
  // in its workspace, so stateful future contexts are never shared across
  // workers. Serial and threaded contexts are bit-identical; this knob
  // trades kernel-internal parallelism against worker-pool parallelism
  // (device=serial + many workers is the high-throughput shape the
  // "Parallelism note" above describes, without touching the global
  // ADEPT_NUM_THREADS).
  backend::Device device = backend::default_device();

  // Reads ADEPT_SERVE_THREADS / ADEPT_SERVE_MAX_BATCH /
  // ADEPT_SERVE_MAX_WAIT_US / ADEPT_SERVE_POLICY / ADEPT_SERVE_DEADLINE_US /
  // ADEPT_SERVE_QUANT / ADEPT_DEVICE, clamping out-of-range values into the
  // supported envelope (documented in common/env.h, tested in tests/
  // test_server_robustness.cpp): threads [1, 256] (default: hardware
  // concurrency), max_batch [1, 4096], max_wait_us [0, 1000000], policy one
  // of block|reject|shed_oldest (unknown -> block), deadline_us
  // [0, 600000000] (0 = none), quantize any nonzero integer, device one of
  // serial|threaded (unknown -> threaded).
  static ServerConfig from_env();

  // The clamp from_env applies, exposed for callers building configs by
  // hand from untrusted values.
  ServerConfig clamped() const;
};

// A point-in-time view over this server's instruments in the process-wide
// obs registry (src/obs/metrics.h) — the struct shape predates the
// registry and is kept for callers; the same numbers are visible to
// obs::snapshot() under the server's metrics_prefix().
struct ServerStats {
  std::uint64_t requests = 0;   // completed requests (the goodput numerator)
  std::uint64_t batches = 0;    // forward passes executed
  std::uint64_t rejected = 0;   // admission-refused under `reject`
  std::uint64_t shed = 0;       // dropped by `shed_oldest` to admit newer work
  std::uint64_t deadline_misses = 0;  // expired before execution
  std::uint64_t reloads = 0;    // successful model swaps
  std::uint64_t model_version = 0;    // frozen_param_version of the live model
  double mean_batch_fill = 0;   // requests / batches (micro-batch fill rate)
  // Percentiles over every COMPLETED request, from the registry's
  // log-bucket latency histogram: O(1) memory for any uptime, recording is
  // one relaxed atomic op (no stats mutex anywhere on the serving path),
  // and the quantiles are within 6.25% of the exact-sort answer (the
  // bucket bound; see obs::Histogram). Rejected/expired requests never
  // enter the histogram: these are accepted-request latencies.
  double latency_p50_us = 0;    // submit -> result
  double latency_p99_us = 0;
  double latency_max_us = 0;    // top occupied bucket's edge (same bound)
};

class Server {
 public:
  // Borrow `model` (it must outlive the Server). reload()/swap_model() on a
  // borrowing server swap to an owned replacement; the borrowed original is
  // never freed.
  Server(const CompiledModel& model, ServerConfig config = ServerConfig::from_env());
  // Share ownership — the natural constructor when hot reload is in play.
  Server(std::shared_ptr<const CompiledModel> model,
         ServerConfig config = ServerConfig::from_env());
  ~Server();  // graceful shutdown
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueue one sample of input_numel() floats; the future resolves to its
  // output_numel() result row. Full-queue behavior is config().policy (see
  // the file comment); the config default deadline applies. Throws
  // std::invalid_argument on a size mismatch; failures surface through the
  // future as RejectedError / DeadlineExceededError / ShutdownError.
  std::future<std::vector<float>> submit(std::vector<float> input);
  // Same, with a per-request deadline override (microseconds from now;
  // 0 = no deadline for this request, whatever the config says).
  std::future<std::vector<float>> submit(std::vector<float> input,
                                         std::int64_t deadline_us);

  // Hot reload: load `path`, freeze it with the live model's input dims and
  // FreezeOptions, and swap it in. Runs on the calling thread; workers keep
  // serving the old model until the swap, which happens between batches —
  // zero requests are dropped and every in-flight response is computed
  // wholly by the version that picked it up. Throws (and leaves the old
  // model serving) if the checkpoint cannot be loaded/frozen or its I/O
  // shape differs from the live model's.
  void reload(const std::string& checkpoint_path);

  // The swap half of reload(), for callers that already hold a frozen
  // model. Same shape validation and atomicity.
  void swap_model(std::shared_ptr<const CompiledModel> next);

  // The model currently answering requests.
  std::shared_ptr<const CompiledModel> model() const;

  // Drain queued requests, answer them, stop the workers. Blocked and late
  // submitters fail with ShutdownError. Idempotent; the destructor calls it.
  void shutdown();

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }

  // The "serve.s<N>." instrument-name prefix of this instance in the obs
  // registry (N = construction order, process-wide), so external readers
  // (bench_serve) can find exactly this server's counters and histograms
  // in obs::snapshot() without cross-talk from other instances.
  const std::string& metrics_prefix() const { return metrics_prefix_; }

 private:
  struct Request {
    std::vector<float> input;
    std::promise<std::vector<float>> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // ::max() = none
  };

  std::future<std::vector<float>> submit_impl(
      std::vector<float> input, std::chrono::steady_clock::time_point deadline);
  void worker_loop();
  void record_completed(const std::vector<Request>& batch,
                        std::chrono::steady_clock::time_point now);
  void fail_expired(std::vector<Request>& expired);

  // I/O geometry is validated at construction and invariant across swaps
  // (swap_model enforces it), so submit can size-check without touching
  // the model slot.
  const std::int64_t input_numel_;
  const std::int64_t output_numel_;
  ServerConfig config_;

  // Telemetry: per-instance instruments under metrics_prefix_ in the
  // process-wide obs registry, resolved once here so every serving-path
  // record is a single relaxed atomic op — there is no stats mutex. Trace
  // ids name the request-lifecycle spans (queue wait, batch-form, execute,
  // respond); the disarmed cost per span site is one relaxed load.
  const std::string metrics_prefix_;
  obs::Counter& requests_total_;
  obs::Counter& batches_total_;
  obs::Counter& rejected_total_;
  obs::Counter& shed_total_;
  obs::Counter& deadline_misses_total_;
  obs::Counter& reloads_total_;
  obs::Histogram& latency_ns_;     // submit -> result, completed requests
  obs::Histogram& queue_wait_ns_;  // submit -> batch formation
  const obs::TraceId trace_request_;
  const obs::TraceId trace_queue_wait_;
  const obs::TraceId trace_batch_form_;
  const obs::TraceId trace_execute_;
  const obs::TraceId trace_respond_;
  const obs::TraceId trace_reload_;

  // The swappable model slot. Workers snapshot it once per micro-batch.
  mutable std::mutex model_mu_;
  std::shared_ptr<const CompiledModel> model_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace adept::runtime
