#include "runtime/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/binio.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/version.h"
#include "nn/layers.h"
#include "nn/onn_layers.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adept::runtime {

namespace {

constexpr char kMagic[8] = {'A', 'D', 'E', 'P', 'T', 'C', 'K', 'P'};

// Module record tags (format version 1). Append-only: new layer kinds get
// new tags, existing tags never change meaning.
enum class Tag : std::uint8_t {
  onn_linear = 1,
  onn_conv2d = 2,
  linear = 3,
  conv2d = 4,
  batchnorm2d = 5,
  relu = 6,
  maxpool2d = 7,
  avgpool2d = 8,
  flatten = 9,
};

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("checkpoint: " + msg);
}

void put_f32_array(std::string& out, const std::vector<float>& v) {
  binio::put_u64(out, v.size());
  for (float x : v) binio::put_f32(out, x);
}

// Constructor dims read from the file get a plausibility bound BEFORE any
// tensor allocation: a corrupted i64 must fail with field context, not as
// an uncontextualized bad_alloc (or a sign-converted giant resize).
constexpr std::int64_t kMaxFeatureDim = 100'000'000;
constexpr std::int64_t kMaxSpatialDim = 65536;

std::int64_t read_dim(binio::Reader& r, const std::string& what, std::int64_t lo,
                      std::int64_t hi) {
  const std::int64_t v = r.i64(what.c_str());
  if (v < lo || v > hi) {
    fail(what + " = " + std::to_string(v) + " is outside the plausible range [" +
         std::to_string(lo) + ", " + std::to_string(hi) + "] — corrupt checkpoint?");
  }
  return v;
}

// Dim PRODUCTS get the same treatment: each factor can pass read_dim while
// the implied weight allocation is still absurd, and module constructors
// must never see a size that ends in bad_alloc.
std::int64_t checked_mul(std::int64_t a, std::int64_t b, const std::string& what) {
  if (a > 0 && b > kMaxFeatureDim / a) {
    fail(what + " implies more than " + std::to_string(kMaxFeatureDim) +
         " weight elements (" + std::to_string(a) + " x " + std::to_string(b) +
         ") — corrupt checkpoint?");
  }
  return a * b;
}

// Reads a float array and checks it against the size the rebuilt
// architecture expects — a mismatch means the file belongs to a different
// architecture/topology, which deserves a clearer message than a crash.
std::vector<float> read_f32_array(binio::Reader& r, const std::string& what,
                                  std::size_t expected) {
  const std::uint64_t n = r.u64((what + " size").c_str());
  if (n != expected) {
    fail(what + " has " + std::to_string(n) + " values, the rebuilt model expects " +
         std::to_string(expected) + " — checkpoint from a different architecture?");
  }
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = r.f32(what.c_str());
  return v;
}

// ---- save ------------------------------------------------------------

// Shared-topology census: each distinct PtcTopology is stored once.
struct TopologyTable {
  std::vector<std::shared_ptr<const photonics::PtcTopology>> topos;
  std::map<const photonics::PtcTopology*, std::uint32_t> index;

  std::uint32_t intern(const std::shared_ptr<const photonics::PtcTopology>& t) {
    auto [it, inserted] = index.try_emplace(
        t.get(), static_cast<std::uint32_t>(topos.size()));
    if (inserted) topos.push_back(t);
    return it->second;
  }
};

void put_ptc_weight_config(std::string& out, nn::PtcWeight& w, TopologyTable& table,
                           const std::string& where) {
  const nn::PtcBinding& binding = w.binding();
  switch (binding.kind) {
    case nn::PtcBinding::Kind::dense:
      binio::put_u8(out, 0);
      break;
    case nn::PtcBinding::Kind::ptc:
      binio::put_u8(out, 1);
      binio::put_u32(out, static_cast<std::uint32_t>(binding.k));
      binio::put_u32(out, table.intern(binding.topology));
      break;
    case nn::PtcBinding::Kind::supermesh:
      fail(where + " is bound to a live SuperMesh; freeze the searched design "
                   "to a PtcTopology (SearchResult::topology) and rebuild with "
                   "PtcBinding::fixed before checkpointing");
  }
}

void put_ptc_weight_params(std::string& out, nn::PtcWeight& w) {
  if (w.binding().kind == nn::PtcBinding::Kind::dense) {
    put_f32_array(out, w.dense_weight().data());
    return;
  }
  binio::put_u32(out, static_cast<std::uint32_t>(w.phi_u().size()));
  for (auto& t : w.phi_u()) put_f32_array(out, t.data());
  binio::put_u32(out, static_cast<std::uint32_t>(w.phi_v().size()));
  for (auto& t : w.phi_v()) put_f32_array(out, t.data());
  put_f32_array(out, w.sigma_stack().data());
}

void serialize_module(std::string& out, nn::Module& m, TopologyTable& table,
                      std::size_t idx) {
  const std::string where = "module " + std::to_string(idx);
  if (auto* l = dynamic_cast<nn::ONNLinear*>(&m)) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::onn_linear));
    binio::put_i64(out, l->in_features());
    binio::put_i64(out, l->out_features());
    binio::put_u8(out, l->has_bias() ? 1 : 0);
    put_ptc_weight_config(out, l->weight(), table, where + " (ONNLinear)");
    put_ptc_weight_params(out, l->weight());
    if (l->has_bias()) put_f32_array(out, l->bias().data());
  } else if (auto* c = dynamic_cast<nn::ONNConv2d*>(&m)) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::onn_conv2d));
    binio::put_i64(out, c->in_channels());
    binio::put_i64(out, c->out_channels());
    binio::put_i64(out, c->kernel());
    binio::put_i64(out, c->stride());
    binio::put_i64(out, c->pad());
    binio::put_u8(out, c->has_bias() ? 1 : 0);
    put_ptc_weight_config(out, c->weight(), table, where + " (ONNConv2d)");
    put_ptc_weight_params(out, c->weight());
    if (c->has_bias()) put_f32_array(out, c->bias().data());
  } else if (auto* l = dynamic_cast<nn::Linear*>(&m)) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::linear));
    binio::put_i64(out, l->in_features());
    binio::put_i64(out, l->out_features());
    binio::put_u8(out, l->has_bias() ? 1 : 0);
    put_f32_array(out, l->weight().data());
    if (l->has_bias()) put_f32_array(out, l->bias().data());
  } else if (auto* c = dynamic_cast<nn::Conv2d*>(&m)) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::conv2d));
    binio::put_i64(out, c->in_channels());
    binio::put_i64(out, c->out_channels());
    binio::put_i64(out, c->kernel());
    binio::put_i64(out, c->stride());
    binio::put_i64(out, c->pad());
    binio::put_u8(out, c->has_bias() ? 1 : 0);
    put_f32_array(out, c->weight().data());
    if (c->has_bias()) put_f32_array(out, c->bias().data());
  } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::batchnorm2d));
    binio::put_i64(out, bn->channels());
    binio::put_f32(out, bn->momentum());
    binio::put_f32(out, bn->eps());
    put_f32_array(out, bn->gamma().data());
    put_f32_array(out, bn->beta().data());
    put_f32_array(out, bn->running_mean());
    put_f32_array(out, bn->running_var());
  } else if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::relu));
  } else if (auto* mp = dynamic_cast<nn::MaxPool2d*>(&m)) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::maxpool2d));
    binio::put_i64(out, mp->kernel());
    binio::put_i64(out, mp->stride());
  } else if (auto* ap = dynamic_cast<nn::AdaptiveAvgPool2d*>(&m)) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::avgpool2d));
    binio::put_i64(out, ap->out_h());
    binio::put_i64(out, ap->out_w());
  } else if (dynamic_cast<nn::Flatten*>(&m) != nullptr) {
    binio::put_u8(out, static_cast<std::uint8_t>(Tag::flatten));
  } else {
    fail(where + ": unsupported module type (checkpoint format v" +
         std::to_string(kCheckpointVersion) + " knows the nn/ layer set)");
  }
}

// ---- load ------------------------------------------------------------

// Overwrites `dst`'s data buffer with a stored array of the same size.
void load_tensor(binio::Reader& r, ag::Tensor& dst, const std::string& what) {
  dst.data() = read_f32_array(r, what, dst.data().size());
}

void load_ptc_weight_params(binio::Reader& r, nn::PtcWeight& w,
                            const std::string& where) {
  if (w.binding().kind == nn::PtcBinding::Kind::dense) {
    load_tensor(r, w.dense_weight(), where + " dense weight");
    return;
  }
  const std::uint32_t nu = r.u32((where + " phi_u count").c_str());
  if (nu != w.phi_u().size()) {
    fail(where + " has " + std::to_string(nu) + " U phase stacks, topology has " +
         std::to_string(w.phi_u().size()) + " U blocks");
  }
  for (std::size_t b = 0; b < w.phi_u().size(); ++b) {
    load_tensor(r, w.phi_u()[b], where + " phi_u[" + std::to_string(b) + "]");
  }
  const std::uint32_t nv = r.u32((where + " phi_v count").c_str());
  if (nv != w.phi_v().size()) {
    fail(where + " has " + std::to_string(nv) + " V phase stacks, topology has " +
         std::to_string(w.phi_v().size()) + " V blocks");
  }
  for (std::size_t b = 0; b < w.phi_v().size(); ++b) {
    load_tensor(r, w.phi_v()[b], where + " phi_v[" + std::to_string(b) + "]");
  }
  load_tensor(r, w.sigma_stack(), where + " sigma");
}

nn::PtcBinding read_binding(
    binio::Reader& r, const std::string& where,
    const std::vector<std::shared_ptr<const photonics::PtcTopology>>& topos) {
  const std::uint8_t kind = r.u8((where + " binding kind").c_str());
  if (kind == 0) return nn::PtcBinding::dense();
  if (kind != 1) {
    fail(where + ": unknown binding kind " + std::to_string(kind));
  }
  const std::uint32_t k = r.u32((where + " tile size").c_str());
  const std::uint32_t ti = r.u32((where + " topology index").c_str());
  if (ti >= topos.size()) {
    fail(where + ": topology index " + std::to_string(ti) + " out of range (file has " +
         std::to_string(topos.size()) + " topologies)");
  }
  if (static_cast<int>(k) != topos[ti]->k) {
    fail(where + ": tile size " + std::to_string(k) + " disagrees with topology K=" +
         std::to_string(topos[ti]->k));
  }
  return nn::PtcBinding::fixed(topos[ti]);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_checkpoint(nn::OnnModel& model, const photonics::Pdk* pdk) {
  if (!model.net) fail("model has no module graph");
  const std::vector<std::shared_ptr<nn::Module>> modules =
      nn::flatten_modules(model.net);

  // The topology table is interned while serializing modules, so module
  // records land in a scratch buffer first and the table is emitted ahead
  // of them in the final payload.
  TopologyTable table;
  std::string module_bytes;
  binio::put_u32(module_bytes, static_cast<std::uint32_t>(modules.size()));
  for (std::size_t i = 0; i < modules.size(); ++i) {
    serialize_module(module_bytes, *modules[i], table, i);
  }

  std::string payload;
  binio::put_u8(payload, pdk != nullptr ? 1 : 0);
  if (pdk != nullptr) pdk->serialize_binary(payload);
  binio::put_u32(payload, static_cast<std::uint32_t>(table.topos.size()));
  for (const auto& t : table.topos) t->serialize_binary(payload);
  payload += module_bytes;

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  binio::put_u32(out, kCheckpointVersion);
  binio::put_u64(out, payload.size());
  out += payload;
  binio::put_u32(out, crc32(payload));
  return out;
}

LoadedCheckpoint decode_checkpoint(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 8) {
    fail("truncated header: " + std::to_string(bytes.size()) +
         " bytes, need at least " + std::to_string(sizeof(kMagic) + 4 + 8));
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not an ADEPT checkpoint): expected \"ADEPTCKP\", got \"" +
         bytes.substr(0, sizeof(kMagic)) + "\"");
  }
  binio::Reader header(bytes, sizeof(kMagic), "checkpoint");
  const std::uint32_t version = header.u32("format version");
  if (version != kCheckpointVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (this build reads version " + std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint64_t payload_size = header.u64("payload size");
  const std::size_t payload_begin = header.offset();
  // Overflow-safe: payload_size comes straight from the (untrusted) file,
  // so never add it to anything — compare against the remaining span.
  const std::size_t after_header = bytes.size() - payload_begin;
  if (after_header < 4 || payload_size > after_header - 4) {
    fail("truncated payload: header promises " + std::to_string(payload_size) +
         " bytes + CRC, file has " + std::to_string(after_header) +
         " after the header");
  }
  if (payload_size < after_header - 4) {
    fail("trailing garbage: " + std::to_string(after_header - 4 - payload_size) +
         " bytes after the CRC trailer (file corrupt or concatenated?)");
  }
  // View, not a copy: checkpoints hold every weight of the model, so the
  // decode path must not double peak memory just to CRC/parse them.
  const std::string_view payload(bytes.data() + payload_begin,
                                 static_cast<std::size_t>(payload_size));
  binio::Reader trailer(bytes, payload_begin + static_cast<std::size_t>(payload_size),
                        "checkpoint");
  const std::uint32_t stored_crc = trailer.u32("payload CRC");
  const std::uint32_t computed_crc = crc32(payload);
  if (stored_crc != computed_crc) {
    fail("CRC mismatch (stored " + hex32(stored_crc) + ", computed " +
         hex32(computed_crc) + "): file is corrupt");
  }

  binio::Reader r(payload, 0, "checkpoint");
  LoadedCheckpoint result;
  if (r.u8("pdk flag") != 0) {
    result.pdk = photonics::Pdk::deserialize_binary(r);
  }
  const std::uint32_t n_topos = r.u32("topology count");
  // Each topology occupies >= 20 payload bytes; bound before reserving so a
  // corrupt count fails through the contextualized path, not bad_alloc.
  if (n_topos > r.remaining() / 20) {
    fail("implausible topology count " + std::to_string(n_topos) + " (only " +
         std::to_string(r.remaining()) + " payload bytes remain)");
  }
  std::vector<std::shared_ptr<const photonics::PtcTopology>> topos;
  topos.reserve(n_topos);
  for (std::uint32_t i = 0; i < n_topos; ++i) {
    topos.push_back(std::make_shared<photonics::PtcTopology>(
        photonics::PtcTopology::deserialize_binary(r)));
  }

  // Module constructors consume an Rng for their (immediately overwritten)
  // random initialization; the seed is irrelevant to the loaded result.
  adept::Rng rng(0);
  result.model.net = std::make_shared<nn::Sequential>();
  const std::uint32_t n_modules = r.u32("module count");
  for (std::uint32_t i = 0; i < n_modules; ++i) {
    const std::string where = "module " + std::to_string(i);
    const auto tag = static_cast<Tag>(r.u8((where + " tag").c_str()));
    switch (tag) {
      case Tag::onn_linear: {
        const std::int64_t in = read_dim(r, where + " in_features", 1, kMaxFeatureDim);
        const std::int64_t out = read_dim(r, where + " out_features", 1, kMaxFeatureDim);
        (void)checked_mul(in, out, where + " ONNLinear weight");
        const bool bias = r.u8((where + " bias flag").c_str()) != 0;
        nn::PtcBinding binding = read_binding(r, where + " (ONNLinear)", topos);
        auto l = std::make_shared<nn::ONNLinear>(in, out, binding, rng, bias);
        load_ptc_weight_params(r, l->weight(), where + " (ONNLinear)");
        if (bias) load_tensor(r, l->bias(), where + " bias");
        result.model.net->add(l);
        result.model.onn_layers.push_back(l.get());
        break;
      }
      case Tag::onn_conv2d: {
        const std::int64_t in_c = read_dim(r, where + " in_channels", 1, kMaxFeatureDim);
        const std::int64_t out_c = read_dim(r, where + " out_channels", 1, kMaxFeatureDim);
        const std::int64_t k = read_dim(r, where + " kernel", 1, kMaxSpatialDim);
        const std::int64_t stride = read_dim(r, where + " stride", 1, kMaxSpatialDim);
        const std::int64_t pad = read_dim(r, where + " pad", 0, kMaxSpatialDim);
        (void)checked_mul(checked_mul(in_c, k * k, where + " ONNConv2d fan-in"),
                          out_c, where + " ONNConv2d weight");
        const bool bias = r.u8((where + " bias flag").c_str()) != 0;
        nn::PtcBinding binding = read_binding(r, where + " (ONNConv2d)", topos);
        auto c = std::make_shared<nn::ONNConv2d>(in_c, out_c, k, binding, rng,
                                                 stride, pad, bias);
        load_ptc_weight_params(r, c->weight(), where + " (ONNConv2d)");
        if (bias) load_tensor(r, c->bias(), where + " bias");
        result.model.net->add(c);
        result.model.onn_layers.push_back(c.get());
        break;
      }
      case Tag::linear: {
        const std::int64_t in = read_dim(r, where + " in_features", 1, kMaxFeatureDim);
        const std::int64_t out = read_dim(r, where + " out_features", 1, kMaxFeatureDim);
        (void)checked_mul(in, out, where + " Linear weight");
        const bool bias = r.u8((where + " bias flag").c_str()) != 0;
        auto l = std::make_shared<nn::Linear>(in, out, rng, bias);
        load_tensor(r, l->weight(), where + " weight");
        if (bias) load_tensor(r, l->bias(), where + " bias");
        result.model.net->add(l);
        break;
      }
      case Tag::conv2d: {
        const std::int64_t in_c = read_dim(r, where + " in_channels", 1, kMaxFeatureDim);
        const std::int64_t out_c = read_dim(r, where + " out_channels", 1, kMaxFeatureDim);
        const std::int64_t k = read_dim(r, where + " kernel", 1, kMaxSpatialDim);
        const std::int64_t stride = read_dim(r, where + " stride", 1, kMaxSpatialDim);
        const std::int64_t pad = read_dim(r, where + " pad", 0, kMaxSpatialDim);
        (void)checked_mul(checked_mul(in_c, k * k, where + " Conv2d fan-in"), out_c,
                          where + " Conv2d weight");
        const bool bias = r.u8((where + " bias flag").c_str()) != 0;
        auto c = std::make_shared<nn::Conv2d>(in_c, out_c, k, rng, stride, pad, bias);
        load_tensor(r, c->weight(), where + " weight");
        if (bias) load_tensor(r, c->bias(), where + " bias");
        result.model.net->add(c);
        break;
      }
      case Tag::batchnorm2d: {
        const std::int64_t channels = read_dim(r, where + " channels", 1, kMaxFeatureDim);
        const float momentum = r.f32((where + " momentum").c_str());
        const float eps = r.f32((where + " eps").c_str());
        auto bn = std::make_shared<nn::BatchNorm2d>(channels, momentum, eps);
        load_tensor(r, bn->gamma(), where + " gamma");
        load_tensor(r, bn->beta(), where + " beta");
        bn->running_mean() =
            read_f32_array(r, where + " running_mean", bn->running_mean().size());
        bn->running_var() =
            read_f32_array(r, where + " running_var", bn->running_var().size());
        result.model.net->add(bn);
        break;
      }
      case Tag::relu:
        result.model.net->add(std::make_shared<nn::ReLU>());
        break;
      case Tag::maxpool2d: {
        const std::int64_t k = read_dim(r, where + " kernel", 1, kMaxSpatialDim);
        const std::int64_t stride = read_dim(r, where + " stride", 1, kMaxSpatialDim);
        result.model.net->add(std::make_shared<nn::MaxPool2d>(k, stride));
        break;
      }
      case Tag::avgpool2d: {
        const std::int64_t oh = read_dim(r, where + " out_h", 1, kMaxSpatialDim);
        const std::int64_t ow = read_dim(r, where + " out_w", 1, kMaxSpatialDim);
        result.model.net->add(std::make_shared<nn::AdaptiveAvgPool2d>(oh, ow));
        break;
      }
      case Tag::flatten:
        result.model.net->add(std::make_shared<nn::Flatten>());
        break;
      default:
        fail(where + ": unknown module tag " +
             std::to_string(static_cast<int>(tag)));
    }
  }
  if (r.remaining() != 0) {
    fail("trailing garbage: " + std::to_string(r.remaining()) +
         " unread payload bytes after the last module");
  }
  // Parameter buffers were overwritten directly; invalidate eval caches.
  adept::bump_param_version();
  return result;
}

namespace {

// Every I/O failure message carries the failing path AND the OS error
// (errno + strerror), so "I/O failure" is never the whole story.
[[noreturn]] void fail_errno(const std::string& what, const std::string& path,
                             int err) {
  fail(what + " \"" + path + "\": " + std::strerror(err) + " (errno " +
       std::to_string(err) + ")");
}

// RAII fd so every error path below closes the descriptor.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    const int f = fd;
    fd = -1;
    return f;
  }
};

// Crash-safe publish: write to a sibling temp file, fsync it, and rename
// over `path`. A crash at ANY point leaves either the previous good file or
// a stray .tmp — never a torn `path`. Failpoints cover each stage
// (checkpoint.save.{open,write,fsync,rename}); "truncate(K)" on the write
// site stops after K bytes and simulates the crash.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  Fd out;
  if (failpoint::maybe_fail("checkpoint.save.open")) errno = EACCES;
  else out.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out.fd < 0) fail_errno("cannot open temp file", tmp, errno);

  std::size_t limit = bytes.size();
  bool crash_after_write = false;
  if (const auto k = failpoint::write_truncation("checkpoint.save.write")) {
    limit = std::min<std::size_t>(limit, static_cast<std::size_t>(*k));
    crash_after_write = true;
  }
  std::size_t written = 0;
  while (written < limit) {
    const ::ssize_t n = ::write(out.fd, bytes.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::unlink(tmp.c_str());
      fail_errno("write failed on temp file", tmp, err);
    }
    written += static_cast<std::size_t>(n);
  }
  if (crash_after_write || failpoint::maybe_fail("checkpoint.save.write")) {
    // Simulated crash mid-save: the partial .tmp stays behind (as it would
    // after a real crash); `path` is untouched.
    fail("simulated crash while writing \"" + tmp + "\" (failpoint): wrote " +
         std::to_string(written) + " of " + std::to_string(bytes.size()) + " bytes");
  }
  if (failpoint::maybe_fail("checkpoint.save.fsync") ? (errno = EIO, true)
                                                     : ::fsync(out.fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail_errno("fsync failed on temp file", tmp, err);
  }
  if (::close(out.release()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail_errno("close failed on temp file", tmp, err);
  }
  if (failpoint::maybe_fail("checkpoint.save.rename") ? (errno = EXDEV, true)
                                                      : ::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail_errno("cannot rename temp file over", path, err);
  }
  // Durability of the rename itself: fsync the containing directory (best
  // effort — some filesystems refuse O_RDONLY dir fsync; the data file
  // above IS synced either way).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  Fd dirfd;
  dirfd.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd.fd >= 0) (void)::fsync(dirfd.fd);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail_errno("cannot open", path, errno);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) fail_errno("read error on", path, errno);
  // Torn-read injection: "truncate(K)" keeps only the first K bytes (as if
  // a non-atomic writer raced this read); "error"/"throw"/"stall" behave as
  // usual.
  if (const auto k = failpoint::write_truncation("checkpoint.load.read")) {
    bytes.resize(std::min<std::size_t>(bytes.size(), static_cast<std::size_t>(*k)));
  }
  if (failpoint::maybe_fail("checkpoint.load.read")) {
    fail_errno("read error on", path, EIO);
  }
  return bytes;
}

// A decode failure that could be a transiently-torn read (a non-atomic
// writer mid-flight) rather than durable corruption. save_checkpoint's
// atomic rename makes this impossible for files it wrote, but checkpoints
// also arrive from scp/NFS/CI artifacts.
bool transient_decode_error(const std::string& msg) {
  return msg.find("truncated") != std::string::npos ||
         msg.find("CRC mismatch") != std::string::npos;
}

}  // namespace

void save_checkpoint(nn::OnnModel& model, const std::string& path,
                     const photonics::Pdk* pdk) {
  static const obs::TraceId t_save = obs::intern_name("checkpoint.save");
  obs::TraceSpan span(t_save);
  obs::counter("checkpoint.saves").inc();
  const std::string bytes = encode_checkpoint(model, pdk);
  write_file_atomic(path, bytes);
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  static const obs::TraceId t_load = obs::intern_name("checkpoint.load");
  obs::TraceSpan span(t_load);
  obs::counter("checkpoint.loads").inc();
  constexpr int kAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    try {
      return decode_checkpoint(read_file(path));
    } catch (const std::runtime_error& e) {
      if (attempt >= kAttempts || !transient_decode_error(e.what())) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
    }
  }
}

}  // namespace adept::runtime
