// Freeze-time planning passes over the CompiledModel step list.
//
// CompiledModel::freeze lowers the module graph to a linear chain of
// PlanStep records (the step-list IR — see docs/compiled_model.md for the
// reference). The passes here rewrite that chain before weights are packed:
//
//   fuse_plan      BatchNorm epilogue fusion into the producing conv, and
//                  sample-block tiling of the im2col+gemm pair so conv
//                  scratch is sized to a block, not the whole batch.
//   quantize_plan  opt-in int8 execution: per-output-channel weight scales,
//                  int8 weight image, exact int32 accumulation at run time.
//   assign_slots   liveness analysis over the chain, mapping every step's
//                  output into a shared buffer-slot pool (elementwise steps
//                  run in place), instead of two whole-plan ping-pong
//                  buffers.
//   pack_plan      pack each gemm/conv weight for the active SIMD level
//                  (fp32 panels, or int8 k-pair panels when quantized).
//
// Bit-exactness contract: every fp32 transformation preserves the exact
// per-element float operation sequence of the unplanned chain, so planned
// execution is ASSERT_EQ-bit-identical to both the unplanned step list and
// the eval-mode tape (tests/test_plan.cpp). BatchNorm fusion is therefore
// *epilogue* fusion — the affine transform runs on the conv's store loop
// with the same expression the standalone step evaluates — NOT algebraic
// weight folding, which would change float accumulation. The int8 mode is
// a deliberate, opt-in accuracy trade and is exempt from the fp32 contract;
// its integer kernels are still bit-identical across SIMD levels and thread
// counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "backend/context.h"
#include "backend/kernels.h"

namespace adept::runtime {

// Planning knobs for CompiledModel::freeze.
struct FreezeOptions {
  // Run fuse_plan + liveness slot assignment. Off = the reference chain
  // (one step per kernel, two ping-pong buffers at the global high-water
  // mark) that planned execution is tested bit-exact against.
  bool optimize = true;
  // Quantize gemm/conv weights to int8 at freeze and execute them with
  // int32 accumulation + dequantize-on-store (per-sample activation
  // scales, so results stay independent of micro-batch composition).
  bool quantize_int8 = false;
  // Execution context the device-plan pass (assign_devices) routes steps
  // to. Defaults to the ADEPT_DEVICE env knob (threaded when unset — see
  // backend/context.h). Serial and threaded contexts are ASSERT_EQ
  // bit-identical, so this is a latency/throughput knob, never an accuracy
  // one.
  backend::Device device = backend::default_device();

  // ADEPT_SERVE_QUANT != 0 sets quantize_int8 (see common/env.h).
  // `device` already defaulted from ADEPT_DEVICE at construction.
  static FreezeOptions from_env();
};

// One step of the compiled chain. Per-sample geometry is frozen; `batch`
// arrives at run time. Kinds and operands:
//   linear     gemm [batch, in_feat] x weight [in_feat, out_feat]
//   conv       im2col + gemm, weight [C*k*k, out_c], NCHW in/out
//   batchnorm  standalone eval-mode BN (when not fused as an epilogue)
//   relu / maxpool / avgpool  elementwise / window kernels, no weights
struct PlanStep {
  enum class Kind : std::uint8_t {
    linear,
    conv,
    batchnorm,
    relu,
    maxpool,
    avgpool
  };
  Kind kind = Kind::relu;
  std::int64_t in_numel = 0, out_numel = 0;  // per sample
  // linear: weight [in,out]; conv: weight [C*k*k, out_c] (gemm-ready)
  std::int64_t in_feat = 0, out_feat = 0;
  std::int64_t c = 0, h = 0, w = 0, k = 0, stride = 0, pad = 0;
  std::int64_t oh = 0, ow = 0, out_c = 0;
  std::vector<float> weight;
  // Weight panels pre-packed for the active SIMD level at pack_plan time, so
  // steady-state gemms skip per-call packing (bit-identical either way;
  // gemm_packed falls back to `weight` if the dispatch level changes).
  backend::PackedGemmB packed;
  std::vector<float> bias;  // empty = no bias
  // A following ReLU folded into this step's store (max(v, 0) of the same
  // value is bit-identical to a separate relu pass, one buffer sweep
  // cheaper). Runs after the BN epilogue when both are fused.
  bool relu_after = false;
  // batchnorm (eval): y = ((x - mu) * invstd) * gamma + beta per channel.
  // Populated on standalone batchnorm steps, or on a conv step when
  // fuse_plan folded the following BN into its store loop (`bn_after`).
  std::vector<float> mu, invstd, gamma, beta;
  bool bn_after = false;
  // conv only: target im2col rows per sample-block (0 = whole batch at
  // once). fuse_plan sets this so conv scratch holds a block, not the
  // batch; row-independent kernels make any blocking bit-exact.
  std::int64_t conv_row_block = 0;

  // int8 execution (quantize_plan): weight_s8 is the [K, N] quantized
  // image, wscale[j] = absmax(column j) / 127 (0 for an all-zero column),
  // packed_s8 the active level's k-pair panels. Activations are quantized
  // per SAMPLE at run time — linear quantizes each input row, conv
  // quantizes each sample's feature map once and im2cols the bytes — so a
  // sample's result never depends on its batch mates; dequantize multiplies
  // acc by ascale[sample] * wscale[j] before the fp32 bias/BN/ReLU
  // epilogue.
  bool quantized = false;
  std::vector<std::int8_t> weight_s8;
  std::vector<float> wscale;
  backend::PackedGemmBS8 packed_s8;
  // Dequantize epilogue constants, folded once at freeze: the fp32 bias and
  // any fused BN affine collapse into y = acc * (ascale * qscale[j]) +
  // qbias[j] (then ReLU). int8 mode is exempt from the fp32 bit-exactness
  // contract, so this algebraic fold is allowed — it saves three multiplies
  // and two adds per output element on the serving hot path. Without BN,
  // qscale == wscale and qbias == bias (or 0).
  std::vector<float> qscale, qbias;

  // Buffer plan (assign_slots): which workspace slot the step reads and
  // writes. -1 = external (the caller's input for the first step, the
  // caller's output for the last). `in_place` marks elementwise steps
  // executing inside their input slot.
  int in_slot = -1;
  int out_slot = -1;
  bool in_place = false;

  // Device plan (assign_devices): the execution context this step's
  // kernels run through. A slot inherits the device of the step that
  // writes it (dump_plan_steps derives and prints this), which is where a
  // future non-host context hangs its residency decision.
  backend::Device device = backend::Device::cpu_threaded;

  // Interned span name "plan.s<i>.<kind>@<device>" (obs::TraceId), filled
  // at freeze time after the device plan settles, so CompiledModel::run's
  // per-step trace spans never build a string on the hot path. 0 = the
  // registry's "(unnamed)" entry (a step that never went through freeze).
  std::uint32_t trace_id = 0;

  // gemm operand shape: K (reduction) and N (output columns); 0 for
  // weightless kinds.
  std::int64_t gemm_k() const {
    if (kind == Kind::linear) return in_feat;
    if (kind == Kind::conv) return c * k * k;
    return 0;
  }
  std::int64_t gemm_n() const {
    if (kind == Kind::linear) return out_feat;
    if (kind == Kind::conv) return out_c;
    return 0;
  }
};

// BatchNorm epilogue fusion + conv sample-block tiling. Preserves the exact
// fp32 operation sequence per element (see header comment).
void fuse_plan(std::vector<PlanStep>& steps);

// Quantize every gemm/conv step's weights to int8 (per-output-channel
// scales). Idempotent; weightless steps are untouched.
void quantize_plan(std::vector<PlanStep>& steps);

// Liveness analysis over the linear chain. optimize = true assigns steps
// into a minimal slot pool sized per slot (elementwise steps in place);
// optimize = false reproduces the reference two-slot ping-pong at
// `max_interm` floats each. Returns per-slot per-sample float counts and
// fills in_slot / out_slot / in_place on every step.
std::vector<std::int64_t> assign_slots(std::vector<PlanStep>& steps,
                                       bool optimize, std::int64_t max_interm);

// Device-plan pass: tag every step with the execution context it will run
// through. The policy today is uniform — every step gets `device` — but
// CompiledModel::run resolves the context per STEP, so a heterogeneous
// assignment (e.g. keep tiny epilogue steps on the serial context, or land
// gemm steps on an accelerator context) executes correctly the moment a
// policy writes one. Tags are perf routing only: serial and threaded CPU
// contexts are bit-identical by the kernel layer's determinism contract.
void assign_devices(std::vector<PlanStep>& steps, backend::Device device);

// Pack every gemm/conv weight for the active SIMD level (fp32 panels, or
// int8 panels for quantized steps). Bumps weight_pack_count() once per
// packed weight — the regression hook for the redundant-repack fix.
void pack_plan(std::vector<PlanStep>& steps);

// Process-wide count of weight packs performed by pack_plan (monotonic).
// CompiledModel::refresh must NOT advance it when param_version is
// unchanged (tests/test_plan.cpp).
std::uint64_t weight_pack_count();

// Lowercase kind name ("linear", "conv", ...), shared by dump_plan_steps
// and the freeze-time trace-span interning.
const char* plan_kind_name(PlanStep::Kind k);

// Human-readable plan listing: one line per step (kind, shapes, fused
// epilogues, quantization, slot assignment) plus the slot pool summary.
void dump_plan_steps(const std::vector<PlanStep>& steps,
                     const std::vector<std::int64_t>& slot_sizes,
                     std::ostream& os);

}  // namespace adept::runtime
