// Transport seam under the collective layer (comm/communicator.h).
//
// A Transport owns the rank identity and the byte movement between ranks;
// the Communicator on top of it owns the *arithmetic* (chunking, reduction
// order). The split is what lets a socket or MPI transport slot in later
// without touching the bit-exactness guarantees: every reduction is computed
// from the bytes a window exposes, never from "whoever got there first"
// accumulation (shape per caffe2's data_parallel_model and Hetu's
// Communication.cc, as distilled in ROADMAP.md).
//
// The model is a one-sided publish/read window:
//
//   publish(data, bytes)   make `bytes` at `data` visible to every peer;
//                          returns once ALL ranks have published (barrier)
//   peer_window(r, off, len, scratch)
//                          pointer to `len` bytes at offset `off` of rank
//                          r's published window. Transports that must copy
//                          (sockets) stage into `scratch` (>= len bytes) and
//                          return it; the in-process transport returns the
//                          peer's buffer directly, so callers must treat the
//                          result as read-only and not cache it past
//                          release().
//   release()              barrier; afterwards no peer reads the window and
//                          the publisher may reuse the buffer
//   barrier()              plain synchronization point
//   abort()                poison every barrier: all ranks blocked in (or
//                          later entering) one unblock by throwing
//                          AbortedError, so a rank that dies mid-collective
//                          cannot deadlock the world
//
// The in-process implementation (InProcessGroup) backs N rank threads in one
// address space: a shared pointer-slot table plus a generation-counted,
// poisonable barrier.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace adept::comm {

// Thrown out of any barrier-shaped call after abort(): the collective cannot
// complete because a peer gave up. Derives from std::runtime_error so generic
// catch sites treat it like any other collective failure.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("comm: collective aborted by a peer rank") {}
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual int rank() const = 0;
  virtual int world_size() const = 0;
  virtual void publish(const void* data, std::size_t bytes) = 0;
  virtual const void* peer_window(int peer, std::size_t offset, std::size_t len,
                                  void* scratch) = 0;
  virtual void release() = 0;
  virtual void barrier() = 0;
  virtual void abort() = 0;
};

// Shared state for `world_size` in-process ranks. Create one group, then hand
// each rank thread its own transport(r); the group must outlive them.
class InProcessGroup {
 public:
  explicit InProcessGroup(int world_size);

  int world_size() const { return world_; }
  std::unique_ptr<Transport> transport(int rank);

  // Poison the shared barrier (see Transport::abort).
  void abort();

 private:
  friend class InProcessTransport;

  struct Window {
    const void* data = nullptr;
    std::size_t bytes = 0;
  };

  void barrier_wait();

  int world_;
  std::vector<Window> windows_;
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
};

}  // namespace adept::comm
