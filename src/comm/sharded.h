// Micro-shard decomposition: why N-rank gradients are bit-identical to
// 1-rank.
//
// Floating-point addition is not associative, so the classic data-parallel
// recipe — each of R ranks runs one backward over batch/R samples, then the
// partial gradients are summed — cannot match a single full-batch backward
// bit for bit, at any reduction order. This layer removes R from the
// numerics entirely:
//
//   1. Every global step's items (batch samples, fit tiles) are split into
//      S = shard_count(items) micro-shards, where S depends ONLY on the item
//      count — never on the rank count. Shard boundaries (shard_range) are
//      size-only, like the backend kernels' chunk boundaries.
//   2. Each shard's gradient comes from its own zero_grad/backward pass, so
//      a shard's contribution is a pure function of its items.
//   3. Shard gradients are combined with a fixed pairwise balanced tree over
//      shard indices (ShardedGradReducer's binary-counter merge stack):
//        stride = 1, 2, 4:   g[s] += g[s + stride]
//   4. Ranks own contiguous blocks of shards (shard_owner). Because both S
//      and the world size are powers of two, every rank's local merge is a
//      complete aligned subtree of that fixed tree, and the rank-level
//      allreduce (comm/communicator.h) applies the identical tree over rank
//      indices — so the global combine order is THE SAME tree for every
//      world size in {1, 2, 4, 8}.
//
// A rank that owns no shards (more ranks than shards) contributes an
// all-zero partial; x + 0.0f == x for every finite and non-finite x except
// that -0 + 0 flushes to +0 — a value-equal result, which is what the
// ASSERT_EQ parity tests compare.
//
// The reducer also fuses parameters into flat bucket buffers (one allreduce
// per bucket instead of per tensor) and carries a double-precision scalar
// block (per-shard loss terms) through the same fixed tree, so the loss a
// trace reports is as deterministic as the gradients.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/tensor.h"
#include "comm/communicator.h"

namespace adept::comm {

// Cap on micro-shards per step (= the deepest fixed shard tree). Also the
// largest rank count that can receive a non-empty shard block.
inline constexpr int kMaxShards = 8;

// Number of micro-shards for `items` work items: the largest power of two
// <= min(items, kMaxShards); 0 when there is no work. A pure function of the
// item count, which is what keeps rank counts out of the numerics.
int shard_count(std::int64_t items);

struct ShardRange {
  std::int64_t lo, hi;
};

// Size-only contiguous split of [0, items) into `shards` ranges.
ShardRange shard_range(std::int64_t items, int shard, int shards);

// The rank that computes shard `s` in a `world`-rank run. With shards and
// world both powers of two this assigns contiguous, subtree-aligned blocks
// (world > shards leaves high ranks empty-handed).
int shard_owner(int shard, int shards, int world);

// Accumulates per-shard gradients of a fixed parameter list in the fixed
// shard-tree order, then allreduces the result across ranks. Usage per step:
//
//   ShardedGradReducer reducer(opt.params(), /*scalar_slots=*/1);
//   for (each owned shard s, ascending) {
//     zero all grads; build shard loss; backward;
//     reducer.add_shard({loss_value});
//   }
//   // typically from Optimizer's pre-step hook:
//   auto scalars = reducer.finish(comm, &replicated_grads);
//
// finish() writes the final gradients into the parameters' .grad buffers
// (every parameter gets a grad, zero if nothing touched it) and returns the
// tree-reduced scalar block. `replicated` — an optional per-parameter flat
// addend that is identical on every rank (penalty gradients computed
// redundantly per rank) — is added elementwise AFTER the cross-rank reduce,
// so it is counted once, not world_size times.
class ShardedGradReducer {
 public:
  ShardedGradReducer(std::vector<ag::Tensor> params, int scalar_slots);

  void add_shard(const std::vector<double>& scalars);
  std::vector<double> finish(
      Communicator& comm,
      const std::vector<std::vector<float>>* replicated = nullptr);

  // Flat copies of the params' current .grad buffers (zeros when absent) —
  // the shape finish() expects for `replicated`.
  static std::vector<std::vector<float>> harvest_grads(
      std::vector<ag::Tensor>& params);

 private:
  struct Snapshot {
    int count = 0;  // number of shards merged into this node
    std::vector<std::vector<float>> buckets;
    std::vector<double> scalars;
  };

  Snapshot make_snapshot(const std::vector<double>& scalars, bool harvest = true);
  static void merge(Snapshot& left, const Snapshot& right);

  std::vector<ag::Tensor> params_;
  int scalar_slots_;
  std::vector<std::size_t> bucket_of_;     // param index -> bucket index
  std::vector<std::size_t> offset_of_;     // param index -> offset in bucket
  std::vector<std::size_t> bucket_elems_;  // bucket index -> element count
  std::vector<Snapshot> stack_;            // binary-counter merge stack
};

}  // namespace adept::comm
