#include "comm/transport.h"

#include <cstring>

namespace adept::comm {

// Not in an anonymous namespace: InProcessGroup's friend declaration names
// adept::comm::InProcessTransport.
class InProcessTransport : public Transport {
 public:
  InProcessTransport(InProcessGroup* group, int rank)
      : group_(group), rank_(rank) {}

  int rank() const override { return rank_; }
  int world_size() const override { return group_->world_size(); }

  void publish(const void* data, std::size_t bytes) override {
    group_->windows_[static_cast<std::size_t>(rank_)] = {data, bytes};
    // Publication is complete only once every rank has written its slot:
    // the barrier doubles as the release/acquire edge that makes the slot
    // table (and the published payloads) visible across rank threads.
    group_->barrier_wait();
  }

  const void* peer_window(int peer, std::size_t offset, std::size_t len,
                          void* scratch) override {
    (void)scratch;  // same address space: expose the peer's buffer directly
    const auto& w = group_->windows_[static_cast<std::size_t>(peer)];
    if (w.data == nullptr || offset + len > w.bytes) {
      throw std::runtime_error("comm: peer_window read outside published window");
    }
    return static_cast<const unsigned char*>(w.data) + offset;
  }

  void release() override {
    // All ranks stop reading before any publisher reuses its buffer.
    group_->barrier_wait();
    group_->windows_[static_cast<std::size_t>(rank_)] = {};
  }

  void barrier() override { group_->barrier_wait(); }

  void abort() override { group_->abort(); }

 private:
  InProcessGroup* group_;
  int rank_;
};

InProcessGroup::InProcessGroup(int world_size) : world_(world_size) {
  if (world_ < 1) throw std::invalid_argument("InProcessGroup: world_size < 1");
  windows_.resize(static_cast<std::size_t>(world_));
}

std::unique_ptr<Transport> InProcessGroup::transport(int rank) {
  if (rank < 0 || rank >= world_) {
    throw std::invalid_argument("InProcessGroup: rank out of range");
  }
  return std::make_unique<InProcessTransport>(this, rank);
}

void InProcessGroup::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_ = true;
  cv_.notify_all();
}

void InProcessGroup::barrier_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) throw AbortedError();
  if (++arrived_ == world_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t gen = generation_;
  cv_.wait(lock, [&] { return generation_ != gen || poisoned_; });
  if (generation_ == gen && poisoned_) throw AbortedError();
}

}  // namespace adept::comm
