#include "comm/communicator.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "backend/parallel.h"
#include "common/env.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adept::comm {

namespace {

// Elements per owner-reduced chunk. Size-only: boundaries are a pure
// function of n, so the reduction order never depends on the world's thread
// schedule. 4096 floats = 16 KiB keeps a chunk inside L1 while amortizing
// the two barriers per collective over plenty of arithmetic.
constexpr std::int64_t kChunkElems = 4096;

// Fixed pairwise reduction tree over rank indices for one element. `w` is a
// power of two <= kMaxWorld (enforced at world construction), but the loop
// is correct for any w: ranks with no partner at a stride pass through.
template <typename T>
inline T reduce_tree(T (&v)[kMaxWorld], int w) {
  for (int stride = 1; stride < w; stride *= 2) {
    for (int r = 0; r + stride < w; r += 2 * stride) {
      v[r] += v[r + stride];
    }
  }
  return v[0];
}

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

TreeCommunicator::TreeCommunicator(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {
  if (transport_->world_size() > kMaxWorld) {
    throw std::invalid_argument("TreeCommunicator: world_size exceeds kMaxWorld");
  }
}

template <typename T>
void TreeCommunicator::allreduce_impl(T* data, std::int64_t n) {
  failpoint::maybe_fail("comm.allreduce");
  // Collective telemetry, every rank: one span per call (each rank's
  // records land in its own thread ring, so per-rank skew is visible in
  // the trace) plus call/byte counters. Instruments resolve once; the
  // steady-state cost is two relaxed fetch_adds and one relaxed load.
  static obs::Counter& calls = obs::counter("comm.allreduce.calls");
  static obs::Counter& bytes_moved = obs::counter("comm.allreduce.bytes");
  static const obs::TraceId t_span = obs::intern_name("comm.allreduce");
  calls.inc();
  if (n > 0) bytes_moved.inc(static_cast<std::uint64_t>(n) * sizeof(T));
  obs::TraceSpan span(t_span);
  const int w = world_size();
  if (w == 1 || n <= 0) return;
  const int me = rank();
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
  reduced_.resize(bytes);
  scratch_.resize(std::min<std::size_t>(bytes, kChunkElems * sizeof(T)));
  T* red = reinterpret_cast<T*>(reduced_.data());

  // Phase 1 (reduce-scatter): chunk c is reduced by rank c % w, reading every
  // rank's published source buffer. The per-element order is the fixed rank
  // tree regardless of which rank owns the chunk.
  transport_->publish(data, bytes);
  const std::int64_t chunks = (n + kChunkElems - 1) / kChunkElems;
  for (std::int64_t c = 0; c < chunks; ++c) {
    if (c % w != me) continue;
    const std::int64_t lo = c * kChunkElems;
    const std::int64_t hi = std::min(n, lo + kChunkElems);
    const T* src[kMaxWorld];
    for (int r = 0; r < w; ++r) {
      src[r] = (r == me)
                   ? data + lo
                   : static_cast<const T*>(transport_->peer_window(
                         r, static_cast<std::size_t>(lo) * sizeof(T),
                         static_cast<std::size_t>(hi - lo) * sizeof(T),
                         scratch_.data())) ;
    }
    for (std::int64_t i = 0; i < hi - lo; ++i) {
      T v[kMaxWorld] = {};
      for (int r = 0; r < w; ++r) v[r] = src[r][i];
      red[lo + i] = reduce_tree(v, w);
    }
  }
  transport_->release();

  // Phase 2 (allgather of reduced chunks): every rank copies each chunk from
  // its owner, so all ranks end with byte-identical buffers.
  transport_->publish(red, bytes);
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = c * kChunkElems;
    const std::int64_t hi = std::min(n, lo + kChunkElems);
    const int owner = static_cast<int>(c % w);
    const std::size_t len = static_cast<std::size_t>(hi - lo) * sizeof(T);
    if (owner == me) {
      std::memcpy(data + lo, red + lo, len);
    } else {
      const void* src = transport_->peer_window(
          owner, static_cast<std::size_t>(lo) * sizeof(T), len, scratch_.data());
      std::memcpy(data + lo, src, len);
    }
  }
  transport_->release();
}

template <typename T>
void TreeCommunicator::broadcast_impl(T* data, std::int64_t n, int root) {
  static obs::Counter& calls = obs::counter("comm.broadcast.calls");
  static obs::Counter& bytes_moved = obs::counter("comm.broadcast.bytes");
  static const obs::TraceId t_span = obs::intern_name("comm.broadcast");
  calls.inc();
  if (n > 0) bytes_moved.inc(static_cast<std::uint64_t>(n) * sizeof(T));
  obs::TraceSpan span(t_span);
  const int w = world_size();
  if (w == 1 || n <= 0) return;
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
  scratch_.resize(bytes);
  transport_->publish(data, bytes);
  if (rank() != root) {
    const void* src = transport_->peer_window(root, 0, bytes, scratch_.data());
    std::memcpy(data, src, bytes);
  }
  transport_->release();
}

template <typename T>
void TreeCommunicator::allgather_impl(const T* in, std::int64_t n, T* out) {
  static obs::Counter& calls = obs::counter("comm.allgather.calls");
  static obs::Counter& bytes_moved = obs::counter("comm.allgather.bytes");
  static const obs::TraceId t_span = obs::intern_name("comm.allgather");
  calls.inc();
  if (n > 0) bytes_moved.inc(static_cast<std::uint64_t>(n) * sizeof(T));
  obs::TraceSpan span(t_span);
  const int w = world_size();
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
  if (w == 1) {
    if (n > 0) std::memmove(out, in, bytes);
    return;
  }
  if (n <= 0) return;
  scratch_.resize(bytes);
  transport_->publish(in, bytes);
  for (int r = 0; r < w; ++r) {
    if (r == rank()) {
      std::memcpy(out + static_cast<std::size_t>(r) * n, in, bytes);
    } else {
      const void* src = transport_->peer_window(r, 0, bytes, scratch_.data());
      std::memcpy(out + static_cast<std::size_t>(r) * n, src, bytes);
    }
  }
  transport_->release();
}

void TreeCommunicator::allreduce_sum(float* data, std::int64_t n) {
  allreduce_impl(data, n);
}
void TreeCommunicator::allreduce_sum(double* data, std::int64_t n) {
  allreduce_impl(data, n);
}
void TreeCommunicator::broadcast(float* data, std::int64_t n, int root) {
  broadcast_impl(data, n, root);
}
void TreeCommunicator::broadcast(double* data, std::int64_t n, int root) {
  broadcast_impl(data, n, root);
}
void TreeCommunicator::allgather(const float* in, std::int64_t n, float* out) {
  allgather_impl(in, n, out);
}
void TreeCommunicator::allgather(const double* in, std::int64_t n, double* out) {
  allgather_impl(in, n, out);
}

int max_world_size() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, kMaxWorld);
}

int resolve_ranks(int requested) {
  int r;
  if (requested > 0) {
    r = std::min(requested, kMaxWorld);
  } else {
    r = env_int("ADEPT_RANKS", 1);
    r = std::clamp(r, 1, max_world_size());
  }
  return floor_pow2(r);
}

void run_ranks(int world, const std::function<void(Communicator&)>& fn) {
  if (world < 1 || world > kMaxWorld) {
    throw std::invalid_argument("run_ranks: world out of [1, kMaxWorld]");
  }
  InProcessGroup group(world);
  if (world == 1) {
    TreeCommunicator comm(group.transport(0));
    fn(comm);
    return;
  }
  // Budget resolved on the caller's thread (it sees any enclosing scope),
  // then applied per rank so ranks x kernel threads <= num_threads().
  const int budget = std::max(1, backend::num_threads() / world);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  auto body = [&](int r) {
    backend::LocalThreadScope scope(budget);
    try {
      TreeCommunicator comm(group.transport(r));
      fn(comm);
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
      group.abort();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world - 1));
  for (int r = 1; r < world; ++r) threads.emplace_back(body, r);
  body(0);
  for (auto& t : threads) t.join();
  // Prefer the root cause over the AbortedError cascades it triggered.
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const AbortedError&) {
      continue;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace adept::comm
