// Rank collectives for data-parallel search and training.
//
// Communicator is the arithmetic layer over comm/transport.h: it owns the
// chunking and — critically — the reduction order. allreduce_sum computes
// every output element with a fixed pairwise tree over rank indices
//
//   stride = 1, 2, 4, ...:   v[r] += v[r + stride]
//
// evaluated serially per element by exactly one owner rank. Chunk boundaries
// depend only on the buffer size (never on thread counts or arrival order),
// and every rank copies the same owner-reduced bytes, so:
//   * all ranks leave an allreduce with bit-identical buffers, and
//   * the result is a pure function of the per-rank inputs — re-running the
//     collective on any machine, at any ADEPT_NUM_THREADS, gives the same
//     bits. This is the same size-only-chunking discipline the backend
//     kernels use (backend/parallel.h), lifted one level up.
//
// World sizes are powers of two up to kMaxWorld, which keeps rank subtrees
// aligned with the micro-shard tree in comm/sharded.h (see that header for
// why N-rank gradients then match 1-rank bit for bit).
//
// run_ranks() is the in-process entry point: it spawns `world` rank threads
// (rank 0 runs on the caller's thread), gives each a per-rank kernel thread
// budget via backend::LocalThreadScope so ranks x kernel threads never
// oversubscribes the machine, and turns a throwing rank into a world-wide
// abort instead of a deadlock (peers blocked in a collective unblock with
// AbortedError; the original exception is rethrown to the caller).
//
// Failpoints: every allreduce evaluates the "comm.allreduce" site, so tests
// and operators can inject a mid-collective death (see common/failpoint.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/transport.h"

namespace adept::comm {

// Hard cap on the in-process world size; also the widest rank tree the fixed
// reduction order supports.
inline constexpr int kMaxWorld = 8;

class Communicator {
 public:
  virtual ~Communicator() = default;
  virtual int rank() const = 0;
  virtual int world_size() const = 0;
  // In-place elementwise sum across ranks; all ranks end with identical bits.
  virtual void allreduce_sum(float* data, std::int64_t n) = 0;
  virtual void allreduce_sum(double* data, std::int64_t n) = 0;
  // Replicate root's buffer to every rank.
  virtual void broadcast(float* data, std::int64_t n, int root) = 0;
  virtual void broadcast(double* data, std::int64_t n, int root) = 0;
  // Concatenate each rank's n elements into out[world * n], rank-major.
  virtual void allgather(const float* in, std::int64_t n, float* out) = 0;
  virtual void allgather(const double* in, std::int64_t n, double* out) = 0;
  virtual void barrier() = 0;
};

// The chunked-tree implementation over any Transport.
class TreeCommunicator : public Communicator {
 public:
  explicit TreeCommunicator(std::unique_ptr<Transport> transport);

  int rank() const override { return transport_->rank(); }
  int world_size() const override { return transport_->world_size(); }
  void allreduce_sum(float* data, std::int64_t n) override;
  void allreduce_sum(double* data, std::int64_t n) override;
  void broadcast(float* data, std::int64_t n, int root) override;
  void broadcast(double* data, std::int64_t n, int root) override;
  void allgather(const float* in, std::int64_t n, float* out) override;
  void allgather(const double* in, std::int64_t n, double* out) override;
  void barrier() override { transport_->barrier(); }

  Transport& transport() { return *transport_; }

 private:
  template <typename T>
  void allreduce_impl(T* data, std::int64_t n);
  template <typename T>
  void broadcast_impl(T* data, std::int64_t n, int root);
  template <typename T>
  void allgather_impl(const T* in, std::int64_t n, T* out);

  std::unique_ptr<Transport> transport_;
  std::vector<unsigned char> reduced_;  // owner-reduced chunks, full length
  std::vector<unsigned char> scratch_;  // staging for copying transports
};

// Largest world the environment-driven knob may resolve to on this machine:
// hardware concurrency clamped to [1, kMaxWorld].
int max_world_size();

// Resolve a rank-count request to an effective world size.
//   requested > 0   explicit programmatic request: clamped to [1, kMaxWorld]
//                   (tests and benches may oversubscribe small machines —
//                   ranks beyond the core count timeslice; the per-rank
//                   kernel budget in run_ranks keeps total threads bounded)
//   requested <= 0  read the ADEPT_RANKS environment knob: clamped to
//                   [1, max_world_size()]; unset, unparsable, or
//                   non-positive values fall back to 1
// Either way the result is rounded DOWN to a power of two so rank subtrees
// stay aligned with the fixed reduction tree (3 -> 2, 5..7 -> 4).
int resolve_ranks(int requested = 0);

// Run fn(comm) on `world` in-process rank threads and wait for all of them.
// Rank 0 executes on the calling thread. Each rank runs under a
// LocalThreadScope of max(1, backend::num_threads() / world) kernel threads.
// If any rank throws, the group is aborted (peers unblock with AbortedError)
// and the lowest-rank non-abort exception is rethrown after the join.
void run_ranks(int world, const std::function<void(Communicator&)>& fn);

}  // namespace adept::comm
