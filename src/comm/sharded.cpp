#include "comm/sharded.h"

#include <algorithm>
#include <cstring>

namespace adept::comm {

namespace {

// One fused allreduce buffer per this many elements (256 KiB of floats):
// large enough to amortize the two barriers per collective, small enough
// that the owner-chunk pass stays cache-friendly.
constexpr std::size_t kBucketElems = 1u << 16;

}  // namespace

int shard_count(std::int64_t items) {
  if (items <= 0) return 0;
  const std::int64_t cap = std::min<std::int64_t>(items, kMaxShards);
  int p = 1;
  while (p * 2 <= cap) p *= 2;
  return p;
}

ShardRange shard_range(std::int64_t items, int shard, int shards) {
  return {items * shard / shards, items * (shard + 1) / shards};
}

int shard_owner(int shard, int shards, int world) {
  return shard * world / shards;
}

ShardedGradReducer::ShardedGradReducer(std::vector<ag::Tensor> params,
                                       int scalar_slots)
    : params_(std::move(params)), scalar_slots_(scalar_slots) {
  std::size_t bucket = 0, fill = 0;
  for (const auto& p : params_) {
    const std::size_t n = static_cast<std::size_t>(p.numel());
    if (fill > 0 && fill + n > kBucketElems) {
      ++bucket;
      fill = 0;
    }
    bucket_of_.push_back(bucket);
    offset_of_.push_back(fill);
    fill += n;
    if (bucket_elems_.size() <= bucket) bucket_elems_.resize(bucket + 1, 0);
    bucket_elems_[bucket] = fill;
  }
}

ShardedGradReducer::Snapshot ShardedGradReducer::make_snapshot(
    const std::vector<double>& scalars, bool harvest) {
  Snapshot s;
  s.count = 1;
  s.buckets.resize(bucket_elems_.size());
  for (std::size_t b = 0; b < bucket_elems_.size(); ++b) {
    s.buckets[b].assign(bucket_elems_[b], 0.0f);
  }
  s.scalars.assign(static_cast<std::size_t>(scalar_slots_), 0.0);
  for (std::size_t k = 0; k < scalars.size() && k < s.scalars.size(); ++k) {
    s.scalars[k] = scalars[k];
  }
  if (!harvest) return s;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const auto& g = p.grad();
    std::memcpy(s.buckets[bucket_of_[i]].data() + offset_of_[i], g.data(),
                g.size() * sizeof(float));
  }
  return s;
}

void ShardedGradReducer::merge(Snapshot& left, const Snapshot& right) {
  for (std::size_t b = 0; b < left.buckets.size(); ++b) {
    float* l = left.buckets[b].data();
    const float* r = right.buckets[b].data();
    const std::size_t n = left.buckets[b].size();
    for (std::size_t i = 0; i < n; ++i) l[i] += r[i];
  }
  for (std::size_t k = 0; k < left.scalars.size(); ++k) {
    left.scalars[k] += right.scalars[k];
  }
  left.count += right.count;
}

void ShardedGradReducer::add_shard(const std::vector<double>& scalars) {
  stack_.push_back(make_snapshot(scalars));
  // Binary-counter merge: combining equal-sized neighbors realizes the fixed
  // balanced tree over ascending shard indices incrementally.
  while (stack_.size() >= 2 &&
         stack_[stack_.size() - 2].count == stack_.back().count) {
    merge(stack_[stack_.size() - 2], stack_.back());
    stack_.pop_back();
  }
}

std::vector<double> ShardedGradReducer::finish(
    Communicator& comm, const std::vector<std::vector<float>>* replicated) {
  // Collapse the merge stack right-to-left (later shards fold into earlier
  // ones, completing the tree); a rank that owned no shards reduces zeros.
  while (stack_.size() >= 2) {
    merge(stack_[stack_.size() - 2], stack_.back());
    stack_.pop_back();
  }
  Snapshot total = stack_.empty() ? make_snapshot({}, /*harvest=*/false)
                                  : std::move(stack_.back());
  stack_.clear();

  for (auto& bucket : total.buckets) {
    comm.allreduce_sum(bucket.data(), static_cast<std::int64_t>(bucket.size()));
  }
  comm.allreduce_sum(total.scalars.data(),
                     static_cast<std::int64_t>(total.scalars.size()));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& g = p.grad();  // allocates zero-filled on first touch
    const float* src = total.buckets[bucket_of_[i]].data() + offset_of_[i];
    if (replicated != nullptr && i < replicated->size() &&
        !(*replicated)[i].empty()) {
      const float* add = (*replicated)[i].data();
      for (std::size_t j = 0; j < g.size(); ++j) g[j] = src[j] + add[j];
    } else {
      std::memcpy(g.data(), src, g.size() * sizeof(float));
    }
  }
  return total.scalars;
}

std::vector<std::vector<float>> ShardedGradReducer::harvest_grads(
    std::vector<ag::Tensor>& params) {
  std::vector<std::vector<float>> out;
  out.reserve(params.size());
  for (auto& p : params) {
    if (p.has_grad()) {
      out.push_back(p.grad());
    } else {
      out.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    }
  }
  return out;
}

}  // namespace adept::comm
