#include "optim/optimizer.h"

#include <cmath>

#include "common/version.h"

namespace adept::optim {

Optimizer::Optimizer(std::vector<ag::Tensor> params, double lr)
    : params_(std::move(params)), lr_(lr) {}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void Optimizer::step() {
  if (pre_step_hook_) pre_step_hook_();
  apply_step();
  adept::bump_param_version();
}

Sgd::Sgd(std::vector<ag::Tensor> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Sgd::apply_step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    auto& grad = p.grad();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < data.size(); ++j) {
      float g = grad[j] + static_cast<float>(weight_decay_) * data[j];
      vel[j] = static_cast<float>(momentum_) * vel[j] + g;
      data[j] -= static_cast<float>(lr_) * vel[j];
    }
  }
}

Adam::Adam(std::vector<ag::Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::apply_step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    auto& grad = p.grad();
    for (std::size_t j = 0; j < data.size(); ++j) {
      const float g = grad[j] + static_cast<float>(weight_decay_) * data[j];
      m_[i][j] = static_cast<float>(beta1_) * m_[i][j] +
                 static_cast<float>(1.0 - beta1_) * g;
      v_[i][j] = static_cast<float>(beta2_) * v_[i][j] +
                 static_cast<float>(1.0 - beta2_) * g * g;
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      data[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace adept::optim
