// Learning-rate and temperature schedules used by the paper's training
// recipe: cosine-annealed lr, exponentially decayed Gumbel temperature
// (tau: 5 -> 0.5 over training).
#pragma once

#include <cstdint>

namespace adept::optim {

// Cosine annealing from base_lr to min_lr over total_steps.
class CosineLr {
 public:
  CosineLr(double base_lr, std::int64_t total_steps, double min_lr = 0.0);
  double at(std::int64_t step) const;

 private:
  double base_lr_;
  double min_lr_;
  std::int64_t total_steps_;
};

// Exponential interpolation start -> end over total_steps.
class ExponentialDecay {
 public:
  ExponentialDecay(double start, double end, std::int64_t total_steps);
  double at(std::int64_t step) const;

 private:
  double start_;
  double end_;
  std::int64_t total_steps_;
};

}  // namespace adept::optim
