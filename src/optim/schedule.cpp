#include "optim/schedule.h"

#include <algorithm>
#include <cmath>

namespace adept::optim {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

CosineLr::CosineLr(double base_lr, std::int64_t total_steps, double min_lr)
    : base_lr_(base_lr), min_lr_(min_lr), total_steps_(std::max<std::int64_t>(total_steps, 1)) {}

double CosineLr::at(std::int64_t step) const {
  const double progress =
      std::clamp(static_cast<double>(step) / static_cast<double>(total_steps_), 0.0, 1.0);
  return min_lr_ + 0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(kPi * progress));
}

ExponentialDecay::ExponentialDecay(double start, double end, std::int64_t total_steps)
    : start_(start), end_(end), total_steps_(std::max<std::int64_t>(total_steps, 1)) {}

double ExponentialDecay::at(std::int64_t step) const {
  const double progress =
      std::clamp(static_cast<double>(step) / static_cast<double>(total_steps_), 0.0, 1.0);
  return start_ * std::pow(end_ / start_, progress);
}

}  // namespace adept::optim
