// Gradient-based optimizers over leaf autograd tensors.
//
// Parameters are updated in place on their data buffers; graphs are built
// fresh each step so leaves stay leaves. Matches the paper's training setup
// (Adam with per-group weight decay).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "autograd/tensor.h"

namespace adept::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Tensor> params, double lr);
  virtual ~Optimizer() = default;

  void zero_grad();
  // Runs the pre-step hook (if set), applies the update rule, then bumps
  // adept::param_version() so materialized eval-weight caches know the
  // parameters moved.
  void step();

  // Hook invoked by step() before the update rule reads the gradients. The
  // data-parallel paths (src/comm) install the cross-rank gradient allreduce
  // here, so every caller's existing zero_grad/backward/step sequence picks
  // up the reduction without restructuring. Empty function = no hook.
  void set_pre_step_hook(std::function<void()> hook) {
    pre_step_hook_ = std::move(hook);
  }

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }
  const std::vector<ag::Tensor>& params() const { return params_; }

 protected:
  // The update rule itself (in-place on the parameter data buffers).
  virtual void apply_step() = 0;

  std::vector<ag::Tensor> params_;
  double lr_;

 private:
  std::function<void()> pre_step_hook_;
};

// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Tensor> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

 protected:
  void apply_step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

// Adam (Kingma & Ba) with L2 weight decay added to the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

 protected:
  void apply_step() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace adept::optim
