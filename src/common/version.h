// Global parameter/noise version counter for eval-time caches.
//
// Materialized-weight caches (see nn::PtcWeight) must know when any
// trainable parameter or noise stream may have changed. Instead of hashing
// tensors, every mutation site bumps one process-wide monotonic counter:
// optimizer steps, SuperMesh::begin_step / legalize_permutations, and the
// phase-noise setters. A cache stores the counter value it was built at and
// rebuilds when the current value differs.
//
// Code that mutates parameter data() buffers directly (tests, custom
// loops) must call bump_param_version() itself before relying on cached
// evaluation paths.
#pragma once

#include <cstdint>

namespace adept {

// Current version (monotonic, starts at 1 so 0 can mean "never built").
std::uint64_t param_version();

// Record that parameters / noise state may have changed.
void bump_param_version();

}  // namespace adept
