// Endian-explicit binary encode/decode helpers.
//
// Shared by the photonics topology/PDK binary serializers and the runtime
// checkpoint format (src/runtime/checkpoint.h). All multi-byte values are
// written little-endian byte by byte, so files round-trip across hosts of
// any endianness; floats travel as their IEEE-754 bit patterns (bit_cast),
// so round-trips are bit-exact.
//
// Reads go through `Reader`, which tracks the byte offset and throws
// std::runtime_error naming the field being read and the offset where the
// input ran out — checkpoint loaders prepend their own context so users see
// "checkpoint: truncated input at offset N reading <field>".
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <stdexcept>

namespace adept::binio {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_f32(std::string& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// Sequential decoder over a byte buffer (a view — the caller keeps the
// bytes alive, so bounded sub-ranges of a larger buffer parse without a
// copy). Every accessor names the field it is reading; failures report that
// name plus the current byte offset.
class Reader {
 public:
  explicit Reader(std::string_view buf, std::size_t offset = 0,
                  std::string context = "binio")
      : buf_(buf), pos_(offset), context_(std::move(context)) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64(const char* what) { return static_cast<std::int64_t>(u64(what)); }
  float f32(const char* what) { return std::bit_cast<float>(u32(what)); }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  std::string str(const char* what) {
    const std::uint32_t n = u32(what);
    need(n, what);
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  // Throws when fewer than `n` bytes remain. Overflow-safe: `n` may come
  // straight from an untrusted length field near SIZE_MAX.
  void need(std::size_t n, const char* what) const {
    if (pos_ > buf_.size() || n > buf_.size() - pos_) {
      throw std::runtime_error(context_ + ": truncated input at offset " +
                               std::to_string(pos_) + " reading " + what + " (need " +
                               std::to_string(n) + " bytes, have " +
                               std::to_string(pos_ > buf_.size() ? 0 : buf_.size() - pos_) +
                               ")");
    }
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(context_ + ": " + msg + " at offset " +
                             std::to_string(pos_));
  }

 private:
  std::string_view buf_;
  std::size_t pos_;
  std::string context_;
};

}  // namespace adept::binio
