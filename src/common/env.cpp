#include "common/env.h"

#include <cstdlib>

namespace adept {

int env_int(const std::string& name, int def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return def;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v) return def;
  return static_cast<int>(parsed);
}

double env_double(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

std::string env_string(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  return v;
}

bool bench_full_scale() { return env_int("ADEPT_BENCH_FULL", 0) == 1; }

}  // namespace adept
