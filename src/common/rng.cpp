#include "common/rng.h"

#include <cmath>
#include <limits>

namespace adept {

double Rng::gumbel() {
  // Clamp away from 0 and 1 so the double log stays finite.
  double u = uniform();
  constexpr double eps = 1e-12;
  if (u < eps) u = eps;
  if (u > 1.0 - eps) u = 1.0 - eps;
  return -std::log(-std::log(u));
}

Rng Rng::split() {
  // Draw a fresh seed from this stream; streams stay decorrelated in practice
  // for the experiment scales used here.
  return Rng(engine_());
}

}  // namespace adept
