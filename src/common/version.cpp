#include "common/version.h"

namespace adept {

namespace {
std::uint64_t g_param_version = 1;  // mutation sites run single-threaded
}  // namespace

std::uint64_t param_version() { return g_param_version; }

void bump_param_version() { ++g_param_version; }

}  // namespace adept
