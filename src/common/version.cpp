#include "common/version.h"

#include <atomic>

namespace adept {

namespace {
// Mutation sites run single-threaded, but eval-cache readers (the serving
// worker pool) poll the counter concurrently, so loads must be atomic.
std::atomic<std::uint64_t> g_param_version{1};
}  // namespace

std::uint64_t param_version() {
  return g_param_version.load(std::memory_order_acquire);
}

void bump_param_version() {
  g_param_version.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace adept
