// Fixed-width ASCII table printer used by the benchmark harnesses to emit
// paper-style rows (Table 1/2/3) and series (Fig. 4/5).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace adept {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Append one row; each call must supply exactly header.size() cells.
  void add_row(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adept
