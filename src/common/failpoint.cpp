#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "common/env.h"

namespace adept::failpoint {

namespace {

struct Action {
  enum class Kind { throw_error, simulate_error, stall, truncate_write };
  Kind kind = Kind::throw_error;
  std::int64_t arg = 0;   // stall: microseconds; truncate_write: byte offset
  std::int64_t budget = -1;  // firings left; -1 = unlimited
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Action> armed;
  std::map<std::string, std::uint64_t> hits;
  bool env_loaded = false;
};

// Leaked singleton: failpoints can fire from worker threads during static
// destruction order teardown, so the registry must never be destroyed.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

// Relaxed armed-site count — the only thing the disarmed fast path reads.
std::atomic<int> armed_count{0};

Action parse_spec(const std::string& site, const std::string& spec) {
  Action a;
  std::string body = spec;
  const std::size_t star = body.find('*');
  if (star != std::string::npos) {
    try {
      a.budget = std::stoll(body.substr(0, star));
    } catch (...) {
      a.budget = -2;  // force the error below
    }
    if (a.budget < 1) {
      throw std::invalid_argument("failpoint \"" + site + "\": bad firing budget in spec \"" +
                                  spec + "\" (want e.g. \"2*error\")");
    }
    body = body.substr(star + 1);
  }
  auto arg_of = [&](const std::string& name) {
    const std::string inner = body.substr(name.size() + 1, body.size() - name.size() - 2);
    try {
      return std::stoll(inner);
    } catch (...) {
      throw std::invalid_argument("failpoint \"" + site + "\": bad argument \"" + inner +
                                  "\" in spec \"" + spec + "\"");
    }
  };
  if (body == "throw") {
    a.kind = Action::Kind::throw_error;
  } else if (body == "error") {
    a.kind = Action::Kind::simulate_error;
  } else if (body.rfind("stall(", 0) == 0 && body.back() == ')') {
    a.kind = Action::Kind::stall;
    a.arg = arg_of("stall");
    if (a.arg < 0 || a.arg > 60'000'000) {
      throw std::invalid_argument("failpoint \"" + site + "\": stall of " +
                                  std::to_string(a.arg) + " us is outside [0, 60s]");
    }
  } else if (body.rfind("truncate(", 0) == 0 && body.back() == ')') {
    a.kind = Action::Kind::truncate_write;
    a.arg = arg_of("truncate");
    if (a.arg < 0) {
      throw std::invalid_argument("failpoint \"" + site + "\": negative truncate offset " +
                                  std::to_string(a.arg));
    }
  } else {
    throw std::invalid_argument(
        "failpoint \"" + site + "\": unknown action spec \"" + spec +
        "\" (want throw | error | stall(us) | truncate(bytes), optionally \"N*\"-prefixed)");
  }
  return a;
}

// Parse ADEPT_FAILPOINTS="site=spec;site2=spec". Called under the registry
// lock, once. Programmatic arms that happened earlier win: env entries only
// fill sites not already armed.
void load_env_locked(Registry& r) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  const std::string env = env_string("ADEPT_FAILPOINTS", "");
  std::size_t pos = 0;
  while (pos < env.size()) {
    std::size_t end = env.find(';', pos);
    if (end == std::string::npos) end = env.size();
    const std::string entry = env.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("ADEPT_FAILPOINTS: entry \"" + entry +
                                  "\" is not site=spec");
    }
    const std::string site = entry.substr(0, eq);
    if (r.armed.find(site) == r.armed.end()) {
      r.armed.emplace(site, parse_spec(site, entry.substr(eq + 1)));
      armed_count.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// Looks up `site`, records the hit, and consumes one firing from its
// budget. Returns the action to execute, or nullopt when unarmed (or when
// `want` does not match the armed kind — a truncate spec must not fire from
// maybe_fail and vice versa).
std::optional<Action> consume(const char* site, bool want_truncate) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  load_env_locked(r);
  auto it = r.armed.find(site);
  if (it == r.armed.end()) return std::nullopt;
  const bool is_truncate = it->second.kind == Action::Kind::truncate_write;
  if (is_truncate != want_truncate) return std::nullopt;
  Action a = it->second;
  ++r.hits[site];
  if (it->second.budget > 0 && --it->second.budget == 0) {
    r.armed.erase(it);
    armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return a;
}

}  // namespace

bool any_armed() {
  if (armed_count.load(std::memory_order_relaxed) > 0) return true;
  // Until the environment has been inspected once, the count may be stale
  // at zero even though ADEPT_FAILPOINTS arms sites; force the (one-time)
  // parse so env-armed runs fire from the very first site evaluation.
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  load_env_locked(r);
  return armed_count.load(std::memory_order_relaxed) > 0;
}

void arm(const std::string& site, const std::string& spec) {
  Action a = parse_spec(site, spec);
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  auto [it, inserted] = r.armed.insert_or_assign(site, a);
  (void)it;
  if (inserted) armed_count.fetch_add(1, std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  if (r.armed.erase(site) > 0) armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  armed_count.fetch_sub(static_cast<int>(r.armed.size()), std::memory_order_relaxed);
  r.armed.clear();
}

void reset_env_for_testing() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.env_loaded = false;
}

std::uint64_t hit_count(const std::string& site) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  auto it = r.hits.find(site);
  return it == r.hits.end() ? 0 : it->second;
}

bool maybe_fail(const char* site) {
  if (!any_armed()) return false;
  const std::optional<Action> a = consume(site, /*want_truncate=*/false);
  if (!a) return false;
  switch (a->kind) {
    case Action::Kind::throw_error:
      throw Injected(site);
    case Action::Kind::simulate_error:
      return true;
    case Action::Kind::stall:
      std::this_thread::sleep_for(std::chrono::microseconds(a->arg));
      return false;
    case Action::Kind::truncate_write:
      return false;  // unreachable: filtered by consume()
  }
  return false;
}

std::optional<std::int64_t> write_truncation(const char* site) {
  if (!any_armed()) return std::nullopt;
  const std::optional<Action> a = consume(site, /*want_truncate=*/true);
  if (!a) return std::nullopt;
  return a->arg;
}

}  // namespace adept::failpoint
