// Environment-variable overrides for benchmark scale and runtime knobs.
//
// Benches run at a reduced scale by default so the full suite finishes in
// minutes on a laptop; ADEPT_BENCH_* variables scale them toward paper scale.
//
// Runtime knobs consumed elsewhere through env_int():
//   ADEPT_NUM_THREADS   worker count for the src/backend kernel layer
//                       (default: hardware concurrency; 1 = serial fallback —
//                       backend results are bit-exact across thread counts,
//                       see backend/parallel.h).
#pragma once

#include <string>

namespace adept {

// Integer env var with default; returns `def` if unset or unparsable.
int env_int(const std::string& name, int def);

// Double env var with default.
double env_double(const std::string& name, double def);

// True when ADEPT_BENCH_FULL=1 (run benches closer to paper scale).
bool bench_full_scale();

}  // namespace adept
