// Environment-variable overrides for benchmark scale.
//
// Benches run at a reduced scale by default so the full suite finishes in
// minutes on a laptop; ADEPT_BENCH_* variables scale them toward paper scale.
#pragma once

#include <string>

namespace adept {

// Integer env var with default; returns `def` if unset or unparsable.
int env_int(const std::string& name, int def);

// Double env var with default.
double env_double(const std::string& name, double def);

// True when ADEPT_BENCH_FULL=1 (run benches closer to paper scale).
bool bench_full_scale();

}  // namespace adept
