// Environment-variable overrides for benchmark scale and runtime knobs.
//
// Benches run at a reduced scale by default so the full suite finishes in
// minutes on a laptop; ADEPT_BENCH_* variables scale them toward paper scale.
//
// Runtime knobs consumed elsewhere through env_int()/env_string():
//   ADEPT_NUM_THREADS   worker count for the src/backend kernel layer
//                       (default: hardware concurrency; 1 = serial fallback —
//                       backend results are bit-exact across thread counts,
//                       see backend/parallel.h).
//   ADEPT_SIMD          dispatch cap for the SIMD microkernels:
//                       scalar | avx2 | avx512 (default: best level the
//                       binary + CPU support; unknown or unavailable values
//                       clamp down, never error — see backend/dispatch.h).
//   ADEPT_DEVICE        default execution context plans route their steps
//                       to: serial | threaded (default threaded; unknown
//                       values clamp to threaded, never error — see
//                       backend/context.h). Serial and threaded contexts
//                       are ASSERT_EQ bit-identical at every SIMD level
//                       (tests/test_context.cpp); `serial` caps each
//                       kernel launch to one thread without touching the
//                       global ADEPT_NUM_THREADS, the right shape when an
//                       outer pool (the serving workers) owns the cores.
//   ADEPT_RANKS         data-parallel rank count for search/training entry
//                       points (default 1; see comm/communicator.h
//                       resolve_ranks). Clamped to [1, hardware ranks]
//                       where hardware ranks = min(hardware concurrency, 8),
//                       then rounded down to a power of two; unset, unknown,
//                       or unparsable values fall back to 1, never error.
//                       N-rank results are ASSERT_EQ bit-identical to 1-rank
//                       at every thread count (tests/test_comm.cpp) — the
//                       knob trades wall clock, never numerics. Each rank
//                       gets a kernel thread budget of
//                       ADEPT_NUM_THREADS / ranks (min 1) so ranks x threads
//                       never oversubscribes the machine.
//
// Serving knobs consumed by runtime::ServerConfig::from_env() (see
// runtime/server.h; out-of-range values clamp into the supported envelope,
// they never error — clamping is asserted in tests/test_runtime.cpp):
//   ADEPT_SERVE_THREADS      worker count for the inference server
//                            (default: hardware concurrency; clamps to
//                            [1, 256]).
//   ADEPT_SERVE_MAX_BATCH    micro-batch ceiling per forward pass
//                            (default 16; clamps to [1, 4096]).
//   ADEPT_SERVE_MAX_WAIT_US  how long a worker lingers for stragglers after
//                            popping the first request of a batch
//                            (default 100; clamps to [0, 1000000]; 0 =
//                            serve whatever is already queued immediately).
//   ADEPT_SERVE_POLICY       what submit() does when the bounded queue is
//                            full: block | reject | shed_oldest (default
//                            block; unknown names clamp to block, never
//                            error — see runtime/server.h OverloadPolicy).
//   ADEPT_SERVE_DEADLINE_US  default per-request deadline, microseconds
//                            from submit (default 0 = none; clamps to
//                            [0, 600000000]). Expired requests fail with
//                            DeadlineExceededError instead of executing.
//   ADEPT_SERVE_QUANT        nonzero = freeze the served model with int8
//                            quantized execution (per-channel weight scales,
//                            int32 accumulate, dequantize on store — see
//                            runtime/plan.h and FreezeOptions::from_env();
//                            default 0 = fp32).
//
// Fault injection (see common/failpoint.h for the spec grammar and the list
// of wired sites):
//   ADEPT_FAILPOINTS         "site=spec;site2=spec" — arm named failpoints
//                            at process start, e.g.
//                            "checkpoint.save.write=truncate(128)" or
//                            "server.worker.batch=stall(5000)". Parsed once
//                            at first site evaluation; malformed entries
//                            throw std::invalid_argument there.
//
// Observability knobs consumed by src/obs/ (see docs/observability.md):
//   ADEPT_TRACE              path — enable tracing at process start and
//                            write a Chrome trace_event JSON there at exit
//                            (open in Perfetto / chrome://tracing). Unset =
//                            tracing disarmed; the per-span fast path is one
//                            relaxed atomic load.
//   ADEPT_METRICS_FILE       path — dump the metrics registry (counters,
//                            gauges, histograms) as JSON at process exit.
//                            Unset = no dump; metrics are always recorded.
//   ADEPT_TRACE_BUF          per-thread trace ring capacity in events
//                            (default 65536; clamps to [4096, 4194304]).
//                            When a thread's ring fills, the oldest events
//                            are overwritten.
#pragma once

#include <string>

namespace adept {

// Integer env var with default; returns `def` if unset or unparsable.
int env_int(const std::string& name, int def);

// Double env var with default.
double env_double(const std::string& name, double def);

// String env var with default; returns `def` if unset or empty.
std::string env_string(const std::string& name, const std::string& def);

// True when ADEPT_BENCH_FULL=1 (run benches closer to paper scale).
bool bench_full_scale();

}  // namespace adept
