// Seeded random number generation for reproducible experiments.
//
// Every stochastic component (Gumbel sampling, SPL perturbation, data
// synthesis, parameter init) owns an adept::Rng constructed from an explicit
// seed so that tests and benches are deterministic.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace adept {

// Thin wrapper over std::mt19937_64 with the distributions this project uses.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  // Uniform in [0, 1).
  double uniform() { return unit_(engine_); }
  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  // Standard normal times sigma plus mu.
  double normal(double mu = 0.0, double sigma = 1.0) {
    return mu + sigma * normal_(engine_);
  }
  // Sample from Gumbel(0, 1): -log(-log(u)).
  double gumbel();
  // Bernoulli with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }
  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }
  // Derive an independent child generator (for per-component streams).
  Rng split();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace adept
