// Failpoint injection framework.
//
// A failpoint is a named site in production code where a test (or an
// operator, via the environment) can inject a failure without recompiling:
//
//   // In the code under test, at the seam worth breaking:
//   failpoint::maybe_fail("checkpoint.save.write");
//
//   // In a test:
//   failpoint::Scoped fp("checkpoint.save.write", "throw");
//   EXPECT_THROW(save_checkpoint(model, path), std::runtime_error);
//
// The disarmed fast path is a single relaxed atomic load of the armed-site
// count — sites stay in release builds and cost nothing until armed.
//
// Action specs (parsed by `arm`, or from the environment):
//   "throw"        throw adept::failpoint::Injected (a std::runtime_error)
//   "error"        report "simulate the site's own error path" to the
//                  caller: maybe_fail returns true and the site maps that
//                  onto whatever its real failure handling is (short write,
//                  failed syscall, ...) so the production error branch runs
//   "stall(N)"     sleep N microseconds, then continue (slow disk, slow
//                  model, scheduling hiccup)
//   "truncate(K)"  for write sites that consult `write_truncation`: stop
//                  the write after K bytes and simulate a crash
// Any spec may be prefixed with a firing budget: "2*error" fires twice and
// then disarms itself; unprefixed specs fire on every hit.
//
// Environment activation: ADEPT_FAILPOINTS="site=spec;site2=spec" is parsed
// on first evaluation (see common/env.h). Programmatic arming always wins
// over the environment for the same site.
//
// Sites wired so far (grep for the string to find the seam):
//   checkpoint.save.open / .write / .fsync / .rename   crash-safe save path
//   checkpoint.load.read                               torn/short reads
//   runtime.freeze                                     CompiledModel::freeze
//   runtime.context.step                               CompiledModel::run's
//                                                      context dispatch loop
//   server.worker.batch                                before each forward
//   comm.allreduce                                     entry of every rank's
//                                                      collective allreduce
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace adept::failpoint {

// The exception "throw" specs raise. Derives from std::runtime_error so
// existing catch sites treat an injected failure like a real one.
struct Injected : std::runtime_error {
  explicit Injected(const std::string& site)
      : std::runtime_error("failpoint \"" + site + "\": injected failure") {}
};

// True when at least one site is armed (relaxed load; the only check on the
// disarmed fast path).
bool any_armed();

// Arm `site` with an action spec (see file comment). Throws
// std::invalid_argument on a malformed spec.
void arm(const std::string& site, const std::string& spec);

// Disarm one site / all sites. Disarming an unarmed site is a no-op.
void disarm(const std::string& site);
void disarm_all();

// Cumulative number of times `site` fired (any action), for tests that
// assert a seam was actually exercised.
std::uint64_t hit_count(const std::string& site);

// Evaluate `site`: no-op when disarmed. Fires the armed action — throws for
// "throw", sleeps for "stall", and returns true for "error" (the caller
// simulates its own failure path). "truncate" specs do not fire here; they
// only answer write_truncation(). Returns false when nothing fired.
bool maybe_fail(const char* site);

// For write sites: the byte count K of an armed "truncate(K)" spec, or
// nullopt. Consumes one firing from the budget when armed.
std::optional<std::int64_t> write_truncation(const char* site);

// Test hook: forget that ADEPT_FAILPOINTS was already parsed, so a test can
// setenv() and re-trigger environment activation (usually after
// disarm_all()). Production code never needs this.
void reset_env_for_testing();

// RAII arm/disarm for tests.
class Scoped {
 public:
  Scoped(std::string site, const std::string& spec) : site_(std::move(site)) {
    arm(site_, spec);
  }
  ~Scoped() { disarm(site_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string site_;
};

}  // namespace adept::failpoint
