#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace adept {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace adept
