#!/usr/bin/env python3
"""Diff two BENCH_*.json files from the perf trajectory.

Usage: compare_bench.py BASELINE.json CURRENT.json

Prints a per-record table of the primary metric (backend_serial_gflops for
kernel records, wall_s for end-to-end records) with the current/baseline
ratio, and flags regressions beyond 10%. Always exits 0 — the CI step that
runs this is informational, not blocking (runner hardware varies).
"""
import json
import sys


def key(rec):
    return (rec["name"], rec.get("size"))


def primary_metric(rec):
    if "backend_serial_gflops" in rec:
        return "backend_serial_gflops", rec["backend_serial_gflops"], True
    if "qps" in rec:
        return "qps", rec["qps"], True
    if "wall_s" in rec:
        return "wall_s", rec["wall_s"], False
    return None, None, True


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 0
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        cur = json.load(f)
    base_by_key = {key(r): r for r in base.get("results", [])}
    rows = []
    for rec in cur.get("results", []):
        metric, cur_v, higher_better = primary_metric(rec)
        if metric is None:
            continue
        b = base_by_key.get(key(rec))
        if b is None or metric not in b or not b[metric]:
            rows.append((rec["name"], rec.get("size"), metric, None, cur_v, None, ""))
            continue
        base_v = b[metric]
        ratio = cur_v / base_v if higher_better else base_v / cur_v
        flag = ""
        if ratio < 0.9:
            flag = "REGRESSION"
        elif ratio > 1.1:
            flag = "improved"
        rows.append((rec["name"], rec.get("size"), metric, base_v, cur_v, ratio, flag))

    name_w = max([len(r[0]) for r in rows] + [6])
    print(f"{'record':<{name_w}} {'size':>8} {'metric':<24} "
          f"{'baseline':>12} {'current':>12} {'speedup':>8}")
    for name, size, metric, base_v, cur_v, ratio, flag in rows:
        size_s = f"{size:g}" if size is not None else "-"
        base_s = f"{base_v:.4g}" if base_v is not None else "-"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "-"
        print(f"{name:<{name_w}} {size_s:>8} {metric:<24} "
              f"{base_s:>12} {cur_v:>12.4g} {ratio_s:>8} {flag}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
