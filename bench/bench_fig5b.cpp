// Fig. 5(b) reproduction: footprint-penalty ablation. Scan the penalty
// weight beta from 0.001 to 10 while training only the architecture
// parameters (block-selection logits theta) of an 8x8 SuperMesh against the
// ADEPT-a1 footprint band [240, 300]. Trace the expected footprint E[F].
// Shape target: beta >= ~10 pins E[F] inside the band; tiny beta leaves the
// constraint violated.
#include <cstdio>
#include <iostream>

#include "autograd/ops.h"
#include "common/env.h"
#include "common/table.h"
#include "core/supermesh.h"
#include "optim/optimizer.h"

namespace ag = adept::ag;
namespace core = adept::core;
namespace ph = adept::photonics;

int main() {
  const int steps = adept::env_int("ADEPT_BENCH_FP_STEPS", 1200);
  const double betas[] = {0.001, 0.01, 0.1, 1.0, 10.0};

  core::FootprintConfig footprint;
  footprint.pdk = ph::Pdk::amf();
  footprint.f_min = 240;  // ADEPT-a1 band (Table 1, 8x8)
  footprint.f_max = 300;

  std::printf("Fig. 5(b): footprint penalty, scan beta (8x8 SuperMesh, band "
              "[%.0f, %.0f] k-um^2, %d arch steps)\n\n",
              footprint.f_min, footprint.f_max, steps);
  adept::Table table({"beta", "E[F] @0", "@25%", "@50%", "@75%", "@final",
                      "inside band?"});

  for (double beta : betas) {
    footprint.beta = beta;
    adept::Rng rng(13);
    core::SuperMeshConfig mesh_config;
    mesh_config.k = 8;
    mesh_config.super_blocks_per_unitary = 6;  // start oversized: E[F] > band
    mesh_config.always_on_per_unitary = 1;
    core::SuperMesh mesh(mesh_config, rng);
    adept::optim::Adam opt(mesh.arch_params(), 5e-3, 0.9, 0.999, 1e-8, 5e-4);

    std::vector<double> checkpoints;
    double expected = 0;
    for (int step = 0; step < steps; ++step) {
      mesh.begin_step(/*tau=*/1.0, rng, /*stochastic=*/true);
      ag::Tensor penalty = mesh.footprint_penalty_expr(footprint);
      // Task-loss surrogate: during real SuperMesh training the validation
      // loss rewards keeping blocks (more depth = more expressivity), which
      // is what the footprint penalty must overpower. Model it as a reward
      // proportional to the expected selected-block count.
      ag::Tensor loss = penalty;
      ag::Tensor select_sum = ag::Tensor::scalar(0.0f);
      for (auto& theta : mesh.arch_params()) {
        ag::Tensor logits = ag::reshape(theta, {1, 2});
        ag::Tensor m = ag::softmax_rows(logits);
        select_sum = ag::add(select_sum, ag::index(m, 1));
      }
      loss = ag::sub(loss, ag::mul_scalar(select_sum, 0.05f));
      // Read E[F] before the step so it reflects the same parameters as the
      // penalty (and hits the block-count cache filled above).
      expected = mesh.expected_footprint(footprint.pdk);
      opt.zero_grad();
      loss.backward();
      opt.step();
      if (step % (steps / 4) == 0) checkpoints.push_back(expected);
    }
    while (checkpoints.size() < 4) checkpoints.push_back(expected);
    const bool inside = expected >= footprint.f_min && expected <= footprint.f_max;
    char beta_label[32];
    std::snprintf(beta_label, sizeof(beta_label), "%g", beta);
    table.add_row({beta_label, adept::Table::fmt(checkpoints[0], 0),
                   adept::Table::fmt(checkpoints[1], 0),
                   adept::Table::fmt(checkpoints[2], 0),
                   adept::Table::fmt(checkpoints[3], 0),
                   adept::Table::fmt(expected, 0), inside ? "yes" : "no"});
    std::printf("  beta=%g done (E[F] final = %.0f)\n", beta, expected);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nShape target (paper Fig. 5b): with beta ~ 10 the expected footprint\n"
              "is pulled inside the green band; with beta << 1 it stays outside.\n");
  return 0;
}
