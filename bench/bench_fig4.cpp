// Fig. 4 reproduction: accuracy vs phase-noise std for 16x16 PTCs with
// variation-aware training (sigma=0.02 during training), mean +/- 3-sigma
// uncertainty over repeated noisy evaluations.
//   (a) 2-layer CNN on synthetic-MNIST
//   (b) LeNet-5 on synthetic-FMNIST
// Shape target: MZI degrades fastest (deepest mesh); FFT and the searched
// ADEPT designs stay flat or degrade gently.
#include <cmath>

#include "backend/parallel.h"
#include "bench_common.h"
#include "nn/variation.h"
#include "obs/metrics.h"

namespace data = adept::data;
namespace nn = adept::nn;
namespace ph = adept::photonics;
using adept::Table;
using adept::bench::BenchScale;

namespace {

struct NoisyEval {
  double mean, band3;  // mean and 3*std over runs
};

NoisyEval eval_under_noise(nn::OnnModel& model, const data::SyntheticDataset& test,
                           double sigma, int runs) {
  double s = 0, s2 = 0;
  for (int r = 0; r < runs; ++r) {
    const double acc =
        nn::evaluate_accuracy(model, test, 64, sigma, static_cast<std::uint64_t>(r * 7 + 1));
    s += acc;
    s2 += acc * acc;
  }
  const double mean = s / runs;
  const double var = std::max(s2 / runs - mean * mean, 0.0);
  return {mean, 3.0 * std::sqrt(var)};
}

// --json mode: end-to-end timings of the Fig. 4 pipeline phases (search,
// variation-aware retraining, noisy evaluation) at reduced scale, for the
// perf trajectory. Schema in bench/README.md.
int run_json_report(const std::string& path) {
  namespace be = adept::backend;
  const BenchScale scale = adept::bench::json_scale();
  const int runs = adept::env_int("ADEPT_BENCH_NOISE_RUNS", 2);
  const int k = 16;
  const ph::Pdk pdk = ph::Pdk::amf();
  const auto spec = data::DatasetSpec::mnist_like();
  data::SyntheticDataset train(spec, scale.train_n, 1);
  data::SyntheticDataset val(spec, scale.test_n, 2);
  data::SyntheticDataset test(spec, scale.test_n, 6);

  adept::bench::JsonReport report("fig4");
  adept::core::SearchResult searched;
  // Telemetry deltas around the first search: the legalization count comes
  // from the metrics registry (counters are process-monotonic, so the delta
  // isolates this search), the final task loss from its gauge.
  auto legalize_count = [] {
    const auto* c = adept::obs::snapshot().find_counter("search.legalize_count");
    return c != nullptr ? c->value : 0;
  };
  const std::uint64_t legalize_before = legalize_count();
  const double search_s = adept::bench::time_once([&] {
    searched = adept::bench::run_search(k, pdk, 672, 840, scale, train, val, 71);
  });
  const adept::obs::MetricsSnapshot search_snap = adept::obs::snapshot();
  const auto* g_task_loss = search_snap.find_gauge("search.task_loss");
  report.add({"search",
              {{"size", static_cast<double>(k)},
               {"wall_s", search_s},
               {"epochs", static_cast<double>(scale.search_epochs)},
               {"task_loss", g_task_loss != nullptr ? g_task_loss->value : 0.0},
               {"legalizations",
                static_cast<double>(legalize_count() - legalize_before)},
               {"footprint", searched.topology.footprint_um2(pdk) / 1000.0}}});

  // Data-parallel trajectory: the same search at explicit rank counts. The
  // sharded numerics are bit-identical across ranks, so wall_s is the only
  // thing that moves; the speedup is hardware-bound (ranks timeslice on
  // fewer cores — see bench/README.md).
  for (int r : {1, 2, 4}) {
    adept::core::SearchResult res;
    const double s = adept::bench::time_once([&] {
      res = adept::bench::run_search(k, pdk, 672, 840, scale, train, val, 71,
                                     /*max_super_blocks=*/10, /*ranks=*/r);
    });
    report.add({"search_r" + std::to_string(r),
                {{"size", static_cast<double>(k)},
                 {"wall_s", s},
                 {"ranks", static_cast<double>(r)},
                 {"epochs", static_cast<double>(scale.search_epochs)},
                 {"footprint", res.topology.footprint_um2(pdk) / 1000.0}}});
  }

  auto topo = std::make_shared<ph::PtcTopology>(searched.topology);
  adept::Rng rng(91);
  nn::OnnModel model = nn::make_proxy_cnn(1, spec.height, 10,
                                          nn::PtcBinding::fixed(topo), rng,
                                          scale.cnn_width);
  nn::TrainConfig config;
  config.epochs = scale.retrain_epochs;
  config.batch_size = scale.batch;
  config.train_phase_noise = 0.02;  // variation-aware training
  nn::TrainStats stats;
  const double retrain_s = adept::bench::time_once(
      [&] { stats = nn::train_classifier(model, train, test, config); });
  const adept::obs::MetricsSnapshot train_snap = adept::obs::snapshot();
  const auto* g_train_loss = train_snap.find_gauge("train.loss");
  const auto* g_train_acc = train_snap.find_gauge("train.accuracy");
  report.add({"retrain_noise_aware",
              {{"size", static_cast<double>(k)},
               {"wall_s", retrain_s},
               {"epochs", static_cast<double>(scale.retrain_epochs)},
               {"final_loss", g_train_loss != nullptr ? g_train_loss->value : 0.0},
               {"accuracy_gauge", g_train_acc != nullptr ? g_train_acc->value : 0.0},
               {"accuracy", stats.final_accuracy}}});

  NoisyEval noisy{};
  const double eval_s = adept::bench::time_once(
      [&] { noisy = eval_under_noise(model, test, 0.06, runs); });
  report.add({"noisy_eval",
              {{"size", static_cast<double>(k)},
               {"wall_s", eval_s},
               {"runs", static_cast<double>(runs)},
               {"mean_accuracy", noisy.mean}}});

  if (!report.write(path, be::num_threads())) {
    std::cerr << "bench_fig4: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " (threads=" << be::num_threads() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  if (adept::bench::parse_json_flag(argc, argv, "BENCH_fig4.json", &json_path)) {
    return run_json_report(json_path);
  }
  BenchScale scale = BenchScale::from_env();
  scale.train_n = adept::env_int("ADEPT_BENCH_TRAIN", adept::bench_full_scale() ? 4096 : 288);
  const int runs = adept::env_int("ADEPT_BENCH_NOISE_RUNS",
                                  adept::bench_full_scale() ? 20 : 5);
  const int k = 16;
  const ph::Pdk pdk = ph::Pdk::amf();
  const double sigmas[] = {0.02, 0.04, 0.06, 0.08, 0.10};

  // Designs: baselines + searched a2/a4 (searched on the MNIST-like proxy).
  const auto proxy_spec = data::DatasetSpec::mnist_like();
  data::SyntheticDataset proxy_train(proxy_spec, scale.train_n, 1);
  data::SyntheticDataset proxy_val(proxy_spec, scale.test_n, 2);
  std::printf("searching ADEPT-a2 and ADEPT-a4 (16x16, AMF)...\n");
  const auto a2 = adept::bench::run_search(k, pdk, 672, 840, scale, proxy_train,
                                           proxy_val, 71).topology;
  const auto a4 = adept::bench::run_search(k, pdk, 1056, 1320, scale, proxy_train,
                                           proxy_val, 72).topology;
  struct Design {
    std::string name;
    std::shared_ptr<const ph::PtcTopology> topo;
  };
  const std::vector<Design> designs = {
      {"MZI", std::make_shared<ph::PtcTopology>(ph::clements_mzi(k))},
      {"FFT", std::make_shared<ph::PtcTopology>(ph::butterfly(k))},
      {"ADEPT-a2", std::make_shared<ph::PtcTopology>(a2)},
      {"ADEPT-a4", std::make_shared<ph::PtcTopology>(a4)},
  };

  struct Panel {
    const char* title;
    const char* model;
    data::DatasetSpec spec;
  };
  const Panel panels[] = {
      {"(a) 2-layer CNN on synthetic-MNIST", "cnn", data::DatasetSpec::mnist_like()},
      {"(b) LeNet-5 on synthetic-FMNIST", "lenet", data::DatasetSpec::fmnist_like()},
  };

  for (const auto& panel : panels) {
    std::printf("\n=== Fig. 4%s ===\n", panel.title);
    data::SyntheticDataset train(panel.spec, scale.train_n, 5);
    data::SyntheticDataset test(panel.spec, scale.test_n, 6);
    Table table({"design", "s=0.02", "0.04", "0.06", "0.08", "0.10", "(mean +/- 3sigma)"});
    for (const auto& d : designs) {
      adept::Rng rng(91);
      nn::OnnModel model;
      if (std::string(panel.model) == "cnn") {
        model = nn::make_proxy_cnn(1, panel.spec.height, 10,
                                   nn::PtcBinding::fixed(d.topo), rng, scale.cnn_width);
      } else {
        model = nn::make_lenet5(1, panel.spec.height, 10, nn::PtcBinding::fixed(d.topo),
                                rng, /*width_scale=*/0.5);
      }
      nn::TrainConfig config;
      config.epochs = scale.retrain_epochs;
      config.batch_size = scale.batch;
      config.train_phase_noise = 0.02;  // variation-aware training
      nn::train_classifier(model, train, test, config);
      std::vector<std::string> row = {d.name};
      for (double sigma : sigmas) {
        const auto e = eval_under_noise(model, test, sigma, runs);
        row.push_back(Table::fmt(e.mean * 100, 1) + "+-" + Table::fmt(e.band3 * 100, 1));
      }
      row.push_back("");
      table.add_row(row);
      std::printf("  evaluated %s\n", d.name.c_str());
    }
    table.print(std::cout);
  }
  std::printf("\nShape target (paper): MZI curve collapses with sigma; FFT and the\n"
              "ADEPT designs degrade gently and stay close together.\n");
  return 0;
}
