// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench prints the paper-reported values next to the measured ones.
// Defaults are reduced-scale (CPU-minutes); ADEPT_BENCH_* env vars scale
// toward paper scale:
//   ADEPT_BENCH_TRAIN        training-set size        (default 384)
//   ADEPT_BENCH_TEST         test-set size            (default 256)
//   ADEPT_BENCH_EPOCHS       retraining epochs        (default 3)
//   ADEPT_BENCH_SEARCH_EPOCHS search epochs           (default 5)
//   ADEPT_BENCH_WIDTH        proxy CNN width          (default 6)
//   ADEPT_BENCH_FULL=1       lift the reductions (paper-sized runs)
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/table.h"
#include "core/search.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "photonics/builders.h"

namespace adept::bench {

struct BenchScale {
  int train_n;
  int test_n;
  int retrain_epochs;
  int search_epochs;
  int cnn_width;
  int batch;

  static BenchScale from_env() {
    BenchScale s;
    const bool full = bench_full_scale();
    s.train_n = env_int("ADEPT_BENCH_TRAIN", full ? 4096 : 384);
    s.test_n = env_int("ADEPT_BENCH_TEST", full ? 1024 : 256);
    s.retrain_epochs = env_int("ADEPT_BENCH_EPOCHS", full ? 10 : 3);
    s.search_epochs = env_int("ADEPT_BENCH_SEARCH_EPOCHS", full ? 30 : 5);
    s.cnn_width = env_int("ADEPT_BENCH_WIDTH", full ? 32 : 6);
    s.batch = env_int("ADEPT_BENCH_BATCH", 24);
    return s;
  }
};

// Run the ADEPT search for one footprint target on the CNN proxy task.
// `ranks`: 0 resolves the ADEPT_RANKS knob (1 keeps the legacy single-process
// loop); an explicit count >= 1 always runs the data-parallel path, so the
// search_r{1,2,4} trajectory records compare like against like (sharded
// numerics are bit-identical across rank counts).
inline core::SearchResult run_search(int k, const photonics::Pdk& pdk, double f_min,
                                     double f_max, const BenchScale& scale,
                                     const data::SyntheticDataset& train,
                                     const data::SyntheticDataset& val,
                                     std::uint64_t seed,
                                     int max_super_blocks = 10, int ranks = 0) {
  core::SearchConfig config;
  config.mesh.k = k;
  config.mesh.super_blocks_per_unitary = 0;  // derive from Eq. 16
  config.max_super_blocks_per_unitary = max_super_blocks;
  config.footprint.pdk = pdk;
  config.footprint.f_min = f_min;
  config.footprint.f_max = f_max;
  config.epochs = scale.search_epochs;
  config.warmup_epochs = std::max(1, scale.search_epochs / 9);
  config.spl_epoch = std::max(1, scale.search_epochs * 5 / 9);
  config.steps_per_epoch = 12;
  config.alm.rho0 = 1e-4 * k / 8.0;
  config.seed = seed;
  if (ranks > 0 || comm::resolve_ranks(ranks) > 1) {
    return core::run_search_data_parallel(
        config,
        [&] {
          return std::make_unique<nn::OnnProxyTask>(
              train, val, scale.batch, scale.cnn_width, seed + 1);
        },
        ranks);
  }
  nn::OnnProxyTask task(train, val, scale.batch, scale.cnn_width, seed + 1);
  core::AdeptSearcher searcher(config, task);
  return searcher.run();
}

// Re-train a fresh proxy CNN with a frozen topology; returns test accuracy.
inline double retrain_accuracy(const photonics::PtcTopology& topo,
                               const data::SyntheticDataset& train,
                               const data::SyntheticDataset& test,
                               const BenchScale& scale, std::uint64_t seed,
                               double phase_noise = 0.0) {
  auto shared = std::make_shared<photonics::PtcTopology>(topo);
  adept::Rng rng(seed);
  auto model = nn::make_proxy_cnn(train.spec().channels, train.spec().height,
                                  train.spec().classes, nn::PtcBinding::fixed(shared),
                                  rng, scale.cnn_width);
  nn::TrainConfig config;
  config.epochs = scale.retrain_epochs;
  config.batch_size = scale.batch;
  config.seed = seed;
  config.train_phase_noise = phase_noise;
  const auto stats = nn::train_classifier(model, train, test, config);
  return stats.final_accuracy;
}

// ---- machine-readable perf reports (--json mode) --------------------------
//
// Benches invoked with `--json [path]` skip the interactive google-benchmark
// run and instead emit a BENCH_<name>.json file consumed by the perf
// trajectory (schema documented in bench/README.md). Each record carries a
// kernel/config name plus flat numeric metrics, so future PRs can diff
// GFLOP/s against the checked-in baseline of any earlier revision.

struct JsonRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(JsonRecord record) { records_.push_back(std::move(record)); }

  bool write(const std::string& path, int threads) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"threads\": " << threads
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const auto& r = records_[i];
      out << "    {\"name\": \"" << r.name << "\"";
      for (const auto& [key, value] : r.metrics) {
        out << ", \"" << key << "\": ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        out << buf;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.flush();  // surface late I/O errors (disk full) in the return value
    return static_cast<bool>(out);
  }

 private:
  std::string bench_;
  std::vector<JsonRecord> records_;
};

// Wall-clock seconds of the best run of `fn()` out of `reps`, after one
// warm-up call; fn is repeated until each timed sample spans >= min_sample_s.
template <typename Fn>
double time_best(Fn&& fn, int reps = 5, double min_sample_s = 0.02) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  int inner = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (int i = 0; i < inner; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_sample_s || inner >= (1 << 20)) break;
    inner *= 2;
  }
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (int i = 0; i < inner; ++i) fn();
    const double s =
        std::chrono::duration<double>(clock::now() - t0).count() / inner;
    if (s < best) best = s;
  }
  return best;
}

// Wall-clock seconds of a single run of `fn()` — for the end-to-end search
// and training phases of the `--json` reports, which are far too slow for
// best-of-N repetition and are reported as coarse trajectory numbers.
template <typename Fn>
double time_once(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Reduced problem sizes for the end-to-end `--json` reports (CI runs them on
// every push): env overrides still apply, but the defaults are minutes
// smaller than the interactive reproduction scale.
inline BenchScale json_scale() {
  BenchScale s;
  s.train_n = env_int("ADEPT_BENCH_TRAIN", 96);
  s.test_n = env_int("ADEPT_BENCH_TEST", 64);
  s.retrain_epochs = env_int("ADEPT_BENCH_EPOCHS", 1);
  s.search_epochs = env_int("ADEPT_BENCH_SEARCH_EPOCHS", 2);
  s.cnn_width = env_int("ADEPT_BENCH_WIDTH", 4);
  s.batch = env_int("ADEPT_BENCH_BATCH", 24);
  return s;
}

// Shared `--json [path]` dispatch: returns true (and fills `path`) when the
// bench should emit a JSON report instead of running google-benchmark.
inline bool parse_json_flag(int argc, char** argv, const std::string& def_path,
                            std::string* path) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      *path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : def_path;
      return true;
    }
  }
  return false;
}

inline std::string census_str(const photonics::PtcTopology& topo) {
  const auto c = topo.counts();
  return std::to_string(c.cr) + "/" + std::to_string(c.dc) + "/" +
         std::to_string(c.blocks);
}

}  // namespace adept::bench
