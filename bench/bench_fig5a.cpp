// Fig. 5(a) reproduction: permutation-ALM ablation. Scan the initial penalty
// coefficient rho0 from 1e-8 to 5e-6 and trace (i) the mean multiplier
// lambda and (ii) the permutation error DeltaP (mean l1-l2 gap) over 2000
// optimization steps. Shape target: for every rho0 the error converges
// toward 0 while lambda ramps up — the method is insensitive to rho0.
#include <cstdio>
#include <iostream>

#include "autograd/ops.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/alm.h"
#include "core/reparam.h"
#include "optim/optimizer.h"

namespace ag = adept::ag;
namespace core = adept::core;

int main() {
  const int steps = adept::env_int("ADEPT_BENCH_ALM_STEPS", 2000);
  const int k = 8;
  const int blocks = 6;
  const double rho0s[] = {1e-8, 5e-8, 1e-7, 5e-7, 1e-6, 5e-6};

  std::printf("Fig. 5(a): permutation ALM, scan rho0 (K=%d, %d blocks, %d steps)\n\n",
              k, blocks, steps);
  adept::Table table({"rho0", "DeltaP @0", "@500", "@1000", "@1500", "@final",
                      "lambda @final", "rho @final"});

  for (double rho0 : rho0s) {
    // Fresh relaxed permutations + a small matrix-fit objective so the task
    // loss and the constraint interact as in real SuperMesh training.
    adept::Rng rng(7);
    std::vector<ag::Tensor> p_raw;
    std::vector<ag::Tensor> targets;
    for (int b = 0; b < blocks; ++b) {
      p_raw.push_back(core::smoothed_identity_init(k, true));
      std::vector<float> t(static_cast<std::size_t>(k * k));
      for (auto& v : t) v = static_cast<float>(rng.normal(0.0, 0.3));
      targets.push_back(ag::make_tensor(std::move(t), {k, k}, false));
    }
    core::AlmConfig config;
    config.rho0 = rho0;
    core::AlmState alm(static_cast<std::size_t>(blocks), k, config);
    alm.set_horizon(steps);
    adept::optim::Adam opt(p_raw, 2e-3);

    std::vector<double> checkpoints;
    double final_error = 0;
    for (int step = 0; step < steps; ++step) {
      std::vector<ag::Tensor> p_tilde;
      for (auto& raw : p_raw) {
        p_tilde.push_back(core::reparametrize_permutation(raw, 0.05f));
      }
      // Task: keep P~ close to a fixed random matrix (competes with the
      // permutation constraint exactly like the NN loss does).
      ag::Tensor loss = alm.penalty(p_tilde);
      for (int b = 0; b < blocks; ++b) {
        loss = ag::add(loss,
                       ag::mul_scalar(ag::mean(ag::square(ag::sub(
                                          p_tilde[static_cast<std::size_t>(b)],
                                          targets[static_cast<std::size_t>(b)]))),
                                      0.1f));
      }
      opt.zero_grad();
      loss.backward();
      opt.step();
      alm.update(p_tilde);
      final_error = alm.permutation_error(p_tilde);
      if (step == 0 || step == 500 || step == 1000 || step == 1500) {
        checkpoints.push_back(final_error);
      }
    }
    while (checkpoints.size() < 4) checkpoints.push_back(final_error);
    char rho_label[32];
    std::snprintf(rho_label, sizeof(rho_label), "%.0e", rho0);
    table.add_row({rho_label, adept::Table::fmt(checkpoints[0], 4),
                   adept::Table::fmt(checkpoints[1], 4),
                   adept::Table::fmt(checkpoints[2], 4),
                   adept::Table::fmt(checkpoints[3], 4),
                   adept::Table::fmt(final_error, 4),
                   adept::Table::fmt(alm.mean_lambda(), 6),
                   adept::Table::fmt(alm.rho(), 6)});
    std::printf("  rho0=%.0e done (final DeltaP=%.4f)\n", rho0, final_error);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nShape target (paper Fig. 5a): DeltaP decays toward 0 for every rho0;\n"
              "lambda grows faster for larger rho0. Convergence is insensitive to rho0.\n");
  return 0;
}
