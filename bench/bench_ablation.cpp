// Ablation bench for ADEPT's stabilization design choices (paper Sec. 3.3.2
// and Fig. 3; called out in DESIGN.md):
//
//   A. Permutation init: smoothed identity vs uniform vs hard random
//      permutation (paper: random permutations block gradient flow).
//   B. SPL projection: full SPL (softmax -> Procrustes -> perturb -> argmax)
//      vs naive row-argmax rounding, measured by legalization success rate
//      and extra crossings on saddle-ridden relaxed matrices.
//   C. Row/column l2 normalization of the relaxed unitaries: unitarity
//      error of the constructed U with and without it.
#include <cstdio>
#include <iostream>

#include "autograd/complex.h"
#include "autograd/ops.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/alm.h"
#include "core/reparam.h"
#include "core/spl.h"
#include "core/supermesh.h"
#include "optim/optimizer.h"
#include "photonics/permutation.h"

namespace ag = adept::ag;
namespace core = adept::core;
namespace ph = adept::photonics;

namespace {

// --- A: permutation learning from different initializations ---------------
//
// The task pulls P~ toward a target permutation (stand-in for "the
// permutation the NN loss wants"); the ALM enforces legality. A good init
// lets gradients move P to the target; a hard permutation init has zero
// entries (and rounded rows with stopped gradients), so it cannot move —
// exactly the paper's warning. Reported: final MSE(P~, target).
double alm_task_fit(ag::Tensor p_raw, const ag::Tensor& target, int steps) {
  core::AlmConfig config;
  config.rho0 = 1e-6;  // paper-scale rho0: task dominates early, constraint later
  core::AlmState alm(1, p_raw.dim(0), config);
  alm.set_horizon(steps);
  adept::optim::Adam opt({p_raw}, 5e-3);
  double fit = 0;
  for (int s = 0; s < steps; ++s) {
    ag::Tensor p_tilde = core::reparametrize_permutation(p_raw, 0.05f);
    ag::Tensor task = ag::mean(ag::square(ag::sub(p_tilde, target)));
    ag::Tensor loss = ag::add(task, alm.penalty({p_tilde}));
    opt.zero_grad();
    loss.backward();
    opt.step();
    alm.update({p_tilde});
    fit = task.item();
  }
  return fit;
}

ag::Tensor uniform_init(int k) {
  return ag::Tensor::full({k, k}, 1.0f / static_cast<float>(k), true);
}

ag::Tensor hard_random_init(int k, adept::Rng& rng) {
  const auto p = ph::Permutation::random(k, rng);
  std::vector<float> data(static_cast<std::size_t>(k * k), 0.0f);
  for (int i = 0; i < k; ++i) data[static_cast<std::size_t>(i * k + p(i))] = 1.0f;
  return ag::make_tensor(std::move(data), {k, k}, true);
}

// --- B: SPL vs naive rounding ----------------------------------------------
struct LegalizeStats {
  int legal = 0;
  long long extra_crossings = 0;
};

bool naive_round(const ph::RMat& m, ph::Permutation* out) {
  std::vector<int> map(static_cast<std::size_t>(m.rows()), -1);
  std::vector<bool> used(static_cast<std::size_t>(m.rows()), false);
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < m.cols(); ++j) {
      if (m.at(i, j) > m.at(i, best)) best = j;
    }
    if (used[static_cast<std::size_t>(best)]) return false;
    used[static_cast<std::size_t>(best)] = true;
    map[static_cast<std::size_t>(i)] = static_cast<int>(best);
  }
  *out = ph::Permutation(std::move(map));
  return true;
}

ph::RMat saddle_matrix(int k, adept::Rng& rng) {
  // Doubly-stochastic-ish matrix with deliberately tied rows (the Fig. 3
  // saddle pattern): several row pairs share their dominant columns.
  ph::RMat m(k, k);
  for (auto& v : m.data()) v = rng.uniform(0.0, 0.2);
  for (int i = 0; i + 1 < k; i += 2) {
    const int c = rng.uniform_int(0, k - 1);
    m.at(i, c) += 0.7;
    m.at(i + 1, c) += 0.7;  // both rows want column c
  }
  return m;
}

}  // namespace

int main() {
  const int k = 8;
  const int steps = adept::env_int("ADEPT_BENCH_ABL_STEPS", 600);
  adept::Rng rng(3);

  std::printf("Ablation A: permutation init (K=%d, %d ALM steps; final task MSE\n"
              "to a target permutation, lower = the init could be optimized)\n\n",
              k, steps);
  // Target: the reversal permutation (far from identity, far from random).
  const auto target_perm = ph::Permutation::reversal(k);
  std::vector<float> target_data(static_cast<std::size_t>(k * k), 0.0f);
  for (int i = 0; i < k; ++i) {
    target_data[static_cast<std::size_t>(i * k + target_perm(i))] = 1.0f;
  }
  const ag::Tensor target = ag::make_tensor(std::move(target_data), {k, k}, false);
  adept::Table init_table({"init", "final task MSE", "note"});
  init_table.add_row({"smoothed identity (paper)",
                      adept::Table::fmt(alm_task_fit(core::smoothed_identity_init(k, true), target, steps), 4),
                      "gradient flows everywhere"});
  init_table.add_row({"uniform 1/K",
                      adept::Table::fmt(alm_task_fit(uniform_init(k), target, steps), 4),
                      "symmetric saddle"});
  init_table.add_row({"hard random permutation",
                      adept::Table::fmt(alm_task_fit(hard_random_init(k, rng), target, steps), 4),
                      "zero entries block gradients (paper's warning)"});
  init_table.print(std::cout);

  std::printf("\nAblation B: SPL vs naive argmax rounding on %d saddle-ridden "
              "relaxed matrices\n\n", 100);
  LegalizeStats spl_stats, naive_stats;
  for (int trial = 0; trial < 100; ++trial) {
    const ph::RMat m = saddle_matrix(k, rng);
    ph::Permutation p;
    if (naive_round(m, &p)) {
      ++naive_stats.legal;
      naive_stats.extra_crossings += ph::crossing_count(p);
    }
    const auto sp = core::stochastic_permutation_legalization(m, rng);
    ++spl_stats.legal;  // SPL always returns a legal permutation
    spl_stats.extra_crossings += ph::crossing_count(sp);
  }
  adept::Table spl_table({"method", "legal/100", "mean crossings of legal"});
  spl_table.add_row({"naive row-argmax", std::to_string(naive_stats.legal),
                     naive_stats.legal
                         ? adept::Table::fmt(static_cast<double>(naive_stats.extra_crossings) /
                                                 naive_stats.legal, 2)
                         : std::string("-")});
  spl_table.add_row({"SPL (paper)", std::to_string(spl_stats.legal),
                     adept::Table::fmt(static_cast<double>(spl_stats.extra_crossings) / 100.0, 2)});
  spl_table.print(std::cout);

  std::printf("\nAblation C: row/col l2 normalization of relaxed unitaries "
              "(unitarity error of U, lower=more stable)\n\n");
  adept::Table norm_table({"normalization", "unitarity err (mean over 10 draws)"});
  for (bool normalize : {true, false}) {
    double err = 0;
    for (int trial = 0; trial < 10; ++trial) {
      adept::Rng trial_rng(100 + trial);
      core::SuperMeshConfig config;
      config.k = k;
      config.super_blocks_per_unitary = 4;
      config.always_on_per_unitary = 4;  // deterministic chain
      config.normalize_unitaries = normalize;
      core::SuperMesh mesh(config, trial_rng);
      mesh.begin_step(1.0, trial_rng, false);
      std::vector<ag::Tensor> phases;
      for (int b = 0; b < 4; ++b) {
        std::vector<float> phi(static_cast<std::size_t>(k));
        for (auto& p : phi) p = static_cast<float>(trial_rng.uniform(-3.14, 3.14));
        phases.push_back(ag::make_tensor(std::move(phi), {static_cast<std::int64_t>(k)}, false));
      }
      ag::NoGradGuard guard;
      ag::CxTensor u = mesh.tile_unitary(core::Side::u, phases);
      // ||U U^H - I||_max via the complex pair
      ph::CMat cm(k, k);
      for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
          cm.at(i, j) = ph::cplx(u.re.at(i, j), u.im.at(i, j));
        }
      }
      err += cm.unitarity_error();
    }
    norm_table.add_row({normalize ? "row/col l2 norm (paper)" : "off",
                        adept::Table::fmt(err / 10.0, 4)});
  }
  norm_table.print(std::cout);
  std::printf("\nTakeaways (paper Sec. 3.3.2): smoothed-identity init converges where\n"
              "hard-permutation init cannot; SPL always legalizes while naive rounding\n"
              "fails on ties; normalization keeps relaxed unitaries near-unitary.\n");
  return 0;
}
