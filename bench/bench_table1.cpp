// Table 1 reproduction: searched PTCs (ADEPT-a1..a5) vs MZI-ONN vs FFT-ONN
// on AMF PDKs, PTC sizes 8/16/(32), synthetic-MNIST with the 2-layer CNN.
//
// Paper-reported rows are printed alongside measured rows. Absolute
// accuracies differ (synthetic data, reduced scale); the reproduction
// targets are (a) exact baseline censuses/footprints, (b) searched designs
// honoring each footprint band, (c) MZI > ADEPT ~ FFT footprint ordering
// with competitive accuracy.
//
// Default sizes: 8 and 16 (32 with ADEPT_BENCH_FULL=1 or ADEPT_BENCH_K32=1).
#include "backend/parallel.h"
#include "bench_common.h"

namespace ph = adept::photonics;
using adept::Table;
using adept::bench::BenchScale;

namespace {

struct PaperAdeptRow {
  double f_min, f_max, footprint, accuracy;
  const char* census;  // paper #CR/#DC/#Blk
};

// Paper Table 1 values (AMF).
struct PaperSize {
  int k;
  const char* mzi_census;
  double mzi_footprint, mzi_acc;
  const char* fft_census;
  double fft_footprint, fft_acc;
  PaperAdeptRow adept[5];
};

const PaperSize kPaper[] = {
    {8, "0/112/32", 1909, 98.63, "16/24/6", 363, 98.43,
     {{240, 300, 299, 98.26, "24/17/5"},
      {336, 420, 356, 98.49, "17/19/6"},
      {432, 540, 478, 98.56, "26/27/8"},
      {528, 660, 654, 98.48, "27/36/11"},
      {624, 780, 771, 98.69, "33/41/13"}}},
    {16, "0/480/64", 7683, 98.65, "88/64/8", 972, 98.25,
     {{480, 600, 480, 98.16, "45/28/4"},
      {672, 840, 722, 98.40, "68/43/6"},
      {864, 1080, 967, 98.24, "127/59/8"},
      {1056, 1320, 1206, 98.56, "174/71/10"},
      {1248, 1560, 1441, 98.57, "131/85/12"}}},
    {32, "0/1984/128", 30829, 98.68, "416/160/10", 2443, 97.97,
     {{960, 1200, 975, 98.10, "223/60/4"},
      {1344, 1680, 1457, 98.18, "333/87/6"},
      {1728, 2160, 1959, 98.36, "628/178/8"},
      {2112, 2640, 2445, 98.49, "691/150/10"},
      {2496, 3120, 2926, 98.39, "717/179/12"}}},
};

// --json mode: end-to-end search + retrain wall time per PTC size at
// reduced scale, for the perf trajectory. Schema in bench/README.md.
int run_json_report(const std::string& path) {
  namespace be = adept::backend;
  const BenchScale scale = adept::bench::json_scale();
  const ph::Pdk pdk = ph::Pdk::amf();
  const auto spec = adept::data::DatasetSpec::mnist_like();
  adept::data::SyntheticDataset train(spec, scale.train_n, 1);
  adept::data::SyntheticDataset val(spec, scale.test_n, 2);
  adept::data::SyntheticDataset test(spec, scale.test_n, 3);

  adept::bench::JsonReport report("table1");
  for (const auto& paper : kPaper) {
    if (paper.k == 32) continue;  // CPU-minutes; tracked at full scale only
    const auto& band = paper.adept[1];  // a2: mid-range footprint budget
    adept::core::SearchResult result;
    const double search_s = adept::bench::time_once([&] {
      result = adept::bench::run_search(
          paper.k, pdk, band.f_min, band.f_max, scale, train, val,
          static_cast<std::uint64_t>(paper.k * 10 + 1));
    });
    double acc = 0.0;
    const double retrain_s = adept::bench::time_once([&] {
      acc = adept::bench::retrain_accuracy(result.topology, train, test, scale,
                                           201);
    });
    const std::string suffix = "_k" + std::to_string(paper.k);
    report.add({"search" + suffix,
                {{"size", static_cast<double>(paper.k)},
                 {"wall_s", search_s},
                 {"epochs", static_cast<double>(scale.search_epochs)},
                 {"footprint", result.topology.footprint_um2(pdk) / 1000.0}}});
    report.add({"retrain" + suffix,
                {{"size", static_cast<double>(paper.k)},
                 {"wall_s", retrain_s},
                 {"epochs", static_cast<double>(scale.retrain_epochs)},
                 {"accuracy", acc}}});
  }
  if (!report.write(path, be::num_threads())) {
    std::cerr << "bench_table1: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " (threads=" << be::num_threads() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  if (adept::bench::parse_json_flag(argc, argv, "BENCH_table1.json", &json_path)) {
    return run_json_report(json_path);
  }
  const BenchScale scale = BenchScale::from_env();
  const ph::Pdk pdk = ph::Pdk::amf();
  const auto spec = adept::data::DatasetSpec::mnist_like();
  adept::data::SyntheticDataset train(spec, scale.train_n, 1);
  adept::data::SyntheticDataset val(spec, scale.test_n, 2);
  adept::data::SyntheticDataset test(spec, scale.test_n, 3);

  const bool run_k32 =
      adept::bench_full_scale() || adept::env_int("ADEPT_BENCH_K32", 0) == 1;

  std::printf("Table 1: searched PTCs vs manual designs on AMF PDK "
              "(footprints in 1/1000 um^2)\n");
  std::printf("reduced scale: train=%d epochs=%d width=%d (paper: 60k MNIST, "
              "32-wide CNN)\n\n",
              scale.train_n, scale.retrain_epochs, scale.cnn_width);

  for (const auto& paper : kPaper) {
    if (paper.k == 32 && !run_k32) {
      std::printf("[32x32 skipped at reduced scale; set ADEPT_BENCH_K32=1]\n\n");
      continue;
    }
    std::printf("--- PTC size %dx%d ---\n", paper.k, paper.k);
    Table table({"design", "#CR/#DC/#Blk", "[Fmin,Fmax]", "footprint F",
                 "acc(meas)", "paper F", "paper acc"});

    // Baselines: exact constructions, trained through the same pipeline.
    const auto mzi = ph::clements_mzi(paper.k);
    const double mzi_acc =
        adept::bench::retrain_accuracy(mzi, train, test, scale, 101);
    table.add_row({"MZI-ONN", adept::bench::census_str(mzi), "-",
                   Table::fmt(mzi.footprint_um2(pdk) / 1000.0, 0),
                   Table::fmt(mzi_acc * 100, 2), Table::fmt(paper.mzi_footprint, 0),
                   Table::fmt(paper.mzi_acc, 2)});
    const auto fft = ph::butterfly(paper.k);
    const double fft_acc =
        adept::bench::retrain_accuracy(fft, train, test, scale, 102);
    table.add_row({"FFT-ONN", adept::bench::census_str(fft), "-",
                   Table::fmt(fft.footprint_um2(pdk) / 1000.0, 0),
                   Table::fmt(fft_acc * 100, 2), Table::fmt(paper.fft_footprint, 0),
                   Table::fmt(paper.fft_acc, 2)});

    // ADEPT-a1..a5: search under each footprint band, then retrain.
    for (int a = 0; a < 5; ++a) {
      const auto& row = paper.adept[a];
      const auto result = adept::bench::run_search(
          paper.k, pdk, row.f_min, row.f_max, scale, train, val,
          static_cast<std::uint64_t>(paper.k * 10 + a));
      const double acc = adept::bench::retrain_accuracy(result.topology, train, test,
                                                        scale, 200 + a);
      const std::string band = "[" + Table::fmt(row.f_min, 0) + ", " +
                               Table::fmt(row.f_max, 0) + "]";
      table.add_row({"ADEPT-a" + std::to_string(a + 1) + " (" + row.census + ")",
                     adept::bench::census_str(result.topology), band,
                     Table::fmt(result.topology.footprint_um2(pdk) / 1000.0, 0),
                     Table::fmt(acc * 100, 2), Table::fmt(row.footprint, 0),
                     Table::fmt(row.accuracy, 2)});
      std::printf("  searched a%d\n", a + 1);
    }
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
