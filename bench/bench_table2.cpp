// Table 2 reproduction: 16x16 PTCs under the AIM photonics PDK, where a
// waveguide crossing (4900 um^2) costs ~3x a phase shifter. ADEPT must adapt
// by searching crossing-light topologies; MZI/FFT baselines cannot adapt.
#include "bench_common.h"

namespace ph = adept::photonics;
using adept::Table;
using adept::bench::BenchScale;

namespace {

struct PaperRow {
  const char* name;
  double f_min, f_max;  // 0/0 for baselines
  const char* census;
  double footprint, accuracy;
};

const PaperRow kPaper[] = {
    {"MZI-ONN", 0, 0, "0/480/64", 4480, 98.77},
    {"FFT-ONN", 0, 0, "88/64/8", 1007, 98.10},
    {"ADEPT-a0", 384, 480, "15/35/5", 414, 98.15},
    {"ADEPT-a1", 480, 600, "1/58/8", 557, 98.30},
    {"ADEPT-a2", 672, 840, "26/58/8", 679, 98.32},
    {"ADEPT-a3", 864, 1080, "17/92/13", 971, 98.55},
    {"ADEPT-a4", 1056, 1320, "25/99/14", 1079, 98.64},
    {"ADEPT-a5", 1248, 1560, "89/111/16", 1520, 98.72},
};

}  // namespace

int main() {
  const BenchScale scale = BenchScale::from_env();
  const ph::Pdk pdk = ph::Pdk::aim();
  const int k = 16;
  const auto spec = adept::data::DatasetSpec::mnist_like();
  adept::data::SyntheticDataset train(spec, scale.train_n, 1);
  adept::data::SyntheticDataset val(spec, scale.test_n, 2);
  adept::data::SyntheticDataset test(spec, scale.test_n, 3);

  std::printf("Table 2: 16x16 PTCs on AIM photonics PDK "
              "(PS 2500 / DC 4000 / CR 4900 um^2)\n");
  std::printf("reduced scale: train=%d epochs=%d width=%d\n\n", scale.train_n,
              scale.retrain_epochs, scale.cnn_width);

  Table table({"design", "#CR/#DC/#Blk", "[Fmin,Fmax]", "footprint F", "acc(meas)",
               "paper F", "paper acc"});
  int adept_idx = 0;
  for (const auto& row : kPaper) {
    if (row.f_min == 0) {
      const auto topo = std::string(row.name) == "MZI-ONN" ? ph::clements_mzi(k)
                                                           : ph::butterfly(k);
      const double acc = adept::bench::retrain_accuracy(topo, train, test, scale, 301);
      table.add_row({row.name, adept::bench::census_str(topo), "-",
                     Table::fmt(topo.footprint_um2(pdk) / 1000.0, 0),
                     Table::fmt(acc * 100, 2), Table::fmt(row.footprint, 0),
                     Table::fmt(row.accuracy, 2)});
    } else {
      const auto result = adept::bench::run_search(
          k, pdk, row.f_min, row.f_max, scale, train, val,
          static_cast<std::uint64_t>(400 + adept_idx));
      const double acc = adept::bench::retrain_accuracy(result.topology, train, test,
                                                        scale, 500 + adept_idx);
      const std::string band =
          "[" + Table::fmt(row.f_min, 0) + ", " + Table::fmt(row.f_max, 0) + "]";
      table.add_row({std::string(row.name) + " (" + row.census + ")",
                     adept::bench::census_str(result.topology), band,
                     Table::fmt(result.topology.footprint_um2(pdk) / 1000.0, 0),
                     Table::fmt(acc * 100, 2), Table::fmt(row.footprint, 0),
                     Table::fmt(row.accuracy, 2)});
      ++adept_idx;
    }
    std::printf("  finished %s\n", row.name);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nShape check: searched designs should use far fewer crossings than\n"
              "under AMF (bench_table1) because AIM crossings cost 77x more.\n");
  return 0;
}
