// google-benchmark microbenchmarks of the computational kernels underneath
// the ADEPT stack: complex matmul, mesh transfer simulation, crossing
// counting, SVD/Procrustes, SPL, permutation reparametrization, and one full
// autograd training step of the matrix-fit proxy.
//
// `bench_kernels --json [path]` instead emits BENCH_kernels.json comparing
// the pre-port naive loops against the src/backend kernels (GFLOP/s and
// speedup per shape); see bench/README.md for the schema.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autograd/complex.h"
#include "autograd/ops.h"
#include "backend/dispatch.h"
#include "backend/kernels.h"
#include "backend/parallel.h"
#include "bench_common.h"
#include "common/rng.h"
#include "core/reparam.h"
#include "core/spl.h"
#include "core/supermesh.h"
#include "nn/onn_layers.h"
#include "optim/optimizer.h"
#include "photonics/builders.h"
#include "photonics/linalg.h"

namespace ag = adept::ag;
namespace be = adept::backend;
namespace core = adept::core;
namespace nn = adept::nn;
namespace ph = adept::photonics;

namespace {

ag::Tensor random_tensor(std::vector<std::int64_t> shape, adept::Rng& rng,
                         bool rg = false) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
  return ag::make_tensor(std::move(data), std::move(shape), rg);
}

// ---- pre-port baselines (the seed's hand loops, kept for before/after) ----

// The seed's ikj loop with the zero-skip shortcut (src/autograd/ops.cpp
// before the backend port).
void naive_matmul(const float* a, const float* b, float* c, std::int64_t n,
                  std::int64_t k, std::int64_t m) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(n * m));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = &b[kk * m];
      float* crow = &c[i * m];
      for (std::int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// The seed's matmul backward for dA = dO @ B^T, which walked B column-wise
// instead of using a transpose-variant gemm.
void naive_matmul_bt(const float* g, const float* b, float* c, std::int64_t n,
                     std::int64_t k, std::int64_t m) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(n * k));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) {
      const float gv = g[i * m + j];
      if (gv == 0.0f) continue;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        c[i * k + kk] += gv * b[kk * m + j];
      }
    }
  }
}

void naive_sigmoid(const float* a, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = 1.0f / (1.0f + std::exp(-a[i]));
}

void BM_RealMatmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  adept::Rng rng(1);
  ag::Tensor a = random_tensor({n, n}, rng);
  ag::Tensor b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_RealMatmul)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_BackendGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  adept::Rng rng(1);
  ag::Tensor a = random_tensor({n, n}, rng);
  ag::Tensor b = random_tensor({n, n}, rng);
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    be::gemm(be::Trans::N, be::Trans::N, n, n, n, 1.0f, a.data().data(), n,
             b.data().data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_BackendGemm)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ComplexMatmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  adept::Rng rng(2);
  ag::CxTensor a = {random_tensor({n, n}, rng), random_tensor({n, n}, rng)};
  ag::CxTensor b = {random_tensor({n, n}, rng), random_tensor({n, n}, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::cmatmul(a, b).re.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n * n);
}
BENCHMARK(BM_ComplexMatmul)->Arg(8)->Arg(16)->Arg(32);

void BM_MeshTransfer(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto topo = ph::butterfly(k);
  adept::Rng rng(3);
  ph::MeshPhases phases;
  for (std::size_t b = 0; b < topo.u_blocks.size(); ++b) {
    std::vector<double> phi(static_cast<std::size_t>(k));
    for (auto& p : phi) p = rng.uniform(-3.14, 3.14);
    phases.per_block.push_back(phi);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::mesh_transfer(topo.u_blocks, k, phases).data().data());
  }
}
BENCHMARK(BM_MeshTransfer)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ClementsTransfer(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto topo = ph::clements_mzi(k);
  adept::Rng rng(4);
  ph::MeshPhases phases;
  for (std::size_t b = 0; b < topo.u_blocks.size(); ++b) {
    std::vector<double> phi(static_cast<std::size_t>(k));
    for (auto& p : phi) p = rng.uniform(-3.14, 3.14);
    phases.per_block.push_back(phi);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::mesh_transfer(topo.u_blocks, k, phases).data().data());
  }
}
BENCHMARK(BM_ClementsTransfer)->Arg(8)->Arg(16)->Arg(32);

void BM_CrossingCount(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  adept::Rng rng(5);
  const auto p = ph::Permutation::random(k, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::crossing_count(p));
  }
}
BENCHMARK(BM_CrossingCount)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_JacobiSvd(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  adept::Rng rng(6);
  ph::RMat m(n, n);
  for (auto& v : m.data()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::jacobi_svd(m).s.data());
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(8)->Arg(16)->Arg(32);

void BM_Spl(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  adept::Rng rng(7);
  ph::RMat m(k, k);
  for (auto& v : m.data()) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    adept::Rng inner(11);
    benchmark::DoNotOptimize(
        core::stochastic_permutation_legalization(m, inner).map().data());
  }
}
BENCHMARK(BM_Spl)->Arg(8)->Arg(16)->Arg(32);

void BM_PermReparam(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  ag::Tensor p = core::smoothed_identity_init(k, true);
  for (auto _ : state) {
    ag::Tensor out = core::reparametrize_permutation(p, 0.05f);
    ag::Tensor loss = ag::sum(ag::square(out));
    loss.backward();
    p.zero_grad();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_PermReparam)->Arg(8)->Arg(16)->Arg(32);

void BM_SuperMeshTrainStep(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  adept::Rng rng(8);
  core::SuperMeshConfig config;
  config.k = k;
  config.super_blocks_per_unitary = 4;
  config.always_on_per_unitary = 1;
  core::SuperMesh mesh(config, rng);
  std::vector<ag::Tensor> phases;
  for (int b = 0; b < 4; ++b) phases.push_back(random_tensor({k}, rng, true));
  auto params = mesh.topology_weights();
  for (auto& p : phases) params.push_back(p);
  adept::optim::Adam opt(params, 1e-3);
  for (auto _ : state) {
    mesh.begin_step(1.0, rng, true);
    ag::CxTensor u = mesh.tile_unitary(core::Side::u, phases);
    ag::Tensor loss = ag::add(ag::sum(ag::square(u.re)), ag::sum(ag::square(u.im)));
    opt.zero_grad();
    loss.backward();
    opt.step();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_SuperMeshTrainStep)->Arg(8)->Arg(16);

// ---- --json mode: before/after GFLOP/s for the perf trajectory ------------

// Each record times the backend twice: pinned to one thread (kernel quality,
// comparable across runners with different core counts) and at the
// configured thread count (what production sees). Baselines are the seed's
// serial loops, so `speedup_serial` isolates the kernel win from threading.
struct BackendTiming {
  double serial_s;
  double threaded_s;
};

template <typename Fn>
BackendTiming time_backend(Fn&& fn) {
  BackendTiming t{};
  {
    be::ThreadScope one(1);
    t.serial_s = adept::bench::time_best(fn);
  }
  t.threaded_s = adept::bench::time_best(fn);
  return t;
}

adept::bench::JsonRecord make_record(const std::string& name, double size,
                                     double work, double t_naive,
                                     const BackendTiming& t) {
  return {name,
          {{"size", size},
           {"baseline_gflops", work / t_naive * 1e-9},
           {"backend_serial_gflops", work / t.serial_s * 1e-9},
           {"backend_gflops", work / t.threaded_s * 1e-9},
           {"speedup_serial", t_naive / t.serial_s},
           {"speedup", t_naive / t.threaded_s}}};
}

adept::bench::JsonRecord gemm_record(std::int64_t n) {
  adept::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  const double t_naive = adept::bench::time_best(
      [&] { naive_matmul(a.data(), b.data(), c.data(), n, n, n); });
  const auto t = time_backend([&] {
    be::gemm(be::Trans::N, be::Trans::N, n, n, n, 1.0f, a.data(), n, b.data(),
             n, 0.0f, c.data(), n);
  });
  return make_record("gemm_f32", static_cast<double>(n), flops, t_naive, t);
}

adept::bench::JsonRecord gemm_bt_record(std::int64_t n) {
  adept::Rng rng(2);
  std::vector<float> g(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : g) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  const double t_naive = adept::bench::time_best(
      [&] { naive_matmul_bt(g.data(), b.data(), c.data(), n, n, n); });
  const auto t = time_backend([&] {
    be::gemm(be::Trans::N, be::Trans::T, n, n, n, 1.0f, g.data(), n, b.data(),
             n, 0.0f, c.data(), n);
  });
  return make_record("gemm_f32_bt", static_cast<double>(n), flops, t_naive, t);
}

// The seed's cmatmul lowering: four naive real matmuls + two elementwise
// combines into freshly allocated planes.
void naive_cmatmul(const float* ar, const float* ai, const float* br,
                   const float* bi, float* cr, float* ci, std::int64_t n,
                   std::vector<float>& t1, std::vector<float>& t2) {
  naive_matmul(ar, br, cr, n, n, n);
  naive_matmul(ai, bi, t1.data(), n, n, n);
  naive_matmul(ar, bi, ci, n, n, n);
  naive_matmul(ai, br, t2.data(), n, n, n);
  for (std::int64_t i = 0; i < n * n; ++i) {
    cr[i] -= t1[static_cast<std::size_t>(i)];
    ci[i] += t2[static_cast<std::size_t>(i)];
  }
}

adept::bench::JsonRecord cgemm_record(std::int64_t n) {
  adept::Rng rng(5);
  const std::size_t nn = static_cast<std::size_t>(n * n);
  std::vector<float> ar(nn), ai(nn), br(nn), bi(nn), cr(nn), ci(nn), t1(nn), t2(nn);
  for (auto* v : {&ar, &ai, &br, &bi}) {
    for (auto& x : *v) x = static_cast<float>(rng.uniform(-1, 1));
  }
  const double flops = 8.0 * static_cast<double>(n) * n * n;
  const double t_naive = adept::bench::time_best([&] {
    naive_cmatmul(ar.data(), ai.data(), br.data(), bi.data(), cr.data(),
                  ci.data(), n, t1, t2);
  });
  const auto t = time_backend([&] {
    be::cgemm(be::CTrans::N, be::CTrans::N, n, n, n, ar.data(), ai.data(), n,
              br.data(), bi.data(), n, 0.0f, cr.data(), ci.data(), n);
  });
  return make_record("cgemm_f32", static_cast<double>(n), flops, t_naive, t);
}

adept::bench::JsonRecord gemm_batched_record() {
  // Trainer-shaped stack: 24 mini-batches of [16, 256] against a shared
  // [256, 10] classifier head.
  const std::int64_t batch = 24, m = 16, k = 256, n = 10;
  adept::Rng rng(6);
  std::vector<float> a(static_cast<std::size_t>(batch * m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(batch * m * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  const double flops = 2.0 * static_cast<double>(batch) * m * k * n;
  // Baseline: one naive 2-D matmul dispatch per mini-batch (the pre-port
  // trainer pattern).
  const double t_naive = adept::bench::time_best([&] {
    for (std::int64_t bi = 0; bi < batch; ++bi) {
      naive_matmul(a.data() + bi * m * k, b.data(), c.data() + bi * m * n, m,
                   k, n);
    }
  });
  const auto t = time_backend([&] {
    be::gemm_batched(batch, m, n, k, a.data(), m * k, k, be::Trans::N,
                     b.data(), n, 0.0f, c.data(), m * n, n);
  });
  return make_record("gemm_f32_batched", static_cast<double>(batch), flops,
                     t_naive, t);
}

// Acceptance micro-bench: forward+backward through a B-block complex block
// chain at K=32 — the tile_unitary hot loop. Baseline is the seed's
// composition (phase_column + 4-real-gemm cmatmul + dense P matmuls +
// cscale/cadd mixing); backend is the fused block_transfer/cmix/cmatmul
// path. `*_gflops` fields report chain iterations per second.
adept::bench::JsonRecord cchain_record(std::int64_t k, int blocks) {
  adept::Rng rng(7);
  std::vector<ag::Tensor> p, phi, skip, sel;
  std::vector<ag::CxTensor> t;
  for (int b = 0; b < blocks; ++b) {
    p.push_back(random_tensor({k, k}, rng, true));
    t.push_back({random_tensor({k, k}, rng, true), random_tensor({k, k}, rng, true)});
    phi.push_back(random_tensor({k}, rng, true));
    skip.push_back(ag::Tensor::scalar(0.3f, true));
    sel.push_back(ag::Tensor::scalar(0.7f, true));
  }
  auto zero_all = [&] {
    for (auto& v : p) v.zero_grad();
    for (auto& v : phi) v.zero_grad();
    for (auto& v : skip) v.zero_grad();
    for (auto& v : sel) v.zero_grad();
    for (auto& v : t) {
      v.re.zero_grad();
      v.im.zero_grad();
    }
  };
  auto head = [](const ag::CxTensor& acc) {
    return ag::add(ag::sum(ag::square(acc.re)), ag::sum(ag::square(acc.im)));
  };
  auto run_baseline = [&] {
    ag::CxTensor acc = ag::CxTensor::eye(k);
    ag::CxTensor eye = ag::CxTensor::eye(k);
    for (int b = 0; b < blocks; ++b) {
      ag::CxTensor r = ag::phase_column(phi[static_cast<std::size_t>(b)]);
      ag::CxTensor tr = ag::cmatmul_unfused(t[static_cast<std::size_t>(b)], r);
      ag::CxTensor block = {ag::matmul(p[static_cast<std::size_t>(b)], tr.re),
                            ag::matmul(p[static_cast<std::size_t>(b)], tr.im)};
      ag::CxTensor mixed =
          ag::cadd(ag::cscale(eye, skip[static_cast<std::size_t>(b)]),
                   ag::cscale(block, sel[static_cast<std::size_t>(b)]));
      acc = ag::cmatmul_unfused(mixed, acc);
    }
    head(acc).backward();
    zero_all();
  };
  auto run_fused = [&] {
    ag::CxTensor acc = ag::CxTensor::eye(k);
    for (int b = 0; b < blocks; ++b) {
      ag::CxTensor block =
          ag::block_transfer(p[static_cast<std::size_t>(b)],
                             t[static_cast<std::size_t>(b)],
                             phi[static_cast<std::size_t>(b)]);
      ag::CxTensor mixed = ag::cmix_identity(skip[static_cast<std::size_t>(b)],
                                             sel[static_cast<std::size_t>(b)], block);
      acc = ag::cmatmul(mixed, acc);
    }
    head(acc).backward();
    zero_all();
  };
  double t_naive;
  {
    be::ThreadScope one(1);
    t_naive = adept::bench::time_best(run_baseline);
  }
  const auto t_f = time_backend(run_fused);
  return make_record("cchain_fwdbwd", static_cast<double>(k), 1.0, t_naive, t_f);
}

adept::bench::JsonRecord cgemm_batched_record() {
  // Mesh-shaped stack: 16 tiles of [16,16] advancing one block of a shared
  // chain. Baseline is one cgemm dispatch per tile (the per-tile
  // weight_expr pattern); backend is a single cgemm_batched over the stack.
  const std::int64_t tiles = 16, k = 16;
  adept::Rng rng(9);
  const std::size_t kk = static_cast<std::size_t>(k * k);
  const std::size_t tkk = static_cast<std::size_t>(tiles) * kk;
  std::vector<float> ar(tkk), ai(tkk), br(tkk), bi(tkk), cr(tkk), ci(tkk);
  for (auto* v : {&ar, &ai, &br, &bi}) {
    for (auto& x : *v) x = static_cast<float>(rng.uniform(-1, 1));
  }
  const double flops = 8.0 * static_cast<double>(tiles) * k * k * k;
  const double t_naive = adept::bench::time_best([&] {
    for (std::int64_t t = 0; t < tiles; ++t) {
      be::cgemm(be::CTrans::N, be::CTrans::N, k, k, k, ar.data() + t * kk,
                ai.data() + t * kk, k, br.data() + t * kk, bi.data() + t * kk,
                k, 0.0f, cr.data() + t * kk, ci.data() + t * kk, k);
    }
  });
  const auto t = time_backend([&] {
    be::cgemm_batched(be::CTrans::N, be::CTrans::N, tiles, k, k, k, ar.data(),
                      ai.data(), kk, k, br.data(), bi.data(), kk, k, 0.0f,
                      cr.data(), ci.data(), kk, k);
  });
  return make_record("cgemm_f32_batched", static_cast<double>(tiles), flops,
                     t_naive, t);
}

// Multi-tile weight build: forward tape construction of a 64x64 ONN weight
// on a K=16 butterfly topology (16 tiles sharing the topology). Baseline is
// the per-tile path (one [K,K] chain per tile); backend is the batched path
// (one [T,K,K] node per chain stage). `*_gflops` fields report weight
// builds per second.
adept::bench::JsonRecord weight_expr_record() {
  adept::Rng rng(10);
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(16));
  nn::PtcWeight w(64, 64, nn::PtcBinding::fixed(topo), rng);
  double t_naive;
  {
    be::ThreadScope one(1);
    t_naive = adept::bench::time_best(
        [&] { benchmark::DoNotOptimize(w.weight_expr_per_tile().data().data()); });
  }
  const auto t = time_backend(
      [&] { benchmark::DoNotOptimize(w.weight_expr().data().data()); });
  return make_record("weight_expr", 16, 1.0, t_naive, t);
}

adept::bench::JsonRecord map_record(std::size_t n) {
  adept::Rng rng(3);
  std::vector<float> a(n), out(n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-4, 4));
  const double t_naive =
      adept::bench::time_best([&] { naive_sigmoid(a.data(), out.data(), n); });
  const auto t = time_backend([&] {
    be::map(n, a.data(), out.data(),
            [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  });
  return make_record("map_sigmoid", static_cast<double>(n),
                     static_cast<double>(n), t_naive, t);
}

adept::bench::JsonRecord im2col_record() {
  // Dims come through env_int so the baseline loop sees runtime values, the
  // same conditions the autograd op ran under before the port (a literal-dim
  // baseline would let the compiler fully unroll the tap loops and compare a
  // specialized kernel against a general one).
  const std::int64_t n = adept::env_int("ADEPT_BENCH_IM2COL_N", 8);
  const std::int64_t c = adept::env_int("ADEPT_BENCH_IM2COL_C", 8);
  const std::int64_t h = adept::env_int("ADEPT_BENCH_IM2COL_HW", 32);
  const std::int64_t kh = adept::env_int("ADEPT_BENCH_IM2COL_K", 3);
  const std::int64_t w = h, kw = kh, stride = 1, pad = 1;
  adept::Rng rng(4);
  std::vector<float> x(static_cast<std::size_t>(n * c * h * w));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  const std::int64_t cols = c * kh * kw;
  std::vector<float> out(static_cast<std::size_t>(n * oh * ow * cols));
  // Seed-style serial gather as the baseline.
  const double t_naive = adept::bench::time_best([&] {
    std::fill(out.begin(), out.end(), 0.0f);
    for (std::int64_t ni = 0; ni < n; ++ni)
      for (std::int64_t yo = 0; yo < oh; ++yo)
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          const std::int64_t row = (ni * oh + yo) * ow + xo;
          for (std::int64_t ci = 0; ci < c; ++ci)
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t yi = yo * stride - pad + ky;
              if (yi < 0 || yi >= h) continue;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t xi = xo * stride - pad + kx;
                if (xi < 0 || xi >= w) continue;
                out[static_cast<std::size_t>(row * cols + (ci * kh + ky) * kw + kx)] =
                    x[static_cast<std::size_t>(((ni * c + ci) * h + yi) * w + xi)];
              }
            }
        }
  });
  const auto t = time_backend(
      [&] { be::im2col(x.data(), n, c, h, w, kh, kw, stride, pad, out.data()); });
  const double elems = static_cast<double>(n * oh * ow * cols);
  return make_record("im2col", static_cast<double>(h), elems, t_naive, t);
}

// ---- per-dispatch-level records --------------------------------------------
//
// One record per available SIMD level per kernel, all pinned to one thread.
// The baseline is the *scalar dispatch level* (the pre-SIMD blocked kernel),
// so `speedup_serial` of a `_avx2`/`_avx512` record is exactly the
// microkernel-vs-blocked-kernel win the acceptance criterion tracks.
template <typename Fn>
double time_serial_at(be::SimdLevel level, Fn&& fn) {
  be::SimdScope simd(level);
  be::ThreadScope one(1);
  return adept::bench::time_best(fn);
}

template <typename Fn>
void add_level_records(adept::bench::JsonReport& report, const char* base,
                       double size, double work, Fn&& fn) {
  const double t_scalar = time_serial_at(be::SimdLevel::scalar, fn);
  for (be::SimdLevel level : be::available_simd_levels()) {
    // The scalar record reuses the baseline timing: definitional 1.0x
    // rather than a second measurement's noise.
    const double t = level == be::SimdLevel::scalar
                         ? t_scalar
                         : time_serial_at(level, fn);
    report.add({std::string(base) + "_" + be::simd_level_name(level),
                {{"size", size},
                 {"baseline_gflops", work / t_scalar * 1e-9},
                 {"backend_serial_gflops", work / t * 1e-9},
                 {"speedup_serial", t_scalar / t}}});
  }
}

void add_simd_level_records(adept::bench::JsonReport& report) {
  adept::Rng rng(12);
  {
    const std::int64_t n = 256;
    const std::size_t nn = static_cast<std::size_t>(n * n);
    auto a = std::make_shared<std::vector<float>>(nn);
    auto b = std::make_shared<std::vector<float>>(nn);
    auto c = std::make_shared<std::vector<float>>(nn);
    for (auto* v : {a.get(), b.get()}) {
      for (auto& x : *v) x = static_cast<float>(rng.uniform(-1, 1));
    }
    add_level_records(report, "gemm_f32", static_cast<double>(n),
                      2.0 * static_cast<double>(n) * n * n, [=] {
                        be::gemm(be::Trans::N, be::Trans::N, n, n, n, 1.0f,
                                 a->data(), n, b->data(), n, 0.0f, c->data(), n);
                      });
  }
  {
    const std::int64_t n = 64;
    const std::size_t nn = static_cast<std::size_t>(n * n);
    auto ar = std::make_shared<std::vector<float>>(nn);
    auto ai = std::make_shared<std::vector<float>>(nn);
    auto br = std::make_shared<std::vector<float>>(nn);
    auto bi = std::make_shared<std::vector<float>>(nn);
    auto cr = std::make_shared<std::vector<float>>(nn);
    auto ci = std::make_shared<std::vector<float>>(nn);
    for (auto* v : {ar.get(), ai.get(), br.get(), bi.get()}) {
      for (auto& x : *v) x = static_cast<float>(rng.uniform(-1, 1));
    }
    add_level_records(report, "cgemm_f32", static_cast<double>(n),
                      8.0 * static_cast<double>(n) * n * n, [=] {
                        be::cgemm(be::CTrans::N, be::CTrans::N, n, n, n,
                                  ar->data(), ai->data(), n, br->data(),
                                  bi->data(), n, 0.0f, cr->data(), ci->data(),
                                  n);
                      });
    // Same operands through the phased real-complex product (dense A).
    auto p = std::make_shared<std::vector<float>>(nn);
    auto cc = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n));
    auto ss = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n));
    for (auto& x : *p) x = static_cast<float>(rng.uniform(-1, 1));
    for (std::int64_t j = 0; j < n; ++j) {
      const float phi = static_cast<float>(rng.uniform(-3.0, 3.0));
      (*cc)[static_cast<std::size_t>(j)] = std::cos(phi);
      (*ss)[static_cast<std::size_t>(j)] = std::sin(phi);
    }
    add_level_records(report, "rcgemm_f32", static_cast<double>(n),
                      4.0 * static_cast<double>(n) * n * n, [=] {
                        be::rcgemm(be::Trans::N, n, n, n, p->data(), n,
                                   br->data(), bi->data(), n, 0.0f, cr->data(),
                                   ci->data(), n, cc->data(), ss->data());
                      });
  }
  {
    const std::int64_t tiles = 16, k = 16;
    const std::size_t kk = static_cast<std::size_t>(k * k);
    const std::size_t tkk = static_cast<std::size_t>(tiles) * kk;
    auto ar = std::make_shared<std::vector<float>>(tkk);
    auto ai = std::make_shared<std::vector<float>>(tkk);
    auto br = std::make_shared<std::vector<float>>(tkk);
    auto bi = std::make_shared<std::vector<float>>(tkk);
    auto cr = std::make_shared<std::vector<float>>(tkk);
    auto ci = std::make_shared<std::vector<float>>(tkk);
    for (auto* v : {ar.get(), ai.get(), br.get(), bi.get()}) {
      for (auto& x : *v) x = static_cast<float>(rng.uniform(-1, 1));
    }
    add_level_records(report, "cgemm_f32_batched", static_cast<double>(tiles),
                      8.0 * static_cast<double>(tiles) * k * k * k, [=] {
                        be::cgemm_batched(be::CTrans::N, be::CTrans::N, tiles,
                                          k, k, k, ar->data(), ai->data(), kk,
                                          k, br->data(), bi->data(), kk, k,
                                          0.0f, cr->data(), ci->data(), kk, k);
                      });
  }
  {
    // Double-precision photonics gemms (mesh-transfer chains, unitary
    // legalization in photonics/linalg.cpp). The scalar level IS the
    // pre-refactor zero-skipping blocked loop, bit for bit, so the
    // `speedup_serial` of the avx records is exactly the win from folding
    // these shapes onto the dispatched vec4d microkernels. Dense random
    // operands keep the density probe on the dispatch path (permutation
    // operands deliberately stay scalar).
    const std::int64_t n = 96;
    const std::size_t nn = static_cast<std::size_t>(n * n);
    auto a = std::make_shared<std::vector<double>>(nn);
    auto b = std::make_shared<std::vector<double>>(nn);
    auto c = std::make_shared<std::vector<double>>(nn);
    for (auto* v : {a.get(), b.get()}) {
      for (auto& x : *v) x = rng.uniform(-1, 1);
    }
    add_level_records(report, "gemm_f64", static_cast<double>(n),
                      2.0 * static_cast<double>(n) * n * n, [=] {
                        be::gemm(be::Trans::N, be::Trans::N, n, n, n, 1.0,
                                 a->data(), n, b->data(), n, 0.0, c->data(), n);
                      });
    auto za = std::make_shared<std::vector<std::complex<double>>>(nn);
    auto zb = std::make_shared<std::vector<std::complex<double>>>(nn);
    auto zc = std::make_shared<std::vector<std::complex<double>>>(nn);
    for (auto* v : {za.get(), zb.get()}) {
      for (auto& x : *v) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
    add_level_records(
        report, "zgemm_f64", static_cast<double>(n),
        8.0 * static_cast<double>(n) * n * n, [=] {
          be::gemm(be::Trans::N, be::Trans::T, n, n, n,
                   std::complex<double>{1.0, 0.0}, za->data(), n, zb->data(),
                   n, std::complex<double>{0.0, 0.0}, zc->data(), n);
        });
  }
  {
    // Elementwise transcendentals: *_gflops fields are elements/s here.
    const std::int64_t n = 1 << 16;
    auto x = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n));
    auto c = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n));
    auto s = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n));
    for (auto& v : *x) v = static_cast<float>(rng.uniform(-6.28, 6.28));
    add_level_records(report, "sincos_f32", static_cast<double>(n),
                      static_cast<double>(n),
                      [=] { be::sincos(n, x->data(), c->data(), s->data()); });
    const std::int64_t rows = 512, cols = 64;
    auto sm_in = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(rows * cols));
    auto sm_out = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(rows * cols));
    for (auto& v : *sm_in) v = static_cast<float>(rng.uniform(-8.0, 8.0));
    add_level_records(report, "softmax_rows", static_cast<double>(cols),
                      static_cast<double>(rows * cols), [=] {
                        be::softmax_rows(rows, cols, sm_in->data(),
                                         sm_out->data());
                      });
  }
}

int run_json_report(const std::string& path) {
  adept::bench::JsonReport report("kernels");
  for (std::int64_t n : {64, 128, 256}) report.add(gemm_record(n));
  for (std::int64_t n : {64, 128, 256}) report.add(gemm_bt_record(n));
  for (std::int64_t n : {16, 32, 64}) report.add(cgemm_record(n));
  report.add(gemm_batched_record());
  report.add(cgemm_batched_record());
  report.add(cchain_record(32, 4));
  report.add(weight_expr_record());
  report.add(map_record(1u << 20));
  report.add(im2col_record());
  add_simd_level_records(report);
  if (!report.write(path, be::num_threads())) {
    std::cerr << "bench_kernels: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " (threads=" << be::num_threads() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  if (adept::bench::parse_json_flag(argc, argv, "BENCH_kernels.json", &json_path)) {
    return run_json_report(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
