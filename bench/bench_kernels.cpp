// google-benchmark microbenchmarks of the computational kernels underneath
// the ADEPT stack: complex matmul, mesh transfer simulation, crossing
// counting, SVD/Procrustes, SPL, permutation reparametrization, and one full
// autograd training step of the matrix-fit proxy.
#include <benchmark/benchmark.h>

#include "autograd/complex.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "core/reparam.h"
#include "core/spl.h"
#include "core/supermesh.h"
#include "optim/optimizer.h"
#include "photonics/builders.h"
#include "photonics/linalg.h"

namespace ag = adept::ag;
namespace core = adept::core;
namespace ph = adept::photonics;

namespace {

ag::Tensor random_tensor(std::vector<std::int64_t> shape, adept::Rng& rng,
                         bool rg = false) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
  return ag::make_tensor(std::move(data), std::move(shape), rg);
}

void BM_RealMatmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  adept::Rng rng(1);
  ag::Tensor a = random_tensor({n, n}, rng);
  ag::Tensor b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_RealMatmul)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ComplexMatmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  adept::Rng rng(2);
  ag::CxTensor a = {random_tensor({n, n}, rng), random_tensor({n, n}, rng)};
  ag::CxTensor b = {random_tensor({n, n}, rng), random_tensor({n, n}, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::cmatmul(a, b).re.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n * n);
}
BENCHMARK(BM_ComplexMatmul)->Arg(8)->Arg(16)->Arg(32);

void BM_MeshTransfer(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto topo = ph::butterfly(k);
  adept::Rng rng(3);
  ph::MeshPhases phases;
  for (std::size_t b = 0; b < topo.u_blocks.size(); ++b) {
    std::vector<double> phi(static_cast<std::size_t>(k));
    for (auto& p : phi) p = rng.uniform(-3.14, 3.14);
    phases.per_block.push_back(phi);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::mesh_transfer(topo.u_blocks, k, phases).data().data());
  }
}
BENCHMARK(BM_MeshTransfer)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ClementsTransfer(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto topo = ph::clements_mzi(k);
  adept::Rng rng(4);
  ph::MeshPhases phases;
  for (std::size_t b = 0; b < topo.u_blocks.size(); ++b) {
    std::vector<double> phi(static_cast<std::size_t>(k));
    for (auto& p : phi) p = rng.uniform(-3.14, 3.14);
    phases.per_block.push_back(phi);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::mesh_transfer(topo.u_blocks, k, phases).data().data());
  }
}
BENCHMARK(BM_ClementsTransfer)->Arg(8)->Arg(16)->Arg(32);

void BM_CrossingCount(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  adept::Rng rng(5);
  const auto p = ph::Permutation::random(k, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::crossing_count(p));
  }
}
BENCHMARK(BM_CrossingCount)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_JacobiSvd(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  adept::Rng rng(6);
  ph::RMat m(n, n);
  for (auto& v : m.data()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph::jacobi_svd(m).s.data());
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(8)->Arg(16)->Arg(32);

void BM_Spl(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  adept::Rng rng(7);
  ph::RMat m(k, k);
  for (auto& v : m.data()) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    adept::Rng inner(11);
    benchmark::DoNotOptimize(
        core::stochastic_permutation_legalization(m, inner).map().data());
  }
}
BENCHMARK(BM_Spl)->Arg(8)->Arg(16)->Arg(32);

void BM_PermReparam(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  ag::Tensor p = core::smoothed_identity_init(k, true);
  for (auto _ : state) {
    ag::Tensor out = core::reparametrize_permutation(p, 0.05f);
    ag::Tensor loss = ag::sum(ag::square(out));
    loss.backward();
    p.zero_grad();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_PermReparam)->Arg(8)->Arg(16)->Arg(32);

void BM_SuperMeshTrainStep(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  adept::Rng rng(8);
  core::SuperMeshConfig config;
  config.k = k;
  config.super_blocks_per_unitary = 4;
  config.always_on_per_unitary = 1;
  core::SuperMesh mesh(config, rng);
  std::vector<ag::Tensor> phases;
  for (int b = 0; b < 4; ++b) phases.push_back(random_tensor({k}, rng, true));
  auto params = mesh.topology_weights();
  for (auto& p : phases) params.push_back(p);
  adept::optim::Adam opt(params, 1e-3);
  for (auto _ : state) {
    mesh.begin_step(1.0, rng, true);
    ag::CxTensor u = mesh.tile_unitary(core::Side::u, phases);
    ag::Tensor loss = ag::add(ag::sum(ag::square(u.re)), ag::sum(ag::square(u.im)));
    opt.zero_grad();
    loss.backward();
    opt.step();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_SuperMeshTrainStep)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
