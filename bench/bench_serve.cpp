// Serving-path benchmark: tape-based eval vs the compiled tape-free engine,
// the int8 quantized plan, and steady-state server throughput under
// concurrent micro-batching.
//
//   offline single-stream   batch-1 latency of model.forward (eval mode,
//                           NoGradGuard, cached eval weights) vs
//                           CompiledModel::run (fp32 planned) vs the int8
//                           quantized plan — acceptance bars: compiled
//                           faster than tape, quantized >= 1.5x compiled.
//                           (At this model size the forward is gemm-bound,
//                           so compiled-vs-tape lands ~1.3-1.4x — the tape's
//                           per-op allocations amortize; the old 2x figure
//                           was the PR-5-era tiny model, where they did
//                           not.)
//   plan footprint          planned vs unplanned workspace bytes at the
//                           serving batch (the liveness planner's memory
//                           win) plus process peak RSS.
//   accuracy                top-1 on a held-out synthetic eval set, fp32 vs
//                           int8, after a short training run so top-1 is
//                           meaningful (quant_top1_delta = fp32 - int8).
//   steady-state serving    QPS, micro-batch fill rate, and p50/p99 request
//                           latency at 1/4/8 worker threads for a fixed
//                           request pile; one extra record serves the
//                           quantized plan at 4 threads.
//   execution contexts      the same fp32 model frozen once per device tag
//                           (ADEPT_DEVICE values: serial / threaded), each
//                           measured single-stream (batch 1, one caller) and
//                           served at 8 workers. The pair quantifies the
//                           routing trade the device tags express: how much
//                           each kernel launch gains from fanning out, and
//                           how far worker-level parallelism substitutes for
//                           kernel-level parallelism on the current host
//                           (the answer shifts with core count vs model
//                           size, which is why it is measured, not assumed).
//   overload                4 producers flood a small-queue 2-worker server
//                           (offered load far beyond capacity, 250 ms
//                           deadlines) once per overload policy. Records
//                           goodput (completed-before-deadline per second),
//                           reject/shed/deadline-miss rates, and accepted-
//                           request p99. The demonstration: `reject` and
//                           `shed_oldest` keep accepted p99 bounded by the
//                           queue, while `block` admits everything and its
//                           p99 grows with the whole backlog (latency is
//                           measured from the submit() call, so time spent
//                           blocked on the full queue counts — that is the
//                           client-observed wait).
//
// `--json [path]` emits BENCH_serve.json for the perf trajectory (schema in
// docs/benchmarks.md). Scale knobs:
//   ADEPT_BENCH_SERVE_N   requests per serving measurement (default 384,
//                         full scale 4096)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "backend/context.h"
#include "backend/parallel.h"
#include "bench_common.h"
#include "common/table.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "nn/train.h"
#include "obs/metrics.h"
#include "photonics/builders.h"
#include "runtime/compiled_model.h"
#include "runtime/server.h"

namespace {

namespace ph = adept::photonics;
namespace nn = adept::nn;
namespace rt = adept::runtime;
namespace data = adept::data;
using adept::bench::time_best;

constexpr int kImage = 24;
constexpr int kClasses = 10;
constexpr int kWidth = 32;
constexpr int kServeBatch = 16;  // micro-batch ceiling used below

nn::OnnModel make_deployable_model() {
  // The deployable-core scenario: the proxy CNN with every matmul mapped
  // onto a fixed K=8 butterfly PTC (stand-in for a searched ADEPT design).
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  adept::Rng rng(17);
  return nn::make_proxy_cnn(1, kImage, kClasses, nn::PtcBinding::fixed(topo),
                            rng, kWidth);
}

std::vector<float> random_sample(adept::Rng& rng) {
  std::vector<float> x(kImage * kImage);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

// Process peak RSS (ru_maxrss is kilobytes on Linux). Monotonic over the
// process lifetime, so it reflects the high-water mark of everything run so
// far — the deterministic planned-vs-unplanned delta is workspace_bytes.
double peak_rss_bytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) * 1024.0;
}

struct SingleStream {
  double tape_ms = 0;
  double compiled_ms = 0;
  double quant_ms = 0;
};

SingleStream measure_single_stream(nn::OnnModel& model,
                                   const rt::CompiledModel& cm,
                                   const rt::CompiledModel& cmq) {
  // The single-stream latencies feed the compiled-vs-tape and int8-vs-fp32
  // speedup gates, so they take the best of many SMALL sampling windows
  // (25 x ~4 ms) instead of time_best's default 5 x 20 ms: on a shared
  // machine a short window has a far better chance of running preemption-
  // free, and the minimum over many of them converges on the true latency.
  constexpr int kReps = 25;
  constexpr double kSample = 0.004;
  adept::Rng rng(5);
  const std::vector<float> x = random_sample(rng);
  SingleStream r;
  {
    adept::ag::NoGradGuard guard;
    model.set_training(false);
    adept::ag::Tensor xt =
        adept::ag::make_tensor(x, {1, 1, kImage, kImage}, false);
    r.tape_ms =
        time_best([&] { (void)model.net->forward(xt); }, kReps, kSample) * 1e3;
  }
  {
    rt::CompiledModel::Workspace ws;
    std::vector<float> out(static_cast<std::size_t>(cm.output_numel()));
    r.compiled_ms =
        time_best([&] { cm.run(x.data(), 1, out.data(), ws); }, kReps, kSample) *
        1e3;
  }
  {
    rt::CompiledModel::Workspace ws;
    std::vector<float> out(static_cast<std::size_t>(cmq.output_numel()));
    r.quant_ms =
        time_best([&] { cmq.run(x.data(), 1, out.data(), ws); }, kReps, kSample) *
        1e3;
  }
  return r;
}

// Top-1 accuracy of a compiled plan over the eval set.
double compiled_top1(const rt::CompiledModel& cm,
                     const data::SyntheticDataset& set) {
  rt::CompiledModel::Workspace ws;
  std::vector<float> out(static_cast<std::size_t>(cm.output_numel()));
  int hits = 0;
  for (int i = 0; i < set.size(); ++i) {
    cm.run(set.image(i).data(), 1, out.data(), ws);
    int arg = 0;
    for (int j = 1; j < static_cast<int>(out.size()); ++j) {
      if (out[static_cast<std::size_t>(j)] > out[static_cast<std::size_t>(arg)]) arg = j;
    }
    if (arg == set.label(i)) ++hits;
  }
  return static_cast<double>(hits) / set.size();
}

struct ServeResult {
  double wall_s = 0;
  double qps = 0;
  double fill = 0;
  double p50_us = 0;
  double p99_us = 0;
};

ServeResult measure_serving(const rt::CompiledModel& cm, int threads, int requests) {
  rt::ServerConfig cfg;
  cfg.threads = threads;
  cfg.max_batch = kServeBatch;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 512;
  adept::Rng rng(9);
  std::vector<std::vector<float>> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) inputs.push_back(random_sample(rng));

  // Warm up caches/thread pools on a throwaway server so the measured
  // server's stats (fill, p50/p99) cover exactly the flood below — serial
  // warm-up batches of 1 would otherwise drag the reported fill rate down.
  {
    rt::Server warm(cm, cfg);
    for (int i = 0; i < 16; ++i) {
      warm.submit(inputs[static_cast<std::size_t>(i)]).get();
    }
  }
  rt::Server server(cm, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<std::vector<float>>> futures;
  futures.reserve(inputs.size());
  for (const auto& x : inputs) futures.push_back(server.submit(x));
  for (auto& f : futures) f.get();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Read the serving telemetry straight from the metrics registry — the
  // same instruments ServerStats views, but through the export surface the
  // CI artifacts consume. The per-instance prefix keeps the warm-up
  // server's records out of the measured numbers.
  const adept::obs::MetricsSnapshot snap = adept::obs::snapshot();
  const std::string& pfx = server.metrics_prefix();
  const auto* lat = snap.find_histogram(pfx + "latency_ns");
  const auto* reqs = snap.find_counter(pfx + "requests");
  const auto* batches = snap.find_counter(pfx + "batches");
  ServeResult r;
  r.wall_s = wall;
  r.qps = requests / wall;
  r.fill = (reqs != nullptr && batches != nullptr && batches->value > 0)
               ? static_cast<double>(reqs->value) /
                     static_cast<double>(batches->value)
               : 0.0;
  r.p50_us = lat != nullptr ? lat->p50 / 1e3 : 0.0;
  r.p99_us = lat != nullptr ? lat->p99 / 1e3 : 0.0;
  return r;
}

struct ContextResult {
  double single_stream_ms = 0;  // batch-1 latency through this context
  double qps = 0;               // 8-worker served throughput
};

// Freeze the model with every step tagged for `device` and measure the two
// serving shapes that bracket the routing trade: one caller issuing batch-1
// runs (isolates what each kernel launch gains from fanning out) and an
// 8-worker pool (shows how far worker-level parallelism substitutes for
// kernel-level parallelism). Which context wins each shape depends on host
// core count vs model size — the records exist to measure it per host.
ContextResult measure_context(nn::OnnModel& model, adept::backend::Device device,
                              int requests) {
  rt::FreezeOptions opts;
  opts.device = device;
  const rt::CompiledModel cm =
      rt::CompiledModel::freeze(model, {1, kImage, kImage}, opts);

  constexpr int kReps = 25;
  constexpr double kSample = 0.004;
  adept::Rng rng(5);
  const std::vector<float> x = random_sample(rng);
  rt::CompiledModel::Workspace ws;
  std::vector<float> out(static_cast<std::size_t>(cm.output_numel()));

  ContextResult r;
  r.single_stream_ms =
      time_best([&] { cm.run(x.data(), 1, out.data(), ws); }, kReps, kSample) *
      1e3;
  r.qps = measure_serving(cm, 8, requests).qps;
  return r;
}

struct OverloadResult {
  double wall_s = 0;
  double goodput_qps = 0;   // completed-before-deadline per second
  double reject_rate = 0;   // admission-refused / offered
  double shed_rate = 0;     // shed_oldest drops / offered
  double miss_rate = 0;     // deadline misses / offered
  double p99_accepted_us = 0;
};

// Offered load far beyond capacity: 4 producers flood a 2-worker server with
// a deliberately small queue and a 250 ms deadline on every request. The
// queue bound is what keeps accepted-request p99 small under reject/
// shed_oldest; under block the producers are admitted eventually and their
// submit-to-result latency grows with the whole backlog.
OverloadResult measure_overload(const rt::CompiledModel& cm,
                                rt::OverloadPolicy policy, int requests) {
  rt::ServerConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = kServeBatch;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = kServeBatch;
  cfg.policy = policy;
  cfg.deadline_us = 250'000;
  rt::Server server(cm, cfg);

  // Pre-generated input pool so producers offer load with zero think time.
  adept::Rng rng(21);
  std::vector<std::vector<float>> pool;
  for (int i = 0; i < 32; ++i) pool.push_back(random_sample(rng));

  constexpr int kProducers = 4;
  const int per_producer = std::max(1, requests / kProducers);
  std::atomic<int> completed{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<std::vector<float>>> futures;
      futures.reserve(static_cast<std::size_t>(per_producer));
      for (int i = 0; i < per_producer; ++i) {
        futures.push_back(server.submit(pool[static_cast<std::size_t>(
            (p * per_producer + i) % static_cast<int>(pool.size()))]));
      }
      for (auto& f : futures) {
        try {
          (void)f.get();
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const rt::ServingError&) {
          // rejected / shed / deadline-missed: counted by the server stats
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const adept::obs::MetricsSnapshot snap = adept::obs::snapshot();
  const std::string& pfx = server.metrics_prefix();
  auto count_of = [&](const char* name) -> double {
    const auto* c = snap.find_counter(pfx + name);
    return c != nullptr ? static_cast<double>(c->value) : 0.0;
  };
  const auto* lat = snap.find_histogram(pfx + "latency_ns");
  const double offered = static_cast<double>(kProducers * per_producer);
  OverloadResult r;
  r.wall_s = wall;
  r.goodput_qps = completed.load() / wall;
  r.reject_rate = count_of("rejected") / offered;
  r.shed_rate = count_of("shed") / offered;
  r.miss_rate = count_of("deadline_misses") / offered;
  r.p99_accepted_us = lat != nullptr ? lat->p99 / 1e3 : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int requests =
      adept::env_int("ADEPT_BENCH_SERVE_N", adept::bench_full_scale() ? 4096 : 384);

  nn::OnnModel model = make_deployable_model();

  // Short supervised run so the accuracy comparison below measures a model
  // that actually classifies (top-1 deltas on random weights are noise).
  data::DatasetSpec spec = data::DatasetSpec::mnist_like();
  spec.height = spec.width = kImage;
  spec.classes = kClasses;
  data::SyntheticDataset train(spec, 256, 1), eval_set(spec, 128, 2);
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  nn::train_classifier(model, train, eval_set, tc);

  rt::FreezeOptions fp32_opts;                 // planned fp32 (the default)
  rt::FreezeOptions ref_opts;                  // unplanned reference chain
  ref_opts.optimize = false;
  rt::FreezeOptions quant_opts;                // planned + int8
  quant_opts.quantize_int8 = true;
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {1, kImage, kImage}, fp32_opts);
  rt::CompiledModel cm_ref = rt::CompiledModel::freeze(model, {1, kImage, kImage}, ref_opts);
  rt::CompiledModel cmq = rt::CompiledModel::freeze(model, {1, kImage, kImage}, quant_opts);

  const SingleStream ss = measure_single_stream(model, cm, cmq);
  const double speedup = ss.tape_ms / ss.compiled_ms;
  const double quant_speedup = ss.compiled_ms / ss.quant_ms;

  const double ws_planned = static_cast<double>(cm.workspace_bytes(kServeBatch));
  const double ws_unplanned = static_cast<double>(cm_ref.workspace_bytes(kServeBatch));

  const double top1_fp32 = compiled_top1(cm, eval_set);
  const double top1_int8 = compiled_top1(cmq, eval_set);
  const double top1_delta = top1_fp32 - top1_int8;

  std::string json_path;
  if (adept::bench::parse_json_flag(argc, argv, "BENCH_serve.json", &json_path)) {
    adept::bench::JsonReport report("serve");
    report.add({"single_stream",
                {{"tape_ms", ss.tape_ms},
                 {"compiled_ms", ss.compiled_ms},
                 {"speedup", speedup},
                 {"quant_ms", ss.quant_ms},
                 {"quant_speedup", quant_speedup},
                 {"wall_s", ss.compiled_ms * 1e-3}}});
    report.add({"plan",
                {{"workspace_planned_bytes", ws_planned},
                 {"workspace_unplanned_bytes", ws_unplanned},
                 {"workspace_saving", 1.0 - ws_planned / ws_unplanned},
                 {"peak_rss_bytes", peak_rss_bytes()}}});
    report.add({"accuracy",
                {{"top1_fp32", top1_fp32},
                 {"top1_int8", top1_int8},
                 {"quant_top1_delta", top1_delta},
                 {"eval_n", static_cast<double>(eval_set.size())}}});
    for (int threads : {1, 4, 8}) {
      const ServeResult r = measure_serving(cm, threads, requests);
      report.add({"serve_t" + std::to_string(threads),
                  {{"qps", r.qps},
                   {"fill", r.fill},
                   {"p50_us", r.p50_us},
                   {"p99_us", r.p99_us},
                   {"requests", static_cast<double>(requests)}}});
    }
    {
      const ServeResult r = measure_serving(cmq, 4, requests);
      report.add({"serve_quant_t4",
                  {{"qps", r.qps},
                   {"fill", r.fill},
                   {"p50_us", r.p50_us},
                   {"p99_us", r.p99_us},
                   {"requests", static_cast<double>(requests)}}});
    }
    for (adept::backend::Device device :
         {adept::backend::Device::cpu_serial,
          adept::backend::Device::cpu_threaded}) {
      const ContextResult r = measure_context(model, device, requests);
      report.add({std::string("context_") + adept::backend::device_name(device),
                  {{"single_stream_ms", r.single_stream_ms},
                   {"qps_t8", r.qps},
                   {"requests", static_cast<double>(requests)}}});
    }
    for (rt::OverloadPolicy policy :
         {rt::OverloadPolicy::block, rt::OverloadPolicy::reject,
          rt::OverloadPolicy::shed_oldest}) {
      const OverloadResult r = measure_overload(cm, policy, requests);
      report.add({"overload_" + rt::to_string(policy),
                  {{"goodput_qps", r.goodput_qps},
                   {"reject_rate", r.reject_rate},
                   {"shed_rate", r.shed_rate},
                   {"deadline_miss_rate", r.miss_rate},
                   {"p99_accepted_us", r.p99_accepted_us},
                   {"wall_s", r.wall_s},
                   {"requests", static_cast<double>(requests)}}});
    }
    if (!report.write(json_path, adept::backend::num_threads())) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s (single-stream %.2fx, quant %.2fx, top-1 delta %.3f)\n",
                json_path.c_str(), speedup, quant_speedup, top1_delta);
    return 0;
  }

  std::printf("single-stream batch-1 latency (proxy CNN, K=8 butterfly PTC):\n");
  std::printf("  tape eval     %8.3f ms\n", ss.tape_ms);
  std::printf("  compiled      %8.3f ms   (%.2fx)\n", ss.compiled_ms, speedup);
  std::printf("  int8 quant    %8.3f ms   (%.2fx vs compiled)\n\n", ss.quant_ms,
              quant_speedup);
  std::printf("workspace @batch %d: planned %.0f bytes, unplanned %.0f bytes "
              "(%.0f%% saved); peak RSS %.1f MB\n",
              kServeBatch, ws_planned, ws_unplanned,
              100.0 * (1.0 - ws_planned / ws_unplanned),
              peak_rss_bytes() / (1024.0 * 1024.0));
  std::printf("top-1 on %d eval samples: fp32 %.3f, int8 %.3f (delta %.3f)\n\n",
              eval_set.size(), top1_fp32, top1_int8, top1_delta);

  adept::Table table({"workers", "QPS", "fill", "p50 [us]", "p99 [us]"});
  for (int threads : {1, 4, 8}) {
    const ServeResult r = measure_serving(cm, threads, requests);
    table.add_row({std::to_string(threads), adept::Table::fmt(r.qps, 0),
                   adept::Table::fmt(r.fill, 2), adept::Table::fmt(r.p50_us, 0),
                   adept::Table::fmt(r.p99_us, 0)});
  }
  const ServeResult rq = measure_serving(cmq, 4, requests);
  table.add_row({"4 (int8)", adept::Table::fmt(rq.qps, 0),
                 adept::Table::fmt(rq.fill, 2), adept::Table::fmt(rq.p50_us, 0),
                 adept::Table::fmt(rq.p99_us, 0)});
  table.print(std::cout);

  std::printf("\nexecution contexts (fp32 plan retagged per device):\n");
  adept::Table ctx_table({"context", "single-stream [ms]", "QPS @8 workers"});
  for (adept::backend::Device device :
       {adept::backend::Device::cpu_serial,
        adept::backend::Device::cpu_threaded}) {
    const ContextResult r = measure_context(model, device, requests);
    ctx_table.add_row({adept::backend::device_name(device),
                       adept::Table::fmt(r.single_stream_ms, 3),
                       adept::Table::fmt(r.qps, 0)});
  }
  ctx_table.print(std::cout);

  std::printf("\noverload (4 producers, 2 workers, queue %d, 250 ms deadline):\n",
              kServeBatch);
  adept::Table overload({"policy", "goodput QPS", "reject", "shed", "miss",
                         "accepted p99 [us]"});
  for (rt::OverloadPolicy policy :
       {rt::OverloadPolicy::block, rt::OverloadPolicy::reject,
        rt::OverloadPolicy::shed_oldest}) {
    const OverloadResult r = measure_overload(cm, policy, requests);
    overload.add_row({rt::to_string(policy),
                      adept::Table::fmt(r.goodput_qps, 0),
                      adept::Table::fmt(r.reject_rate, 3),
                      adept::Table::fmt(r.shed_rate, 3),
                      adept::Table::fmt(r.miss_rate, 3),
                      adept::Table::fmt(r.p99_accepted_us, 0)});
  }
  overload.print(std::cout);
  return 0;
}
