// Serving-path benchmark: tape-based eval vs the compiled tape-free engine,
// and steady-state server throughput under concurrent micro-batching.
//
//   offline single-stream   batch-1 latency of model.forward (eval mode,
//                           NoGradGuard, cached eval weights) vs
//                           CompiledModel::run with a reused workspace —
//                           the ISSUE acceptance bar is compiled >= 2x.
//   steady-state serving    QPS, micro-batch fill rate, and p50/p99 request
//                           latency at 1/4/8 worker threads for a fixed
//                           request pile.
//
// `--json [path]` emits BENCH_serve.json for the perf trajectory (schema in
// bench/README.md); without it a human-readable table prints. Scale knobs:
//   ADEPT_BENCH_SERVE_N   requests per serving measurement (default 384,
//                         full scale 4096)
#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <vector>

#include "backend/parallel.h"
#include "bench_common.h"
#include "common/table.h"
#include "nn/models.h"
#include "photonics/builders.h"
#include "runtime/compiled_model.h"
#include "runtime/server.h"

namespace {

namespace ph = adept::photonics;
namespace nn = adept::nn;
namespace rt = adept::runtime;
using adept::bench::time_best;

constexpr int kImage = 12;
constexpr int kClasses = 10;
constexpr int kWidth = 6;

nn::OnnModel make_deployable_model() {
  // The deployable-core scenario: the proxy CNN with every matmul mapped
  // onto a fixed K=8 butterfly PTC (stand-in for a searched ADEPT design).
  auto topo = std::make_shared<ph::PtcTopology>(ph::butterfly(8));
  adept::Rng rng(17);
  return nn::make_proxy_cnn(1, kImage, kClasses, nn::PtcBinding::fixed(topo),
                            rng, kWidth);
}

std::vector<float> random_sample(adept::Rng& rng) {
  std::vector<float> x(kImage * kImage);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

struct SingleStream {
  double tape_ms = 0;
  double compiled_ms = 0;
};

SingleStream measure_single_stream(nn::OnnModel& model,
                                   const rt::CompiledModel& cm) {
  adept::Rng rng(5);
  const std::vector<float> x = random_sample(rng);
  SingleStream r;
  {
    adept::ag::NoGradGuard guard;
    model.set_training(false);
    adept::ag::Tensor xt =
        adept::ag::make_tensor(x, {1, 1, kImage, kImage}, false);
    r.tape_ms = time_best([&] { (void)model.net->forward(xt); }) * 1e3;
  }
  {
    rt::CompiledModel::Workspace ws;
    std::vector<float> out(static_cast<std::size_t>(cm.output_numel()));
    r.compiled_ms =
        time_best([&] { cm.run(x.data(), 1, out.data(), ws); }) * 1e3;
  }
  return r;
}

struct ServeResult {
  double wall_s = 0;
  double qps = 0;
  double fill = 0;
  double p50_us = 0;
  double p99_us = 0;
};

ServeResult measure_serving(const rt::CompiledModel& cm, int threads, int requests) {
  rt::ServerConfig cfg;
  cfg.threads = threads;
  cfg.max_batch = 16;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 512;
  adept::Rng rng(9);
  std::vector<std::vector<float>> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) inputs.push_back(random_sample(rng));

  // Warm up caches/thread pools on a throwaway server so the measured
  // server's stats (fill, p50/p99) cover exactly the flood below — serial
  // warm-up batches of 1 would otherwise drag the reported fill rate down.
  {
    rt::Server warm(cm, cfg);
    for (int i = 0; i < 16; ++i) {
      warm.submit(inputs[static_cast<std::size_t>(i)]).get();
    }
  }
  rt::Server server(cm, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<std::vector<float>>> futures;
  futures.reserve(inputs.size());
  for (const auto& x : inputs) futures.push_back(server.submit(x));
  for (auto& f : futures) f.get();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const rt::ServerStats stats = server.stats();
  ServeResult r;
  r.wall_s = wall;
  r.qps = requests / wall;
  r.fill = stats.mean_batch_fill;
  r.p50_us = stats.latency_p50_us;
  r.p99_us = stats.latency_p99_us;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int requests =
      adept::env_int("ADEPT_BENCH_SERVE_N", adept::bench_full_scale() ? 4096 : 384);

  nn::OnnModel model = make_deployable_model();
  rt::CompiledModel cm = rt::CompiledModel::freeze(model, {1, kImage, kImage});
  const SingleStream ss = measure_single_stream(model, cm);
  const double speedup = ss.tape_ms / ss.compiled_ms;

  std::string json_path;
  if (adept::bench::parse_json_flag(argc, argv, "BENCH_serve.json", &json_path)) {
    adept::bench::JsonReport report("serve");
    report.add({"single_stream",
                {{"tape_ms", ss.tape_ms},
                 {"compiled_ms", ss.compiled_ms},
                 {"speedup", speedup},
                 {"wall_s", ss.compiled_ms * 1e-3}}});
    for (int threads : {1, 4, 8}) {
      const ServeResult r = measure_serving(cm, threads, requests);
      report.add({"serve_t" + std::to_string(threads),
                  {{"qps", r.qps},
                   {"fill", r.fill},
                   {"p50_us", r.p50_us},
                   {"p99_us", r.p99_us},
                   {"requests", static_cast<double>(requests)}}});
    }
    if (!report.write(json_path, adept::backend::num_threads())) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s (single-stream speedup %.2fx)\n", json_path.c_str(), speedup);
    return 0;
  }

  std::printf("single-stream batch-1 latency (proxy CNN, K=8 butterfly PTC):\n");
  std::printf("  tape eval     %8.3f ms\n", ss.tape_ms);
  std::printf("  compiled      %8.3f ms   (%.2fx)\n\n", ss.compiled_ms, speedup);

  adept::Table table({"workers", "QPS", "fill", "p50 [us]", "p99 [us]"});
  for (int threads : {1, 4, 8}) {
    const ServeResult r = measure_serving(cm, threads, requests);
    table.add_row({std::to_string(threads), adept::Table::fmt(r.qps, 0),
                   adept::Table::fmt(r.fill, 2), adept::Table::fmt(r.p50_us, 0),
                   adept::Table::fmt(r.p99_us, 0)});
  }
  table.print(std::cout);
  return 0;
}
