// Table 3 reproduction: transfer searched 16x16 PTCs (searched on the
// synthetic-MNIST proxy with the 2-layer CNN) to LeNet-5 and VGG-8 on the
// harder stand-in datasets (FMNIST / SVHN / CIFAR-10 equivalents), versus
// the MZI and FFT baselines at their paper footprints.
//
// VGG-8 runs width-scaled for CPU tractability (ADEPT_BENCH_VGG_SCALE).
#include "bench_common.h"

namespace data = adept::data;
namespace nn = adept::nn;
namespace ph = adept::photonics;
using adept::Table;
using adept::bench::BenchScale;

namespace {

struct PaperCell {
  double mzi, fft, a2, a4;
};

// Paper Table 3 accuracies (%).
const PaperCell kPaperLenet[] = {{87.33, 85.87, 85.89, 87.07},   // FMNIST
                                 {69.91, 65.04, 65.26, 69.20},   // SVHN
                                 {51.40, 42.75, 51.26, 52.42}};  // CIFAR-10
const PaperCell kPaperVgg[] = {{89.59, 88.62, 89.23, 89.16},
                               {77.87, 75.22, 75.86, 77.20},
                               {68.90, 63.57, 66.30, 68.50}};

double train_model(const std::string& model_name,
                   std::shared_ptr<const ph::PtcTopology> topo,
                   const data::SyntheticDataset& train,
                   const data::SyntheticDataset& test, const BenchScale& scale,
                   double vgg_scale, std::uint64_t seed) {
  adept::Rng rng(seed);
  nn::OnnModel model;
  if (model_name == "LeNet-5") {
    model = nn::make_lenet5(train.spec().channels, train.spec().height, 10,
                            nn::PtcBinding::fixed(topo), rng, /*width_scale=*/0.5);
  } else {
    model = nn::make_vgg8(train.spec().channels, train.spec().height, 10,
                          nn::PtcBinding::fixed(topo), rng, vgg_scale);
  }
  nn::TrainConfig config;
  config.epochs = scale.retrain_epochs;
  config.batch_size = scale.batch;
  config.seed = seed;
  return nn::train_classifier(model, train, test, config).final_accuracy;
}

}  // namespace

int main() {
  BenchScale scale = BenchScale::from_env();
  // Transfer training is the expensive part; trim further by default.
  scale.train_n = adept::env_int("ADEPT_BENCH_TRAIN", adept::bench_full_scale() ? 4096 : 256);
  scale.retrain_epochs = adept::env_int("ADEPT_BENCH_EPOCHS", adept::bench_full_scale() ? 10 : 2);
  const double vgg_scale =
      adept::env_double("ADEPT_BENCH_VGG_SCALE", adept::bench_full_scale() ? 1.0 : 0.09);
  const ph::Pdk pdk = ph::Pdk::amf();
  const int k = 16;

  std::printf("Table 3: transfer of searched 16x16 PTCs to LeNet-5 / VGG-8 on\n"
              "harder datasets (synthetic stand-ins). AMF PDK.\n");
  std::printf("reduced scale: train=%d epochs=%d vgg_scale=%.3f\n\n", scale.train_n,
              scale.retrain_epochs, vgg_scale);

  // Search a2 / a4 on the MNIST-like proxy (paper: searched on MNIST + CNN).
  const auto proxy_spec = data::DatasetSpec::mnist_like();
  data::SyntheticDataset proxy_train(proxy_spec, scale.train_n, 1);
  data::SyntheticDataset proxy_val(proxy_spec, scale.test_n, 2);
  std::printf("searching ADEPT-a2 [672, 840]...\n");
  const auto a2 = adept::bench::run_search(k, pdk, 672, 840, scale, proxy_train,
                                           proxy_val, 61).topology;
  std::printf("searching ADEPT-a4 [1056, 1320]...\n");
  const auto a4 = adept::bench::run_search(k, pdk, 1056, 1320, scale, proxy_train,
                                           proxy_val, 62).topology;

  struct Design {
    std::string name;
    std::shared_ptr<const ph::PtcTopology> topo;
    double paper_footprint;
  };
  const std::vector<Design> designs = {
      {"MZI", std::make_shared<ph::PtcTopology>(ph::clements_mzi(k)), 7683},
      {"FFT", std::make_shared<ph::PtcTopology>(ph::butterfly(k)), 972},
      {"ADEPT-a2", std::make_shared<ph::PtcTopology>(a2), 722},
      {"ADEPT-a4", std::make_shared<ph::PtcTopology>(a4), 1206},
  };
  std::printf("\nfootprints (k-um^2): ");
  for (const auto& d : designs) {
    std::printf("%s=%.0f (paper %.0f)  ", d.name.c_str(),
                d.topo->footprint_um2(pdk) / 1000.0, d.paper_footprint);
  }
  std::printf("\n\n");

  const std::vector<std::pair<std::string, data::DatasetSpec>> datasets = {
      {"FMNIST", data::DatasetSpec::fmnist_like()},
      {"SVHN", data::DatasetSpec::svhn_like()},
      {"CIFAR-10", data::DatasetSpec::cifar10_like()},
  };
  for (const std::string model_name : {"LeNet-5", "VGG-8"}) {
    std::printf("--- %s ---\n", model_name.c_str());
    Table table({"dataset", "MZI", "FFT", "ADEPT-a2", "ADEPT-a4", "paper (M/F/a2/a4)"});
    for (std::size_t di = 0; di < datasets.size(); ++di) {
      const auto& [ds_name, ds_spec] = datasets[di];
      data::SyntheticDataset train(ds_spec, scale.train_n, 10 + di);
      data::SyntheticDataset test(ds_spec, scale.test_n, 20 + di);
      std::vector<std::string> row = {ds_name};
      for (const auto& d : designs) {
        const double acc = train_model(model_name, d.topo, train, test, scale,
                                       vgg_scale, 700 + di);
        row.push_back(Table::fmt(acc * 100, 2));
        std::printf("  %s / %s / %s done\n", model_name.c_str(), ds_name.c_str(),
                    d.name.c_str());
      }
      const PaperCell& p =
          (model_name == "LeNet-5" ? kPaperLenet : kPaperVgg)[di];
      row.push_back(Table::fmt(p.mzi, 1) + "/" + Table::fmt(p.fft, 1) + "/" +
                    Table::fmt(p.a2, 1) + "/" + Table::fmt(p.a4, 1));
      table.add_row(row);
    }
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
