#include <gtest/gtest.h>

#include <cmath>

#include "photonics/devices.h"
#include "photonics/pdk.h"

namespace {

namespace ph = adept::photonics;

TEST(Devices, PhaseShifterUnitModulus) {
  for (double phi : {0.0, 0.5, -1.7, 3.14159}) {
    EXPECT_NEAR(std::abs(ph::phase_shifter(phi)), 1.0, 1e-12);
  }
  EXPECT_NEAR(ph::phase_shifter(0.0).real(), 1.0, 1e-12);
  // exp(-j*pi/2) = -j
  EXPECT_NEAR(ph::phase_shifter(3.14159265358979 / 2).imag(), -1.0, 1e-9);
}

TEST(Devices, CouplerUnitary) {
  for (double t : {0.0, 0.3, ph::balanced_coupler_t(), 1.0}) {
    EXPECT_LT(ph::coupler(t).unitarity_error(), 1e-12) << "t=" << t;
  }
}

TEST(Devices, CouplerBarAndCrossStates) {
  // t=1: identity (bar); t=0: full cross with j phase.
  const ph::CMat bar = ph::coupler(1.0);
  EXPECT_LT(bar.max_abs_diff(ph::CMat::identity(2)), 1e-12);
  const ph::CMat cross = ph::coupler(0.0);
  EXPECT_NEAR(std::abs(cross.at(0, 1) - ph::cplx(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(cross.at(0, 0)), 0.0, 1e-12);
}

TEST(Devices, CouplerRejectsOutOfRange) {
  EXPECT_THROW(ph::coupler(-0.1), std::invalid_argument);
  EXPECT_THROW(ph::coupler(1.1), std::invalid_argument);
}

TEST(Devices, BalancedCouplerSplitsEvenly) {
  const ph::CMat dc = ph::coupler(ph::balanced_coupler_t());
  EXPECT_NEAR(std::norm(dc.at(0, 0)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(dc.at(0, 1)), 0.5, 1e-12);
}

TEST(Devices, CrossingSwaps) {
  const ph::CMat cr = ph::crossing();
  const auto y = cr * std::vector<ph::cplx>{ph::cplx(1, 0), ph::cplx(0, 2)};
  EXPECT_NEAR(std::abs(y[0] - ph::cplx(0, 2)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - ph::cplx(1, 0)), 0.0, 1e-12);
  EXPECT_LT(cr.unitarity_error(), 1e-12);
}

TEST(Devices, MziUnitaryForAllPhases) {
  for (double theta : {0.0, 0.7, 2.1}) {
    for (double phi : {0.0, -0.9, 1.5}) {
      EXPECT_LT(ph::mzi(theta, phi).unitarity_error(), 1e-12);
    }
  }
}

TEST(Devices, MziReachesCrossAndBar) {
  // theta = 0: the two 50:50 couplers compose to a full cross (up to phase).
  const ph::CMat cross = ph::mzi(0.0, 0.0);
  EXPECT_NEAR(std::abs(cross.at(0, 0)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(cross.at(0, 1)), 1.0, 1e-9);
  // theta = pi: bar state (identity magnitudes).
  const ph::CMat bar = ph::mzi(3.14159265358979, 0.0);
  EXPECT_NEAR(std::abs(bar.at(0, 0)), 1.0, 1e-6);
  EXPECT_NEAR(std::abs(bar.at(0, 1)), 0.0, 1e-6);
}

TEST(Devices, PhaseColumnMatrixDiagonal) {
  const ph::CMat m = ph::phase_column_matrix({0.1, 0.2, 0.3});
  EXPECT_LT(m.unitarity_error(), 1e-12);
  EXPECT_NEAR(std::abs(m.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m.at(1, 1) - ph::phase_shifter(0.2)), 0.0, 1e-12);
}

TEST(Devices, CouplerColumnMaskAndParity) {
  // K=6, parity 1: slots cover (1,2), (3,4); waveguides 0 and 5 pass through.
  const ph::CMat m = ph::coupler_column_matrix(6, 1, {true, false},
                                               {ph::balanced_coupler_t(), 0.5});
  EXPECT_NEAR(std::abs(m.at(0, 0) - ph::cplx(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m.at(5, 5) - ph::cplx(1, 0)), 0.0, 1e-12);
  // slot 0 placed
  EXPECT_NEAR(std::norm(m.at(1, 2)), 0.5, 1e-12);
  // slot 1 masked out -> identity on (3,4)
  EXPECT_NEAR(std::abs(m.at(3, 3) - ph::cplx(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m.at(3, 4)), 0.0, 1e-12);
  EXPECT_LT(m.unitarity_error(), 1e-12);
}

TEST(Devices, CouplerColumnValidation) {
  EXPECT_THROW(ph::coupler_column_matrix(4, 2, {true}, {0.5}), std::invalid_argument);
  EXPECT_THROW(ph::coupler_column_matrix(4, 0, {true, true, true}, {0.5, 0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(ph::coupler_column_matrix(4, 0, {true}, {0.5, 0.5}),
               std::invalid_argument);
}

TEST(Devices, BalancedColumnFullCoverage) {
  const ph::CMat m = ph::balanced_coupler_column(8, 0);
  EXPECT_LT(m.unitarity_error(), 1e-12);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(std::norm(m.at(2 * s, 2 * s + 1)), 0.5, 1e-12);
  }
}

TEST(Pdk, PaperDeviceAreas) {
  const ph::Pdk amf = ph::Pdk::amf();
  EXPECT_EQ(amf.name, "AMF");
  EXPECT_DOUBLE_EQ(amf.ps_area_um2, 6800.0);
  EXPECT_DOUBLE_EQ(amf.dc_area_um2, 1500.0);
  EXPECT_DOUBLE_EQ(amf.cr_area_um2, 64.0);
  const ph::Pdk aim = ph::Pdk::aim();
  EXPECT_EQ(aim.name, "AIM");
  EXPECT_DOUBLE_EQ(aim.ps_area_um2, 2500.0);
  EXPECT_DOUBLE_EQ(aim.dc_area_um2, 4000.0);
  EXPECT_DOUBLE_EQ(aim.cr_area_um2, 4900.0);
}

}  // namespace
