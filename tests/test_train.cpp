#include <gtest/gtest.h>

#include "core/supermesh.h"
#include "photonics/builders.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "nn/variation.h"

namespace {

namespace core = adept::core;
namespace data = adept::data;
namespace nn = adept::nn;
using adept::Rng;

data::DatasetSpec tiny_spec() {
  auto spec = data::DatasetSpec::mnist_like();
  spec.height = 14;
  spec.width = 14;
  return spec;
}

TEST(Train, DenseProxyCnnLearnsAboveChance) {
  const auto spec = tiny_spec();
  data::SyntheticDataset train(spec, 256, 1);
  data::SyntheticDataset test(spec, 128, 2);
  Rng rng(1);
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::dense(), rng, 4);
  nn::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 32;
  config.lr = 3e-3;
  const auto stats = nn::train_classifier(model, train, test, config);
  EXPECT_EQ(stats.train_loss_per_epoch.size(), 4u);
  EXPECT_GT(stats.final_accuracy, 0.3);  // 10-class chance is 0.1
  // Loss should drop.
  EXPECT_LT(stats.train_loss_per_epoch.back(), stats.train_loss_per_epoch.front());
}

TEST(Train, EvaluateAccuracyIsDeterministicWithoutNoise) {
  const auto spec = tiny_spec();
  data::SyntheticDataset test(spec, 64, 3);
  Rng rng(2);
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::dense(), rng, 4);
  const double a1 = nn::evaluate_accuracy(model, test);
  const double a2 = nn::evaluate_accuracy(model, test);
  EXPECT_DOUBLE_EQ(a1, a2);
}

TEST(Train, VariationAwareTrainingRuns) {
  const auto spec = tiny_spec();
  data::SyntheticDataset train(spec, 96, 4);
  data::SyntheticDataset test(spec, 48, 5);
  Rng rng(3);
  auto topo = std::make_shared<adept::photonics::PtcTopology>(
      adept::photonics::butterfly(8));
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng, 4);
  nn::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 32;
  config.train_phase_noise = 0.02;
  const auto stats = nn::train_classifier(model, train, test, config);
  EXPECT_EQ(stats.test_accuracy_per_epoch.size(), 1u);
  EXPECT_GE(stats.final_accuracy, 0.0);
}

TEST(Train, NoisyEvaluationDegradesOrMatches) {
  const auto spec = tiny_spec();
  data::SyntheticDataset train(spec, 128, 6);
  data::SyntheticDataset test(spec, 64, 7);
  Rng rng(4);
  auto topo = std::make_shared<adept::photonics::PtcTopology>(
      adept::photonics::clements_mzi(8));
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng, 4);
  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;
  nn::train_classifier(model, train, test, config);
  const double clean = nn::evaluate_accuracy(model, test);
  // Heavy drift on a deep MZI mesh should not *help*.
  const double noisy = nn::evaluate_accuracy(model, test, 128, 0.3, 9);
  EXPECT_LE(noisy, clean + 0.08);
}

TEST(Train, OnnProxyTaskLossAndMetric) {
  const auto spec = tiny_spec();
  data::SyntheticDataset train(spec, 64, 8);
  data::SyntheticDataset val(spec, 64, 9);
  core::SuperMeshConfig mesh_config;
  mesh_config.k = 4;
  mesh_config.super_blocks_per_unitary = 2;
  mesh_config.always_on_per_unitary = 1;
  Rng rng(5);
  core::SuperMesh mesh(mesh_config, rng);
  nn::OnnProxyTask task(train, val, /*batch=*/16, /*width=*/4, /*seed=*/10);
  task.bind(mesh);
  mesh.begin_step(1.0, rng);
  auto loss = task.loss(mesh, /*validation=*/false);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
  EXPECT_FALSE(task.weights().empty());
  const double acc = task.metric(mesh);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Train, EvaluateAccuracyRestoresTrainingMode) {
  // Regression: evaluate_accuracy used to force set_training(true) on exit,
  // clobbering the caller's mode (OnnProxyTask::metric left the model in
  // training mode for the rest of the search step).
  const auto spec = tiny_spec();
  data::SyntheticDataset test(spec, 32, 11);
  Rng rng(7);
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::dense(), rng, 4);
  model.set_training(false);
  nn::evaluate_accuracy(model, test);
  EXPECT_FALSE(model.training());
  model.set_training(true);
  nn::evaluate_accuracy(model, test);
  EXPECT_TRUE(model.training());
}

TEST(Train, EvaluateAccuracyPreservesNoiseStream) {
  // Regression: a nominal eval used to stomp the stored phase-noise stream
  // with set_phase_noise(0.0, 0). Two identical models, identically armed:
  // one runs an eval between its noisy forwards, the other does not — their
  // noisy outputs must stay identical.
  const auto spec = tiny_spec();
  data::SyntheticDataset test(spec, 32, 12);
  auto topo = std::make_shared<adept::photonics::PtcTopology>(
      adept::photonics::butterfly(8));
  Rng rng_a(8), rng_b(8);
  auto a = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng_a, 4);
  auto b = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng_b, 4);
  a.set_phase_noise(0.05, 42);
  b.set_phase_noise(0.05, 42);
  a.set_training(false);
  b.set_training(false);
  adept::ag::NoGradGuard guard;
  std::vector<float> x(14 * 14);
  Rng xr(13);
  for (auto& v : x) v = static_cast<float>(xr.uniform(-1, 1));
  auto input = [&] { return adept::ag::make_tensor(x, {1, 1, 14, 14}, false); };
  // First noisy forward consumes the same drift on both models.
  auto y_a1 = a.net->forward(input());
  auto y_b1 = b.net->forward(input());
  for (std::size_t i = 0; i < y_a1.data().size(); ++i) {
    ASSERT_EQ(y_a1.data()[i], y_b1.data()[i]);
  }
  // Model a runs a nominal eval in between; model b does not.
  nn::evaluate_accuracy(a, test);
  auto y_a2 = a.net->forward(input());
  auto y_b2 = b.net->forward(input());
  for (std::size_t i = 0; i < y_a2.data().size(); ++i) {
    ASSERT_EQ(y_a2.data()[i], y_b2.data()[i])
        << "eval disturbed the noise stream at elem " << i;
  }
}

TEST(Train, NoisyEvaluationRestoresArmedNoise) {
  // A noisy robustness eval (noise_sigma > 0) must pop back the
  // variation-aware training noise it replaced, not leave sigma at 0.
  const auto spec = tiny_spec();
  data::SyntheticDataset test(spec, 32, 14);
  Rng rng(9);
  auto topo = std::make_shared<adept::photonics::PtcTopology>(
      adept::photonics::butterfly(8));
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng, 4);
  model.set_phase_noise(0.02, 77);
  nn::evaluate_accuracy(model, test, 32, /*noise_sigma=*/0.3, /*noise_seed=*/5);
  for (auto* layer : model.onn_layers) {
    EXPECT_DOUBLE_EQ(layer->phase_noise_state().sigma, 0.02);
  }
}

TEST(Train, VariationHelpersToggleNoise) {
  Rng rng(6);
  auto topo = std::make_shared<adept::photonics::PtcTopology>(
      adept::photonics::butterfly(8));
  auto model = nn::make_proxy_cnn(1, 14, 10, nn::PtcBinding::fixed(topo), rng, 4);
  nn::VariationConfig vconfig;
  vconfig.train_noise_sigma = 0.02;
  EXPECT_NO_THROW(nn::enable_variation_aware_training(model, vconfig));
  EXPECT_NO_THROW(nn::disable_phase_noise(model));
  EXPECT_NO_THROW(nn::set_test_noise(model, 0.06, 77));
}

}  // namespace
