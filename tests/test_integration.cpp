// End-to-end integration: the full paper pipeline at miniature scale.
//   1. ADEPT search on a CNN proxy task (synthetic-MNIST stand-in)
//   2. freeze the searched topology
//   3. re-train a target model with the frozen topology
//   4. check footprint constraints and basic learnability
#include <gtest/gtest.h>

#include <memory>

#include "core/search.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "photonics/builders.h"

namespace {

namespace core = adept::core;
namespace data = adept::data;
namespace nn = adept::nn;
namespace ph = adept::photonics;
using adept::Rng;

data::DatasetSpec tiny_spec() {
  auto spec = data::DatasetSpec::mnist_like();
  spec.height = 10;
  spec.width = 10;
  return spec;
}

TEST(Integration, SearchOnCnnProxyThenRetrain) {
  const auto spec = tiny_spec();
  data::SyntheticDataset train(spec, 96, 1);
  data::SyntheticDataset val(spec, 48, 2);

  core::SearchConfig config;
  config.mesh.k = 4;
  config.mesh.super_blocks_per_unitary = 2;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 40;
  config.footprint.f_max = 300;
  config.epochs = 3;
  config.warmup_epochs = 1;
  config.spl_epoch = 2;
  config.steps_per_epoch = 6;
  config.alm.rho0 = 1e-4;
  config.seed = 31;

  nn::OnnProxyTask task(train, val, /*batch=*/16, /*width=*/2, /*seed=*/4);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();

  // Searched topology is structurally sound.
  ASSERT_NO_THROW(result.topology.validate());
  EXPECT_EQ(result.topology.k, 4);
  EXPECT_GE(result.topology.counts().blocks, 2);

  // Retrain a fresh classifier with the frozen searched topology. At this
  // miniature scale we assert learnability (train-set fit beats chance and
  // the loss drops), not generalization.
  auto topo = std::make_shared<ph::PtcTopology>(result.topology);
  Rng rng(7);
  auto model = nn::make_proxy_cnn(1, 10, 10, nn::PtcBinding::fixed(topo), rng, 3);
  nn::TrainConfig tconfig;
  tconfig.epochs = 10;
  tconfig.batch_size = 16;
  tconfig.lr = 3e-3;
  const auto stats = nn::train_classifier(model, train, train, tconfig);
  EXPECT_GT(stats.final_accuracy, 0.15);  // 10-class chance is 0.1
  EXPECT_LT(stats.train_loss_per_epoch.back(), stats.train_loss_per_epoch.front());
}

TEST(Integration, SearchedFootprintWithinOrNearBand) {
  // At miniature scale SPL + sampling still honors the budget when feasible.
  core::SearchConfig config;
  config.mesh.k = 8;
  config.mesh.super_blocks_per_unitary = 4;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 120;
  config.footprint.f_max = 480;
  config.epochs = 4;
  config.warmup_epochs = 1;
  config.spl_epoch = 2;
  config.steps_per_epoch = 8;
  config.alm.rho0 = 1e-4;
  config.seed = 37;
  core::MatrixFitTask task(1, 3);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  const double f = result.topology.footprint_um2(config.footprint.pdk) / 1000.0;
  // Band [120, 480] is reachable with 2..8 blocks of K=8 under AMF.
  EXPECT_GE(f, 60.0);
  EXPECT_LE(f, 600.0);
}

TEST(Integration, BaselinesTrainThroughSamePipeline) {
  // MZI and FFT baselines run through the identical ONN layer machinery.
  const auto spec = tiny_spec();
  data::SyntheticDataset train(spec, 64, 3);
  data::SyntheticDataset test(spec, 32, 4);
  for (auto make : {+[](int k) { return ph::clements_mzi(k); },
                    +[](int k) { return ph::butterfly(k); }}) {
    auto topo = std::make_shared<ph::PtcTopology>(make(4));
    Rng rng(9);
    auto model = nn::make_proxy_cnn(1, 10, 10, nn::PtcBinding::fixed(topo), rng, 2);
    nn::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    const auto stats = nn::train_classifier(model, train, test, config);
    EXPECT_TRUE(std::isfinite(stats.train_loss_per_epoch.front()));
  }
}

TEST(Integration, SerializedSearchedTopologyRoundTrips) {
  core::SearchConfig config;
  config.mesh.k = 4;
  config.mesh.super_blocks_per_unitary = 2;
  config.mesh.always_on_per_unitary = 1;
  config.footprint.pdk = ph::Pdk::amf();
  config.footprint.f_min = 40;
  config.footprint.f_max = 300;
  config.epochs = 2;
  config.warmup_epochs = 1;
  config.spl_epoch = 1;
  config.steps_per_epoch = 5;
  config.seed = 41;
  core::MatrixFitTask task(1, 5);
  core::AdeptSearcher searcher(config, task);
  const auto result = searcher.run();
  const auto back = ph::PtcTopology::deserialize(result.topology.serialize());
  EXPECT_EQ(back.counts().cr, result.topology.counts().cr);
  EXPECT_EQ(back.counts().dc, result.topology.counts().dc);
}

}  // namespace
