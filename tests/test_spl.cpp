#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/spl.h"

namespace {

namespace core = adept::core;
namespace ph = adept::photonics;
using adept::Rng;

ph::RMat relaxed_from(const ph::Permutation& p, double noise, Rng& rng) {
  ph::RMat m = p.to_matrix();
  for (auto& v : m.data()) v = std::max(0.0, v * 0.8 + 0.2 / p.size() + rng.normal(0, noise));
  return m;
}

TEST(Spl, RecoversCleanPermutation) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto p = ph::Permutation::random(8, rng);
    const auto recovered =
        core::stochastic_permutation_legalization(relaxed_from(p, 0.01, rng), rng);
    EXPECT_EQ(recovered, p);
  }
}

class SplLegalityTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplLegalityTest, AlwaysProducesLegalPermutation) {
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  // Arbitrary non-negative garbage, including saddle-like duplicated rows.
  ph::RMat m(k, k);
  for (auto& v : m.data()) v = rng.uniform(0.0, 1.0);
  for (std::int64_t j = 0; j < k; ++j) m.at(1, j) = m.at(0, j);  // tie rows 0/1
  const auto p = core::stochastic_permutation_legalization(m, rng);
  EXPECT_EQ(p.size(), k);
  EXPECT_TRUE(ph::is_valid_permutation(p.map()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplLegalityTest,
                         ::testing::Combine(::testing::Values(4, 8, 16, 32),
                                            ::testing::Values(1, 2, 3)));

TEST(Spl, SaddlePointFromPaperFigure3) {
  // The Fig. 3 example: two rows share mass on the same column pair.
  ph::RMat m(3, 3);
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 0.71;
  m.at(1, 1) = 0.71;
  m.at(2, 2) = 1.0;
  m.at(0, 0) = 0.0;
  Rng rng(7);
  const auto p = core::stochastic_permutation_legalization(m, rng);
  EXPECT_TRUE(ph::is_valid_permutation(p.map()));
  // Row 2 is unambiguous.
  EXPECT_EQ(p(2), 2);
}

TEST(Spl, TensorOverload) {
  Rng rng(2);
  auto t = adept::ag::Tensor::from_data({2, 2}, {0.9f, 0.1f, 0.1f, 0.9f});
  const auto p = core::stochastic_permutation_legalization(t, rng);
  EXPECT_TRUE(p.is_identity());
}

TEST(Spl, PrefersFewerCrossingsAmongCandidates) {
  // A uniform matrix has no preference; SPL should pick a low-crossing legal
  // permutation among its stochastic candidates more often than random.
  Rng rng(3);
  ph::RMat m(6, 6);
  for (auto& v : m.data()) v = 1.0 / 6.0;
  long long total = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto p = core::stochastic_permutation_legalization(m, rng);
    total += ph::crossing_count(p);
  }
  // Random permutations of 6 average 7.5 crossings; candidate selection
  // should push well below that.
  EXPECT_LT(static_cast<double>(total) / trials, 7.5);
}

TEST(Hungarian, SolvesHandAssignment) {
  ph::RMat score(3, 3);
  // optimal assignment: 0->1, 1->2, 2->0 (total 9)
  score.at(0, 0) = 1;
  score.at(0, 1) = 3;
  score.at(0, 2) = 0;
  score.at(1, 0) = 0;
  score.at(1, 1) = 1;
  score.at(1, 2) = 3;
  score.at(2, 0) = 3;
  score.at(2, 1) = 0;
  score.at(2, 2) = 1;
  const auto p = core::hungarian_assignment(score);
  EXPECT_EQ(p(0), 1);
  EXPECT_EQ(p(1), 2);
  EXPECT_EQ(p(2), 0);
}

TEST(Hungarian, IdentityOnDiagonalDominance) {
  ph::RMat score = ph::RMat::identity(5);
  const auto p = core::hungarian_assignment(score);
  EXPECT_TRUE(p.is_identity());
}

class HungarianLegalityTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianLegalityTest, AlwaysLegal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int k = 4 + GetParam() * 3;
  ph::RMat score(k, k);
  for (auto& v : score.data()) v = rng.uniform(-1.0, 1.0);
  const auto p = core::hungarian_assignment(score);
  EXPECT_TRUE(ph::is_valid_permutation(p.map()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, HungarianLegalityTest, ::testing::Values(1, 2, 3, 4));

TEST(Hungarian, MaximizesTotalScore) {
  // Compare against brute force on K=4.
  Rng rng(9);
  ph::RMat score(4, 4);
  for (auto& v : score.data()) v = rng.uniform(0.0, 1.0);
  const auto p = core::hungarian_assignment(score);
  double hungarian_total = 0;
  for (int i = 0; i < 4; ++i) hungarian_total += score.at(i, p(i));
  // brute force over all 24 permutations
  std::vector<int> idx = {0, 1, 2, 3};
  double best = -1;
  do {
    double s = 0;
    for (int i = 0; i < 4; ++i) s += score.at(i, idx[static_cast<std::size_t>(i)]);
    best = std::max(best, s);
  } while (std::next_permutation(idx.begin(), idx.end()));
  EXPECT_NEAR(hungarian_total, best, 1e-9);
}

}  // namespace
