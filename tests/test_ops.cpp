#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/rng.h"

namespace {

namespace ag = adept::ag;
using adept::Rng;
using ag::Tensor;

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng, double lo = -1.0,
                     double hi = 1.0, bool rg = true) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(lo, hi));
  return ag::make_tensor(std::move(data), std::move(shape), rg);
}

// ---- forward value checks ------------------------------------------------

TEST(Ops, AddSameShape) {
  Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2}, {10, 20, 30, 40});
  Tensor c = ag::add(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11);
  EXPECT_FLOAT_EQ(c.at(1, 1), 44);
}

TEST(Ops, BroadcastRowVector) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Tensor::from_data({1, 3}, {10, 20, 30});
  Tensor c = ag::add(a, r);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11);
  EXPECT_FLOAT_EQ(c.at(1, 2), 36);
  // reversed operand order
  Tensor d = ag::add(r, a);
  EXPECT_FLOAT_EQ(d.at(1, 2), 36);
}

TEST(Ops, BroadcastColVector) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::from_data({2, 1}, {100, 200});
  Tensor c = ag::add(a, col);
  EXPECT_FLOAT_EQ(c.at(0, 2), 103);
  EXPECT_FLOAT_EQ(c.at(1, 0), 204);
}

TEST(Ops, BroadcastScalar) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor s = Tensor::scalar(5.0f);
  EXPECT_FLOAT_EQ(ag::mul(a, s).data()[2], 15.0f);
  EXPECT_FLOAT_EQ(ag::mul(s, a).data()[2], 15.0f);
}

TEST(Ops, UnsupportedBroadcastThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({3, 2});
  EXPECT_THROW(ag::add(a, b), std::invalid_argument);
}

TEST(Ops, MatmulMatchesManual) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ag::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(ag::matmul(Tensor::zeros({2, 3}), Tensor::zeros({2, 3})),
               std::invalid_argument);
}

TEST(Ops, TransposeValues) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ag::transpose(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4);
}

TEST(Ops, ReshapePreservesData) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ag::reshape(a, {3, 2});
  EXPECT_FLOAT_EQ(r.at(2, 1), 6);
  EXPECT_THROW(ag::reshape(a, {4, 2}), std::invalid_argument);
}

TEST(Ops, DiagRoundTrip) {
  Tensor v = Tensor::from_data({3}, {1, 2, 3});
  Tensor d = ag::diag(v);
  EXPECT_FLOAT_EQ(d.at(1, 1), 2);
  EXPECT_FLOAT_EQ(d.at(0, 1), 0);
  Tensor back = ag::diag_part(d);
  EXPECT_FLOAT_EQ(back.data()[2], 3);
}

TEST(Ops, Reductions) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(ag::sum(a).item(), 21);
  EXPECT_FLOAT_EQ(ag::mean(a).item(), 3.5);
  Tensor rs = ag::row_sum(a);
  EXPECT_EQ(rs.dim(0), 2);
  EXPECT_FLOAT_EQ(rs.data()[0], 6);
  EXPECT_FLOAT_EQ(rs.data()[1], 15);
  Tensor cs = ag::col_sum(a);
  EXPECT_EQ(cs.dim(1), 3);
  EXPECT_FLOAT_EQ(cs.data()[0], 5);
  EXPECT_FLOAT_EQ(cs.data()[2], 9);
}

TEST(Ops, RowL2Norm) {
  Tensor a = Tensor::from_data({2, 2}, {3, 4, 0, 0});
  Tensor n = ag::row_l2_norm(a);
  EXPECT_NEAR(n.data()[0], 5.0f, 1e-4);
  EXPECT_NEAR(n.data()[1], 0.0f, 1e-4);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(1);
  Tensor a = random_tensor({4, 7}, rng, -5, 5);
  Tensor s = ag::softmax_rows(a);
  for (int i = 0; i < 4; ++i) {
    float acc = 0;
    for (int j = 0; j < 7; ++j) acc += s.at(i, j);
    EXPECT_NEAR(acc, 1.0f, 1e-5);
  }
}

TEST(Ops, LogSoftmaxMatchesSoftmax) {
  Rng rng(2);
  Tensor a = random_tensor({3, 5}, rng, -3, 3);
  Tensor s = ag::softmax_rows(a);
  Tensor ls = ag::log_softmax_rows(a);
  for (std::size_t i = 0; i < s.data().size(); ++i) {
    EXPECT_NEAR(std::log(s.data()[i]), ls.data()[i], 1e-4);
  }
}

TEST(Ops, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::zeros({2, 4});
  Tensor loss = ag::cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
}

TEST(Ops, CrossEntropyGradientIsSoftmaxMinusOnehot) {
  Tensor logits = Tensor::from_data({1, 3}, {1, 2, 3}, true);
  Tensor loss = ag::cross_entropy(logits, {1});
  loss.backward();
  const float z = std::exp(1.f) + std::exp(2.f) + std::exp(3.f);
  EXPECT_NEAR(logits.grad()[0], std::exp(1.f) / z, 1e-5);
  EXPECT_NEAR(logits.grad()[1], std::exp(2.f) / z - 1.0f, 1e-5);
  EXPECT_NEAR(logits.grad()[2], std::exp(3.f) / z, 1e-5);
}

TEST(Ops, IndexAndConcat) {
  Tensor a = Tensor::from_data({3}, {5, 6, 7}, true);
  Tensor i1 = ag::index(a, 1);
  EXPECT_FLOAT_EQ(i1.item(), 6);
  Tensor c = ag::concat_vec({a, i1});
  EXPECT_EQ(c.numel(), 4);
  EXPECT_FLOAT_EQ(c.data()[3], 6);
}

TEST(Ops, Slice2dValuesAndBounds) {
  Tensor a = Tensor::from_data({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor s = ag::slice2d(a, 1, 2, 0, 2);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_FLOAT_EQ(s.at(0, 0), 4);
  EXPECT_FLOAT_EQ(s.at(1, 1), 8);
  EXPECT_THROW(ag::slice2d(a, 2, 2, 0, 1), std::invalid_argument);
}

TEST(Ops, BlockMatrixAssembly) {
  Tensor t00 = Tensor::full({2, 2}, 1.0f);
  Tensor t01 = Tensor::full({2, 2}, 2.0f);
  Tensor t10 = Tensor::full({2, 2}, 3.0f);
  Tensor t11 = Tensor::full({2, 2}, 4.0f);
  Tensor b = ag::block_matrix({t00, t01, t10, t11}, 2, 2);
  EXPECT_EQ(b.dim(0), 4);
  EXPECT_FLOAT_EQ(b.at(0, 0), 1);
  EXPECT_FLOAT_EQ(b.at(0, 3), 2);
  EXPECT_FLOAT_EQ(b.at(3, 0), 3);
  EXPECT_FLOAT_EQ(b.at(3, 3), 4);
}

TEST(Ops, RoundSteForwardAndBackward) {
  Tensor x = Tensor::from_data({3}, {0.2f, 0.7f, -1.4f}, true);
  Tensor y = ag::round_ste(x);
  EXPECT_FLOAT_EQ(y.data()[0], 0);
  EXPECT_FLOAT_EQ(y.data()[1], 1);
  EXPECT_FLOAT_EQ(y.data()[2], -1);
  ag::sum(y).backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 1.0f);  // identity STE
}

TEST(Ops, SteReplace) {
  Tensor x = Tensor::from_data({2}, {0.5f, -0.5f}, true);
  Tensor y = ag::ste_replace(x, {9.0f, 8.0f});
  EXPECT_FLOAT_EQ(y.data()[0], 9);
  ag::sum(y).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

// ---- gradcheck sweep over elementwise/matrix ops ---------------------------

struct OpCase {
  std::string name;
  std::function<Tensor(const std::vector<Tensor>&)> fn;
  std::vector<std::vector<std::int64_t>> shapes;
  double lo = -1.0, hi = 1.0;
};

class OpsGradcheck : public ::testing::TestWithParam<int> {};

std::vector<OpCase> grad_cases() {
  std::vector<OpCase> cases;
  auto scalar_of = [](Tensor t) { return ag::sum(t); };
  cases.push_back({"add", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::add(in[0], in[1]));
                   },
                   {{3, 4}, {3, 4}}});
  cases.push_back({"sub_row_broadcast",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::sub(in[0], in[1]));
                   },
                   {{3, 4}, {1, 4}}});
  cases.push_back({"mul_col_broadcast",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::mul(in[0], in[1]));
                   },
                   {{3, 4}, {3, 1}}});
  cases.push_back({"div",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::div(in[0], in[1]));
                   },
                   {{2, 3}, {2, 3}},
                   0.5,
                   2.0});
  cases.push_back({"exp", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::exp(in[0]));
                   },
                   {{2, 3}}});
  cases.push_back({"log",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::log(in[0]));
                   },
                   {{2, 3}},
                   0.5,
                   2.0});
  cases.push_back({"sin", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::sin(in[0]));
                   },
                   {{5}}});
  cases.push_back({"cos", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::cos(in[0]));
                   },
                   {{5}}});
  cases.push_back({"sqrt",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::sqrt(in[0]));
                   },
                   {{4}},
                   0.5,
                   2.0});
  cases.push_back({"square", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::square(in[0]));
                   },
                   {{4}}});
  cases.push_back({"tanh", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::tanh_t(in[0]));
                   },
                   {{4}}});
  cases.push_back({"sigmoid", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::sigmoid(in[0]));
                   },
                   {{4}}});
  cases.push_back({"reciprocal",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::reciprocal(in[0]));
                   },
                   {{4}},
                   0.5,
                   2.0});
  cases.push_back({"matmul",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::matmul(in[0], in[1]));
                   },
                   {{3, 4}, {4, 2}}});
  cases.push_back({"matmul_square_weighted",
                   [](const std::vector<Tensor>& in) {
                     return ag::sum(ag::square(ag::matmul(in[0], in[1])));
                   },
                   {{2, 3}, {3, 3}}});
  cases.push_back({"transpose", [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::square(ag::transpose(in[0])));
                   },
                   {{2, 4}}});
  cases.push_back({"softmax",
                   [](const std::vector<Tensor>& in) {
                     return ag::sum(ag::square(ag::softmax_rows(in[0])));
                   },
                   {{3, 4}},
                   -2.0,
                   2.0});
  cases.push_back({"log_softmax",
                   [](const std::vector<Tensor>& in) {
                     return ag::sum(ag::square(ag::log_softmax_rows(in[0])));
                   },
                   {{3, 4}},
                   -2.0,
                   2.0});
  cases.push_back({"row_l2_norm",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::row_l2_norm(in[0]));
                   },
                   {{3, 4}},
                   0.2,
                   1.0});
  cases.push_back({"col_l2_norm",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::col_l2_norm(in[0]));
                   },
                   {{3, 4}},
                   0.2,
                   1.0});
  cases.push_back({"diag_chain",
                   [scalar_of](const std::vector<Tensor>& in) {
                     return scalar_of(ag::matmul(ag::diag(in[0]), ag::diag(in[1])));
                   },
                   {{3}, {3}}});
  cases.push_back({"slice2d",
                   [](const std::vector<Tensor>& in) {
                     return ag::sum(ag::square(ag::slice2d(in[0], 1, 2, 1, 2)));
                   },
                   {{4, 4}}});
  cases.push_back({"block_matrix",
                   [](const std::vector<Tensor>& in) {
                     return ag::sum(
                         ag::square(ag::block_matrix({in[0], in[1], in[2], in[3]}, 2, 2)));
                   },
                   {{2, 2}, {2, 2}, {2, 2}, {2, 2}}});
  cases.push_back({"cross_entropy",
                   [](const std::vector<Tensor>& in) {
                     return ag::cross_entropy(in[0], {1, 0, 2});
                   },
                   {{3, 3}},
                   -2.0,
                   2.0});
  return cases;
}

TEST_P(OpsGradcheck, AnalyticMatchesNumeric) {
  const OpCase c = grad_cases()[static_cast<std::size_t>(GetParam())];
  Rng rng(100 + GetParam());
  std::vector<Tensor> inputs;
  for (const auto& shape : c.shapes) inputs.push_back(random_tensor(shape, rng, c.lo, c.hi));
  const auto result = ag::gradcheck(c.fn, inputs);
  EXPECT_TRUE(result.ok) << c.name << ": " << result.detail;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpsGradcheck,
                         ::testing::Range(0, static_cast<int>(grad_cases().size())),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return grad_cases()[static_cast<std::size_t>(info.param)].name;
                         });

}  // namespace
