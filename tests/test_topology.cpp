#include <gtest/gtest.h>

#include "common/rng.h"
#include "photonics/builders.h"
#include "photonics/devices.h"
#include "photonics/topology.h"

namespace {

namespace ph = adept::photonics;
using adept::Rng;

ph::MeshPhases random_phases(const std::vector<ph::BlockSpec>& blocks, int k, Rng& rng) {
  ph::MeshPhases phases;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::vector<double> phi(static_cast<std::size_t>(k));
    for (auto& p : phi) p = rng.uniform(-3.14159, 3.14159);
    phases.per_block.push_back(std::move(phi));
  }
  return phases;
}

TEST(Topology, CountsSumDevices) {
  Rng rng(1);
  const auto topo = ph::random_topology(8, 4, rng, 0.5);
  const auto counts = topo.counts();
  EXPECT_EQ(counts.blocks, 8);             // 4 per unitary, U and V
  EXPECT_EQ(counts.ps, 8 * 8);             // K per block
  EXPECT_GE(counts.dc, 0);
  EXPECT_GE(counts.cr, 0);
}

TEST(Topology, FootprintFormula) {
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {true, false};
  b.perm = ph::Permutation({1, 0, 2, 3});  // one crossing
  topo.u_blocks = {b};
  topo.v_blocks = {b};
  const ph::Pdk pdk = ph::Pdk::amf();
  // 2 blocks: 8 PS, 2 DC, 2 CR
  const double expected = 8 * 6800.0 + 2 * 1500.0 + 2 * 64.0;
  EXPECT_DOUBLE_EQ(topo.footprint_um2(pdk), expected);
}

TEST(Topology, ValidateCatchesBadParity) {
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 2;
  b.dc_mask = {true};
  b.perm = ph::Permutation::identity(4);
  topo.u_blocks = {b};
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, ValidateCatchesBadMaskSize) {
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {true};  // should be 2 slots
  b.perm = ph::Permutation::identity(4);
  topo.u_blocks = {b};
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, ValidateCatchesOddK) {
  ph::PtcTopology topo;
  topo.k = 5;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, SerializeRoundTrip) {
  Rng rng(2);
  const auto topo = ph::random_topology(8, 5, rng, 0.7);
  const std::string text = topo.serialize();
  const auto back = ph::PtcTopology::deserialize(text);
  EXPECT_EQ(back.k, topo.k);
  EXPECT_EQ(back.u_blocks.size(), topo.u_blocks.size());
  for (std::size_t i = 0; i < topo.u_blocks.size(); ++i) {
    EXPECT_EQ(back.u_blocks[i].start, topo.u_blocks[i].start);
    EXPECT_EQ(back.u_blocks[i].dc_mask, topo.u_blocks[i].dc_mask);
    EXPECT_TRUE(back.u_blocks[i].perm == topo.u_blocks[i].perm);
  }
  EXPECT_EQ(back.counts().cr, topo.counts().cr);
}

TEST(Topology, DeserializeRejectsGarbage) {
  EXPECT_THROW(ph::PtcTopology::deserialize("not a topology"), std::invalid_argument);
}

TEST(Topology, InterleavedParity) {
  EXPECT_EQ(ph::interleaved_parity(0), 0);
  EXPECT_EQ(ph::interleaved_parity(1), 1);
  EXPECT_EQ(ph::interleaved_parity(2), 0);
  EXPECT_EQ(ph::dc_slots(8, 0), 4);
  EXPECT_EQ(ph::dc_slots(8, 1), 3);
}

class MeshUnitarityTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MeshUnitarityTest, RandomTopologyMeshIsUnitary) {
  // Any block cascade of phase columns, (partial) balanced coupler columns,
  // and legal permutations must be exactly unitary.
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto topo = ph::random_topology(k, 6, rng, 0.6);
  const auto phases = random_phases(topo.u_blocks, k, rng);
  const ph::CMat u = ph::mesh_transfer(topo.u_blocks, k, phases);
  EXPECT_LT(u.unitarity_error(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeshUnitarityTest,
                         ::testing::Combine(::testing::Values(4, 8, 16),
                                            ::testing::Values(11, 22, 33)));

TEST(Topology, BlockTransferComposition) {
  // A single block with identity perm and no couplers is a pure phase column.
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {false, false};
  b.perm = ph::Permutation::identity(4);
  const std::vector<double> phases = {0.5, -0.5, 1.0, 0.0};
  const ph::CMat m = ph::block_transfer(b, 4, phases);
  EXPECT_LT(m.max_abs_diff(ph::phase_column_matrix(phases)), 1e-12);
}

TEST(Topology, WeightTransferSigmaScaling) {
  // With identity-like blocks (no DC, no perm, zero phases), W = diag(sigma).
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {false, false};
  b.perm = ph::Permutation::identity(4);
  topo.u_blocks = {b};
  topo.v_blocks = {b};
  ph::MeshPhases zero;
  zero.per_block = {std::vector<double>(4, 0.0)};
  const ph::CMat w = ph::weight_transfer(topo, zero, zero, {1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.at(i, i).real(), i + 1.0, 1e-12);
  }
}

TEST(Topology, MeshTransferRequiresMatchingPhases) {
  Rng rng(3);
  const auto topo = ph::random_topology(4, 3, rng);
  ph::MeshPhases wrong;
  wrong.per_block = {std::vector<double>(4, 0.0)};  // only 1 block of 3
  EXPECT_THROW(ph::mesh_transfer(topo.u_blocks, 4, wrong), std::invalid_argument);
}

}  // namespace
