#include <gtest/gtest.h>

#include "common/rng.h"
#include "photonics/builders.h"
#include "photonics/devices.h"
#include "photonics/topology.h"

namespace {

namespace ph = adept::photonics;
using adept::Rng;

ph::MeshPhases random_phases(const std::vector<ph::BlockSpec>& blocks, int k, Rng& rng) {
  ph::MeshPhases phases;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::vector<double> phi(static_cast<std::size_t>(k));
    for (auto& p : phi) p = rng.uniform(-3.14159, 3.14159);
    phases.per_block.push_back(std::move(phi));
  }
  return phases;
}

TEST(Topology, CountsSumDevices) {
  Rng rng(1);
  const auto topo = ph::random_topology(8, 4, rng, 0.5);
  const auto counts = topo.counts();
  EXPECT_EQ(counts.blocks, 8);             // 4 per unitary, U and V
  EXPECT_EQ(counts.ps, 8 * 8);             // K per block
  EXPECT_GE(counts.dc, 0);
  EXPECT_GE(counts.cr, 0);
}

TEST(Topology, FootprintFormula) {
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {true, false};
  b.perm = ph::Permutation({1, 0, 2, 3});  // one crossing
  topo.u_blocks = {b};
  topo.v_blocks = {b};
  const ph::Pdk pdk = ph::Pdk::amf();
  // 2 blocks: 8 PS, 2 DC, 2 CR
  const double expected = 8 * 6800.0 + 2 * 1500.0 + 2 * 64.0;
  EXPECT_DOUBLE_EQ(topo.footprint_um2(pdk), expected);
}

TEST(Topology, ValidateCatchesBadParity) {
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 2;
  b.dc_mask = {true};
  b.perm = ph::Permutation::identity(4);
  topo.u_blocks = {b};
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, ValidateCatchesBadMaskSize) {
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {true};  // should be 2 slots
  b.perm = ph::Permutation::identity(4);
  topo.u_blocks = {b};
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, ValidateCatchesOddK) {
  ph::PtcTopology topo;
  topo.k = 5;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

TEST(Topology, SerializeRoundTrip) {
  Rng rng(2);
  const auto topo = ph::random_topology(8, 5, rng, 0.7);
  const std::string text = topo.serialize();
  const auto back = ph::PtcTopology::deserialize(text);
  EXPECT_EQ(back.k, topo.k);
  EXPECT_EQ(back.u_blocks.size(), topo.u_blocks.size());
  for (std::size_t i = 0; i < topo.u_blocks.size(); ++i) {
    EXPECT_EQ(back.u_blocks[i].start, topo.u_blocks[i].start);
    EXPECT_EQ(back.u_blocks[i].dc_mask, topo.u_blocks[i].dc_mask);
    EXPECT_TRUE(back.u_blocks[i].perm == topo.u_blocks[i].perm);
  }
  EXPECT_EQ(back.counts().cr, topo.counts().cr);
}

TEST(Topology, DeserializeRejectsGarbage) {
  EXPECT_THROW(ph::PtcTopology::deserialize("not a topology"), std::invalid_argument);
}

// Expects deserialize to throw invalid_argument whose message mentions every
// needle (offending token / block index / offset context).
void expect_deserialize_error(const std::string& text,
                              const std::vector<std::string>& needles) {
  try {
    ph::PtcTopology::deserialize(text);
    FAIL() << "expected deserialize failure for:\n" << text;
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "missing \"" << needle << "\" in: " << msg;
    }
  }
}

TEST(Topology, DeserializeTruncatedInputNamesFieldAndOffset) {
  // Cut a valid serialization mid-way: the error names the field and side.
  Rng rng(3);
  const auto topo = ph::random_topology(8, 3, rng, 0.5);
  const std::string text = topo.serialize();
  // (Any mid-stream cut must fail cleanly; the exact field depends on where
  // the cut lands, but the message always carries block context.)
  expect_deserialize_error(text.substr(0, text.size() / 2), {"block"});
  expect_deserialize_error("ptc", {"truncated input", "header K"});
  expect_deserialize_error("ptc 4 t\n", {"truncated input", "U block count"});
  expect_deserialize_error("ptc 4 t\n1\n0 2", {"truncated input", "U block 0"});
}

TEST(Topology, DeserializeBadMaskQuotesToken) {
  // Mask token length disagrees with its declared size.
  expect_deserialize_error("ptc 4 t\n1\n0 2 101 0,1,2,3\n0\n",
                           {"bad mask", "U block 0", "\"101\""});
  // Mask characters outside {0,1}.
  expect_deserialize_error("ptc 4 t\n1\n0 2 1x 0,1,2,3\n0\n",
                           {"bad mask", "U block 0", "not 0/1"});
}

TEST(Topology, DeserializeKMismatchReportsExpectedSlots) {
  // K=4 parity 0 expects 2 coupler slots; header claims 1.
  expect_deserialize_error("ptc 4 t\n1\n0 1 1 0,1,2,3\n0\n",
                           {"K mismatch", "U block 0", "expects 2"});
  // Permutation entry count disagrees with K.
  expect_deserialize_error("ptc 4 t\n1\n0 2 10 0,1,2\n0\n",
                           {"bad perm", "U block 0", "3 entries", "K is 4"});
}

TEST(Topology, DeserializeBadPermTokens) {
  expect_deserialize_error("ptc 4 t\n1\n0 2 10 0,1,a,3\n0\n",
                           {"bad perm", "\"a\"", "not an integer"});
  // Valid integers but not a bijection.
  expect_deserialize_error("ptc 4 t\n1\n0 2 10 0,0,2,3\n0\n",
                           {"bad perm", "bijection"});
  // V-side errors carry the V label (U parses fine here).
  expect_deserialize_error("ptc 4 t\n0\n1\n0 2 10 0,1,2\n",
                           {"bad perm", "V block 0"});
}

TEST(Topology, DeserializeImplausibleBlockCount) {
  // A negative count wraps to SIZE_MAX on unsigned extraction; it must fail
  // with the contextualized error, not std::length_error from vector.
  expect_deserialize_error("ptc 4 t\n-1\n", {"implausible U block count"});
  expect_deserialize_error("ptc 4 t\n99999999\n", {"implausible U block count"});
  expect_deserialize_error("ptc 4 t\n0\n77777777\n",
                           {"implausible V block count"});
}

TEST(Topology, DeserializeBadParityAndHeader) {
  expect_deserialize_error("ptc 4 t\n1\n3 2 10 0,1,2,3\n0\n",
                           {"bad parity", "U block 0", "3"});
  expect_deserialize_error("xtc 4 t\n0\n0\n", {"bad magic", "\"xtc\""});
  expect_deserialize_error("ptc 5 t\n0\n0\n", {"bad header K 5"});
}

TEST(Topology, BinaryRoundTripBitExact) {
  Rng rng(7);
  for (int k : {4, 8, 16}) {
    auto topo = ph::random_topology(k, 4, rng, 0.6);
    topo.name = "bin-" + std::to_string(k);
    std::string bytes;
    topo.serialize_binary(bytes);
    adept::binio::Reader r(bytes, 0, "test");
    const auto back = ph::PtcTopology::deserialize_binary(r);
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(back.k, topo.k);
    EXPECT_EQ(back.name, topo.name);
    ASSERT_EQ(back.u_blocks.size(), topo.u_blocks.size());
    ASSERT_EQ(back.v_blocks.size(), topo.v_blocks.size());
    for (std::size_t i = 0; i < topo.u_blocks.size(); ++i) {
      EXPECT_EQ(back.u_blocks[i].start, topo.u_blocks[i].start);
      EXPECT_EQ(back.u_blocks[i].dc_mask, topo.u_blocks[i].dc_mask);
      EXPECT_TRUE(back.u_blocks[i].perm == topo.u_blocks[i].perm);
    }
    // Text serialization of the round-tripped topology is identical.
    EXPECT_EQ(back.serialize(), topo.serialize());
  }
}

TEST(Topology, BinaryDeserializeErrors) {
  Rng rng(9);
  auto topo = ph::random_topology(4, 2, rng, 0.5);
  std::string bytes;
  topo.serialize_binary(bytes);
  {  // truncation mid-stream names the offset
    const std::string cut = bytes.substr(0, bytes.size() / 2);
    adept::binio::Reader r(cut, 0, "test");
    try {
      ph::PtcTopology::deserialize_binary(r);
      FAIL() << "expected truncation error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated input at offset"),
                std::string::npos)
          << e.what();
    }
  }
  {  // bad tag
    std::string bad = bytes;
    bad[0] ^= 0x1;
    adept::binio::Reader r(bad, 0, "test");
    EXPECT_THROW(ph::PtcTopology::deserialize_binary(r), std::runtime_error);
  }
}

TEST(Topology, PdkBinaryRoundTrip) {
  for (const auto& pdk : {ph::Pdk::amf(), ph::Pdk::aim()}) {
    std::string bytes;
    pdk.serialize_binary(bytes);
    adept::binio::Reader r(bytes, 0, "test");
    const auto back = ph::Pdk::deserialize_binary(r);
    EXPECT_EQ(back.name, pdk.name);
    EXPECT_EQ(back.ps_area_um2, pdk.ps_area_um2);
    EXPECT_EQ(back.dc_area_um2, pdk.dc_area_um2);
    EXPECT_EQ(back.cr_area_um2, pdk.cr_area_um2);
  }
}

TEST(Topology, InterleavedParity) {
  EXPECT_EQ(ph::interleaved_parity(0), 0);
  EXPECT_EQ(ph::interleaved_parity(1), 1);
  EXPECT_EQ(ph::interleaved_parity(2), 0);
  EXPECT_EQ(ph::dc_slots(8, 0), 4);
  EXPECT_EQ(ph::dc_slots(8, 1), 3);
}

class MeshUnitarityTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MeshUnitarityTest, RandomTopologyMeshIsUnitary) {
  // Any block cascade of phase columns, (partial) balanced coupler columns,
  // and legal permutations must be exactly unitary.
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto topo = ph::random_topology(k, 6, rng, 0.6);
  const auto phases = random_phases(topo.u_blocks, k, rng);
  const ph::CMat u = ph::mesh_transfer(topo.u_blocks, k, phases);
  EXPECT_LT(u.unitarity_error(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeshUnitarityTest,
                         ::testing::Combine(::testing::Values(4, 8, 16),
                                            ::testing::Values(11, 22, 33)));

TEST(Topology, BlockTransferComposition) {
  // A single block with identity perm and no couplers is a pure phase column.
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {false, false};
  b.perm = ph::Permutation::identity(4);
  const std::vector<double> phases = {0.5, -0.5, 1.0, 0.0};
  const ph::CMat m = ph::block_transfer(b, 4, phases);
  EXPECT_LT(m.max_abs_diff(ph::phase_column_matrix(phases)), 1e-12);
}

TEST(Topology, WeightTransferSigmaScaling) {
  // With identity-like blocks (no DC, no perm, zero phases), W = diag(sigma).
  ph::PtcTopology topo;
  topo.k = 4;
  ph::BlockSpec b;
  b.start = 0;
  b.dc_mask = {false, false};
  b.perm = ph::Permutation::identity(4);
  topo.u_blocks = {b};
  topo.v_blocks = {b};
  ph::MeshPhases zero;
  zero.per_block = {std::vector<double>(4, 0.0)};
  const ph::CMat w = ph::weight_transfer(topo, zero, zero, {1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.at(i, i).real(), i + 1.0, 1e-12);
  }
}

TEST(Topology, MeshTransferRequiresMatchingPhases) {
  Rng rng(3);
  const auto topo = ph::random_topology(4, 3, rng);
  ph::MeshPhases wrong;
  wrong.per_block = {std::vector<double>(4, 0.0)};  // only 1 block of 3
  EXPECT_THROW(ph::mesh_transfer(topo.u_blocks, 4, wrong), std::invalid_argument);
}

}  // namespace
