// src/obs telemetry: metrics registry correctness (including the histogram
// quantile error bound against an exact sort), tracing well-formedness, and
// the two fast-path guarantees — recording is data-race-free (the Obs*
// suites run under the TSan CI leg) and a disarmed TraceSpan touches
// nothing but one atomic flag.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace obs = adept::obs;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::Counter& c = obs::counter("test.obs.basic_counter");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name -> same instrument; string_view lookup does not copy-confuse.
  EXPECT_EQ(&obs::counter("test.obs.basic_counter"), &c);

  obs::Gauge& g = obs::gauge("test.obs.basic_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.25);  // last write wins, negatives allowed
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(ObsMetrics, HistogramSmallValuesAreExact) {
  obs::Histogram& h = obs::histogram("test.obs.hist_small");
  // Values below 16 land in unit-width buckets: quantiles are exact up to
  // the +/- 1 interpolation inside the unit bucket.
  for (int v = 0; v < 16; ++v) {
    for (int rep = 0; rep < 10; ++rep) h.record(v);
  }
  EXPECT_EQ(h.count(), 160u);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(0.5), 7.5, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 15.0, 1.0);
  EXPECT_DOUBLE_EQ(h.approx_max(), 16.0);  // top occupied bucket's edge
}

TEST(ObsMetrics, HistogramQuantileErrorBoundVsExactSort) {
  obs::Histogram& h = obs::histogram("test.obs.hist_bound");
  // Samples spanning six decades, the shape of a latency distribution.
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(/*m=*/8.0, /*s=*/2.0);
  std::vector<std::int64_t> exact;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::int64_t>(dist(rng));
    exact.push_back(v);
    h.record(v);
  }
  std::sort(exact.begin(), exact.end());
  ASSERT_EQ(h.count(), exact.size());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double rank = q * static_cast<double>(exact.size() - 1);
    const double ref = static_cast<double>(
        exact[static_cast<std::size_t>(rank)]);  // nearest-rank sample
    const double est = h.quantile(q);
    // The nearest-rank sample lies inside the matched bucket, so the
    // interpolated estimate is within one bucket width: <= 1 for values
    // under 16, <= 2^-4 relative above (the documented 6.25% bound).
    EXPECT_NEAR(est, ref, std::max(1.0, 0.0625 * ref) + 1e-9)
        << "q=" << q;
  }
  // mean/max carry the same per-bucket bound.
  double sum = 0;
  for (std::int64_t v : exact) sum += static_cast<double>(v);
  const double exact_mean = sum / static_cast<double>(exact.size());
  EXPECT_NEAR(h.approx_mean(), exact_mean, 0.0625 * exact_mean + 1.0);
  const double exact_max = static_cast<double>(exact.back());
  EXPECT_GE(h.approx_max(), exact_max);
  EXPECT_LE(h.approx_max(), exact_max * 1.0626 + 1.0);
}

TEST(ObsMetrics, HistogramBucketGeometry) {
  // Every bucket index round-trips: a value maps to a bucket whose
  // [lo, hi) range contains it.
  for (std::int64_t v : {0LL, 1LL, 15LL, 16LL, 17LL, 255LL, 1000LL,
                         123456789LL, (1LL << 40) + 12345LL}) {
    const int idx = obs::Histogram::bucket_index(v);
    EXPECT_GE(static_cast<double>(v), obs::Histogram::bucket_lo(idx)) << v;
    EXPECT_LT(static_cast<double>(v), obs::Histogram::bucket_hi(idx)) << v;
  }
  EXPECT_EQ(obs::Histogram::bucket_index(-5), 0);  // negatives clamp to 0
}

TEST(ObsMetrics, MultiThreadRecordingIsExact) {
  obs::Counter& c = obs::counter("test.obs.mt_counter");
  obs::Histogram& h = obs::histogram("test.obs.mt_hist");
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.count();
  constexpr int kThreads = 4;
  constexpr int kPer = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        c.inc();
        h.record(t * 1000 + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), c0 + kThreads * kPer);
  EXPECT_EQ(h.count(), h0 + kThreads * kPer);
}

TEST(ObsMetrics, SnapshotFindsAndRenders) {
  obs::counter("test.obs.snap_counter").inc(7);
  obs::gauge("test.obs.snap_gauge").set(0.5);
  obs::histogram("test.obs.snap_hist").record(100);

  const obs::MetricsSnapshot snap = obs::snapshot();
  const auto* c = snap.find_counter("test.obs.snap_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->value, 7u);
  const auto* g = snap.find_gauge("test.obs.snap_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 0.5);
  const auto* hs = snap.find_histogram("test.obs.snap_hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_GE(hs->count, 1u);
  EXPECT_EQ(snap.find_counter("test.obs.does_not_exist"), nullptr);

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("counter test.obs.snap_counter"), std::string::npos);
  EXPECT_NE(text.find("histogram test.obs.snap_hist count="), std::string::npos);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.snap_gauge\": 0.5"), std::string::npos);
}

TEST(ObsMetrics, DumpMetricsWritesValidJsonShape) {
  obs::counter("test.obs.dump_counter").inc();
  const std::string path = ::testing::TempDir() + "adept_metrics_dump.json";
  ASSERT_TRUE(obs::dump_metrics(path));
  const std::string json = read_file(path);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.dump_counter\""), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(obs::dump_metrics("/nonexistent-dir/metrics.json"));
}

TEST(ObsTrace, DisarmedSpanTouchesNothing) {
  obs::trace_stop();
  // Force this thread's ring into existence first so the baseline below
  // measures only what the disarmed path creates.
  obs::trace_start();
  { obs::TraceSpan warm(obs::intern_name("test.obs.warm")); }
  obs::trace_stop();
  obs::trace_clear_for_testing();

  const std::size_t rings_before = obs::trace_thread_count();
  const std::size_t events_before = obs::trace_event_count();
  std::thread t([] {
    const obs::TraceId id = obs::intern_name("test.obs.disarmed");
    for (int i = 0; i < 1000; ++i) {
      obs::TraceSpan span(id);
    }
  });
  t.join();
  // Disarmed spans record nothing AND never create the thread's ring —
  // the entire fast path is the one relaxed load of the armed flag.
  EXPECT_EQ(obs::trace_thread_count(), rings_before);
  EXPECT_EQ(obs::trace_event_count(), events_before);
}

TEST(ObsTrace, WriteTraceEmitsWellFormedChromeJson) {
  obs::trace_clear_for_testing();
  obs::trace_start();
  const obs::TraceId outer = obs::intern_name("test.obs.outer");
  const obs::TraceId inner = obs::intern_name("test.obs.inner \"quoted\"");
  {
    obs::TraceSpan a(outer);
    {
      obs::TraceSpan b(inner);
    }
  }
  std::thread t([&] {
    obs::TraceSpan c(outer);
  });
  t.join();
  obs::trace_stop();

  const std::string path = ::testing::TempDir() + "adept_trace_test.json";
  ASSERT_TRUE(obs::write_trace(path));
  const std::string json = read_file(path);
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_GE(count_occurrences(json, "\"ph\": \"X\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"name\": \"test.obs.outer\""), 2u);
  // Quotes in span names are escaped, never emitted raw.
  EXPECT_NE(json.find("test.obs.inner \\\"quoted\\\""), std::string::npos);
  // Two distinct tids: this thread and the helper thread.
  EXPECT_NE(json.find("\"tid\": "), std::string::npos);
  // Balanced object: ends with the closed array + object.
  EXPECT_NE(json.find("\n]}"), std::string::npos);
}

TEST(ObsTrace, EventCountAndRingWrap) {
  obs::trace_clear_for_testing();
  obs::trace_start();
  const obs::TraceId id = obs::intern_name("test.obs.wrap");
  const std::size_t before = obs::trace_event_count();
  const std::uint64_t now = obs::trace_now_ns();
  for (int i = 0; i < 100; ++i) obs::trace_event(id, now, 1);
  EXPECT_EQ(obs::trace_event_count(), before + 100);
  obs::trace_stop();
  // Recording while stopped is a no-op.
  obs::trace_event(id, now, 1);
  EXPECT_EQ(obs::trace_event_count(), before + 100);
  obs::trace_clear_for_testing();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsTrace, BufferCapacityClampsEnv) {
  const int def = obs::trace_buffer_capacity();
  EXPECT_EQ(def, 65536);  // ADEPT_TRACE_BUF unset in the test environment
  ::setenv("ADEPT_TRACE_BUF", "1", 1);
  EXPECT_EQ(obs::trace_buffer_capacity(), 4096);
  ::setenv("ADEPT_TRACE_BUF", "999999999", 1);
  EXPECT_EQ(obs::trace_buffer_capacity(), 4194304);
  ::setenv("ADEPT_TRACE_BUF", "not-a-number", 1);
  EXPECT_EQ(obs::trace_buffer_capacity(), 65536);
  ::unsetenv("ADEPT_TRACE_BUF");
  EXPECT_EQ(obs::trace_buffer_capacity(), 65536);
}

TEST(ObsTrace, InternNameIsIdempotent) {
  const obs::TraceId a = obs::intern_name("test.obs.intern");
  const obs::TraceId b = obs::intern_name("test.obs.intern");
  const obs::TraceId c = obs::intern_name("test.obs.intern2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, 0u);  // 0 is the reserved "(unnamed)" id
}
