#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/supermesh.h"
#include "nn/onn_layers.h"
#include "photonics/builders.h"

namespace {

namespace ag = adept::ag;
namespace core = adept::core;
namespace nn = adept::nn;
namespace ph = adept::photonics;
using adept::Rng;
using ag::Tensor;

Tensor random_input(std::vector<std::int64_t> shape, Rng& rng) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
  return ag::make_tensor(std::move(data), std::move(shape), false);
}

std::shared_ptr<const ph::PtcTopology> butterfly8() {
  return std::make_shared<ph::PtcTopology>(ph::butterfly(8));
}

TEST(PtcBinding, Factories) {
  EXPECT_EQ(nn::PtcBinding::dense().kind, nn::PtcBinding::Kind::dense);
  auto fixed = nn::PtcBinding::fixed(butterfly8());
  EXPECT_EQ(fixed.kind, nn::PtcBinding::Kind::ptc);
  EXPECT_EQ(fixed.k, 8);
}

TEST(ONNLinear, DenseModeBehavesLikeLinear) {
  Rng rng(1);
  nn::ONNLinear fc(6, 4, nn::PtcBinding::dense(), rng);
  Tensor x = random_input({3, 6}, rng);
  Tensor y = fc.forward(x);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(fc.parameters().size(), 2u);  // weight + bias
}

TEST(ONNLinear, BatchedGroupMatchesPerBatchLoop) {
  // A stacked [G,N,in] group through the batched gemm equals G separate
  // 2-D forwards (fixed topology, so the weight is identical across calls).
  Rng rng(17);
  nn::ONNLinear fc(8, 8, nn::PtcBinding::fixed(butterfly8()), rng);
  const std::int64_t groups = 3, n = 4;
  Tensor stacked = random_input({groups, n, 8}, rng);
  Tensor y3 = fc.forward(stacked);
  ASSERT_EQ(y3.ndim(), 3u);
  EXPECT_EQ(y3.dim(0), groups);
  EXPECT_EQ(y3.dim(1), n);
  EXPECT_EQ(y3.dim(2), 8);
  for (std::int64_t g = 0; g < groups; ++g) {
    std::vector<float> slice(stacked.data().begin() + g * n * 8,
                             stacked.data().begin() + (g + 1) * n * 8);
    Tensor y = fc.forward(ag::make_tensor(std::move(slice), {n, 8}, false));
    for (std::size_t i = 0; i < y.data().size(); ++i) {
      ASSERT_NEAR(y3.data()[static_cast<std::size_t>(g * n * 8) + i],
                  y.data()[i], 1e-5f)
          << "group " << g << " elem " << i;
    }
  }
}

TEST(ONNLinear, PtcModeShapesWithPadding) {
  Rng rng(2);
  // 10 in / 12 out with K=8 -> 2x2 tile grid, sliced back to 12x10.
  nn::ONNLinear fc(10, 12, nn::PtcBinding::fixed(butterfly8()), rng);
  Tensor x = random_input({5, 10}, rng);
  Tensor y = fc.forward(x);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 12);
}

TEST(ONNLinear, PtcParameterCountFormula) {
  Rng rng(3);
  auto topo = butterfly8();  // 3 blocks per unitary, K=8
  nn::ONNLinear fc(8, 8, nn::PtcBinding::fixed(topo), rng, /*bias=*/false);
  // 1 tile: phases 2 unitaries * 3 blocks * [8] + sigma [1,8] = 7 tensors
  EXPECT_EQ(fc.parameters().size(), 7u);
}

TEST(ONNLinear, PtcWeightMatchesCircuitSimulation) {
  // The autograd-built weight must equal the complex<double> circuit-level
  // transfer: W = Re(U Sigma V) with the same phases.
  Rng rng(4);
  auto topo = butterfly8();
  nn::ONNLinear fc(8, 8, nn::PtcBinding::fixed(topo), rng, /*bias=*/false);
  // Extract the layer's parameters: 3 phi_u, 3 phi_v, 1 sigma (order per
  // PtcWeight::parameters: all phi_u tiles, all phi_v tiles, sigmas).
  auto params = fc.parameters();
  ASSERT_EQ(params.size(), 7u);
  ph::MeshPhases u_phases, v_phases;
  for (int b = 0; b < 3; ++b) {
    std::vector<double> phi(8);
    for (int i = 0; i < 8; ++i) {
      phi[static_cast<std::size_t>(i)] =
          params[static_cast<std::size_t>(b)].data()[static_cast<std::size_t>(i)];
    }
    u_phases.per_block.push_back(phi);
  }
  for (int b = 0; b < 3; ++b) {
    std::vector<double> phi(8);
    for (int i = 0; i < 8; ++i) {
      phi[static_cast<std::size_t>(i)] =
          params[static_cast<std::size_t>(3 + b)].data()[static_cast<std::size_t>(i)];
    }
    v_phases.per_block.push_back(phi);
  }
  std::vector<double> sigma(8);
  for (int i = 0; i < 8; ++i) {
    sigma[static_cast<std::size_t>(i)] = params[6].data()[static_cast<std::size_t>(i)];
  }
  const ph::CMat w_ref = ph::weight_transfer(*topo, u_phases, v_phases, sigma);
  // Probe the layer with identity input to read its effective weight.
  Tensor eye = Tensor::eye(8);
  Tensor y = fc.forward(eye);  // y = I @ W^T -> y[i][j] = W[j][i]
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(y.at(i, j), w_ref.at(j, i).real(), 5e-4)
          << "mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST(ONNLinear, MziTopologyAlsoMatchesCircuit) {
  Rng rng(5);
  auto topo = std::make_shared<ph::PtcTopology>(ph::clements_mzi(4));
  nn::ONNLinear fc(4, 4, nn::PtcBinding::fixed(topo), rng, false);
  Tensor eye = Tensor::eye(4);
  Tensor y = fc.forward(eye);
  EXPECT_EQ(y.dim(0), 4);
  // Smoke: output finite and weight nonzero.
  double norm = 0;
  for (float v : y.data()) {
    ASSERT_TRUE(std::isfinite(v));
    norm += std::fabs(v);
  }
  EXPECT_GT(norm, 1e-3);
}

TEST(ONNLinear, GradientsReachPhasesAndSigma) {
  Rng rng(6);
  nn::ONNLinear fc(8, 8, nn::PtcBinding::fixed(butterfly8()), rng);
  Tensor x = random_input({2, 8}, rng);
  Tensor loss = ag::sum(ag::square(fc.forward(x)));
  loss.backward();
  for (auto& p : fc.parameters()) {
    EXPECT_TRUE(p.has_grad());
    bool nonzero = false;
    for (float g : p.grad()) nonzero = nonzero || g != 0.0f;
    EXPECT_TRUE(nonzero);
  }
}

TEST(ONNLinear, PhaseNoiseChangesOutputsStochastically) {
  Rng rng(7);
  nn::ONNLinear fc(8, 8, nn::PtcBinding::fixed(butterfly8()), rng, false);
  Tensor x = random_input({2, 8}, rng);
  ag::NoGradGuard guard;
  Tensor nominal = fc.forward(x);
  fc.set_phase_noise(0.05, 123);
  Tensor noisy1 = fc.forward(x);
  Tensor noisy2 = fc.forward(x);
  double d01 = 0, d12 = 0;
  for (std::size_t i = 0; i < nominal.data().size(); ++i) {
    d01 += std::fabs(nominal.data()[i] - noisy1.data()[i]);
    d12 += std::fabs(noisy1.data()[i] - noisy2.data()[i]);
  }
  EXPECT_GT(d01, 1e-4);  // noise perturbs
  EXPECT_GT(d12, 1e-4);  // fresh noise every forward
  fc.set_phase_noise(0.0, 0);
  Tensor back = fc.forward(x);
  for (std::size_t i = 0; i < nominal.data().size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], nominal.data()[i]);
  }
}

TEST(ONNConv2d, GeometryAndParams) {
  Rng rng(8);
  nn::ONNConv2d conv(1, 4, 3, nn::PtcBinding::fixed(butterfly8()), rng, 1, 1);
  Tensor x = random_input({2, 1, 6, 6}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.dim(2), 6);
  EXPECT_GT(conv.parameters().size(), 1u);
}

TEST(ONNConv2d, DenseMatchesConvSemantics) {
  Rng rng(9);
  nn::ONNConv2d conv(1, 2, 2, nn::PtcBinding::dense(), rng, 1, 0, false);
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = conv.forward(x);
  const auto& w = conv.parameters()[0].data();  // [2 out, 4 taps] row-major
  EXPECT_NEAR(y.data()[0], 1 * w[0] + 2 * w[1] + 3 * w[2] + 4 * w[3], 1e-5);
  EXPECT_NEAR(y.data()[1], 1 * w[4] + 2 * w[5] + 3 * w[6] + 4 * w[7], 1e-5);
}

TEST(ONNLinear, SuperMeshBindingTrainsEndToEnd) {
  Rng rng(10);
  core::SuperMeshConfig config;
  config.k = 4;
  config.super_blocks_per_unitary = 2;
  config.always_on_per_unitary = 1;
  core::SuperMesh mesh(config, rng);
  nn::ONNLinear fc(4, 4, nn::PtcBinding::searched(&mesh), rng);
  mesh.begin_step(1.0, rng);
  Tensor x = random_input({3, 4}, rng);
  Tensor loss = ag::sum(ag::square(fc.forward(x)));
  loss.backward();
  // Gradients reach both the layer weights and the mesh's search params.
  bool phase_grad = false;
  for (auto& p : fc.parameters()) phase_grad = phase_grad || p.has_grad();
  EXPECT_TRUE(phase_grad);
  bool arch_grad = false;
  for (auto& t : mesh.arch_params()) arch_grad = arch_grad || t.has_grad();
  EXPECT_TRUE(arch_grad);
}

}  // namespace
