#include <gtest/gtest.h>

#include <sstream>

#include "common/env.h"
#include "common/table.h"

namespace {

using adept::Table;

TEST(Table, PrintsHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("|"), std::string::npos);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt_int(42), "42");
}

TEST(Env, DefaultsWhenUnset) {
  EXPECT_EQ(adept::env_int("ADEPT_DOES_NOT_EXIST_XYZ", 7), 7);
  EXPECT_DOUBLE_EQ(adept::env_double("ADEPT_DOES_NOT_EXIST_XYZ", 1.5), 1.5);
}

TEST(Env, ReadsSetValues) {
  setenv("ADEPT_TEST_ENV_INT", "12", 1);
  setenv("ADEPT_TEST_ENV_DBL", "0.25", 1);
  EXPECT_EQ(adept::env_int("ADEPT_TEST_ENV_INT", 0), 12);
  EXPECT_DOUBLE_EQ(adept::env_double("ADEPT_TEST_ENV_DBL", 0.0), 0.25);
  unsetenv("ADEPT_TEST_ENV_INT");
  unsetenv("ADEPT_TEST_ENV_DBL");
}

}  // namespace
