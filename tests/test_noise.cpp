#include <gtest/gtest.h>

#include "common/rng.h"
#include "photonics/builders.h"
#include "photonics/noise.h"

namespace {

namespace ph = adept::photonics;
using adept::Rng;

ph::MeshPhases zero_phases(const std::vector<ph::BlockSpec>& blocks, int k) {
  ph::MeshPhases phases;
  phases.per_block.assign(blocks.size(), std::vector<double>(static_cast<std::size_t>(k), 0.0));
  return phases;
}

TEST(Noise, ZeroSigmaIsIdentity) {
  Rng rng(1);
  const auto topo = ph::butterfly(8);
  const auto phases = zero_phases(topo.u_blocks, 8);
  ph::NoiseModel noise{0.0};
  const auto perturbed = noise.perturb(phases, rng);
  for (std::size_t b = 0; b < phases.per_block.size(); ++b) {
    EXPECT_EQ(perturbed.per_block[b], phases.per_block[b]);
  }
}

TEST(Noise, PerturbationHasRequestedScale) {
  Rng rng(2);
  const auto topo = ph::clements_mzi(16);
  const auto phases = zero_phases(topo.u_blocks, 16);
  ph::NoiseModel noise{0.05};
  const auto perturbed = noise.perturb(phases, rng);
  double s = 0, s2 = 0;
  int n = 0;
  for (const auto& block : perturbed.per_block) {
    for (double v : block) {
      s += v;
      s2 += v * v;
      ++n;
    }
  }
  const double mean = s / n;
  const double std_dev = std::sqrt(s2 / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(std_dev, 0.05, 0.01);
}

TEST(Noise, MatrixErrorZeroWithoutNoise) {
  Rng rng(3);
  const auto topo = ph::butterfly(8);
  const auto u = zero_phases(topo.u_blocks, 8);
  const auto v = zero_phases(topo.v_blocks, 8);
  const double err = ph::mean_matrix_error_under_noise(topo, u, v,
                                                       std::vector<double>(8, 1.0),
                                                       0.0, 4, rng);
  EXPECT_NEAR(err, 0.0, 1e-12);
}

TEST(Noise, MatrixErrorGrowsWithSigma) {
  Rng rng(4);
  const auto topo = ph::butterfly(8);
  const auto u = zero_phases(topo.u_blocks, 8);
  const auto v = zero_phases(topo.v_blocks, 8);
  const std::vector<double> sigma(8, 1.0);
  const double e_small = ph::mean_matrix_error_under_noise(topo, u, v, sigma, 0.02, 16, rng);
  const double e_large = ph::mean_matrix_error_under_noise(topo, u, v, sigma, 0.10, 16, rng);
  EXPECT_GT(e_small, 0.0);
  EXPECT_GT(e_large, e_small);
}

TEST(Noise, DeeperMeshAccumulatesMoreDrift) {
  // Fig. 4's mechanism: the MZI mesh (depth 4K blocks) degrades faster than
  // the logarithmic-depth butterfly under identical per-shifter drift.
  Rng rng(5);
  const int k = 8;
  const auto deep = ph::clements_mzi(k);
  const auto shallow = ph::butterfly(k);
  const std::vector<double> sigma(static_cast<std::size_t>(k), 1.0);
  const double e_deep = ph::mean_matrix_error_under_noise(
      deep, zero_phases(deep.u_blocks, k), zero_phases(deep.v_blocks, k), sigma, 0.05,
      24, rng);
  const double e_shallow = ph::mean_matrix_error_under_noise(
      shallow, zero_phases(shallow.u_blocks, k), zero_phases(shallow.v_blocks, k),
      sigma, 0.05, 24, rng);
  EXPECT_GT(e_deep, e_shallow);
}

}  // namespace
