#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "common/rng.h"
#include "core/alm.h"
#include "core/reparam.h"
#include "optim/optimizer.h"

namespace {

namespace ag = adept::ag;
namespace core = adept::core;
using adept::Rng;
using ag::Tensor;

TEST(Alm, GapsZeroForPermutation) {
  Tensor p = Tensor::from_data({3, 3}, {0, 1, 0, 0, 0, 1, 1, 0, 0}, false);
  for (double g : core::row_norm_gaps(p)) EXPECT_NEAR(g, 0.0, 1e-6);
  for (double g : core::col_norm_gaps(p)) EXPECT_NEAR(g, 0.0, 1e-6);
}

TEST(Alm, GapsPositiveForUniform) {
  Tensor p = Tensor::full({4, 4}, 0.25f);
  // l1 = 1, l2 = 0.5 per row -> gap 0.5
  for (double g : core::row_norm_gaps(p)) EXPECT_NEAR(g, 0.5, 1e-5);
  for (double g : core::col_norm_gaps(p)) EXPECT_NEAR(g, 0.5, 1e-5);
}

TEST(Alm, PenaltyZeroWithZeroMultipliers) {
  core::AlmConfig config;
  core::AlmState alm(1, 4, config);
  Tensor p = Tensor::full({4, 4}, 0.25f, true);
  EXPECT_NEAR(alm.penalty({p}).item(), 0.0, 1e-7);  // lambda starts at zero
}

TEST(Alm, MultiplierUpdateMatchesEq12) {
  core::AlmConfig config;
  config.rho0 = 0.1;
  config.rho_growth = 1.0;  // keep rho fixed for the hand computation
  core::AlmState alm(1, 2, config);
  // P uniform 0.5: row gap = 1 - sqrt(0.5) per row
  Tensor p = Tensor::full({2, 2}, 0.5f, false);
  alm.update({p});
  const double gap = 1.0 - std::sqrt(0.5);
  const double expected_lambda = 0.1 * (gap + 0.5 * gap * gap);
  EXPECT_NEAR(alm.mean_lambda(), expected_lambda, 1e-6);
}

TEST(Alm, PenaltyPositiveAfterUpdate) {
  core::AlmConfig config;
  config.rho0 = 0.5;
  core::AlmState alm(1, 4, config);
  Tensor p = Tensor::full({4, 4}, 0.25f, true);
  alm.update({p});
  EXPECT_GT(alm.penalty({p}).item(), 0.0);
}

TEST(Alm, RhoScheduleGrowsAndCaps) {
  core::AlmConfig config;
  config.rho0 = 1e-7;
  config.rho_max_ratio = 1e4;
  core::AlmState alm(1, 4, config);
  alm.set_horizon(100);
  Tensor p = Tensor::full({4, 4}, 0.25f, false);
  const double rho_start = alm.rho();
  for (int i = 0; i < 100; ++i) alm.update({p});
  EXPECT_NEAR(alm.rho() / rho_start, 1e4, 2e3);
  for (int i = 0; i < 200; ++i) alm.update({p});
  EXPECT_LE(alm.rho(), config.rho0 * config.rho_max_ratio * (1 + 1e-9));
}

TEST(Alm, PermutationErrorMetric) {
  core::AlmState alm(2, 4, core::AlmConfig{});
  Tensor perm = Tensor::from_data({4, 4},
                                  {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1},
                                  false);
  Tensor uniform = Tensor::full({4, 4}, 0.25f, false);
  EXPECT_NEAR(alm.permutation_error({perm, perm}), 0.0, 1e-6);
  EXPECT_GT(alm.permutation_error({uniform, perm}), 0.1);
}

TEST(Alm, DrivesRelaxedMatrixTowardPermutation) {
  // ALM-only optimization: starting from the smoothed identity, the penalty
  // should binarize P (this is Fig. 5a's mechanism in miniature).
  Rng rng(3);
  const int k = 4;
  Tensor p_raw = core::smoothed_identity_init(k, true);
  core::AlmConfig config;
  config.rho0 = 1e-3;
  core::AlmState alm(1, k, config);
  alm.set_horizon(300);
  adept::optim::Adam opt({p_raw}, 0.05);
  double initial_error = -1;
  double final_error = -1;
  for (int step = 0; step < 300; ++step) {
    Tensor p_tilde = core::reparametrize_permutation(p_raw, 0.05f);
    Tensor loss = alm.penalty({p_tilde});
    if (step == 0) initial_error = alm.permutation_error({p_tilde});
    opt.zero_grad();
    loss.backward();
    opt.step();
    alm.update({p_tilde});
    final_error = alm.permutation_error({p_tilde});
  }
  EXPECT_GT(initial_error, 0.05);
  EXPECT_LT(final_error, initial_error * 0.5);
}

TEST(Alm, BlockCountValidation) {
  core::AlmState alm(2, 4, core::AlmConfig{});
  Tensor p = Tensor::full({4, 4}, 0.25f, false);
  EXPECT_THROW(alm.penalty({p}), std::invalid_argument);       // expects 2 blocks
  EXPECT_THROW(alm.update({p, p, p}), std::invalid_argument);  // 3 given
}

}  // namespace
