#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/loader.h"
#include "data/synthetic.h"

namespace {

namespace data = adept::data;
using adept::Rng;

TEST(SyntheticDataset, DeterministicForSameSeeds) {
  const auto spec = data::DatasetSpec::mnist_like();
  data::SyntheticDataset a(spec, 16, 1);
  data::SyntheticDataset b(spec, 16, 1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(a.image(i), b.image(i));
  }
}

TEST(SyntheticDataset, SplitSeedChangesSamplesNotPrototypes) {
  const auto spec = data::DatasetSpec::mnist_like();
  data::SyntheticDataset train(spec, 16, 1);
  data::SyntheticDataset test(spec, 16, 2);
  bool any_diff = false;
  for (int i = 0; i < 16 && !any_diff; ++i) {
    any_diff = train.image(i) != test.image(i) || train.label(i) != test.label(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticDataset, ShapesMatchSpecs) {
  const auto mnist = data::DatasetSpec::mnist_like();
  data::SyntheticDataset dm(mnist, 4, 0);
  EXPECT_EQ(dm.image_elems(), 1 * 28 * 28);
  const auto cifar = data::DatasetSpec::cifar10_like();
  data::SyntheticDataset dc(cifar, 4, 0);
  EXPECT_EQ(dc.image_elems(), 3 * 32 * 32);
  EXPECT_EQ(static_cast<int>(dc.image(0).size()), dc.image_elems());
}

TEST(SyntheticDataset, ImagesAreStandardized) {
  data::SyntheticDataset d(data::DatasetSpec::fmnist_like(), 8, 3);
  for (int i = 0; i < 8; ++i) {
    const auto& img = d.image(i);
    double s = 0, s2 = 0;
    for (float v : img) {
      s += v;
      s2 += static_cast<double>(v) * v;
    }
    const double mean = s / img.size();
    const double var = s2 / img.size() - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(SyntheticDataset, AllClassesAppear) {
  data::SyntheticDataset d(data::DatasetSpec::mnist_like(), 400, 4);
  std::set<int> seen;
  for (int i = 0; i < d.size(); ++i) {
    ASSERT_GE(d.label(i), 0);
    ASSERT_LT(d.label(i), 10);
    seen.insert(d.label(i));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SyntheticDataset, SameClassSamplesCorrelateMoreThanCrossClass) {
  // Learnability smell test: intra-class correlation above inter-class.
  data::SyntheticDataset d(data::DatasetSpec::mnist_like(), 300, 5);
  auto correlation = [&](int i, int j) {
    const auto& a = d.image(i);
    const auto& b = d.image(j);
    double dot = 0;
    for (std::size_t p = 0; p < a.size(); ++p) dot += static_cast<double>(a[p]) * b[p];
    return dot / static_cast<double>(a.size());
  };
  double intra = 0, inter = 0;
  int intra_n = 0, inter_n = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = i + 1; j < 60; ++j) {
      if (d.label(i) == d.label(j)) {
        intra += correlation(i, j);
        ++intra_n;
      } else {
        inter += correlation(i, j);
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0);
  ASSERT_GT(inter_n, 0);
  EXPECT_GT(intra / intra_n, inter / inter_n + 0.05);
}

TEST(SyntheticDataset, DifficultyLadderOrdering) {
  // The stand-in datasets order their corruption knobs like the real ones'
  // difficulty: mnist < fmnist < svhn <= cifar.
  const auto m = data::DatasetSpec::mnist_like();
  const auto f = data::DatasetSpec::fmnist_like();
  const auto s = data::DatasetSpec::svhn_like();
  const auto c = data::DatasetSpec::cifar10_like();
  EXPECT_LT(m.pixel_noise, f.pixel_noise);
  EXPECT_LT(f.pixel_noise, s.pixel_noise);
  EXPECT_LE(s.pixel_noise, c.pixel_noise);
  EXPECT_LT(m.class_mix, f.class_mix);
  EXPECT_LT(f.class_mix, s.class_mix);
  EXPECT_LE(s.class_mix, c.class_mix);
}

TEST(DataLoader, BatchShapes) {
  data::SyntheticDataset d(data::DatasetSpec::mnist_like(), 10, 6);
  data::DataLoader loader(d, 4);
  EXPECT_EQ(loader.batches_per_epoch(), 3);
  const auto b0 = loader.batch(0);
  EXPECT_EQ(b0.images.dim(0), 4);
  EXPECT_EQ(b0.images.dim(1), 1);
  EXPECT_EQ(b0.images.dim(2), 28);
  EXPECT_EQ(b0.labels.size(), 4u);
  // Last batch is the remainder.
  const auto b2 = loader.batch(2);
  EXPECT_EQ(b2.images.dim(0), 2);
}

TEST(DataLoader, EpochCoversAllSamplesOnceAfterShuffle) {
  data::SyntheticDataset d(data::DatasetSpec::mnist_like(), 20, 7);
  data::DataLoader loader(d, 6);
  Rng rng(1);
  loader.shuffle(rng);
  std::multiset<int> labels_seen;
  for (int b = 0; b < loader.batches_per_epoch(); ++b) {
    for (int label : loader.batch(b).labels) labels_seen.insert(label);
  }
  EXPECT_EQ(labels_seen.size(), 20u);
  std::multiset<int> expected;
  for (int i = 0; i < 20; ++i) expected.insert(d.label(i));
  EXPECT_EQ(labels_seen, expected);
}

TEST(DataLoader, GatherSpecificIndices) {
  data::SyntheticDataset d(data::DatasetSpec::mnist_like(), 10, 8);
  data::DataLoader loader(d, 4);
  const auto batch = loader.gather({3, 7});
  EXPECT_EQ(batch.images.dim(0), 2);
  EXPECT_EQ(batch.labels[0], d.label(3));
  EXPECT_EQ(batch.labels[1], d.label(7));
}

}  // namespace
