// Baseline topology builders must reproduce the paper's device censuses and
// footprints (Tables 1 and 2) exactly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "photonics/builders.h"

namespace {

namespace ph = adept::photonics;
using adept::Rng;

struct PaperRow {
  int k;
  long long cr, dc, blk;
  double footprint_amf_k;  // 1/1000 um^2, from Table 1
};

// MZI-ONN rows of Table 1.
const PaperRow kMziRows[] = {
    {8, 0, 112, 32, 1909.0},
    {16, 0, 480, 64, 7683.0},
    {32, 0, 1984, 128, 30829.0},
};

// FFT-ONN rows of Table 1.
const PaperRow kFftRows[] = {
    {8, 16, 24, 6, 363.0},
    {16, 88, 64, 8, 972.0},
    {32, 416, 160, 10, 2443.0},
};

class MziBuilderTest : public ::testing::TestWithParam<int> {};

TEST_P(MziBuilderTest, MatchesPaperCensus) {
  const PaperRow& row = kMziRows[static_cast<std::size_t>(GetParam())];
  const auto topo = ph::clements_mzi(row.k);
  const auto counts = topo.counts();
  EXPECT_EQ(counts.cr, row.cr);
  EXPECT_EQ(counts.dc, row.dc);
  EXPECT_EQ(counts.blocks, row.blk);
  EXPECT_EQ(counts.ps, row.k * row.blk);
  EXPECT_NEAR(topo.footprint_um2(ph::Pdk::amf()) / 1000.0, row.footprint_amf_k, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MziBuilderTest, ::testing::Values(0, 1, 2));

class FftBuilderTest : public ::testing::TestWithParam<int> {};

TEST_P(FftBuilderTest, MatchesPaperCensus) {
  const PaperRow& row = kFftRows[static_cast<std::size_t>(GetParam())];
  const auto topo = ph::butterfly(row.k);
  const auto counts = topo.counts();
  EXPECT_EQ(counts.cr, row.cr);
  EXPECT_EQ(counts.dc, row.dc);
  EXPECT_EQ(counts.blocks, row.blk);
  EXPECT_NEAR(topo.footprint_um2(ph::Pdk::amf()) / 1000.0, row.footprint_amf_k, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftBuilderTest, ::testing::Values(0, 1, 2));

TEST(Builders, Table2AimFootprints) {
  // Table 2 (AIM PDK, 16x16): MZI 4480, FFT 1007 k-um^2.
  const ph::Pdk aim = ph::Pdk::aim();
  EXPECT_NEAR(ph::clements_mzi(16).footprint_um2(aim) / 1000.0, 4480.0, 1.0);
  EXPECT_NEAR(ph::butterfly(16).footprint_um2(aim) / 1000.0, 1007.2, 1.0);
}

TEST(Builders, ButterflyCrossingClosedForm) {
  EXPECT_EQ(ph::butterfly_crossings_per_unitary(8), 8);
  EXPECT_EQ(ph::butterfly_crossings_per_unitary(16), 44);
  EXPECT_EQ(ph::butterfly_crossings_per_unitary(32), 208);
  EXPECT_EQ(ph::butterfly_crossings_per_unitary(2), 0);
}

TEST(Builders, ButterflyRejectsNonPowerOfTwo) {
  EXPECT_THROW(ph::butterfly(6), std::invalid_argument);
  EXPECT_THROW(ph::butterfly(0), std::invalid_argument);
}

TEST(Builders, MziRejectsOddK) {
  EXPECT_THROW(ph::clements_mzi(7), std::invalid_argument);
}

TEST(Builders, MziStructure) {
  const auto topo = ph::clements_mzi(8);
  // Column parities alternate in pairs (two blocks per MZI column).
  EXPECT_EQ(topo.u_blocks[0].start, 0);
  EXPECT_EQ(topo.u_blocks[1].start, 0);
  EXPECT_EQ(topo.u_blocks[2].start, 1);
  EXPECT_EQ(topo.u_blocks[3].start, 1);
  for (const auto& b : topo.u_blocks) {
    EXPECT_TRUE(b.perm.is_identity());
    for (bool m : b.dc_mask) EXPECT_TRUE(m);
  }
}

TEST(Builders, ButterflyStagesAndFinalIdentity) {
  const auto topo = ph::butterfly(16);
  EXPECT_EQ(topo.u_blocks.size(), 4u);  // log2(16)
  EXPECT_TRUE(topo.u_blocks.back().perm.is_identity());
  EXPECT_FALSE(topo.u_blocks.front().perm.is_identity());
  // All DC slots populated in every stage.
  for (const auto& b : topo.u_blocks) {
    EXPECT_EQ(b.dc_mask.size(), 8u);
    for (bool m : b.dc_mask) EXPECT_TRUE(m);
  }
}

TEST(Builders, RandomTopologyRespectsDensity) {
  Rng rng(5);
  const auto dense = ph::random_topology(16, 8, rng, 1.0);
  for (const auto& b : dense.u_blocks) {
    for (bool m : b.dc_mask) EXPECT_TRUE(m);
  }
  const auto sparse = ph::random_topology(16, 8, rng, 0.0);
  EXPECT_EQ(sparse.counts().dc, 0);
}

TEST(Builders, RandomTopologyValidates) {
  Rng rng(6);
  const auto topo = ph::random_topology(8, 12, rng, 0.5);
  EXPECT_NO_THROW(topo.validate());
  EXPECT_EQ(topo.counts().blocks, 24);
}

}  // namespace
