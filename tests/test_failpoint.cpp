// common/failpoint: the fault-injection registry every robustness test in
// tests/test_server_robustness.cpp builds on. Covers the spec grammar,
// firing budgets, kind filtering (truncate specs answer write_truncation,
// everything else fires from maybe_fail), hit accounting, RAII scoping, and
// ADEPT_FAILPOINTS environment activation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "common/failpoint.h"

namespace {

namespace fp = adept::failpoint;

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(FailpointTest, DisarmedSitesDoNothing) {
  EXPECT_FALSE(fp::maybe_fail("never.armed.site"));
  EXPECT_FALSE(fp::write_truncation("never.armed.site").has_value());
}

TEST_F(FailpointTest, ThrowSpecThrowsInjected) {
  fp::arm("t.throw", "throw");
  EXPECT_TRUE(fp::any_armed());
  try {
    fp::maybe_fail("t.throw");
    FAIL() << "expected Injected";
  } catch (const fp::Injected& e) {
    EXPECT_NE(std::string(e.what()).find("t.throw"), std::string::npos);
  }
  // Unlimited budget: still armed, fires again.
  EXPECT_THROW(fp::maybe_fail("t.throw"), fp::Injected);
  // Injected is a runtime_error, so production catch sites see a real error.
  fp::disarm("t.throw");
  EXPECT_FALSE(fp::maybe_fail("t.throw"));
}

TEST_F(FailpointTest, ErrorSpecReportsSimulatedFailure) {
  fp::arm("t.error", "error");
  EXPECT_TRUE(fp::maybe_fail("t.error"));
  EXPECT_TRUE(fp::maybe_fail("t.error"));  // unlimited
}

TEST_F(FailpointTest, FiringBudgetDisarmsAfterNHits) {
  fp::arm("t.budget", "2*error");
  EXPECT_TRUE(fp::maybe_fail("t.budget"));
  EXPECT_TRUE(fp::maybe_fail("t.budget"));
  EXPECT_FALSE(fp::maybe_fail("t.budget"));  // budget exhausted -> disarmed
  EXPECT_FALSE(fp::any_armed());
}

TEST_F(FailpointTest, StallSpecSleeps) {
  fp::arm("t.stall", "stall(20000)");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(fp::maybe_fail("t.stall"));  // stalls, then continues
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(ms, 15.0);  // sleep_for may overshoot, never (meaningfully) undershoot
}

TEST_F(FailpointTest, TruncateSpecOnlyAnswersWriteTruncation) {
  fp::arm("t.trunc", "truncate(128)");
  // maybe_fail must NOT fire (or consume) a truncate spec...
  EXPECT_FALSE(fp::maybe_fail("t.trunc"));
  // ...and write_truncation must not fire non-truncate specs.
  fp::arm("t.throw2", "throw");
  EXPECT_FALSE(fp::write_truncation("t.throw2").has_value());
  // The truncate spec is still armed (maybe_fail consumed nothing).
  const auto k = fp::write_truncation("t.trunc");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, 128);
}

TEST_F(FailpointTest, BudgetedTruncateFiresOnce) {
  fp::arm("t.trunc1", "1*truncate(7)");
  ASSERT_TRUE(fp::write_truncation("t.trunc1").has_value());
  EXPECT_FALSE(fp::write_truncation("t.trunc1").has_value());
}

TEST_F(FailpointTest, HitCountAccumulates) {
  const std::uint64_t before = fp::hit_count("t.hits");
  fp::arm("t.hits", "error");
  (void)fp::maybe_fail("t.hits");
  (void)fp::maybe_fail("t.hits");
  EXPECT_EQ(fp::hit_count("t.hits"), before + 2);
}

TEST_F(FailpointTest, MalformedSpecsThrowInvalidArgument) {
  EXPECT_THROW(fp::arm("s", "bogus"), std::invalid_argument);
  EXPECT_THROW(fp::arm("s", "stall(abc)"), std::invalid_argument);
  EXPECT_THROW(fp::arm("s", "stall(-1)"), std::invalid_argument);
  EXPECT_THROW(fp::arm("s", "truncate(-3)"), std::invalid_argument);
  EXPECT_THROW(fp::arm("s", "0*throw"), std::invalid_argument);
  EXPECT_THROW(fp::arm("s", "-2*throw"), std::invalid_argument);
  EXPECT_THROW(fp::arm("s", "x*throw"), std::invalid_argument);
  EXPECT_FALSE(fp::any_armed());  // failed arms must not half-arm anything
}

TEST_F(FailpointTest, ScopedArmsAndDisarms) {
  {
    fp::Scoped scoped("t.scoped", "error");
    EXPECT_TRUE(fp::maybe_fail("t.scoped"));
  }
  EXPECT_FALSE(fp::maybe_fail("t.scoped"));
}

TEST_F(FailpointTest, EnvironmentActivation) {
  ::setenv("ADEPT_FAILPOINTS", "env.a=2*error;env.b=truncate(9)", 1);
  fp::reset_env_for_testing();
  EXPECT_TRUE(fp::any_armed());
  EXPECT_TRUE(fp::maybe_fail("env.a"));
  const auto k = fp::write_truncation("env.b");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, 9);
  ::unsetenv("ADEPT_FAILPOINTS");
  fp::disarm_all();
  fp::reset_env_for_testing();  // next parse sees the unset variable
  EXPECT_FALSE(fp::any_armed());
}

TEST_F(FailpointTest, ProgrammaticArmWinsOverEnvironment) {
  fp::arm("env.c", "error");
  ::setenv("ADEPT_FAILPOINTS", "env.c=throw", 1);
  fp::reset_env_for_testing();
  EXPECT_TRUE(fp::maybe_fail("env.c"));  // "error", not the env "throw"
  ::unsetenv("ADEPT_FAILPOINTS");
  fp::reset_env_for_testing();
}

}  // namespace
