// Tests for the convolution/pooling/normalization operator family.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "backend/parallel.h"
#include "common/rng.h"

namespace {

namespace ag = adept::ag;
using adept::Rng;
using ag::Tensor;

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng, bool rg = true) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return ag::make_tensor(std::move(data), std::move(shape), rg);
}

TEST(Im2col, ShapeAndIdentityKernel) {
  // 1x1 kernel, stride 1: columns are just the pixels.
  Rng rng(1);
  Tensor x = random_tensor({2, 3, 4, 4}, rng, false);
  Tensor cols = ag::im2col(x, 1, 1, 1, 0);
  EXPECT_EQ(cols.dim(0), 2 * 4 * 4);
  EXPECT_EQ(cols.dim(1), 3);
  // pixel (n=1,c=2,y=3,x=0) = row (1*4+3)*4+0, col 2
  const float expected = x.data()[static_cast<std::size_t>(((1 * 3 + 2) * 4 + 3) * 4 + 0)];
  EXPECT_FLOAT_EQ(cols.at((1 * 4 + 3) * 4 + 0, 2), expected);
}

TEST(Im2col, KnownPatchValues) {
  // 1 channel 3x3 image, 2x2 kernel, stride 1, no pad: 4 patches.
  Tensor x = Tensor::from_data({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols = ag::im2col(x, 2, 2, 1, 0);
  EXPECT_EQ(cols.dim(0), 4);
  EXPECT_EQ(cols.dim(1), 4);
  // first patch [1,2,4,5]
  EXPECT_FLOAT_EQ(cols.at(0, 0), 1);
  EXPECT_FLOAT_EQ(cols.at(0, 3), 5);
  // last patch [5,6,8,9]
  EXPECT_FLOAT_EQ(cols.at(3, 0), 5);
  EXPECT_FLOAT_EQ(cols.at(3, 3), 9);
}

TEST(Im2col, PaddingZeros) {
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor cols = ag::im2col(x, 3, 3, 1, 1);  // 'same' 3x3
  EXPECT_EQ(cols.dim(0), 4);
  EXPECT_EQ(cols.dim(1), 9);
  // top-left output: kernel centered at (0,0); top-left tap out of bounds -> 0
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0);
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1);  // center tap
}

TEST(Im2col, Gradcheck) {
  Rng rng(2);
  Tensor x = random_tensor({1, 2, 4, 4}, rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return ag::sum(ag::square(ag::im2col(in[0], 3, 3, 1, 1)));
  };
  const auto result = ag::gradcheck(fn, {x});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(RowsToNchw, RoundTripWithIm2col1x1) {
  Rng rng(3);
  Tensor x = random_tensor({2, 3, 2, 2}, rng, false);
  Tensor cols = ag::im2col(x, 1, 1, 1, 0);       // [N*H*W, C]
  Tensor back = ag::rows_to_nchw(cols, 2, 2, 2); // [N,C,H,W]
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], x.data()[i]);
  }
}

TEST(RowsToNchw, Gradcheck) {
  Rng rng(4);
  Tensor x = random_tensor({6, 3}, rng);  // N*OH*OW = 6 with N=1, OH=2, OW=3
  auto fn = [](const std::vector<Tensor>& in) {
    return ag::sum(ag::square(ag::rows_to_nchw(in[0], 1, 2, 3)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {x}).ok);
}

TEST(AdaptiveAvgPool, ExactDivision) {
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = ag::adaptive_avgpool2d(x, 1, 1);
  EXPECT_FLOAT_EQ(y.data()[0], 2.5f);
}

TEST(AdaptiveAvgPool, UnevenBins) {
  Tensor x = Tensor::from_data({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = ag::adaptive_avgpool2d(x, 2, 2);
  EXPECT_EQ(y.dim(2), 2);
  // bin (0,0) covers rows 0..1, cols 0..1 -> mean(1,2,4,5) = 3
  EXPECT_FLOAT_EQ(y.data()[0], 3.0f);
}

TEST(AdaptiveAvgPool, Gradcheck) {
  Rng rng(5);
  Tensor x = random_tensor({1, 2, 5, 5}, rng);
  auto fn = [](const std::vector<Tensor>& in) {
    return ag::sum(ag::square(ag::adaptive_avgpool2d(in[0], 2, 2)));
  };
  EXPECT_TRUE(ag::gradcheck(fn, {x}).ok);
}

TEST(MaxPool, ValuesAndGradientRouting) {
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 5, 3, 2}, true);
  Tensor y = ag::maxpool2d(x, 2, 2);
  EXPECT_FLOAT_EQ(y.data()[0], 5);
  ag::sum(y).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0);
  EXPECT_FLOAT_EQ(x.grad()[1], 1);  // only the argmax receives gradient
  EXPECT_FLOAT_EQ(x.grad()[2], 0);
}

TEST(MaxPool, StrideAndShape) {
  Rng rng(6);
  Tensor x = random_tensor({2, 3, 6, 6}, rng, false);
  Tensor y = ag::maxpool2d(x, 2, 2);
  EXPECT_EQ(y.dim(2), 3);
  EXPECT_EQ(y.dim(3), 3);
}

TEST(MaxPool, AdjointIdentityAndThreadDeterminism) {
  // <maxpool(x), g> == <x, scatter(g)>: the backward is the exact adjoint of
  // the selection map, including overlapping windows (stride < k).
  Rng rng(61);
  Tensor x = random_tensor({2, 3, 7, 7}, rng);
  Tensor y = ag::maxpool2d(x, 3, 2);
  std::vector<float> g(static_cast<std::size_t>(y.numel()));
  for (auto& v : g) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  y.backward(&g);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    lhs += static_cast<double>(y.data()[i]) * g[i];
  }
  // Scatter routes each output grad to its argmax pixel, so <x, gx> equals
  // <y, g> when every selected pixel value is multiplied once per window
  // that picked it — verify via a fresh forward under perturbation instead:
  // directional derivative of <maxpool(x), g> along x equals <gx, x> for
  // the piecewise-linear pooling (positively homogeneous of degree 1).
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    rhs += static_cast<double>(x.grad()[i]) * x.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);

  // Threaded backward scatters identically to the serial one.
  const std::vector<float> gx1 = x.grad();
  x.zero_grad();
  {
    adept::backend::ThreadScope eight(8);
    Tensor y8 = ag::maxpool2d(x, 3, 2);
    y8.backward(&g);
    for (std::size_t i = 0; i < y.data().size(); ++i) {
      ASSERT_EQ(y.data()[i], y8.data()[i]);
    }
  }
  for (std::size_t i = 0; i < gx1.size(); ++i) ASSERT_EQ(x.grad()[i], gx1[i]);
}

TEST(AdaptiveAvgPool, ThreadDeterminism) {
  Rng rng(62);
  Tensor x = random_tensor({3, 4, 9, 9}, rng);
  Tensor y = ag::adaptive_avgpool2d(x, 4, 4);
  std::vector<float> g(static_cast<std::size_t>(y.numel()));
  for (auto& v : g) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  y.backward(&g);
  const std::vector<float> gx1 = x.grad();
  x.zero_grad();
  {
    adept::backend::ThreadScope eight(8);
    Tensor y8 = ag::adaptive_avgpool2d(x, 4, 4);
    for (std::size_t i = 0; i < y.data().size(); ++i) {
      ASSERT_EQ(y.data()[i], y8.data()[i]);
    }
    y8.backward(&g);
  }
  for (std::size_t i = 0; i < gx1.size(); ++i) ASSERT_EQ(x.grad()[i], gx1[i]);
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  Rng rng(7);
  Tensor x = random_tensor({4, 2, 3, 3}, rng, false);
  Tensor gamma = Tensor::full({2}, 1.0f);
  Tensor beta = Tensor::zeros({2});
  std::vector<float> rm(2, 0.0f), rv(2, 1.0f);
  Tensor y = ag::batchnorm2d(x, gamma, beta, rm, rv, /*training=*/true);
  // per-channel mean ~0, var ~1
  for (int c = 0; c < 2; ++c) {
    double s = 0, s2 = 0;
    int cnt = 0;
    for (int n = 0; n < 4; ++n) {
      for (int i = 0; i < 9; ++i) {
        const float v = y.data()[static_cast<std::size_t>(((n * 2 + c) * 9) + i)];
        s += v;
        s2 += v * v;
        ++cnt;
      }
    }
    EXPECT_NEAR(s / cnt, 0.0, 1e-4);
    EXPECT_NEAR(s2 / cnt, 1.0, 1e-2);
  }
  // running stats moved away from init
  EXPECT_NE(rm[0], 0.0f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Tensor x = Tensor::full({1, 1, 2, 2}, 3.0f);
  Tensor gamma = Tensor::full({1}, 1.0f);
  Tensor beta = Tensor::zeros({1});
  std::vector<float> rm(1, 1.0f), rv(1, 4.0f);
  Tensor y = ag::batchnorm2d(x, gamma, beta, rm, rv, /*training=*/false);
  EXPECT_NEAR(y.data()[0], (3.0f - 1.0f) / 2.0f, 1e-3);
  // eval must not update running stats
  EXPECT_FLOAT_EQ(rm[0], 1.0f);
}

TEST(BatchNorm, GradcheckTraining) {
  Rng rng(8);
  Tensor x = random_tensor({2, 2, 2, 2}, rng);
  Tensor gamma = random_tensor({2}, rng);
  Tensor beta = random_tensor({2}, rng);
  auto fn = [](const std::vector<Tensor>& in) {
    std::vector<float> rm(2, 0.0f), rv(2, 1.0f);
    return ag::sum(
        ag::square(ag::batchnorm2d(in[0], in[1], in[2], rm, rv, true)));
  };
  const auto result = ag::gradcheck(fn, {x, gamma, beta}, 1e-2, 2e-2, 8e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(ArgmaxRows, PicksLargest) {
  Tensor a = Tensor::from_data({2, 3}, {1, 9, 2, 5, 4, 3});
  const auto idx = ag::argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

}  // namespace
