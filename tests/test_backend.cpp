// Tests for the src/backend dense kernel layer: blocked gemm (all transpose
// variants, non-square/odd shapes, alpha/beta), fused elementwise kernels,
// im2col/col2im, thread-count bit-exactness, and gradchecks of the autograd
// ops ported onto the backend.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "backend/dispatch.h"
#include "backend/kernels.h"
#include "backend/parallel.h"
#include "common/rng.h"

namespace {

namespace be = adept::backend;
namespace ag = adept::ag;
using adept::Rng;
using be::Trans;

template <typename T>
std::vector<T> random_vec(std::size_t n, Rng& rng) {
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<std::complex<double>> random_cvec(std::size_t n, Rng& rng) {
  std::vector<std::complex<double>> v(n);
  for (auto& x : v) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

// Reference triple-loop gemm with logical transposes.
template <typename T>
std::vector<T> ref_gemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                        std::int64_t k, T alpha, const std::vector<T>& a,
                        std::int64_t lda, const std::vector<T>& b,
                        std::int64_t ldb, T beta, std::vector<T> c,
                        std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      T acc{};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const T av = ta == Trans::N ? a[static_cast<std::size_t>(i * lda + kk)]
                                    : a[static_cast<std::size_t>(kk * lda + i)];
        const T bv = tb == Trans::N ? b[static_cast<std::size_t>(kk * ldb + j)]
                                    : b[static_cast<std::size_t>(j * ldb + kk)];
        acc += av * bv;
      }
      auto& cv = c[static_cast<std::size_t>(i * ldc + j)];
      cv = alpha * acc + beta * cv;
    }
  }
  return c;
}

struct GemmCase {
  Trans ta, tb;
  std::int64_t m, n, k;
  float alpha, beta;
};

class GemmVariants : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmVariants, MatchesReference) {
  const GemmCase p = GetParam();
  Rng rng(42);
  // Physical layouts: op(A) is [m,k] so A is [m,k] (N) or [k,m] (T).
  const std::int64_t lda = p.ta == Trans::N ? p.k : p.m;
  const std::int64_t ldb = p.tb == Trans::N ? p.n : p.k;
  const auto a = random_vec<float>(static_cast<std::size_t>(
                                       (p.ta == Trans::N ? p.m : p.k) * lda),
                                   rng);
  const auto b = random_vec<float>(static_cast<std::size_t>(
                                       (p.tb == Trans::N ? p.k : p.n) * ldb),
                                   rng);
  auto c0 = random_vec<float>(static_cast<std::size_t>(p.m * p.n), rng);
  const auto expect =
      ref_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, lda, b, ldb, p.beta, c0, p.n);
  auto c = c0;
  be::gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb,
           p.beta, c.data(), p.n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expect[i], 1e-4f) << "elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVariants,
    ::testing::Values(
        GemmCase{Trans::N, Trans::N, 3, 5, 7, 1.0f, 0.0f},
        GemmCase{Trans::N, Trans::T, 3, 5, 7, 1.0f, 0.0f},
        GemmCase{Trans::T, Trans::N, 3, 5, 7, 1.0f, 0.0f},
        GemmCase{Trans::T, Trans::T, 3, 5, 7, 1.0f, 0.0f},
        GemmCase{Trans::N, Trans::N, 17, 9, 13, 0.5f, 1.0f},
        GemmCase{Trans::N, Trans::T, 13, 17, 9, 2.0f, 0.5f},
        GemmCase{Trans::T, Trans::N, 9, 13, 17, 1.0f, 1.0f},
        GemmCase{Trans::T, Trans::T, 16, 16, 16, 1.0f, 0.0f},
        GemmCase{Trans::N, Trans::N, 1, 31, 1, 1.0f, 0.0f},
        GemmCase{Trans::N, Trans::N, 31, 1, 31, 1.0f, 0.0f},
        // k exceeding the 256-deep panel exercises the k-blocking seam.
        GemmCase{Trans::N, Trans::N, 5, 7, 300, 1.0f, 0.0f},
        GemmCase{Trans::N, Trans::T, 5, 7, 300, 1.0f, 1.0f}));

TEST(Gemm, DoubleAndComplexMatchReference) {
  Rng rng(7);
  const std::int64_t m = 11, n = 6, k = 9;
  const auto ad = random_vec<double>(static_cast<std::size_t>(m * k), rng);
  const auto bd = random_vec<double>(static_cast<std::size_t>(k * n), rng);
  std::vector<double> cd(static_cast<std::size_t>(m * n), 0.0);
  const auto expect_d =
      ref_gemm(Trans::N, Trans::N, m, n, k, 1.0, ad, k, bd, n, 0.0, cd, n);
  be::gemm(Trans::N, Trans::N, m, n, k, 1.0, ad.data(), k, bd.data(), n, 0.0,
           cd.data(), n);
  for (std::size_t i = 0; i < cd.size(); ++i) EXPECT_NEAR(cd[i], expect_d[i], 1e-12);

  const auto ac = random_cvec(static_cast<std::size_t>(m * k), rng);
  const auto bc = random_cvec(static_cast<std::size_t>(k * n), rng);
  std::vector<std::complex<double>> cc(static_cast<std::size_t>(m * n));
  const auto expect_c = ref_gemm(Trans::N, Trans::N, m, n, k,
                                 std::complex<double>(1.0, 0.0), ac, k, bc, n,
                                 std::complex<double>(0.0, 0.0), cc, n);
  be::gemm(Trans::N, Trans::N, m, n, k, std::complex<double>(1.0, 0.0),
           ac.data(), k, bc.data(), n, std::complex<double>(0.0, 0.0),
           cc.data(), n);
  for (std::size_t i = 0; i < cc.size(); ++i) {
    EXPECT_NEAR(std::abs(cc[i] - expect_c[i]), 0.0, 1e-12);
  }
}

TEST(Gemm, ZeroInnerDimAppliesBeta) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  be::gemm(Trans::N, Trans::N, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 0.5f,
           c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

// The kernel contract: chunk boundaries depend only on the problem size, so
// any thread count reproduces the single-thread result bit-for-bit.
TEST(Determinism, ThreadedMatchesSerialBitExactly) {
  Rng rng(13);
  const std::int64_t m = 97, n = 65, k = 301;  // odd sizes straddle all seams
  const auto a = random_vec<float>(static_cast<std::size_t>(m * k), rng);
  const auto b = random_vec<float>(static_cast<std::size_t>(k * n), rng);
  std::vector<float> c_serial(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c_threaded = c_serial;
  {
    be::ThreadScope one(1);
    be::gemm(Trans::N, Trans::T, m, n, k, 1.0f, a.data(), k, b.data(), k, 0.0f,
             c_serial.data(), n);
  }
  {
    be::ThreadScope four(4);
    be::gemm(Trans::N, Trans::T, m, n, k, 1.0f, a.data(), k, b.data(), k, 0.0f,
             c_threaded.data(), n);
  }
  for (std::size_t i = 0; i < c_serial.size(); ++i) {
    ASSERT_EQ(c_serial[i], c_threaded[i]) << "elem " << i;
  }
}

TEST(Determinism, ElementwiseAndReduceBitExact) {
  Rng rng(14);
  const std::size_t n = 100000;  // spans several elementwise/reduce chunks
  const auto a = random_vec<float>(n, rng);
  const auto b = random_vec<float>(n, rng);
  std::vector<float> m1(n), m4(n), z1(n), z4(n);
  double s1, s4;
  auto f = [](float x) { return std::tanh(x) + 0.5f * x; };
  auto g = [](float x, float y) { return x * y + 0.25f * x; };
  {
    be::ThreadScope one(1);
    be::map(n, a.data(), m1.data(), f);
    be::zip(n, a.data(), b.data(), z1.data(), g);
    s1 = be::reduce_sum(a.data(), n);
  }
  {
    be::ThreadScope four(4);
    be::map(n, a.data(), m4.data(), f);
    be::zip(n, a.data(), b.data(), z4.data(), g);
    s4 = be::reduce_sum(a.data(), n);
  }
  EXPECT_EQ(s1, s4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(m1[i], m4[i]);
    ASSERT_EQ(z1[i], z4[i]);
  }
}

TEST(Im2col, MatchesNaiveAndIsAdjointOfCol2im) {
  Rng rng(15);
  const std::int64_t n = 2, c = 3, h = 7, w = 6, kh = 3, kw = 2, stride = 2,
                     pad = 1;
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  const std::int64_t cols = c * kh * kw, rows = n * oh * ow;
  const auto x = random_vec<float>(static_cast<std::size_t>(n * c * h * w), rng);

  // Naive gather.
  std::vector<float> expect(static_cast<std::size_t>(rows * cols), 0.0f);
  for (std::int64_t ni = 0; ni < n; ++ni)
    for (std::int64_t yo = 0; yo < oh; ++yo)
      for (std::int64_t xo = 0; xo < ow; ++xo)
        for (std::int64_t ci = 0; ci < c; ++ci)
          for (std::int64_t ky = 0; ky < kh; ++ky)
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t yi = yo * stride - pad + ky;
              const std::int64_t xi = xo * stride - pad + kx;
              if (yi < 0 || yi >= h || xi < 0 || xi >= w) continue;
              const std::int64_t row = (ni * oh + yo) * ow + xo;
              expect[static_cast<std::size_t>(row * cols + (ci * kh + ky) * kw + kx)] =
                  x[static_cast<std::size_t>(((ni * c + ci) * h + yi) * w + xi)];
            }

  std::vector<float> got(expect.size(), -1.0f);
  be::im2col(x.data(), n, c, h, w, kh, kw, stride, pad, got.data());
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], expect[i]);

  // Adjoint identity: <im2col(x), y> == <x, col2im(y)>.
  const auto y = random_vec<float>(got.size(), rng);
  std::vector<float> xback(x.size(), 0.0f);
  be::col2im(y.data(), n, c, h, w, kh, kw, stride, pad, xback.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i)
    lhs += static_cast<double>(got[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x[i]) * xback[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);

  // Thread-count determinism for the scatter side.
  std::vector<float> xback4(x.size(), 0.0f);
  {
    be::ThreadScope four(4);
    be::col2im(y.data(), n, c, h, w, kh, kw, stride, pad, xback4.data());
  }
  for (std::size_t i = 0; i < xback.size(); ++i) ASSERT_EQ(xback[i], xback4[i]);
}

// ---- fused complex gemm ---------------------------------------------------

// Reference planar complex gemm via std::complex.
void ref_cgemm(be::CTrans ta, be::CTrans tb, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::vector<float>& ar,
               const std::vector<float>& ai, std::int64_t lda,
               const std::vector<float>& br, const std::vector<float>& bi,
               std::int64_t ldb, float beta, std::vector<float>& cr,
               std::vector<float>& ci, std::int64_t ldc) {
  auto opa = [&](std::int64_t i, std::int64_t kk) {
    std::complex<float> v;
    if (ta == be::CTrans::N) {
      v = {ar[static_cast<std::size_t>(i * lda + kk)],
           ai[static_cast<std::size_t>(i * lda + kk)]};
    } else {
      v = {ar[static_cast<std::size_t>(kk * lda + i)],
           ai[static_cast<std::size_t>(kk * lda + i)]};
      if (ta == be::CTrans::H) v = std::conj(v);
    }
    return v;
  };
  auto opb = [&](std::int64_t kk, std::int64_t j) {
    std::complex<float> v;
    if (tb == be::CTrans::N) {
      v = {br[static_cast<std::size_t>(kk * ldb + j)],
           bi[static_cast<std::size_t>(kk * ldb + j)]};
    } else {
      v = {br[static_cast<std::size_t>(j * ldb + kk)],
           bi[static_cast<std::size_t>(j * ldb + kk)]};
      if (tb == be::CTrans::H) v = std::conj(v);
    }
    return v;
  };
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::complex<double> acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += std::complex<double>(opa(i, kk)) * std::complex<double>(opb(kk, j));
      }
      auto& re = cr[static_cast<std::size_t>(i * ldc + j)];
      auto& im = ci[static_cast<std::size_t>(i * ldc + j)];
      re = static_cast<float>(acc.real()) + beta * re;
      im = static_cast<float>(acc.imag()) + beta * im;
    }
  }
}

struct CgemmCase {
  be::CTrans ta, tb;
  std::int64_t m, n, k;
  float beta;
};

class CgemmVariants : public ::testing::TestWithParam<CgemmCase> {};

TEST_P(CgemmVariants, MatchesComplexReference) {
  const CgemmCase p = GetParam();
  Rng rng(31);
  const std::int64_t lda = p.ta == be::CTrans::N ? p.k : p.m;
  const std::int64_t ldb = p.tb == be::CTrans::N ? p.n : p.k;
  const std::size_t an = static_cast<std::size_t>((p.ta == be::CTrans::N ? p.m : p.k) * lda);
  const std::size_t bn = static_cast<std::size_t>((p.tb == be::CTrans::N ? p.k : p.n) * ldb);
  const auto ar = random_vec<float>(an, rng), ai = random_vec<float>(an, rng);
  const auto br = random_vec<float>(bn, rng), bi = random_vec<float>(bn, rng);
  auto cr0 = random_vec<float>(static_cast<std::size_t>(p.m * p.n), rng);
  auto ci0 = random_vec<float>(static_cast<std::size_t>(p.m * p.n), rng);
  auto er = cr0, ei = ci0;
  ref_cgemm(p.ta, p.tb, p.m, p.n, p.k, ar, ai, lda, br, bi, ldb, p.beta, er, ei, p.n);
  auto cr = cr0, ci = ci0;
  be::cgemm(p.ta, p.tb, p.m, p.n, p.k, ar.data(), ai.data(), lda, br.data(),
            bi.data(), ldb, p.beta, cr.data(), ci.data(), p.n);
  for (std::size_t i = 0; i < cr.size(); ++i) {
    ASSERT_NEAR(cr[i], er[i], 1e-4f) << "re elem " << i;
    ASSERT_NEAR(ci[i], ei[i], 1e-4f) << "im elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CgemmVariants,
    ::testing::Values(
        CgemmCase{be::CTrans::N, be::CTrans::N, 4, 6, 5, 0.0f},
        CgemmCase{be::CTrans::N, be::CTrans::T, 4, 6, 5, 0.0f},
        CgemmCase{be::CTrans::N, be::CTrans::H, 4, 6, 5, 1.0f},
        CgemmCase{be::CTrans::T, be::CTrans::N, 7, 3, 9, 0.0f},
        CgemmCase{be::CTrans::H, be::CTrans::N, 7, 3, 9, 1.0f},
        CgemmCase{be::CTrans::H, be::CTrans::H, 8, 8, 8, 0.0f},
        CgemmCase{be::CTrans::N, be::CTrans::N, 32, 32, 32, 0.0f},
        // k beyond one 256-deep panel exercises the k-blocking seam.
        CgemmCase{be::CTrans::N, be::CTrans::H, 5, 7, 300, 0.0f}));

// Acceptance: cgemm results are identical bits at 1/2/8 threads.
TEST(Determinism, CgemmBitExactAcrossThreadCounts) {
  Rng rng(32);
  const std::int64_t m = 63, n = 33, k = 289;
  const auto ar = random_vec<float>(static_cast<std::size_t>(m * k), rng);
  const auto ai = random_vec<float>(static_cast<std::size_t>(m * k), rng);
  const auto br = random_vec<float>(static_cast<std::size_t>(k * n), rng);
  const auto bi = random_vec<float>(static_cast<std::size_t>(k * n), rng);
  std::vector<float> base_r, base_i;
  for (int threads : {1, 2, 8}) {
    std::vector<float> cr(static_cast<std::size_t>(m * n), 0.0f);
    std::vector<float> ci = cr;
    be::ThreadScope scope(threads);
    be::cgemm(be::CTrans::N, be::CTrans::H, m, n, k, ar.data(), ai.data(), k,
              br.data(), bi.data(), k, 0.0f, cr.data(), ci.data(), n);
    if (threads == 1) {
      base_r = cr;
      base_i = ci;
      continue;
    }
    for (std::size_t i = 0; i < cr.size(); ++i) {
      ASSERT_EQ(cr[i], base_r[i]) << "threads=" << threads << " re " << i;
      ASSERT_EQ(ci[i], base_i[i]) << "threads=" << threads << " im " << i;
    }
  }
}

TEST(Rcgemm, MatchesReferenceWithPhaseEpilogue) {
  Rng rng(33);
  const std::int64_t k = 12;
  const auto a = random_vec<float>(static_cast<std::size_t>(k * k), rng);
  const auto br = random_vec<float>(static_cast<std::size_t>(k * k), rng);
  const auto bi = random_vec<float>(static_cast<std::size_t>(k * k), rng);
  std::vector<float> cosv(static_cast<std::size_t>(k)), sinv(cosv.size());
  for (std::int64_t j = 0; j < k; ++j) {
    const double phi = rng.uniform(-3.0, 3.0);
    cosv[static_cast<std::size_t>(j)] = static_cast<float>(std::cos(phi));
    sinv[static_cast<std::size_t>(j)] = static_cast<float>(std::sin(phi));
  }
  // Reference: (A @ B) then multiply column j by exp(-i phi_j).
  std::vector<float> er(static_cast<std::size_t>(k * k), 0.0f), ei = er;
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      double accr = 0.0, acci = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        accr += static_cast<double>(a[static_cast<std::size_t>(i * k + kk)]) *
                br[static_cast<std::size_t>(kk * k + j)];
        acci += static_cast<double>(a[static_cast<std::size_t>(i * k + kk)]) *
                bi[static_cast<std::size_t>(kk * k + j)];
      }
      const double c = cosv[static_cast<std::size_t>(j)], s = sinv[static_cast<std::size_t>(j)];
      er[static_cast<std::size_t>(i * k + j)] = static_cast<float>(accr * c + acci * s);
      ei[static_cast<std::size_t>(i * k + j)] = static_cast<float>(acci * c - accr * s);
    }
  }
  std::vector<float> cr(er.size(), 0.0f), ci = cr;
  be::rcgemm(Trans::N, k, k, k, a.data(), k, br.data(), bi.data(), k, 0.0f,
             cr.data(), ci.data(), k, cosv.data(), sinv.data());
  for (std::size_t i = 0; i < cr.size(); ++i) {
    ASSERT_NEAR(cr[i], er[i], 1e-4f);
    ASSERT_NEAR(ci[i], ei[i], 1e-4f);
  }
}

// ---- batched gemm ---------------------------------------------------------

TEST(GemmPacked, BitExactVsPlainGemmAllAlphasAndShapes) {
  // The pre-packed serving path must be bit-identical to gemm() — including
  // the alpha != 1 branch (pack_a scratch path) and Trans::T packs — at
  // every (m, n, k) tile-tail position.
  Rng rng(77);
  for (const auto& [m, n, k] : std::vector<std::array<std::int64_t, 3>>{
           {1, 10, 150}, {16, 6, 150}, {64, 6, 25}, {7, 17, 33}, {6, 8, 16}}) {
    for (const Trans tb : {Trans::N, Trans::T}) {
      const std::int64_t ldb = tb == Trans::N ? n : k;
      std::vector<float> a(static_cast<std::size_t>(m * k)),
          b(static_cast<std::size_t>(n * k));
      for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      const be::PackedGemmB pb = be::pack_gemm_b(tb, k, n, b.data(), ldb);
      for (const float alpha : {1.0f, 2.5f, -0.75f}) {
        std::vector<float> ref(static_cast<std::size_t>(m * n)), got(ref.size());
        be::gemm(Trans::N, tb, m, n, k, alpha, a.data(), k, b.data(), ldb, 0.0f,
                 ref.data(), n);
        be::gemm_packed(m, n, k, alpha, a.data(), k, tb, b.data(), ldb, pb, 0.0f,
                        got.data(), n);
        ASSERT_EQ(ref, got) << "m=" << m << " n=" << n << " k=" << k
                            << " alpha=" << alpha
                            << " tb=" << (tb == Trans::N ? "N" : "T");
      }
    }
  }
}

TEST(GemmPacked, FallsBackWhenDispatchLevelChanges) {
  // Panels packed at one SIMD level must not be consumed at another: the
  // wrapper falls back to the plain gemm using the raw operand.
  Rng rng(78);
  const std::int64_t m = 9, n = 11, k = 40;
  std::vector<float> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const be::PackedGemmB pb = be::pack_gemm_b(Trans::N, k, n, b.data(), n);
  be::SimdScope scope(be::SimdLevel::scalar);
  std::vector<float> ref(static_cast<std::size_t>(m * n)), got(ref.size());
  be::gemm(Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
           ref.data(), n);
  be::gemm_packed(m, n, k, 1.0f, a.data(), k, Trans::N, b.data(), n, pb, 0.0f,
                  got.data(), n);
  ASSERT_EQ(ref, got);
}

TEST(GemmBatched, MatchesPerSampleLoop) {
  Rng rng(34);
  const std::int64_t batch = 7, m = 9, n = 6, k = 11;
  const auto a = random_vec<float>(static_cast<std::size_t>(batch * m * k), rng);
  const auto b = random_vec<float>(static_cast<std::size_t>(k * n), rng);
  std::vector<float> expect(static_cast<std::size_t>(batch * m * n), 0.0f);
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    be::gemm(Trans::N, Trans::N, m, n, k, 1.0f, a.data() + bi * m * k, k,
             b.data(), n, 0.0f, expect.data() + bi * m * n, n);
  }
  std::vector<float> got(expect.size(), 0.0f);
  be::gemm_batched(batch, m, n, k, a.data(), m * k, k, Trans::N, b.data(), n,
                   0.0f, got.data(), m * n, n);
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], expect[i]);

  // Transposed shared operand, accumulate into non-zero C.
  const auto bt = random_vec<float>(static_cast<std::size_t>(n * k), rng);
  auto base = random_vec<float>(expect.size(), rng);
  auto expect_t = base;
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    be::gemm(Trans::N, Trans::T, m, n, k, 1.0f, a.data() + bi * m * k, k,
             bt.data(), k, 1.0f, expect_t.data() + bi * m * n, n);
  }
  auto got_t = base;
  be::gemm_batched(batch, m, n, k, a.data(), m * k, k, Trans::T, bt.data(), k,
                   1.0f, got_t.data(), m * n, n);
  for (std::size_t i = 0; i < got_t.size(); ++i) {
    ASSERT_NEAR(got_t[i], expect_t[i], 1e-4f);
  }
}

// Acceptance: batched gemm identical bits at 1/2/8 threads.
TEST(Determinism, GemmBatchedBitExactAcrossThreadCounts) {
  Rng rng(35);
  const std::int64_t batch = 24, m = 16, n = 10, k = 40;
  const auto a = random_vec<float>(static_cast<std::size_t>(batch * m * k), rng);
  const auto b = random_vec<float>(static_cast<std::size_t>(k * n), rng);
  std::vector<float> base;
  for (int threads : {1, 2, 8}) {
    std::vector<float> c(static_cast<std::size_t>(batch * m * n), 0.0f);
    be::ThreadScope scope(threads);
    be::gemm_batched(batch, m, n, k, a.data(), m * k, k, Trans::N, b.data(), n,
                     0.0f, c.data(), m * n, n);
    if (threads == 1) {
      base = c;
      continue;
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_EQ(c[i], base[i]) << "threads=" << threads << " elem " << i;
    }
  }
}

// ---- gradchecks over the autograd ops now running on the backend ---------

ag::Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  std::vector<float> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
  return ag::make_tensor(std::move(data), std::move(shape), true);
}

TEST(BackendGradcheck, MatmulNonSquare) {
  Rng rng(21);
  ag::Tensor a = random_tensor({3, 5}, rng);
  ag::Tensor b = random_tensor({5, 4}, rng);
  auto res = ag::gradcheck(
      [](const std::vector<ag::Tensor>& in) {
        return ag::sum(ag::square(ag::matmul(in[0], in[1])));
      },
      {a, b});
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(BackendGradcheck, MatmulThreaded) {
  be::ThreadScope four(4);
  Rng rng(22);
  ag::Tensor a = random_tensor({7, 9}, rng);
  ag::Tensor b = random_tensor({9, 6}, rng);
  auto res = ag::gradcheck(
      [](const std::vector<ag::Tensor>& in) {
        return ag::sum(ag::mul(ag::matmul(in[0], in[1]),
                               ag::matmul(in[0], in[1])));
      },
      {a, b});
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(BackendGradcheck, BmmMatchesPerSampleMatmulAndGrads) {
  Rng rng(24);
  ag::Tensor a = random_tensor({3, 4, 5}, rng);
  ag::Tensor b = random_tensor({5, 6}, rng);
  // Forward: bmm == per-sample matmul of each [4,5] slice.
  ag::Tensor y = ag::bmm(a, b);
  for (std::int64_t bi = 0; bi < 3; ++bi) {
    std::vector<float> slice(a.data().begin() + bi * 20, a.data().begin() + (bi + 1) * 20);
    ag::Tensor yi = ag::matmul(ag::make_tensor(std::move(slice), {4, 5}, false), b);
    for (std::size_t i = 0; i < yi.data().size(); ++i) {
      ASSERT_NEAR(y.data()[static_cast<std::size_t>(bi * 24) + i], yi.data()[i], 1e-5f);
    }
  }
  auto res = ag::gradcheck(
      [](const std::vector<ag::Tensor>& in) {
        return ag::sum(ag::square(ag::bmm(in[0], in[1])));
      },
      {a, b});
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(BackendGradcheck, Im2colStridedPadded) {
  Rng rng(23);
  ag::Tensor x = random_tensor({2, 2, 5, 5}, rng);
  auto res = ag::gradcheck(
      [](const std::vector<ag::Tensor>& in) {
        return ag::sum(ag::square(ag::im2col(in[0], 3, 3, 2, 1)));
      },
      {x});
  EXPECT_TRUE(res.ok) << res.detail;
}

}  // namespace
